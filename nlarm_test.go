package nlarm

import (
	"strings"
	"testing"
	"time"
)

// newSim builds a warmed-up simulation (the full 60-node paper testbed).
func newSim(t *testing.T, seed uint64) *Simulation {
	t.Helper()
	sim, err := NewSimulation(SimulationConfig{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sim.Close)
	sim.WarmUp()
	return sim
}

func TestQuickstartFlow(t *testing.T) {
	sim := newSim(t, 42)
	resp, err := sim.Allocate(AllocRequest{
		Procs: 32, PPN: 4, Alpha: 0.3, Beta: 0.7, Policy: PolicyNetLoadAware,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Recommendation != RecommendAllocate {
		t.Fatalf("recommendation %v", resp.Recommendation)
	}
	if len(resp.Nodes) != 8 || len(resp.Hostfile) != 8 {
		t.Fatalf("nodes=%v hostfile=%v", resp.Nodes, resp.Hostfile)
	}
	for _, h := range resp.Hostfile {
		if !strings.HasPrefix(h, "csews") || !strings.HasSuffix(h, ":4") {
			t.Fatalf("hostfile entry %q", h)
		}
	}
	res, err := sim.RunMiniMD(MiniMDRun{S: 16, Steps: 50}, resp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.Ranks != 32 {
		t.Fatalf("result %+v", res)
	}
	if f := res.CommFraction(); f <= 0 || f >= 1 {
		t.Fatalf("comm fraction %g", f)
	}
}

func TestAllFourPolicies(t *testing.T) {
	sim := newSim(t, 7)
	for _, pol := range []string{PolicyRandom, PolicySequential, PolicyLoadAware, PolicyNetLoadAware} {
		resp, err := sim.Allocate(AllocRequest{Procs: 8, PPN: 4, Policy: pol})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if resp.Policy != pol {
			t.Fatalf("requested %s got %s", pol, resp.Policy)
		}
	}
}

func TestRunMiniFE(t *testing.T) {
	sim := newSim(t, 9)
	resp, err := sim.Allocate(AllocRequest{Procs: 8, PPN: 4, Alpha: 0.4, Beta: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunMiniFE(MiniFERun{NX: 48, Iters: 40}, resp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestDeterministicSimulations(t *testing.T) {
	run := func() []int {
		sim, err := NewSimulation(SimulationConfig{Seed: 1234})
		if err != nil {
			t.Fatal(err)
		}
		defer sim.Close()
		sim.WarmUp()
		resp, err := sim.Allocate(AllocRequest{Procs: 16, PPN: 4, Alpha: 0.3, Beta: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		return resp.Nodes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("%v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed chose different nodes: %v vs %v", a, b)
		}
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	sim := newSim(t, 3)
	before := sim.Now()
	sim.Advance(10 * time.Minute)
	if got := sim.Now().Sub(before); got != 10*time.Minute {
		t.Fatalf("advanced %v", got)
	}
}

func TestSuggestAlphaBetaExported(t *testing.T) {
	a, b := SuggestAlphaBeta(0.7)
	if b != 0.7 || a < 0.299 || a > 0.301 {
		t.Fatalf("SuggestAlphaBeta = %g/%g", a, b)
	}
}

func TestPaperWeightsExported(t *testing.T) {
	w := PaperWeights()
	if w.CPULoad != 0.3 || w.Bandwidth != 0.75 {
		t.Fatalf("weights %+v", w)
	}
}

func TestNLABeatsRandomOnAverage(t *testing.T) {
	// The headline claim, smoke-tested: over a few runs of the same job,
	// the heuristic's mean execution time beats random allocation.
	sim := newSim(t, 99)
	var nlaSum, randSum float64
	const rounds = 3
	for i := 0; i < rounds; i++ {
		for _, pol := range []string{PolicyNetLoadAware, PolicyRandom} {
			resp, err := sim.Allocate(AllocRequest{Procs: 32, PPN: 4, Alpha: 0.3, Beta: 0.7, Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.RunMiniMD(MiniMDRun{S: 16, Steps: 40}, resp)
			if err != nil {
				t.Fatal(err)
			}
			if pol == PolicyNetLoadAware {
				nlaSum += res.Elapsed.Seconds()
			} else {
				randSum += res.Elapsed.Seconds()
			}
			sim.Advance(30 * time.Second)
		}
	}
	if nlaSum >= randSum {
		t.Fatalf("NLA (%.2fs) did not beat random (%.2fs) over %d rounds", nlaSum, randSum, rounds)
	}
}

func TestRunStencil2D(t *testing.T) {
	sim := newSim(t, 13)
	resp, err := sim.Allocate(AllocRequest{Procs: 16, PPN: 4, Alpha: 0.5, Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunStencil2D(Stencil2DRun{N: 512, Steps: 50}, resp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.Ranks != 16 {
		t.Fatalf("result %+v", res)
	}
}

func TestBusyClusterLoadOption(t *testing.T) {
	busy, err := NewSimulation(SimulationConfig{Seed: 5, Load: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer busy.Close()
	busy.WarmUp()
	resp, err := busy.Allocate(AllocRequest{Procs: 8, PPN: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Recommendation != RecommendWait {
		t.Fatalf("Load=40 cluster answered %v (load %g/core)", resp.Recommendation, resp.ClusterLoad)
	}
	forcedReq := AllocRequest{Procs: 8, PPN: 4, Force: true}
	forced, err := busy.Allocate(forcedReq)
	if err != nil {
		t.Fatal(err)
	}
	if forced.Recommendation != RecommendAllocate {
		t.Fatal("force did not override wait")
	}
}
