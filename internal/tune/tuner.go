package tune

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"nlarm/internal/alloc"
	"nlarm/internal/rng"
	"nlarm/internal/sim"
)

// Params is the tuner's search space, a low-dimensional reparameterization
// of Equation 4's α/β plus the attribute weights that feed Equations 1-2:
// Alpha is the compute-vs-network trade-off (β = 1 − α), LatencyShare
// splits Equation 2 between latency and bandwidth (w_lt = LatencyShare,
// w_bw = 1 − LatencyShare), and LoadTilt splits the Equation 1 load mass
// between CPU load and CPU utilization (0.5·LoadTilt and 0.5·(1−LoadTilt);
// the remaining §5 attribute weights are held at the paper's values).
type Params struct {
	Alpha        float64 `json:"alpha"`
	LatencyShare float64 `json:"latency_share"`
	LoadTilt     float64 `json:"load_tilt"`
}

// BaselineParams is the paper's hand-picked operating point: α = β = 0.5
// with the §5 attribute weights (its Weights() is exactly
// alloc.PaperWeights()).
func BaselineParams() Params {
	return Params{Alpha: 0.5, LatencyShare: 0.25, LoadTilt: 0.6}
}

// Weights expands the parameter vector into concrete attribute weights.
func (p Params) Weights() alloc.Weights {
	w := alloc.PaperWeights()
	w.Latency = p.LatencyShare
	w.Bandwidth = 1 - p.LatencyShare
	w.CPULoad = 0.5 * p.LoadTilt
	w.CPUUtil = 0.5 * (1 - p.LoadTilt)
	return w
}

// clamp keeps every coordinate inside the searchable box.
func (p Params) clamp() Params {
	cl := func(x float64) float64 {
		if x < 0.05 {
			return 0.05
		}
		if x > 0.95 {
			return 0.95
		}
		return x
	}
	return Params{Alpha: cl(p.Alpha), LatencyShare: cl(p.LatencyShare), LoadTilt: cl(p.LoadTilt)}
}

// TunerConfig sizes one tuning study. Zero fields take defaults.
type TunerConfig struct {
	// Seed derives the train seeds (Seed+i), the held-out seeds
	// (Seed+1000+i), and the evolutionary rng.
	Seed uint64 `json:"seed"`
	// Nodes/CoresPerNode/Jobs/Util shape every scenario (defaults 128
	// nodes, 8 cores, 3000 jobs, 0.65 offered load).
	Nodes        int     `json:"nodes"`
	CoresPerNode int     `json:"cores_per_node"`
	Jobs         int     `json:"jobs"`
	Util         float64 `json:"util"`
	// TrainSeeds is how many workload seeds each candidate is scored on
	// (default 3); HoldoutSeeds how many disjoint seeds validate the
	// winner (default 2).
	TrainSeeds   int `json:"train_seeds"`
	HoldoutSeeds int `json:"holdout_seeds"`
	// GridAlphas is the deterministic α grid (default 0.2, 0.35, 0.5,
	// 0.65, 0.8 at the paper's attribute weights).
	GridAlphas []float64 `json:"grid_alphas,omitempty"`
	// Population/Generations size the seeded evolutionary pass over the
	// full parameter vector (defaults 6 and 3; either <= 0 after
	// defaulting skips evolution... set to -1 to disable).
	Population  int `json:"population"`
	Generations int `json:"generations"`
	// Objective weights the multi-objective score (zero value: defaults).
	Objective ObjectiveWeights `json:"objective"`
	// Workers bounds sim.RunMany's fan-out (0 = GOMAXPROCS). Results are
	// worker-count-invariant.
	Workers int `json:"workers"`
}

func (c TunerConfig) withDefaults() TunerConfig {
	if c.Nodes <= 0 {
		c.Nodes = 128
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 8
	}
	if c.Jobs <= 0 {
		c.Jobs = 3000
	}
	if c.Util <= 0 || c.Util > 1 {
		c.Util = 0.65
	}
	if c.TrainSeeds <= 0 {
		c.TrainSeeds = 3
	}
	if c.HoldoutSeeds <= 0 {
		c.HoldoutSeeds = 2
	}
	if len(c.GridAlphas) == 0 {
		c.GridAlphas = []float64{0.2, 0.35, 0.5, 0.65, 0.8}
	}
	if c.Population == 0 {
		c.Population = 6
	}
	if c.Generations == 0 {
		c.Generations = 3
	}
	return c
}

// Evaluation is one parameter vector's measured score: the mean of its
// per-train-seed objective scores against the baseline outcomes.
type Evaluation struct {
	Params   Params    `json:"params"`
	Score    float64   `json:"score"`
	Source   string    `json:"source"` // "baseline", "grid", "gen<N>"
	Outcomes []Outcome `json:"outcomes,omitempty"`
}

// HoldoutResult validates the recommended parameters on one seed the
// search never saw: the winner's outcome scored against a fresh baseline
// run of the same seed.
type HoldoutResult struct {
	Seed          uint64  `json:"seed"`
	Score         float64 `json:"score"`
	BaselineScore float64 `json:"baseline_score"`
	BaselineNL    float64 `json:"baseline_nl"`
	BestNL        float64 `json:"best_nl"`
	Improved      bool    `json:"improved"`
}

// Result is one tuning study: the baseline evaluation, the deterministic
// grid, the per-generation evolutionary winners, the overall
// recommendation, and its held-out validation. Same config, same result
// — bit for bit, for any worker count.
type Result struct {
	Config      TunerConfig     `json:"config"`
	Baseline    Evaluation      `json:"baseline"`
	Grid        []Evaluation    `json:"grid"`
	Generations []Evaluation    `json:"generations,omitempty"`
	Best        Evaluation      `json:"best"`
	Holdout     []HoldoutResult `json:"holdout"`
	HoldoutWins int             `json:"holdout_wins"`
	Runs        int             `json:"runs"` // scenario runs executed
}

// RecommendedWeights expands the winning parameters.
func (r *Result) RecommendedWeights() alloc.Weights { return r.Best.Params.Weights() }

// Run executes the study: score the baseline on the train seeds, sweep
// the deterministic α grid, evolve the full parameter vector from the
// grid winner with a seeded mutation loop, then validate the best
// candidate on the held-out seeds. Every evaluation batch is one
// sim.RunMany call, so the study parallelizes across candidates × seeds
// while staying deterministic.
func Run(cfg TunerConfig) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Config: cfg}
	wl := sim.ScaledWorkload(cfg.Jobs, cfg.Nodes, cfg.Util)
	scen := func(seed uint64, p Params) sim.ScenarioConfig {
		w := p.Weights()
		return sim.ScenarioConfig{
			Seed: seed, Nodes: cfg.Nodes, CoresPerNode: cfg.CoresPerNode,
			Workload: wl, Discipline: sim.EASY,
			Policy: &sim.PolicyConfig{Alpha: p.Alpha, Beta: 1 - p.Alpha, Weights: &w},
		}
	}

	// Baseline outcomes per train seed — every candidate scores against
	// these.
	base := BaselineParams()
	baseCfgs := make([]sim.ScenarioConfig, cfg.TrainSeeds)
	for i := range baseCfgs {
		baseCfgs[i] = scen(cfg.Seed+uint64(i), base)
	}
	sw, err := sim.RunMany(baseCfgs, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("tune: baseline sweep: %w", err)
	}
	res.Runs += len(baseCfgs)
	baseOut := make([]Outcome, cfg.TrainSeeds)
	for i, r := range sw.Results {
		baseOut[i] = OutcomeOf(r)
	}
	score := func(outs []Outcome) float64 {
		s := 0.0
		for i, o := range outs {
			s += cfg.Objective.Score(o, baseOut[i])
		}
		return s / float64(len(outs))
	}
	res.Baseline = Evaluation{Params: base, Score: score(baseOut), Source: "baseline", Outcomes: baseOut}

	// evalBatch scores a candidate set with one RunMany over the
	// candidates × train seeds cross product (candidate-major order).
	evalBatch := func(ps []Params, source string) ([]Evaluation, error) {
		cfgs := make([]sim.ScenarioConfig, 0, len(ps)*cfg.TrainSeeds)
		for _, p := range ps {
			for i := 0; i < cfg.TrainSeeds; i++ {
				cfgs = append(cfgs, scen(cfg.Seed+uint64(i), p))
			}
		}
		sw, err := sim.RunMany(cfgs, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("tune: %s sweep: %w", source, err)
		}
		res.Runs += len(cfgs)
		evals := make([]Evaluation, len(ps))
		for k, p := range ps {
			outs := make([]Outcome, cfg.TrainSeeds)
			for i := 0; i < cfg.TrainSeeds; i++ {
				outs[i] = OutcomeOf(sw.Results[k*cfg.TrainSeeds+i])
			}
			evals[k] = Evaluation{Params: p, Score: score(outs), Source: source, Outcomes: outs}
		}
		return evals, nil
	}

	// Deterministic α grid at the paper's attribute weights.
	gridPs := make([]Params, len(cfg.GridAlphas))
	for i, a := range cfg.GridAlphas {
		p := base
		p.Alpha = a
		gridPs[i] = p.clamp()
	}
	grid, err := evalBatch(gridPs, "grid")
	if err != nil {
		return nil, err
	}
	res.Grid = grid
	best := res.Baseline
	for _, e := range grid {
		if e.Score < best.Score {
			best = e
		}
	}

	// Seeded evolutionary search over the full vector, warm-started at
	// the grid winner: evaluate a population, keep the two elites, refill
	// with clamped mutations. The rng stream, the population order, and
	// the stable score sort make the whole pass deterministic.
	if cfg.Population > 1 && cfg.Generations > 0 {
		r := rng.New(cfg.Seed ^ 0xda7a5eed7a11)
		mutate := func(p Params) Params {
			p.Alpha += r.Range(-0.12, 0.12)
			p.LatencyShare += r.Range(-0.15, 0.15)
			p.LoadTilt += r.Range(-0.15, 0.15)
			return p.clamp()
		}
		pop := make([]Params, cfg.Population)
		pop[0] = best.Params
		for i := 1; i < len(pop); i++ {
			pop[i] = mutate(best.Params)
		}
		for g := 1; g <= cfg.Generations; g++ {
			evals, err := evalBatch(pop, fmt.Sprintf("gen%d", g))
			if err != nil {
				return nil, err
			}
			sort.SliceStable(evals, func(i, j int) bool { return evals[i].Score < evals[j].Score })
			res.Generations = append(res.Generations, evals[0])
			if evals[0].Score < best.Score {
				best = evals[0]
			}
			elite := 2
			if elite > len(evals) {
				elite = len(evals)
			}
			for i := 0; i < elite; i++ {
				pop[i] = evals[i].Params
			}
			for i := elite; i < len(pop); i++ {
				pop[i] = mutate(evals[i%elite].Params)
			}
		}
	}
	res.Best = best

	// Held-out validation: seeds the search never touched, winner vs a
	// fresh baseline run, seed by seed.
	hold := make([]sim.ScenarioConfig, 0, 2*cfg.HoldoutSeeds)
	for i := 0; i < cfg.HoldoutSeeds; i++ {
		seed := cfg.Seed + 1000 + uint64(i)
		hold = append(hold, scen(seed, base), scen(seed, best.Params))
	}
	hsw, err := sim.RunMany(hold, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("tune: holdout sweep: %w", err)
	}
	res.Runs += len(hold)
	for i := 0; i < cfg.HoldoutSeeds; i++ {
		bo := OutcomeOf(hsw.Results[2*i])
		wo := OutcomeOf(hsw.Results[2*i+1])
		hr := HoldoutResult{
			Seed:          cfg.Seed + 1000 + uint64(i),
			Score:         cfg.Objective.Score(wo, bo),
			BaselineScore: cfg.Objective.Score(bo, bo),
			BaselineNL:    bo.MeanNLCost,
			BestNL:        wo.MeanNLCost,
		}
		hr.Improved = hr.Score < hr.BaselineScore
		if hr.Improved {
			res.HoldoutWins++
		}
		res.Holdout = append(res.Holdout, hr)
	}
	return res, nil
}

// Digest is the study's determinism handle: a SHA-256 over every
// decision-relevant number in the result (params, scores, outcomes,
// holdout verdicts), formatted with full float precision. Two processes
// running the same config must produce identical digests.
func (r *Result) Digest() string {
	var b strings.Builder
	we := func(e Evaluation) {
		fmt.Fprintf(&b, "%s %.9g %.9g %.9g %.9g", e.Source, e.Params.Alpha, e.Params.LatencyShare, e.Params.LoadTilt, e.Score)
		for _, o := range e.Outcomes {
			fmt.Fprintf(&b, " [%.9g %.9g %.9g %.9g]", o.MeanWaitSec, o.MakespanSec, o.Jain, o.MeanNLCost)
		}
		b.WriteByte('\n')
	}
	we(r.Baseline)
	for _, e := range r.Grid {
		we(e)
	}
	for _, e := range r.Generations {
		we(e)
	}
	we(r.Best)
	for _, h := range r.Holdout {
		fmt.Fprintf(&b, "holdout %d %.9g %.9g %.9g %.9g %v\n", h.Seed, h.Score, h.BaselineScore, h.BaselineNL, h.BestNL, h.Improved)
	}
	fmt.Fprintf(&b, "runs %d\n", r.Runs)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
