package tune

import (
	"math"

	"nlarm/internal/broker"
)

// RegretReport aggregates per-decision counterfactual regret over a
// broker decision trace. Regret for one decision is
// max(0, raw(chosen) − min_i raw(rejected_i)) with
// raw(c) = α·C_G + β·N_G — the un-normalized Equation 4 cost at the
// decision's own α/β. Algorithm 2 scores candidates after normalizing
// C_G and N_G by their cross-candidate sums, so the winner is not always
// the raw-cost minimum; positive regret quantifies how much raw cost
// that normalization traded away on each decision.
type RegretReport struct {
	// Decisions is the trace length; Evaluated counts successful
	// allocations that retained counterfactual candidates.
	Decisions int `json:"decisions"`
	Evaluated int `json:"evaluated"`
	// Positive counts evaluated decisions where some retained rejected
	// candidate was raw-cost cheaper than the chosen one.
	Positive int `json:"positive"`
	// TotalRegret/MeanRegret/MaxRegret aggregate the clamped per-decision
	// regret over evaluated decisions (mean over all evaluated, zeros
	// included).
	TotalRegret float64 `json:"total_regret"`
	MeanRegret  float64 `json:"mean_regret"`
	MaxRegret   float64 `json:"max_regret"`
	// WeightedRegret weights each decision's regret by its realized
	// outcome weight (node-seconds actually consumed by the granted job;
	// 1 when the caller has no outcome for a decision) — regret on a
	// long-running placement matters more than on one that finished in
	// seconds.
	WeightedRegret float64 `json:"weighted_regret"`
	// PositiveShare is Positive/Evaluated.
	PositiveShare float64 `json:"positive_share"`
}

// Regret re-scores every decision's retained counterfactual candidates
// against the choice the broker made. weights[i] is the realized outcome
// weight of recs[i] (see RegretReport.WeightedRegret); a nil or short
// slice defaults the missing entries to 1.
func Regret(recs []broker.DecisionRecord, weights []float64) RegretReport {
	rep := RegretReport{Decisions: len(recs)}
	for i, rec := range recs {
		if rec.Error != "" || rec.Recommendation != broker.RecommendAllocate || len(rec.Counterfactuals) == 0 {
			continue
		}
		alpha, beta := rec.Alpha, rec.Beta
		if alpha == 0 && beta == 0 {
			alpha, beta = 0.5, 0.5
		}
		chosen := alpha*rec.ComputeCost + beta*rec.NetworkCost
		minAlt := math.Inf(1)
		for _, cf := range rec.Counterfactuals {
			if c := alpha*cf.ComputeCost + beta*cf.NetworkCost; c < minAlt {
				minAlt = c
			}
		}
		rep.Evaluated++
		r := chosen - minAlt
		if r <= 0 {
			continue
		}
		rep.Positive++
		rep.TotalRegret += r
		if r > rep.MaxRegret {
			rep.MaxRegret = r
		}
		w := 1.0
		if i < len(weights) && weights[i] > 0 {
			w = weights[i]
		}
		rep.WeightedRegret += r * w
	}
	if rep.Evaluated > 0 {
		rep.MeanRegret = rep.TotalRegret / float64(rep.Evaluated)
		rep.PositiveShare = float64(rep.Positive) / float64(rep.Evaluated)
	}
	return rep
}
