// Package tune closes the loop the source paper leaves open: it
// hand-picks the Equation 4 trade-off weights (α = β = 0.5) and the §5
// attribute weights, and never asks what the allocator gave up by
// rejecting the runner-up placements. tune re-scores the rejected
// candidates the broker retained per decision (counterfactual regret),
// defines a fitness-weighted multi-objective score over scenario
// outcomes, and searches α/β plus attribute-weight space with a
// deterministic grid and a seeded evolutionary pass over sim.RunMany
// sweeps, turning the hand-picked operating point into a measured
// choice.
package tune

import (
	"math"

	"nlarm/internal/sim"
)

// ObjectiveWeights is the fitness weighting of the tuner's
// multi-objective score: mean job wait, makespan, Jain fairness across
// workload cohorts, and the mean Equation 2 network cost of the chosen
// placements. The zero value takes the defaults (0.4/0.2/0.2/0.2).
type ObjectiveWeights struct {
	Wait     float64 `json:"wait"`
	Makespan float64 `json:"makespan"`
	Fairness float64 `json:"fairness"`
	Network  float64 `json:"network"`
}

// DefaultObjective weights waiting time highest, with makespan,
// cross-cohort fairness, and placement network cost sharing the rest.
func DefaultObjective() ObjectiveWeights {
	return ObjectiveWeights{Wait: 0.4, Makespan: 0.2, Fairness: 0.2, Network: 0.2}
}

// WithDefaults resolves the zero value to DefaultObjective.
func (w ObjectiveWeights) WithDefaults() ObjectiveWeights {
	if w.Wait == 0 && w.Makespan == 0 && w.Fairness == 0 && w.Network == 0 {
		return DefaultObjective()
	}
	return w
}

// Outcome is the objective-relevant extract of one scenario run.
type Outcome struct {
	// MeanWaitSec and MakespanSec come from the capacity model's timing.
	MeanWaitSec float64 `json:"mean_wait_sec"`
	MakespanSec float64 `json:"makespan_sec"`
	// Jain is Jain's fairness index over the per-cohort mean waits
	// (1 = perfectly even across cohorts).
	Jain float64 `json:"jain"`
	// MeanNLCost is the mean Equation 2 network-cost sum of the winning
	// placements (policy-fidelity runs; 0 on capacity runs).
	MeanNLCost float64 `json:"mean_nl_cost"`
}

// OutcomeOf extracts the objective inputs from a scenario result.
func OutcomeOf(res *sim.ScenarioResult) Outcome {
	o := Outcome{MeanWaitSec: res.MeanWaitSec, MakespanSec: res.MakespanSec, Jain: 1}
	if len(res.Cohorts) > 0 {
		waits := make([]float64, len(res.Cohorts))
		for i, c := range res.Cohorts {
			waits[i] = c.MeanWaitSec
		}
		o.Jain = JainIndex(waits)
	}
	if res.Policy != nil {
		o.MeanNLCost = res.Policy.MeanNLCost
	}
	return o
}

// JainIndex is Jain's fairness index (Σx)²/(n·Σx²) over xs, in (0, 1]
// with 1 meaning perfectly even. An empty or all-zero input reads as
// perfectly fair (no one waited).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum, sumSq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// ratioCap bounds a single objective term so one degenerate run (e.g. a
// near-zero baseline denominator) cannot dominate the whole score.
const ratioCap = 10

// ratio is a/b clamped to [0, ratioCap], with the convention that a
// non-positive baseline scores 1 when the candidate is no worse and the
// cap when it is.
func ratio(a, b float64) float64 {
	if b <= 0 {
		if a <= b {
			return 1
		}
		return ratioCap
	}
	r := a / b
	if r > ratioCap {
		return ratioCap
	}
	return r
}

// Score evaluates outcome o against the baseline outcome of the same
// workload seed: each term is the candidate-to-baseline ratio of one
// objective (unfairness 1−Jain for the fairness term), weighted and
// summed. Lower is better; the baseline scores its own weight sum
// (1.0 with the default weights), so score < Score(base, base) means
// the candidate beats the hand-picked operating point.
func (w ObjectiveWeights) Score(o, base Outcome) float64 {
	w = w.WithDefaults()
	s := w.Wait * ratio(o.MeanWaitSec, base.MeanWaitSec)
	s += w.Makespan * ratio(o.MakespanSec, base.MakespanSec)
	s += w.Network * ratio(o.MeanNLCost, base.MeanNLCost)
	s += w.Fairness * ratio(1-o.Jain, math.Max(1-base.Jain, 1e-3))
	return s
}
