package tune

import (
	"math"
	"reflect"
	"testing"

	"nlarm/internal/alloc"
	"nlarm/internal/broker"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 1},
		{[]float64{0, 0, 0}, 1},
		{[]float64{5, 5, 5, 5}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{4, 2}, (6.0 * 6.0) / (2 * (16.0 + 4.0))},
	}
	for _, c := range cases {
		if got := JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("JainIndex(%v) = %g, want %g", c.xs, got, c.want)
		}
	}
}

func TestScoreBaselineIsWeightSum(t *testing.T) {
	base := Outcome{MeanWaitSec: 12, MakespanSec: 900, Jain: 0.8, MeanNLCost: 3.5}
	var w ObjectiveWeights // zero value takes defaults summing to 1
	if got := w.Score(base, base); math.Abs(got-1) > 1e-12 {
		t.Fatalf("baseline self-score = %g, want 1", got)
	}
	// Halving every cost halves every ratio term.
	better := Outcome{MeanWaitSec: 6, MakespanSec: 450, Jain: 0.9, MeanNLCost: 1.75}
	if got := w.Score(better, base); got >= 1 {
		t.Fatalf("strictly better outcome scored %g, want < 1", got)
	}
	// A zero baseline denominator is capped, not infinite.
	zb := Outcome{Jain: 1}
	if got := w.Score(base, zb); math.IsInf(got, 0) || got > ratioCap {
		t.Fatalf("degenerate baseline score = %g, want finite <= cap", got)
	}
}

func TestRegretArithmetic(t *testing.T) {
	recs := []broker.DecisionRecord{
		{ // regret 0.5*(10-6) + 0.5*(4-2) = 3 with the cheaper alt
			Recommendation: broker.RecommendAllocate,
			Alpha:          0.5, Beta: 0.5,
			ComputeCost: 10, NetworkCost: 4,
			Counterfactuals: []broker.CounterfactualCandidate{
				{ComputeCost: 20, NetworkCost: 20},
				{ComputeCost: 6, NetworkCost: 2},
			},
		},
		{ // chosen already raw-minimal: clamped to zero, still evaluated
			Recommendation: broker.RecommendAllocate,
			Alpha:          0.5, Beta: 0.5,
			ComputeCost: 1, NetworkCost: 1,
			Counterfactuals: []broker.CounterfactualCandidate{
				{ComputeCost: 5, NetworkCost: 5},
			},
		},
		{ // no counterfactuals retained: skipped
			Recommendation: broker.RecommendAllocate,
			ComputeCost:    9, NetworkCost: 9,
		},
		{ // failed decision: skipped
			Recommendation: broker.RecommendAllocate,
			Error:          "boom",
			Counterfactuals: []broker.CounterfactualCandidate{
				{ComputeCost: 0, NetworkCost: 0},
			},
		},
	}
	rep := Regret(recs, []float64{2}) // first decision weighted 2x, rest default 1
	if rep.Decisions != 4 || rep.Evaluated != 2 || rep.Positive != 1 {
		t.Fatalf("counts: %+v", rep)
	}
	if math.Abs(rep.TotalRegret-3) > 1e-12 || math.Abs(rep.MaxRegret-3) > 1e-12 {
		t.Fatalf("regret totals: %+v", rep)
	}
	if math.Abs(rep.MeanRegret-1.5) > 1e-12 {
		t.Fatalf("mean regret = %g, want 1.5 (zeros included)", rep.MeanRegret)
	}
	if math.Abs(rep.WeightedRegret-6) > 1e-12 {
		t.Fatalf("weighted regret = %g, want 6", rep.WeightedRegret)
	}
	if math.Abs(rep.PositiveShare-0.5) > 1e-12 {
		t.Fatalf("positive share = %g, want 0.5", rep.PositiveShare)
	}
}

func TestBaselineParamsMatchPaperWeights(t *testing.T) {
	if got, want := BaselineParams().Weights(), alloc.PaperWeights(); got != want {
		t.Fatalf("baseline weights %+v != paper weights %+v", got, want)
	}
	w := Params{Alpha: 0.3, LatencyShare: 0.4, LoadTilt: 0.2}.Weights()
	if math.Abs(w.Latency+w.Bandwidth-1) > 1e-12 {
		t.Fatalf("latency+bandwidth = %g, want 1", w.Latency+w.Bandwidth)
	}
	if math.Abs(w.CPULoad+w.CPUUtil-0.5) > 1e-12 {
		t.Fatalf("cpuload+cpuutil = %g, want 0.5", w.CPULoad+w.CPUUtil)
	}
	c := Params{Alpha: -3, LatencyShare: 2, LoadTilt: 0.5}.clamp()
	if c.Alpha != 0.05 || c.LatencyShare != 0.95 || c.LoadTilt != 0.5 {
		t.Fatalf("clamp: %+v", c)
	}
}

func tinyTunerConfig(seed uint64) TunerConfig {
	return TunerConfig{
		Seed: seed, Nodes: 32, CoresPerNode: 4, Jobs: 250, Util: 0.6,
		TrainSeeds: 2, HoldoutSeeds: 1,
		GridAlphas:  []float64{0.3, 0.5, 0.7},
		Population:  3,
		Generations: 2,
	}
}

// TestRunDeterministic pins the tuner's determinism contract: two Run
// calls with the same config agree bit for bit (digest and structure),
// for any worker count.
func TestRunDeterministic(t *testing.T) {
	cfg := tinyTunerConfig(42)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digest diverged across worker counts:\n%s\n%s", a.Digest(), b.Digest())
	}
	a.Config.Workers = b.Config.Workers
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("results diverged:\n%+v\n%+v", a, b)
	}
}

// TestRunShape checks the study's structure: baseline self-scores its
// weight sum, the grid covers every requested α, the recommendation is
// never worse than the baseline on the train seeds, and holdout entries
// compare winner vs baseline per seed.
func TestRunShape(t *testing.T) {
	cfg := tinyTunerConfig(7)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Baseline.Score-1) > 1e-9 {
		t.Fatalf("baseline score = %g, want 1", res.Baseline.Score)
	}
	if len(res.Grid) != len(cfg.GridAlphas) {
		t.Fatalf("grid size %d, want %d", len(res.Grid), len(cfg.GridAlphas))
	}
	for i, e := range res.Grid {
		if e.Params.Alpha != cfg.GridAlphas[i] {
			t.Fatalf("grid[%d] alpha %g, want %g", i, e.Params.Alpha, cfg.GridAlphas[i])
		}
		if len(e.Outcomes) != cfg.TrainSeeds {
			t.Fatalf("grid[%d] has %d outcomes, want %d", i, len(e.Outcomes), cfg.TrainSeeds)
		}
	}
	if len(res.Generations) != cfg.Generations {
		t.Fatalf("generations %d, want %d", len(res.Generations), cfg.Generations)
	}
	if res.Best.Score > res.Baseline.Score {
		t.Fatalf("best score %g worse than baseline %g", res.Best.Score, res.Baseline.Score)
	}
	if len(res.Holdout) != cfg.HoldoutSeeds {
		t.Fatalf("holdout size %d, want %d", len(res.Holdout), cfg.HoldoutSeeds)
	}
	for _, h := range res.Holdout {
		if h.Improved != (h.Score < h.BaselineScore) {
			t.Fatalf("holdout %d Improved flag inconsistent: %+v", h.Seed, h)
		}
	}
	wantRuns := cfg.TrainSeeds*(1+len(cfg.GridAlphas)+cfg.Generations*cfg.Population) + 2*cfg.HoldoutSeeds
	if res.Runs != wantRuns {
		t.Fatalf("runs %d, want %d", res.Runs, wantRuns)
	}
}
