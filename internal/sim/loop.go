// Package sim is the discrete-event simulation core: a deterministic
// event loop over the virtual clock (internal/simtime) plus a
// capacity-fidelity scenario runner that schedules job arrival, start,
// and finish events against a workload spec (internal/loadgen) — months
// of submitted traffic replayed in seconds of wall time, bit-for-bit
// reproducible from a seed. The harness's stepped-window experiments
// run against the same clock through the harness.Driver seam, so the
// two modes can be cross-checked event-for-event.
package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"strconv"
	"time"

	"nlarm/internal/simtime"
)

// ErrPastEvent is returned when an event is scheduled before the
// loop's current virtual time. The underlying scheduler would clamp such
// an event to "now" — silently reordering it relative to the caller's
// intent — so the loop refuses instead.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// ErrDrained is returned when the loop runs out of events before a run
// condition is met.
var ErrDrained = errors.New("sim: event queue drained")

// Loop is a deterministic discrete-event loop on top of a
// simtime.Scheduler: a priority queue keyed by virtual time with stable
// same-instant tie-breaking (schedule order). On top of the raw
// scheduler it adds strict scheduling (past events are errors, not
// clamps), a fired-event log, and a running SHA-256 digest of that log
// for determinism checks. Drive it from one goroutine.
type Loop struct {
	sched *simtime.Scheduler
	start time.Time
	fired uint64
	last  time.Time
	hash  hash.Hash
	line  []byte    // reused log-line buffer (see record)
	logW  io.Writer // optional mirror of the event log
	err   error     // first log-write error
}

// NewLoop wraps sched. Events already pending on sched still fire; the
// loop only logs and digests events scheduled through it.
func NewLoop(sched *simtime.Scheduler) *Loop {
	now := sched.Now()
	return &Loop{sched: sched, start: now, last: now, hash: sha256.New()}
}

// SetLog mirrors the event log (one line per fired event: index, offset
// from loop start, name) to w. Pass nil to stop mirroring.
func (l *Loop) SetLog(w io.Writer) { l.logW = w }

// Now returns the current virtual time.
func (l *Loop) Now() time.Time { return l.sched.Now() }

// Scheduler exposes the underlying virtual clock, e.g. to hand to
// components that take a simtime.Runtime.
func (l *Loop) Scheduler() *simtime.Scheduler { return l.sched }

// record appends one fired event to the log and digest. The line is
// built with strconv into a reused buffer — byte-identical to the
// original fmt.Sprintf("%d %.9f %s\n", ...) formatting (both delegate
// to the same strconv conversions), without the four allocations per
// event that dominated million-job runs.
func (l *Loop) record(now time.Time, name string) {
	l.fired++
	l.last = now
	b := l.line[:0]
	b = strconv.AppendUint(b, l.fired, 10)
	b = append(b, ' ')
	b = strconv.AppendFloat(b, now.Sub(l.start).Seconds(), 'f', 9, 64)
	b = append(b, ' ')
	b = append(b, name...)
	b = append(b, '\n')
	l.line = b
	l.hash.Write(b)
	if l.logW != nil {
		if _, err := l.logW.Write(b); err != nil && l.err == nil {
			l.err = err
		}
	}
}

// ScheduleAt schedules fn once at the instant at. Unlike the raw
// scheduler it returns ErrPastEvent when at is before the current
// virtual time instead of clamping.
func (l *Loop) ScheduleAt(at time.Time, name string, fn func(now time.Time)) (simtime.CancelFunc, error) {
	if now := l.sched.Now(); at.Before(now) {
		return nil, fmt.Errorf("%w: %q at %v, now %v", ErrPastEvent, name, at, now)
	}
	return l.sched.At(at, name, func(now time.Time) {
		l.record(now, name)
		fn(now)
	}), nil
}

// ScheduleAfter schedules fn once after d. A negative d is ErrPastEvent;
// zero is allowed and fires at the current instant after events already
// queued there.
func (l *Loop) ScheduleAfter(d time.Duration, name string, fn func(now time.Time)) (simtime.CancelFunc, error) {
	if d < 0 {
		return nil, fmt.Errorf("%w: %q after %v", ErrPastEvent, name, d)
	}
	return l.ScheduleAt(l.sched.Now().Add(d), name, fn)
}

// ScheduleEvery schedules fn every period, first at Now()+period. A
// non-positive period is an error.
func (l *Loop) ScheduleEvery(period time.Duration, name string, fn func(now time.Time)) (simtime.CancelFunc, error) {
	if period <= 0 {
		return nil, fmt.Errorf("sim: ScheduleEvery(%v) for %q: period must be positive", period, name)
	}
	return l.sched.Every(period, name, func(now time.Time) {
		l.record(now, name)
		fn(now)
	}), nil
}

// Step fires the single earliest pending event; it reports whether one
// fired.
func (l *Loop) Step() bool { return l.sched.Step() }

// RunUntil fires all events up to deadline in order and advances the
// clock to it, returning the number fired.
func (l *Loop) RunUntil(deadline time.Time) int { return l.sched.RunUntil(deadline) }

// RunUntilIdle fires events until the queue drains, erroring if more
// than maxEvents fire (a runaway guard for scenarios with self-renewing
// event chains; maxEvents <= 0 means no bound). It returns the number of
// events fired.
func (l *Loop) RunUntilIdle(maxEvents uint64) (uint64, error) {
	var n uint64
	for l.sched.Step() {
		n++
		if maxEvents > 0 && n > maxEvents {
			return n, fmt.Errorf("sim: RunUntilIdle exceeded %d events at %v", maxEvents, l.sched.Now())
		}
	}
	return n, nil
}

// EventsFired returns how many loop-scheduled events have fired.
func (l *Loop) EventsFired() uint64 { return l.fired }

// LastFired returns the virtual time of the most recent loop event (the
// loop start before any fired). Loop events fire in non-decreasing
// virtual time, so this is also the maximum over all fired events.
func (l *Loop) LastFired() time.Time { return l.last }

// Digest returns the hex SHA-256 of the fired-event log so far. Two
// same-seed runs must produce equal digests at every point.
func (l *Loop) Digest() string { return hex.EncodeToString(l.hash.Sum(nil)) }

// Err returns the first event-log write error, if any.
func (l *Loop) Err() error { return l.err }
