package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nlarm/internal/loadgen"
	"nlarm/internal/trace"
)

var updateSim = flag.Bool("update", false, "rewrite sim golden files")

// testWorkload is a small congested mix for scenario tests: enough
// competing cohorts that FIFO blocks and backfill has holes to fill.
func testWorkload(jobs int) loadgen.Workload {
	return ScaledWorkload(jobs, 64, 0.8)
}

func testConfig(jobs int, d Discipline, seed uint64) ScenarioConfig {
	return ScenarioConfig{
		Seed:         seed,
		Nodes:        64,
		CoresPerNode: 8,
		Workload:     testWorkload(jobs),
		Discipline:   d,
	}
}

func TestScenarioAccounting(t *testing.T) {
	res, err := RunScenario(testConfig(1000, EASY, 11), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed+res.Rejected != res.Jobs {
		t.Fatalf("completed %d + rejected %d != jobs %d", res.Completed, res.Rejected, res.Jobs)
	}
	if res.Completed == 0 {
		t.Fatalf("no jobs completed")
	}
	if res.MeanWaitSec < 0 || res.MaxWaitSec < res.MeanWaitSec {
		t.Fatalf("wait stats inconsistent: mean %.2f max %.2f", res.MeanWaitSec, res.MaxWaitSec)
	}
	if res.UtilizationPct <= 0 || res.UtilizationPct > 100 {
		t.Fatalf("utilization %.2f%% out of range", res.UtilizationPct)
	}
	if res.MakespanSec <= 0 {
		t.Fatalf("non-positive makespan %.2f", res.MakespanSec)
	}
	if res.Digest == "" {
		t.Fatalf("empty digest")
	}
}

func TestScenarioTraceInvariants(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunScenario(testConfig(1000, EASY, 12), &buf)
	if err != nil {
		t.Fatal(err)
	}
	hdr, recs, digest, err := trace.ReadJobTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if digest != res.Digest {
		t.Fatalf("reader digest %s != writer digest %s", digest, res.Digest)
	}
	if hdr.Seed != 12 {
		t.Fatalf("header seed %d, want 12", hdr.Seed)
	}
	if len(recs) != res.Jobs {
		t.Fatalf("%d trace records for %d jobs", len(recs), res.Jobs)
	}
	backfilled := 0
	for i, r := range recs {
		if r.StartSec < 0 {
			if r.EndSec >= 0 {
				t.Fatalf("record %d: rejected job with EndSec %.2f", i, r.EndSec)
			}
			continue
		}
		if r.StartSec < r.SubmitSec {
			t.Fatalf("record %d: started %.3f before submit %.3f", i, r.StartSec, r.SubmitSec)
		}
		if r.EndSec < r.StartSec {
			t.Fatalf("record %d: ended %.3f before start %.3f", i, r.EndSec, r.StartSec)
		}
		if r.Nodes <= 0 || r.Nodes > 64 {
			t.Fatalf("record %d: %d nodes on a 64-node cluster", i, r.Nodes)
		}
		if r.Backfilled {
			backfilled++
		}
	}
	if backfilled != res.Backfilled {
		t.Fatalf("trace has %d backfilled jobs, result says %d", backfilled, res.Backfilled)
	}
	// Records are written in completion order.
	for i := 1; i < len(recs); i++ {
		if recs[i].EndSec >= 0 && recs[i-1].EndSec >= 0 && recs[i].EndSec < recs[i-1].EndSec {
			t.Fatalf("record %d completes at %.3f before record %d at %.3f", i, recs[i].EndSec, i-1, recs[i-1].EndSec)
		}
	}
}

func TestScenarioBackfillImprovesWaits(t *testing.T) {
	fifo, err := RunScenario(testConfig(2000, FIFO, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	easy, err := RunScenario(testConfig(2000, EASY, 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	if easy.Backfilled == 0 {
		t.Fatalf("EASY run backfilled nothing on a congested cluster")
	}
	if easy.MeanWaitSec > fifo.MeanWaitSec {
		t.Fatalf("EASY mean wait %.1fs worse than FIFO %.1fs", easy.MeanWaitSec, fifo.MeanWaitSec)
	}
}

// TestScenarioDeterminism runs the same seeded 100k-job scenario twice
// and requires bit-identical trace digests — the property the CI
// sim-determinism job pins down (two separate processes there).
func TestScenarioDeterminism(t *testing.T) {
	jobs := 100_000
	if testing.Short() {
		jobs = 5_000
	}
	cfg := ScenarioConfig{
		Seed:         99,
		Nodes:        256,
		CoresPerNode: 8,
		Workload:     ScaledWorkload(jobs, 256, 0.7),
		Discipline:   EASY,
	}
	r1, err := RunScenario(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunScenario(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Digest != r2.Digest {
		t.Fatalf("same-seed digests differ:\nrun 1: %s\nrun 2: %s", r1.Digest, r2.Digest)
	}
	if r1.EventsFired != r2.EventsFired || r1.MeanWaitSec != r2.MeanWaitSec {
		t.Fatalf("same-seed stats differ: %+v vs %+v", r1, r2)
	}
	other := cfg
	other.Seed = 100
	r3, err := RunScenario(other, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Digest == r1.Digest {
		t.Fatalf("different seeds produced the same digest %s", r1.Digest)
	}
}

// TestScenarioGolden pins the full trace bytes of a 1k-job scenario to a
// checked-in golden file. Run with -update to regenerate after an
// intentional scheduling or format change.
func TestScenarioGolden(t *testing.T) {
	var buf bytes.Buffer
	if _, err := RunScenario(testConfig(1000, EASY, 2026), &buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "scenario_1k_easy.trace")
	if *updateSim {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test ./internal/sim -run Golden -update` to create): %v", err)
	}
	if bytes.Equal(buf.Bytes(), want) {
		return
	}
	// Diff decision-by-decision for a readable failure.
	_, gotRecs, _, err := trace.ReadJobTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, wantRecs, _, err := trace.ReadJobTrace(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	diffs := trace.DiffJobRecords(gotRecs, wantRecs, 5)
	if len(diffs) == 0 {
		diffs = []string{"records equal but raw bytes differ (header or encoding change)"}
	}
	t.Fatalf("trace deviates from golden file (rerun with -update if intended):\n  %s", strings.Join(diffs, "\n  "))
}

// TestScenarioReplayFromHeader re-runs a scenario from nothing but its
// recorded trace header and checks every decision matches — the
// contract nlarm-replay -trace relies on.
func TestScenarioReplayFromHeader(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunScenario(testConfig(1500, EASY, 777), &buf)
	if err != nil {
		t.Fatal(err)
	}
	hdr, recs, _, err := trace.ReadJobTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var cfg ScenarioConfig
	if err := json.Unmarshal(hdr.Scenario, &cfg); err != nil {
		t.Fatalf("unmarshal embedded scenario: %v", err)
	}
	var buf2 bytes.Buffer
	res2, err := RunScenario(cfg, &buf2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Digest != res.Digest {
		t.Fatalf("replay digest %s != recorded %s", res2.Digest, res.Digest)
	}
	_, recs2, _, err := trace.ReadJobTrace(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if diffs := trace.DiffJobRecords(recs, recs2, 5); len(diffs) != 0 {
		t.Fatalf("replay diverged:\n  %s", strings.Join(diffs, "\n  "))
	}
}

func TestScenarioRejectsOversizedJobs(t *testing.T) {
	w := loadgen.Workload{
		Version: loadgen.WorkloadVersion,
		Name:    "oversized",
		Cohorts: []loadgen.Cohort{{
			Name: "huge", Clients: 1, Jobs: 5,
			Interarrival: loadgen.Dist{Kind: "constant", Mean: 60},
			Procs:        loadgen.Dist{Kind: "constant", Mean: 4096},
			PPN:          8,
			Service:      loadgen.Dist{Kind: "constant", Mean: 60},
			Walltime:     loadgen.Dist{Kind: "constant", Mean: 120},
		}},
	}
	res, err := RunScenario(ScenarioConfig{Seed: 1, Nodes: 16, CoresPerNode: 8, Workload: w}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rejected != 5 || res.Completed != 0 {
		t.Fatalf("want 5 rejected / 0 completed, got %d / %d", res.Rejected, res.Completed)
	}
}

func TestScenarioMaxEventsGuard(t *testing.T) {
	cfg := testConfig(500, FIFO, 3)
	cfg.MaxEvents = 10
	if _, err := RunScenario(cfg, nil); err == nil {
		t.Fatalf("MaxEvents guard did not trip")
	}
}

func TestMillionJobConfigShape(t *testing.T) {
	cfg := MillionJobConfig(1)
	if got := cfg.Workload.TotalJobs(); got != 1_000_000 {
		t.Fatalf("MillionJobConfig totals %d jobs, want 1000000", got)
	}
	if err := cfg.Workload.Validate(); err != nil {
		t.Fatalf("MillionJobConfig workload invalid: %v", err)
	}
	if cfg.withDefaults().BackfillDepth != 32 {
		t.Fatalf("default backfill depth = %d, want 32", cfg.withDefaults().BackfillDepth)
	}
}
