package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// runScratch carries one worker's reusable buffers across scenario
// runs: the capacity model's pooled per-event state and the policy
// layer's scratch. Runs that share a scratch must be sequential; the
// sweep gives each worker its own.
type runScratch struct {
	popped  []runEntry
	jobFree []*simJob
	pol     policyScratch
}

// SweepResult aggregates a RunMany sweep.
type SweepResult struct {
	// Results holds one entry per config, in config order — independent
	// of worker count or completion order.
	Results []*ScenarioResult `json:"results"`
	// Workers is the worker count actually used.
	Workers int `json:"workers"`
	// Digest chains the per-run trace digests in config order: the
	// whole sweep's determinism handle.
	Digest string `json:"digest"`
	// WallTime is the sweep's total wall-clock time.
	WallTime time.Duration `json:"wall_time"`
}

// RunMany executes every config, fanning them across up to `workers`
// goroutines (0 or less means GOMAXPROCS, clamped to the config
// count). Each worker owns one runScratch, so per-run state is pooled
// without cross-run sharing; results land in pre-assigned slots, making
// output — including the aggregate digest — bit-identical for any
// worker count. The first failing config (by index, not completion
// order) aborts the sweep's result.
func RunMany(cfgs []ScenarioConfig, workers int) (*SweepResult, error) {
	if len(cfgs) == 0 {
		return nil, fmt.Errorf("sim: sweep needs at least one config")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	wallStart := time.Now()
	results := make([]*ScenarioResult, len(cfgs))
	errs := make([]error, len(cfgs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs := &runScratch{}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cfgs) {
					return
				}
				results[i], errs[i] = runScenario(cfgs[i], io.Discard, rs)
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: sweep run %d: %w", i, err)
		}
	}
	h := sha256.New()
	for i, res := range results {
		fmt.Fprintf(h, "%d %s\n", i, res.Digest)
	}
	return &SweepResult{
		Results:  results,
		Workers:  workers,
		Digest:   hex.EncodeToString(h.Sum(nil)),
		WallTime: time.Since(wallStart),
	}, nil
}

// Render formats the sweep as a small report.
func (r *SweepResult) Render() string {
	out := fmt.Sprintf("sim sweep: %d runs on %d workers in %v | digest %s\n",
		len(r.Results), r.Workers, r.WallTime.Round(time.Millisecond), r.Digest[:16])
	totalJobs, totalCompleted := 0, 0
	for _, res := range r.Results {
		totalJobs += res.Jobs
		totalCompleted += res.Completed
	}
	out += fmt.Sprintf("  %d jobs total, %d completed (%.0f jobs/s of wall time)\n",
		totalJobs, totalCompleted, float64(totalCompleted)/r.WallTime.Seconds())
	return out
}
