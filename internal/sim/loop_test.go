package sim

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"nlarm/internal/rng"
	"nlarm/internal/simtime"
)

var loopEpoch = time.Date(2020, 3, 2, 8, 0, 0, 0, time.UTC)

// randomLoopRun schedules a seeded burst of interleaved one-shot and
// periodic events (some cancelling themselves, some spawning children)
// and returns the mirrored event log and the digest.
func randomLoopRun(t *testing.T, seed uint64) (string, string, uint64) {
	t.Helper()
	l := NewLoop(simtime.NewScheduler(loopEpoch))
	var buf bytes.Buffer
	l.SetLog(&buf)
	r := rng.New(seed)
	for i := 0; i < 200; i++ {
		d := time.Duration(r.Intn(5000)) * time.Millisecond
		name := fmt.Sprintf("one-%d", i)
		switch i % 4 {
		case 0: // plain one-shot
			if _, err := l.ScheduleAfter(d, name, func(time.Time) {}); err != nil {
				t.Fatalf("ScheduleAfter: %v", err)
			}
		case 1: // one-shot that spawns a child event
			if _, err := l.ScheduleAfter(d, name, func(time.Time) {
				l.ScheduleAfter(time.Duration(r.Intn(1000))*time.Millisecond, name+"-child", func(time.Time) {})
			}); err != nil {
				t.Fatalf("ScheduleAfter: %v", err)
			}
		case 2: // periodic, cancelled after a few fires
			fires := 0
			var cancel simtime.CancelFunc
			cancel, err := l.ScheduleEvery(time.Duration(1+r.Intn(500))*time.Millisecond, name, func(time.Time) {
				fires++
				if fires >= 3 {
					cancel()
				}
			})
			if err != nil {
				t.Fatalf("ScheduleEvery: %v", err)
			}
		default: // same-instant pile-up: zero-delay chains
			if _, err := l.ScheduleAfter(d, name, func(now time.Time) {
				l.ScheduleAfter(0, name+"-now", func(time.Time) {})
			}); err != nil {
				t.Fatalf("ScheduleAfter: %v", err)
			}
		}
	}
	fired, err := l.RunUntilIdle(100000)
	if err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("loop log error: %v", err)
	}
	return buf.String(), l.Digest(), fired
}

func TestLoopVirtualTimeNonDecreasing(t *testing.T) {
	log, _, fired := randomLoopRun(t, 42)
	lines := strings.Split(strings.TrimRight(log, "\n"), "\n")
	if uint64(len(lines)) != fired {
		t.Fatalf("log has %d lines, loop fired %d events", len(lines), fired)
	}
	prev := -1.0
	for i, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			t.Fatalf("line %d: malformed event log line %q", i, line)
		}
		idx, err := strconv.Atoi(fields[0])
		if err != nil || idx != i+1 {
			t.Fatalf("line %d: event index %q, want %d", i, fields[0], i+1)
		}
		at, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("line %d: bad timestamp %q: %v", i, fields[1], err)
		}
		if at < prev {
			t.Fatalf("line %d: virtual time went backwards: %.9f after %.9f", i, at, prev)
		}
		prev = at
	}
}

func TestLoopSameSeedByteIdenticalLogs(t *testing.T) {
	log1, dig1, _ := randomLoopRun(t, 7)
	log2, dig2, _ := randomLoopRun(t, 7)
	if log1 != log2 {
		t.Fatalf("same-seed event logs differ:\n--- run 1 ---\n%.400s\n--- run 2 ---\n%.400s", log1, log2)
	}
	if dig1 != dig2 {
		t.Fatalf("same-seed digests differ: %s != %s", dig1, dig2)
	}
	_, dig3, _ := randomLoopRun(t, 8)
	if dig3 == dig1 {
		t.Fatalf("different seeds produced the same digest %s", dig1)
	}
}

func TestLoopPastEventRejected(t *testing.T) {
	l := NewLoop(simtime.NewScheduler(loopEpoch))
	if _, err := l.ScheduleAt(loopEpoch.Add(-time.Second), "past", func(time.Time) {}); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("ScheduleAt(past) error = %v, want ErrPastEvent", err)
	}
	if _, err := l.ScheduleAfter(-time.Millisecond, "neg", func(time.Time) {}); !errors.Is(err, ErrPastEvent) {
		t.Fatalf("ScheduleAfter(negative) error = %v, want ErrPastEvent", err)
	}
	if _, err := l.ScheduleEvery(0, "zero", func(time.Time) {}); err == nil {
		t.Fatalf("ScheduleEvery(0) succeeded, want error")
	}
	// The rejected schedules must not have queued anything.
	if l.Step() {
		t.Fatalf("a rejected event still fired")
	}
	// Scheduling exactly at now is allowed.
	if _, err := l.ScheduleAt(l.Now(), "at-now", func(time.Time) {}); err != nil {
		t.Fatalf("ScheduleAt(now): %v", err)
	}
	if !l.Step() {
		t.Fatalf("at-now event did not fire")
	}
}

func TestLoopRunUntilIdleGuard(t *testing.T) {
	l := NewLoop(simtime.NewScheduler(loopEpoch))
	var renew func(time.Time)
	renew = func(time.Time) { l.ScheduleAfter(time.Second, "renew", renew) }
	if _, err := l.ScheduleAfter(time.Second, "renew", renew); err != nil {
		t.Fatal(err)
	}
	if _, err := l.RunUntilIdle(100); err == nil {
		t.Fatalf("RunUntilIdle did not trip the runaway guard on a self-renewing chain")
	}
}
