package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"nlarm/internal/loadgen"
	"nlarm/internal/simtime"
	"nlarm/internal/trace"
)

// Discipline selects the scenario's queue discipline.
type Discipline string

const (
	// FIFO is strict head-of-line ordering (priority-aware, like the
	// jobqueue without backfill).
	FIFO Discipline = "fifo"
	// EASY is EASY backfill: jobs behind a blocked head may start out of
	// order when their walltime estimate fits before the head's node
	// reservation, with an aging bound so nothing starves.
	EASY Discipline = "backfill"
)

// scenarioEpoch is the default virtual start (the session epoch, so
// capacity scenarios and full-stack sessions share a time origin).
var scenarioEpoch = time.Date(2020, 3, 2, 8, 0, 0, 0, time.UTC)

// ScenarioConfig describes one capacity-fidelity scheduling scenario:
// a homogeneous cluster modeled at node granularity (jobs take
// ceil(procs/ppn) whole nodes — exclusive allocation, the common batch
// setting) with a seeded workload played through the event loop. Node
// *identity* (placement, network cost) is deliberately out of scope
// here: that is the broker's job, exercised by the harness experiments;
// the capacity model answers queueing questions (wait, makespan,
// utilization, discipline comparisons) at million-job scale.
type ScenarioConfig struct {
	// Seed drives the workload generator.
	Seed uint64 `json:"seed"`
	// Nodes is the cluster size; CoresPerNode caps a cohort's PPN.
	Nodes        int `json:"nodes"`
	CoresPerNode int `json:"cores_per_node"`
	// Workload is the job traffic spec.
	Workload loadgen.Workload `json:"workload"`
	// Discipline is FIFO or EASY (default FIFO).
	Discipline Discipline `json:"discipline,omitempty"`
	// BackfillDepth bounds how many queued jobs one backfill pass
	// examines (default 32, like real schedulers' bf_max_job_test).
	BackfillDepth int `json:"backfill_depth,omitempty"`
	// AgingBound stops backfill past long-waiting jobs (default 30m).
	AgingBound time.Duration `json:"aging_bound,omitempty"`
	// Start is the virtual start time (default the session epoch).
	Start time.Time `json:"start,omitempty"`
	// MaxEvents guards runaway event chains (default 4*jobs+1024).
	MaxEvents uint64 `json:"max_events,omitempty"`
	// Policy, when set, runs the scenario at policy fidelity: every job
	// start is placed on concrete nodes by Algorithms 1-2 over one live
	// cost model (see PolicyConfig). Nil keeps the pure capacity model —
	// and its byte-stable version-1 traces.
	Policy *PolicyConfig `json:"policy,omitempty"`
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 8
	}
	if c.Discipline == "" {
		c.Discipline = FIFO
	}
	if c.BackfillDepth <= 0 {
		c.BackfillDepth = 32
	}
	if c.AgingBound <= 0 {
		c.AgingBound = 30 * time.Minute
	}
	if c.Start.IsZero() {
		c.Start = scenarioEpoch
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 4*uint64(c.Workload.TotalJobs()) + 1024
	}
	if c.Policy != nil {
		pc := c.Policy.withDefaults(c.Nodes)
		c.Policy = &pc
	}
	return c
}

// ScenarioResult summarizes one scenario run.
type ScenarioResult struct {
	Jobs       int `json:"jobs"`
	Completed  int `json:"completed"`
	Rejected   int `json:"rejected"`
	Backfilled int `json:"backfilled"`
	// MeanWaitSec/MaxWaitSec aggregate submit-to-start waits over
	// completed jobs.
	MeanWaitSec float64 `json:"mean_wait_sec"`
	MaxWaitSec  float64 `json:"max_wait_sec"`
	// MakespanSec is first-submit to last-completion in virtual time.
	MakespanSec float64 `json:"makespan_sec"`
	// UtilizationPct is busy node-seconds over Nodes*makespan.
	UtilizationPct float64 `json:"utilization_pct"`
	// MaxQueueDepth is the deepest the pending queue got.
	MaxQueueDepth int `json:"max_queue_depth"`
	// EventsFired counts loop events (arrivals + completions).
	EventsFired uint64 `json:"events_fired"`
	// Digest is the SHA-256 of the job trace — the determinism handle.
	Digest string `json:"digest"`
	// Cohorts breaks completed-job wait statistics down per workload
	// cohort, sorted by cohort name — the inputs to Jain-fairness scoring
	// across user classes (internal/tune).
	Cohorts []CohortStat `json:"cohorts,omitempty"`
	// Policy summarizes the placement layer on policy-fidelity runs.
	Policy *PolicyStats `json:"policy,omitempty"`
	// WallTime is how long the run took in real time.
	WallTime time.Duration `json:"wall_time"`
}

// CohortStat is one cohort's completed-job wait summary.
type CohortStat struct {
	Name        string  `json:"name"`
	Completed   int     `json:"completed"`
	MeanWaitSec float64 `json:"mean_wait_sec"`
	MaxWaitSec  float64 `json:"max_wait_sec"`
}

// cohortAcc accumulates one cohort's completed-job waits.
type cohortAcc struct {
	n       int
	waitSum float64
	waitMax float64
}

func (a *cohortAcc) add(waitSec float64) {
	a.n++
	a.waitSum += waitSec
	if waitSec > a.waitMax {
		a.waitMax = waitSec
	}
}

// cohortStats flattens the accumulators into name-sorted CohortStats so
// results are deterministic regardless of map order.
func cohortStats(m map[string]*cohortAcc) []CohortStat {
	if len(m) == 0 {
		return nil
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]CohortStat, 0, len(names))
	for _, name := range names {
		acc := m[name]
		cs := CohortStat{Name: name, Completed: acc.n, MaxWaitSec: acc.waitMax}
		if acc.n > 0 {
			cs.MeanWaitSec = acc.waitSum / float64(acc.n)
		}
		out = append(out, cs)
	}
	return out
}

// simJob is one job's state inside the capacity model. Jobs are
// recycled through a freelist; gen counts reincarnations so stale
// runHeap entries from a previous life are recognizable.
type simJob struct {
	id       int
	gen      uint32
	cohort   string
	client   int
	procs    int
	ppn      int
	priority int
	nodes    int
	walltime time.Duration
	service  time.Duration
	submit   time.Time
	start    time.Time
	end      time.Time
	running  bool
	backfill bool
	// place and the costs are the policy-fidelity overlay (nil / zero on
	// capacity runs).
	place  *placement
	clCost float64
	nlCost float64
}

// runEntry orders running jobs by completion time for reservations. gen
// snapshots job.gen at push time: a mismatch means the job object was
// recycled and the entry is stale.
type runEntry struct {
	end time.Time
	seq int
	gen uint32
	job *simJob
}

// scenario is the live state of a run.
type scenario struct {
	cfg     ScenarioConfig
	loop    *Loop
	gen     *loadgen.WorkloadGen
	tw      *trace.JobTraceWriter
	rs   *runScratch
	pol  *policyState
	free int
	// pending is the submit queue from pendHead on: head pops advance
	// the index instead of reslicing, which would shed front capacity
	// and force a reallocation on nearly every push.
	pending  []*simJob
	pendHead int
	// runHeap is a min-heap by (end, seq). Finished jobs are removed
	// lazily: a finished entry's end is <= now <= every live entry's end,
	// so stale entries surface at the front of any scan.
	runHeap  []runEntry
	startSeq int
	res      ScenarioResult
	cohorts  map[string]*cohortAcc
	firstSub time.Time
	lastEnd  time.Time
	waitSum  float64
	busySec  float64
	err      error
	// nextArr and arrFn implement the arrival chain with one persistent
	// callback instead of a closure per arrival.
	nextArr loadgen.Arrival
	arrFn   func(time.Time)
}

// RunScenario executes cfg, streaming the job trace to traceOut (nil
// discards the bytes but still computes the digest). Same config, same
// result — bit for bit.
func RunScenario(cfg ScenarioConfig, traceOut io.Writer) (*ScenarioResult, error) {
	return runScenario(cfg, traceOut, &runScratch{})
}

// runScenario is RunScenario against caller-owned scratch: the sweep
// engine threads one runScratch per worker through here so back-to-back
// runs reuse each other's buffers.
func runScenario(cfg ScenarioConfig, traceOut io.Writer, rs *runScratch) (*ScenarioResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("sim: scenario needs a positive node count")
	}
	if err := cfg.Workload.Validate(); err != nil {
		return nil, err
	}
	wallStart := time.Now()
	gen, err := loadgen.NewWorkloadGen(cfg.Workload, cfg.Start, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if traceOut == nil {
		traceOut = io.Discard
	}
	scenJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("sim: marshal scenario config: %w", err)
	}
	hdr := trace.JobTraceHeader{Seed: cfg.Seed, Scenario: scenJSON}
	if cfg.Policy == nil {
		// Capacity runs carry no cost columns: pin the byte-stable
		// version-1 format so golden traces and cross-version replays
		// keep verifying.
		hdr.Version = 1
	}
	tw, err := trace.NewJobTraceWriter(traceOut, hdr)
	if err != nil {
		return nil, err
	}
	s := &scenario{
		cfg:     cfg,
		loop:    NewLoop(simtime.NewScheduler(cfg.Start)),
		gen:     gen,
		tw:      tw,
		rs:      rs,
		free:    cfg.Nodes,
		cohorts: make(map[string]*cohortAcc),
	}
	if cfg.Policy != nil {
		pol, err := newPolicyState(cfg, &rs.pol)
		if err != nil {
			return nil, err
		}
		s.pol = pol
	}
	s.res.Jobs = cfg.Workload.TotalJobs()
	s.arrFn = s.arrival
	if a, ok := gen.Next(); ok {
		s.nextArr = a
		if _, err := s.loop.ScheduleAt(a.At, "arrival", s.arrFn); err != nil {
			return nil, err
		}
	}
	fired, err := s.loop.RunUntilIdle(cfg.MaxEvents)
	if err != nil {
		return nil, err
	}
	if s.err != nil {
		return nil, s.err
	}
	if pend := len(s.pending) - s.pendHead; pend != 0 {
		return nil, fmt.Errorf("sim: %d jobs still pending after the event queue drained", pend)
	}
	if err := tw.Flush(); err != nil {
		return nil, err
	}
	s.res.EventsFired = fired
	if n := s.res.Completed; n > 0 {
		s.res.MeanWaitSec = s.waitSum / float64(n)
	}
	if !s.lastEnd.IsZero() && s.lastEnd.After(s.firstSub) {
		s.res.MakespanSec = s.lastEnd.Sub(s.firstSub).Seconds()
		s.res.UtilizationPct = 100 * s.busySec / (float64(cfg.Nodes) * s.res.MakespanSec)
	}
	s.res.Digest = tw.Digest()
	s.res.Cohorts = cohortStats(s.cohorts)
	if s.pol != nil {
		s.res.Policy = s.pol.finalize()
	}
	s.res.WallTime = time.Since(wallStart)
	return &s.res, nil
}

// arrival is the loop callback for the pending arrival: submit it,
// chain the next one (same callback, new nextArr — the event sequence
// is identical to a closure per arrival, without the allocation), and
// run a scheduling pass.
func (s *scenario) arrival(now time.Time) {
	a := s.nextArr
	s.submit(a, now)
	if next, ok := s.gen.Next(); ok {
		s.nextArr = next
		if _, err := s.loop.ScheduleAt(next.At, "arrival", s.arrFn); err != nil && s.err == nil {
			s.err = err
		}
	}
	s.schedulePass(now)
}

// getJob takes a job object off the freelist (bumping its generation)
// or allocates one.
func (s *scenario) getJob() *simJob {
	if k := len(s.rs.jobFree); k > 0 {
		j := s.rs.jobFree[k-1]
		s.rs.jobFree = s.rs.jobFree[:k-1]
		*j = simJob{gen: j.gen + 1}
		return j
	}
	return &simJob{}
}

// releaseJob recycles j once it can never be touched again (recorded,
// and any placement returned). Its runHeap entry may still be pending a
// lazy pop; the generation check makes it stale.
func (s *scenario) releaseJob(j *simJob) {
	s.rs.jobFree = append(s.rs.jobFree, j)
}

// submit enqueues arrival a (or rejects it if it can never fit).
func (s *scenario) submit(a loadgen.Arrival, now time.Time) {
	effPPN := a.PPN
	if effPPN <= 0 || effPPN > s.cfg.CoresPerNode {
		effPPN = s.cfg.CoresPerNode
	}
	j := s.getJob()
	j.id = a.Seq
	j.cohort = a.Cohort
	j.client = a.Client
	j.procs = a.Procs
	j.ppn = effPPN
	j.priority = a.Priority
	j.nodes = (a.Procs + effPPN - 1) / effPPN
	j.walltime = a.Walltime
	j.service = a.Service
	j.submit = now
	if s.firstSub.IsZero() {
		s.firstSub = now
	}
	if j.nodes > s.cfg.Nodes {
		s.res.Rejected++
		s.record(j, -1, -1)
		s.releaseJob(j)
		return
	}
	// Stable priority insertion, scanning from the back: after the last
	// equal-or-higher priority (all-zero priorities append — plain FIFO).
	at := len(s.pending)
	for at > s.pendHead && s.pending[at-1].priority < j.priority {
		at--
	}
	s.pending = append(s.pending, nil)
	copy(s.pending[at+1:], s.pending[at:])
	s.pending[at] = j
	if d := len(s.pending) - s.pendHead; d > s.res.MaxQueueDepth {
		s.res.MaxQueueDepth = d
	}
}

// schedulePass launches queue heads in order until one does not fit,
// then (under EASY) backfills around the blocked head.
func (s *scenario) schedulePass(now time.Time) {
	for s.pendHead < len(s.pending) && s.pending[s.pendHead].nodes <= s.free {
		j := s.pending[s.pendHead]
		s.pending[s.pendHead] = nil
		s.pendHead++
		s.startJob(j, now, false)
	}
	if s.pendHead == len(s.pending) {
		s.pending = s.pending[:0]
		s.pendHead = 0
	} else if s.pendHead > 1024 && s.pendHead*2 >= len(s.pending) {
		// Compact the drained prefix so the queue's footprint tracks its
		// depth, not its history.
		n := copy(s.pending, s.pending[s.pendHead:])
		for k := n; k < len(s.pending); k++ {
			s.pending[k] = nil
		}
		s.pending = s.pending[:n]
		s.pendHead = 0
	}
	if s.cfg.Discipline != EASY || len(s.pending)-s.pendHead < 2 {
		return
	}
	head := s.pending[s.pendHead]
	maxWait := now.Sub(head.submit)
	if maxWait >= s.cfg.AgingBound {
		return // the head has aged out: nothing may overtake it
	}
	reserve := s.earliestStart(now, head.nodes)
	if reserve.IsZero() {
		return
	}
	scanned := 0
	for i := s.pendHead + 1; i < len(s.pending) && scanned < s.cfg.BackfillDepth; {
		j := s.pending[i]
		if w := now.Sub(j.submit); w > maxWait {
			maxWait = w
		}
		if maxWait >= s.cfg.AgingBound {
			return // aging barrier: a scanned job has waited too long
		}
		scanned++
		if j.walltime > 0 && j.nodes <= s.free && !now.Add(j.walltime).After(reserve) {
			copy(s.pending[i:], s.pending[i+1:])
			s.pending[len(s.pending)-1] = nil
			s.pending = s.pending[:len(s.pending)-1]
			s.startJob(j, now, true)
			continue // the slice shifted; re-examine index i
		}
		i++
	}
}

// earliestStart is the head's node reservation: the earliest instant at
// which enough running jobs will have completed to free `needed` nodes.
// The zero time means never (cannot happen for admitted jobs).
func (s *scenario) earliestStart(now time.Time, needed int) time.Time {
	if s.free >= needed {
		return now
	}
	acc := s.free
	popped := s.rs.popped[:0]
	var at time.Time
	for len(s.runHeap) > 0 {
		e := s.popRun()
		if e.gen != e.job.gen || !e.job.running {
			continue // stale entry: drop it for good
		}
		popped = append(popped, e)
		acc += e.job.nodes
		if acc >= needed {
			at = e.end
			break
		}
	}
	for _, e := range popped {
		s.pushRun(e)
	}
	s.rs.popped = popped[:0]
	return at
}

// startJob commits j to n nodes now and schedules its completion. On
// policy runs the placement decision happens here — a failure aborts
// the run (capacity admission guarantees placement feasibility, so a
// refusal is a bug, not a full cluster).
func (s *scenario) startJob(j *simJob, now time.Time, backfilled bool) {
	if s.pol != nil {
		if err := s.pol.place(j, now); err != nil {
			if s.err == nil {
				s.err = err
			}
			return
		}
	}
	s.free -= j.nodes
	j.start = now
	j.end = now.Add(j.service)
	j.running = true
	j.backfill = backfilled
	if backfilled {
		s.res.Backfilled++
	}
	s.waitSum += now.Sub(j.submit).Seconds()
	if w := now.Sub(j.submit).Seconds(); w > s.res.MaxWaitSec {
		s.res.MaxWaitSec = w
	}
	s.pushRun(runEntry{end: j.end, seq: s.startSeq, gen: j.gen, job: j})
	s.startSeq++
	if _, err := s.loop.ScheduleAt(j.end, "finish", func(fnow time.Time) {
		s.finishJob(j, fnow)
	}); err != nil && s.err == nil {
		s.err = err
	}
}

// finishJob releases j's nodes, records it, and reschedules.
func (s *scenario) finishJob(j *simJob, now time.Time) {
	j.running = false
	s.free += j.nodes
	if s.pol != nil {
		s.pol.release(j)
	}
	s.busySec += float64(j.nodes) * j.service.Seconds()
	s.res.Completed++
	if acc, ok := s.cohorts[j.cohort]; ok {
		acc.add(j.start.Sub(j.submit).Seconds())
	} else {
		acc = &cohortAcc{}
		acc.add(j.start.Sub(j.submit).Seconds())
		s.cohorts[j.cohort] = acc
	}
	if now.After(s.lastEnd) {
		s.lastEnd = now
	}
	s.record(j, j.start.Sub(s.cfg.Start).Seconds(), now.Sub(s.cfg.Start).Seconds())
	s.schedulePass(now)
	s.releaseJob(j)
}

// record writes j's trace record (startSec/endSec -1 for rejections).
func (s *scenario) record(j *simJob, startSec, endSec float64) {
	rec := trace.JobRecord{
		ID:         j.id,
		Cohort:     j.cohort,
		Client:     j.client,
		Procs:      j.procs,
		PPN:        j.ppn,
		Priority:   j.priority,
		SubmitSec:  j.submit.Sub(s.cfg.Start).Seconds(),
		StartSec:   startSec,
		EndSec:     endSec,
		Nodes:      j.nodes,
		Backfilled: j.backfill,
		CLCost:     j.clCost,
		NLCost:     j.nlCost,
	}
	if j.walltime > 0 {
		rec.WalltimeSec = j.walltime.Seconds()
	}
	if err := s.tw.Write(rec); err != nil && s.err == nil {
		s.err = err
	}
}

// pushRun inserts e into the run heap.
func (s *scenario) pushRun(e runEntry) {
	s.runHeap = append(s.runHeap, e)
	i := len(s.runHeap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !runLess(s.runHeap[i], s.runHeap[p]) {
			break
		}
		s.runHeap[i], s.runHeap[p] = s.runHeap[p], s.runHeap[i]
		i = p
	}
}

// popRun removes and returns the earliest-ending entry.
func (s *scenario) popRun() runEntry {
	top := s.runHeap[0]
	last := len(s.runHeap) - 1
	s.runHeap[0] = s.runHeap[last]
	s.runHeap = s.runHeap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(s.runHeap) && runLess(s.runHeap[l], s.runHeap[small]) {
			small = l
		}
		if r < len(s.runHeap) && runLess(s.runHeap[r], s.runHeap[small]) {
			small = r
		}
		if small == i {
			break
		}
		s.runHeap[i], s.runHeap[small] = s.runHeap[small], s.runHeap[i]
		i = small
	}
	return top
}

// runLess orders run entries by (end, start sequence).
func runLess(a, b runEntry) bool {
	if !a.end.Equal(b.end) {
		return a.end.Before(b.end)
	}
	return a.seq < b.seq
}

// ScaledWorkload builds the canned three-cohort traffic mix for a
// cluster of `nodes` nodes, sized to `jobs` total jobs at roughly the
// target utilization: a Poisson "batch" cohort of mid-size jobs, a
// bursty Gamma "interactive" cohort with a diurnal afternoon peak, and a
// regular Weibull "array" cohort of small high-priority jobs.
func ScaledWorkload(jobs, nodes int, utilization float64) loadgen.Workload {
	if utilization <= 0 || utilization > 1 {
		utilization = 0.65
	}
	shares := []float64{0.5, 0.3, 0.2}
	// Mean node-seconds per job of each cohort (procs/ppn * service).
	nodeSec := []float64{32.0 / 8 * 600, 8.0 / 4 * 300, 4.0 / 4 * 120}
	perJob := 0.0
	for i, sh := range shares {
		perJob += sh * nodeSec[i]
	}
	// Aggregate rate so offered load = utilization * nodes node-sec/sec.
	totalDaily := utilization * float64(nodes) / perJob * 86400
	cohort := func(i int) float64 { return math.Max(1, math.Round(totalDaily*shares[i])) }
	jobsOf := func(i int) int {
		n := int(math.Round(float64(jobs) * shares[i]))
		if n < 1 {
			n = 1
		}
		return n
	}
	// Make the shares sum exactly to jobs (remainder onto the batch cohort).
	jb, ji, ja := jobsOf(0), jobsOf(1), jobsOf(2)
	jb += jobs - jb - ji - ja
	return loadgen.Workload{
		Version: loadgen.WorkloadVersion,
		Name:    fmt.Sprintf("scaled-%dj-%dn", jobs, nodes),
		Cohorts: []loadgen.Cohort{
			{
				Name: "batch", Clients: 16, Jobs: jb, DailyJobs: cohort(0),
				Interarrival: loadgen.Dist{Kind: "exponential"},
				Procs:        loadgen.Dist{Kind: "lognormal", Mean: 32, CV: 1, Min: 1, Max: 512},
				PPN:          8,
				Walltime:     loadgen.Dist{Kind: "lognormal", Mean: 900, CV: 1, Min: 60, Max: 14400},
				Service:      loadgen.Dist{Kind: "gamma", Mean: 600, CV: 1, Min: 10, Max: 14400},
			},
			{
				Name: "interactive", Clients: 64, Jobs: ji, DailyJobs: cohort(1),
				Interarrival: loadgen.Dist{Kind: "gamma", CV: 2},
				Hourly:       loadgen.SinusoidHourly(0.5, 15),
				Procs:        loadgen.Dist{Kind: "uniform", Min: 1, Max: 16},
				PPN:          4,
				Walltime:     loadgen.Dist{Kind: "lognormal", Mean: 450, CV: 0.8, Min: 30, Max: 7200},
				Service:      loadgen.Dist{Kind: "gamma", Mean: 300, CV: 1.2, Min: 5, Max: 7200},
			},
			{
				Name: "array", Clients: 8, Jobs: ja, DailyJobs: cohort(2),
				Interarrival: loadgen.Dist{Kind: "weibull", CV: 0.7},
				Procs:        loadgen.Dist{Kind: "constant", Mean: 4},
				PPN:          4,
				Walltime:     loadgen.Dist{Kind: "constant", Mean: 180},
				Service:      loadgen.Dist{Kind: "gamma", Mean: 120, CV: 0.5, Min: 5, Max: 600},
				Priority:     loadgen.Dist{Kind: "constant", Mean: 1},
			},
		},
	}
}

// MillionJobConfig is the acceptance scenario: one million jobs on 1024
// nodes under EASY backfill — weeks of traffic that must complete in
// seconds of wall time with a stable digest.
func MillionJobConfig(seed uint64) ScenarioConfig {
	return ScenarioConfig{
		Seed:         seed,
		Nodes:        1024,
		CoresPerNode: 8,
		Workload:     ScaledWorkload(1_000_000, 1024, 0.65),
		Discipline:   EASY,
	}
}

// Render formats the result as a small report table.
func (r *ScenarioResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim scenario: %d jobs, %d completed, %d rejected, %d backfilled\n",
		r.Jobs, r.Completed, r.Rejected, r.Backfilled)
	fmt.Fprintf(&b, "  wait mean %.1fs max %.1fs | makespan %.0fs (%.1f days) | utilization %.1f%%\n",
		r.MeanWaitSec, r.MaxWaitSec, r.MakespanSec, r.MakespanSec/86400, r.UtilizationPct)
	fmt.Fprintf(&b, "  max queue depth %d | %d events | digest %s\n",
		r.MaxQueueDepth, r.EventsFired, r.Digest[:16])
	fmt.Fprintf(&b, "  wall time %v (%.0f jobs/s of wall time)\n",
		r.WallTime.Round(time.Millisecond), float64(r.Completed)/r.WallTime.Seconds())
	return b.String()
}
