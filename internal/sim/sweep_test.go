package sim

import (
	"reflect"
	"strings"
	"testing"
)

func sweepTestConfigs(jobs int) []ScenarioConfig {
	var cfgs []ScenarioConfig
	for seed := uint64(1); seed <= 6; seed++ {
		cfg := ScenarioConfig{
			Seed:         seed,
			Nodes:        128,
			CoresPerNode: 8,
			Workload:     ScaledWorkload(jobs, 128, 0.65),
			Discipline:   EASY,
		}
		if seed%2 == 0 {
			// Mix policy and capacity runs so worker scratch is exercised
			// across both modes.
			cfg.Policy = &PolicyConfig{}
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// requireSameRun fails unless two results are identical up to wall time.
func requireSameRun(t *testing.T, tag string, i int, got, want *ScenarioResult) {
	t.Helper()
	g, w := *got, *want
	g.WallTime, w.WallTime = 0, 0
	gp, wp := g.Policy, w.Policy
	g.Policy, w.Policy = nil, nil
	gc, wc := g.Cohorts, w.Cohorts
	g.Cohorts, w.Cohorts = nil, nil
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: run %d diverged:\ngot  %+v\nwant %+v", tag, i, g, w)
	}
	if !reflect.DeepEqual(gc, wc) {
		t.Fatalf("%s: run %d cohort stats diverged:\ngot  %+v\nwant %+v", tag, i, gc, wc)
	}
	if (gp == nil) != (wp == nil) || (gp != nil && *gp != *wp) {
		t.Fatalf("%s: run %d policy stats diverged:\ngot  %+v\nwant %+v", tag, i, gp, wp)
	}
}

// TestSweepMatchesSequential pins RunMany's core contract: a one-worker
// sweep returns exactly what sequential RunScenario calls return, run
// for run.
func TestSweepMatchesSequential(t *testing.T) {
	cfgs := sweepTestConfigs(600)
	var want []*ScenarioResult
	for _, cfg := range cfgs {
		res, err := RunScenario(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	sw, err := RunMany(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sw.Workers != 1 || len(sw.Results) != len(cfgs) {
		t.Fatalf("sweep shape: %d workers, %d results", sw.Workers, len(sw.Results))
	}
	for i := range cfgs {
		requireSameRun(t, "1-worker", i, sw.Results[i], want[i])
	}
}

// TestSweepDeterminismAcrossWorkers requires byte-stable output no
// matter how the runs were fanned out: workers 1, 4, and 8 must agree
// on every per-run result and on the aggregate digest.
func TestSweepDeterminismAcrossWorkers(t *testing.T) {
	cfgs := sweepTestConfigs(600)
	base, err := RunMany(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 8} {
		sw, err := RunMany(cfgs, workers)
		if err != nil {
			t.Fatal(err)
		}
		if sw.Digest != base.Digest {
			t.Fatalf("%d-worker digest %s != 1-worker %s", workers, sw.Digest, base.Digest)
		}
		for i := range cfgs {
			requireSameRun(t, "workers", i, sw.Results[i], base.Results[i])
		}
	}
}

// TestSweepPoolHygiene interleaves two different configs repeatedly on
// one worker — every run reuses the scratch the previous, *different*
// run left behind. Any state leaking through the pools (job freelist,
// popped buffer, policy scratch, alloc scratch) shows up as a digest
// change against the isolated runs.
func TestSweepPoolHygiene(t *testing.T) {
	a := ScenarioConfig{
		Seed: 3, Nodes: 64, CoresPerNode: 8,
		Workload:   ScaledWorkload(500, 64, 0.7),
		Discipline: EASY,
		Policy:     &PolicyConfig{Starts: 4},
	}
	b := ScenarioConfig{
		Seed: 8, Nodes: 128, CoresPerNode: 4,
		Workload:   ScaledWorkload(400, 128, 0.5),
		Discipline: FIFO,
	}
	isoA, err := RunScenario(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	isoB, err := RunScenario(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := RunMany([]ScenarioConfig{a, b, a, b, a}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfgIsA := range []bool{true, false, true, false, true} {
		want := isoA
		if !cfgIsA {
			want = isoB
		}
		requireSameRun(t, "interleaved", i, sw.Results[i], want)
	}
}

// TestSweepErrors covers the failure contract: empty sweeps refuse, and
// a bad config is reported by its index even when later runs finish
// first.
func TestSweepErrors(t *testing.T) {
	if _, err := RunMany(nil, 4); err == nil {
		t.Fatal("empty sweep accepted")
	}
	cfgs := sweepTestConfigs(200)
	cfgs[2].Nodes = -1
	_, err := RunMany(cfgs, 2)
	if err == nil {
		t.Fatal("bad config accepted")
	}
	if !strings.Contains(err.Error(), "run 2") {
		t.Fatalf("error does not name the failing run: %v", err)
	}
}
