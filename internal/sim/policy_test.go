package sim

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"nlarm/internal/trace"
)

func policyTestConfig(jobs int, seed uint64, pc *PolicyConfig) ScenarioConfig {
	return ScenarioConfig{
		Seed:         seed,
		Nodes:        128,
		CoresPerNode: 8,
		Workload:     ScaledWorkload(jobs, 128, 0.65),
		Discipline:   EASY,
		Policy:       pc,
	}
}

// TestPolicyTimingMatchesCapacity pins the overlay contract: a policy
// run schedules every job at exactly the same instant as its capacity
// twin — placement decides *where*, never *when*. Submit, start, end,
// node count, and backfill flags must match record for record.
func TestPolicyTimingMatchesCapacity(t *testing.T) {
	capCfg := policyTestConfig(3000, 21, nil)
	polCfg := policyTestConfig(3000, 21, &PolicyConfig{})
	var capBuf, polBuf bytes.Buffer
	capRes, err := RunScenario(capCfg, &capBuf)
	if err != nil {
		t.Fatal(err)
	}
	polRes, err := RunScenario(polCfg, &polBuf)
	if err != nil {
		t.Fatal(err)
	}
	if capRes.Completed != polRes.Completed || capRes.Backfilled != polRes.Backfilled ||
		capRes.MeanWaitSec != polRes.MeanWaitSec || capRes.MakespanSec != polRes.MakespanSec {
		t.Fatalf("timing stats diverged:\ncapacity %+v\npolicy   %+v", capRes, polRes)
	}
	_, capRecs, _, err := trace.ReadJobTrace(bytes.NewReader(capBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, polRecs, _, err := trace.ReadJobTrace(bytes.NewReader(polBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(capRecs) != len(polRecs) {
		t.Fatalf("%d capacity records vs %d policy records", len(capRecs), len(polRecs))
	}
	for i := range capRecs {
		c, p := capRecs[i], polRecs[i]
		// The policy trace carries cost columns on top of identical
		// scheduling: blank them and the records must be equal.
		p.CLCost, p.NLCost = 0, 0
		if c != p {
			t.Fatalf("record %d diverged:\ncapacity %+v\npolicy   %+v", i, c, p)
		}
	}
}

// TestPolicyAccounting checks the placement layer's invariants on a
// full run: one model build ever, a decision per started job, costs on
// every completed record, and a version-2 trace header.
func TestPolicyAccounting(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunScenario(policyTestConfig(2000, 5, &PolicyConfig{}), &buf)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Policy
	if st == nil {
		t.Fatal("policy run returned no policy stats")
	}
	if st.ModelBuilds != 1 {
		t.Fatalf("model built %d times, want exactly 1", st.ModelBuilds)
	}
	if st.Decisions != res.Completed {
		t.Fatalf("%d decisions for %d completed jobs", st.Decisions, res.Completed)
	}
	if st.ModelRefreshes == 0 {
		t.Fatal("model never refreshed over the whole run")
	}
	if st.ChargedDecisions == 0 {
		t.Fatal("no decision ever saw a charged model — reservations are not flowing")
	}
	if st.FallbackDecisions != 0 {
		t.Fatalf("%d decisions fell back to the uncharged model", st.FallbackDecisions)
	}
	if st.MeanCLCost <= 0 || st.MeanNLCost < 0 {
		t.Fatalf("degenerate mean costs: cl %g nl %g", st.MeanCLCost, st.MeanNLCost)
	}
	hdr, recs, _, err := trace.ReadJobTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Version != trace.JobTraceVersion {
		t.Fatalf("policy trace header version %d, want %d", hdr.Version, trace.JobTraceVersion)
	}
	for i, rec := range recs {
		if rec.StartSec < 0 {
			continue // rejected: never placed
		}
		if rec.CLCost <= 0 {
			t.Fatalf("completed record %d has no compute cost: %+v", i, rec)
		}
	}
}

// TestPolicyDeterminism runs the same policy config twice (and a
// sharded variant twice) expecting bit-identical traces.
func TestPolicyDeterminism(t *testing.T) {
	for _, pc := range []*PolicyConfig{
		{},
		{Starts: -1, Racks: 4},
		{ShardThreshold: 64},
	} {
		cfg := policyTestConfig(1200, 77, pc)
		r1, err := RunScenario(cfg, nil)
		if err != nil {
			t.Fatalf("%+v: %v", pc, err)
		}
		r2, err := RunScenario(cfg, nil)
		if err != nil {
			t.Fatalf("%+v: %v", pc, err)
		}
		if r1.Digest != r2.Digest {
			t.Fatalf("%+v: same-seed digests differ: %s vs %s", pc, r1.Digest, r2.Digest)
		}
		if *r1.Policy != *r2.Policy {
			t.Fatalf("%+v: same-seed policy stats differ: %+v vs %+v", pc, r1.Policy, r2.Policy)
		}
	}
}

// TestPolicyReplayFromHeader re-runs a policy scenario from the config
// embedded in its own trace header: the round trip must reproduce the
// digest, records included.
func TestPolicyReplayFromHeader(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunScenario(policyTestConfig(1000, 13, &PolicyConfig{Starts: 4}), &buf)
	if err != nil {
		t.Fatal(err)
	}
	hdr, recs, _, err := trace.ReadJobTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var cfg ScenarioConfig
	if err := json.Unmarshal(hdr.Scenario, &cfg); err != nil {
		t.Fatalf("unmarshal embedded scenario: %v", err)
	}
	if cfg.Policy == nil {
		t.Fatal("embedded scenario lost its policy config")
	}
	var buf2 bytes.Buffer
	res2, err := RunScenario(cfg, &buf2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Digest != res.Digest {
		t.Fatalf("replay digest %s != recorded %s", res2.Digest, res.Digest)
	}
	_, recs2, _, err := trace.ReadJobTrace(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if diffs := trace.DiffJobRecords(recs, recs2, 5); len(diffs) != 0 {
		t.Fatalf("replay diverged:\n  %s", strings.Join(diffs, "\n  "))
	}
}
