package sim

import (
	"fmt"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/metrics"
	"nlarm/internal/rng"
	"nlarm/internal/stats"
)

// PolicyConfig turns a capacity scenario into a policy-fidelity run:
// besides the node-count bookkeeping, every job start is placed on
// concrete nodes by the paper's network- and load-aware heuristic
// (Algorithms 1-2) over one live cost model, with reservations flowing
// through alloc.ReservingPolicy exactly like the broker's pipeline.
// Placement is a pure overlay — job start/end times still follow the
// capacity model — so policy runs answer "where and at what cost",
// while staying digest-comparable in timing to their capacity twins.
type PolicyConfig struct {
	// Alpha and Beta weight compute versus network load in Equation 4
	// (both default 0.5).
	Alpha float64 `json:"alpha,omitempty"`
	Beta  float64 `json:"beta,omitempty"`
	// Starts bounds how many seed nodes Algorithm 1 grows candidates
	// from per decision: the k cheapest free nodes by unit compute load.
	// 0 means the default 8; negative means the paper's exhaustive
	// every-node sweep (slow at scale).
	Starts int `json:"starts,omitempty"`
	// Racks shapes the synthetic topology: full-mesh low-latency pairs
	// inside a rack, sparse sampled higher-latency pairs across racks
	// (unmeasured pairs price at the worst observed, like a real sparse
	// probe mesh). 0 means nodes/64, minimum 1.
	Racks int `json:"racks,omitempty"`
	// ShardThreshold enables the hierarchical network-load layer at or
	// above that live-node count (0 keeps the dense n×n matrices).
	ShardThreshold int `json:"shard_threshold,omitempty"`
	// MonitorPeriodSec is the virtual cadence at which the cost model is
	// refreshed from the mutated snapshot (default 5s), mirroring the
	// monitor's publish interval: decisions between refreshes see stale
	// loads, exactly like the real pipeline.
	MonitorPeriodSec float64 `json:"monitor_period_sec,omitempty"`
	// ReserveTTLSec is how long a grant's reservation keeps being
	// charged (default: the monitor period — by then the refresh has
	// folded the committed ranks into the model).
	ReserveTTLSec float64 `json:"reserve_ttl_sec,omitempty"`
	// Weights overrides the Equation 1/2 attribute weights the run's cost
	// model is priced with (nil: the paper's §5 weights). The tuner sweeps
	// this jointly with Alpha/Beta; nil keeps existing configs — and their
	// trace headers — byte-identical.
	Weights *alloc.Weights `json:"weights,omitempty"`
}

func (pc PolicyConfig) withDefaults(nodes int) PolicyConfig {
	if pc.Alpha == 0 && pc.Beta == 0 {
		pc.Alpha, pc.Beta = 0.5, 0.5
	}
	if pc.Starts == 0 {
		pc.Starts = 8
	}
	if pc.Racks <= 0 {
		pc.Racks = nodes / 64
		if pc.Racks < 1 {
			pc.Racks = 1
		}
	}
	if pc.MonitorPeriodSec <= 0 {
		pc.MonitorPeriodSec = 5
	}
	if pc.ReserveTTLSec <= 0 {
		pc.ReserveTTLSec = pc.MonitorPeriodSec
	}
	return pc
}

// PolicyStats summarizes the placement layer of one policy-fidelity run.
type PolicyStats struct {
	// Decisions counts placement decisions (one per started job).
	Decisions int `json:"decisions"`
	// ModelBuilds counts full cost-model constructions — 1 by design:
	// the model is built once and mutated in place ever after.
	ModelBuilds int `json:"model_builds"`
	// ModelRefreshes counts in-place UpdateNodes refreshes at the
	// monitor cadence.
	ModelRefreshes int `json:"model_refreshes"`
	// ChargedDecisions counts decisions priced on a reservation-charged
	// model (live reservations existed at decision time).
	ChargedDecisions int `json:"charged_decisions"`
	// FallbackDecisions counts decisions where incremental charging was
	// refused and the base model was used uncharged (should stay 0).
	FallbackDecisions int `json:"fallback_decisions,omitempty"`
	// MeanCLCost and MeanNLCost average the winning candidate's
	// Equation 1/2 sums over all decisions.
	MeanCLCost float64 `json:"mean_cl_cost"`
	MeanNLCost float64 `json:"mean_nl_cost"`
}

// placement is one running job's node assignment: dense indices (==
// node IDs in the synthetic topology), per-node rank counts, and the
// cancel hook of its reservation. Recycled through a freelist.
type placement struct {
	nodes  []int
	counts []int
	cancel func()
}

// policyScratch holds the policy layer's reusable buffers. It lives in
// runScratch so a sweep worker carries one set of buffers across runs.
type policyScratch struct {
	caps      []int
	cand      []int
	startsBuf []int
	committed []int
	dirty     []int
	busy      []bool
	dirtySet  []bool
	baseAttrs []metrics.NodeAttrs
	dec       alloc.CostModel
	sc        alloc.AllocScratch
	placeFree []*placement
}

func (ps *policyScratch) getPlacement() *placement {
	if k := len(ps.placeFree); k > 0 {
		pl := ps.placeFree[k-1]
		ps.placeFree = ps.placeFree[:k-1]
		return pl
	}
	return &placement{}
}

// policyState is the live placement layer of one policy-fidelity run.
type policyState struct {
	ps      *policyScratch
	n       int
	kStarts int
	period  time.Duration
	req     alloc.Request
	pol     alloc.NetLoadAware

	// snap is the run's single synthetic snapshot, mutated in place;
	// model is the run's single cost model, refreshed in place from snap
	// at the monitor cadence. Decisions between refreshes price against
	// stale rows — the paper pipeline's staleness, reproduced.
	snap  *metrics.Snapshot
	model *alloc.CostModel
	rp    *alloc.ReservingPolicy

	nextRefresh time.Time
	clSum       float64
	nlSum       float64
	stats       PolicyStats
}

// newPolicyState builds the synthetic topology snapshot and the run's
// one cost model, reusing ps's buffers from earlier runs.
func newPolicyState(cfg ScenarioConfig, ps *policyScratch) (*policyState, error) {
	pc := *cfg.Policy
	n := cfg.Nodes
	snap := buildPolicySnapshot(cfg, pc)
	w := alloc.PaperWeights()
	if pc.Weights != nil {
		w = *pc.Weights
	}
	var m *alloc.CostModel
	if pc.ShardThreshold > 0 {
		m = alloc.NewCostModelSharded(snap, w, false, alloc.ShardOptions{Threshold: pc.ShardThreshold})
	} else {
		m = alloc.NewCostModel(snap, w, false)
	}
	if err := m.CLErr(); err != nil {
		return nil, fmt.Errorf("sim: policy model: %w", err)
	}
	if err := m.NLErr(); err != nil {
		return nil, fmt.Errorf("sim: policy model: %w", err)
	}
	if m.Len() != n {
		return nil, fmt.Errorf("sim: policy model has %d nodes, want %d", m.Len(), n)
	}
	// The synthetic topology numbers nodes 0..n-1, so after the model's
	// ascending-ID remap, dense index == node ID. Everything below leans
	// on that equivalence.
	for i, id := range m.IDs {
		if i != id {
			return nil, fmt.Errorf("sim: policy model index %d maps to node %d", i, id)
		}
	}
	req := alloc.Request{Procs: 1, Alpha: pc.Alpha, Beta: pc.Beta, Weights: w}
	vreq, err := req.Validate()
	if err != nil {
		return nil, err
	}
	p := &policyState{
		ps:      ps,
		n:       n,
		kStarts: pc.Starts,
		period:  time.Duration(pc.MonitorPeriodSec * float64(time.Second)),
		req:     vreq,
		snap:    snap,
		model:   m,
		rp:      alloc.NewReservingPolicy(alloc.NetLoadAware{}, time.Duration(pc.ReserveTTLSec*float64(time.Second))),
	}
	p.nextRefresh = cfg.Start.Add(p.period)
	p.stats.ModelBuilds = 1
	if cap(ps.caps) < n {
		ps.caps = make([]int, n)
		ps.committed = make([]int, n)
		ps.busy = make([]bool, n)
		ps.dirtySet = make([]bool, n)
		ps.baseAttrs = make([]metrics.NodeAttrs, n)
	}
	ps.caps = ps.caps[:n]
	ps.committed = ps.committed[:n]
	ps.busy = ps.busy[:n]
	ps.dirtySet = ps.dirtySet[:n]
	ps.baseAttrs = ps.baseAttrs[:n]
	for i := 0; i < n; i++ {
		ps.committed[i] = 0
		ps.busy[i] = false
		ps.dirtySet[i] = false
		ps.baseAttrs[i] = snap.Nodes[i]
	}
	ps.dirty = ps.dirty[:0]
	if k := pc.Starts; k > 0 && cap(ps.startsBuf) < k {
		ps.startsBuf = make([]int, 0, k)
	}
	return p, nil
}

// buildPolicySnapshot derives the run's synthetic cluster from the
// scenario seed: per-node attribute jitter, full-mesh low-latency pairs
// inside each rack, and a sparse sample of higher-latency cross-rack
// pairs. Unmeasured pairs price at the worst observed (the dense model's
// rule), so placement naturally prefers rack-local packing.
func buildPolicySnapshot(cfg ScenarioConfig, pc PolicyConfig) *metrics.Snapshot {
	n := cfg.Nodes
	r := rng.New(cfg.Seed ^ 0x9e3779b97f4a7c15)
	snap := &metrics.Snapshot{
		Taken:     cfg.Start,
		Nodes:     make(map[int]metrics.NodeAttrs, n),
		Latency:   make(map[metrics.PairKey]metrics.PairLatency),
		Bandwidth: make(map[metrics.PairKey]metrics.PairBandwidth),
	}
	for i := 0; i < n; i++ {
		snap.Livehosts = append(snap.Livehosts, i)
		na := metrics.NodeAttrs{
			NodeID: i, Hostname: fmt.Sprintf("sim%04d", i), Timestamp: cfg.Start,
			Cores: cfg.CoresPerNode, FreqGHz: r.Range(2.2, 3.2), TotalMemMB: 32768,
		}
		load := r.Range(0, 0.5)
		na.CPULoad = stats.Windowed{M1: load, M5: load, M15: load}
		util := r.Range(0, 5)
		na.CPUUtilPct = stats.Windowed{M1: util, M5: util, M15: util}
		flow := r.Range(0, 2e6)
		na.FlowRateBps = stats.Windowed{M1: flow, M5: flow, M15: flow}
		avail := r.Range(24000, 30000)
		na.AvailMemMB = stats.Windowed{M1: avail, M5: avail, M15: avail}
		snap.Nodes[i] = na
	}
	const peakBps = 125e6
	addPair := func(u, v int, local bool) {
		key := metrics.Pair(u, v)
		var lat time.Duration
		var avail float64
		if local {
			lat = time.Duration(r.Range(60, 140)) * time.Microsecond
			avail = r.Range(80e6, 120e6)
		} else {
			lat = time.Duration(r.Range(300, 700)) * time.Microsecond
			avail = r.Range(20e6, 50e6)
		}
		snap.Latency[key] = metrics.PairLatency{U: key.U, V: key.V, Timestamp: cfg.Start, Last: lat, Mean1: lat}
		snap.Bandwidth[key] = metrics.PairBandwidth{U: key.U, V: key.V, Timestamp: cfg.Start, AvailBps: avail, PeakBps: peakBps}
	}
	racks := pc.Racks
	rackSize := (n + racks - 1) / racks
	rackLo := func(a int) int { return a * rackSize }
	rackHi := func(a int) int {
		hi := (a + 1) * rackSize
		if hi > n {
			hi = n
		}
		return hi
	}
	for a := 0; a < racks; a++ {
		for u := rackLo(a); u < rackHi(a); u++ {
			for v := u + 1; v < rackHi(a); v++ {
				addPair(u, v, true)
			}
		}
	}
	for a := 0; a < racks; a++ {
		for b := a + 1; b < racks; b++ {
			for s := 0; s < 4; s++ {
				u := rackLo(a) + r.Intn(rackHi(a)-rackLo(a))
				v := rackLo(b) + r.Intn(rackHi(b)-rackLo(b))
				addPair(u, v, false)
			}
		}
	}
	return snap
}

// maybeRefresh folds the committed-rank deltas accumulated since the
// last monitor tick into the snapshot and re-prices the model in place
// — the simulated monitor publish. Between ticks the model stays stale
// on purpose.
func (p *policyState) maybeRefresh(now time.Time) error {
	if now.Before(p.nextRefresh) {
		return nil
	}
	p.nextRefresh = now.Add(p.period)
	if len(p.ps.dirty) == 0 {
		return nil
	}
	for _, i := range p.ps.dirty {
		p.applyNode(i)
	}
	// Deferred-pricing refresh: fold the changed rows and column stats
	// in, but skip the full Equation 1 re-score — every decision prices
	// the candidate rows it reads through ChargeRanksAt, so the model's
	// own CL/CLUnit are never consulted between refreshes.
	if !p.model.RefreshAttrs(p.snap, p.ps.dirty) {
		return fmt.Errorf("sim: in-place model refresh refused")
	}
	p.stats.ModelRefreshes++
	for _, i := range p.ps.dirty {
		p.ps.dirtySet[i] = false
	}
	p.ps.dirty = p.ps.dirty[:0]
	return nil
}

// applyNode rebuilds node i's published attributes from its immutable
// base plus the integer committed-rank count — reconstruction, never
// increment/decrement, so start/finish churn cannot accumulate float
// drift. The arithmetic mirrors ReservingPolicy.Charged: ranks busy-wait
// on every load window, occupancy is capped at 100%.
func (p *policyState) applyNode(i int) {
	na := p.ps.baseAttrs[i]
	if r := p.ps.committed[i]; r > 0 {
		fr := float64(r)
		na.CPULoad.M1 += fr
		na.CPULoad.M5 += fr
		na.CPULoad.M15 += fr
		cores := na.Cores
		if cores <= 0 {
			cores = 1
		}
		occ := fr / float64(cores) * 100
		if na.CPUUtilPct.M1+occ > 100 {
			occ = 100 - na.CPUUtilPct.M1
		}
		if occ > 0 {
			na.CPUUtilPct.M1 += occ
			na.CPUUtilPct.M5 += occ
			na.CPUUtilPct.M15 += occ
		}
	}
	p.snap.Nodes[i] = na
}

func (p *policyState) markDirty(i int) {
	if !p.ps.dirtySet[i] {
		p.ps.dirtySet[i] = true
		p.ps.dirty = append(p.ps.dirty, i)
	}
}

// selectStarts picks the k cheapest free nodes by unit compute load on
// the decision model (ties break to the lower index). Nil means
// exhaustive: every node seeds a candidate.
func (p *policyState) selectStarts(dec *alloc.CostModel) []int {
	k := p.kStarts
	if k < 0 {
		return nil
	}
	buf := p.ps.startsBuf[:0]
	cl := dec.CLUnit
	for i := 0; i < p.n; i++ {
		if p.ps.busy[i] {
			continue
		}
		if len(buf) < k {
			buf = append(buf, i)
		} else if cl[i] < cl[buf[k-1]] {
			buf[k-1] = i
		} else {
			continue
		}
		for j := len(buf) - 1; j > 0 && cl[buf[j]] < cl[buf[j-1]]; j-- {
			buf[j], buf[j-1] = buf[j-1], buf[j]
		}
	}
	p.ps.startsBuf = buf
	return buf
}

// place decides job j's node assignment: refresh the model if the
// monitor tick passed, charge live reservations onto it (in dec's
// reused buffers), run the constrained Algorithms 1-2, then commit the
// placement — mark nodes busy, stage the load delta for the next
// refresh, and register the reservation.
func (p *policyState) place(j *simJob, now time.Time) error {
	if err := p.maybeRefresh(now); err != nil {
		return err
	}
	p.stats.Decisions++
	// Build capacities and the free-node candidate list first: charging
	// then prices only the rows Algorithm 1 can actually select (busy
	// nodes have zero capacity and are never read).
	caps := p.ps.caps
	cand := p.ps.cand[:0]
	for i := range caps {
		if p.ps.busy[i] {
			caps[i] = 0
		} else {
			caps[i] = j.ppn
			cand = append(cand, i)
		}
	}
	p.ps.cand = cand
	dec, ok := p.rp.ChargedModelAt(now, p.model, cand, &p.ps.dec)
	if !ok {
		dec = p.model
		p.stats.FallbackDecisions++
	} else if dec != p.model {
		p.stats.ChargedDecisions++
	}
	req := p.req
	req.Procs = j.procs
	req.PPN = j.ppn
	ca, err := p.pol.AllocateConstrained(dec, req, caps, p.selectStarts(dec), &p.ps.sc)
	if err != nil {
		return fmt.Errorf("sim: placement for job %d: %w", j.id, err)
	}
	pl := p.ps.getPlacement()
	pl.nodes = append(pl.nodes[:0], ca.Nodes...)
	pl.counts = append(pl.counts[:0], ca.Counts...)
	for k, i := range pl.nodes {
		c := pl.counts[k]
		p.ps.committed[i] += c
		p.ps.busy[i] = true
		p.markDirty(i)
	}
	pl.cancel = p.rp.ReserveRanks(pl.nodes, pl.counts, now)
	j.place = pl
	j.clCost = ca.ComputeCost
	j.nlCost = ca.NetworkCost
	p.clSum += ca.ComputeCost
	p.nlSum += ca.NetworkCost
	return nil
}

// release returns j's nodes: committed ranks come off (staged for the
// next refresh), the reservation is cancelled, and the placement goes
// back to the freelist.
func (p *policyState) release(j *simJob) {
	pl := j.place
	if pl == nil {
		return
	}
	for k, i := range pl.nodes {
		p.ps.committed[i] -= pl.counts[k]
		p.ps.busy[i] = false
		p.markDirty(i)
	}
	pl.cancel()
	pl.cancel = nil
	j.place = nil
	p.ps.placeFree = append(p.ps.placeFree, pl)
}

// finalize folds the cost sums into the stats and returns a copy.
func (p *policyState) finalize() *PolicyStats {
	st := p.stats
	if st.Decisions > 0 {
		st.MeanCLCost = p.clSum / float64(st.Decisions)
		st.MeanNLCost = p.nlSum / float64(st.Decisions)
	}
	return &st
}
