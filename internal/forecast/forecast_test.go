package forecast

import (
	"math"
	"testing"

	"nlarm/internal/rng"
)

func feed(f *Forecaster, vals []float64) {
	for _, v := range vals {
		f.Observe(v)
	}
}

func TestEmptyForecaster(t *testing.T) {
	f := New()
	if _, _, ok := f.Forecast(); ok {
		t.Fatal("forecast with no data reported ok")
	}
	if f.N() != 0 {
		t.Fatalf("N = %d", f.N())
	}
}

func TestSingleObservationFallsBackToLast(t *testing.T) {
	f := New()
	f.Observe(7)
	v, _, ok := f.Forecast()
	if !ok || v != 7 {
		t.Fatalf("forecast after one sample: %g %v", v, ok)
	}
}

func TestConstantSeriesPredictsConstant(t *testing.T) {
	f := New()
	for i := 0; i < 100; i++ {
		f.Observe(5)
	}
	v, _, ok := f.Forecast()
	if !ok || math.Abs(v-5) > 1e-9 {
		t.Fatalf("constant series forecast %g", v)
	}
	for name, rmse := range f.RMSE() {
		if rmse > 1e-9 && name != "ar1" {
			t.Fatalf("method %s has error %g on a constant series", name, rmse)
		}
	}
}

func TestRandomWalkFavoursLastValue(t *testing.T) {
	r := rng.New(1)
	f := New()
	v := 10.0
	for i := 0; i < 2000; i++ {
		v += r.NormMS(0, 0.5)
		f.Observe(v)
	}
	// For a random walk, "last value" is the optimal predictor; the
	// winner must track the series closely (error near the step size).
	rmse := f.RMSE()
	best := f.BestMethod()
	if rmse[best] > rmse["running-mean"] {
		t.Fatalf("winner %s (rmse %g) worse than running-mean (%g)", best, rmse[best], rmse["running-mean"])
	}
	if rmse["last"] > 0.7 {
		t.Fatalf("last-value rmse %g on a 0.5-step walk", rmse["last"])
	}
}

func TestNoisyMeanFavoursAveraging(t *testing.T) {
	// White noise around a constant: any averaging beats last-value.
	r := rng.New(2)
	f := New()
	for i := 0; i < 2000; i++ {
		f.Observe(3 + r.NormMS(0, 1))
	}
	rmse := f.RMSE()
	best := f.BestMethod()
	if rmse[best] >= rmse["last"] {
		t.Fatalf("winner %s (rmse %g) not better than last (%g)", best, rmse[best], rmse["last"])
	}
	// The winner's error must approach the noise floor (stddev 1).
	if rmse[best] > 1.1 {
		t.Fatalf("winner rmse %g, noise floor is 1.0", rmse[best])
	}
}

func TestAR1SeriesFavoursAR1Model(t *testing.T) {
	// Strongly mean-reverting AR(1): x' = 0.6*x + noise.
	r := rng.New(3)
	f := New()
	x := 0.0
	for i := 0; i < 5000; i++ {
		x = 0.6*x + r.NormMS(0, 1)
		f.Observe(x + 10)
	}
	rmse := f.RMSE()
	// AR(1) should beat both extremes: last value (overreacts) and the
	// plain mean (ignores correlation). Allow any near-optimal winner.
	best := f.BestMethod()
	if rmse[best] > rmse["ar1"]*1.05 {
		t.Fatalf("winner %s (rmse %g) much worse than ar1 (%g)", best, rmse[best], rmse["ar1"])
	}
	if rmse["ar1"] >= rmse["last"] {
		t.Fatalf("ar1 (%g) should beat last-value (%g) on an AR(1) series", rmse["ar1"], rmse["last"])
	}
}

func TestSpikeRobustnessOfMedian(t *testing.T) {
	// Mostly constant with rare large spikes: the median window shrugs
	// spikes off, the mean window does not.
	f := New()
	for i := 0; i < 500; i++ {
		v := 1.0
		if i%50 == 25 {
			v = 40
		}
		f.Observe(v)
	}
	rmse := f.RMSE()
	if rmse["median-5"] >= rmse["mean-5"] {
		t.Fatalf("median-5 (%g) should beat mean-5 (%g) under spikes", rmse["median-5"], rmse["mean-5"])
	}
}

func TestWindowPredictorsPartialWindows(t *testing.T) {
	wm := newWindowMean(5)
	if _, ok := wm.Predict(); ok {
		t.Fatal("empty window predicted")
	}
	wm.Observe(2)
	wm.Observe(4)
	if v, ok := wm.Predict(); !ok || v != 3 {
		t.Fatalf("partial window mean %g %v", v, ok)
	}
	md := newWindowMedian(5)
	md.Observe(1)
	md.Observe(9)
	md.Observe(2)
	if v, ok := md.Predict(); !ok || v != 2 {
		t.Fatalf("partial window median %g %v", v, ok)
	}
}

func TestWindowWrapAround(t *testing.T) {
	wm := newWindowMean(3)
	for _, v := range []float64{1, 2, 3, 10, 20, 30} {
		wm.Observe(v)
	}
	if v, _ := wm.Predict(); v != 20 {
		t.Fatalf("wrapped window mean %g, want 20", v)
	}
}

func TestRMSEKeysStable(t *testing.T) {
	f := New()
	feed(f, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	rmse := f.RMSE()
	for _, name := range []string{"last", "running-mean", "mean-5", "median-5", "exp-0.5", "ar1"} {
		if _, ok := rmse[name]; !ok {
			t.Fatalf("method %s missing from RMSE: %v", name, rmse)
		}
	}
}

func TestNewWithPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty ensemble accepted")
		}
	}()
	NewWith()
}

func TestDeterministic(t *testing.T) {
	mk := func() *Forecaster {
		f := New()
		r := rng.New(9)
		for i := 0; i < 500; i++ {
			f.Observe(r.Float64() * 10)
		}
		return f
	}
	a, b := mk(), mk()
	va, ma, _ := a.Forecast()
	vb, mb, _ := b.Forecast()
	if va != vb || ma != mb {
		t.Fatalf("forecasters diverged: %g/%s vs %g/%s", va, ma, vb, mb)
	}
}
