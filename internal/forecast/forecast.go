// Package forecast implements Network-Weather-Service-style time-series
// forecasting for resource measurements. The paper builds directly on
// NWS's idea (§2: "It then applies various time series methods and uses
// the method that exhibits smallest prediction error for next forecast")
// and notes that "statistical methods can be used to model variations in
// system parameters" (§1). This package provides exactly that mechanism:
// an ensemble of cheap one-step-ahead predictors whose accuracy is
// tracked continuously, with the historically-best predictor answering
// each forecast query.
//
// The monitor feeds each node attribute (and optionally each network
// pair) through a Forecaster; the allocator can then rank nodes by where
// load is *going*, not only where it is.
package forecast

import (
	"fmt"
	"math"
	"sort"
)

// Predictor produces one-step-ahead predictions from a stream of
// observations.
type Predictor interface {
	// Name identifies the method in error reports.
	Name() string
	// Observe feeds the next measurement.
	Observe(v float64)
	// Predict returns the prediction for the next measurement; ok is
	// false until the method has enough history.
	Predict() (value float64, ok bool)
}

// --- individual methods ------------------------------------------------------

// lastValue predicts the most recent observation (random-walk model).
type lastValue struct {
	v   float64
	has bool
}

func (p *lastValue) Name() string { return "last" }
func (p *lastValue) Observe(v float64) {
	p.v = v
	p.has = true
}
func (p *lastValue) Predict() (float64, bool) { return p.v, p.has }

// runningMean predicts the mean of everything seen.
type runningMean struct {
	sum float64
	n   int
}

func (p *runningMean) Name() string { return "running-mean" }
func (p *runningMean) Observe(v float64) {
	p.sum += v
	p.n++
}
func (p *runningMean) Predict() (float64, bool) {
	if p.n == 0 {
		return 0, false
	}
	return p.sum / float64(p.n), true
}

// windowMean predicts the mean of the last k observations.
type windowMean struct {
	k    int
	buf  []float64
	next int
	full bool
}

func newWindowMean(k int) *windowMean { return &windowMean{k: k, buf: make([]float64, k)} }

func (p *windowMean) Name() string { return fmt.Sprintf("mean-%d", p.k) }
func (p *windowMean) Observe(v float64) {
	p.buf[p.next] = v
	p.next = (p.next + 1) % p.k
	if p.next == 0 {
		p.full = true
	}
}
func (p *windowMean) Predict() (float64, bool) {
	n := p.k
	if !p.full {
		n = p.next
	}
	if n == 0 {
		return 0, false
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += p.buf[i]
	}
	return sum / float64(n), true
}

// windowMedian predicts the median of the last k observations — robust to
// the load spikes Figure 1 shows.
type windowMedian struct {
	k    int
	buf  []float64
	next int
	full bool
}

func newWindowMedian(k int) *windowMedian { return &windowMedian{k: k, buf: make([]float64, k)} }

func (p *windowMedian) Name() string { return fmt.Sprintf("median-%d", p.k) }
func (p *windowMedian) Observe(v float64) {
	p.buf[p.next] = v
	p.next = (p.next + 1) % p.k
	if p.next == 0 {
		p.full = true
	}
}
func (p *windowMedian) Predict() (float64, bool) {
	n := p.k
	if !p.full {
		n = p.next
	}
	if n == 0 {
		return 0, false
	}
	tmp := append([]float64(nil), p.buf[:n]...)
	sort.Float64s(tmp)
	if n%2 == 1 {
		return tmp[n/2], true
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2, true
}

// expSmooth predicts via exponential smoothing with factor alpha.
type expSmooth struct {
	alpha float64
	s     float64
	has   bool
}

func (p *expSmooth) Name() string { return fmt.Sprintf("exp-%.1f", p.alpha) }
func (p *expSmooth) Observe(v float64) {
	if !p.has {
		p.s = v
		p.has = true
		return
	}
	p.s = p.alpha*v + (1-p.alpha)*p.s
}
func (p *expSmooth) Predict() (float64, bool) { return p.s, p.has }

// ar1 predicts with a mean-reverting AR(1) model whose coefficient is
// estimated online from lag-1 autocovariance.
type ar1 struct {
	n                  int
	mean, m2           float64 // running mean and M2 (Welford)
	lag1Cov            float64
	prev               float64
	hasPrev            bool
	minHistoryForModel int
}

func newAR1() *ar1 { return &ar1{minHistoryForModel: 8} }

func (p *ar1) Name() string { return "ar1" }

func (p *ar1) Observe(v float64) {
	if p.hasPrev {
		// Incremental lag-1 covariance against the current mean estimate.
		p.lag1Cov += (p.prev - p.mean) * (v - p.mean)
	}
	p.n++
	delta := v - p.mean
	p.mean += delta / float64(p.n)
	p.m2 += delta * (v - p.mean)
	p.prev = v
	p.hasPrev = true
}

func (p *ar1) Predict() (float64, bool) {
	if p.n < p.minHistoryForModel {
		if !p.hasPrev {
			return 0, false
		}
		return p.prev, true
	}
	variance := p.m2 / float64(p.n)
	phi := 0.0
	if variance > 1e-12 {
		phi = (p.lag1Cov / float64(p.n-1)) / variance
	}
	// Clamp to the stationary region.
	if phi > 0.99 {
		phi = 0.99
	}
	if phi < -0.99 {
		phi = -0.99
	}
	return p.mean + phi*(p.prev-p.mean), true
}

// --- the selecting ensemble --------------------------------------------------

// Forecaster runs an ensemble of predictors, scores each by the mean
// squared error of its past one-step-ahead predictions, and answers
// Forecast queries with the best method so far (the NWS selection rule).
// Not safe for concurrent use.
type Forecaster struct {
	predictors []Predictor
	pending    []float64 // last prediction per method
	hasPending []bool
	sqErrSum   []float64
	errCount   []int
	observed   int
}

// New returns a forecaster with the default NWS-like ensemble: last
// value, running mean, sliding means/medians over 5 and 20 samples,
// exponential smoothing at 0.2/0.5/0.8, and adaptive AR(1).
func New() *Forecaster {
	return NewWith(
		&lastValue{},
		&runningMean{},
		newWindowMean(5),
		newWindowMean(20),
		newWindowMedian(5),
		newWindowMedian(20),
		&expSmooth{alpha: 0.2},
		&expSmooth{alpha: 0.5},
		&expSmooth{alpha: 0.8},
		newAR1(),
	)
}

// NewWith builds a forecaster over a custom ensemble. It panics on an
// empty ensemble.
func NewWith(ps ...Predictor) *Forecaster {
	if len(ps) == 0 {
		panic("forecast: empty ensemble")
	}
	return &Forecaster{
		predictors: ps,
		pending:    make([]float64, len(ps)),
		hasPending: make([]bool, len(ps)),
		sqErrSum:   make([]float64, len(ps)),
		errCount:   make([]int, len(ps)),
	}
}

// Observe feeds the next measurement: each method's outstanding
// prediction is scored against it, then the method sees the value and
// issues its next prediction.
func (f *Forecaster) Observe(v float64) {
	for i, p := range f.predictors {
		if f.hasPending[i] {
			d := f.pending[i] - v
			f.sqErrSum[i] += d * d
			f.errCount[i]++
		}
		p.Observe(v)
		f.pending[i], f.hasPending[i] = p.Predict()
	}
	f.observed++
}

// N returns the number of observations so far.
func (f *Forecaster) N() int { return f.observed }

// Forecast returns the prediction of the method with the lowest mean
// squared error so far, along with the method's name. Before any method
// has a scored prediction it falls back to the last value; ok is false
// with no data at all.
func (f *Forecaster) Forecast() (value float64, method string, ok bool) {
	best := -1
	bestErr := math.Inf(1)
	for i := range f.predictors {
		if !f.hasPending[i] || f.errCount[i] == 0 {
			continue
		}
		mse := f.sqErrSum[i] / float64(f.errCount[i])
		if mse < bestErr {
			bestErr = mse
			best = i
		}
	}
	if best >= 0 {
		return f.pending[best], f.predictors[best].Name(), true
	}
	// No scored method yet: any pending prediction (last value is always
	// available after one observation).
	for i := range f.predictors {
		if f.hasPending[i] {
			return f.pending[i], f.predictors[i].Name(), true
		}
	}
	return 0, "", false
}

// RMSE returns each method's root-mean-squared one-step error so far.
func (f *Forecaster) RMSE() map[string]float64 {
	out := make(map[string]float64, len(f.predictors))
	for i, p := range f.predictors {
		if f.errCount[i] > 0 {
			out[p.Name()] = math.Sqrt(f.sqErrSum[i] / float64(f.errCount[i]))
		}
	}
	return out
}

// BestMethod returns the name of the currently-winning method ("" before
// any scoring).
func (f *Forecaster) BestMethod() string {
	_, m, ok := f.Forecast()
	if !ok {
		return ""
	}
	return m
}
