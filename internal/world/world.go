// Package world composes the cluster substrates — static hardware,
// background load generation, the dynamic network model, and running MPI
// jobs — into a single stepped simulation. The world is the "ground
// truth" that monitoring daemons sample and on which jobs execute; the
// allocator never reads it directly.
//
// The world advances in fixed steps driven by a simtime.Runtime. In each
// step the background generator evolves, every running job progresses at
// rates dictated by current CPU contention and network state, and the
// network's link traffic is rebuilt from all active flows (background +
// jobs + probes), closing the feedback loop: a job slows down the links
// and nodes it uses, which other jobs and the monitor then observe.
package world

import (
	"fmt"
	"sync"
	"time"

	"nlarm/internal/cluster"
	"nlarm/internal/loadgen"
	"nlarm/internal/mpisim"
	"nlarm/internal/netmodel"
	"nlarm/internal/simtime"
)

// Config tunes the simulation world.
type Config struct {
	// Seed drives all stochastic components.
	Seed uint64
	// StepSize is the simulation step; it bounds the reaction time of the
	// feedback loop. Trace generation can use seconds; job experiments
	// should use <= 250ms. Default 250ms.
	StepSize time.Duration
	// Background configures the shared-cluster activity generator.
	Background loadgen.Config
	// Net configures the network model.
	Net netmodel.Config
	// JobMemPerRankMB is the memory a running MPI rank consumes (charged
	// to its node's used memory). Default 120 MB.
	JobMemPerRankMB float64
}

// NodeSample is an instantaneous ground-truth reading of a node, the raw
// material NodeStateD turns into published attributes.
type NodeSample struct {
	CPULoad     float64
	CPUUtilPct  float64
	UsedMemMB   float64
	Users       int
	FlowRateBps float64
}

type probe struct {
	flow  netmodel.Flow
	until time.Time
}

// World is the stepped cluster simulation. All exported methods are safe
// for concurrent use.
type World struct {
	mu  sync.Mutex
	cfg Config
	cl  *cluster.Cluster
	bg  *loadgen.Generator
	net *netmodel.Network
	now time.Time

	jobs    map[int]*mpisim.Job
	nextJob int
	onDone  map[int]func(mpisim.Result)
	results []mpisim.Result
	down    map[int]bool
	probes  []probe

	pendingDone []func() // callbacks to fire outside the lock
}

// New creates a world over cl starting at the given virtual time.
func New(cl *cluster.Cluster, cfg Config, start time.Time) *World {
	if cfg.StepSize <= 0 {
		cfg.StepSize = 250 * time.Millisecond
	}
	if cfg.JobMemPerRankMB == 0 {
		cfg.JobMemPerRankMB = 120
	}
	w := &World{
		cfg:     cfg,
		cl:      cl,
		bg:      loadgen.New(cl, cfg.Background, cfg.Seed),
		net:     netmodel.New(cl.Topo, cfg.Net, cfg.Seed+0x9e37),
		now:     start,
		jobs:    make(map[int]*mpisim.Job),
		nextJob: 1, // 0 is netmodel.BackgroundOwner
		onDone:  make(map[int]func(mpisim.Result)),
		down:    make(map[int]bool),
	}
	w.bg.Start(start)
	// Prime the network with the initial background flows.
	w.net.Update(0, w.collectFlowsLocked())
	return w
}

// Cluster returns the static cluster description.
func (w *World) Cluster() *cluster.Cluster { return w.cl }

// Now returns the world's current virtual time.
func (w *World) Now() time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.now
}

// StepSize returns the configured step size.
func (w *World) StepSize() time.Duration { return w.cfg.StepSize }

// Attach registers the world's step on rt so it advances automatically.
func (w *World) Attach(rt simtime.Runtime) simtime.CancelFunc {
	return rt.Every(w.cfg.StepSize, "world.step", w.StepTo)
}

// StepTo advances the world to the given time (no-op if not after the
// current time). Completion callbacks of jobs that finish during the step
// run after internal state is consistent.
func (w *World) StepTo(now time.Time) {
	w.mu.Lock()
	dt := now.Sub(w.now)
	if dt <= 0 {
		w.mu.Unlock()
		return
	}
	w.bg.Step(now, dt)

	env := envView{w: w}
	for id, j := range w.jobs {
		used, done := j.Advance(env, dt)
		_ = used
		if done {
			res := j.Result()
			w.results = append(w.results, res)
			delete(w.jobs, id)
			if cb := w.onDone[id]; cb != nil {
				delete(w.onDone, id)
				w.pendingDone = append(w.pendingDone, func() { cb(res) })
			}
		}
	}

	// Expire probes and rebuild network traffic.
	live := w.probes[:0]
	for _, p := range w.probes {
		if p.until.After(now) {
			live = append(live, p)
		}
	}
	w.probes = live
	w.net.Update(dt, w.collectFlowsLocked())
	w.now = now

	callbacks := w.pendingDone
	w.pendingDone = nil
	w.mu.Unlock()
	for _, cb := range callbacks {
		cb()
	}
}

// collectFlowsLocked gathers background, job, and probe flows.
func (w *World) collectFlowsLocked() []netmodel.Flow {
	var flows []netmodel.Flow
	for _, f := range w.bg.Flows() {
		flows = append(flows, netmodel.Flow{Src: f.Src, Dst: f.Dst, RateBps: f.RateBps, Owner: netmodel.BackgroundOwner})
	}
	for id, j := range w.jobs {
		for _, f := range j.Flows() {
			flows = append(flows, netmodel.Flow{Src: f.Src, Dst: f.Dst, RateBps: f.RateBps, Owner: id})
		}
	}
	for _, p := range w.probes {
		flows = append(flows, p.flow)
	}
	return flows
}

// envView adapts the world to mpisim.Env. Methods are called while the
// world lock is held (from StepTo).
type envView struct {
	w *World
}

func (e envView) NodeCores(id int) int       { return e.w.cl.Node(id).Cores }
func (e envView) NodeFreqGHz(id int) float64 { return e.w.cl.Node(id).FreqGHz }

func (e envView) NodeBackgroundLoad(id int, exceptJob int) float64 {
	load := e.w.bg.NodeLoad(id).CPULoad
	for jid, j := range e.w.jobs {
		if jid == exceptJob {
			continue
		}
		load += float64(j.RanksOnNode(id))
	}
	return load
}

func (e envView) AvailBandwidthBps(u, v int, exceptJob int) float64 {
	return e.w.net.AvailBandwidthBpsExcl(u, v, exceptJob)
}

func (e envView) Latency(u, v int) time.Duration {
	return e.w.net.Latency(u, v)
}

// --- Sampling interface used by the monitoring daemons -------------------

// Ping reports whether node id is reachable.
func (w *World) Ping(id int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return id >= 0 && id < w.cl.Size() && !w.down[id]
}

// SetNodeDown injects or clears a node failure. Taking a node down aborts
// every job with ranks on it (MPI loses the communicator when a member
// dies); completion callbacks fire with a failed Result.
func (w *World) SetNodeDown(id int, isDown bool) {
	w.mu.Lock()
	w.down[id] = isDown
	var callbacks []func()
	if isDown {
		for jid, j := range w.jobs {
			if j.RanksOnNode(id) == 0 {
				continue
			}
			j.Abort(fmt.Sprintf("node %d went down", id))
			res := j.Result()
			w.results = append(w.results, res)
			delete(w.jobs, jid)
			if cb := w.onDone[jid]; cb != nil {
				delete(w.onDone, jid)
				res := res
				cb := cb
				callbacks = append(callbacks, func() { cb(res) })
			}
		}
	}
	w.mu.Unlock()
	for _, cb := range callbacks {
		cb()
	}
}

// SampleNode returns the instantaneous ground-truth state of node id,
// including contributions of running jobs. It fails for down nodes, like
// a probe against an unreachable host.
func (w *World) SampleNode(id int) (NodeSample, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if id < 0 || id >= w.cl.Size() {
		return NodeSample{}, fmt.Errorf("world: node %d out of range", id)
	}
	if w.down[id] {
		return NodeSample{}, fmt.Errorf("world: node %d is down", id)
	}
	return w.sampleNodeLocked(id), nil
}

func (w *World) sampleNodeLocked(id int) NodeSample {
	nl := w.bg.NodeLoad(id)
	spec := w.cl.Node(id)
	s := NodeSample{
		CPULoad:     nl.CPULoad,
		CPUUtilPct:  nl.CPUUtilPct,
		UsedMemMB:   nl.UsedMemMB,
		Users:       nl.Users,
		FlowRateBps: w.net.NodeFlowRateBps(id),
	}
	for _, j := range w.jobs {
		ranks := j.RanksOnNode(id)
		if ranks == 0 {
			continue
		}
		// MPI ranks busy-wait, so each rank is a runnable process.
		s.CPULoad += float64(ranks)
		occ := float64(ranks)
		if occ > float64(spec.Cores) {
			occ = float64(spec.Cores)
		}
		s.CPUUtilPct += occ / float64(spec.Cores) * 100
		s.UsedMemMB += float64(ranks) * w.cfg.JobMemPerRankMB
	}
	if s.CPUUtilPct > 100 {
		s.CPUUtilPct = 100
	}
	if s.UsedMemMB > spec.TotalMemMB {
		s.UsedMemMB = spec.TotalMemMB
	}
	return s
}

// MeasureLatency measures current one-way latency between two nodes, as
// LatencyD's ping-pong would. Fails if either endpoint is down.
func (w *World) MeasureLatency(u, v int) (time.Duration, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.down[u] || w.down[v] {
		return 0, fmt.Errorf("world: node pair (%d,%d) unreachable", u, v)
	}
	return w.net.Latency(u, v), nil
}

// MeasureBandwidth measures the effective available bandwidth between two
// nodes and the pair's peak capacity, as BandwidthD's transfer benchmark
// would.
func (w *World) MeasureBandwidth(u, v int) (availBps, peakBps float64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.down[u] || w.down[v] {
		return 0, 0, fmt.Errorf("world: node pair (%d,%d) unreachable", u, v)
	}
	return w.net.AvailBandwidthBps(u, v), w.net.PeakBandwidthBps(u, v), nil
}

// InjectProbe charges measurement traffic between u and v for dur — the
// footprint of a bandwidth probe itself.
func (w *World) InjectProbe(u, v int, rateBps float64, dur time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.probes = append(w.probes, probe{
		flow:  netmodel.Flow{Src: u, Dst: v, RateBps: rateBps, Owner: netmodel.BackgroundOwner},
		until: w.now.Add(dur),
	})
}

// --- Job control ----------------------------------------------------------

// LaunchJob starts an MPI job with the given shape on the given placement.
// onDone (optional) fires once when the job completes. Returns the job ID.
func (w *World) LaunchJob(shape *mpisim.Shape, place mpisim.Placement, onDone func(mpisim.Result)) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, n := range place.NodeOf {
		if n < 0 || n >= w.cl.Size() {
			return 0, fmt.Errorf("world: placement uses node %d, cluster has %d nodes", n, w.cl.Size())
		}
		if w.down[n] {
			return 0, fmt.Errorf("world: placement uses down node %d", n)
		}
	}
	id := w.nextJob
	j, err := mpisim.NewJob(id, shape, place, w.now)
	if err != nil {
		return 0, err
	}
	w.nextJob++
	w.jobs[id] = j
	if onDone != nil {
		w.onDone[id] = onDone
	}
	return id, nil
}

// JobRunning reports whether job id is still executing.
func (w *World) JobRunning(id int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.jobs[id]
	return ok
}

// RunningJobs returns the IDs of all executing jobs.
func (w *World) RunningJobs() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	ids := make([]int, 0, len(w.jobs))
	for id := range w.jobs {
		ids = append(ids, id)
	}
	return ids
}

// Results returns the results of all finished jobs, in completion order.
func (w *World) Results() []mpisim.Result {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]mpisim.Result(nil), w.results...)
}
