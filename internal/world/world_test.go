package world

import (
	"testing"
	"time"

	"nlarm/internal/cluster"
	"nlarm/internal/mpisim"
	"nlarm/internal/simtime"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func testWorld(t *testing.T, seed uint64) *World {
	t.Helper()
	cl, err := cluster.BuildIITK()
	if err != nil {
		t.Fatal(err)
	}
	return New(cl, Config{Seed: seed, StepSize: 100 * time.Millisecond}, t0)
}

func advance(w *World, from time.Time, dur, step time.Duration) time.Time {
	now := from
	end := from.Add(dur)
	for tm := from.Add(step); !tm.After(end); tm = tm.Add(step) {
		w.StepTo(tm)
		now = tm
	}
	return now
}

func TestStepToMonotonic(t *testing.T) {
	w := testWorld(t, 1)
	w.StepTo(t0.Add(time.Second))
	if !w.Now().Equal(t0.Add(time.Second)) {
		t.Fatalf("now = %v", w.Now())
	}
	// Going backwards is a no-op.
	w.StepTo(t0)
	if !w.Now().Equal(t0.Add(time.Second)) {
		t.Fatal("StepTo moved time backwards")
	}
}

func TestSampleNode(t *testing.T) {
	w := testWorld(t, 2)
	advance(w, t0, time.Minute, time.Second)
	s, err := w.SampleNode(3)
	if err != nil {
		t.Fatal(err)
	}
	if s.CPULoad < 0 || s.CPUUtilPct < 0 || s.CPUUtilPct > 100 {
		t.Fatalf("sample out of range: %+v", s)
	}
	if _, err := w.SampleNode(-1); err == nil {
		t.Fatal("negative node sampled")
	}
	if _, err := w.SampleNode(999); err == nil {
		t.Fatal("out-of-range node sampled")
	}
}

func TestNodeDownBehaviour(t *testing.T) {
	w := testWorld(t, 3)
	w.SetNodeDown(5, true)
	if w.Ping(5) {
		t.Fatal("down node pings")
	}
	if _, err := w.SampleNode(5); err == nil {
		t.Fatal("down node sampled")
	}
	if _, err := w.MeasureLatency(5, 6); err == nil {
		t.Fatal("latency to down node measured")
	}
	if _, _, err := w.MeasureBandwidth(4, 5); err == nil {
		t.Fatal("bandwidth to down node measured")
	}
	w.SetNodeDown(5, false)
	if !w.Ping(5) {
		t.Fatal("revived node does not ping")
	}
}

func TestMeasurements(t *testing.T) {
	w := testWorld(t, 4)
	lat, err := w.MeasureLatency(0, 59)
	if err != nil || lat <= 0 {
		t.Fatalf("latency %v %v", lat, err)
	}
	avail, peak, err := w.MeasureBandwidth(0, 1)
	if err != nil || avail <= 0 || peak <= 0 {
		t.Fatalf("bandwidth %g %g %v", avail, peak, err)
	}
	if avail > peak*1.2 {
		t.Fatalf("available %g far exceeds peak %g", avail, peak)
	}
}

func simpleShape(ranks, iters int) *mpisim.Shape {
	s := &mpisim.Shape{
		Name: "test-job", Ranks: ranks, Iterations: iters,
		ComputeSecPerIter: 0.01, RefFreqGHz: 4.6,
	}
	mpisim.Halo3D(s, 100e3, 2)
	return s
}

func TestJobLifecycle(t *testing.T) {
	w := testWorld(t, 5)
	place, err := mpisim.NewPlacement(8, []int{0, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var result mpisim.Result
	gotResult := false
	id, err := w.LaunchJob(simpleShape(8, 50), place, func(r mpisim.Result) {
		result = r
		gotResult = true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !w.JobRunning(id) {
		t.Fatal("job not running after launch")
	}
	if ids := w.RunningJobs(); len(ids) != 1 || ids[0] != id {
		t.Fatalf("RunningJobs = %v", ids)
	}
	now := t0
	for i := 0; i < 10000 && w.JobRunning(id); i++ {
		now = now.Add(100 * time.Millisecond)
		w.StepTo(now)
	}
	if w.JobRunning(id) {
		t.Fatal("job never finished")
	}
	if !gotResult {
		t.Fatal("completion callback not fired")
	}
	if result.Elapsed <= 0 || result.Ranks != 8 {
		t.Fatalf("result %+v", result)
	}
	results := w.Results()
	if len(results) != 1 || results[0].JobID != id {
		t.Fatalf("Results = %v", results)
	}
}

func TestJobRaisesNodeLoad(t *testing.T) {
	w := testWorld(t, 6)
	before, _ := w.SampleNode(0)
	place, _ := mpisim.NewPlacement(4, []int{0}, 4)
	_, err := w.LaunchJob(simpleShape(4, 100000), place, nil)
	if err != nil {
		t.Fatal(err)
	}
	during, _ := w.SampleNode(0)
	if during.CPULoad < before.CPULoad+3.9 {
		t.Fatalf("job ranks not visible in load: %g -> %g", before.CPULoad, during.CPULoad)
	}
	if during.CPUUtilPct <= before.CPUUtilPct {
		t.Fatal("job not visible in utilization")
	}
	if during.UsedMemMB <= before.UsedMemMB {
		t.Fatal("job not visible in memory")
	}
}

func TestJobTrafficVisibleOnNetwork(t *testing.T) {
	w := testWorld(t, 7)
	// Heavy communication job across a trunk.
	s := &mpisim.Shape{Name: "net-heavy", Ranks: 2, Iterations: 1000000, RefFreqGHz: 4.6}
	s.AddP2P(0, 1, 5e6, 1)
	place, _ := mpisim.NewPlacement(2, []int{0, 16}, 1)
	before, _, _ := w.MeasureBandwidth(1, 17) // same trunk, different nodes
	if _, err := w.LaunchJob(s, place, nil); err != nil {
		t.Fatal(err)
	}
	// One step so flows are charged.
	w.StepTo(t0.Add(200 * time.Millisecond))
	after, _, _ := w.MeasureBandwidth(1, 17)
	if after >= before {
		t.Fatalf("job traffic invisible to bystanders: %g -> %g", before, after)
	}
}

func TestLaunchJobValidation(t *testing.T) {
	w := testWorld(t, 8)
	place, _ := mpisim.NewPlacement(4, []int{0}, 4)
	w.SetNodeDown(0, true)
	if _, err := w.LaunchJob(simpleShape(4, 10), place, nil); err == nil {
		t.Fatal("launch on down node accepted")
	}
	w.SetNodeDown(0, false)
	bad := mpisim.Placement{NodeOf: []int{0, 1, 2, 999}}
	if _, err := w.LaunchJob(simpleShape(4, 10), bad, nil); err == nil {
		t.Fatal("out-of-range placement accepted")
	}
}

func TestInjectProbeExpires(t *testing.T) {
	w := testWorld(t, 9)
	before, _, _ := w.MeasureBandwidth(0, 1)
	w.InjectProbe(0, 1, 100e6, 500*time.Millisecond)
	w.StepTo(t0.Add(100 * time.Millisecond))
	during, _, _ := w.MeasureBandwidth(0, 1)
	if during >= before {
		t.Fatalf("probe traffic invisible: %g -> %g", before, during)
	}
	w.StepTo(t0.Add(2 * time.Second))
	after, _, _ := w.MeasureBandwidth(0, 1)
	if after <= during {
		t.Fatal("probe traffic never expired")
	}
}

func TestAttachDrivesWorld(t *testing.T) {
	w := testWorld(t, 10)
	sched := simtime.NewScheduler(t0)
	cancel := w.Attach(sched)
	defer cancel()
	sched.RunFor(time.Second)
	if !w.Now().Equal(t0.Add(time.Second)) {
		t.Fatalf("attached world at %v", w.Now())
	}
}

func TestDeterministicWorlds(t *testing.T) {
	w1 := testWorld(t, 77)
	w2 := testWorld(t, 77)
	advance(w1, t0, 2*time.Minute, time.Second)
	advance(w2, t0, 2*time.Minute, time.Second)
	for id := 0; id < 60; id += 7 {
		s1, _ := w1.SampleNode(id)
		s2, _ := w2.SampleNode(id)
		if s1 != s2 {
			t.Fatalf("worlds diverged at node %d: %+v vs %+v", id, s1, s2)
		}
	}
	b1, _, _ := w1.MeasureBandwidth(3, 33)
	b2, _, _ := w2.MeasureBandwidth(3, 33)
	if b1 != b2 {
		t.Fatalf("bandwidth diverged: %g vs %g", b1, b2)
	}
}

func TestTwoJobsInterfere(t *testing.T) {
	w := testWorld(t, 11)
	// Job A alone on nodes 0,1.
	shape := func() *mpisim.Shape {
		s := &mpisim.Shape{Name: "j", Ranks: 8, Iterations: 2000, ComputeSecPerIter: 0.002, RefFreqGHz: 4.6}
		mpisim.Halo3D(s, 500e3, 2)
		return s
	}
	placeA, _ := mpisim.NewPlacement(8, []int{0, 1}, 4)
	var aloneTime time.Duration
	idA, _ := w.LaunchJob(shape(), placeA, func(r mpisim.Result) { aloneTime = r.Elapsed })
	now := t0
	for w.JobRunning(idA) {
		now = now.Add(100 * time.Millisecond)
		w.StepTo(now)
	}
	// Same job again, but now with a competitor on the same nodes.
	placeB, _ := mpisim.NewPlacement(8, []int{0, 1}, 4)
	var contendedTime time.Duration
	idB, _ := w.LaunchJob(shape(), placeA, func(r mpisim.Result) { contendedTime = r.Elapsed })
	idC, _ := w.LaunchJob(shape(), placeB, nil)
	for w.JobRunning(idB) {
		now = now.Add(100 * time.Millisecond)
		w.StepTo(now)
	}
	_ = idC
	if contendedTime <= aloneTime {
		t.Fatalf("co-located jobs did not interfere: alone %v, contended %v", aloneTime, contendedTime)
	}
}

func TestNodeDownAbortsRunningJobs(t *testing.T) {
	w := testWorld(t, 12)
	place, _ := mpisim.NewPlacement(8, []int{0, 1}, 4)
	var result mpisim.Result
	fired := false
	id, err := w.LaunchJob(simpleShape(8, 1000000), place, func(r mpisim.Result) {
		result = r
		fired = true
	})
	if err != nil {
		t.Fatal(err)
	}
	w.StepTo(t0.Add(time.Second))
	// Kill one of the job's nodes.
	w.SetNodeDown(1, true)
	if w.JobRunning(id) {
		t.Fatal("job survived its node dying")
	}
	if !fired {
		t.Fatal("completion callback never fired for aborted job")
	}
	if !result.Failed || result.FailureReason == "" {
		t.Fatalf("aborted job result %+v", result)
	}
	// Bystander jobs on other nodes are untouched.
	place2, _ := mpisim.NewPlacement(4, []int{5}, 4)
	id2, err := w.LaunchJob(simpleShape(4, 1000000), place2, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.SetNodeDown(8, true)
	if !w.JobRunning(id2) {
		t.Fatal("bystander job aborted by unrelated node failure")
	}
}
