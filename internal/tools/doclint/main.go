// doclint is the repo's comment-lint gate: every exported top-level
// declaration must carry a doc comment, and the comment must start with
// the name it documents (the go doc convention, so rendered docs read as
// sentences). go vet does not check comments at all, and a malformed or
// missing doc slips through review easily — this keeps the public
// surface of the internal packages self-describing.
//
// Usage:
//
//	go run ./internal/tools/doclint [dir]
//
// It walks dir (default ".") recursively, skipping _test.go files,
// testdata, and hidden directories, and exits non-zero listing every
// violation as file:line: message.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var files []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name != "." && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		os.Exit(1)
	}

	bad := 0
	fset := token.NewFileSet()
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doclint:", err)
			os.Exit(1)
		}
		for _, msg := range lintFile(fset, f) {
			fmt.Println(msg)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d violation(s)\n", bad)
		os.Exit(1)
	}
}

// lintFile checks every exported top-level declaration of one parsed
// file and returns the violations as file:line: message strings.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s", p.Filename, p.Line, fmt.Sprintf(format, args...)))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || exportedRecv(d) {
				continue
			}
			checkDoc(report, d.Pos(), d.Doc, declName(d), d.Name.Name)
		case *ast.GenDecl:
			if d.Tok == token.IMPORT {
				continue
			}
			for _, spec := range d.Specs {
				// A factored block's group doc may cover every spec at
				// once ("Fault kinds counted by ..."), so the name-prefix
				// rule applies only to a spec's own doc comment.
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					name := s.Name.Name
					if s.Doc == nil {
						name = ""
					}
					checkDoc(report, s.Pos(), firstDoc(s.Doc, d.Doc), "type "+s.Name.Name, name)
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if !n.IsExported() {
							continue
						}
						name := n.Name
						if s.Doc == nil {
							name = ""
						}
						checkDoc(report, n.Pos(), firstDoc(s.Doc, d.Doc), tokWord(d.Tok)+" "+n.Name, name)
						break // one doc covers the whole spec
					}
				}
			}
		}
	}
	return out
}

// exportedRecv reports whether fn is a method on an unexported receiver
// type — its doc never renders, so it is exempt.
func exportedRecv(fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return ok && !id.IsExported()
}

// declName renders a function or method declaration for messages.
func declName(fn *ast.FuncDecl) string {
	if fn.Recv == nil {
		return "func " + fn.Name.Name
	}
	return "method " + fn.Name.Name
}

// firstDoc returns the spec's own doc if present, else the group doc
// (a factored const/var/type block may document the whole group once).
func firstDoc(specDoc, groupDoc *ast.CommentGroup) *ast.CommentGroup {
	if specDoc != nil {
		return specDoc
	}
	return groupDoc
}

// tokWord names a GenDecl token for messages.
func tokWord(t token.Token) string {
	switch t {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	}
	return t.String()
}

// checkDoc enforces the two rules: a doc comment exists, and (when name
// is non-empty) its first sentence mentions the declared name, leading
// articles allowed.
func checkDoc(report func(token.Pos, string, ...any), pos token.Pos, doc *ast.CommentGroup, what, name string) {
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		report(pos, "exported %s has no doc comment", what)
		return
	}
	if name == "" {
		return
	}
	text := strings.TrimSpace(doc.Text())
	if strings.HasPrefix(text, "Deprecated:") {
		return
	}
	for _, article := range []string{"A ", "An ", "The "} {
		text = strings.TrimPrefix(text, article)
	}
	if !strings.HasPrefix(text, name) {
		report(pos, "doc comment of exported %s should start with %q", what, name)
	}
}
