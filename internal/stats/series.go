// Package stats implements the numerical machinery the paper's allocator
// relies on: time-windowed running means (the 1/5/15-minute histories kept
// by the monitoring daemons), sum-normalization and sign-unification of
// attributes, the Simple Additive Weights (SAW) scoring method, and the
// summary statistics (mean, median, max, coefficient of variation) used in
// the evaluation section.
package stats

import (
	"fmt"
	"time"
)

// Sample is a timestamped observation.
type Sample struct {
	T time.Time
	V float64
}

// TimeSeries is a bounded window of timestamped samples. Samples older
// than MaxAge relative to the newest sample are discarded on insertion.
// The zero value is not usable; call NewTimeSeries.
type TimeSeries struct {
	maxAge  time.Duration
	samples []Sample // ascending by T
}

// NewTimeSeries returns a series that retains samples for maxAge.
// It panics if maxAge <= 0.
func NewTimeSeries(maxAge time.Duration) *TimeSeries {
	if maxAge <= 0 {
		panic(fmt.Sprintf("stats: NewTimeSeries(%v): maxAge must be positive", maxAge))
	}
	return &TimeSeries{maxAge: maxAge}
}

// Add appends a sample. Out-of-order samples (t before the newest) are
// rejected with an error so monitoring bugs surface instead of silently
// corrupting running means.
func (ts *TimeSeries) Add(t time.Time, v float64) error {
	if n := len(ts.samples); n > 0 && t.Before(ts.samples[n-1].T) {
		return fmt.Errorf("stats: out-of-order sample at %v (newest %v)", t, ts.samples[n-1].T)
	}
	ts.samples = append(ts.samples, Sample{T: t, V: v})
	ts.trim(t)
	return nil
}

func (ts *TimeSeries) trim(now time.Time) {
	cutoff := now.Add(-ts.maxAge)
	i := 0
	for i < len(ts.samples) && ts.samples[i].T.Before(cutoff) {
		i++
	}
	if i > 0 {
		ts.samples = append(ts.samples[:0], ts.samples[i:]...)
	}
}

// Len returns the number of retained samples.
func (ts *TimeSeries) Len() int { return len(ts.samples) }

// Last returns the newest sample, if any.
func (ts *TimeSeries) Last() (Sample, bool) {
	if len(ts.samples) == 0 {
		return Sample{}, false
	}
	return ts.samples[len(ts.samples)-1], true
}

// MeanOver returns the mean of samples with T in (now-window, now].
// ok is false when no sample falls in the window.
func (ts *TimeSeries) MeanOver(now time.Time, window time.Duration) (mean float64, ok bool) {
	cutoff := now.Add(-window)
	sum, n := 0.0, 0
	for i := len(ts.samples) - 1; i >= 0; i-- {
		s := ts.samples[i]
		if s.T.After(now) {
			continue
		}
		if !s.T.After(cutoff) {
			break
		}
		sum += s.V
		n++
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Windowed are the paper's 1/5/15-minute running means of an attribute.
type Windowed struct {
	M1, M5, M15 float64
}

// Means returns the 1/5/15-minute running means ending at now. Windows
// with no samples fall back to the newest sample's value (the paper's
// daemons always have at least the instantaneous reading), and to 0 when
// the series is empty.
func (ts *TimeSeries) Means(now time.Time) Windowed {
	fallback := 0.0
	if last, ok := ts.Last(); ok {
		fallback = last.V
	}
	pick := func(w time.Duration) float64 {
		if m, ok := ts.MeanOver(now, w); ok {
			return m
		}
		return fallback
	}
	return Windowed{
		M1:  pick(1 * time.Minute),
		M5:  pick(5 * time.Minute),
		M15: pick(15 * time.Minute),
	}
}
