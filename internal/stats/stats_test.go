package stats

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func TestTimeSeriesMeans(t *testing.T) {
	ts := NewTimeSeries(16 * time.Minute)
	// One sample per 10s for 15 minutes: value = minute index.
	for i := 0; i <= 90; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Second)
		if err := ts.Add(at, float64(i)/6); err != nil {
			t.Fatal(err)
		}
	}
	now := t0.Add(15 * time.Minute)
	w := ts.Means(now)
	// 1-minute window covers samples with value ~14.5; 15-minute ~7.5.
	if w.M1 < 14 || w.M1 > 15 {
		t.Fatalf("M1 = %g", w.M1)
	}
	if w.M5 < 12 || w.M5 > 13 {
		t.Fatalf("M5 = %g", w.M5)
	}
	if w.M15 < 7 || w.M15 > 8 {
		t.Fatalf("M15 = %g", w.M15)
	}
}

func TestTimeSeriesRejectsOutOfOrder(t *testing.T) {
	ts := NewTimeSeries(time.Minute)
	if err := ts.Add(t0.Add(time.Second), 1); err != nil {
		t.Fatal(err)
	}
	if err := ts.Add(t0, 2); err == nil {
		t.Fatal("out-of-order sample accepted")
	}
}

func TestTimeSeriesTrimsOldSamples(t *testing.T) {
	ts := NewTimeSeries(time.Minute)
	for i := 0; i < 100; i++ {
		_ = ts.Add(t0.Add(time.Duration(i)*10*time.Second), 1)
	}
	// Only samples within the last minute survive (6-7 samples).
	if ts.Len() > 8 {
		t.Fatalf("series retained %d samples, maxAge 1m at 10s cadence", ts.Len())
	}
}

func TestTimeSeriesEmptyWindows(t *testing.T) {
	ts := NewTimeSeries(16 * time.Minute)
	if _, ok := ts.MeanOver(t0, time.Minute); ok {
		t.Fatal("MeanOver on empty series reported ok")
	}
	w := ts.Means(t0)
	if w.M1 != 0 || w.M5 != 0 || w.M15 != 0 {
		t.Fatalf("empty Means = %+v", w)
	}
	// Single old sample: windows fall back to last value.
	_ = ts.Add(t0, 42)
	w = ts.Means(t0.Add(10 * time.Minute))
	if w.M1 != 42 {
		t.Fatalf("fallback M1 = %g, want 42", w.M1)
	}
}

func TestTimeSeriesLast(t *testing.T) {
	ts := NewTimeSeries(time.Minute)
	if _, ok := ts.Last(); ok {
		t.Fatal("Last on empty series reported ok")
	}
	_ = ts.Add(t0, 5)
	_ = ts.Add(t0.Add(time.Second), 7)
	last, ok := ts.Last()
	if !ok || last.V != 7 {
		t.Fatalf("Last = %+v", last)
	}
}

func TestNewTimeSeriesPanicsOnBadAge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for maxAge <= 0")
		}
	}()
	NewTimeSeries(0)
}

func TestNormalizeSumBasic(t *testing.T) {
	out, err := NormalizeSum([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("normalized sum = %g", sum)
	}
	if out[0] != 0.1 || out[3] != 0.4 {
		t.Fatalf("normalized = %v", out)
	}
}

func TestNormalizeSumZeros(t *testing.T) {
	out, err := NormalizeSum([]float64{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatalf("all-zero input normalized to %v", out)
		}
	}
}

func TestNormalizeSumRejectsNegative(t *testing.T) {
	if _, err := NormalizeSum([]float64{1, -1}); err == nil {
		t.Fatal("negative input accepted")
	}
}

// Property: normalization preserves order and sums to 1 (or 0).
func TestNormalizeSumProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		out, err := NormalizeSum(vals)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range out {
			sum += v
		}
		if sum != 0 && math.Abs(sum-1) > 1e-9 {
			return false
		}
		for i := 1; i < len(vals); i++ {
			if (vals[i] > vals[i-1]) != (out[i] > out[i-1]) && vals[i] != vals[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComplementMax(t *testing.T) {
	out := ComplementMax([]float64{1, 5, 3})
	want := []float64{4, 0, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("ComplementMax = %v, want %v", out, want)
		}
	}
}

// Property: ComplementMax reverses ordering and is non-negative.
func TestComplementMaxProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
		}
		out := ComplementMax(vals)
		for i, v := range out {
			if v < 0 {
				return false
			}
			for j := i + 1; j < len(out); j++ {
				if (vals[i] < vals[j]) != (out[i] > out[j]) && vals[i] != vals[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSAWCostsPrefersBetterNode(t *testing.T) {
	attrs := []Attribute{
		{Name: "load", Weight: 0.7, Criterion: Minimize},
		{Name: "mem", Weight: 0.3, Criterion: Maximize},
	}
	// Row 0 dominates row 1: less load, more memory.
	costs, err := SAWCosts(attrs, [][]float64{{1, 8}, {5, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if costs[0] >= costs[1] {
		t.Fatalf("dominating alternative scored worse: %v", costs)
	}
}

func TestSAWCostsWeightSensitivity(t *testing.T) {
	// Node A: low load, low memory. Node B: high load, high memory.
	matrix := [][]float64{{1, 1}, {9, 9}}
	loadHeavy := []Attribute{
		{Name: "load", Weight: 0.9, Criterion: Minimize},
		{Name: "mem", Weight: 0.1, Criterion: Maximize},
	}
	memHeavy := []Attribute{
		{Name: "load", Weight: 0.1, Criterion: Minimize},
		{Name: "mem", Weight: 0.9, Criterion: Maximize},
	}
	c1, err := SAWCosts(loadHeavy, matrix)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := SAWCosts(memHeavy, matrix)
	if err != nil {
		t.Fatal(err)
	}
	if c1[0] >= c1[1] {
		t.Fatalf("load-heavy weights should prefer node A: %v", c1)
	}
	if c2[1] >= c2[0] {
		t.Fatalf("mem-heavy weights should prefer node B: %v", c2)
	}
}

func TestSAWCostsValidation(t *testing.T) {
	attrs := []Attribute{{Name: "a", Weight: 1, Criterion: Minimize}}
	if _, err := SAWCosts(attrs, [][]float64{{1, 2}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
	bad := []Attribute{{Name: "a", Weight: -1, Criterion: Minimize}}
	if _, err := SAWCosts(bad, [][]float64{{1}}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if out, err := SAWCosts(attrs, nil); err != nil || out != nil {
		t.Fatalf("empty matrix: %v %v", out, err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 2, 8, 6})
	if s.N != 4 || s.Mean != 5 || s.Median != 5 || s.Min != 2 || s.Max != 8 {
		t.Fatalf("summary = %+v", s)
	}
	wantStd := math.Sqrt((9 + 1 + 1 + 9) / 4.0)
	if math.Abs(s.StdDev-wantStd) > 1e-12 {
		t.Fatalf("stddev = %g, want %g", s.StdDev, wantStd)
	}
	if math.Abs(s.CoV-wantStd/5) > 1e-12 {
		t.Fatalf("CoV = %g", s.CoV)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	if m := Summarize([]float64{3, 1, 2}).Median; m != 2 {
		t.Fatalf("median = %g", m)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.CoV != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	if p := s.Percentile(50); p != 0 {
		t.Fatalf("empty percentile = %g", p)
	}
}

func TestPercentile(t *testing.T) {
	s := Summarize([]float64{10, 20, 30, 40, 50})
	cases := map[float64]float64{0: 10, 25: 20, 50: 30, 75: 40, 100: 50, -5: 10, 110: 50}
	for p, want := range cases {
		if got := s.Percentile(p); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Percentile(%g) = %g, want %g", p, got, want)
		}
	}
	if got := s.Percentile(10); math.Abs(got-14) > 1e-9 {
		t.Fatalf("Percentile(10) = %g, want 14 (interpolated)", got)
	}
}

func TestGainPercent(t *testing.T) {
	if g := GainPercent(10, 5); g != 50 {
		t.Fatalf("GainPercent(10,5) = %g", g)
	}
	if g := GainPercent(10, 15); g != -50 {
		t.Fatalf("GainPercent(10,15) = %g", g)
	}
	if g := GainPercent(0, 5); g != 0 {
		t.Fatalf("GainPercent(0,5) = %g", g)
	}
}

func TestMeanAndClamp(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %g", m)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %g", m)
	}
	if v := Clamp(5, 0, 3); v != 3 {
		t.Fatalf("Clamp high = %g", v)
	}
	if v := Clamp(-1, 0, 3); v != 0 {
		t.Fatalf("Clamp low = %g", v)
	}
	if v := Clamp(2, 0, 3); v != 2 {
		t.Fatalf("Clamp mid = %g", v)
	}
}

func TestTotalWeight(t *testing.T) {
	attrs := []Attribute{{Weight: 0.3}, {Weight: 0.7}}
	if w := TotalWeight(attrs); math.Abs(w-1) > 1e-12 {
		t.Fatalf("TotalWeight = %g", w)
	}
}

func TestCriterionString(t *testing.T) {
	if Minimize.String() != "minimize" || Maximize.String() != "maximize" {
		t.Fatal("Criterion.String broken")
	}
	if Criterion(9).String() == "" {
		t.Fatal("unknown criterion produced empty string")
	}
}

func TestPearson(t *testing.T) {
	// Perfect positive correlation.
	if r := Pearson([]float64{1, 2, 3}, []float64{10, 20, 30}); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation r=%g", r)
	}
	// Perfect negative correlation.
	if r := Pearson([]float64{1, 2, 3}, []float64{3, 2, 1}); math.Abs(r+1) > 1e-12 {
		t.Fatalf("negative correlation r=%g", r)
	}
	// Constant series: degenerate.
	if r := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); r != 0 {
		t.Fatalf("constant series r=%g", r)
	}
	if r := Pearson(nil, nil); r != 0 {
		t.Fatalf("empty r=%g", r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched lengths accepted")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}
