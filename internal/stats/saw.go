package stats

import "fmt"

// Criterion states whether larger attribute values make a resource more or
// less desirable (Table 1, column 2 of the paper).
type Criterion int

const (
	// Minimize means lower raw values are better (e.g. CPU load).
	Minimize Criterion = iota
	// Maximize means higher raw values are better (e.g. available memory).
	Maximize
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case Minimize:
		return "minimize"
	case Maximize:
		return "maximize"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Attribute describes one column of a SAW decision matrix.
type Attribute struct {
	Name      string
	Weight    float64
	Criterion Criterion
}

// NormalizeSum scales vals so they sum to 1 (the paper normalizes every
// attribute "by dividing the value by the sum of attribute values of all
// nodes"). If the sum is zero, all entries are mapped to 0. Negative
// inputs are invalid and produce an error.
func NormalizeSum(vals []float64) ([]float64, error) {
	sum := 0.0
	for i, v := range vals {
		if v < 0 {
			return nil, fmt.Errorf("stats: NormalizeSum: negative value %g at index %d", v, i)
		}
		sum += v
	}
	out := make([]float64, len(vals))
	if sum == 0 {
		return out, nil
	}
	for i, v := range vals {
		out[i] = v / sum
	}
	return out, nil
}

// ComplementMax maps each value to max(vals)-v, converting a maximization
// attribute into a cost ("complementing with respect to the maximum value"
// in the paper's wording).
func ComplementMax(vals []float64) []float64 {
	maxV := 0.0
	for i, v := range vals {
		if i == 0 || v > maxV {
			maxV = v
		}
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = maxV - v
	}
	return out
}

// SAWCosts computes the Simple Additive Weights cost of each alternative
// (row of matrix) against the given attributes (columns). Following the
// paper's pipeline: each attribute column is (1) sum-normalized across
// alternatives, (2) complemented w.r.t. its maximum when the attribute's
// criterion is Maximize so every column becomes a cost, then (3) costs are
// the weighted sums across columns. Lower cost is better.
func SAWCosts(attrs []Attribute, matrix [][]float64) ([]float64, error) {
	n := len(matrix)
	if n == 0 {
		return nil, nil
	}
	for r, row := range matrix {
		if len(row) != len(attrs) {
			return nil, fmt.Errorf("stats: SAWCosts: row %d has %d values, want %d", r, len(row), len(attrs))
		}
	}
	for _, a := range attrs {
		if a.Weight < 0 {
			return nil, fmt.Errorf("stats: SAWCosts: attribute %q has negative weight", a.Name)
		}
	}
	costs := make([]float64, n)
	col := make([]float64, n)
	for c, a := range attrs {
		for r := range matrix {
			col[r] = matrix[r][c]
		}
		norm, err := NormalizeSum(col)
		if err != nil {
			return nil, fmt.Errorf("stats: SAWCosts: attribute %q: %w", a.Name, err)
		}
		if a.Criterion == Maximize {
			norm = ComplementMax(norm)
		}
		for r := range costs {
			costs[r] += a.Weight * norm[r]
		}
	}
	return costs, nil
}

// TotalWeight returns the sum of attribute weights (useful for validating
// weight vectors that are expected to sum to 1).
func TotalWeight(attrs []Attribute) float64 {
	sum := 0.0
	for _, a := range attrs {
		sum += a.Weight
	}
	return sum
}
