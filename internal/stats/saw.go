package stats

import "fmt"

// Criterion states whether larger attribute values make a resource more or
// less desirable (Table 1, column 2 of the paper).
type Criterion int

const (
	// Minimize means lower raw values are better (e.g. CPU load).
	Minimize Criterion = iota
	// Maximize means higher raw values are better (e.g. available memory).
	Maximize
)

// String names the criterion.
func (c Criterion) String() string {
	switch c {
	case Minimize:
		return "minimize"
	case Maximize:
		return "maximize"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Attribute describes one column of a SAW decision matrix.
type Attribute struct {
	Name      string
	Weight    float64
	Criterion Criterion
}

// NormalizeSum scales vals so they sum to 1 (the paper normalizes every
// attribute "by dividing the value by the sum of attribute values of all
// nodes"). If the sum is zero, all entries are mapped to 0. Negative
// inputs are invalid and produce an error.
func NormalizeSum(vals []float64) ([]float64, error) {
	sum := 0.0
	for i, v := range vals {
		if v < 0 {
			return nil, fmt.Errorf("stats: NormalizeSum: negative value %g at index %d", v, i)
		}
		sum += v
	}
	out := make([]float64, len(vals))
	if sum == 0 {
		return out, nil
	}
	for i, v := range vals {
		out[i] = v / sum
	}
	return out, nil
}

// ComplementMax maps each value to max(vals)-v, converting a maximization
// attribute into a cost ("complementing with respect to the maximum value"
// in the paper's wording).
func ComplementMax(vals []float64) []float64 {
	maxV := 0.0
	for i, v := range vals {
		if i == 0 || v > maxV {
			maxV = v
		}
	}
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = maxV - v
	}
	return out
}

// SAWCosts computes the Simple Additive Weights cost of each alternative
// (row of matrix) against the given attributes (columns). Following the
// paper's pipeline: each attribute column is (1) sum-normalized across
// alternatives, (2) complemented w.r.t. its maximum when the attribute's
// criterion is Maximize so every column becomes a cost, then (3) costs are
// the weighted sums across columns. Lower cost is better.
func SAWCosts(attrs []Attribute, matrix [][]float64) ([]float64, error) {
	return SAWCostsInto(nil, nil, attrs, matrix)
}

// SAWCostsInto is SAWCosts writing into caller-provided buffers: dst
// receives the costs and col is column scratch, both grown as needed and
// otherwise reused — the zero-allocation core behind incremental model
// updates that re-run SAW scoring per decision. The arithmetic and its
// accumulation order are exactly SAWCosts', so results are bit-identical.
func SAWCostsInto(dst, col []float64, attrs []Attribute, matrix [][]float64) ([]float64, error) {
	n := len(matrix)
	if n == 0 {
		return nil, nil
	}
	for r, row := range matrix {
		if len(row) != len(attrs) {
			return nil, fmt.Errorf("stats: SAWCosts: row %d has %d values, want %d", r, len(row), len(attrs))
		}
	}
	for _, a := range attrs {
		if a.Weight < 0 {
			return nil, fmt.Errorf("stats: SAWCosts: attribute %q has negative weight", a.Name)
		}
	}
	costs := growFloats(dst, n)
	// Two fused row-major passes instead of 3-4 strided column passes:
	// pass 1 collects per-column raw sums and maxima, pass 2 prices each
	// row in one sweep. The arithmetic stays bit-identical to the
	// column-at-a-time formulation: each column sum accumulates in row
	// order exactly as before, max(v/sum) equals max(v)/sum because
	// division by a positive sum is monotone in IEEE arithmetic, and each
	// row's cost adds its weighted column terms in the same column order.
	nc := len(attrs)
	col = growFloats(col, 2*nc)
	sums, maxs := col[:nc], col[nc:2*nc]
	copy(sums, matrix[0])
	copy(maxs, matrix[0])
	negative := false
	for c := range sums {
		if matrix[0][c] < 0 {
			negative = true
		}
	}
	for _, row := range matrix[1:] {
		for c, v := range row {
			if v < 0 {
				negative = true
			}
			sums[c] += v
			if v > maxs[c] {
				maxs[c] = v
			}
		}
	}
	if negative {
		// Cold path: re-scan in the original column-major order so the
		// error names the same value the old formulation named.
		for c, a := range attrs {
			for r := range matrix {
				if v := matrix[r][c]; v < 0 {
					return nil, fmt.Errorf("stats: SAWCosts: attribute %q: %w", a.Name,
						fmt.Errorf("stats: NormalizeSum: negative value %g at index %d", v, r))
				}
			}
		}
	}
	// Pre-divide the maxima so Maximize columns complement against the
	// normalized maximum; a zero-sum column maps every entry to 0.
	for c := range maxs {
		if sums[c] == 0 {
			maxs[c] = 0
		} else {
			maxs[c] = maxs[c] / sums[c]
		}
	}
	for r, row := range matrix {
		cost := 0.0
		for c, a := range attrs {
			x := 0.0
			if s := sums[c]; s != 0 {
				x = row[c] / s
			}
			if a.Criterion == Maximize {
				x = maxs[c] - x
			}
			cost += a.Weight * x
		}
		costs[r] = cost
	}
	return costs, nil
}

// growFloats returns a length-n slice reusing s's backing array when it
// is large enough.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// TotalWeight returns the sum of attribute weights (useful for validating
// weight vectors that are expected to sum to 1).
func TotalWeight(attrs []Attribute) float64 {
	sum := 0.0
	for _, a := range attrs {
		sum += a.Weight
	}
	return sum
}
