package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample set, matching the
// aggregates the paper reports (average/median/maximum gains, coefficient
// of variation of run times).
type Summary struct {
	N              int
	Mean           float64
	Median         float64
	Min            float64
	Max            float64
	StdDev         float64 // population standard deviation
	CoV            float64 // StdDev / Mean; 0 when Mean == 0
	Sum            float64
	percentileData []float64 // sorted copy for Percentile
}

// Summarize computes a Summary of vals. An empty input yields a zero
// Summary with N == 0.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	mean := sum / float64(len(sorted))
	varSum := 0.0
	for _, v := range sorted {
		d := v - mean
		varSum += d * d
	}
	std := math.Sqrt(varSum / float64(len(sorted)))
	cov := 0.0
	if mean != 0 {
		cov = std / mean
	}
	return Summary{
		N:              len(sorted),
		Mean:           mean,
		Median:         medianSorted(sorted),
		Min:            sorted[0],
		Max:            sorted[len(sorted)-1],
		StdDev:         std,
		CoV:            cov,
		Sum:            sum,
		percentileData: sorted,
	}
}

func medianSorted(sorted []float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics. It returns 0 for an empty
// summary.
func (s Summary) Percentile(p float64) float64 {
	d := s.percentileData
	if len(d) == 0 {
		return 0
	}
	if p <= 0 {
		return d[0]
	}
	if p >= 100 {
		return d[len(d)-1]
	}
	pos := p / 100 * float64(len(d)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d[lo]
	}
	frac := pos - float64(lo)
	return d[lo]*(1-frac) + d[hi]*frac
}

// Mean returns the arithmetic mean of vals (0 for empty input).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// GainPercent returns the relative improvement of measured over baseline in
// percent: (baseline-measured)/baseline*100. Positive means measured is
// faster/cheaper. Returns 0 when baseline is 0.
func GainPercent(baseline, measured float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - measured) / baseline * 100
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples x and y (0 for degenerate inputs). It panics if lengths differ.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson with mismatched lengths")
	}
	n := float64(len(x))
	if n < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
