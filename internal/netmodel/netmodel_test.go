package netmodel

import (
	"testing"
	"time"

	"nlarm/internal/topology"
)

func testNet(t *testing.T) *Network {
	t.Helper()
	topo, err := topology.New(topology.DefaultIITK())
	if err != nil {
		t.Fatal(err)
	}
	return New(topo, Config{JitterSigma: 1e-9}, 42) // near-zero jitter for exact assertions
}

func TestIdleBandwidthNearCapacity(t *testing.T) {
	n := testNet(t)
	bw := n.AvailBandwidthBps(0, 1) // same switch
	if bw < 0.9*topology.GigabitBps || bw > 1.2*topology.GigabitBps {
		t.Fatalf("idle same-switch bandwidth %g", bw)
	}
}

func TestHopDegradationShowsInIdlePeak(t *testing.T) {
	n := testNet(t)
	near := n.PeakBandwidthBps(0, 1) // 1 hop
	far := n.PeakBandwidthBps(0, 59) // 4 hops
	mid := n.PeakBandwidthBps(0, 16) // 2 hops
	if !(far < mid && mid < near) {
		t.Fatalf("peak bandwidth not hop-ordered: 1h=%g 2h=%g 4h=%g", near, mid, far)
	}
	// Default HopFactor 0.88: 4 hops = 0.88^3 ≈ 0.68 of capacity.
	if ratio := far / near; ratio < 0.6 || ratio > 0.8 {
		t.Fatalf("4-hop degradation ratio %g", ratio)
	}
}

func TestContentionReducesBandwidth(t *testing.T) {
	n := testNet(t)
	before := n.AvailBandwidthBps(0, 1)
	// Saturate node 1's edge link with a background flow.
	n.Update(time.Second, []Flow{{Src: 1, Dst: 2, RateBps: 100e6, Owner: BackgroundOwner}})
	after := n.AvailBandwidthBps(0, 1)
	if after >= before {
		t.Fatalf("bandwidth did not drop under contention: %g -> %g", before, after)
	}
	if after > 30e6 {
		t.Fatalf("100MB/s of contention left %g available on a GigE link", after)
	}
}

func TestMinShareFloor(t *testing.T) {
	n := testNet(t)
	// Overload far beyond capacity.
	n.Update(time.Second, []Flow{{Src: 1, Dst: 2, RateBps: 500e6}})
	bw := n.AvailBandwidthBps(0, 1)
	if bw <= 0 {
		t.Fatalf("available bandwidth collapsed to %g; MinShareFrac floor should hold", bw)
	}
}

func TestOwnerExclusion(t *testing.T) {
	n := testNet(t)
	n.Update(time.Second, []Flow{
		{Src: 0, Dst: 1, RateBps: 80e6, Owner: 7},
		{Src: 1, Dst: 2, RateBps: 10e6, Owner: BackgroundOwner},
	})
	withOwn := n.AvailBandwidthBps(0, 1)
	withoutOwn := n.AvailBandwidthBpsExcl(0, 1, 7)
	if withoutOwn <= withOwn {
		t.Fatalf("excluding own traffic should raise available bandwidth: %g vs %g", withOwn, withoutOwn)
	}
}

func TestTrunkContentionAffectsCrossSwitchOnly(t *testing.T) {
	n := testNet(t)
	// Saturate the 0-1 trunk with traffic between switches 0 and 1 using
	// nodes not under test.
	n.Update(time.Second, []Flow{
		{Src: 2, Dst: 17, RateBps: 90e6},
		{Src: 3, Dst: 18, RateBps: 90e6},
	})
	intra := n.AvailBandwidthBps(0, 1)  // switch 0 internal
	cross := n.AvailBandwidthBps(0, 16) // crosses the loaded trunk
	if cross >= intra {
		t.Fatalf("trunk contention should hit cross-switch pairs: intra %g cross %g", intra, cross)
	}
}

func TestLatencyGrowsWithHopsAndLoad(t *testing.T) {
	n := testNet(t)
	near := n.Latency(0, 1)
	far := n.Latency(0, 59)
	if far <= near {
		t.Fatalf("latency not hop-ordered: %v vs %v", near, far)
	}
	idle := n.Latency(0, 16)
	n.Update(time.Second, []Flow{{Src: 2, Dst: 17, RateBps: 100e6}})
	loaded := n.Latency(0, 16)
	if loaded <= idle {
		t.Fatalf("latency did not grow under load: %v -> %v", idle, loaded)
	}
	// Inflation is capped.
	if loaded > idle*15 {
		t.Fatalf("latency inflation exceeded cap: %v -> %v", idle, loaded)
	}
}

func TestLoopback(t *testing.T) {
	n := testNet(t)
	if lat := n.Latency(5, 5); lat > 10*time.Microsecond {
		t.Fatalf("loopback latency %v", lat)
	}
	if bw := n.AvailBandwidthBps(5, 5); bw < topology.GigabitBps {
		t.Fatalf("loopback bandwidth %g", bw)
	}
}

func TestNodeFlowRate(t *testing.T) {
	n := testNet(t)
	if r := n.NodeFlowRateBps(4); r != 0 {
		t.Fatalf("idle node flow rate %g", r)
	}
	n.Update(time.Second, []Flow{
		{Src: 4, Dst: 9, RateBps: 30e6},
		{Src: 2, Dst: 4, RateBps: 20e6},
	})
	if r := n.NodeFlowRateBps(4); r != 50e6 {
		t.Fatalf("node flow rate %g, want 50e6 (both directions charged)", r)
	}
	// Node 7 uninvolved.
	if r := n.NodeFlowRateBps(7); r != 0 {
		t.Fatalf("bystander node flow rate %g", r)
	}
}

func TestExternalFlowLoadsPathToGateway(t *testing.T) {
	n := testNet(t)
	// External flow from a switch-3 node must cross every trunk to the
	// switch-0 gateway.
	n.Update(time.Second, []Flow{{Src: 59, Dst: -1, RateBps: 50e6}})
	if r := n.NodeFlowRateBps(59); r != 50e6 {
		t.Fatalf("external flow not charged at source: %g", r)
	}
	for _, trunk := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		util := n.LinkUtilization(topology.TrunkLink(trunk[0], trunk[1]))
		if util <= 0 {
			t.Fatalf("trunk %v not loaded by external flow", trunk)
		}
	}
}

func TestExternalFlowFromSwitch0OnlyEdge(t *testing.T) {
	n := testNet(t)
	n.Update(time.Second, []Flow{{Src: 0, Dst: -1, RateBps: 40e6}})
	if util := n.LinkUtilization(topology.TrunkLink(0, 1)); util != 0 {
		t.Fatalf("switch-0 external flow loaded trunk 0-1: %g", util)
	}
}

func TestSelfAndZeroFlowsIgnored(t *testing.T) {
	n := testNet(t)
	n.Update(time.Second, []Flow{
		{Src: 3, Dst: 3, RateBps: 50e6},
		{Src: 4, Dst: 5, RateBps: 0},
		{Src: 4, Dst: 5, RateBps: -10},
	})
	if r := n.NodeFlowRateBps(3) + n.NodeFlowRateBps(4); r != 0 {
		t.Fatalf("degenerate flows charged traffic: %g", r)
	}
}

func TestUpdateReplacesFlows(t *testing.T) {
	n := testNet(t)
	n.Update(time.Second, []Flow{{Src: 0, Dst: 1, RateBps: 50e6}})
	n.Update(time.Second, nil)
	if r := n.NodeFlowRateBps(0); r != 0 {
		t.Fatalf("flows not cleared: %g", r)
	}
}

func TestJitterStaysBounded(t *testing.T) {
	topo, _ := topology.New(topology.DefaultIITK())
	n := New(topo, Config{JitterSigma: 0.5}, 7) // violent jitter
	for i := 0; i < 10000; i++ {
		n.Update(time.Second, nil)
	}
	bw := n.AvailBandwidthBps(0, 1)
	if bw < 0.4*topology.GigabitBps || bw > 1.3*topology.GigabitBps {
		t.Fatalf("jitter escaped clamp: %g", bw)
	}
}

func TestDeterministicJitter(t *testing.T) {
	topo, _ := topology.New(topology.DefaultIITK())
	n1 := New(topo, Config{}, 5)
	n2 := New(topo, Config{}, 5)
	for i := 0; i < 100; i++ {
		n1.Update(time.Second, nil)
		n2.Update(time.Second, nil)
	}
	if n1.AvailBandwidthBps(0, 59) != n2.AvailBandwidthBps(0, 59) {
		t.Fatal("same-seed networks diverged")
	}
}

func TestLatencySoftwareOverheadFloor(t *testing.T) {
	n := testNet(t)
	// 1-hop latency must include per-hop base + software overhead.
	want := 50*time.Microsecond + 30*time.Microsecond
	got := n.Latency(0, 1)
	if got < want || got > want*2 {
		t.Fatalf("1-hop latency %v, want ~%v", got, want)
	}
}

func TestTopologyAccessor(t *testing.T) {
	n := testNet(t)
	if n.Topology() == nil || n.Topology().NumNodes() != 60 {
		t.Fatal("Topology accessor broken")
	}
}

// Property: adding traffic to the network never increases any pair's
// available bandwidth, and availability never exceeds the pair's
// zero-load peak by more than the jitter ceiling.
func TestContentionMonotonicityProperty(t *testing.T) {
	topo, err := topology.New(topology.DefaultIITK())
	if err != nil {
		t.Fatal(err)
	}
	n := New(topo, Config{JitterSigma: 1e-9}, 3)
	pairs := [][2]int{{0, 1}, {0, 16}, {5, 59}, {20, 40}}
	baseline := make([]float64, len(pairs))
	for i, p := range pairs {
		baseline[i] = n.AvailBandwidthBps(p[0], p[1])
		if baseline[i] > n.PeakBandwidthBps(p[0], p[1])*1.2 {
			t.Fatalf("idle avail exceeds peak for %v", p)
		}
	}
	// Add flows one at a time; no pair's availability may rise.
	flows := []Flow{}
	sources := []Flow{
		{Src: 2, Dst: 17, RateBps: 30e6},
		{Src: 3, Dst: 45, RateBps: 50e6},
		{Src: 0, Dst: -1, RateBps: 20e6},
		{Src: 30, Dst: 31, RateBps: 80e6},
	}
	prev := append([]float64(nil), baseline...)
	for _, f := range sources {
		flows = append(flows, f)
		n.Update(0, flows) // dt=0: no jitter movement
		for i, p := range pairs {
			cur := n.AvailBandwidthBps(p[0], p[1])
			if cur > prev[i]+1 { // +1 byte/s numeric slack
				t.Fatalf("adding flow %+v raised avail for %v: %g -> %g", f, p, prev[i], cur)
			}
			prev[i] = cur
		}
	}
}
