// Package netmodel computes the dynamic state of the cluster network:
// given the static topology and the set of currently active flows
// (background transfers, MPI job traffic, monitoring probes), it yields
// the effective peer-to-peer bandwidth and latency between any two nodes,
// plus the per-node data-flow rate the paper's NodeStateD samples.
//
// Model: every flow is routed along the unique tree path between its
// endpoints and charged to each traversed link. The available bandwidth of
// a pair is the bottleneck (minimum) residual capacity along the path,
// degraded by a per-link multiplicative jitter process that reproduces the
// persistent fluctuation-around-a-topology-determined-base behaviour of
// Figure 2(b). Latency grows with the utilization of the most congested
// link on the path (queueing) on top of a per-hop store-and-forward base
// and a fixed software (MPI stack) overhead.
package netmodel

import (
	"hash/fnv"
	"math"
	"time"

	"nlarm/internal/rng"
	"nlarm/internal/topology"
)

// BackgroundOwner is the Flow.Owner value for traffic that belongs to no
// simulated job (background sessions, monitoring probes).
const BackgroundOwner = 0

// Flow is one active transfer. Dst < 0 denotes a destination outside the
// cluster; such flows are routed from Src to the external gateway, which
// hangs off switch 0. Owner tags the traffic source (a job ID, or
// BackgroundOwner) so queries can exclude a job's own traffic when
// estimating the bandwidth available *to* that job.
type Flow struct {
	Src     int
	Dst     int
	RateBps float64
	Owner   int
}

// Config tunes the network model. Zero values take defaults.
type Config struct {
	// SoftwareOverhead is the fixed per-message latency added by the MPI
	// stack and OS (independent of hops).
	SoftwareOverhead time.Duration
	// MinShareFrac bounds how far contention can push the residual
	// capacity of a link: a new transfer always gets at least this
	// fraction of capacity (TCP fairness never starves a flow entirely).
	MinShareFrac float64
	// JitterSigma is the volatility of the per-link bandwidth jitter.
	JitterSigma float64
	// QueueFactor scales how strongly utilization inflates latency.
	QueueFactor float64
	// MaxLatencyInflation caps congestion-driven latency growth.
	MaxLatencyInflation float64
	// HopFactor is the per-extra-switch multiplicative throughput
	// degradation (store-and-forward and oversubscription make multi-hop
	// paths slower even when idle — the topology structure visible in
	// Figure 2(a)).
	HopFactor float64
}

func (c Config) withDefaults() Config {
	if c.SoftwareOverhead == 0 {
		c.SoftwareOverhead = 30 * time.Microsecond
	}
	if c.MinShareFrac == 0 {
		c.MinShareFrac = 0.05
	}
	if c.JitterSigma == 0 {
		c.JitterSigma = 0.08
	}
	if c.QueueFactor == 0 {
		c.QueueFactor = 4.0
	}
	if c.MaxLatencyInflation == 0 {
		c.MaxLatencyInflation = 12
	}
	if c.HopFactor == 0 {
		c.HopFactor = 0.88
	}
	return c
}

type linkState struct {
	id      topology.LinkID
	cap     float64
	traffic float64 // current charged traffic, bytes/sec
	byOwner map[int]float64
	jitter  float64 // multiplicative, mean-reverting around 1
	rnd     *rng.Rand
}

// Network is the dynamic network state. Not safe for concurrent use; the
// world steps and queries it from one goroutine (monitor daemons access it
// through the world's lock).
type Network struct {
	cfg   Config
	topo  *topology.Topology
	links map[topology.LinkID]*linkState
	// gateway is a node attached to switch 0 used to route external
	// flows, cached once (-1 when switch 0 has no nodes).
	gateway int
}

// New builds the network over topo, seeded for deterministic jitter.
// Each link's jitter stream is derived from the link's identity, so the
// model is reproducible regardless of map iteration order.
func New(topo *topology.Topology, cfg Config, seed uint64) *Network {
	cfg = cfg.withDefaults()
	n := &Network{cfg: cfg, topo: topo, links: make(map[topology.LinkID]*linkState), gateway: -1}
	if at0 := topo.NodesAt(0); len(at0) > 0 {
		n.gateway = at0[0]
	}
	for _, l := range topo.Links() {
		h := fnv.New64a()
		_, _ = h.Write([]byte(l.String()))
		n.links[l] = &linkState{
			id:      l,
			cap:     topo.Capacity(l),
			jitter:  1,
			rnd:     rng.New(seed ^ h.Sum64()),
			byOwner: make(map[int]float64),
		}
	}
	return n
}

// externalPath routes a flow from src to the external gateway: src's edge
// link plus the trunks from src's switch to switch 0.
func (n *Network) externalPath(src int) []topology.LinkID {
	s := n.topo.SwitchOf(src)
	links := []topology.LinkID{topology.EdgeLink(src, s)}
	if s == 0 {
		return links
	}
	// Walk the tree path from s to 0 by reusing a node attached to switch 0
	// if one exists; otherwise only the edge link is charged.
	if n.gateway < 0 {
		return links
	}
	full := n.topo.Path(src, n.gateway)
	// Drop the destination's edge link: the gateway is the switch itself.
	return full[:len(full)-1]
}

func (n *Network) pathOf(f Flow) []topology.LinkID {
	if f.Dst < 0 {
		return n.externalPath(f.Src)
	}
	return n.topo.Path(f.Src, f.Dst)
}

// Update replaces the active flow set and advances the jitter processes
// by dt. Call once per simulation step.
func (n *Network) Update(dt time.Duration, flows []Flow) {
	for _, ls := range n.links {
		ls.traffic = 0
		for k := range ls.byOwner {
			delete(ls.byOwner, k)
		}
	}
	for _, f := range flows {
		if f.RateBps <= 0 || f.Src == f.Dst {
			continue
		}
		for _, l := range n.pathOf(f) {
			if ls, ok := n.links[l]; ok {
				ls.traffic += f.RateBps
				if f.Owner != BackgroundOwner {
					ls.byOwner[f.Owner] += f.RateBps
				}
			}
		}
	}
	if dt > 0 {
		dtSec := dt.Seconds()
		for _, ls := range n.links {
			// Mean-reverting multiplicative jitter around 1, clamped to a
			// physical range.
			ls.jitter += (1 - ls.jitter) * dtSec / 120
			ls.jitter += n.cfg.JitterSigma * math.Sqrt(dtSec/60) * ls.rnd.Norm()
			if ls.jitter < 0.5 {
				ls.jitter = 0.5
			}
			if ls.jitter > 1.15 {
				ls.jitter = 1.15
			}
		}
	}
}

// linkAvail returns the residual capacity of link l for one new transfer,
// ignoring traffic charged to excludeOwner (pass BackgroundOwner to count
// everything).
func (n *Network) linkAvail(l topology.LinkID, excludeOwner int) float64 {
	ls, ok := n.links[l]
	if !ok {
		return 0
	}
	traffic := ls.traffic
	if excludeOwner != BackgroundOwner {
		traffic -= ls.byOwner[excludeOwner]
	}
	avail := ls.cap - traffic
	if floor := ls.cap * n.cfg.MinShareFrac; avail < floor {
		avail = floor
	}
	return avail * ls.jitter
}

// AvailBandwidthBps returns the effective bandwidth in bytes/sec a new
// transfer between u and v would see: the bottleneck residual along the
// path. Loopback pairs get +Inf semantics via the edge capacity (memory
// copies are effectively free at this scale); we return the edge capacity
// times 10 to keep the math finite.
func (n *Network) AvailBandwidthBps(u, v int) float64 {
	return n.AvailBandwidthBpsExcl(u, v, BackgroundOwner)
}

// hopDegradation returns the multi-hop throughput factor for a path
// crossing `hops` switches: HopFactor^(hops-1).
func (n *Network) hopDegradation(u, v int) float64 {
	hops := n.topo.Hops(u, v)
	if hops <= 1 {
		return 1
	}
	return math.Pow(n.cfg.HopFactor, float64(hops-1))
}

// AvailBandwidthBpsExcl is AvailBandwidthBps but does not count traffic
// already charged to the given owner — the bandwidth the owner itself
// experiences.
func (n *Network) AvailBandwidthBpsExcl(u, v int, excludeOwner int) float64 {
	if u == v {
		return n.topo.EdgeCapacityBps() * 10
	}
	avail := math.Inf(1)
	for _, l := range n.topo.Path(u, v) {
		if a := n.linkAvail(l, excludeOwner); a < avail {
			avail = a
		}
	}
	if math.IsInf(avail, 1) {
		return 0
	}
	return avail * n.hopDegradation(u, v)
}

// PeakBandwidthBps returns the zero-load bottleneck capacity between u and
// v — the paper's "peak bandwidth" against which available bandwidth is
// complemented.
func (n *Network) PeakBandwidthBps(u, v int) float64 {
	if u == v {
		return n.topo.EdgeCapacityBps() * 10
	}
	peak := math.Inf(1)
	for _, l := range n.topo.Path(u, v) {
		if c := n.topo.Capacity(l); c < peak {
			peak = c
		}
	}
	if math.IsInf(peak, 1) {
		return 0
	}
	return peak * n.hopDegradation(u, v)
}

// maxPathUtil returns the highest utilization (traffic/capacity, capped at
// 1) along the u-v path.
func (n *Network) maxPathUtil(u, v int) float64 {
	maxU := 0.0
	for _, l := range n.topo.Path(u, v) {
		ls, ok := n.links[l]
		if !ok || ls.cap == 0 {
			continue
		}
		util := ls.traffic / ls.cap
		if util > 1 {
			util = 1
		}
		if util > maxU {
			maxU = util
		}
	}
	return maxU
}

// Latency returns the current one-way latency between u and v: per-hop
// base + software overhead, inflated quadratically by the congestion of
// the busiest link on the path. Loopback latency is ~1µs.
func (n *Network) Latency(u, v int) time.Duration {
	if u == v {
		return time.Microsecond
	}
	base := n.topo.BaseLatency(u, v) + n.cfg.SoftwareOverhead
	util := n.maxPathUtil(u, v)
	// Queueing delay grows superlinearly and diverges toward saturation
	// (M/M/1-like), capped to keep the simulation stable.
	infl := 1 + n.cfg.QueueFactor*util*util/math.Max(0.05, 1.02-util)
	if infl > n.cfg.MaxLatencyInflation {
		infl = n.cfg.MaxLatencyInflation
	}
	return time.Duration(float64(base) * infl)
}

// NodeFlowRateBps returns the total data in+out currently crossing node
// id's access link — the paper's "node data flow rate" attribute.
func (n *Network) NodeFlowRateBps(id int) float64 {
	l := topology.EdgeLink(id, n.topo.SwitchOf(id))
	if ls, ok := n.links[l]; ok {
		return ls.traffic
	}
	return 0
}

// LinkUtilization returns traffic/capacity for link l (uncapped), or 0 if
// the link does not exist.
func (n *Network) LinkUtilization(l topology.LinkID) float64 {
	ls, ok := n.links[l]
	if !ok || ls.cap == 0 {
		return 0
	}
	return ls.traffic / ls.cap
}

// Topology returns the underlying static topology.
func (n *Network) Topology() *topology.Topology { return n.topo }
