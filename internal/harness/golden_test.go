package harness

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestChaosReportRenderGolden pins ChaosReport.Render byte-for-byte for
// one small seeded run — the report (fault log, checks, recovery
// accounting, and the embedded obs metrics section) is a public artifact,
// so format drift must be a deliberate, reviewed change (-update).
func TestChaosReportRenderGolden(t *testing.T) {
	report, err := RunChaos(ChaosConfig{Seed: 11, Windows: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := []byte(report.Render())

	path := filepath.Join("testdata", "chaos_report_seed11.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos report render drifted from %s (rerun with -update after intentional changes)\n--- got ---\n%s", path, got)
	}
}
