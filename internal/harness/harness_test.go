package harness

import (
	"strings"
	"testing"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/apps"
	"nlarm/internal/broker"
	"nlarm/internal/cluster"
	"nlarm/internal/monitor"
	"nlarm/internal/mpisim"
)

// smallSession builds a fast 12-node session for integration tests.
func smallSession(t *testing.T, seed uint64) *Session {
	t.Helper()
	cl, err := cluster.BuildUniform(3, 4, 8, 3.0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(SessionConfig{
		Seed:    seed,
		Cluster: cl,
		Monitor: monitor.Config{
			NodeStatePeriod: 2 * time.Second,
			LatencyPeriod:   10 * time.Second,
			BandwidthPeriod: 20 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.WarmUp(time.Minute)
	return s
}

func TestSessionEndToEnd(t *testing.T) {
	s := smallSession(t, 1)
	resp, err := s.Broker.Allocate(brokerRequest(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Nodes) != 2 {
		t.Fatalf("nodes = %v", resp.Nodes)
	}
	shape, err := apps.MiniMD(apps.MiniMDParams{S: 8, Steps: 20}, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunJob(shape, resp.Allocation)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestRunJobSampledMeasuresLoad(t *testing.T) {
	s := smallSession(t, 2)
	resp, err := s.Broker.Allocate(brokerRequest(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	shape, _ := apps.MiniMD(apps.MiniMDParams{S: 16, Steps: 50}, 8)
	_, stats, err := s.RunJobSampled(shape, resp.Allocation)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Samples == 0 {
		t.Fatal("no load samples taken")
	}
	// 4 ranks on 8-core nodes contribute at least 0.5 load/core.
	if stats.MeanLoadPerCore < 0.4 {
		t.Fatalf("during-run load/core %g, job ranks invisible", stats.MeanLoadPerCore)
	}
}

func TestRunJobRejectsWrongRankCount(t *testing.T) {
	s := smallSession(t, 3)
	resp, err := s.Broker.Allocate(brokerRequest(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	shape, _ := apps.MiniMD(apps.MiniMDParams{S: 8, Steps: 10}, 16) // 16 ranks, 8 slots
	if _, err := s.RunJob(shape, resp.Allocation); err == nil {
		t.Fatal("rank/slot mismatch accepted")
	}
}

func TestCompareRunsProtocol(t *testing.T) {
	s := smallSession(t, 4)
	trials, err := s.Compare(CompareConfig{
		MakeShape: func() (*mpisim.Shape, error) {
			return apps.MiniMD(apps.MiniMDParams{S: 8, Steps: 20}, 8)
		},
		Request: alloc.Request{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7},
		Repeats: 2,
		Spacing: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 rounds x 4 policies.
	if len(trials) != 8 {
		t.Fatalf("%d trials", len(trials))
	}
	byPol := ByPolicy(trials)
	if len(byPol) != 4 {
		t.Fatalf("policies seen: %v", byPol)
	}
	for pol, times := range byPol {
		if len(times) != 2 {
			t.Fatalf("%s ran %d times", pol, len(times))
		}
		for _, sec := range times {
			if sec <= 0 {
				t.Fatalf("%s nonpositive time", pol)
			}
		}
	}
	means := MeanElapsed(trials)
	covs := CoVByPolicy(trials)
	loads := MeanGroupLoadPerCore(trials)
	if len(means) != 4 || len(covs) != 4 || len(loads) != 4 {
		t.Fatal("aggregation incomplete")
	}
}

func TestGainsVsBaselines(t *testing.T) {
	configMeans := []map[string]float64{
		{"random": 10, "sequential": 8, "load-aware": 6, NLAName: 5},
		{"random": 20, "sequential": 10, "load-aware": 10, NLAName: 10},
	}
	gains := GainsVsBaselines(configMeans)
	if len(gains["random"]) != 2 {
		t.Fatalf("gains = %v", gains)
	}
	if gains["random"][0] != 50 || gains["random"][1] != 50 {
		t.Fatalf("random gains = %v", gains["random"])
	}
	if gains["load-aware"][1] != 0 {
		t.Fatalf("load-aware gain = %v", gains["load-aware"])
	}
	// Configs without NLA are skipped.
	gains = GainsVsBaselines([]map[string]float64{{"random": 5}})
	if len(gains) != 0 {
		t.Fatalf("gains from NLA-free config: %v", gains)
	}
}

func TestGroupStateOf(t *testing.T) {
	s := smallSession(t, 5)
	snap, err := monitor.ReadSnapshot(s.Store, s.Now())
	if err != nil {
		t.Fatal(err)
	}
	gs := GroupStateOf(snap, []int{0, 1, 2})
	if gs.AvgCPULoad < 0 || gs.AvgLatencyUS <= 0 || gs.AvgComplBWMBps < 0 {
		t.Fatalf("group state %+v", gs)
	}
	if gs.AvgCPULoadPerCore <= 0 || gs.AvgCPULoadPerCore > 10 {
		t.Fatalf("load per core %g", gs.AvgCPULoadPerCore)
	}
	empty := GroupStateOf(snap, nil)
	if empty.AvgCPULoad != 0 {
		t.Fatalf("empty group state %+v", empty)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	out := tab.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "333") {
		t.Fatalf("table output:\n%s", out)
	}
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "a,bb\n") {
		t.Fatalf("csv output: %q", sb.String())
	}
}

func TestHeatmapRendering(t *testing.T) {
	out := Heatmap("hm", []string{"r1", "r2"}, [][]float64{{0, 1}, {1, 0}}, false)
	if !strings.Contains(out, "r1") || !strings.Contains(out, "|") {
		t.Fatalf("heatmap:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // title + 2 rows
		t.Fatalf("heatmap lines: %d", len(lines))
	}
	// Degenerate input must not panic.
	_ = Heatmap("", nil, nil, true)
	_ = Heatmap("", []string{"x"}, [][]float64{{5}}, true)
}

func TestSpark(t *testing.T) {
	out := Spark([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 4)
	if len([]rune(out)) != 4 {
		t.Fatalf("spark width: %q", out)
	}
	if Spark(nil, 10) != "" {
		t.Fatal("empty spark")
	}
}

func TestQuickScalingConfigShrinks(t *testing.T) {
	full := PaperMiniMDConfig(1)
	q := QuickScalingConfig(full)
	if q.Repeats != 2 || len(q.Procs) != 2 || len(q.Sizes) != 2 || q.Iterations == 0 {
		t.Fatalf("quick config %+v", q)
	}
}

func TestPaperConfigsMatchPaper(t *testing.T) {
	md := PaperMiniMDConfig(1)
	if md.PPN != 4 || md.Repeats != 5 || md.Alpha != 0.3 || md.Beta != 0.7 {
		t.Fatalf("miniMD config %+v", md)
	}
	if len(md.Procs) != 4 || md.Procs[3] != 64 {
		t.Fatalf("miniMD procs %v", md.Procs)
	}
	if len(md.Sizes) != 6 || md.Sizes[0] != 8 || md.Sizes[5] != 48 {
		t.Fatalf("miniMD sizes %v", md.Sizes)
	}
	fe := PaperMiniFEConfig(1)
	if fe.Alpha != 0.4 || fe.Beta != 0.6 {
		t.Fatalf("miniFE α/β %g/%g", fe.Alpha, fe.Beta)
	}
	if len(fe.Sizes) != 5 || fe.Sizes[4] != 384 {
		t.Fatalf("miniFE sizes %v", fe.Sizes)
	}
	if fe.Procs[len(fe.Procs)-1] != 48 {
		t.Fatalf("miniFE procs %v", fe.Procs)
	}
}

func brokerRequest(procs, ppn int) (r broker.Request) {
	r.Procs = procs
	r.PPN = ppn
	r.Alpha = 0.3
	r.Beta = 0.7
	return r
}
