package harness

import (
	"fmt"
	"strings"

	"nlarm/internal/sim"
)

// SimSweepConfig parameterizes the multi-run scenario sweep artifact:
// the same workload shape replicated across consecutive seeds and
// fanned over sim.RunMany's worker pool, at capacity or policy
// fidelity. Zero fields take defaults sized for a minutes-scale
// artifact run.
type SimSweepConfig struct {
	// Seed is the base seed; run i uses Seed+i.
	Seed uint64
	// Runs is the number of seeds swept (default 8).
	Runs int
	// Nodes is the cluster size per run (default 256).
	Nodes int
	// CoresPerNode caps a cohort's PPN (default 8).
	CoresPerNode int
	// Jobs is the job count per run (default 10000).
	Jobs int
	// Util is the offered load for the canned workload (default 0.65).
	Util float64
	// Workers bounds the RunMany fan-out (default 0: GOMAXPROCS).
	Workers int
	// Policy runs every config at placement fidelity (Algorithms 1-2
	// over one live cost model per run) instead of the capacity model.
	Policy bool
}

func (c SimSweepConfig) withDefaults() SimSweepConfig {
	if c.Runs <= 0 {
		c.Runs = 8
	}
	if c.Nodes <= 0 {
		c.Nodes = 256
	}
	if c.CoresPerNode <= 0 {
		c.CoresPerNode = 8
	}
	if c.Jobs <= 0 {
		c.Jobs = 10000
	}
	if c.Util <= 0 || c.Util > 1 {
		c.Util = 0.65
	}
	return c
}

// SimSweepData is RunSimSweep's result: the resolved config plus the
// aggregate sweep outcome, whose Digest is the determinism handle for
// the whole artifact (bit-identical for any worker count).
type SimSweepData struct {
	Config SimSweepConfig   `json:"config"`
	Sweep  *sim.SweepResult `json:"sweep"`
}

// RunSimSweep builds one ScenarioConfig per seed and executes them
// through sim.RunMany. Every run shares the workload shape (jobs,
// nodes, utilization, EASY backfill) and differs only in seed, so the
// sweep measures workload-sampling variance, not config drift.
func RunSimSweep(cfg SimSweepConfig) (*SimSweepData, error) {
	cfg = cfg.withDefaults()
	wl := sim.ScaledWorkload(cfg.Jobs, cfg.Nodes, cfg.Util)
	cfgs := make([]sim.ScenarioConfig, cfg.Runs)
	for i := range cfgs {
		cfgs[i] = sim.ScenarioConfig{
			Seed:         cfg.Seed + uint64(i),
			Nodes:        cfg.Nodes,
			CoresPerNode: cfg.CoresPerNode,
			Workload:     wl,
			Discipline:   sim.EASY,
		}
		if cfg.Policy {
			cfgs[i].Policy = &sim.PolicyConfig{}
		}
	}
	sw, err := sim.RunMany(cfgs, cfg.Workers)
	if err != nil {
		return nil, err
	}
	return &SimSweepData{Config: cfg, Sweep: sw}, nil
}

// FormatSimSweep renders the sweep as a per-seed table plus the
// aggregate line, mirroring the other artifact formatters.
func FormatSimSweep(d *SimSweepData) string {
	var b strings.Builder
	mode := "capacity"
	if d.Config.Policy {
		mode = "policy"
	}
	fmt.Fprintf(&b, "Sim sweep (%s fidelity): %d runs x %d jobs on %d nodes\n",
		mode, d.Config.Runs, d.Config.Jobs, d.Config.Nodes)
	fmt.Fprintf(&b, "%-6s %9s %9s %10s %9s %8s\n",
		"seed", "completed", "mean_wait", "makespan_h", "util_pct", "maxq")
	for i, res := range d.Sweep.Results {
		fmt.Fprintf(&b, "%-6d %9d %8.0fs %10.2f %9.1f %8d\n",
			d.Config.Seed+uint64(i), res.Completed, res.MeanWaitSec,
			res.MakespanSec/3600, res.UtilizationPct, res.MaxQueueDepth)
	}
	b.WriteString(d.Sweep.Render())
	if d.Config.Policy {
		dec, charged, refreshes := 0, 0, 0
		for _, res := range d.Sweep.Results {
			if res.Policy == nil {
				continue
			}
			dec += res.Policy.Decisions
			charged += res.Policy.ChargedDecisions
			refreshes += res.Policy.ModelRefreshes
		}
		fmt.Fprintf(&b, "  policy: %d decisions (%d charged), %d model refreshes, 1 build/run\n",
			dec, charged, refreshes)
	}
	return b.String()
}
