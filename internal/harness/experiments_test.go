package harness

import (
	"strings"
	"testing"
	"time"
)

func TestFigure1Generates(t *testing.T) {
	d, err := Figure1(7, 2, 20, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// 2 hours sampled every 5 minutes: 25 samples (inclusive start).
	if len(d.Hours) < 24 || len(d.Hours) > 26 {
		t.Fatalf("%d samples", len(d.Hours))
	}
	if len(d.LoadA) != len(d.Hours) || len(d.UtilAvg) != len(d.Hours) {
		t.Fatal("ragged series")
	}
	if d.NodeA == d.NodeB {
		t.Fatal("highlight nodes identical")
	}
	for i, u := range d.UtilAvg {
		if u < 0 || u > 100 {
			t.Fatalf("util sample %d = %g", i, u)
		}
	}
	out := FormatFig1(d)
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "CPU load") {
		t.Fatalf("format:\n%s", out)
	}
	rec := d.Recorder()
	if got := len(rec.Names()); got != 8 {
		t.Fatalf("recorder series %d", got)
	}
}

func TestFigure1Validation(t *testing.T) {
	if _, err := Figure1(1, 1, 1, time.Minute); err == nil {
		t.Fatal("single node accepted")
	}
	if _, err := Figure1(1, 1, 999, time.Minute); err == nil {
		t.Fatal("oversized node count accepted")
	}
}

func TestFigure2Generates(t *testing.T) {
	d, err := Figure2(7, 12, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 12 || len(d.AvailMBps) != 12 {
		t.Fatalf("heatmap %d", len(d.AvailMBps))
	}
	// Symmetry and topology structure: same-switch pairs see more
	// bandwidth than cross-chain pairs on average.
	if d.AvailMBps[0][1] != d.AvailMBps[1][0] {
		t.Fatal("heatmap asymmetric")
	}
	for k := range d.Pairs {
		if len(d.PairSeries[k]) != len(d.Hours) {
			t.Fatal("ragged pair series")
		}
	}
	out := FormatFig2(d)
	if !strings.Contains(out, "Figure 2(a)") {
		t.Fatalf("format:\n%s", out)
	}
	if rec := d.Recorder(); len(rec.Names()) != 3 {
		t.Fatal("recorder pairs")
	}
}

func TestFigure2HopStructure(t *testing.T) {
	d, err := Figure2(9, 30, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Average same-switch bandwidth must exceed average 2+-hop bandwidth
	// (the paper's "closer proximity -> higher bandwidth" structure).
	var nearSum, farSum float64
	var nearN, farN int
	for i := 0; i < d.N; i++ {
		for j := i + 1; j < d.N; j++ {
			if d.Hops[i][j] <= 1 {
				nearSum += d.AvailMBps[i][j]
				nearN++
			} else if d.Hops[i][j] >= 2 {
				farSum += d.AvailMBps[i][j]
				farN++
			}
		}
	}
	if nearN == 0 || farN == 0 {
		t.Fatal("hop classes empty")
	}
	if nearSum/float64(nearN) <= farSum/float64(farN) {
		t.Fatalf("no hop structure: near %g vs far %g", nearSum/float64(nearN), farSum/float64(farN))
	}
}

func TestRunScalingTiny(t *testing.T) {
	cfg := ScalingConfig{
		App: AppMiniMD, Seed: 3,
		Procs: []int{8}, Sizes: []int{8},
		PPN: 4, Repeats: 2, Alpha: 0.3, Beta: 0.7,
		Iterations: 20, Spacing: 20 * time.Second,
	}
	d, err := RunScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 1 {
		t.Fatalf("%d cells", len(d.Cells))
	}
	cell := d.Cells[0]
	if len(cell.Mean) != 4 || len(cell.Trials) != 8 {
		t.Fatalf("cell means=%d trials=%d", len(cell.Mean), len(cell.Trials))
	}
	gains := d.Gains()
	if len(gains.Rows) != 3 {
		t.Fatalf("gain rows %v", gains.Rows)
	}
	if out := FormatScaling(d); !strings.Contains(out, "#procs = 8") {
		t.Fatalf("scaling format:\n%s", out)
	}
	if out := FormatGains(gains, "Table X"); !strings.Contains(out, "Average Gain") {
		t.Fatalf("gains format:\n%s", out)
	}
	if out := FormatLoadPerCore(d.LoadPerCore()); !strings.Contains(out, "load/core") {
		t.Fatalf("fig5 format:\n%s", out)
	}
	if out := FormatCoV(d.OverallCoV()); !strings.Contains(out, "CoV") {
		t.Fatalf("cov format:\n%s", out)
	}
}

func TestAllocationAnalysisSmoke(t *testing.T) {
	d, err := AllocationAnalysis(5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Policies) != 4 || len(d.Selections) != 4 || len(d.TimesSec) != 4 {
		t.Fatalf("analysis %+v", d.Policies)
	}
	for pol, sec := range d.TimesSec {
		if sec <= 0 {
			t.Fatalf("%s time %g", pol, sec)
		}
	}
	out := FormatAnalysis(d)
	if !strings.Contains(out, "Table 4") || !strings.Contains(out, "Figure 7") {
		t.Fatalf("analysis format:\n%s", out)
	}
	// Headline invariant of §5.3: the NLA group has the lowest
	// complement-of-bandwidth (best connectivity) among the policies.
	nla := d.Groups["net-load-aware"]
	for pol, g := range d.Groups {
		if pol == "net-load-aware" {
			continue
		}
		if nla.AvgComplBWMBps > g.AvgComplBWMBps {
			t.Fatalf("NLA compl. bandwidth %.1f worse than %s's %.1f",
				nla.AvgComplBWMBps, pol, g.AvgComplBWMBps)
		}
	}
}

func TestPredictionStudyTiny(t *testing.T) {
	d, err := RunPredictionStudy(PredictionConfig{Seed: 4, Runs: 4, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Points) != 4 {
		t.Fatalf("%d points", len(d.Points))
	}
	if d.Pearson < 0.5 {
		t.Fatalf("prediction correlation %g", d.Pearson)
	}
	if d.MedianRatio < 0.3 || d.MedianRatio > 3 {
		t.Fatalf("median ratio %g", d.MedianRatio)
	}
	if out := FormatPrediction(d); !strings.Contains(out, "Pearson") {
		t.Fatalf("prediction format:\n%s", out)
	}
}

func TestMultiClusterExperimentTiny(t *testing.T) {
	cfg := DefaultMultiClusterConfig(6)
	cfg.Repeats = 1
	cfg.Iterations = 20
	d, err := RunMultiCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.MeanSec) != 5 {
		t.Fatalf("policies %v", d.MeanSec)
	}
	// Network-aware policies must not cross the WAN.
	if d.CrossCluster["net-load-aware"] != 0 || d.CrossCluster["grouped-net-load-aware"] != 0 {
		t.Fatalf("network-aware policies crossed clusters: %v", d.CrossCluster)
	}
	if out := FormatMultiCluster(d); !strings.Contains(out, "cross-cluster") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestAblationTiny(t *testing.T) {
	cfg := DefaultAblationConfig(8)
	cfg.Repeats = 1
	cfg.Iterations = 20
	cfg.Betas = []float64{0, 0.7}
	cfg.BandwidthPeriods = []time.Duration{time.Minute}
	d, err := RunAblation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.BetaSweep) != 2 || len(d.Staleness) != 1 || len(d.Forecast) != 2 {
		t.Fatalf("ablation %+v", d)
	}
	// β=0 (pure load-aware limit) must not beat the paper's β=0.7 in this
	// network-dominated configuration.
	if d.BetaSweep[0].MeanSec < d.BetaSweep[1].MeanSec {
		t.Fatalf("β=0 (%.2fs) beat β=0.7 (%.2fs)", d.BetaSweep[0].MeanSec, d.BetaSweep[1].MeanSec)
	}
	if out := FormatAblation(d); !strings.Contains(out, "β sweep") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestCoScheduleTiny(t *testing.T) {
	d, err := RunCoSchedule(CoScheduleConfig{Seed: 9, Jobs: 3, Repeats: 1, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.MeanJobSec) != 5 || len(d.MakespanSec) != 5 {
		t.Fatalf("policies %v", d.MeanJobSec)
	}
	if _, ok := d.MeanJobSec["net-load-aware+reserve"]; !ok {
		t.Fatalf("reservation variant missing: %v", d.MeanJobSec)
	}
	for pol, sec := range d.MeanJobSec {
		if sec <= 0 || d.MakespanSec[pol] <= 0 {
			t.Fatalf("%s times %g/%g", pol, sec, d.MakespanSec[pol])
		}
	}
	if out := FormatCoSchedule(d); !strings.Contains(out, "makespan") {
		t.Fatalf("format:\n%s", out)
	}
}
