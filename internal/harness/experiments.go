package harness

import (
	"fmt"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/apps"
	"nlarm/internal/cluster"
	"nlarm/internal/metrics"
	"nlarm/internal/monitor"
	"nlarm/internal/mpisim"
	"nlarm/internal/rng"
	"nlarm/internal/stats"
	"nlarm/internal/trace"
	"nlarm/internal/world"
)

// --- Figure 1: resource-usage variation on the shared cluster --------------

// Fig1Data holds the 48-hour traces of Figure 1: CPU load, network I/O
// and CPU-utilization/memory averages for two highlighted nodes and the
// cluster-wide mean over 20 nodes.
type Fig1Data struct {
	Hours   []float64
	NodeA   int
	NodeB   int
	LoadA   []float64
	LoadB   []float64
	LoadAvg []float64
	// Network I/O in MB/s at the node interface.
	NetA   []float64
	NetB   []float64
	NetAvg []float64
	// Cluster averages, percent.
	UtilAvg []float64
	MemAvg  []float64
}

// Figure1 regenerates the paper's Figure 1 traces: hours of background
// activity on `nodes` nodes sampled every sampleEvery (paper: 2 days,
// 20 nodes). No monitor runs; this samples ground truth directly, as the
// paper's measurement scripts did.
func Figure1(seed uint64, hours int, nodes int, sampleEvery time.Duration) (*Fig1Data, error) {
	if nodes < 2 {
		return nil, fmt.Errorf("harness: Figure1 needs at least 2 nodes")
	}
	cl, err := cluster.BuildIITK()
	if err != nil {
		return nil, err
	}
	if nodes > cl.Size() {
		return nil, fmt.Errorf("harness: Figure1: %d nodes requested, cluster has %d", nodes, cl.Size())
	}
	w := world.New(cl, world.Config{Seed: seed, StepSize: 5 * time.Second}, defaultEpoch)
	r := rng.New(seed + 99)
	d := &Fig1Data{NodeA: r.Intn(nodes), NodeB: r.Intn(nodes)}
	for d.NodeB == d.NodeA {
		d.NodeB = r.Intn(nodes)
	}
	end := defaultEpoch.Add(time.Duration(hours) * time.Hour)
	step := 5 * time.Second
	next := defaultEpoch
	for t := defaultEpoch; !t.After(end); t = t.Add(step) {
		w.StepTo(t)
		if t.Before(next) {
			continue
		}
		next = next.Add(sampleEvery)
		var loadSum, netSum, utilSum, memSum float64
		var loadA, loadB, netA, netB float64
		for id := 0; id < nodes; id++ {
			s, err := w.SampleNode(id)
			if err != nil {
				return nil, err
			}
			loadSum += s.CPULoad
			netSum += s.FlowRateBps
			utilSum += s.CPUUtilPct
			memSum += s.UsedMemMB / cl.Node(id).TotalMemMB * 100
			if id == d.NodeA {
				loadA, netA = s.CPULoad, s.FlowRateBps
			}
			if id == d.NodeB {
				loadB, netB = s.CPULoad, s.FlowRateBps
			}
		}
		n := float64(nodes)
		d.Hours = append(d.Hours, t.Sub(defaultEpoch).Hours())
		d.LoadA = append(d.LoadA, loadA)
		d.LoadB = append(d.LoadB, loadB)
		d.LoadAvg = append(d.LoadAvg, loadSum/n)
		d.NetA = append(d.NetA, netA/1e6)
		d.NetB = append(d.NetB, netB/1e6)
		d.NetAvg = append(d.NetAvg, netSum/n/1e6)
		d.UtilAvg = append(d.UtilAvg, utilSum/n)
		d.MemAvg = append(d.MemAvg, memSum/n)
	}
	return d, nil
}

// Recorder exports Figure 1's series as a trace for CSV analysis.
func (d *Fig1Data) Recorder() *trace.Recorder {
	r := trace.NewRecorder()
	add := func(name, unit string, vals []float64) {
		for i, v := range vals {
			r.Record(name, unit, defaultEpoch.Add(time.Duration(d.Hours[i]*float64(time.Hour))), v)
		}
	}
	add("cpu_load_node_a", "", d.LoadA)
	add("cpu_load_node_b", "", d.LoadB)
	add("cpu_load_avg", "", d.LoadAvg)
	add("net_io_node_a", "MB/s", d.NetA)
	add("net_io_node_b", "MB/s", d.NetB)
	add("net_io_avg", "MB/s", d.NetAvg)
	add("cpu_util_avg", "%", d.UtilAvg)
	add("mem_used_avg", "%", d.MemAvg)
	return r
}

// --- Figure 2: P2P bandwidth variation --------------------------------------

// Fig2Data holds Figure 2's artifacts: the pairwise bandwidth heatmap
// (averaged over ten sweeps) and three node pairs' bandwidth over time.
type Fig2Data struct {
	N int
	// AvailMBps[i][j] is the mean available bandwidth between nodes i and
	// j over the sweeps, MB/s. Diagonal is NaN-free (loopback capacity).
	AvailMBps [][]float64
	// Hours and PairSeries give per-pair bandwidth over the long window.
	Hours      []float64
	Pairs      [3][2]int
	PairSeries [3][]float64
	// HopsOf[i][j] records topology distance for shape verification.
	Hops [][]int
}

// Figure2 regenerates Figure 2: a heatmap over `nodes` nodes averaged
// over `sweeps` measurement rounds 1 minute apart, then three
// randomly-chosen pairs tracked every 5 minutes for `hours`.
func Figure2(seed uint64, nodes, sweeps, hours int) (*Fig2Data, error) {
	cl, err := cluster.BuildIITK()
	if err != nil {
		return nil, err
	}
	if nodes > cl.Size() || nodes < 4 {
		return nil, fmt.Errorf("harness: Figure2: bad node count %d", nodes)
	}
	w := world.New(cl, world.Config{Seed: seed, StepSize: 5 * time.Second}, defaultEpoch)
	d := &Fig2Data{N: nodes}
	d.AvailMBps = make([][]float64, nodes)
	d.Hops = make([][]int, nodes)
	counts := make([][]int, nodes)
	for i := range d.AvailMBps {
		d.AvailMBps[i] = make([]float64, nodes)
		d.Hops[i] = make([]int, nodes)
		counts[i] = make([]int, nodes)
		for j := range d.Hops[i] {
			d.Hops[i][j] = cl.Topo.Hops(i, j)
		}
	}
	now := defaultEpoch
	advance := func(dur time.Duration) {
		end := now.Add(dur)
		for t := now.Add(5 * time.Second); !t.After(end); t = t.Add(5 * time.Second) {
			w.StepTo(t)
		}
		now = end
	}
	// Ten sweeps, one minute apart, averaging the full matrix.
	for s := 0; s < sweeps; s++ {
		for i := 0; i < nodes; i++ {
			for j := i + 1; j < nodes; j++ {
				bw, _, err := w.MeasureBandwidth(i, j)
				if err != nil {
					return nil, err
				}
				d.AvailMBps[i][j] += bw / 1e6
				d.AvailMBps[j][i] += bw / 1e6
				counts[i][j]++
				counts[j][i]++
			}
		}
		advance(time.Minute)
	}
	maxOffDiag := 0.0
	for i := 0; i < nodes; i++ {
		for j := 0; j < nodes; j++ {
			if counts[i][j] > 0 {
				d.AvailMBps[i][j] /= float64(counts[i][j])
				if d.AvailMBps[i][j] > maxOffDiag {
					maxOffDiag = d.AvailMBps[i][j]
				}
			}
		}
	}
	// The diagonal (loopback) is rendered at the scale's bright end so it
	// does not crush the heatmap's dynamic range.
	for i := 0; i < nodes; i++ {
		d.AvailMBps[i][i] = maxOffDiag
	}
	// Three random pairs over the long window.
	r := rng.New(seed + 7)
	for k := 0; k < 3; k++ {
		a, b := r.Intn(nodes), r.Intn(nodes)
		for a == b {
			b = r.Intn(nodes)
		}
		d.Pairs[k] = [2]int{a, b}
	}
	samples := hours * 12 // every 5 minutes
	for sIdx := 0; sIdx < samples; sIdx++ {
		advance(5 * time.Minute)
		d.Hours = append(d.Hours, now.Sub(defaultEpoch).Hours())
		for k, p := range d.Pairs {
			bw, _, err := w.MeasureBandwidth(p[0], p[1])
			if err != nil {
				return nil, err
			}
			d.PairSeries[k] = append(d.PairSeries[k], bw/1e6)
		}
	}
	return d, nil
}

// Recorder exports Figure 2(b)'s pair series as a trace.
func (d *Fig2Data) Recorder() *trace.Recorder {
	r := trace.NewRecorder()
	for k, p := range d.Pairs {
		name := fmt.Sprintf("bandwidth_pair_%d_%d", p[0]+1, p[1]+1)
		for i, v := range d.PairSeries[k] {
			r.Record(name, "MB/s", defaultEpoch.Add(time.Duration(d.Hours[i]*float64(time.Hour))), v)
		}
	}
	return r
}

// --- Figures 4 & 6: strong scaling under the four policies ------------------

// AppKind selects the mini-application.
type AppKind string

const (
	// AppMiniMD is the molecular-dynamics proxy (Figure 4).
	AppMiniMD AppKind = "miniMD"
	// AppMiniFE is the finite-element proxy (Figure 6).
	AppMiniFE AppKind = "miniFE"
)

// ScalingConfig drives a strong-scaling policy comparison.
type ScalingConfig struct {
	App  AppKind
	Seed uint64
	// Procs are the process counts (paper: miniMD 8/16/32/64, miniFE
	// 8/16/32/48).
	Procs []int
	// Sizes are problem sizes: miniMD's s or miniFE's nx.
	Sizes []int
	// PPN is processes per node (paper: 4).
	PPN int
	// Repeats per configuration (paper: 5).
	Repeats int
	// Alpha/Beta for Equation 4 (paper: 0.3/0.7 miniMD, 0.4/0.6 miniFE).
	Alpha, Beta float64
	// Iterations overrides the app's default iteration count (0 = app
	// default; reduce for quick runs/benchmarks).
	Iterations int
	// Spacing is virtual idle time between runs (default 60s).
	Spacing time.Duration
}

// PaperMiniMDConfig returns Figure 4's full configuration.
func PaperMiniMDConfig(seed uint64) ScalingConfig {
	a, b := apps.PaperAlphaBetaMiniMD()
	return ScalingConfig{
		App: AppMiniMD, Seed: seed,
		Procs: []int{8, 16, 32, 64},
		Sizes: []int{8, 16, 24, 32, 40, 48},
		PPN:   4, Repeats: 5, Alpha: a, Beta: b,
	}
}

// PaperMiniFEConfig returns Figure 6's full configuration.
func PaperMiniFEConfig(seed uint64) ScalingConfig {
	a, b := apps.PaperAlphaBetaMiniFE()
	return ScalingConfig{
		App: AppMiniFE, Seed: seed,
		Procs: []int{8, 16, 32, 48},
		Sizes: []int{48, 96, 144, 256, 384},
		PPN:   4, Repeats: 5, Alpha: a, Beta: b,
	}
}

// QuickScalingConfig shrinks a configuration for fast smoke runs and
// benchmarks: fewer sizes, two repeats, shorter apps.
func QuickScalingConfig(cfg ScalingConfig) ScalingConfig {
	cfg.Repeats = 2
	if len(cfg.Procs) > 2 {
		cfg.Procs = []int{cfg.Procs[1], cfg.Procs[len(cfg.Procs)-1]}
	}
	if len(cfg.Sizes) > 2 {
		cfg.Sizes = []int{cfg.Sizes[0], cfg.Sizes[len(cfg.Sizes)/2]}
	}
	cfg.Iterations = 30
	return cfg
}

// makeShape builds the app shape for one cell.
func (cfg ScalingConfig) makeShape(procs, size int) (*mpisim.Shape, error) {
	switch cfg.App {
	case AppMiniMD:
		return apps.MiniMD(apps.MiniMDParams{S: size, Steps: cfg.Iterations}, procs)
	case AppMiniFE:
		return apps.MiniFE(apps.MiniFEParams{NX: size, Iters: cfg.Iterations}, procs)
	default:
		return nil, fmt.Errorf("harness: unknown app %q", cfg.App)
	}
}

// ScalingCell is one (procs, size) configuration's outcome.
type ScalingCell struct {
	Procs int
	Size  int
	// Mean execution seconds per policy.
	Mean map[string]float64
	// CoV of execution seconds per policy.
	CoV map[string]float64
	// Trials holds the raw runs.
	Trials []Trial
}

// ScalingData is a whole strong-scaling experiment.
type ScalingData struct {
	App   AppKind
	Cfg   ScalingConfig
	Cells []ScalingCell
}

// RunScaling executes the strong-scaling comparison on one long-lived
// session (the cluster keeps evolving between runs, as in the paper).
func RunScaling(cfg ScalingConfig) (*ScalingData, error) {
	s, err := NewSession(SessionConfig{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	s.WarmUp(DefaultWarmUp)
	return RunScalingOn(s, cfg)
}

// RunScalingOn executes the comparison on an existing warmed-up session.
func RunScalingOn(s *Session, cfg ScalingConfig) (*ScalingData, error) {
	if cfg.PPN <= 0 {
		cfg.PPN = 4
	}
	spacing := cfg.Spacing
	if spacing == 0 {
		spacing = time.Minute
	}
	data := &ScalingData{App: cfg.App, Cfg: cfg}
	trialSeed := cfg.Seed
	for _, procs := range cfg.Procs {
		for _, size := range cfg.Sizes {
			trialSeed++
			trials, err := s.Compare(CompareConfig{
				MakeShape: func() (*mpisim.Shape, error) { return cfg.makeShape(procs, size) },
				Request: alloc.Request{
					Procs: procs, PPN: cfg.PPN, Alpha: cfg.Alpha, Beta: cfg.Beta,
				},
				Repeats: cfg.Repeats,
				Spacing: spacing,
				Seed:    trialSeed * 2654435761,
			})
			if err != nil {
				return nil, fmt.Errorf("harness: scaling %s procs=%d size=%d: %w", cfg.App, procs, size, err)
			}
			data.Cells = append(data.Cells, ScalingCell{
				Procs:  procs,
				Size:   size,
				Mean:   MeanElapsed(trials),
				CoV:    CoVByPolicy(trials),
				Trials: trials,
			})
		}
	}
	return data, nil
}

// GainTable summarizes gains of the net-load-aware policy over each
// baseline across all cells (Tables 2 and 3): average, median and
// maximum gain percent.
type GainTable struct {
	App AppKind
	// Rows maps baseline policy to its gain summary.
	Rows map[string]stats.Summary
}

// Gains computes the gain table from scaling data.
func (d *ScalingData) Gains() GainTable {
	var configMeans []map[string]float64
	for _, c := range d.Cells {
		configMeans = append(configMeans, c.Mean)
	}
	rows := make(map[string]stats.Summary)
	for pol, gains := range GainsVsBaselines(configMeans) {
		rows[pol] = stats.Summarize(gains)
	}
	return GainTable{App: d.App, Rows: rows}
}

// LoadPerCore aggregates Figure 5's quantity over all trials: the mean
// allocated-group CPU load per logical core, per policy.
func (d *ScalingData) LoadPerCore() map[string]float64 {
	var all []Trial
	for _, c := range d.Cells {
		all = append(all, c.Trials...)
	}
	return MeanGroupLoadPerCore(all)
}

// OverallCoV returns the mean coefficient of variation per policy across
// cells (the run-stability comparison in §5.1/§5.2).
func (d *ScalingData) OverallCoV() map[string]float64 {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, c := range d.Cells {
		for pol, cov := range c.CoV {
			sums[pol] += cov
			counts[pol]++
		}
	}
	out := make(map[string]float64, len(sums))
	for pol, sum := range sums {
		out[pol] = sum / float64(counts[pol])
	}
	return out
}

// --- Table 4 & Figure 7: allocation analysis --------------------------------

// AnalysisData reproduces §5.3: the four policies allocate for the same
// request from the same snapshot; each allocation is executed; the
// snapshot explains the choices.
type AnalysisData struct {
	Snap       *metrics.Snapshot
	Cluster    *cluster.Cluster
	Policies   []string
	Selections map[string][]int
	Groups     map[string]GroupState
	TimesSec   map[string]float64
}

// AllocationAnalysis runs the paper's §5.3 case study: miniMD on 32
// processes, 4 per node, s=16 (16K atoms).
func AllocationAnalysis(seed uint64, iterations int) (*AnalysisData, error) {
	s, err := NewSession(SessionConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	s.WarmUp(DefaultWarmUp)

	snap, err := monitor.ReadSnapshot(s.Store, s.Now())
	if err != nil {
		return nil, err
	}
	a, b := apps.PaperAlphaBetaMiniMD()
	req := alloc.Request{Procs: 32, PPN: 4, Alpha: a, Beta: b}
	r := rng.New(seed + 5)
	d := &AnalysisData{
		Snap:       snap,
		Cluster:    s.World.Cluster(),
		Selections: make(map[string][]int),
		Groups:     make(map[string]GroupState),
		TimesSec:   make(map[string]float64),
	}
	// All four policies allocate from the same frozen snapshot.
	type chosen struct {
		pol alloc.Policy
		a   alloc.Allocation
	}
	var picks []chosen
	for _, pol := range PaperPolicies() {
		al, err := pol.Allocate(snap, req, r.Split())
		if err != nil {
			return nil, err
		}
		d.Policies = append(d.Policies, pol.Name())
		d.Selections[pol.Name()] = al.Nodes
		d.Groups[pol.Name()] = GroupStateOf(snap, al.Nodes)
		picks = append(picks, chosen{pol, al})
	}
	// Execute each allocation (in sequence, like the paper).
	for _, p := range picks {
		shape, err := apps.MiniMD(apps.MiniMDParams{S: 16, Steps: iterations}, 32)
		if err != nil {
			return nil, err
		}
		res, err := s.RunJob(shape, p.a)
		if err != nil {
			return nil, err
		}
		d.TimesSec[p.pol.Name()] = res.Elapsed.Seconds()
		s.Advance(time.Minute)
	}
	return d, nil
}
