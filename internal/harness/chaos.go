package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nlarm/internal/broker"
	"nlarm/internal/chaos"
	"nlarm/internal/cluster"
	"nlarm/internal/jobqueue"
	"nlarm/internal/monitor"
	"nlarm/internal/mpisim"
	"nlarm/internal/obs"
	"nlarm/internal/rng"
	"nlarm/internal/simtime"
	"nlarm/internal/store"
	"nlarm/internal/world"
)

// ChaosConfig parameterizes a chaos scenario. Zero fields take defaults
// tuned so every fault is detected, recovered from, and accounted for
// within its window.
type ChaosConfig struct {
	// Seed drives the world, the fault schedule, and the store's
	// probabilistic faults. Same seed, same run — bit for bit.
	Seed uint64
	// Windows is the number of one-fault windows (default 10).
	Windows int
	// Window is the window length (default 1 minute). Must comfortably
	// exceed the slowest daemon's staleness threshold plus a supervision
	// period, or relaunch accounting checks will flag false violations.
	Window time.Duration
	// Driver selects how the scenario advances virtual time (default
	// SteppedDriver); the report must be identical across drivers.
	Driver Driver
}

// ChaosCheck is one invariant evaluation during the run.
type ChaosCheck struct {
	At   time.Duration // offset from the start of the fault phase
	Name string
	Ok   bool
	Note string
}

// ChaosReport is the outcome of RunChaos: the applied fault log, every
// invariant check, and the final recovery accounting.
type ChaosReport struct {
	Seed     uint64
	Events   []chaos.Event
	EventLog []string
	Checks   []ChaosCheck

	WorkerCrashes int
	MasterKills   int
	SlaveKills    int
	Relaunches    int
	Promotions    int

	StoreFaults    uint64
	DegradedServes uint64
	JobsSubmitted  int
	JobsDone       int
	JobsFailed     int

	// Metrics is the shared instrumentation registry's final snapshot;
	// MetricsText is its deterministic rendering, embedded in Render so
	// the report carries the full observability picture of the run.
	Metrics     *obs.Snapshot
	MetricsText string
}

// InjectedFaults counts every fault the scenario put into the system:
// applied schedule events (recoveries excluded) plus store-level faults.
func (r *ChaosReport) InjectedFaults() int {
	n := r.WorkerCrashes + r.MasterKills + r.SlaveKills
	for _, e := range r.Events {
		if e.Kind == chaos.KindPartition || e.Kind == chaos.KindNodeDown {
			n++
		}
	}
	return n + int(r.StoreFaults)
}

// Violations returns the names and notes of every failed check.
func (r *ChaosReport) Violations() []string {
	var v []string
	for _, c := range r.Checks {
		if !c.Ok {
			v = append(v, fmt.Sprintf("%v %s: %s", c.At, c.Name, c.Note))
		}
	}
	return v
}

// Ok reports whether every invariant held.
func (r *ChaosReport) Ok() bool { return len(r.Violations()) == 0 }

// Render formats the full report deterministically; two same-seed runs
// must produce identical bytes.
func (r *ChaosReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d checks=%d events=%d\n", r.Seed, len(r.Checks), len(r.Events))
	for _, line := range r.EventLog {
		fmt.Fprintf(&b, "event %s\n", line)
	}
	for _, c := range r.Checks {
		status := "ok"
		if !c.Ok {
			status = "VIOLATION"
		}
		fmt.Fprintf(&b, "check %v %s %s %s\n", c.At, c.Name, status, c.Note)
	}
	fmt.Fprintf(&b, "counts crashes=%d masterKills=%d slaveKills=%d relaunches=%d promotions=%d\n",
		r.WorkerCrashes, r.MasterKills, r.SlaveKills, r.Relaunches, r.Promotions)
	fmt.Fprintf(&b, "store faults=%d degradedServes=%d jobs=%d/%d done, %d failed\n",
		r.StoreFaults, r.DegradedServes, r.JobsDone, r.JobsSubmitted, r.JobsFailed)
	if r.MetricsText != "" {
		b.WriteString("metrics:\n")
		for _, line := range strings.Split(strings.TrimRight(r.MetricsText, "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}

// Digest hashes Render with FNV-1a, giving tests a one-number
// reproducibility witness.
func (r *ChaosReport) Digest() uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, c := range []byte(r.Render()) {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// chaosMonitorConfig is the accelerated cadence chaos runs use: fast
// enough that the slowest staleness threshold (bandwidthd: 2.5x10s) plus
// a supervision tick fits well inside half a window.
func chaosMonitorConfig() monitor.Config {
	return monitor.Config{
		NodeStatePeriod:   2 * time.Second,
		LivehostsPeriod:   2 * time.Second,
		LatencyPeriod:     5 * time.Second,
		BandwidthPeriod:   10 * time.Second,
		SupervisePeriod:   4 * time.Second,
		HeartbeatTimeout:  10 * time.Second,
		LivehostsReplicas: 2,
	}
}

// chaosJobShape is the small MPI job submitted once per window.
func chaosJobShape(w int) *mpisim.Shape {
	s := &mpisim.Shape{
		Name:              fmt.Sprintf("chaos-job-%d", w),
		Ranks:             4,
		Iterations:        40,
		ComputeSecPerIter: 0.01,
		RefFreqGHz:        3.0,
	}
	mpisim.Halo2D(s, 64*1024, 1)
	return s
}

// RunChaos drives a full monitor+broker+jobqueue stack over a fault-
// injecting store through a seeded fault schedule, checking invariants
// mid-window (faults active) and at window end (recovered), and verifying
// at the end that the system's recovery bookkeeping exactly matches what
// was injected:
//
//   - exactly one running master at every check point
//   - allocations never land on nodes that are down
//   - the published livehosts list reconverges to the truth after recovery
//   - sum(relaunches) == injected worker crashes
//   - sum(promotions) == injected master kills
//   - every job submitted during the chaos completes
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.Windows <= 0 {
		cfg.Windows = 10
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	report := &ChaosReport{Seed: cfg.Seed}

	cl, err := cluster.BuildUniform(2, 4, 8, 3.0, 8192)
	if err != nil {
		return nil, err
	}
	numNodes := cl.Size()
	drv := defaultDriver(cfg.Driver)
	sched := simtime.NewScheduler(defaultEpoch)
	w := world.New(cl, world.Config{Seed: cfg.Seed}, defaultEpoch)
	stopWorld := w.Attach(sched)
	defer stopWorld()

	// One registry is shared by every layer; at the end its counters must
	// reconcile exactly with the injector's and the report's own counts.
	reg := obs.NewRegistry()

	fs := store.NewFault(store.NewMem(), cfg.Seed^0x9e3779b97f4a7c15)
	// Probabilistic corruption stays on monitoring data; control-plane
	// keys (heartbeats, lease) stay honest so recovery accounting is
	// exact. Partitions are scheduled explicitly below.
	fs.SetScope(monitor.KeyLivehostsPrefix, monitor.KeyNodeStatePrefix,
		"latency/", "bandwidth/")
	fs.SetRates(store.Rates{TornWrite: 0.02, StaleRead: 0.05})
	ist := store.Instrument(fs, reg, sched.Now)
	// Generation tracking sits outermost so even failed (torn) writes
	// bump generations and the broker's delta snapshot cache re-reads
	// exactly the keys the chaos schedule perturbed.
	vst := store.Version(ist)

	pr := &monitor.WorldProber{W: w}
	mcfg := chaosMonitorConfig()
	mcfg.Obs = reg
	mgr := monitor.NewManager(pr, vst, mcfg)
	if err := mgr.Start(sched); err != nil {
		return nil, err
	}
	defer mgr.Stop()

	b := broker.New(vst, sched, broker.Config{Seed: cfg.Seed + 7, WaitLoadPerCore: 100, Obs: reg})
	q := jobqueue.New(b, sched, jobqueue.Config{RetryPeriod: 3 * time.Second, Obs: reg})
	if err := q.Start(); err != nil {
		return nil, err
	}
	defer q.Stop()

	// Warm up until every matrix is published, then prime the broker's
	// last-good snapshot with one healthy allocation.
	drv.Run(sched, 30*time.Second)
	if _, err := b.Allocate(broker.Request{Procs: 4, Force: true}); err != nil {
		return nil, fmt.Errorf("harness: chaos warm-up allocation failed: %w", err)
	}

	start := sched.Now()
	offset := func() time.Duration { return sched.Now().Sub(start) }

	allNodes := make([]int, numNodes)
	var workers []string
	for _, d := range mgr.Workers() {
		workers = append(workers, d.Name())
	}
	for i := range allNodes {
		allNodes[i] = i
	}
	rnd := rng.New(cfg.Seed)
	events := chaos.Schedule(rnd, chaos.ScheduleConfig{
		Windows: cfg.Windows,
		Window:  cfg.Window,
		Workers: workers,
		// Only snapshot-feeding prefixes: partitioning either one forces
		// the broker onto its degraded path. Heartbeats are never
		// partitioned (see ScheduleConfig docs).
		Prefixes: []string{monitor.KeyLivehostsPrefix, monitor.KeyNodeStatePrefix},
		Nodes:    allNodes,
	})
	report.Events = events
	inj := &chaos.Injector{Mgr: mgr, World: w, FStore: fs, Obs: reg}
	inj.Arm(sched, events)
	defer inj.Disarm()

	check := func(name string, ok bool, note string) {
		report.Checks = append(report.Checks, ChaosCheck{At: offset(), Name: name, Ok: ok, Note: note})
	}
	checkMasters := func() {
		running := 0
		for _, c := range mgr.Centrals() {
			if c.Running() && c.Role() == monitor.RoleMaster {
				running++
			}
		}
		check("one-master", running == 1, fmt.Sprintf("running masters=%d", running))
	}
	checkAllocAvoidsDead := func() {
		resp, err := b.Allocate(broker.Request{Procs: 4, Force: true})
		if err != nil {
			check("alloc-succeeds", false, err.Error())
			return
		}
		mode := "fresh"
		if resp.Degraded {
			mode = "degraded: " + resp.DegradedReason
		}
		check("alloc-succeeds", true, mode)
		down := map[int]bool{}
		for _, id := range inj.DownNodes() {
			down[id] = true
		}
		for _, n := range resp.Nodes {
			if down[n] {
				check("alloc-avoids-dead", false, fmt.Sprintf("node %d allocated while down", n))
				return
			}
		}
		check("alloc-avoids-dead", true, fmt.Sprintf("nodes=%v", resp.Nodes))
	}
	checkLivehosts := func() {
		hosts, _, err := monitor.ReadLivehosts(fs)
		if err != nil {
			check("livehosts-converged", false, err.Error())
			return
		}
		down := map[int]bool{}
		for _, id := range inj.DownNodes() {
			down[id] = true
		}
		var want []int
		for id := 0; id < numNodes; id++ {
			if !down[id] {
				want = append(want, id)
			}
		}
		got := append([]int(nil), hosts...)
		sort.Ints(got)
		ok := len(got) == len(want)
		for i := 0; ok && i < len(got); i++ {
			ok = got[i] == want[i]
		}
		check("livehosts-converged", ok, fmt.Sprintf("got=%v want=%v", got, want))
	}

	jobIDs := make([]int, 0, cfg.Windows)
	submitJob := func(wnd int) {
		shape := chaosJobShape(wnd)
		id, err := q.Submit(jobqueue.Spec{
			Name:    shape.Name,
			Request: broker.Request{Procs: shape.Ranks},
			Start: func(id int, resp broker.Response, done func(error)) error {
				place := mpisim.Placement{NodeOf: resp.Allocation.RankNodes()}
				_, err := w.LaunchJob(shape, place, func(res mpisim.Result) { done(nil) })
				return err
			},
		})
		if err != nil {
			check("job-submitted", false, err.Error())
			return
		}
		report.JobsSubmitted++
		jobIDs = append(jobIDs, id)
	}

	for wnd := 0; wnd < cfg.Windows; wnd++ {
		// +25s: primary and secondary faults are live (recovery is at
		// half-window), failover has settled.
		drv.Run(sched, 25*time.Second)
		checkMasters()
		checkAllocAvoidsDead()
		// +35s: recovery events fired; submit this window's job.
		drv.Run(sched, 10*time.Second)
		submitJob(wnd)
		// +59s: the window's faults must be fully absorbed.
		drv.Run(sched, 24*time.Second)
		checkMasters()
		checkLivehosts()
		drv.Run(sched, time.Second)
	}

	// Settle: let the last window's relaunches and jobs finish.
	drv.Run(sched, time.Minute)

	report.EventLog = inj.Log()
	report.WorkerCrashes = inj.WorkerCrashes()
	report.MasterKills = inj.MasterKills()
	report.SlaveKills = inj.SlaveKills()
	for _, c := range mgr.Centrals() {
		report.Relaunches += c.Relaunches()
		report.Promotions += c.Promotions()
	}
	report.StoreFaults = fs.TotalFaults()
	report.DegradedServes = b.DegradedServed()

	// Freeze the observability picture and reconcile it against the
	// independently-kept counts: the registry is fed by the components
	// themselves (supervisors, broker, queue, injector), so any drift
	// between the two paths is a bookkeeping bug.
	store.SyncFaults(fs, reg)
	report.Metrics = reg.Snapshot()
	report.MetricsText = report.Metrics.Render()
	ctr := report.Metrics.Counters
	checkCounter := func(name string, want uint64) {
		got := ctr[name]
		check("obs-"+name, got == want, fmt.Sprintf("counter=%d want=%d", got, want))
	}
	checkCounter("monitor.relaunches.total", uint64(report.Relaunches))
	checkCounter("monitor.promotions.total", uint64(report.Promotions))
	checkCounter("chaos.crash-worker.total", uint64(report.WorkerCrashes))
	checkCounter("chaos.kill-master.total", uint64(report.MasterKills))
	checkCounter("chaos.kill-slave.total", uint64(report.SlaveKills))
	checkCounter("broker.allocate.degraded", report.DegradedServes)
	faultsGauge := report.Metrics.Gauges["store.faults.total"]
	check("obs-store.faults.total", faultsGauge == float64(report.StoreFaults),
		fmt.Sprintf("gauge=%v want=%d", faultsGauge, report.StoreFaults))

	for _, d := range mgr.Workers() {
		if !d.Running() {
			check("workers-recovered", false, d.Name()+" not running")
		}
	}
	check("relaunches-match-crashes", report.Relaunches == report.WorkerCrashes,
		fmt.Sprintf("relaunches=%d crashes=%d", report.Relaunches, report.WorkerCrashes))
	check("promotions-match-master-kills", report.Promotions == report.MasterKills,
		fmt.Sprintf("promotions=%d masterKills=%d", report.Promotions, report.MasterKills))
	check("central-pair-replenished", len(mgr.Centrals()) == 2+report.MasterKills+report.SlaveKills,
		fmt.Sprintf("centrals=%d masterKills=%d slaveKills=%d", len(mgr.Centrals()), report.MasterKills, report.SlaveKills))
	checkMasters()
	checkLivehosts()

	for _, id := range jobIDs {
		j, ok := q.Job(id)
		if !ok {
			report.JobsFailed++
			check("jobs-complete", false, fmt.Sprintf("job %d vanished", id))
			continue
		}
		switch j.State {
		case jobqueue.StateDone:
			report.JobsDone++
		default:
			report.JobsFailed++
			check("jobs-complete", false, fmt.Sprintf("job %d (%s) state=%s err=%v", id, j.Name, j.State, j.Err))
		}
	}
	check("all-jobs-done", report.JobsDone == report.JobsSubmitted,
		fmt.Sprintf("done=%d submitted=%d", report.JobsDone, report.JobsSubmitted))
	checkCounter("jobqueue.submitted.total", uint64(report.JobsSubmitted))
	checkCounter("jobqueue.done.total", uint64(report.JobsDone))

	return report, nil
}
