package harness

import (
	"fmt"
	"testing"
)

// TestOverloadChaosScenario runs the overload scenario across the chaos
// seed set and requires every invariant to hold, plus scenario-shape
// floors: admission actually shed heavily (the burst was a real
// overload), degradation actually engaged (the blackout bit), and both
// tenants were served.
func TestOverloadChaosScenario(t *testing.T) {
	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rep, err := RunOverload(OverloadConfig{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("invariant violations:\n%s\n\nfull report:\n%s",
					rep.Violations(), rep.Render())
			}
			if rep.Shed*4 < rep.Offered {
				t.Fatalf("only %d of %d offered requests shed; the burst never overloaded admission", rep.Shed, rep.Offered)
			}
			if rep.Degraded == 0 {
				t.Fatal("monitoring blackout produced no degraded serves")
			}
			for tenant, served := range rep.ServedByTenant {
				if served == 0 {
					t.Fatalf("tenant %s starved:\n%s", tenant, rep.Render())
				}
			}
		})
	}
}

// TestOverloadScenarioDeterministic: the overload report (request
// accounting, checks, rendered metrics) is byte-identical across
// same-seed runs and differs across seeds.
func TestOverloadScenarioDeterministic(t *testing.T) {
	run := func(seed uint64) *OverloadReport {
		rep, err := RunOverload(OverloadConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(7), run(7)
	if a.Render() != b.Render() {
		t.Fatalf("same-seed runs diverged:\n--- run1 ---\n%s\n--- run2 ---\n%s", a.Render(), b.Render())
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digest mismatch: %x vs %x", a.Digest(), b.Digest())
	}
	if c := run(8); c.Render() == a.Render() {
		t.Fatal("different seeds produced identical runs")
	}
}
