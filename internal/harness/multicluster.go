package harness

import (
	"fmt"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/apps"
	"nlarm/internal/cluster"
	"nlarm/internal/monitor"
	"nlarm/internal/mpisim"
	"nlarm/internal/topology"
)

// MultiClusterConfig drives the multi-cluster extension experiment (§6
// future work): three WAN-joined clusters, the standard baselines, the
// exact heuristic, and the grouped heuristic that reasons at cluster
// granularity.
type MultiClusterConfig struct {
	Seed uint64
	// Clusters/SwitchesPerCluster/NodesPerSwitch shape the deployment.
	Clusters, SwitchesPerCluster, NodesPerSwitch int
	// Procs/PPN per job (must fit inside one cluster for the headline
	// comparison to be meaningful).
	Procs, PPN int
	// Repeats per policy.
	Repeats int
	// Iterations for the miniMD runs (0 = default).
	Iterations int
}

// DefaultMultiClusterConfig returns the standard setup: 3 clusters of
// 2×4 nodes, 16-process jobs.
func DefaultMultiClusterConfig(seed uint64) MultiClusterConfig {
	return MultiClusterConfig{
		Seed:     seed,
		Clusters: 3, SwitchesPerCluster: 2, NodesPerSwitch: 4,
		Procs: 16, PPN: 4,
		Repeats: 3,
	}
}

// MultiClusterResult summarizes the experiment.
type MultiClusterResult struct {
	Cfg MultiClusterConfig
	// MeanSec is each policy's mean execution time.
	MeanSec map[string]float64
	// CrossCluster counts, per policy, how many trials spanned more than
	// one cluster.
	CrossCluster map[string]int
	// Trials holds the raw runs.
	Trials []Trial
}

// RunMultiCluster executes the experiment.
func RunMultiCluster(cfg MultiClusterConfig) (*MultiClusterResult, error) {
	if cfg.Clusters == 0 {
		cfg = DefaultMultiClusterConfig(cfg.Seed)
	}
	mc := topology.MultiClusterConfig{
		Clusters:           cfg.Clusters,
		SwitchesPerCluster: cfg.SwitchesPerCluster,
		NodesPerSwitch:     cfg.NodesPerSwitch,
	}
	cl, clusterOf, err := cluster.BuildMultiCluster(mc, 8, 3.0, 8192)
	if err != nil {
		return nil, err
	}
	s, err := NewSession(SessionConfig{
		Seed:    cfg.Seed,
		Cluster: cl,
		Monitor: monitor.Config{
			NodeStatePeriod: 2 * time.Second,
			LatencyPeriod:   15 * time.Second,
			BandwidthPeriod: 30 * time.Second,
		},
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	s.WarmUp(2 * time.Minute)

	policies := append(PaperPolicies(), alloc.GroupedNetLoadAware{GroupOf: clusterOf})
	trials, err := s.Compare(CompareConfig{
		MakeShape: func() (*mpisim.Shape, error) {
			return apps.MiniMD(apps.MiniMDParams{S: 16, Steps: cfg.Iterations}, cfg.Procs)
		},
		Request:  alloc.Request{Procs: cfg.Procs, PPN: cfg.PPN, Alpha: 0.3, Beta: 0.7},
		Policies: policies,
		Repeats:  cfg.Repeats,
		Spacing:  time.Minute,
		Seed:     cfg.Seed + 17,
	})
	if err != nil {
		return nil, err
	}
	res := &MultiClusterResult{
		Cfg:          cfg,
		MeanSec:      MeanElapsed(trials),
		CrossCluster: make(map[string]int),
		Trials:       trials,
	}
	for _, t := range trials {
		clusters := map[int]bool{}
		for _, n := range t.Allocation.Nodes {
			clusters[clusterOf(n)] = true
		}
		if len(clusters) > 1 {
			res.CrossCluster[t.Policy]++
		}
	}
	return res, nil
}

// FormatMultiCluster renders the experiment table.
func FormatMultiCluster(r *MultiClusterResult) string {
	t := Table{
		Title: fmt.Sprintf("Multi-cluster extension — %d WAN-joined clusters, miniMD %d procs (mean of %d runs)",
			r.Cfg.Clusters, r.Cfg.Procs, r.Cfg.Repeats),
		Header: []string{"policy", "mean time (s)", "cross-cluster allocations"},
	}
	for _, pol := range orderedPolicies(r.MeanSec) {
		t.AddRow(pol, Sec(r.MeanSec[pol]), fmt.Sprintf("%d/%d", r.CrossCluster[pol], r.Cfg.Repeats))
	}
	return t.String()
}
