package harness

import (
	"fmt"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/apps"
	"nlarm/internal/monitor"
	"nlarm/internal/mpisim"
	"nlarm/internal/rng"
	"nlarm/internal/stats"
)

// CoScheduleConfig drives the co-scheduling experiment — a scenario
// beyond the paper's one-job-at-a-time protocol: K jobs are submitted
// back-to-back and run *concurrently*, so each allocation decision shapes
// the interference the next jobs see. Good allocators spread jobs across
// disjoint, well-connected regions; bad ones pile jobs onto the same
// nodes and trunks.
type CoScheduleConfig struct {
	Seed uint64
	// Jobs is the number of concurrently-submitted jobs (default 4).
	Jobs int
	// Procs/PPN/Size select each job's miniMD configuration (defaults
	// 16/4/16 — four 4-node jobs fit the 60-node cluster comfortably).
	Procs, PPN, Size int
	// Iterations overrides miniMD's step count.
	Iterations int
	// Repeats averages the whole batch this many times (default 3).
	Repeats int
	// SubmitGap is the virtual time between submissions (default 5s) —
	// enough for NodeStateD to see the previous job's ranks.
	SubmitGap time.Duration
}

// CoScheduleResult summarizes the experiment.
type CoScheduleResult struct {
	Cfg CoScheduleConfig
	// MeanJobSec is the mean per-job execution time per policy.
	MeanJobSec map[string]float64
	// MakespanSec is the mean batch makespan (first submit to last
	// completion) per policy.
	MakespanSec map[string]float64
	// Overlaps counts, per policy, the total node-sharing collisions
	// (pairs of concurrent jobs that shared at least one node).
	Overlaps map[string]int
}

// RunCoSchedule executes the experiment.
func RunCoSchedule(cfg CoScheduleConfig) (*CoScheduleResult, error) {
	if cfg.Jobs == 0 {
		cfg.Jobs = 4
	}
	if cfg.Procs == 0 {
		cfg.Procs = 16
	}
	if cfg.PPN == 0 {
		cfg.PPN = 4
	}
	if cfg.Size == 0 {
		cfg.Size = 16
	}
	if cfg.Repeats == 0 {
		cfg.Repeats = 3
	}
	if cfg.SubmitGap == 0 {
		cfg.SubmitGap = 5 * time.Second
	}
	s, err := NewSession(SessionConfig{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	s.WarmUp(DefaultWarmUp)

	res := &CoScheduleResult{
		Cfg:         cfg,
		MeanJobSec:  make(map[string]float64),
		MakespanSec: make(map[string]float64),
		Overlaps:    make(map[string]int),
	}
	r := rng.New(cfg.Seed + 41)
	// The four paper policies plus the reservation-aware variant of the
	// heuristic (the anti-herding extension motivated by this experiment).
	policies := append(PaperPolicies(),
		alloc.NewReservingPolicy(alloc.NetLoadAware{}, 90*time.Second))
	for _, pol := range policies {
		var jobTimes []float64
		var makespans []float64
		for rep := 0; rep < cfg.Repeats; rep++ {
			batchStart := s.Now()
			type launched struct {
				nodes []int
				done  bool
				res   mpisim.Result
			}
			batch := make([]*launched, cfg.Jobs)
			// Submit all jobs back-to-back; each allocation sees the
			// monitor's view including the previously launched jobs.
			for j := 0; j < cfg.Jobs; j++ {
				snap, err := monitor.ReadSnapshot(s.Store, s.Now())
				if err != nil {
					return nil, err
				}
				a, err := pol.Allocate(snap, alloc.Request{
					Procs: cfg.Procs, PPN: cfg.PPN, Alpha: 0.3, Beta: 0.7,
				}, r.Split())
				if err != nil {
					return nil, fmt.Errorf("harness: cosched %s job %d: %w", pol.Name(), j, err)
				}
				shape, err := apps.MiniMD(apps.MiniMDParams{S: cfg.Size, Steps: cfg.Iterations}, cfg.Procs)
				if err != nil {
					return nil, err
				}
				entry := &launched{nodes: a.Nodes}
				batch[j] = entry
				if _, err := s.World.LaunchJob(shape, mpisim.Placement{NodeOf: a.RankNodes()}, func(r mpisim.Result) {
					entry.res = r
					entry.done = true
				}); err != nil {
					return nil, err
				}
				s.Advance(cfg.SubmitGap)
			}
			// Count node-sharing collisions among the concurrent batch.
			for a := 0; a < cfg.Jobs; a++ {
				for b := a + 1; b < cfg.Jobs; b++ {
					if shareNode(batch[a].nodes, batch[b].nodes) {
						res.Overlaps[pol.Name()]++
					}
				}
			}
			// Run until every job in the batch completes.
			deadline := s.Now().Add(maxJobVirtualTime)
			for {
				alldone := true
				for _, e := range batch {
					if !e.done {
						alldone = false
						break
					}
				}
				if alldone {
					break
				}
				if !s.Sched.Step() || s.Now().After(deadline) {
					return nil, fmt.Errorf("harness: cosched %s batch stalled", pol.Name())
				}
			}
			var lastEnd time.Time
			for _, e := range batch {
				jobTimes = append(jobTimes, e.res.Elapsed.Seconds())
				if e.res.End.After(lastEnd) {
					lastEnd = e.res.End
				}
			}
			makespans = append(makespans, lastEnd.Sub(batchStart).Seconds())
			s.Advance(2 * time.Minute)
		}
		res.MeanJobSec[pol.Name()] = stats.Mean(jobTimes)
		res.MakespanSec[pol.Name()] = stats.Mean(makespans)
	}
	return res, nil
}

func shareNode(a, b []int) bool {
	set := make(map[int]bool, len(a))
	for _, n := range a {
		set[n] = true
	}
	for _, n := range b {
		if set[n] {
			return true
		}
	}
	return false
}

// FormatCoSchedule renders the experiment table.
func FormatCoSchedule(r *CoScheduleResult) string {
	t := Table{
		Title: fmt.Sprintf("Co-scheduling — %d concurrent miniMD jobs (%d procs each, mean of %d batches)",
			r.Cfg.Jobs, r.Cfg.Procs, r.Cfg.Repeats),
		Header: []string{"policy", "mean job time (s)", "batch makespan (s)", "node-sharing collisions"},
	}
	for _, pol := range orderedPolicies(r.MeanJobSec) {
		t.AddRow(pol, Sec(r.MeanJobSec[pol]), Sec(r.MakespanSec[pol]),
			fmt.Sprintf("%d", r.Overlaps[pol]))
	}
	return t.String()
}
