package harness

import (
	"testing"

	"nlarm/internal/apps"
	"nlarm/internal/rng"
)

func TestProfileMiniMDSuggestsNetworkHeavyWeights(t *testing.T) {
	s := smallSession(t, 31)
	rep, err := s.ProfileMiniMD(apps.MiniMDParams{S: 8, Steps: 100}, 8, 4, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CommFraction <= 0 || rep.CommFraction >= 1 {
		t.Fatalf("comm fraction %g", rep.CommFraction)
	}
	if rep.Alpha+rep.Beta < 0.999 || rep.Alpha+rep.Beta > 1.001 {
		t.Fatalf("α+β = %g", rep.Alpha+rep.Beta)
	}
	// The derived β must follow the measured fraction (SuggestAlphaBeta's
	// contract: quantized to 0.1 and clamped to [0.1, 0.9]).
	wantAlpha, wantBeta := apps.SuggestAlphaBeta(rep.CommFraction)
	if rep.Alpha != wantAlpha || rep.Beta != wantBeta {
		t.Fatalf("weights %g/%g do not match measured fraction %g (want %g/%g)",
			rep.Alpha, rep.Beta, rep.CommFraction, wantAlpha, wantBeta)
	}
	// The profiling run itself was shortened.
	if rep.Result.Elapsed <= 0 {
		t.Fatal("no profiling run recorded")
	}
}

func TestProfileShortensRun(t *testing.T) {
	s := smallSession(t, 32)
	shape, err := apps.MiniMD(apps.MiniMDParams{S: 16, Steps: 100}, 8)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.ProfileShape(shape, 4, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	// 20% of 100 steps: the profile run must be several times shorter
	// than the full job would be.
	full, err := apps.MiniMD(apps.MiniMDParams{S: 16, Steps: 100}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if full.Iterations != 100 {
		t.Fatalf("shape mutated: %d iterations", full.Iterations)
	}
	if rep.Result.Elapsed.Seconds() > 0.5*float64(full.Iterations)*shape.ComputeSecPerIter*2 {
		t.Logf("profile elapsed %v (informational)", rep.Result.Elapsed)
	}
	if shape.Iterations != 100 {
		t.Fatalf("ProfileShape mutated the input shape: %d", shape.Iterations)
	}
}

func TestProfileAndRun(t *testing.T) {
	s := smallSession(t, 33)
	shape, err := apps.MiniMD(apps.MiniMDParams{S: 8, Steps: 50}, 8)
	if err != nil {
		t.Fatal(err)
	}
	rep, res, err := s.ProfileAndRun(shape, 4, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || res.Elapsed <= 0 {
		t.Fatalf("report %v result %+v", rep, res)
	}
	// The full run uses the original iteration count.
	if res.Elapsed <= rep.Result.Elapsed {
		t.Fatalf("full run (%v) not longer than profile (%v)", res.Elapsed, rep.Result.Elapsed)
	}
}

func TestProfileMiniFE(t *testing.T) {
	s := smallSession(t, 34)
	rep, err := s.ProfileMiniFE(apps.MiniFEParams{NX: 32, Iters: 50}, 8, 4, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alpha <= 0 || rep.Beta <= 0 {
		t.Fatalf("weights %g/%g", rep.Alpha, rep.Beta)
	}
}
