package harness

import (
	"fmt"
	"math"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/apps"
	"nlarm/internal/monitor"
	"nlarm/internal/rng"
	"nlarm/internal/stats"

	"nlarm/internal/predict"
)

// PredictionConfig drives the prediction-accuracy study: a sequence of
// jobs is allocated round-robin across all four policies, each run's
// execution time is predicted from the monitoring snapshot at launch, and
// predictions are compared with the simulated reality.
type PredictionConfig struct {
	Seed uint64
	// Runs is the number of jobs (default 24; spread across policies).
	Runs int
	// Procs/PPN/Size select the miniMD configuration (defaults 32/4/16).
	Procs, PPN, Size int
	// Iterations overrides miniMD's step count.
	Iterations int
}

// PredictionPoint is one job's predicted-vs-actual pair.
type PredictionPoint struct {
	Policy       string
	PredictedSec float64
	ActualSec    float64
}

// PredictionResult aggregates the study.
type PredictionResult struct {
	Cfg    PredictionConfig
	Points []PredictionPoint
	// Pearson is the correlation between predicted and actual times.
	Pearson float64
	// MedianRatio is the median actual/predicted ratio (calibration).
	MedianRatio float64
	// RankAgreement is the fraction of point pairs whose predicted
	// ordering matches the actual ordering (Kendall-style concordance).
	RankAgreement float64
}

// RunPredictionStudy executes the study on a fresh session.
func RunPredictionStudy(cfg PredictionConfig) (*PredictionResult, error) {
	if cfg.Runs == 0 {
		cfg.Runs = 24
	}
	if cfg.Procs == 0 {
		cfg.Procs = 32
	}
	if cfg.PPN == 0 {
		cfg.PPN = 4
	}
	if cfg.Size == 0 {
		cfg.Size = 16
	}
	s, err := NewSession(SessionConfig{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	s.WarmUp(DefaultWarmUp)

	policies := PaperPolicies()
	r := rng.New(cfg.Seed + 71)
	res := &PredictionResult{Cfg: cfg}
	for i := 0; i < cfg.Runs; i++ {
		pol := policies[i%len(policies)]
		snap, err := monitor.ReadSnapshot(s.Store, s.Now())
		if err != nil {
			return nil, err
		}
		a, err := pol.Allocate(snap, alloc.Request{
			Procs: cfg.Procs, PPN: cfg.PPN, Alpha: 0.3, Beta: 0.7,
		}, r.Split())
		if err != nil {
			return nil, fmt.Errorf("harness: prediction study run %d: %w", i, err)
		}
		shape, err := apps.MiniMD(apps.MiniMDParams{S: cfg.Size, Steps: cfg.Iterations}, cfg.Procs)
		if err != nil {
			return nil, err
		}
		pred, err := predict.EstimateAllocation(snap, shape, a.RankNodes())
		if err != nil {
			return nil, err
		}
		actual, err := s.RunJob(shape, a)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, PredictionPoint{
			Policy:       pol.Name(),
			PredictedSec: pred.Elapsed.Seconds(),
			ActualSec:    actual.Elapsed.Seconds(),
		})
		s.Advance(time.Minute)
	}

	var xs, ys, ratios []float64
	for _, p := range res.Points {
		xs = append(xs, p.PredictedSec)
		ys = append(ys, p.ActualSec)
		if p.PredictedSec > 0 {
			ratios = append(ratios, p.ActualSec/p.PredictedSec)
		}
	}
	res.Pearson = stats.Pearson(xs, ys)
	res.MedianRatio = stats.Summarize(ratios).Median
	concordant, total := 0, 0
	for i := 0; i < len(res.Points); i++ {
		for j := i + 1; j < len(res.Points); j++ {
			dp := res.Points[i].PredictedSec - res.Points[j].PredictedSec
			da := res.Points[i].ActualSec - res.Points[j].ActualSec
			if dp == 0 || da == 0 {
				continue
			}
			total++
			if math.Signbit(dp) == math.Signbit(da) {
				concordant++
			}
		}
	}
	if total > 0 {
		res.RankAgreement = float64(concordant) / float64(total)
	}
	return res, nil
}

// FormatPrediction renders the study.
func FormatPrediction(r *PredictionResult) string {
	t := Table{
		Title: fmt.Sprintf("Prediction study — miniMD s=%d on %d procs, %d runs across all policies",
			r.Cfg.Size, r.Cfg.Procs, len(r.Points)),
		Header: []string{"policy", "predicted (s)", "actual (s)", "ratio"},
	}
	for _, p := range r.Points {
		ratio := 0.0
		if p.PredictedSec > 0 {
			ratio = p.ActualSec / p.PredictedSec
		}
		t.AddRow(p.Policy, Sec(p.PredictedSec), Sec(p.ActualSec), F3(ratio))
	}
	return t.String() + fmt.Sprintf(
		"\nPearson r = %.3f, median actual/predicted = %.2f, pairwise rank agreement = %.0f%%\n",
		r.Pearson, r.MedianRatio, r.RankAgreement*100)
}
