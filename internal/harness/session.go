// Package harness drives end-to-end experiments on the simulated cluster:
// it assembles the full stack (world, resource monitor, broker), applies
// the paper's measurement protocol (all policies in sequence, repeated,
// averaged), and renders the tables and figures of the evaluation
// section.
package harness

import (
	"fmt"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/broker"
	"nlarm/internal/cluster"
	"nlarm/internal/metrics"
	"nlarm/internal/monitor"
	"nlarm/internal/mpisim"
	"nlarm/internal/simtime"
	"nlarm/internal/store"
	"nlarm/internal/world"
)

// SessionConfig assembles a simulation session. Zero fields take
// defaults.
type SessionConfig struct {
	// Seed drives every stochastic component.
	Seed uint64
	// Cluster overrides the default paper testbed (60 heterogeneous
	// nodes on a 4-switch chain).
	Cluster *cluster.Cluster
	// World overrides parts of the world configuration (Seed is always
	// taken from SessionConfig.Seed).
	World world.Config
	// Monitor overrides the monitoring cadence.
	Monitor monitor.Config
	// Broker overrides the broker configuration (a zero Seed defaults to
	// SessionConfig.Seed+7, preserving historical traces).
	Broker broker.Config
	// Start is the virtual start time; defaults to a fixed epoch so runs
	// are reproducible.
	Start time.Time
	// Driver selects how the session advances virtual time (default
	// SteppedDriver). Experiments wait for completions through it, so the
	// same experiment can run window-polled or event-by-event.
	Driver Driver
}

// Session is a fully wired simulated deployment: the world advances on a
// deterministic scheduler, monitor daemons sample it into a shared store,
// and a broker allocates from that store.
type Session struct {
	Sched *simtime.Scheduler
	World *world.World
	// Store is the raw backing store (values readable directly); VStore
	// is the generation-tracking wrapper the daemons publish through and
	// the broker's snapshot cache reads from.
	Store  *store.MemStore
	VStore *store.VersionedStore
	Mgr    *monitor.Manager
	Broker *broker.Broker

	driver    Driver
	stopWorld simtime.CancelFunc
}

// defaultEpoch is an arbitrary fixed virtual start time.
var defaultEpoch = time.Date(2020, 3, 2, 8, 0, 0, 0, time.UTC)

// NewSession builds and starts the full stack (world stepping + monitor
// daemons). Call WarmUp before allocating so the monitor has a full
// bandwidth matrix.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.Start.IsZero() {
		cfg.Start = defaultEpoch
	}
	cl := cfg.Cluster
	if cl == nil {
		var err error
		cl, err = cluster.BuildIITK()
		if err != nil {
			return nil, err
		}
	}
	wcfg := cfg.World
	wcfg.Seed = cfg.Seed
	sched := simtime.NewScheduler(cfg.Start)
	w := world.New(cl, wcfg, cfg.Start)
	stop := w.Attach(sched)

	st := store.NewMem()
	vst := store.Version(st)
	pr := &monitor.WorldProber{W: w}
	mgr := monitor.NewManager(pr, vst, cfg.Monitor)
	if err := mgr.Start(sched); err != nil {
		return nil, err
	}
	bcfg := cfg.Broker
	if bcfg.Seed == 0 {
		bcfg.Seed = cfg.Seed + 7
	}
	b := broker.New(vst, sched, bcfg)
	return &Session{
		Sched:     sched,
		World:     w,
		Store:     st,
		VStore:    vst,
		Mgr:       mgr,
		Broker:    b,
		driver:    defaultDriver(cfg.Driver),
		stopWorld: stop,
	}, nil
}

// Close halts the session's periodic activities (world stepping and all
// monitor daemons).
func (s *Session) Close() {
	if s.stopWorld != nil {
		s.stopWorld()
	}
	s.Mgr.Stop()
}

// WarmUp advances virtual time by d so the background load develops
// history and every monitoring matrix is published at least once. Use at
// least one bandwidth period (5 min) plus the 15-minute averaging window
// when running means matter; DefaultWarmUp covers both.
func (s *Session) WarmUp(d time.Duration) {
	s.driver.Run(s.Sched, d)
}

// DefaultWarmUp is a warm-up long enough for full monitoring state
// (bandwidth matrix published, 15-minute running means populated).
const DefaultWarmUp = 17 * time.Minute

// Advance moves virtual time forward (between trials).
func (s *Session) Advance(d time.Duration) {
	s.driver.Run(s.Sched, d)
}

// Await advances virtual time through the session's driver until done()
// reports true, erroring past deadline (or, under the event driver, when
// the event queue drains first).
func (s *Session) Await(deadline time.Time, done func() bool) error {
	return s.driver.Await(s.Sched, deadline, done)
}

// Driver returns the session's time driver.
func (s *Session) Driver() Driver { return s.driver }

// Now returns the current virtual time.
func (s *Session) Now() time.Time { return s.Sched.Now() }

// maxJobVirtualTime caps a single simulated job run; a run exceeding it
// indicates a modeling bug rather than a slow allocation.
const maxJobVirtualTime = 6 * time.Hour

// RunStats are ground-truth measurements taken while a job ran — the
// quantities the paper reads off `uptime` during its runs (Figure 5).
type RunStats struct {
	// MeanLoadPerCore is the mean CPU load per logical core of the
	// allocated nodes, averaged over samples taken every few virtual
	// seconds during the run (includes the job's own ranks, which
	// busy-wait in MPI).
	MeanLoadPerCore float64
	// Samples is the number of load samples taken.
	Samples int
}

// RunJob launches shape on the nodes chosen by allocation and advances
// virtual time until the job completes, returning its result.
func (s *Session) RunJob(shape *mpisim.Shape, a alloc.Allocation) (mpisim.Result, error) {
	res, _, err := s.RunJobSampled(shape, a)
	return res, err
}

// runSamplePeriod is how often RunJobSampled reads the allocated nodes'
// load during execution. It must undercut the shortest job runs (small
// problem sizes finish in well under a second of virtual time).
const runSamplePeriod = 200 * time.Millisecond

// RunJobSampled is RunJob plus during-run load sampling of the allocated
// nodes.
func (s *Session) RunJobSampled(shape *mpisim.Shape, a alloc.Allocation) (mpisim.Result, RunStats, error) {
	var stats RunStats
	rankNodes := a.RankNodes()
	if len(rankNodes) != shape.Ranks {
		return mpisim.Result{}, stats, fmt.Errorf("harness: allocation provides %d rank slots, shape %q needs %d",
			len(rankNodes), shape.Name, shape.Ranks)
	}
	place := mpisim.Placement{NodeOf: rankNodes}
	var result mpisim.Result
	done := false
	_, err := s.World.LaunchJob(shape, place, func(r mpisim.Result) {
		result = r
		done = true
	})
	if err != nil {
		return mpisim.Result{}, stats, err
	}
	coreSum := 0.0
	for _, n := range a.Nodes {
		coreSum += float64(s.World.Cluster().Node(n).Cores)
	}
	loadPerCoreSum := 0.0
	sample := func() {
		if coreSum <= 0 {
			return
		}
		loadSum := 0.0
		for _, n := range a.Nodes {
			if sm, err := s.World.SampleNode(n); err == nil {
				loadSum += sm.CPULoad
			}
		}
		loadPerCoreSum += loadSum / coreSum
		stats.Samples++
	}
	// Take an initial sample right after launch so even the shortest runs
	// are measured.
	sample()
	nextSample := s.Sched.Now().Add(runSamplePeriod)
	deadline := s.Sched.Now().Add(maxJobVirtualTime)
	for !done {
		if !s.Sched.Step() {
			return mpisim.Result{}, stats, fmt.Errorf("harness: scheduler drained before job %q finished", shape.Name)
		}
		now := s.Sched.Now()
		if !now.Before(nextSample) && !done {
			nextSample = now.Add(runSamplePeriod)
			sample()
		}
		if now.After(deadline) {
			return mpisim.Result{}, stats, fmt.Errorf("harness: job %q exceeded %v of virtual time", shape.Name, maxJobVirtualTime)
		}
	}
	if stats.Samples > 0 {
		stats.MeanLoadPerCore = loadPerCoreSum / float64(stats.Samples)
	}
	return result, stats, nil
}

// GroupState captures the state of an allocated node group at allocation
// time, from the same snapshot the allocator used — the quantities of
// Table 4 and Figure 5.
type GroupState struct {
	// AvgCPULoad is the group's mean 1-minute CPU load (Table 4 col 2).
	AvgCPULoad float64
	// AvgCPULoadPerCore is load normalized by logical cores (Figure 5).
	AvgCPULoadPerCore float64
	// AvgComplBWMBps is the mean complement of available bandwidth over
	// all group pairs, in MB/s (Table 4 col 3).
	AvgComplBWMBps float64
	// AvgLatencyUS is the mean pairwise latency in microseconds (Table 4
	// col 4).
	AvgLatencyUS float64
}

// GroupStateOf evaluates the allocated group against a snapshot.
func GroupStateOf(snap *metrics.Snapshot, nodes []int) GroupState {
	var gs GroupState
	if len(nodes) == 0 {
		return gs
	}
	loadSum, coreSum := 0.0, 0.0
	for _, n := range nodes {
		na := snap.Nodes[n]
		loadSum += na.CPULoad.M1
		coreSum += float64(na.Cores)
	}
	gs.AvgCPULoad = loadSum / float64(len(nodes))
	if coreSum > 0 {
		gs.AvgCPULoadPerCore = loadSum / coreSum
	}
	pairCount := 0
	cbwSum, latSum := 0.0, 0.0
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			avail, peak, okB := snap.BandwidthOf(nodes[i], nodes[j])
			lat, okL := snap.LatencyOf(nodes[i], nodes[j])
			if !okB || !okL {
				continue
			}
			cbw := (peak - avail) / 1e6
			if cbw < 0 {
				cbw = 0 // jitter can push a measured value above nominal peak
			}
			cbwSum += cbw
			latSum += float64(lat.Microseconds())
			pairCount++
		}
	}
	if pairCount > 0 {
		gs.AvgComplBWMBps = cbwSum / float64(pairCount)
		gs.AvgLatencyUS = latSum / float64(pairCount)
	}
	return gs
}
