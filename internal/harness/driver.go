package harness

import (
	"fmt"
	"time"

	"nlarm/internal/simtime"
)

// Driver is the seam between an experiment and the virtual clock: how
// time advances while the experiment waits for work to finish. All
// state changes in the stack are scheduler events, so the choice of
// driver affects only polling granularity — per-job outcomes (launch
// and completion instants) must be identical across drivers, which the
// cross-clock equivalence tests pin down.
type Driver interface {
	// Name labels the driver in reports and errors.
	Name() string
	// Run unconditionally advances virtual time by d.
	Run(s *simtime.Scheduler, d time.Duration)
	// Await advances virtual time until done() reports true, failing if
	// the virtual clock passes deadline or the event queue drains first.
	Await(s *simtime.Scheduler, deadline time.Time, done func() bool) error
}

// SteppedDriver advances the clock in fixed polling windows between
// done() checks — the harness's historical behavior.
type SteppedDriver struct {
	// Window is the polling window (default 10s).
	Window time.Duration
}

// Name implements Driver.
func (d SteppedDriver) Name() string { return "stepped" }

// Run implements Driver.
func (d SteppedDriver) Run(s *simtime.Scheduler, dur time.Duration) { s.RunFor(dur) }

// Await implements Driver.
func (d SteppedDriver) Await(s *simtime.Scheduler, deadline time.Time, done func() bool) error {
	w := d.Window
	if w <= 0 {
		w = 10 * time.Second
	}
	for !done() {
		if s.Now().After(deadline) {
			return fmt.Errorf("harness: %s driver passed deadline %v while waiting", d.Name(), deadline)
		}
		s.RunFor(w)
	}
	return nil
}

// EventDriver advances the clock one event at a time, checking done()
// after every event — the discrete-event mode: no final partial window,
// and a drained queue is an immediate error instead of a silent spin to
// the deadline.
type EventDriver struct{}

// Name implements Driver.
func (EventDriver) Name() string { return "event" }

// Run implements Driver.
func (EventDriver) Run(s *simtime.Scheduler, dur time.Duration) { s.RunFor(dur) }

// Await implements Driver.
func (EventDriver) Await(s *simtime.Scheduler, deadline time.Time, done func() bool) error {
	for !done() {
		if s.Now().After(deadline) {
			return fmt.Errorf("harness: event driver passed deadline %v while waiting", deadline)
		}
		if !s.Step() {
			return fmt.Errorf("harness: event driver drained the event queue before completion")
		}
	}
	return nil
}

// defaultDriver returns d or the stepped default.
func defaultDriver(d Driver) Driver {
	if d == nil {
		return SteppedDriver{}
	}
	return d
}
