package harness

import (
	"fmt"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/broker"
	"nlarm/internal/cluster"
	"nlarm/internal/jobqueue"
	"nlarm/internal/mpisim"
	"nlarm/internal/stats"
)

// BackfillConfig drives the FIFO-vs-backfill queue experiment: a long
// hog fills half the cluster, a wide head job must wait for nearly all
// of it, and a burst of short walltimed jobs queues up behind the head.
// Under strict FIFO the shorts inherit the head's entire wait even
// though half the cluster idles; with EASY backfill they slip into the
// idle half without delaying the head.
type BackfillConfig struct {
	Seed uint64
	// Shorts is the number of short jobs queued behind the head
	// (default 8).
	Shorts int
	// AgingBound caps how long backfill may overtake a queued job
	// (default: the queue's default, 30m).
	AgingBound time.Duration
	// Driver selects how the experiment advances virtual time (default
	// SteppedDriver); every driver must yield identical per-job starts.
	Driver Driver
}

// BackfillModeResult summarizes one queue discipline.
type BackfillModeResult struct {
	Mode string `json:"mode"`
	// MeanWaitSec / MaxWaitSec aggregate submit-to-launch waits over all
	// jobs (hog, head, shorts).
	MeanWaitSec float64 `json:"mean_wait_sec"`
	MaxWaitSec  float64 `json:"max_wait_sec"`
	// MakespanSec is first-submit to last-completion.
	MakespanSec float64 `json:"makespan_sec"`
	// Backfilled counts jobs started out of queue order.
	Backfilled int `json:"backfilled"`
	// Failed counts jobs that never ran (starvation or errors) — must be
	// zero in both modes.
	Failed int `json:"failed"`
	// StartsSec holds each job's start offset from first submit in
	// submission order (-1 for failed jobs) — the per-decision handle the
	// cross-clock equivalence tests compare; omitted from reports.
	StartsSec []float64 `json:"-"`
}

// BackfillResult holds both modes, FIFO first.
type BackfillResult struct {
	Cfg   BackfillConfig
	Modes []BackfillModeResult
}

// backfillJob is one scripted submission of the experiment workload.
type backfillJob struct {
	name       string
	procs, ppn int
	computeSec float64
	walltime   time.Duration
}

// backfillWorkload is the scripted queue content: a 600s hog on half the
// 32-node testbed, a head needing 200 of 256 slots, and short 60s jobs
// that fit the idle half. Walltime estimates are deliberately loose
// (every user overestimates) — the scheduler only needs them ordered
// correctly.
func backfillWorkload(shorts int) []backfillJob {
	jobs := []backfillJob{
		{name: "hog", procs: 128, ppn: 8, computeSec: 600, walltime: 700 * time.Second},
		{name: "head", procs: 200, ppn: 8, computeSec: 120, walltime: 300 * time.Second},
	}
	for i := 0; i < shorts; i++ {
		jobs = append(jobs, backfillJob{
			name: fmt.Sprintf("short-%d", i), procs: 16, ppn: 8,
			computeSec: 90, walltime: 120 * time.Second,
		})
	}
	return jobs
}

// RunBackfill executes the scripted workload under both queue
// disciplines on identically seeded sessions.
func RunBackfill(cfg BackfillConfig) (*BackfillResult, error) {
	if cfg.Shorts == 0 {
		cfg.Shorts = 8
	}
	res := &BackfillResult{Cfg: cfg}
	for _, backfill := range []bool{false, true} {
		mode, err := runBackfillMode(cfg, backfill)
		if err != nil {
			return nil, err
		}
		res.Modes = append(res.Modes, *mode)
	}
	return res, nil
}

func runBackfillMode(cfg BackfillConfig, backfill bool) (*BackfillModeResult, error) {
	cl, err := cluster.BuildUniform(4, 8, 8, 3.0, 8192)
	if err != nil {
		return nil, err
	}
	s, err := NewSession(SessionConfig{
		Seed:    cfg.Seed,
		Cluster: cl,
		Broker:  broker.Config{Seed: cfg.Seed + 7, WaitLoadPerCore: 0.4},
		Driver:  cfg.Driver,
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	s.WarmUp(DefaultWarmUp)

	rp := alloc.NewReservingPolicy(alloc.LoadAware{}, 90*time.Second)
	s.Broker.RegisterPolicy(rp)
	q := jobqueue.New(s.Broker, s.Sched, jobqueue.Config{
		RetryPeriod: 10 * time.Second,
		Backfill:    backfill,
		AgingBound:  cfg.AgingBound,
		Reserve:     rp,
	})
	if err := q.Start(); err != nil {
		return nil, err
	}
	defer q.Stop()

	jobs := backfillWorkload(cfg.Shorts)
	ids := make([]int, 0, len(jobs))
	firstSubmit := s.Now()
	for _, job := range jobs {
		job := job
		id, err := q.Submit(jobqueue.Spec{
			Name:     job.name,
			Request:  broker.Request{Procs: job.procs, PPN: job.ppn, Alpha: 0.5, Beta: 0.5},
			Walltime: job.walltime,
			Priority: 0,
			Start: func(qid int, resp broker.Response, done func(error)) error {
				shape := &mpisim.Shape{
					Name: job.name, Ranks: job.procs, Iterations: 1,
					ComputeSecPerIter: job.computeSec, RefFreqGHz: 3.0,
				}
				_, err := s.World.LaunchJob(shape, mpisim.Placement{NodeOf: resp.Allocation.RankNodes()},
					func(r mpisim.Result) {
						if r.Failed {
							done(fmt.Errorf("harness: %s aborted: %s", job.name, r.FailureReason))
							return
						}
						done(nil)
					})
				return err
			},
		})
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
		if job.name == "hog" {
			// The head must see the hog's load: give NodeStateD time to
			// observe it and the 1-minute mean time to ramp, or the head
			// (and the shorts behind it) launch onto a cluster the monitor
			// still reports idle.
			s.Advance(90 * time.Second)
		} else {
			s.Advance(5 * time.Second)
		}
	}

	deadline := s.Now().Add(2 * time.Hour)
	if err := s.Await(deadline, func() bool {
		return q.Stats().Done+q.Stats().Failed >= len(jobs)
	}); err != nil {
		return nil, fmt.Errorf("harness: backfill experiment (backfill=%v) stalled: %w (%+v)", backfill, err, q.Stats())
	}

	mode := &BackfillModeResult{Mode: "fifo"}
	if backfill {
		mode.Mode = "backfill"
	}
	var waits []float64
	var lastEnd time.Time
	for _, id := range ids {
		j, ok := q.Job(id)
		if !ok {
			return nil, fmt.Errorf("harness: job %d vanished", id)
		}
		if j.State != jobqueue.StateDone {
			mode.Failed++
			mode.StartsSec = append(mode.StartsSec, -1)
			continue
		}
		mode.StartsSec = append(mode.StartsSec, j.Started.Sub(firstSubmit).Seconds())
		w := j.Started.Sub(j.Submitted).Seconds()
		waits = append(waits, w)
		if w > mode.MaxWaitSec {
			mode.MaxWaitSec = w
		}
		if j.Finished.After(lastEnd) {
			lastEnd = j.Finished
		}
		if j.Backfilled {
			mode.Backfilled++
		}
	}
	mode.MeanWaitSec = stats.Mean(waits)
	mode.MakespanSec = lastEnd.Sub(firstSubmit).Seconds()
	return mode, nil
}

// FormatBackfill renders the experiment table.
func FormatBackfill(r *BackfillResult) string {
	t := Table{
		Title: fmt.Sprintf("Queue discipline — 600s hog on half the cluster, wide head, %d short jobs behind it",
			r.Cfg.Shorts),
		Header: []string{"mode", "mean wait (s)", "max wait (s)", "makespan (s)", "backfilled", "failed"},
	}
	for _, m := range r.Modes {
		t.AddRow(m.Mode, Sec(m.MeanWaitSec), Sec(m.MaxWaitSec), Sec(m.MakespanSec),
			fmt.Sprintf("%d", m.Backfilled), fmt.Sprintf("%d", m.Failed))
	}
	return t.String()
}
