package harness

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// chaosSeeds mirrors the monitor package's seed policy: a fixed local set
// plus CI's matrix seed from NLARM_CHAOS_SEED.
func chaosSeeds() []uint64 {
	seeds := []uint64{1, 7}
	if v := os.Getenv("NLARM_CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			seeds = append(seeds, n)
		}
	}
	return seeds
}

func TestChaosScenarioInvariants(t *testing.T) {
	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rep, err := RunChaos(ChaosConfig{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("invariant violations:\n%s\n\nfull report:\n%s",
					rep.Violations(), rep.Render())
			}
			if n := rep.InjectedFaults(); n < 20 {
				t.Fatalf("only %d injected faults, want >= 20", n)
			}
			if rep.WorkerCrashes == 0 || rep.MasterKills == 0 || rep.SlaveKills == 0 {
				t.Fatalf("schedule skipped a kill family: crashes=%d masterKills=%d slaveKills=%d",
					rep.WorkerCrashes, rep.MasterKills, rep.SlaveKills)
			}
			if rep.DegradedServes == 0 {
				t.Fatal("no allocation was ever served from the last-good snapshot; partitions did not bite")
			}
			if rep.StoreFaults == 0 {
				t.Fatal("fault store injected nothing")
			}
			if rep.JobsDone != rep.JobsSubmitted || rep.JobsSubmitted == 0 {
				t.Fatalf("jobs: %d/%d done", rep.JobsDone, rep.JobsSubmitted)
			}
		})
	}
}

func TestChaosScenarioDeterministic(t *testing.T) {
	run := func(seed uint64) *ChaosReport {
		rep, err := RunChaos(ChaosConfig{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(7), run(7)
	if a.Render() != b.Render() {
		t.Fatalf("same-seed runs diverged:\n--- run1 ---\n%s\n--- run2 ---\n%s", a.Render(), b.Render())
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("digest mismatch: %x vs %x", a.Digest(), b.Digest())
	}
	if c := run(8); c.Render() == a.Render() {
		t.Fatal("different seeds produced identical runs")
	}
}
