package harness

import (
	"testing"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/apps"
	"nlarm/internal/cluster"
	"nlarm/internal/monitor"
	"nlarm/internal/rng"
	"nlarm/internal/topology"
)

// multiClusterSession builds a 3-cluster deployment (2 switches × 4 nodes
// each) joined by slow WAN links, with full monitoring.
func multiClusterSession(t *testing.T, seed uint64) (*Session, func(int) int) {
	t.Helper()
	mc := topology.MultiClusterConfig{
		Clusters:           3,
		SwitchesPerCluster: 2,
		NodesPerSwitch:     4,
	}
	cl, clusterOf, err := cluster.BuildMultiCluster(mc, 8, 3.0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(SessionConfig{
		Seed:    seed,
		Cluster: cl,
		Monitor: monitor.Config{
			NodeStatePeriod: 2 * time.Second,
			LatencyPeriod:   10 * time.Second,
			BandwidthPeriod: 20 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	s.WarmUp(time.Minute)
	return s, clusterOf
}

func TestMultiClusterMonitorSeesWANStructure(t *testing.T) {
	s, _ := multiClusterSession(t, 51)
	snap, err := monitor.ReadSnapshot(s.Store, s.Now())
	if err != nil {
		t.Fatal(err)
	}
	// Intra-cluster pair vs cross-cluster pair: the monitor must see the
	// WAN in both latency and bandwidth.
	intraLat, ok1 := snap.LatencyOf(0, 4)
	crossLat, ok2 := snap.LatencyOf(0, 16)
	if !ok1 || !ok2 {
		t.Fatal("pairs unmeasured")
	}
	if crossLat < 10*intraLat {
		t.Fatalf("WAN latency not visible: intra %v cross %v", intraLat, crossLat)
	}
	intraBW, _, _ := snap.BandwidthOf(0, 4)
	crossBW, _, _ := snap.BandwidthOf(0, 16)
	if crossBW >= intraBW {
		t.Fatalf("WAN bandwidth not visible: intra %g cross %g", intraBW, crossBW)
	}
}

func TestGroupedPolicyStaysInsideOneCluster(t *testing.T) {
	s, clusterOf := multiClusterSession(t, 52)
	snap, err := monitor.ReadSnapshot(s.Store, s.Now())
	if err != nil {
		t.Fatal(err)
	}
	pol := alloc.GroupedNetLoadAware{GroupOf: clusterOf}
	// 32 procs at ppn 4 = 8 nodes = exactly one cluster.
	a, err := pol.Allocate(snap, alloc.Request{Procs: 32, PPN: 4, Alpha: 0.3, Beta: 0.7}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	clusters := map[int]bool{}
	for _, n := range a.Nodes {
		clusters[clusterOf(n)] = true
	}
	if len(clusters) != 1 {
		t.Fatalf("grouped allocation crossed clusters: %v", a.Nodes)
	}
}

func TestExactNLAAlsoAvoidsWAN(t *testing.T) {
	s, clusterOf := multiClusterSession(t, 53)
	snap, err := monitor.ReadSnapshot(s.Store, s.Now())
	if err != nil {
		t.Fatal(err)
	}
	a, err := alloc.NetLoadAware{}.Allocate(snap, alloc.Request{Procs: 16, PPN: 4, Alpha: 0.3, Beta: 0.7}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	clusters := map[int]bool{}
	for _, n := range a.Nodes {
		clusters[clusterOf(n)] = true
	}
	if len(clusters) != 1 {
		t.Fatalf("exact NLA crossed the WAN: %v", a.Nodes)
	}
}

func TestCrossClusterJobPaysWANPenalty(t *testing.T) {
	s, _ := multiClusterSession(t, 54)
	shape := func() *apps.MiniMDParams { return &apps.MiniMDParams{S: 8, Steps: 30} }

	run := func(nodes []int) float64 {
		sh, err := apps.MiniMD(*shape(), 8)
		if err != nil {
			t.Fatal(err)
		}
		a := alloc.Allocation{Nodes: nodes, Procs: map[int]int{}}
		for _, n := range nodes {
			a.Procs[n] = 4
		}
		res, err := s.RunJob(sh, a)
		if err != nil {
			t.Fatal(err)
		}
		s.Advance(30 * time.Second)
		return res.Elapsed.Seconds()
	}
	within := run([]int{0, 1})  // same switch, cluster 0
	across := run([]int{0, 16}) // cluster 0 and cluster 2 (two WAN links)
	if across < within*3 {
		t.Fatalf("WAN penalty too small: within %gs across %gs", within, across)
	}
}
