package harness

import (
	"crypto/sha256"
	"fmt"
	"strings"
	"time"

	"nlarm/internal/broker"
	"nlarm/internal/mpisim"
	"nlarm/internal/rng"
	"nlarm/internal/tune"
)

// TuningConfig parameterizes the counterfactual-regret trace and the
// α/β/weight tuning study. Zero fields take defaults.
type TuningConfig struct {
	// Seed drives the regret session, the tuner's train/holdout seeds,
	// and its evolutionary search.
	Seed uint64
	// RegretDecisions is how many live broker allocations the regret
	// trace replays (default 24); CounterfactualK how many rejected
	// candidates each decision retains (default 4).
	RegretDecisions int
	CounterfactualK int
	// Nodes/Jobs/Util/TrainSeeds/HoldoutSeeds/Population/Generations/
	// Workers pass through to the tuner (zeros take tune's defaults).
	Nodes        int
	Jobs         int
	Util         float64
	TrainSeeds   int
	HoldoutSeeds int
	Population   int
	Generations  int
	Workers      int
}

func (c TuningConfig) withDefaults() TuningConfig {
	if c.RegretDecisions <= 0 {
		c.RegretDecisions = 24
	}
	if c.CounterfactualK <= 0 {
		c.CounterfactualK = 4
	}
	return c
}

// TuningData is RunTuning's result: the regret report over a live broker
// trace plus the tuning study's recommendation.
type TuningData struct {
	Config TuningConfig      `json:"config"`
	Regret tune.RegretReport `json:"regret"`
	Result *tune.Result      `json:"result"`
}

// regretJobShape is one small halo-exchange job in the regret trace.
func regretJobShape(i, ranks int) *mpisim.Shape {
	s := &mpisim.Shape{
		Name:              fmt.Sprintf("regret-job-%d", i),
		Ranks:             ranks,
		Iterations:        30,
		ComputeSecPerIter: 0.01,
		RefFreqGHz:        3.0,
	}
	mpisim.Halo2D(s, 64*1024, 1)
	return s
}

// RunTuning runs the two halves of the study. First a live session on the
// paper testbed with counterfactual retention enabled: every allocation
// keeps its top-k rejected candidates, the granted job actually runs, and
// its realized node-seconds weight the decision's regret. Then the tuner
// searches α/β/attribute-weight space over sim.RunMany sweeps and
// validates its recommendation on held-out seeds.
func RunTuning(cfg TuningConfig) (*TuningData, error) {
	cfg = cfg.withDefaults()
	s, err := NewSession(SessionConfig{
		Seed:   cfg.Seed,
		Broker: broker.Config{CounterfactualK: cfg.CounterfactualK},
	})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	s.WarmUp(DefaultWarmUp)

	r := rng.New(cfg.Seed ^ 0x7e62e7)
	weights := make([]float64, 0, cfg.RegretDecisions)
	for i := 0; i < cfg.RegretDecisions; i++ {
		procs := 4 + 2*r.Intn(5) // 4..12 ranks
		resp, err := s.Broker.Allocate(broker.Request{Procs: procs, PPN: 2, Force: true})
		if err != nil {
			// The failed attempt still occupies a slot in the decision ring;
			// keep the weights aligned with it.
			weights = append(weights, 1)
			continue
		}
		res, err := s.RunJob(regretJobShape(i, procs), resp.Allocation)
		w := 1.0
		if err == nil {
			w = res.Elapsed.Seconds() * float64(len(resp.Nodes))
		}
		weights = append(weights, w)
		s.Advance(time.Minute)
	}
	rep := tune.Regret(s.Broker.Decisions(0), weights)

	res, err := tune.Run(tune.TunerConfig{
		Seed: cfg.Seed, Nodes: cfg.Nodes, Jobs: cfg.Jobs, Util: cfg.Util,
		TrainSeeds: cfg.TrainSeeds, HoldoutSeeds: cfg.HoldoutSeeds,
		Population: cfg.Population, Generations: cfg.Generations,
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &TuningData{Config: cfg, Regret: rep, Result: res}, nil
}

// FormatTuning renders the study. The output carries no wall times or
// other nondeterminism and ends with a digest of its own body, so two
// processes running the same seed must print byte-identical reports —
// CI compares them.
func FormatTuning(d *TuningData) string {
	var b strings.Builder
	rep, res := d.Regret, d.Result
	fmt.Fprintf(&b, "Counterfactual regret trace: %d decisions, k=%d\n",
		rep.Decisions, d.Config.CounterfactualK)
	fmt.Fprintf(&b, "  evaluated %d, positive regret on %d (%.1f%%)\n",
		rep.Evaluated, rep.Positive, 100*rep.PositiveShare)
	fmt.Fprintf(&b, "  regret total %.6g  mean %.6g  max %.6g  outcome-weighted %.6g\n",
		rep.TotalRegret, rep.MeanRegret, rep.MaxRegret, rep.WeightedRegret)

	fmt.Fprintf(&b, "\nTuning study: %d sim runs, %d train + %d holdout seeds, objective %+v\n",
		res.Runs, res.Config.TrainSeeds, res.Config.HoldoutSeeds, res.Config.Objective.WithDefaults())
	fmt.Fprintf(&b, "%-10s %7s %7s %7s %9s\n", "source", "alpha", "w_lt", "tilt", "score")
	row := func(e tune.Evaluation) {
		fmt.Fprintf(&b, "%-10s %7.3f %7.3f %7.3f %9.6f\n",
			e.Source, e.Params.Alpha, e.Params.LatencyShare, e.Params.LoadTilt, e.Score)
	}
	row(res.Baseline)
	for _, e := range res.Grid {
		row(e)
	}
	for _, e := range res.Generations {
		row(e)
	}

	w := res.RecommendedWeights()
	p := res.Best.Params
	fmt.Fprintf(&b, "\nRecommended weights (score %.6f vs baseline %.6f):\n", res.Best.Score, res.Baseline.Score)
	fmt.Fprintf(&b, "  alpha %.3f  beta %.3f\n", p.Alpha, 1-p.Alpha)
	fmt.Fprintf(&b, "  latency %.3f  bandwidth %.3f  cpu_load %.3f  cpu_util %.3f\n",
		w.Latency, w.Bandwidth, w.CPULoad, w.CPUUtil)

	fmt.Fprintf(&b, "\nHoldout (%d/%d seeds improved):\n", res.HoldoutWins, len(res.Holdout))
	for _, h := range res.Holdout {
		verdict := "baseline holds"
		if h.Improved {
			verdict = "improved"
		}
		fmt.Fprintf(&b, "  seed %-6d score %.6f vs %.6f  mean NL %.6g vs %.6g  %s\n",
			h.Seed, h.Score, h.BaselineScore, h.BestNL, h.BaselineNL, verdict)
	}
	sum := sha256.Sum256([]byte(b.String()))
	fmt.Fprintf(&b, "\nreport digest %x\n", sum)
	return b.String()
}
