package harness

import (
	"strings"
	"testing"
)

func TestRunSimSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := SimSweepConfig{Seed: 7, Runs: 3, Nodes: 64, Jobs: 400, Workers: 1}
	one, err := RunSimSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	many, err := RunSimSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if one.Sweep.Digest != many.Sweep.Digest {
		t.Fatalf("sweep digest depends on worker count: %s vs %s", one.Sweep.Digest, many.Sweep.Digest)
	}
	if len(one.Sweep.Results) != 3 {
		t.Fatalf("want 3 results, got %d", len(one.Sweep.Results))
	}
	out := FormatSimSweep(one)
	if !strings.Contains(out, "capacity fidelity") || !strings.Contains(out, "3 runs") {
		t.Fatalf("unexpected format output:\n%s", out)
	}
}

func TestRunSimSweepPolicy(t *testing.T) {
	d, err := RunSimSweep(SimSweepConfig{Seed: 11, Runs: 2, Nodes: 64, Jobs: 300, Policy: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range d.Sweep.Results {
		if res.Policy == nil {
			t.Fatalf("run %d missing policy stats", i)
		}
		if res.Policy.ModelBuilds != 1 {
			t.Fatalf("run %d: %d model builds, want 1", i, res.Policy.ModelBuilds)
		}
		if res.Policy.Decisions == 0 {
			t.Fatalf("run %d: no placement decisions", i)
		}
	}
	out := FormatSimSweep(d)
	if !strings.Contains(out, "policy fidelity") || !strings.Contains(out, "1 build/run") {
		t.Fatalf("unexpected format output:\n%s", out)
	}
}
