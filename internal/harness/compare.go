package harness

import (
	"fmt"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/monitor"
	"nlarm/internal/mpisim"
	"nlarm/internal/rng"
	"nlarm/internal/stats"
)

// PaperPolicies returns the four policies of the evaluation section in
// the paper's presentation order.
func PaperPolicies() []alloc.Policy {
	return []alloc.Policy{
		alloc.Random{},
		alloc.Sequential{},
		alloc.LoadAware{},
		alloc.NetLoadAware{},
	}
}

// NLAName is the heuristic's policy name, used when computing gains.
var NLAName = alloc.NetLoadAware{}.Name()

// Trial is one job execution under one policy.
type Trial struct {
	Round      int
	Policy     string
	Allocation alloc.Allocation
	// Group is the allocated group's state at allocation time (Table 4).
	Group GroupState
	// Run holds ground-truth measurements taken during execution (Fig 5).
	Run    RunStats
	Result mpisim.Result
}

// ElapsedSec is the trial's execution time in seconds.
func (t Trial) ElapsedSec() float64 { return t.Result.Elapsed.Seconds() }

// CompareConfig drives the paper's protocol: "We ran all four approaches
// in sequence for fair evaluation, and repeated this for 5 times to
// account for network variability."
type CompareConfig struct {
	// MakeShape builds a fresh shape per run.
	MakeShape func() (*mpisim.Shape, error)
	// Request is the allocation request used by all policies.
	Request alloc.Request
	// Policies to compare; nil means PaperPolicies.
	Policies []alloc.Policy
	// Repeats is the number of rounds; 0 means 5.
	Repeats int
	// Spacing is virtual idle time between consecutive runs; 0 means 30s.
	Spacing time.Duration
	// Seed drives policy randomness; derived from the session seed when 0.
	Seed uint64
}

// Compare executes the protocol on the session and returns all trials.
func (s *Session) Compare(cfg CompareConfig) ([]Trial, error) {
	if cfg.MakeShape == nil {
		return nil, fmt.Errorf("harness: Compare needs MakeShape")
	}
	policies := cfg.Policies
	if policies == nil {
		policies = PaperPolicies()
	}
	repeats := cfg.Repeats
	if repeats == 0 {
		repeats = 5
	}
	spacing := cfg.Spacing
	if spacing == 0 {
		spacing = 30 * time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0xC0FFEE
	}
	r := rng.New(seed)

	var trials []Trial
	for round := 0; round < repeats; round++ {
		for _, pol := range policies {
			snap, err := monitor.ReadSnapshot(s.Store, s.Now())
			if err != nil {
				return nil, fmt.Errorf("harness: round %d policy %s: %w", round, pol.Name(), err)
			}
			a, err := pol.Allocate(snap, cfg.Request, r.Split())
			if err != nil {
				return nil, fmt.Errorf("harness: round %d policy %s: %w", round, pol.Name(), err)
			}
			group := GroupStateOf(snap, a.Nodes)
			shape, err := cfg.MakeShape()
			if err != nil {
				return nil, err
			}
			res, runStats, err := s.RunJobSampled(shape, a)
			if err != nil {
				return nil, fmt.Errorf("harness: round %d policy %s: %w", round, pol.Name(), err)
			}
			trials = append(trials, Trial{
				Round:      round,
				Policy:     pol.Name(),
				Allocation: a,
				Group:      group,
				Run:        runStats,
				Result:     res,
			})
			s.Advance(spacing)
		}
	}
	return trials, nil
}

// ByPolicy groups trial execution times (seconds) by policy name.
func ByPolicy(trials []Trial) map[string][]float64 {
	out := make(map[string][]float64)
	for _, t := range trials {
		out[t.Policy] = append(out[t.Policy], t.ElapsedSec())
	}
	return out
}

// MeanElapsed returns each policy's mean execution time in seconds.
func MeanElapsed(trials []Trial) map[string]float64 {
	out := make(map[string]float64)
	for pol, times := range ByPolicy(trials) {
		out[pol] = stats.Mean(times)
	}
	return out
}

// CoVByPolicy returns each policy's coefficient of variation of execution
// time (the paper's run-stability metric, §5.1/§5.2).
func CoVByPolicy(trials []Trial) map[string]float64 {
	out := make(map[string]float64)
	for pol, times := range ByPolicy(trials) {
		out[pol] = stats.Summarize(times).CoV
	}
	return out
}

// MeanGroupLoadPerCore returns each policy's mean allocated-group CPU
// load per logical core measured *during* the runs (Figure 5's quantity;
// it includes the job's own busy-waiting ranks, which is why the paper's
// values are far above the allocation-time loads of Table 4).
func MeanGroupLoadPerCore(trials []Trial) map[string]float64 {
	sums := make(map[string]float64)
	counts := make(map[string]int)
	for _, t := range trials {
		sums[t.Policy] += t.Run.MeanLoadPerCore
		counts[t.Policy]++
	}
	out := make(map[string]float64, len(sums))
	for pol, sum := range sums {
		out[pol] = sum / float64(counts[pol])
	}
	return out
}

// GainsVsBaselines computes, per configuration, the relative improvement
// of the net-load-aware policy over each baseline, from per-configuration
// mean execution times. configMeans maps an arbitrary configuration key
// to MeanElapsed output. The returned map gives, per baseline policy, the
// gain distribution across configurations (percent).
func GainsVsBaselines(configMeans []map[string]float64) map[string][]float64 {
	out := make(map[string][]float64)
	for _, means := range configMeans {
		nla, ok := means[NLAName]
		if !ok {
			continue
		}
		for pol, t := range means {
			if pol == NLAName {
				continue
			}
			out[pol] = append(out[pol], stats.GainPercent(t, nla))
		}
	}
	return out
}
