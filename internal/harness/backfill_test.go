package harness

import (
	"testing"
)

// TestBackfillExperimentImproves is the acceptance check for the
// backfill scheduler: on the scripted contention scenario, EASY backfill
// strictly reduces mean wait and makespan versus FIFO, actually
// backfills jobs, and starves nothing in either mode.
func TestBackfillExperimentImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("full queue experiment")
	}
	res, err := RunBackfill(BackfillConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Modes) != 2 {
		t.Fatalf("modes %+v", res.Modes)
	}
	fifo, bf := res.Modes[0], res.Modes[1]
	if fifo.Mode != "fifo" || bf.Mode != "backfill" {
		t.Fatalf("mode order %q %q", fifo.Mode, bf.Mode)
	}
	if fifo.Failed != 0 || bf.Failed != 0 {
		t.Fatalf("starved jobs: fifo %d backfill %d", fifo.Failed, bf.Failed)
	}
	if fifo.Backfilled != 0 {
		t.Fatalf("FIFO mode backfilled %d jobs", fifo.Backfilled)
	}
	if bf.Backfilled == 0 {
		t.Fatal("backfill mode never backfilled")
	}
	if bf.MeanWaitSec >= fifo.MeanWaitSec {
		t.Fatalf("mean wait not improved: backfill %.1fs vs fifo %.1fs", bf.MeanWaitSec, fifo.MeanWaitSec)
	}
	if bf.MakespanSec >= fifo.MakespanSec {
		t.Fatalf("makespan not improved: backfill %.1fs vs fifo %.1fs", bf.MakespanSec, fifo.MakespanSec)
	}
	t.Logf("\n%s", FormatBackfill(res))
}

// TestBackfillExperimentDeterministic re-runs the backfill mode and
// demands identical numbers — the whole stack is seeded.
func TestBackfillExperimentDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full queue experiment")
	}
	a, err := runBackfillMode(BackfillConfig{Seed: 5, Shorts: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runBackfillMode(BackfillConfig{Seed: 5, Shorts: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("experiment not deterministic:\n%+v\n%+v", *a, *b)
	}
}
