package harness

import (
	"reflect"
	"testing"
)

// TestBackfillExperimentImproves is the acceptance check for the
// backfill scheduler: on the scripted contention scenario, EASY backfill
// strictly reduces mean wait and makespan versus FIFO, actually
// backfills jobs, and starves nothing in either mode.
func TestBackfillExperimentImproves(t *testing.T) {
	if testing.Short() {
		t.Skip("full queue experiment")
	}
	res, err := RunBackfill(BackfillConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Modes) != 2 {
		t.Fatalf("modes %+v", res.Modes)
	}
	fifo, bf := res.Modes[0], res.Modes[1]
	if fifo.Mode != "fifo" || bf.Mode != "backfill" {
		t.Fatalf("mode order %q %q", fifo.Mode, bf.Mode)
	}
	if fifo.Failed != 0 || bf.Failed != 0 {
		t.Fatalf("starved jobs: fifo %d backfill %d", fifo.Failed, bf.Failed)
	}
	if fifo.Backfilled != 0 {
		t.Fatalf("FIFO mode backfilled %d jobs", fifo.Backfilled)
	}
	if bf.Backfilled == 0 {
		t.Fatal("backfill mode never backfilled")
	}
	if bf.MeanWaitSec >= fifo.MeanWaitSec {
		t.Fatalf("mean wait not improved: backfill %.1fs vs fifo %.1fs", bf.MeanWaitSec, fifo.MeanWaitSec)
	}
	if bf.MakespanSec >= fifo.MakespanSec {
		t.Fatalf("makespan not improved: backfill %.1fs vs fifo %.1fs", bf.MakespanSec, fifo.MakespanSec)
	}
	t.Logf("\n%s", FormatBackfill(res))
}

// TestBackfillExperimentDeterministic re-runs the backfill mode and
// demands identical numbers — the whole stack is seeded.
func TestBackfillExperimentDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full queue experiment")
	}
	a, err := runBackfillMode(BackfillConfig{Seed: 5, Shorts: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runBackfillMode(BackfillConfig{Seed: 5, Shorts: 4}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*a, *b) {
		t.Fatalf("experiment not deterministic:\n%+v\n%+v", *a, *b)
	}
}

// TestBackfillCrossClockEquivalence runs the 200-job contention
// scenario (hog + head + 198 shorts) under the stepped window driver
// and the event driver and demands identical per-job start times in
// both queue disciplines: every state change in the stack is a
// scheduler event, so polling granularity must not move a single
// launch.
func TestBackfillCrossClockEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full queue experiment")
	}
	run := func(d Driver) *BackfillResult {
		res, err := RunBackfill(BackfillConfig{Seed: 11, Shorts: 198, Driver: d})
		if err != nil {
			t.Fatalf("%s driver: %v", d.Name(), err)
		}
		return res
	}
	stepped := run(SteppedDriver{})
	event := run(EventDriver{})
	for mi := range stepped.Modes {
		sm, em := stepped.Modes[mi], event.Modes[mi]
		if len(sm.StartsSec) != 200 {
			t.Fatalf("%s mode recorded %d starts, want 200", sm.Mode, len(sm.StartsSec))
		}
		for i := range sm.StartsSec {
			if sm.StartsSec[i] != em.StartsSec[i] {
				t.Fatalf("%s mode job %d: stepped start %.3fs, event start %.3fs",
					sm.Mode, i, sm.StartsSec[i], em.StartsSec[i])
			}
		}
		if sm.MeanWaitSec != em.MeanWaitSec || sm.MaxWaitSec != em.MaxWaitSec ||
			sm.MakespanSec != em.MakespanSec || sm.Backfilled != em.Backfilled || sm.Failed != em.Failed {
			t.Fatalf("%s mode aggregates differ across drivers:\nstepped %+v\nevent   %+v", sm.Mode, sm, em)
		}
	}
}

// TestBackfillEventClockReproducesPaperNumbers pins the default
// experiment's documented mean waits (DESIGN.md section 11: 1350s FIFO,
// 171s backfill) under the event driver: the discrete-event clock must
// reproduce the stepped harness's results exactly, not approximately.
func TestBackfillEventClockReproducesPaperNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("full queue experiment")
	}
	res, err := RunBackfill(BackfillConfig{Seed: 3, Driver: EventDriver{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Modes[0].MeanWaitSec != 1350.0 {
		t.Errorf("fifo mean wait %.2fs under event clock, want 1350.00s", res.Modes[0].MeanWaitSec)
	}
	if res.Modes[1].MeanWaitSec != 171.0 {
		t.Errorf("backfill mean wait %.2fs under event clock, want 171.00s", res.Modes[1].MeanWaitSec)
	}
	if res.Modes[0].Failed+res.Modes[1].Failed != 0 {
		t.Errorf("event clock starved jobs: %+v", res.Modes)
	}
}
