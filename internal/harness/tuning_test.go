package harness

import (
	"strings"
	"testing"
)

func tinyTuningConfig(seed uint64) TuningConfig {
	return TuningConfig{
		Seed:            seed,
		RegretDecisions: 6,
		CounterfactualK: 3,
		Nodes:           32,
		Jobs:            250,
		TrainSeeds:      2,
		HoldoutSeeds:    2,
		Population:      3,
		Generations:     1,
	}
}

// TestRunTuningReport pins the tuning artifact's substance: the live
// regret trace evaluates real decisions with retained counterfactuals,
// the study recommends weights no worse than the paper baseline, and the
// recommendation carries to at least one held-out seed.
func TestRunTuningReport(t *testing.T) {
	d, err := RunTuning(tinyTuningConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	if d.Regret.Decisions != 6 {
		t.Fatalf("regret trace has %d decisions, want 6", d.Regret.Decisions)
	}
	if d.Regret.Evaluated == 0 {
		t.Fatal("no decision retained counterfactual candidates")
	}
	if d.Result.Best.Score > d.Result.Baseline.Score {
		t.Fatalf("recommendation %g worse than baseline %g",
			d.Result.Best.Score, d.Result.Baseline.Score)
	}
	if d.Result.HoldoutWins < 1 {
		t.Fatalf("recommended weights beat the baseline on 0/%d held-out seeds",
			len(d.Result.Holdout))
	}
	out := FormatTuning(d)
	for _, want := range []string{"Counterfactual regret trace", "Recommended weights", "Holdout", "report digest "} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestRunTuningDeterministic is the in-process half of the CI
// determinism gate: same config, byte-identical report.
func TestRunTuningDeterministic(t *testing.T) {
	a, err := RunTuning(tinyTuningConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTuning(tinyTuningConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if ra, rb := FormatTuning(a), FormatTuning(b); ra != rb {
		t.Fatalf("tuning report diverged across runs:\n--- a ---\n%s\n--- b ---\n%s", ra, rb)
	}
	if a.Result.Digest() != b.Result.Digest() {
		t.Fatal("tuner result digest diverged across runs")
	}
}
