package harness

import (
	"fmt"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/apps"
	"nlarm/internal/monitor"
	"nlarm/internal/mpisim"
	"nlarm/internal/rng"
)

// ProfileReport is the outcome of a profiling run: the measured
// computation/communication split and the α/β weights derived from it
// (§5: "One may set these weights by profiling an application and decide
// the relative weights on the basis of the computation and communication
// times"; §6 lists better profiling tools as future work).
type ProfileReport struct {
	// Shape is the (shortened) shape that was profiled.
	Shape string
	// Result is the profiling run itself.
	Result mpisim.Result
	// CommFraction is the measured fraction of time in communication.
	CommFraction float64
	// Alpha and Beta are the suggested Equation-4 weights.
	Alpha, Beta float64
}

// profileIterFraction shortens the profiled app to a fraction of its full
// iteration count — profiling must be cheap relative to the real run.
const profileIterFraction = 0.2

// ProfileShape runs a shortened copy of shape on a neutral (α=β=0.5)
// allocation and derives α/β from the measured communication fraction.
// The profiling run itself executes on the live session and therefore
// reflects current cluster conditions, like the authors' profiling runs.
func (s *Session) ProfileShape(shape *mpisim.Shape, ppn int, r *rng.Rand) (*ProfileReport, error) {
	if err := shape.Validate(); err != nil {
		return nil, err
	}
	short := *shape
	short.Name = shape.Name + "(profile)"
	short.Iterations = int(float64(shape.Iterations) * profileIterFraction)
	if short.Iterations < 5 {
		short.Iterations = 5
	}
	snap, err := monitor.ReadSnapshot(s.Store, s.Now())
	if err != nil {
		return nil, fmt.Errorf("harness: profile: %w", err)
	}
	a, err := alloc.NetLoadAware{}.Allocate(snap, alloc.Request{
		Procs: shape.Ranks, PPN: ppn, Alpha: 0.5, Beta: 0.5,
	}, r)
	if err != nil {
		return nil, fmt.Errorf("harness: profile: %w", err)
	}
	res, err := s.RunJob(&short, a)
	if err != nil {
		return nil, fmt.Errorf("harness: profile: %w", err)
	}
	frac := res.CommFraction()
	alpha, beta := apps.SuggestAlphaBeta(frac)
	return &ProfileReport{
		Shape:        shape.Name,
		Result:       res,
		CommFraction: frac,
		Alpha:        alpha,
		Beta:         beta,
	}, nil
}

// ProfileMiniMD profiles a miniMD configuration and suggests α/β.
func (s *Session) ProfileMiniMD(p apps.MiniMDParams, ranks, ppn int, r *rng.Rand) (*ProfileReport, error) {
	shape, err := apps.MiniMD(p, ranks)
	if err != nil {
		return nil, err
	}
	return s.ProfileShape(shape, ppn, r)
}

// ProfileMiniFE profiles a miniFE configuration and suggests α/β.
func (s *Session) ProfileMiniFE(p apps.MiniFEParams, ranks, ppn int, r *rng.Rand) (*ProfileReport, error) {
	shape, err := apps.MiniFE(p, ranks)
	if err != nil {
		return nil, err
	}
	return s.ProfileShape(shape, ppn, r)
}

// ProfileAndRun is the end-to-end workflow the paper sketches: profile
// the application once, then allocate with the derived weights and run
// the full job.
func (s *Session) ProfileAndRun(shape *mpisim.Shape, ppn int, r *rng.Rand) (*ProfileReport, mpisim.Result, error) {
	report, err := s.ProfileShape(shape, ppn, r)
	if err != nil {
		return nil, mpisim.Result{}, err
	}
	s.Advance(30 * time.Second)
	snap, err := monitor.ReadSnapshot(s.Store, s.Now())
	if err != nil {
		return nil, mpisim.Result{}, err
	}
	a, err := alloc.NetLoadAware{}.Allocate(snap, alloc.Request{
		Procs: shape.Ranks, PPN: ppn, Alpha: report.Alpha, Beta: report.Beta,
	}, r)
	if err != nil {
		return nil, mpisim.Result{}, err
	}
	res, err := s.RunJob(shape, a)
	if err != nil {
		return nil, mpisim.Result{}, err
	}
	return report, res, nil
}
