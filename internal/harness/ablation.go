package harness

import (
	"fmt"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/apps"
	"nlarm/internal/monitor"
	"nlarm/internal/rng"
	"nlarm/internal/stats"
)

// AblationConfig drives the design-choice ablations DESIGN.md calls out:
// the α/β balance of Equation 4 (β=0 degenerates to load-aware
// allocation, β=1 ignores compute load entirely) and the monitoring
// staleness (how much a slower BandwidthD hurts allocation quality).
type AblationConfig struct {
	Seed uint64
	// Procs/Size/PPN select the miniMD configuration under test.
	Procs, Size, PPN int
	// Iterations overrides miniMD's step count (0 = default 100).
	Iterations int
	// Repeats is the number of runs averaged per point.
	Repeats int
	// Betas are the β values swept (α = 1-β).
	Betas []float64
	// BandwidthPeriods are the BandwidthD sweep intervals tested.
	BandwidthPeriods []time.Duration
}

// DefaultAblationConfig returns the standard ablation: the paper's §5.3
// case study (miniMD, 32 procs, s=16) under five β values and three
// monitor cadences.
func DefaultAblationConfig(seed uint64) AblationConfig {
	return AblationConfig{
		Seed:  seed,
		Procs: 32, Size: 16, PPN: 4,
		Repeats: 3,
		Betas:   []float64{0, 0.25, 0.5, 0.75, 1},
		BandwidthPeriods: []time.Duration{
			1 * time.Minute, 5 * time.Minute, 15 * time.Minute,
		},
	}
}

// BetaPoint is one β value's outcome.
type BetaPoint struct {
	Beta    float64
	MeanSec float64
	CoV     float64
}

// StalenessPoint is one monitoring-cadence outcome.
type StalenessPoint struct {
	BandwidthPeriod time.Duration
	MeanSec         float64
}

// ForecastPoint is one forecast-mode outcome.
type ForecastPoint struct {
	UseForecast bool
	MeanSec     float64
}

// AblationData is the full ablation result.
type AblationData struct {
	Cfg       AblationConfig
	BetaSweep []BetaPoint
	Staleness []StalenessPoint
	Forecast  []ForecastPoint
}

// runNLA allocates with the given α/β and executes one miniMD run.
func runNLA(s *Session, cfg AblationConfig, alpha, beta float64, r *rng.Rand) (float64, error) {
	return runNLAOpt(s, cfg, alpha, beta, false, r)
}

func runNLAOpt(s *Session, cfg AblationConfig, alpha, beta float64, useForecast bool, r *rng.Rand) (float64, error) {
	snap, err := monitor.ReadSnapshot(s.Store, s.Now())
	if err != nil {
		return 0, err
	}
	a, err := alloc.NetLoadAware{}.Allocate(snap, alloc.Request{
		Procs: cfg.Procs, PPN: cfg.PPN, Alpha: alpha, Beta: beta, UseForecast: useForecast,
	}, r)
	if err != nil {
		return 0, err
	}
	shape, err := apps.MiniMD(apps.MiniMDParams{S: cfg.Size, Steps: cfg.Iterations}, cfg.Procs)
	if err != nil {
		return 0, err
	}
	res, err := s.RunJob(shape, a)
	if err != nil {
		return 0, err
	}
	s.Advance(time.Minute)
	return res.Elapsed.Seconds(), nil
}

// RunAblation executes both ablations and returns the data.
func RunAblation(cfg AblationConfig) (*AblationData, error) {
	if cfg.PPN == 0 {
		cfg.PPN = 4
	}
	if cfg.Repeats == 0 {
		cfg.Repeats = 3
	}
	data := &AblationData{Cfg: cfg}

	// β sweep on one long-lived session.
	s, err := NewSession(SessionConfig{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	s.WarmUp(DefaultWarmUp)
	r := rng.New(cfg.Seed + 31)
	for _, beta := range cfg.Betas {
		var times []float64
		for rep := 0; rep < cfg.Repeats; rep++ {
			sec, err := runNLA(s, cfg, 1-beta, beta, r.Split())
			if err != nil {
				return nil, fmt.Errorf("harness: ablation β=%g: %w", beta, err)
			}
			times = append(times, sec)
		}
		sum := stats.Summarize(times)
		data.BetaSweep = append(data.BetaSweep, BetaPoint{Beta: beta, MeanSec: sum.Mean, CoV: sum.CoV})
	}

	// Staleness sweep: a fresh session per monitoring cadence so the
	// environment is identical except for BandwidthD's period.
	alpha, beta := apps.PaperAlphaBetaMiniMD()
	for _, period := range cfg.BandwidthPeriods {
		ss, err := NewSession(SessionConfig{
			Seed:    cfg.Seed,
			Monitor: monitor.Config{BandwidthPeriod: period},
		})
		if err != nil {
			return nil, err
		}
		warm := DefaultWarmUp
		if period*2 > warm {
			warm = period*2 + 2*time.Minute
		}
		ss.WarmUp(warm)
		rr := rng.New(cfg.Seed + 67)
		var times []float64
		for rep := 0; rep < cfg.Repeats; rep++ {
			sec, err := runNLA(ss, cfg, alpha, beta, rr.Split())
			if err != nil {
				ss.Close()
				return nil, fmt.Errorf("harness: ablation period=%v: %w", period, err)
			}
			times = append(times, sec)
		}
		ss.Close()
		data.Staleness = append(data.Staleness, StalenessPoint{
			BandwidthPeriod: period,
			MeanSec:         stats.Mean(times),
		})
	}

	// Forecast ablation: instantaneous attributes vs NWS-style forecasts
	// (internal/forecast), same session and request sequence.
	for _, useForecast := range []bool{false, true} {
		fs, err := NewSession(SessionConfig{Seed: cfg.Seed + 101})
		if err != nil {
			return nil, err
		}
		fs.WarmUp(DefaultWarmUp)
		fr := rng.New(cfg.Seed + 103)
		var times []float64
		for rep := 0; rep < cfg.Repeats; rep++ {
			sec, err := runNLAOpt(fs, cfg, alpha, beta, useForecast, fr.Split())
			if err != nil {
				fs.Close()
				return nil, fmt.Errorf("harness: ablation forecast=%v: %w", useForecast, err)
			}
			times = append(times, sec)
		}
		fs.Close()
		data.Forecast = append(data.Forecast, ForecastPoint{
			UseForecast: useForecast,
			MeanSec:     stats.Mean(times),
		})
	}
	return data, nil
}

// FormatAblation renders the ablation tables.
func FormatAblation(d *AblationData) string {
	t1 := Table{
		Title:  fmt.Sprintf("Ablation — β sweep (miniMD, %d procs, s=%d; β=0 is the pure load-aware limit)", d.Cfg.Procs, d.Cfg.Size),
		Header: []string{"beta", "mean time (s)", "CoV"},
	}
	for _, p := range d.BetaSweep {
		t1.AddRow(fmt.Sprintf("%.2f", p.Beta), Sec(p.MeanSec), F3(p.CoV))
	}
	t2 := Table{
		Title:  "Ablation — monitoring staleness (BandwidthD sweep period)",
		Header: []string{"period", "mean time (s)"},
	}
	for _, p := range d.Staleness {
		t2.AddRow(p.BandwidthPeriod.String(), Sec(p.MeanSec))
	}
	t3 := Table{
		Title:  "Ablation — NWS-style forecasting of node attributes",
		Header: []string{"forecast", "mean time (s)"},
	}
	for _, p := range d.Forecast {
		label := "off (windowed means)"
		if p.UseForecast {
			label = "on (best-method prediction)"
		}
		t3.AddRow(label, Sec(p.MeanSec))
	}
	return t1.String() + "\n" + t2.String() + "\n" + t3.String()
}
