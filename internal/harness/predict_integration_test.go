package harness

import (
	"testing"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/apps"
	"nlarm/internal/monitor"
	"nlarm/internal/mpisim"
	"nlarm/internal/predict"
	"nlarm/internal/rng"
)

// TestPredictionTracksSimulation checks the monitoring-data predictor
// against the simulator: the predicted ordering of a good (NLA) vs a bad
// (random) allocation must match the actually-simulated ordering, and
// predictions must land within an order of magnitude of reality (the
// predictor sees a frozen snapshot; the simulation keeps evolving).
func TestPredictionTracksSimulation(t *testing.T) {
	s := smallSession(t, 61)
	snap, err := monitor.ReadSnapshot(s.Store, s.Now())
	if err != nil {
		t.Fatal(err)
	}
	shape := func() *mpisim.Shape {
		sh, err := apps.MiniMD(apps.MiniMDParams{S: 16, Steps: 50}, 8)
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	req := alloc.Request{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7}
	r := rng.New(3)

	nlaAlloc, err := alloc.NetLoadAware{}.Allocate(snap, req, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	// Use the worst random draw of a few, to get a clearly bad candidate.
	var worst alloc.Allocation
	var worstPred time.Duration
	for i := 0; i < 5; i++ {
		cand, err := alloc.Random{}.Allocate(snap, req, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		res, err := predict.EstimateAllocation(snap, shape(), cand.RankNodes())
		if err != nil {
			t.Fatal(err)
		}
		if res.Elapsed > worstPred {
			worstPred = res.Elapsed
			worst = cand
		}
	}

	nlaPred, err := predict.EstimateAllocation(snap, shape(), nlaAlloc.RankNodes())
	if err != nil {
		t.Fatal(err)
	}
	if nlaPred.Elapsed >= worstPred {
		t.Fatalf("predictor does not separate NLA (%v) from bad random (%v)", nlaPred.Elapsed, worstPred)
	}

	// Now run both for real, NLA first, with a gap between.
	nlaActual, err := s.RunJob(shape(), nlaAlloc)
	if err != nil {
		t.Fatal(err)
	}
	s.Advance(time.Minute)
	randActual, err := s.RunJob(shape(), worst)
	if err != nil {
		t.Fatal(err)
	}
	if nlaActual.Elapsed >= randActual.Elapsed {
		t.Fatalf("simulation disagrees with predictor ordering: NLA %v vs random %v",
			nlaActual.Elapsed, randActual.Elapsed)
	}
	// Magnitude sanity: within 10x either way.
	ratio := nlaActual.Elapsed.Seconds() / nlaPred.Elapsed.Seconds()
	if ratio < 0.1 || ratio > 10 {
		t.Fatalf("NLA prediction off by %gx (predicted %v, actual %v)", ratio, nlaPred.Elapsed, nlaActual.Elapsed)
	}
}
