package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nlarm/internal/broker"
	"nlarm/internal/cluster"
	"nlarm/internal/monitor"
	"nlarm/internal/obs"
	"nlarm/internal/rng"
	"nlarm/internal/simtime"
	"nlarm/internal/store"
	"nlarm/internal/world"
)

// OverloadTenant is one synthetic client population in the overload
// scenario.
type OverloadTenant struct {
	// Name labels the tenant on the wire and in metrics.
	Name string
	// PerRound is how many allocation requests the tenant offers every
	// round.
	PerRound int
}

// OverloadConfig parameterizes the overload chaos scenario: a seeded
// multi-tenant burst generator drives the batched front door far past
// its admission limits while store faults degrade the monitoring data
// underneath it. Zero fields take defaults tuned so admission sheds
// heavily, the meek tenant is never starved, and a mid-run monitoring
// blackout forces degraded serves without ever tripping the degraded
// ceiling.
type OverloadConfig struct {
	// Seed drives the world, the request stream, and the store faults.
	Seed uint64
	// Rounds is the number of offer/flush rounds (default 30).
	Rounds int
	// RoundStep is the virtual time between rounds (default 2s) — it
	// refills token buckets and lets the monitor republish.
	RoundStep time.Duration
	// Tenants is the offered load mix (default: hog at 40/round, meek at
	// 4/round — a 10:1 ratio against a much smaller admitted capacity).
	Tenants []OverloadTenant
	// MaxBatch caps one flush (default 16, so backlogs persist across
	// rounds and fairness is actually contested).
	MaxBatch int
	// Admission is the front-door config (default: rate 8/s, burst 8,
	// queue depth 32 per tenant).
	Admission broker.AdmissionConfig
	// BlackoutRounds is how many mid-run rounds reject every monitoring
	// write so snapshots age past SnapshotMaxAge and the broker must
	// serve degraded from last-good (default 8).
	BlackoutRounds int
	// SnapshotMaxAge is the broker staleness threshold (default 10s, well
	// under the default blackout length so degradation provably engages).
	SnapshotMaxAge time.Duration
	// MaxDegradedFraction is the ceiling on degraded serves as a fraction
	// of all served requests (default 0.5: degradation is expected during
	// the blackout, but fresh serves must dominate the run).
	MaxDegradedFraction float64
	// Driver selects how the scenario advances virtual time (default
	// SteppedDriver).
	Driver Driver
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if c.Rounds <= 0 {
		c.Rounds = 30
	}
	if c.RoundStep <= 0 {
		c.RoundStep = 2 * time.Second
	}
	if len(c.Tenants) == 0 {
		c.Tenants = []OverloadTenant{{Name: "hog", PerRound: 40}, {Name: "meek", PerRound: 4}}
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.Admission.TenantRate == 0 {
		c.Admission = broker.AdmissionConfig{TenantRate: 8, TenantBurst: 8, QueueDepth: 32}
	}
	if c.BlackoutRounds <= 0 {
		c.BlackoutRounds = 8
	}
	if c.SnapshotMaxAge <= 0 {
		c.SnapshotMaxAge = 10 * time.Second
	}
	if c.MaxDegradedFraction <= 0 {
		c.MaxDegradedFraction = 0.5
	}
	return c
}

// OverloadReport is the outcome of RunOverload: exact request
// accounting, per-tenant service, and every invariant check.
type OverloadReport struct {
	Seed uint64

	// Offered = Admitted + Shed, exactly; Served + Failed = Admitted,
	// exactly — every request is accounted for, none answered twice.
	Offered  int
	Admitted int
	Shed     int
	Served   int
	Failed   int
	// Degraded counts served responses priced from the last-good snapshot
	// (monitoring blackout); RateSheds/QueueSheds split Shed by reason.
	Degraded   int
	RateSheds  int
	QueueSheds int

	ServedByTenant map[string]int
	ShedByTenant   map[string]int

	StoreFaults uint64
	Checks      []ChaosCheck

	// Metrics is the shared registry's final snapshot; the scenario's
	// core invariant is that these counters reconcile exactly with the
	// callback-side accounting above.
	Metrics     *obs.Snapshot
	MetricsText string
}

// Violations returns the names and notes of every failed check.
func (r *OverloadReport) Violations() []string {
	var v []string
	for _, c := range r.Checks {
		if !c.Ok {
			v = append(v, fmt.Sprintf("%v %s: %s", c.At, c.Name, c.Note))
		}
	}
	return v
}

// Ok reports whether every invariant held.
func (r *OverloadReport) Ok() bool { return len(r.Violations()) == 0 }

// Render formats the report deterministically; two same-seed runs must
// produce identical bytes.
func (r *OverloadReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "overload seed=%d checks=%d\n", r.Seed, len(r.Checks))
	fmt.Fprintf(&b, "requests offered=%d admitted=%d shed=%d (rate=%d queue=%d) served=%d failed=%d degraded=%d\n",
		r.Offered, r.Admitted, r.Shed, r.RateSheds, r.QueueSheds, r.Served, r.Failed, r.Degraded)
	var tenants []string
	for t := range r.ServedByTenant {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	for _, t := range tenants {
		fmt.Fprintf(&b, "tenant %s served=%d shed=%d\n", t, r.ServedByTenant[t], r.ShedByTenant[t])
	}
	fmt.Fprintf(&b, "store faults=%d\n", r.StoreFaults)
	for _, c := range r.Checks {
		status := "ok"
		if !c.Ok {
			status = "VIOLATION"
		}
		fmt.Fprintf(&b, "check %v %s %s %s\n", c.At, c.Name, status, c.Note)
	}
	if r.MetricsText != "" {
		b.WriteString("metrics:\n")
		for _, line := range strings.Split(strings.TrimRight(r.MetricsText, "\n"), "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}

// Digest hashes Render with FNV-1a, giving tests a one-number
// reproducibility witness.
func (r *OverloadReport) Digest() uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, c := range []byte(r.Render()) {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// RunOverload drives the batched, admission-controlled front door
// through a seeded overload burst with a mid-run monitoring blackout,
// and verifies the books balance exactly:
//
//   - offered == admitted + shed, and served + failed == admitted —
//     every request gets exactly one answer, enqueue-time or batch-time
//   - the obs admission/batch counters match the callback-side counts
//     (total, per shed reason, and per tenant)
//   - no admitted request fails: degradation falls back to the last-good
//     snapshot instead of erroring
//   - degraded serves stay under MaxDegradedFraction, and every degraded
//     response names a reason
//   - every shed carries a positive retry-after hint
//   - the meek tenant is never starved: its served share is at least
//     half its fair share despite the 10:1 offered-load imbalance
//   - the queue fully drains and the depth gauge ends at zero
func RunOverload(cfg OverloadConfig) (*OverloadReport, error) {
	cfg = cfg.withDefaults()
	report := &OverloadReport{
		Seed:           cfg.Seed,
		ServedByTenant: map[string]int{},
		ShedByTenant:   map[string]int{},
	}

	cl, err := cluster.BuildUniform(2, 4, 8, 3.0, 8192)
	if err != nil {
		return nil, err
	}
	drv := defaultDriver(cfg.Driver)
	sched := simtime.NewScheduler(defaultEpoch)
	w := world.New(cl, world.Config{Seed: cfg.Seed}, defaultEpoch)
	stopWorld := w.Attach(sched)
	defer stopWorld()

	reg := obs.NewRegistry()
	fs := store.NewFault(store.NewMem(), cfg.Seed^0xbf58476d1ce4e5b9)
	fs.SetScope(monitor.KeyLivehostsPrefix, monitor.KeyNodeStatePrefix, "latency/", "bandwidth/")
	vst := store.Version(store.Instrument(fs, reg, sched.Now))

	mcfg := chaosMonitorConfig()
	mcfg.Obs = reg
	mgr := monitor.NewManager(&monitor.WorldProber{W: w}, vst, mcfg)
	if err := mgr.Start(sched); err != nil {
		return nil, err
	}
	defer mgr.Stop()

	b := broker.New(vst, sched, broker.Config{
		Seed:            cfg.Seed + 7,
		WaitLoadPerCore: 100,
		SnapshotMaxAge:  cfg.SnapshotMaxAge,
		Obs:             reg,
	})
	bt := broker.NewBatcher(b, nil, broker.BatcherOptions{
		MaxBatch:  cfg.MaxBatch,
		Admission: cfg.Admission,
	})
	defer bt.Close()

	// Warm up with faults quiet so the broker holds a healthy last-good
	// snapshot before the storm starts.
	drv.Run(sched, 30*time.Second)
	if _, err := b.Allocate(broker.Request{Procs: 4, Force: true}); err != nil {
		return nil, fmt.Errorf("harness: overload warm-up allocation failed: %w", err)
	}
	fs.SetRates(store.Rates{TornWrite: 0.02, StaleRead: 0.05})

	start := sched.Now()
	offset := func() time.Duration { return sched.Now().Sub(start) }
	check := func(name string, ok bool, note string) {
		report.Checks = append(report.Checks, ChaosCheck{At: offset(), Name: name, Ok: ok, Note: note})
	}

	// The blackout sits mid-run: every monitoring Put is rejected outright
	// (PutError, not TornWrite — torn writes persist the value, so data
	// would stay fresh) long enough that node records age past
	// SnapshotMaxAge and the broker must serve degraded.
	blackoutFrom := (cfg.Rounds - cfg.BlackoutRounds) / 2
	blackoutTo := blackoutFrom + cfg.BlackoutRounds

	rnd := rng.New(cfg.Seed * 31)
	shapes := [3]broker.Request{
		{Procs: 4, PPN: 4, Force: true},
		{Procs: 8, PPN: 4, Force: true},
		{Procs: 2, PPN: 2, Force: true},
	}
	badRetry, badReason, degradedUnnamed := 0, 0, 0
	for round := 0; round < cfg.Rounds; round++ {
		if round == blackoutFrom {
			fs.SetRates(store.Rates{PutError: 1})
		}
		if round == blackoutTo {
			fs.SetRates(store.Rates{TornWrite: 0.02, StaleRead: 0.05})
		}
		drv.Run(sched, cfg.RoundStep)
		for _, tn := range cfg.Tenants {
			tenant := tn.Name
			for i := 0; i < tn.PerRound; i++ {
				report.Offered++
				req := shapes[rnd.Uint64()%3]
				err := bt.EnqueueAllocate(tenant, req, func(resp broker.Response, err error) {
					if err != nil {
						report.Failed++
						return
					}
					report.Served++
					report.ServedByTenant[tenant]++
					if resp.Degraded {
						report.Degraded++
						if resp.DegradedReason == "" {
							degradedUnnamed++
						}
					}
				})
				if err == nil {
					report.Admitted++
					continue
				}
				shed, ok := err.(*broker.ShedError)
				if !ok {
					return nil, fmt.Errorf("harness: enqueue failed with non-shed error: %w", err)
				}
				report.Shed++
				report.ShedByTenant[tenant]++
				switch shed.Reason {
				case "rate":
					report.RateSheds++
				case "queue-full":
					report.QueueSheds++
				default:
					badReason++
				}
				if shed.RetryAfter <= 0 {
					badRetry++
				}
			}
		}
		bt.Flush()
	}
	// Drain the backlog: every admitted request must get its answer.
	for bt.QueueDepth() > 0 {
		bt.Flush()
	}

	// Exact request accounting — the front door loses nothing and answers
	// nothing twice.
	check("books-balance", report.Offered == report.Admitted+report.Shed,
		fmt.Sprintf("offered=%d admitted=%d shed=%d", report.Offered, report.Admitted, report.Shed))
	check("callbacks-complete", report.Served+report.Failed == report.Admitted,
		fmt.Sprintf("served=%d failed=%d admitted=%d", report.Served, report.Failed, report.Admitted))
	check("no-hard-failures", report.Failed == 0,
		fmt.Sprintf("failed=%d (degradation must fall back, not error)", report.Failed))
	check("sheds-carry-retry-hint", badRetry == 0, fmt.Sprintf("sheds without hint=%d", badRetry))
	check("shed-reasons-known", badReason == 0 && report.RateSheds+report.QueueSheds == report.Shed,
		fmt.Sprintf("rate=%d queue=%d unknown=%d of %d", report.RateSheds, report.QueueSheds, badReason, report.Shed))
	check("queue-drained", bt.QueueDepth() == 0, fmt.Sprintf("depth=%d", bt.QueueDepth()))

	// Degradation engaged during the blackout, named its reason every
	// time, and never dominated the run.
	check("degradation-engaged", report.Degraded > 0,
		fmt.Sprintf("degraded=%d (blackout rounds %d..%d)", report.Degraded, blackoutFrom, blackoutTo))
	check("degraded-reasons-named", degradedUnnamed == 0, fmt.Sprintf("unnamed=%d", degradedUnnamed))
	frac := 0.0
	if report.Served > 0 {
		frac = float64(report.Degraded) / float64(report.Served)
	}
	check("degraded-under-ceiling", frac <= cfg.MaxDegradedFraction,
		fmt.Sprintf("fraction=%.3f ceiling=%.3f", frac, cfg.MaxDegradedFraction))

	// Fairness under the overload: the meek tenant's service may not fall
	// below half its equal share of total served throughput.
	if len(cfg.Tenants) > 1 {
		fairShare := float64(report.Served) / float64(len(cfg.Tenants))
		for _, tn := range cfg.Tenants {
			got := float64(report.ServedByTenant[tn.Name])
			offered := float64(tn.PerRound * cfg.Rounds)
			want := fairShare / 2
			if offered < want {
				want = offered // can't serve more than was asked
			}
			check("tenant-not-starved-"+tn.Name, got >= want,
				fmt.Sprintf("served=%.0f floor=%.0f fairShare=%.1f", got, want, fairShare))
		}
	}

	// Reconcile the obs counters with the callback-side accounting: both
	// paths count independently, so any drift is a bookkeeping bug.
	report.StoreFaults = fs.TotalFaults()
	store.SyncFaults(fs, reg)
	report.Metrics = reg.Snapshot()
	report.MetricsText = report.Metrics.Render()
	ctr := report.Metrics.Counters
	checkCounter := func(name string, want uint64) {
		got := ctr[name]
		check("obs-"+name, got == want, fmt.Sprintf("counter=%d want=%d", got, want))
	}
	checkCounter("broker.admit.admitted.total", uint64(report.Admitted))
	checkCounter("broker.admit.shed.total", uint64(report.Shed))
	checkCounter("broker.admit.shed.rate", uint64(report.RateSheds))
	checkCounter("broker.admit.shed.queue-full", uint64(report.QueueSheds))
	for _, tn := range cfg.Tenants {
		checkCounter("broker.batch.served.tenant."+tn.Name, uint64(report.ServedByTenant[tn.Name]))
		checkCounter("broker.admit.shed.tenant."+tn.Name, uint64(report.ShedByTenant[tn.Name]))
	}
	// The warm-up allocation went through Allocate directly, not the
	// batcher, and it was served fresh — so the broker's degraded counter
	// must equal the batch-side degraded count exactly.
	checkCounter("broker.allocate.degraded", uint64(report.Degraded))
	depthGauge := report.Metrics.Gauges["broker.admit.queue.depth"]
	check("obs-queue-depth-zero", depthGauge == 0, fmt.Sprintf("gauge=%v", depthGauge))
	check("store-faults-injected", report.StoreFaults > 0,
		fmt.Sprintf("faults=%d", report.StoreFaults))

	return report, nil
}
