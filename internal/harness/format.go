package harness

import (
	"fmt"
	"sort"
	"strings"

	"nlarm/internal/stats"
)

// sparkLevels are the glyphs for compact series rendering.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders vals as a fixed-width sparkline by bucket-averaging.
func Spark(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	if width > len(vals) {
		width = len(vals)
	}
	buckets := make([]float64, width)
	for i := range buckets {
		lo := i * len(vals) / width
		hi := (i + 1) * len(vals) / width
		if hi <= lo {
			hi = lo + 1
		}
		buckets[i] = stats.Mean(vals[lo:hi])
	}
	minV, maxV := buckets[0], buckets[0]
	for _, v := range buckets {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	span := maxV - minV
	var b strings.Builder
	for _, v := range buckets {
		idx := 0
		if span > 0 {
			idx = int((v - minV) / span * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

func seriesLine(name string, vals []float64, unit string) string {
	s := stats.Summarize(vals)
	return fmt.Sprintf("  %-12s %s  min=%.2f mean=%.2f max=%.2f %s",
		name, Spark(vals, 48), s.Min, s.Mean, s.Max, unit)
}

// FormatFig1 renders Figure 1's traces.
func FormatFig1(d *Fig1Data) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — resource-usage variation over %.0f h (nodes A=%d, B=%d, avg over cluster)\n",
		d.Hours[len(d.Hours)-1], d.NodeA, d.NodeB)
	b.WriteString("(a) CPU load (runnable processes)\n")
	b.WriteString(seriesLine("node A", d.LoadA, "") + "\n")
	b.WriteString(seriesLine("node B", d.LoadB, "") + "\n")
	b.WriteString(seriesLine("average", d.LoadAvg, "") + "\n")
	b.WriteString("(b) network I/O at the interface\n")
	b.WriteString(seriesLine("node A", d.NetA, "MB/s") + "\n")
	b.WriteString(seriesLine("node B", d.NetB, "MB/s") + "\n")
	b.WriteString(seriesLine("average", d.NetAvg, "MB/s") + "\n")
	b.WriteString("(c) cluster averages\n")
	b.WriteString(seriesLine("CPU util", d.UtilAvg, "%") + "\n")
	b.WriteString(seriesLine("mem used", d.MemAvg, "%") + "\n")
	return b.String()
}

// FormatFig2 renders Figure 2: the pairwise-bandwidth heatmap and the
// three tracked pairs.
func FormatFig2(d *Fig2Data) string {
	labels := make([]string, d.N)
	for i := range labels {
		labels[i] = fmt.Sprintf("n%02d", i+1)
	}
	// The paper's heatmap shades by *available bandwidth* with light =
	// high; our Heatmap darkens larger values, so render the complement
	// convention by inverting.
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2(a) — P2P available bandwidth, %d nodes (light = high bandwidth)\n", d.N)
	b.WriteString(Heatmap("", labels, d.AvailMBps, true))
	b.WriteString("Figure 2(b) — P2P bandwidth across time\n")
	for k, p := range d.Pairs {
		b.WriteString(seriesLine(fmt.Sprintf("pair %d-%d", p[0]+1, p[1]+1), d.PairSeries[k], "MB/s") + "\n")
	}
	return b.String()
}

// policyOrder lists the paper's presentation order for formatting.
var policyOrder = []string{"random", "sequential", "load-aware", "net-load-aware"}

func orderedPolicies(m map[string]float64) []string {
	var out []string
	for _, p := range policyOrder {
		if _, ok := m[p]; ok {
			out = append(out, p)
		}
	}
	var extra []string
	for p := range m {
		found := false
		for _, q := range out {
			if q == p {
				found = true
				break
			}
		}
		if !found {
			extra = append(extra, p)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// FormatScaling renders a Figure 4/6-style table: one block per process
// count, rows are problem sizes, columns are policy mean execution times.
func FormatScaling(d *ScalingData) string {
	byProcs := make(map[int][]ScalingCell)
	var procsList []int
	for _, c := range d.Cells {
		if _, ok := byProcs[c.Procs]; !ok {
			procsList = append(procsList, c.Procs)
		}
		byProcs[c.Procs] = append(byProcs[c.Procs], c)
	}
	sort.Ints(procsList)
	var b strings.Builder
	figure := "Figure 4"
	sizeName := "s"
	if d.App == AppMiniFE {
		figure = "Figure 6"
		sizeName = "nx"
	}
	fmt.Fprintf(&b, "%s — %s execution time (seconds, mean of %d runs)\n", figure, d.App, d.Cfg.Repeats)
	for _, procs := range procsList {
		cells := byProcs[procs]
		sort.Slice(cells, func(i, j int) bool { return cells[i].Size < cells[j].Size })
		pols := orderedPolicies(cells[0].Mean)
		t := Table{Title: fmt.Sprintf("#procs = %d", procs), Header: append([]string{sizeName}, pols...)}
		for _, c := range cells {
			row := []string{fmt.Sprintf("%d", c.Size)}
			for _, p := range pols {
				row = append(row, Sec(c.Mean[p]))
			}
			t.AddRow(row...)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatGains renders a Table 2/3-style gain summary.
func FormatGains(g GainTable, tableName string) string {
	t := Table{
		Title:  fmt.Sprintf("%s — %% gain of net-load-aware allocation (%s)", tableName, g.App),
		Header: []string{"Allocation Policy", "Average Gain", "Median Gain", "Maximum Gain"},
	}
	for _, pol := range []string{"random", "sequential", "load-aware"} {
		s, ok := g.Rows[pol]
		if !ok {
			continue
		}
		t.AddRow(pol, Pct(s.Mean), Pct(s.Median), Pct(s.Max))
	}
	return t.String()
}

// FormatLoadPerCore renders Figure 5: mean allocated-group CPU load per
// logical core per policy.
func FormatLoadPerCore(m map[string]float64) string {
	t := Table{
		Title:  "Figure 5 — average CPU load per logical core of the allocated groups",
		Header: []string{"policy", "load/core"},
	}
	for _, p := range orderedPolicies(m) {
		t.AddRow(p, F3(m[p]))
	}
	return t.String()
}

// FormatCoV renders the run-stability comparison.
func FormatCoV(m map[string]float64) string {
	t := Table{
		Title:  "Coefficient of variation of execution time (lower = more stable)",
		Header: []string{"policy", "CoV"},
	}
	for _, p := range orderedPolicies(m) {
		t.AddRow(p, F3(m[p]))
	}
	return t.String()
}

// FormatAnalysis renders Table 4 and Figure 7.
func FormatAnalysis(d *AnalysisData) string {
	var b strings.Builder
	// Table 4.
	t := Table{
		Title:  "Table 4 — state of the allocated groups at allocation time (miniMD, 32 procs, s=16)",
		Header: []string{"Algorithm", "Avg CPU load", "Avg compl. bandwidth (MB/s)", "Avg latency (µs)", "Exec time (s)"},
	}
	for _, pol := range d.Policies {
		g := d.Groups[pol]
		t.AddRow(pol, F3(g.AvgCPULoad), Sec(g.AvgComplBWMBps), fmt.Sprintf("%.1f", g.AvgLatencyUS), Sec(d.TimesSec[pol]))
	}
	b.WriteString(t.String())
	b.WriteByte('\n')

	// Figure 7: complement-of-bandwidth heatmap over the union of
	// selected nodes, selection rows, CPU-load row.
	union := map[int]bool{}
	for _, nodes := range d.Selections {
		for _, n := range nodes {
			union[n] = true
		}
	}
	var ids []int
	for n := range union {
		ids = append(ids, n)
	}
	sort.Ints(ids)
	labels := make([]string, len(ids))
	for i, n := range ids {
		labels[i] = d.Snap.Nodes[n].Hostname
	}
	cbw := make([][]float64, len(ids))
	for i, u := range ids {
		cbw[i] = make([]float64, len(ids))
		for j, v := range ids {
			if u == v {
				continue
			}
			avail, peak, ok := d.Snap.BandwidthOf(u, v)
			if ok {
				cbw[i][j] = (peak - avail) / 1e6
			}
		}
	}
	b.WriteString("Figure 7 — complement of available P2P bandwidth (darker = worse), selections, CPU load\n")
	b.WriteString(Heatmap("", labels, cbw, false))
	for _, pol := range d.Policies {
		sel := map[int]bool{}
		for _, n := range d.Selections[pol] {
			sel[n] = true
		}
		var marks []string
		for _, n := range ids {
			if sel[n] {
				marks = append(marks, "X")
			} else {
				marks = append(marks, ".")
			}
		}
		fmt.Fprintf(&b, "%-15s %s\n", pol, strings.Join(marks, ""))
	}
	var loads []string
	for _, n := range ids {
		loads = append(loads, fmt.Sprintf("%s=%.2f", d.Snap.Nodes[n].Hostname, d.Snap.Nodes[n].CPULoad.M1))
	}
	b.WriteString("CPU load: " + strings.Join(loads, " ") + "\n")
	// Switch boundaries for context.
	var switches []string
	for _, n := range ids {
		switches = append(switches, fmt.Sprintf("%d", d.Cluster.Topo.SwitchOf(n)))
	}
	b.WriteString("switch:   " + strings.Join(switches, "") + "\n")
	return b.String()
}
