package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple aligned-text table for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// WriteCSV writes the table as CSV (no quoting needed for our numeric
// content; commas in cells are replaced by semicolons defensively).
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string { return strings.ReplaceAll(s, ",", ";") }
	writeRow := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// heatShades orders ASCII shades from light (high values get light shades
// in the paper's bandwidth heatmaps, where light = high available
// bandwidth) to dark.
var heatShades = []byte{' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'}

// Heatmap renders vals (a square or rectangular matrix) as an ASCII
// heatmap. When invert is true, high values map to dark shades (the
// paper's complement-of-bandwidth convention: larger number = darker =
// less available bandwidth).
func Heatmap(title string, rowLabels []string, vals [][]float64, invert bool) string {
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, row := range vals {
		for _, v := range row {
			if math.IsNaN(v) {
				continue
			}
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	if math.IsInf(minV, 1) {
		minV, maxV = 0, 0
	}
	span := maxV - minV
	shade := func(v float64) byte {
		if math.IsNaN(v) {
			return '?'
		}
		frac := 0.0
		if span > 0 {
			frac = (v - minV) / span
		}
		if invert {
			frac = 1 - frac
		}
		idx := int(frac * float64(len(heatShades)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(heatShades) {
			idx = len(heatShades) - 1
		}
		return heatShades[idx]
	}
	labelW := 0
	for _, l := range rowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s  (min=%.3g max=%.3g, darker = larger)\n", title, minV, maxV)
	}
	for i, row := range vals {
		label := ""
		if i < len(rowLabels) {
			label = rowLabels[i]
		}
		fmt.Fprintf(&b, "%-*s |", labelW, label)
		for _, v := range row {
			b.WriteByte(shade(v))
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// Fmt helpers used across experiment output.

// Sec formats a duration in seconds with two decimals.
func Sec(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// F3 formats with three significant decimals.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }
