package jobqueue

import (
	"testing"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/broker"
	"nlarm/internal/mpisim"
)

// withQueue replaces the rig's default queue with one built from cfg
// (the default rig queue is plain FIFO with no backfill).
func withQueue(t *testing.T, r *rig, cfg Config) {
	t.Helper()
	r.q.Stop()
	if cfg.RetryPeriod == 0 {
		cfg.RetryPeriod = 10 * time.Second
	}
	q := New(r.b, r.sched, cfg)
	if err := q.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(q.Stop)
	r.q = q
}

// launchEv is one observed job launch (virtual time included so traces
// can be compared bit-for-bit between runs).
type launchEv struct {
	name string
	at   time.Time
}

// traceSpec is an instantly-completing job that appends a launch event.
func traceSpec(r *rig, name string, procs, ppn int, wall time.Duration, out *[]launchEv) Spec {
	return Spec{
		Name:     name,
		Request:  broker.Request{Procs: procs, PPN: ppn, Alpha: 0.5, Beta: 0.5},
		Walltime: wall,
		Start: func(id int, resp broker.Response, done func(error)) error {
			*out = append(*out, launchEv{name, r.sched.Now()})
			done(nil)
			return nil
		},
	}
}

// halfClusterHog runs a long compute-bound job on nodes 0-3 (half the
// rig's 8-node cluster), pushing cluster load/core to ~0.5 so a 0.35
// wait threshold blocks the queue head while half the slots stay idle —
// the canonical backfill opportunity.
func halfClusterHog(t *testing.T, r *rig, computeSec float64) {
	t.Helper()
	hog := &mpisim.Shape{Name: "hog", Ranks: 32, Iterations: 1, ComputeSecPerIter: computeSec, RefFreqGHz: 3.0}
	place, err := mpisim.NewPlacement(32, []int{0, 1, 2, 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.w.LaunchJob(hog, place, nil); err != nil {
		t.Fatal(err)
	}
	// Let NodeStateD observe the load.
	r.sched.RunFor(90 * time.Second)
}

// backfillScenario drives the canonical case: a hog loads half the
// cluster, a wide head job must wait, a job with no walltime queues
// behind it, and a short walltimed job backfills past both. Returns the
// rig, the launch trace, and the head/nowall/short job IDs.
func backfillScenario(t *testing.T, seed uint64) (*rig, *[]launchEv, [3]int) {
	t.Helper()
	r := newRig(t, seed, 0.35)
	rp := alloc.NewReservingPolicy(alloc.LoadAware{}, 90*time.Second)
	r.b.RegisterPolicy(rp)
	withQueue(t, r, Config{Backfill: true, Reserve: rp})
	halfClusterHog(t, r, 600)

	var trace []launchEv
	head, err := r.q.Submit(traceSpec(r, "head", 64, 8, 0, &trace))
	if err != nil {
		t.Fatal(err)
	}
	nowall, err := r.q.Submit(traceSpec(r, "nowall", 8, 4, 0, &trace))
	if err != nil {
		t.Fatal(err)
	}
	short, err := r.q.Submit(traceSpec(r, "short", 8, 4, 2*time.Minute, &trace))
	if err != nil {
		t.Fatal(err)
	}
	return r, &trace, [3]int{head, nowall, short}
}

func TestBackfillLaunchesShortJobAroundBlockedHead(t *testing.T) {
	r, trace, ids := backfillScenario(t, 21)
	head, nowall, short := ids[0], ids[1], ids[2]

	// The walltimed short job backfilled immediately on submit; the head
	// and the estimate-less job are still queued, in order.
	sj, _ := r.q.Job(short)
	if sj.State != StateDone {
		t.Fatalf("short job state %v, want done via backfill", sj.State)
	}
	if !sj.Backfilled {
		t.Fatal("short job launched but not marked backfilled")
	}
	if p := r.q.Pending(); len(p) != 2 || p[0] != head || p[1] != nowall {
		t.Fatalf("pending %v, want [%d %d]", p, head, nowall)
	}
	if len(*trace) != 1 || (*trace)[0].name != "short" {
		t.Fatalf("trace %v, want only the short job launched", *trace)
	}
	if got := r.q.Stats().Backfilled; got != 1 {
		t.Fatalf("stats backfilled %d, want 1", got)
	}

	// Backfill invariants: the job fits entirely before the head's
	// reserved start, and it never overtook anyone near the aging bound.
	if sj.ReservedStart.IsZero() {
		t.Fatal("no reserved start recorded")
	}
	if sj.Started.Add(sj.Walltime).After(sj.ReservedStart) {
		t.Fatalf("backfill violates reservation: started %v + walltime %v > reserved start %v",
			sj.Started, sj.Walltime, sj.ReservedStart)
	}
	if sj.OvertookMaxWait >= 30*time.Minute {
		t.Fatalf("overtook a job waiting %v, at/over the aging bound", sj.OvertookMaxWait)
	}

	// No starvation: once the hog drains and load decays, the head and
	// then the estimate-less job launch in queue order.
	deadline := r.sched.Now().Add(30 * time.Minute)
	for r.q.Stats().Done < 3 && !r.sched.Now().After(deadline) {
		r.sched.RunFor(30 * time.Second)
	}
	if got := r.q.Stats(); got.Done != 3 || got.Failed != 0 {
		t.Fatalf("queue never drained: %+v", got)
	}
	if len(*trace) != 3 || (*trace)[1].name != "head" || (*trace)[2].name != "nowall" {
		t.Fatalf("launch order %v, want short, head, nowall", *trace)
	}
	hj, _ := r.q.Job(head)
	nj, _ := r.q.Job(nowall)
	if hj.Backfilled || nj.Backfilled {
		t.Fatal("non-backfilled jobs marked backfilled")
	}
}

func TestNoWalltimeJobsNeverBackfill(t *testing.T) {
	r := newRig(t, 24, 0.35)
	withQueue(t, r, Config{Backfill: true})
	halfClusterHog(t, r, 600)

	var trace []launchEv
	if _, err := r.q.Submit(traceSpec(r, "head", 64, 8, 0, &trace)); err != nil {
		t.Fatal(err)
	}
	// Plenty of idle slots for these, but no walltime estimate: EASY
	// backfill must not touch them.
	for _, name := range []string{"a", "b", "c"} {
		if _, err := r.q.Submit(traceSpec(r, name, 8, 4, 0, &trace)); err != nil {
			t.Fatal(err)
		}
	}
	r.sched.RunFor(time.Minute)
	if len(trace) != 0 {
		t.Fatalf("jobs without estimates launched out of order: %v", trace)
	}
	if got := r.q.Stats(); got.Pending != 4 || got.Backfilled != 0 {
		t.Fatalf("stats %+v, want 4 pending and 0 backfilled", got)
	}
}

func TestAgingBoundStopsBackfill(t *testing.T) {
	r := newRig(t, 22, 0.35)
	withQueue(t, r, Config{Backfill: true, AgingBound: 90 * time.Second})
	halfClusterHog(t, r, 600)

	var trace []launchEv
	head, err := r.q.Submit(traceSpec(r, "head", 64, 8, 0, &trace))
	if err != nil {
		t.Fatal(err)
	}
	// Age the head past the bound before the short job arrives.
	r.sched.RunFor(2 * time.Minute)
	hj, _ := r.q.Job(head)
	if hj.State != StatePending {
		t.Fatalf("head state %v, want pending behind the hog", hj.State)
	}
	short, err := r.q.Submit(traceSpec(r, "short", 8, 4, 2*time.Minute, &trace))
	if err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(time.Minute)
	sj, _ := r.q.Job(short)
	if sj.State != StatePending || sj.Backfilled {
		t.Fatalf("short job overtook an aged-out head: state %v backfilled %v", sj.State, sj.Backfilled)
	}
	if got := r.q.Stats().Backfilled; got != 0 {
		t.Fatalf("stats backfilled %d, want 0", got)
	}
}

// fifoScenario drives the same workload (no walltime estimates anywhere)
// through a queue with backfill on or off and returns the launch trace
// plus per-job (attempts, waits, started) — everything that could
// diverge if the backfill pass perturbed the broker call sequence.
func fifoScenario(t *testing.T, seed uint64, backfill bool) ([]launchEv, []Job) {
	t.Helper()
	r := newRig(t, seed, 0.35)
	withQueue(t, r, Config{Backfill: backfill})
	halfClusterHog(t, r, 60)

	var trace []launchEv
	ids := make([]int, 0, 3)
	for _, name := range []string{"a", "b", "c"} {
		id, err := r.q.Submit(traceSpec(r, name, 8, 4, 0, &trace))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	deadline := r.sched.Now().Add(20 * time.Minute)
	for r.q.Stats().Done < 3 && !r.sched.Now().After(deadline) {
		r.sched.RunFor(10 * time.Second)
	}
	if got := r.q.Stats(); got.Done != 3 {
		t.Fatalf("queue never drained: %+v", got)
	}
	jobs := make([]Job, 0, len(ids))
	for _, id := range ids {
		j, _ := r.q.Job(id)
		jobs = append(jobs, j)
	}
	return trace, jobs
}

func TestBackfillDisabledByNoEstimatesIsBitForBitFIFO(t *testing.T) {
	offTrace, offJobs := fifoScenario(t, 23, false)
	onTrace, onJobs := fifoScenario(t, 23, true)
	if len(offTrace) != len(onTrace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(offTrace), len(onTrace))
	}
	for i := range offTrace {
		if offTrace[i] != onTrace[i] {
			t.Fatalf("launch %d differs: %+v vs %+v", i, offTrace[i], onTrace[i])
		}
	}
	for i := range offJobs {
		a, b := offJobs[i], onJobs[i]
		if a.Attempts != b.Attempts || a.WaitAnswers != b.WaitAnswers ||
			!a.Started.Equal(b.Started) || !a.Finished.Equal(b.Finished) ||
			b.Backfilled {
			t.Fatalf("job %d diverged: %+v vs %+v", a.ID, a, b)
		}
	}
}

func TestBackfillDeterministicAcrossRuns(t *testing.T) {
	r1, trace1, ids1 := backfillScenario(t, 25)
	r2, trace2, ids2 := backfillScenario(t, 25)
	if len(*trace1) != len(*trace2) {
		t.Fatalf("trace lengths differ: %v vs %v", *trace1, *trace2)
	}
	for i := range *trace1 {
		if (*trace1)[i] != (*trace2)[i] {
			t.Fatalf("launch %d differs: %+v vs %+v", i, (*trace1)[i], (*trace2)[i])
		}
	}
	s1, _ := r1.q.Job(ids1[2])
	s2, _ := r2.q.Job(ids2[2])
	if !s1.Started.Equal(s2.Started) || !s1.ReservedStart.Equal(s2.ReservedStart) ||
		s1.OvertookMaxWait != s2.OvertookMaxWait || s1.Backfilled != s2.Backfilled {
		t.Fatalf("backfill decision diverged: %+v vs %+v", s1, s2)
	}
}

func TestPrioritySubmissionOrder(t *testing.T) {
	r := newRig(t, 26, 0.35)
	withQueue(t, r, Config{Backfill: true})
	halfClusterHog(t, r, 600)

	var trace []launchEv
	lo, _ := r.q.Submit(traceSpec(r, "lo", 8, 4, 0, &trace))
	mid1, _ := r.q.Submit(Spec{
		Name: "mid1", Request: broker.Request{Procs: 8, PPN: 4}, Priority: 5,
		Start: traceSpec(r, "mid1", 8, 4, 0, &trace).Start,
	})
	hi, _ := r.q.Submit(Spec{
		Name: "hi", Request: broker.Request{Procs: 8, PPN: 4}, Priority: 9,
		Start: traceSpec(r, "hi", 8, 4, 0, &trace).Start,
	})
	mid2, _ := r.q.Submit(Spec{
		Name: "mid2", Request: broker.Request{Procs: 8, PPN: 4}, Priority: 5,
		Start: traceSpec(r, "mid2", 8, 4, 0, &trace).Start,
	})
	want := []int{hi, mid1, mid2, lo}
	if p := r.q.Pending(); len(p) != 4 || p[0] != want[0] || p[1] != want[1] || p[2] != want[2] || p[3] != want[3] {
		t.Fatalf("pending %v, want %v (priority order, ties FIFO)", p, want)
	}
}
