package jobqueue

import (
	"fmt"
	"testing"
	"time"

	"nlarm/internal/broker"
	"nlarm/internal/cluster"
	"nlarm/internal/monitor"
	"nlarm/internal/mpisim"
	"nlarm/internal/simtime"
	"nlarm/internal/store"
	"nlarm/internal/world"
)

var t0 = time.Date(2020, 3, 2, 8, 0, 0, 0, time.UTC)

type rig struct {
	sched *simtime.Scheduler
	w     *world.World
	st    *store.MemStore
	b     *broker.Broker
	q     *Queue
}

// rigStore exposes the rig's shared store to sibling test files.
func rigStore(r *rig) *store.MemStore { return r.st }

func newRig(t *testing.T, seed uint64, waitThreshold float64) *rig {
	t.Helper()
	cl, err := cluster.BuildUniform(2, 4, 8, 3.0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	sched := simtime.NewScheduler(t0)
	w := world.New(cl, world.Config{Seed: seed, StepSize: time.Second}, t0)
	w.Attach(sched)
	st := store.NewMem()
	mgr := monitor.NewManager(&monitor.WorldProber{W: w}, st, monitor.Config{
		NodeStatePeriod: 2 * time.Second,
		LivehostsPeriod: 2 * time.Second,
		LatencyPeriod:   5 * time.Second,
		BandwidthPeriod: 10 * time.Second,
	})
	if err := mgr.Start(sched); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)
	sched.RunFor(30 * time.Second)
	b := broker.New(st, sched, broker.Config{Seed: seed, WaitLoadPerCore: waitThreshold})
	q := New(b, sched, Config{RetryPeriod: 10 * time.Second})
	if err := q.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(q.Stop)
	return &rig{sched: sched, w: w, st: st, b: b, q: q}
}

// instantSpec is a job whose Start completes immediately.
func instantSpec(name string, launched *[]string) Spec {
	return Spec{
		Name:    name,
		Request: broker.Request{Procs: 8, PPN: 4, Alpha: 0.5, Beta: 0.5},
		Start: func(id int, resp broker.Response, done func(error)) error {
			if launched != nil {
				*launched = append(*launched, name)
			}
			done(nil)
			return nil
		},
	}
}

func TestSubmitLaunchesImmediatelyWhenCalm(t *testing.T) {
	r := newRig(t, 1, 0.9)
	var launched []string
	id, err := r.q.Submit(instantSpec("a", &launched))
	if err != nil {
		t.Fatal(err)
	}
	j, ok := r.q.Job(id)
	if !ok || j.State != StateDone {
		t.Fatalf("job state %v", j.State)
	}
	if len(launched) != 1 {
		t.Fatalf("launched %v", launched)
	}
	if j.Attempts != 1 || j.WaitAnswers != 0 {
		t.Fatalf("attempts %d waits %d", j.Attempts, j.WaitAnswers)
	}
	if j.Response.Recommendation != broker.RecommendAllocate {
		t.Fatal("no allocation recorded")
	}
}

func TestFIFOOrder(t *testing.T) {
	r := newRig(t, 2, 0.9)
	var launched []string
	for _, name := range []string{"first", "second", "third"} {
		if _, err := r.q.Submit(instantSpec(name, &launched)); err != nil {
			t.Fatal(err)
		}
	}
	if len(launched) != 3 {
		t.Fatalf("launched %v", launched)
	}
	for i, want := range []string{"first", "second", "third"} {
		if launched[i] != want {
			t.Fatalf("order %v", launched)
		}
	}
}

func TestQueueWaitsWhileClusterBusy(t *testing.T) {
	// Wait threshold 0.5 load/core; a hog job with 8 ranks per node on
	// all 8 nodes pushes sampled load to ~1/core.
	r := newRig(t, 3, 0.5)
	hog := &mpisim.Shape{
		Name: "hog", Ranks: 64, Iterations: 1,
		ComputeSecPerIter: 120, RefFreqGHz: 3.0,
	}
	place, err := mpisim.NewPlacement(64, []int{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.w.LaunchJob(hog, place, nil); err != nil {
		t.Fatal(err)
	}
	// Let NodeStateD observe the load.
	r.sched.RunFor(90 * time.Second)

	var launched []string
	id, err := r.q.Submit(instantSpec("queued", &launched))
	if err != nil {
		t.Fatal(err)
	}
	j, _ := r.q.Job(id)
	if j.State != StatePending {
		t.Fatalf("job launched on a busy cluster (state %v)", j.State)
	}
	if len(r.q.Pending()) != 1 {
		t.Fatalf("pending %v", r.q.Pending())
	}
	// While the hog runs, retries keep answering wait.
	r.sched.RunFor(2 * time.Minute)
	j, _ = r.q.Job(id)
	if j.State != StatePending || j.WaitAnswers == 0 {
		t.Fatalf("state %v waits %d", j.State, j.WaitAnswers)
	}
	// The hog finishes (~it needs 120s at half share => up to ~5 virtual
	// minutes); load decays out of the 1-minute mean; the queue launches.
	deadline := r.sched.Now().Add(30 * time.Minute)
	for {
		j, _ = r.q.Job(id)
		if j.State == StateDone {
			break
		}
		if r.sched.Now().After(deadline) {
			t.Fatalf("job never launched after hog finished (state %v, load samples stuck?)", j.State)
		}
		r.sched.RunFor(30 * time.Second)
	}
	if len(launched) != 1 {
		t.Fatalf("launched %v", launched)
	}
	if j.WaitAnswers < 2 {
		t.Fatalf("expected several wait answers, got %d", j.WaitAnswers)
	}
}

func TestHeadOfLineBlocksFollowers(t *testing.T) {
	r := newRig(t, 4, 0.5)
	hog := &mpisim.Shape{Name: "hog", Ranks: 64, Iterations: 1, ComputeSecPerIter: 60, RefFreqGHz: 3.0}
	place, _ := mpisim.NewPlacement(64, []int{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if _, err := r.w.LaunchJob(hog, place, nil); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(90 * time.Second)
	var launched []string
	id1, _ := r.q.Submit(instantSpec("head", &launched))
	id2, _ := r.q.Submit(instantSpec("tail", &launched))
	if p := r.q.Pending(); len(p) != 2 || p[0] != id1 || p[1] != id2 {
		t.Fatalf("pending %v", p)
	}
	if len(launched) != 0 {
		t.Fatalf("launched while busy: %v", launched)
	}
	// When the cluster frees up, both launch in order.
	deadline := r.sched.Now().Add(30 * time.Minute)
	for len(launched) < 2 && !r.sched.Now().After(deadline) {
		r.sched.RunFor(30 * time.Second)
	}
	if len(launched) != 2 || launched[0] != "head" || launched[1] != "tail" {
		t.Fatalf("launch order %v", launched)
	}
}

func TestMaxAttemptsFailsJob(t *testing.T) {
	r := newRig(t, 5, 0.0001) // everything looks busy
	r.q.Stop()
	q := New(r.b, r.sched, Config{RetryPeriod: 5 * time.Second, MaxAttempts: 3})
	if err := q.Start(); err != nil {
		t.Fatal(err)
	}
	defer q.Stop()
	id, err := q.Submit(instantSpec("doomed", nil))
	if err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(time.Minute)
	j, _ := q.Job(id)
	if j.State != StateFailed {
		t.Fatalf("state %v after max attempts", j.State)
	}
	if j.Err == nil {
		t.Fatal("no failure cause recorded")
	}
	if q.Stats().Failed != 1 {
		t.Fatalf("stats %+v", q.Stats())
	}
}

func TestAsyncCompletionViaDone(t *testing.T) {
	r := newRig(t, 6, 0.9)
	var doneFn func(error)
	id, err := r.q.Submit(Spec{
		Name:    "async",
		Request: broker.Request{Procs: 8, PPN: 4},
		Start: func(id int, resp broker.Response, done func(error)) error {
			doneFn = done
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := r.q.Job(id)
	if j.State != StateRunning {
		t.Fatalf("state %v", j.State)
	}
	if r.q.Stats().Running != 1 {
		t.Fatalf("stats %+v", r.q.Stats())
	}
	doneFn(nil)
	j, _ = r.q.Job(id)
	if j.State != StateDone || j.Finished.IsZero() {
		t.Fatalf("after done: %+v", j)
	}
	// done is idempotent.
	doneFn(fmt.Errorf("late error"))
	j, _ = r.q.Job(id)
	if j.State != StateDone {
		t.Fatal("second done changed state")
	}
}

func TestStartFailureMarksFailed(t *testing.T) {
	r := newRig(t, 7, 0.9)
	id, err := r.q.Submit(Spec{
		Name:    "broken",
		Request: broker.Request{Procs: 8, PPN: 4},
		Start: func(id int, resp broker.Response, done func(error)) error {
			return fmt.Errorf("launcher exploded")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	j, _ := r.q.Job(id)
	if j.State != StateFailed || j.Err == nil {
		t.Fatalf("state %v err %v", j.State, j.Err)
	}
}

func TestSubmitValidation(t *testing.T) {
	r := newRig(t, 8, 0.9)
	if _, err := r.q.Submit(Spec{Name: "nostart", Request: broker.Request{Procs: 4}}); err == nil {
		t.Fatal("nil Start accepted")
	}
	if _, err := r.q.Submit(Spec{
		Name:    "forced",
		Request: broker.Request{Procs: 4, Force: true},
		Start:   func(int, broker.Response, func(error)) error { return nil },
	}); err == nil {
		t.Fatal("forced request accepted")
	}
}

func TestDoubleStartFails(t *testing.T) {
	r := newRig(t, 9, 0.9)
	if err := r.q.Start(); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestJobLookupMissing(t *testing.T) {
	r := newRig(t, 10, 0.9)
	if _, ok := r.q.Job(999); ok {
		t.Fatal("ghost job found")
	}
}
