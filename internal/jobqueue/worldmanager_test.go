package jobqueue

import (
	"testing"
	"time"

	"nlarm/internal/broker"
	"nlarm/internal/metrics"
	"nlarm/internal/monitor"
)

func TestWorldManagerSubmitRunsJob(t *testing.T) {
	r := newRig(t, 20, 0.9)
	m := NewWorldManager(r.q, r.w)
	id, err := m.Submit(broker.SubmitRequest{
		Name: "md-test", App: "minimd", Size: 8, Iterations: 20,
		Request: broker.Request{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	info, ok := m.Status(id)
	if !ok {
		t.Fatal("no status")
	}
	if info.State != string(StateRunning) {
		t.Fatalf("state %s right after calm submit", info.State)
	}
	if len(info.Nodes) != 2 || len(info.Hostfile) != 2 {
		t.Fatalf("nodes %v hostfile %v", info.Nodes, info.Hostfile)
	}
	// Drive the world until the job completes.
	deadline := r.sched.Now().Add(30 * time.Minute)
	for {
		info, _ = m.Status(id)
		if info.State == string(StateDone) {
			break
		}
		if r.sched.Now().After(deadline) {
			t.Fatalf("job stuck in %s", info.State)
		}
		r.sched.RunFor(10 * time.Second)
	}
	if info.Elapsed <= 0 {
		t.Fatalf("no elapsed time recorded: %+v", info)
	}
	qs := m.QueueStats()
	if qs.Done != 1 || qs.Running != 0 {
		t.Fatalf("queue stats %+v", qs)
	}
}

func TestWorldManagerMiniFE(t *testing.T) {
	r := newRig(t, 21, 0.9)
	m := NewWorldManager(r.q, r.w)
	id, err := m.Submit(broker.SubmitRequest{
		App: "minife", Size: 32, Iterations: 20,
		Request: broker.Request{Procs: 8, PPN: 4, Alpha: 0.4, Beta: 0.6},
	})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := m.Status(id)
	if info.Name != "minife-32" {
		t.Fatalf("default name %q", info.Name)
	}
}

func TestWorldManagerValidatesApp(t *testing.T) {
	r := newRig(t, 22, 0.9)
	m := NewWorldManager(r.q, r.w)
	if _, err := m.Submit(broker.SubmitRequest{App: "hpl", Size: 10, Request: broker.Request{Procs: 4}}); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := m.Submit(broker.SubmitRequest{App: "minimd", Size: 8, Request: broker.Request{Procs: 0}}); err == nil {
		t.Fatal("zero procs accepted")
	}
	if _, ok := m.Status(12345); ok {
		t.Fatal("ghost job has status")
	}
}

func TestManagedServerEndToEnd(t *testing.T) {
	r := newRig(t, 23, 0.9)
	m := NewWorldManager(r.q, r.w)
	srv, err := broker.NewManagedServer(r.b, m, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := broker.Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	id, err := c.Submit(broker.SubmitRequest{
		App: "minimd", Size: 8, Iterations: 10,
		Request: broker.Request{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.JobStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != string(StateRunning) && info.State != string(StateDone) {
		t.Fatalf("wire status %+v", info)
	}
	qs, err := c.QueueStats()
	if err != nil {
		t.Fatal(err)
	}
	if qs.Running+qs.Done != 1 {
		t.Fatalf("wire queue stats %+v", qs)
	}
	if _, err := c.JobStatus(999); err == nil {
		t.Fatal("ghost job status over wire succeeded")
	}
}

func TestUnmanagedServerRejectsSubmit(t *testing.T) {
	r := newRig(t, 24, 0.9)
	srv, err := broker.NewServer(r.b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := broker.Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Submit(broker.SubmitRequest{App: "minimd", Size: 8, Request: broker.Request{Procs: 4}}); err == nil {
		t.Fatal("unmanaged server accepted submit")
	}
}

func TestWorldManagerPredictions(t *testing.T) {
	r := newRig(t, 25, 0.9)
	m := NewWorldManager(r.q, r.w).WithPredictions(func() (*metrics.Snapshot, error) {
		return monitor.ReadSnapshot(rigStore(r), r.sched.Now())
	})
	id, err := m.Submit(broker.SubmitRequest{
		App: "minimd", Size: 16, Iterations: 50,
		Request: broker.Request{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7},
	})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := m.Status(id)
	if info.PredictedElapsed <= 0 {
		t.Fatalf("no prediction recorded: %+v", info)
	}
	// Run to completion and compare magnitudes.
	deadline := r.sched.Now().Add(time.Hour)
	for info.State != string(StateDone) && !r.sched.Now().After(deadline) {
		r.sched.RunFor(10 * time.Second)
		info, _ = m.Status(id)
	}
	if info.Elapsed <= 0 {
		t.Fatalf("job never finished: %+v", info)
	}
	ratio := info.Elapsed.Seconds() / info.PredictedElapsed.Seconds()
	if ratio < 0.05 || ratio > 20 {
		t.Fatalf("prediction wildly off: predicted %v actual %v", info.PredictedElapsed, info.Elapsed)
	}
}
