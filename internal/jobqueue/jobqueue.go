// Package jobqueue turns the broker into a small resource manager: jobs
// are submitted to a queue, and each is launched as soon as the broker
// stops recommending to wait (§6 of the paper: "If the overall load on
// the cluster is extremely high ... our tool should recommend waiting
// rather than allocating it right away").
//
// By default the queue is strict FIFO with head-of-line blocking, like
// the paper's single-cluster assumption. With Config.Backfill it becomes
// a walltime-aware EASY-backfill scheduler: the head job keeps its place
// and receives a capacity reservation (an earliest-start estimate backed
// by a shadow reservation charged through the allocator's
// ReservingPolicy), and jobs behind it may start out of order only when
// their walltime estimate fits entirely before that reserved start, with
// an aging bound so no job starves behind a stream of backfills. Jobs
// without a walltime estimate never backfill.
package jobqueue

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/broker"
	"nlarm/internal/metrics"
	"nlarm/internal/obs"
	"nlarm/internal/simtime"
)

// State is a queued job's lifecycle state.
type State string

const (
	// StatePending means the job is waiting for an allocation.
	StatePending State = "pending"
	// StateRunning means the job was launched and has not completed.
	StateRunning State = "running"
	// StateDone means the job's Run callback reported completion.
	StateDone State = "done"
	// StateFailed means allocation or launch failed permanently.
	StateFailed State = "failed"
)

// Spec describes a job submission.
type Spec struct {
	// Name labels the job in status output.
	Name string
	// Request is the broker request made on the job's behalf. Force is
	// ignored — the queue exists to honor wait recommendations.
	Request broker.Request
	// Walltime is the user's estimated run time. Zero means unknown;
	// only jobs with an estimate are considered for backfill, and an
	// estimate is a scheduling input, not a kill deadline.
	Walltime time.Duration
	// Priority orders the queue: higher-priority jobs are inserted ahead
	// of lower-priority ones, ties preserve submission order. Zero is
	// the default.
	Priority int
	// Start launches job `id` on the granted allocation. It must not
	// block; it reports completion by calling done (exactly once).
	Start func(id int, resp broker.Response, done func(error)) error
}

// Job is the queue's view of one submission.
type Job struct {
	ID        int
	Name      string
	State     State
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Walltime and Priority echo the spec.
	Walltime time.Duration
	Priority int
	// Attempts counts allocation attempts (including wait answers).
	Attempts int
	// WaitAnswers counts attempts answered with a wait recommendation.
	WaitAnswers int
	// Backfilled reports the job was started out of queue order by the
	// backfill scheduler.
	Backfilled bool
	// ReservedStart is the head job's reserved-start estimate at the
	// moment this job backfilled: the backfill invariant is
	// Started + Walltime <= ReservedStart.
	ReservedStart time.Time
	// OvertookMaxWait is the longest wait among the jobs this backfill
	// overtook, at decision time — always below the aging bound.
	OvertookMaxWait time.Duration
	// Err holds the failure cause for StateFailed.
	Err error
	// Response is the allocation the job ran on (valid from StateRunning).
	Response broker.Response
}

// Config tunes the queue.
type Config struct {
	// RetryPeriod is how often the queue re-attempts the head job.
	// Default 30s.
	RetryPeriod time.Duration
	// MaxAttempts fails a job after this many allocation attempts
	// (0 = unlimited).
	MaxAttempts int
	// Backfill enables EASY backfill: when the head job must wait, jobs
	// behind it with a walltime estimate that fits before the head's
	// reserved start may launch out of order. Disabled, the queue is
	// bit-for-bit the legacy FIFO.
	Backfill bool
	// AgingBound stops backfill past long-waiting jobs: once any queued
	// job has waited this long, nothing may overtake it. Default 30m.
	AgingBound time.Duration
	// Reserve, when set, ties the queue to the broker's reserving
	// allocation policy: submissions without an explicit policy are
	// routed to it, backfill capacity is priced on its charged snapshot,
	// and the waiting head's claim is shadow-reserved through it so
	// backfill placements steer around the capacity the head will take.
	Reserve *alloc.ReservingPolicy
	// Obs is the instrumentation registry for queue counters and the
	// queue-wait / run-time histograms. Nil disables recording.
	Obs *obs.Registry
}

// Queue is a job queue over a broker. Safe for concurrent use.
type Queue struct {
	b   *broker.Broker
	rt  simtime.Runtime
	cfg Config

	mu          sync.Mutex
	nextID      int
	pending     []*Job
	jobs        map[int]*Job
	specs       map[int]Spec
	cancel      simtime.CancelFunc
	running     int
	backfilling bool
	// headShadow cancels the waiting head's shadow reservation. It is
	// installed at the end of a backfill pass and released at the start
	// of the next scheduling tick, so the claim is visible to broker
	// clients outside the queue between ticks but never prices into the
	// queue's own allocations.
	headShadow func()
}

// New builds a queue over broker b on runtime rt.
func New(b *broker.Broker, rt simtime.Runtime, cfg Config) *Queue {
	if cfg.RetryPeriod <= 0 {
		cfg.RetryPeriod = 30 * time.Second
	}
	if cfg.AgingBound <= 0 {
		cfg.AgingBound = 30 * time.Minute
	}
	return &Queue{
		b: b, rt: rt, cfg: cfg,
		nextID: 1,
		jobs:   make(map[int]*Job),
		specs:  make(map[int]Spec),
	}
}

// Start begins the retry loop. Starting twice is an error.
func (q *Queue) Start() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.cancel != nil {
		return fmt.Errorf("jobqueue: already started")
	}
	q.cancel = q.rt.Every(q.cfg.RetryPeriod, "jobqueue.retry", func(now time.Time) {
		q.tryLaunch(now)
	})
	return nil
}

// Stop halts the retry loop; queued jobs stay pending. Any live head
// shadow reservation is released — a stopped queue no longer promises
// its head anything.
func (q *Queue) Stop() {
	q.mu.Lock()
	cancel := q.cancel
	q.cancel = nil
	shadow := q.headShadow
	q.headShadow = nil
	q.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	if shadow != nil {
		shadow()
	}
}

// Submit enqueues a job and immediately attempts to launch the queue
// head. It returns the job ID.
func (q *Queue) Submit(spec Spec) (int, error) {
	if spec.Start == nil {
		return 0, fmt.Errorf("jobqueue: spec %q has no Start", spec.Name)
	}
	if spec.Request.Force {
		return 0, fmt.Errorf("jobqueue: spec %q sets Force; submit directly to the broker instead", spec.Name)
	}
	if q.cfg.Reserve != nil && spec.Request.Policy == "" {
		spec.Request.Policy = q.cfg.Reserve.Name()
	}
	q.mu.Lock()
	id := q.nextID
	q.nextID++
	j := &Job{
		ID: id, Name: spec.Name, State: StatePending,
		Submitted: q.rt.Now(),
		Walltime:  spec.Walltime, Priority: spec.Priority,
	}
	q.jobs[id] = j
	q.specs[id] = spec
	// Stable priority insertion: ahead of the first strictly-lower
	// priority, behind every equal-or-higher one. All-zero priorities
	// reduce to an append — the legacy FIFO order.
	at := len(q.pending)
	for i, p := range q.pending {
		if p.Priority < spec.Priority {
			at = i
			break
		}
	}
	q.pending = append(q.pending, nil)
	copy(q.pending[at+1:], q.pending[at:])
	q.pending[at] = j
	q.mu.Unlock()
	q.cfg.Obs.Counter("jobqueue.submitted.total").Inc()
	q.tryLaunch(q.rt.Now())
	return id, nil
}

// tryLaunch runs one scheduling pass: launch queue heads in order until
// one must keep waiting, then (when enabled) try to backfill around it.
func (q *Queue) tryLaunch(now time.Time) {
	// Release the previous tick's head shadow first: this pass recomputes
	// the head's claim from fresh state, and the head's own allocation
	// attempt must not be priced against its own reservation.
	q.mu.Lock()
	if q.headShadow != nil {
		q.headShadow()
		q.headShadow = nil
	}
	q.mu.Unlock()
	headResp, waiting := q.launchHeads(now)
	if waiting && q.cfg.Backfill {
		q.backfillPass(now, headResp)
	}
}

// launchHeads attempts to start queued jobs in order, stopping at the
// first that must keep waiting (head-of-line ordering, like the paper's
// single-cluster FIFO assumption). It reports the head's wait answer
// when it stopped on one, so a backfill pass can reuse its estimates.
func (q *Queue) launchHeads(now time.Time) (broker.Response, bool) {
	for {
		q.mu.Lock()
		if len(q.pending) == 0 {
			q.mu.Unlock()
			return broker.Response{}, false
		}
		j := q.pending[0]
		spec := q.specs[j.ID]
		q.mu.Unlock()

		resp, err := q.b.Allocate(spec.Request)

		q.mu.Lock()
		// The head may have changed while we were allocating.
		if len(q.pending) == 0 || q.pending[0] != j {
			q.mu.Unlock()
			continue
		}
		j.Attempts++
		if err != nil {
			if q.cfg.MaxAttempts > 0 && j.Attempts >= q.cfg.MaxAttempts {
				j.State = StateFailed
				j.Err = err
				j.Finished = now
				q.pending = q.pending[1:]
				delete(q.specs, j.ID)
				q.mu.Unlock()
				q.cfg.Obs.Counter("jobqueue.failed.total").Inc()
				continue
			}
			q.mu.Unlock()
			return broker.Response{}, false // transient (e.g. monitor warming up): retry later
		}
		if resp.Recommendation == broker.RecommendWait {
			j.WaitAnswers++
			q.cfg.Obs.Counter("jobqueue.waits.total").Inc()
			if q.cfg.MaxAttempts > 0 && j.Attempts >= q.cfg.MaxAttempts {
				j.State = StateFailed
				j.Err = fmt.Errorf("jobqueue: gave up after %d wait answers", j.WaitAnswers)
				j.Finished = now
				q.pending = q.pending[1:]
				delete(q.specs, j.ID)
				q.mu.Unlock()
				q.cfg.Obs.Counter("jobqueue.failed.total").Inc()
				continue
			}
			q.mu.Unlock()
			return resp, true // cluster busy: the head keeps its place
		}
		// Launch.
		j.State = StateRunning
		j.Started = now
		j.Response = resp
		waited := now.Sub(j.Submitted)
		q.pending = q.pending[1:]
		delete(q.specs, j.ID)
		q.running++
		q.mu.Unlock()
		q.cfg.Obs.Counter("jobqueue.launched.total").Inc()
		q.cfg.Obs.Histogram("jobqueue.wait.seconds").Observe(waited.Seconds())

		id := j.ID
		done := func(runErr error) { q.finish(id, runErr) }
		if err := spec.Start(id, resp, done); err != nil {
			q.finish(id, err)
		}
	}
}

// backfillPass tries to start jobs behind a waiting head without
// delaying it: EASY backfill over the broker's monitoring snapshot.
//
// The head's reserved start is estimated as the later of the broker's
// load-decay ETA (Response.EarliestStart) and the time enough running
// walltimed jobs will have released the head's process count. A
// candidate launches only if it has a walltime estimate, fits in the
// currently idle slots, and finishes before the reserved start. Once any
// queued job has waited past AgingBound, backfill stops entirely until
// the queue drains past it — the no-starvation guarantee.
//
// At the end of the pass (when the head is still waiting) its claim is
// shadow-reserved through the ReservingPolicy until the next scheduling
// tick, so broker clients outside the queue price the pending head into
// their own allocations. The claim is deliberately NOT live while the
// pass prices its own candidates: a backfill admission is a reservation
// in time — the candidate ends before the head starts — so charging the
// head's claim into candidate placement would only flatten Equation 1
// (every node inflated, utilization saturated) and scatter candidates
// onto the nodes of running jobs, delaying the very releases the head
// is waiting for.
//
// Candidates launch with Force set: the queue has already done capacity
// admission against idle slots, which is exactly the information the
// broker's whole-cluster wait heuristic cannot see (a cluster half-busy
// running the long job reads as loaded even though the other half is
// idle).
func (q *Queue) backfillPass(now time.Time, headResp broker.Response) {
	q.mu.Lock()
	if q.backfilling || len(q.pending) < 2 {
		q.mu.Unlock()
		return
	}
	head := q.pending[0]
	headWait := now.Sub(head.Submitted)
	headProcs := q.specs[head.ID].Request.Procs
	aging := q.cfg.AgingBound
	if headWait >= aging {
		// The head itself has aged out: nothing may overtake it.
		q.mu.Unlock()
		q.cfg.Obs.Counter("jobqueue.backfill.aging_barrier.total").Inc()
		return
	}
	q.backfilling = true
	q.mu.Unlock()
	defer func() {
		q.mu.Lock()
		q.backfilling = false
		q.mu.Unlock()
	}()

	snap, err := q.b.Snapshot()
	if err != nil {
		return // no monitoring view: nothing safe to admit
	}
	// Price capacity the way the allocator will see it: with every live
	// reservation (just-granted allocations the load means have not
	// caught up with) already charged.
	if q.cfg.Reserve != nil {
		snap = q.cfg.Reserve.Charged(snap)
	}
	free := alloc.FreeSlots(snap)
	headStart := q.headStartEstimate(now, headResp, headProcs, free)

	// Re-arm the head's shadow reservation once the pass is over, if the
	// head is still waiting then. The claim is not subtracted from the
	// admission budget either — the head cannot start now (that is why it
	// is waiting), so until its reserved start the idle slots are exactly
	// what backfill may use.
	if q.cfg.Reserve != nil && headProcs > 0 {
		claim := shadowClaim(snap, headProcs)
		defer func() {
			q.mu.Lock()
			if len(q.pending) > 0 && q.pending[0] == head && q.headShadow == nil {
				q.headShadow = q.cfg.Reserve.Reserve(claim, q.rt.Now())
			}
			q.mu.Unlock()
		}()
	}

	attempted := make(map[int]bool)
	for {
		q.mu.Lock()
		if len(q.pending) == 0 || q.pending[0] != head {
			// The head launched (or failed) mid-pass: every estimate this
			// pass is built on is stale. The next scheduling tick re-plans.
			q.mu.Unlock()
			return
		}
		var cand *Job
		var spec Spec
		var overtook time.Duration
		maxWaitAhead := headWait
		barrier := false
		for _, j := range q.pending[1:] {
			if w := now.Sub(j.Submitted); w > maxWaitAhead {
				maxWaitAhead = w
			}
			if maxWaitAhead >= aging {
				barrier = true
				break
			}
			if attempted[j.ID] || j.Walltime <= 0 {
				continue
			}
			s := q.specs[j.ID]
			if s.Request.Procs > free || now.Add(j.Walltime).After(headStart) {
				continue
			}
			cand, spec, overtook = j, s, maxWaitAhead
			break
		}
		q.mu.Unlock()
		if barrier {
			q.cfg.Obs.Counter("jobqueue.backfill.aging_barrier.total").Inc()
		}
		if cand == nil {
			return
		}
		attempted[cand.ID] = true
		q.cfg.Obs.Counter("jobqueue.backfill.candidates.total").Inc()

		// The queue has done the capacity admission; Force bypasses only
		// the broker's whole-cluster wait heuristic.
		req := spec.Request
		req.Force = true
		resp, err := q.b.Allocate(req)

		q.mu.Lock()
		if len(q.pending) == 0 || q.pending[0] != head {
			q.mu.Unlock()
			return
		}
		cand.Attempts++
		if err != nil || resp.Recommendation != broker.RecommendAllocate {
			q.mu.Unlock()
			continue // this candidate failed; others may still fit
		}
		idx := -1
		for i, j := range q.pending {
			if j == cand {
				idx = i
				break
			}
		}
		if idx <= 0 || cand.State != StatePending {
			q.mu.Unlock()
			continue // launched or failed concurrently; drop the grant
		}
		cand.State = StateRunning
		cand.Started = now
		cand.Response = resp
		cand.Backfilled = true
		cand.ReservedStart = headStart
		cand.OvertookMaxWait = overtook
		waited := now.Sub(cand.Submitted)
		q.pending = append(q.pending[:idx], q.pending[idx+1:]...)
		delete(q.specs, cand.ID)
		q.running++
		free -= req.Procs
		q.mu.Unlock()

		q.cfg.Obs.Counter("jobqueue.launched.total").Inc()
		q.cfg.Obs.Counter("jobqueue.backfill.launched.total").Inc()
		q.cfg.Obs.Histogram("jobqueue.wait.seconds").Observe(waited.Seconds())
		q.cfg.Obs.Histogram("jobqueue.backfill.wait.seconds").Observe(waited.Seconds())
		q.cfg.Obs.Emit(now, "jobqueue.backfill",
			fmt.Sprintf("job %d %q (%d procs, walltime %v) backfilled ahead of job %d (reserved start %v)",
				cand.ID, cand.Name, req.Procs, cand.Walltime, head.ID, headStart.Sub(now)))

		id := cand.ID
		done := func(runErr error) { q.finish(id, runErr) }
		if err := spec.Start(id, resp, done); err != nil {
			q.finish(id, err)
		}
	}
}

// headStartEstimate is the head job's reserved start: the later of the
// broker's load-decay ETA and the capacity-release time — when enough
// running walltimed jobs will have ended to free the head's process
// count. Running jobs without a walltime release at an unknown time, so
// when the declared releases cannot cover the head the estimate falls
// back to the aging bound (the latest moment backfill may plan against:
// past it the barrier stops backfill anyway).
func (q *Queue) headStartEstimate(now time.Time, headResp broker.Response, headProcs, free int) time.Time {
	est := headResp.EarliestStart
	if est.IsZero() {
		est = now.Add(time.Second)
	}
	if free >= headProcs {
		// Capacity is already there; the wait is load-driven only.
		return est
	}
	type release struct {
		at    time.Time
		procs int
		id    int
	}
	var rels []release
	q.mu.Lock()
	for _, j := range q.jobs {
		if j.State == StateRunning && j.Walltime > 0 {
			rels = append(rels, release{j.Started.Add(j.Walltime), totalProcs(j.Response), j.ID})
		}
	}
	q.mu.Unlock()
	sort.Slice(rels, func(i, k int) bool {
		if !rels[i].at.Equal(rels[k].at) {
			return rels[i].at.Before(rels[k].at)
		}
		return rels[i].id < rels[k].id
	})
	capETA := time.Time{}
	acc := free
	for _, r := range rels {
		acc += r.procs
		if acc >= headProcs {
			capETA = r.at
			break
		}
	}
	if capETA.IsZero() {
		capETA = now.Add(q.cfg.AgingBound)
	}
	if capETA.After(est) {
		est = capETA
	}
	return est
}

// shadowClaim spreads the head's process count evenly over the live
// nodes (remainder on the lowest IDs). The head's reservation is a claim
// in TIME — every backfill admission finishes before its reserved start
// by construction — so the claim must not distort *where* backfills
// land: an uneven claim (say, on the emptiest nodes) would push backfill
// allocations onto the nodes running jobs and slow the very releases the
// head is waiting for. The even spread keeps relative node ordering
// intact while making the pending head's capacity visible, through the
// reserving policy, to broker clients outside the queue.
func shadowClaim(snap *metrics.Snapshot, procs int) map[int]int {
	ids := alloc.MonitoredLivehosts(snap)
	claim := make(map[int]int, len(ids))
	if len(ids) == 0 || procs <= 0 {
		return claim
	}
	sort.Ints(ids)
	base := procs / len(ids)
	rem := procs % len(ids)
	for i, id := range ids {
		n := base
		if i < rem {
			n++
		}
		if n > 0 {
			claim[id] = n
		}
	}
	return claim
}

// totalProcs sums an allocation's ranks across nodes.
func totalProcs(resp broker.Response) int {
	total := 0
	for _, n := range resp.Procs {
		total += n
	}
	return total
}

// finish records a job's completion.
func (q *Queue) finish(id int, err error) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok || j.State != StateRunning {
		q.mu.Unlock()
		return
	}
	if err != nil {
		j.State = StateFailed
		j.Err = err
	} else {
		j.State = StateDone
	}
	j.Finished = q.rt.Now()
	ran := j.Finished.Sub(j.Started)
	failed := j.State == StateFailed
	q.running--
	q.mu.Unlock()
	if failed {
		q.cfg.Obs.Counter("jobqueue.failed.total").Inc()
	} else {
		q.cfg.Obs.Counter("jobqueue.done.total").Inc()
	}
	q.cfg.Obs.Histogram("jobqueue.run.seconds").Observe(ran.Seconds())
	// A finished job may have freed the nodes the head is waiting for.
	q.tryLaunch(q.rt.Now())
}

// Job returns a snapshot of job id.
func (q *Queue) Job(id int) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Stats summarizes the queue.
type Stats struct {
	Pending    int
	Running    int
	Done       int
	Failed     int
	Backfilled int
}

// Stats returns current queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	var s Stats
	for _, j := range q.jobs {
		switch j.State {
		case StatePending:
			s.Pending++
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		}
		if j.Backfilled {
			s.Backfilled++
		}
	}
	return s
}

// Pending returns the IDs of queued jobs in order.
func (q *Queue) Pending() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]int, len(q.pending))
	for i, j := range q.pending {
		out[i] = j.ID
	}
	return out
}
