// Package jobqueue turns the broker into a small resource manager: jobs
// are submitted to a FIFO queue, and each is launched as soon as the
// broker stops recommending to wait (§6 of the paper: "If the overall
// load on the cluster is extremely high ... our tool should recommend
// waiting rather than allocating it right away"). The queue retries at a
// fixed period, preserves submission order (head-of-line), and records
// per-job lifecycle timestamps.
package jobqueue

import (
	"fmt"
	"sync"
	"time"

	"nlarm/internal/broker"
	"nlarm/internal/obs"
	"nlarm/internal/simtime"
)

// State is a queued job's lifecycle state.
type State string

const (
	// StatePending means the job is waiting for an allocation.
	StatePending State = "pending"
	// StateRunning means the job was launched and has not completed.
	StateRunning State = "running"
	// StateDone means the job's Run callback reported completion.
	StateDone State = "done"
	// StateFailed means allocation or launch failed permanently.
	StateFailed State = "failed"
)

// Spec describes a job submission.
type Spec struct {
	// Name labels the job in status output.
	Name string
	// Request is the broker request made on the job's behalf. Force is
	// ignored — the queue exists to honor wait recommendations.
	Request broker.Request
	// Start launches job `id` on the granted allocation. It must not
	// block; it reports completion by calling done (exactly once).
	Start func(id int, resp broker.Response, done func(error)) error
}

// Job is the queue's view of one submission.
type Job struct {
	ID        int
	Name      string
	State     State
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// Attempts counts allocation attempts (including wait answers).
	Attempts int
	// WaitAnswers counts attempts answered with a wait recommendation.
	WaitAnswers int
	// Err holds the failure cause for StateFailed.
	Err error
	// Response is the allocation the job ran on (valid from StateRunning).
	Response broker.Response
}

// Config tunes the queue.
type Config struct {
	// RetryPeriod is how often the queue re-attempts the head job.
	// Default 30s.
	RetryPeriod time.Duration
	// MaxAttempts fails a job after this many allocation attempts
	// (0 = unlimited).
	MaxAttempts int
	// Obs is the instrumentation registry for queue counters and the
	// queue-wait / run-time histograms. Nil disables recording.
	Obs *obs.Registry
}

// Queue is a FIFO job queue over a broker. Safe for concurrent use.
type Queue struct {
	b   *broker.Broker
	rt  simtime.Runtime
	cfg Config

	mu      sync.Mutex
	nextID  int
	pending []*Job
	jobs    map[int]*Job
	specs   map[int]Spec
	cancel  simtime.CancelFunc
	running int
}

// New builds a queue over broker b on runtime rt.
func New(b *broker.Broker, rt simtime.Runtime, cfg Config) *Queue {
	if cfg.RetryPeriod <= 0 {
		cfg.RetryPeriod = 30 * time.Second
	}
	return &Queue{
		b: b, rt: rt, cfg: cfg,
		nextID: 1,
		jobs:   make(map[int]*Job),
		specs:  make(map[int]Spec),
	}
}

// Start begins the retry loop. Starting twice is an error.
func (q *Queue) Start() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.cancel != nil {
		return fmt.Errorf("jobqueue: already started")
	}
	q.cancel = q.rt.Every(q.cfg.RetryPeriod, "jobqueue.retry", func(now time.Time) {
		q.tryLaunch(now)
	})
	return nil
}

// Stop halts the retry loop; queued jobs stay pending.
func (q *Queue) Stop() {
	q.mu.Lock()
	cancel := q.cancel
	q.cancel = nil
	q.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Submit enqueues a job and immediately attempts to launch the queue
// head. It returns the job ID.
func (q *Queue) Submit(spec Spec) (int, error) {
	if spec.Start == nil {
		return 0, fmt.Errorf("jobqueue: spec %q has no Start", spec.Name)
	}
	if spec.Request.Force {
		return 0, fmt.Errorf("jobqueue: spec %q sets Force; submit directly to the broker instead", spec.Name)
	}
	q.mu.Lock()
	id := q.nextID
	q.nextID++
	j := &Job{ID: id, Name: spec.Name, State: StatePending, Submitted: q.rt.Now()}
	q.jobs[id] = j
	q.specs[id] = spec
	q.pending = append(q.pending, j)
	q.mu.Unlock()
	q.cfg.Obs.Counter("jobqueue.submitted.total").Inc()
	q.tryLaunch(q.rt.Now())
	return id, nil
}

// tryLaunch attempts to start queued jobs in order, stopping at the first
// that must keep waiting (head-of-line ordering, like the paper's
// single-cluster FIFO assumption).
func (q *Queue) tryLaunch(now time.Time) {
	for {
		q.mu.Lock()
		if len(q.pending) == 0 {
			q.mu.Unlock()
			return
		}
		j := q.pending[0]
		spec := q.specs[j.ID]
		q.mu.Unlock()

		resp, err := q.b.Allocate(spec.Request)

		q.mu.Lock()
		// The head may have changed while we were allocating.
		if len(q.pending) == 0 || q.pending[0] != j {
			q.mu.Unlock()
			continue
		}
		j.Attempts++
		if err != nil {
			if q.cfg.MaxAttempts > 0 && j.Attempts >= q.cfg.MaxAttempts {
				j.State = StateFailed
				j.Err = err
				j.Finished = now
				q.pending = q.pending[1:]
				delete(q.specs, j.ID)
				q.mu.Unlock()
				q.cfg.Obs.Counter("jobqueue.failed.total").Inc()
				continue
			}
			q.mu.Unlock()
			return // transient (e.g. monitor warming up): retry later
		}
		if resp.Recommendation == broker.RecommendWait {
			j.WaitAnswers++
			q.cfg.Obs.Counter("jobqueue.waits.total").Inc()
			if q.cfg.MaxAttempts > 0 && j.Attempts >= q.cfg.MaxAttempts {
				j.State = StateFailed
				j.Err = fmt.Errorf("jobqueue: gave up after %d wait answers", j.WaitAnswers)
				j.Finished = now
				q.pending = q.pending[1:]
				delete(q.specs, j.ID)
				q.mu.Unlock()
				q.cfg.Obs.Counter("jobqueue.failed.total").Inc()
				continue
			}
			q.mu.Unlock()
			return // cluster busy: whole queue waits
		}
		// Launch.
		j.State = StateRunning
		j.Started = now
		j.Response = resp
		waited := now.Sub(j.Submitted)
		q.pending = q.pending[1:]
		delete(q.specs, j.ID)
		q.running++
		q.mu.Unlock()
		q.cfg.Obs.Counter("jobqueue.launched.total").Inc()
		q.cfg.Obs.Histogram("jobqueue.wait.seconds").Observe(waited.Seconds())

		id := j.ID
		done := func(runErr error) { q.finish(id, runErr) }
		if err := spec.Start(id, resp, done); err != nil {
			q.finish(id, err)
		}
	}
}

// finish records a job's completion.
func (q *Queue) finish(id int, err error) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok || j.State != StateRunning {
		q.mu.Unlock()
		return
	}
	if err != nil {
		j.State = StateFailed
		j.Err = err
	} else {
		j.State = StateDone
	}
	j.Finished = q.rt.Now()
	ran := j.Finished.Sub(j.Started)
	failed := j.State == StateFailed
	q.running--
	q.mu.Unlock()
	if failed {
		q.cfg.Obs.Counter("jobqueue.failed.total").Inc()
	} else {
		q.cfg.Obs.Counter("jobqueue.done.total").Inc()
	}
	q.cfg.Obs.Histogram("jobqueue.run.seconds").Observe(ran.Seconds())
	// A finished job may have freed the nodes the head is waiting for.
	q.tryLaunch(q.rt.Now())
}

// Job returns a snapshot of job id.
func (q *Queue) Job(id int) (Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Stats summarizes the queue.
type Stats struct {
	Pending int
	Running int
	Done    int
	Failed  int
}

// Stats returns current queue counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	var s Stats
	for _, j := range q.jobs {
		switch j.State {
		case StatePending:
			s.Pending++
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		}
	}
	return s
}

// Pending returns the IDs of queued jobs in order.
func (q *Queue) Pending() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]int, len(q.pending))
	for i, j := range q.pending {
		out[i] = j.ID
	}
	return out
}
