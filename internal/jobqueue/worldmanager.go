package jobqueue

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"nlarm/internal/apps"
	"nlarm/internal/broker"
	"nlarm/internal/metrics"
	"nlarm/internal/mpisim"
	"nlarm/internal/predict"
	"nlarm/internal/world"
)

// WorldManager implements broker.Manager on top of a Queue and the
// simulated world: submitted jobs are queued until the broker grants an
// allocation, then executed as simulated MPI jobs on the granted nodes.
// This is what turns cmd/nlarm-broker into a complete (miniature)
// resource manager.
type WorldManager struct {
	q *Queue
	w *world.World
	// snapFn, when set, supplies a monitoring snapshot at launch time so
	// each job's execution time is predicted before it runs.
	snapFn func() (*metrics.Snapshot, error)

	mu   sync.Mutex
	runs map[int]*managedRun
}

type managedRun struct {
	nodes     []int
	hostfile  []string
	predicted time.Duration
	result    *mpisim.Result
}

// NewWorldManager wires a queue to the world.
func NewWorldManager(q *Queue, w *world.World) *WorldManager {
	return &WorldManager{q: q, w: w, runs: make(map[int]*managedRun)}
}

// WithPredictions enables launch-time execution-time predictions from
// monitoring snapshots (internal/predict). Returns the manager for
// chaining.
func (m *WorldManager) WithPredictions(snapFn func() (*metrics.Snapshot, error)) *WorldManager {
	m.snapFn = snapFn
	return m
}

// buildShape constructs the workload model for a submission.
func buildShape(req broker.SubmitRequest) (*mpisim.Shape, error) {
	if req.Request.Procs <= 0 {
		return nil, fmt.Errorf("jobqueue: submission %q requests %d processes", req.Name, req.Request.Procs)
	}
	switch strings.ToLower(req.App) {
	case "minimd":
		return apps.MiniMD(apps.MiniMDParams{S: req.Size, Steps: req.Iterations}, req.Request.Procs)
	case "minife":
		return apps.MiniFE(apps.MiniFEParams{NX: req.Size, Iters: req.Iterations}, req.Request.Procs)
	case "stencil2d":
		return apps.Stencil2D(apps.Stencil2DParams{N: req.Size, Steps: req.Iterations}, req.Request.Procs)
	default:
		return nil, fmt.Errorf("jobqueue: unknown app %q (want minimd, minife or stencil2d)", req.App)
	}
}

// Submit implements broker.Manager.
func (m *WorldManager) Submit(req broker.SubmitRequest) (int, error) {
	// Validate the workload up front so bad submissions fail fast.
	if _, err := buildShape(req); err != nil {
		return 0, err
	}
	name := req.Name
	if name == "" {
		name = fmt.Sprintf("%s-%d", strings.ToLower(req.App), req.Size)
	}
	spec := Spec{
		Name:     name,
		Request:  req.Request,
		Walltime: req.Walltime,
		Priority: req.Priority,
		Start: func(queueID int, resp broker.Response, done func(error)) error {
			shape, err := buildShape(req)
			if err != nil {
				return err
			}
			rankNodes := resp.Allocation.RankNodes()
			if len(rankNodes) != shape.Ranks {
				return fmt.Errorf("jobqueue: allocation has %d rank slots, shape needs %d", len(rankNodes), shape.Ranks)
			}
			run := &managedRun{nodes: resp.Nodes, hostfile: resp.Hostfile}
			if m.snapFn != nil {
				if snap, err := m.snapFn(); err == nil {
					if est, err := predict.EstimateAllocation(snap, shape, rankNodes); err == nil {
						run.predicted = est.Elapsed
					}
				}
			}
			m.mu.Lock()
			m.runs[queueID] = run
			m.mu.Unlock()
			_, err = m.w.LaunchJob(shape, mpisim.Placement{NodeOf: rankNodes}, func(res mpisim.Result) {
				m.mu.Lock()
				run.result = &res
				m.mu.Unlock()
				if res.Failed {
					done(fmt.Errorf("jobqueue: job aborted: %s", res.FailureReason))
					return
				}
				done(nil)
			})
			return err
		},
	}
	return m.q.Submit(spec)
}

// Status implements broker.Manager.
func (m *WorldManager) Status(id int) (broker.JobInfo, bool) {
	j, ok := m.q.Job(id)
	if !ok {
		return broker.JobInfo{}, false
	}
	info := broker.JobInfo{
		ID:          j.ID,
		Name:        j.Name,
		State:       string(j.State),
		Attempts:    j.Attempts,
		WaitAnswers: j.WaitAnswers,
		Walltime:    j.Walltime,
		Priority:    j.Priority,
		Backfilled:  j.Backfilled,
	}
	if j.Err != nil {
		info.Error = j.Err.Error()
	}
	m.mu.Lock()
	if run, ok := m.runs[id]; ok {
		info.Nodes = run.nodes
		info.Hostfile = run.hostfile
		info.PredictedElapsed = run.predicted
		if run.result != nil {
			info.Elapsed = run.result.Elapsed
		}
	}
	m.mu.Unlock()
	return info, true
}

// QueueStats implements broker.Manager.
func (m *WorldManager) QueueStats() broker.QueueStats {
	s := m.q.Stats()
	return broker.QueueStats{Pending: s.Pending, Running: s.Running, Done: s.Done, Failed: s.Failed}
}
