package hostfile

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, src string) *Hostfile {
	t.Helper()
	hf, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return hf
}

func TestParseBasic(t *testing.T) {
	hf := mustParse(t, "csews1:4\ncsews2:4\n")
	if len(hf.Entries) != 2 || hf.TotalSlots() != 8 {
		t.Fatalf("parsed %+v", hf)
	}
	if hf.Entries[0].Host != "csews1" || hf.Entries[0].Slots != 4 {
		t.Fatalf("first entry %+v", hf.Entries[0])
	}
}

func TestParseBareHostMeansOneSlot(t *testing.T) {
	hf := mustParse(t, "a\nb\n")
	if hf.TotalSlots() != 2 {
		t.Fatalf("slots %d", hf.TotalSlots())
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	hf := mustParse(t, `
# my cluster
a:2   # fast node

b:3
`)
	if len(hf.Entries) != 2 || hf.TotalSlots() != 5 {
		t.Fatalf("parsed %+v", hf)
	}
}

func TestParseDuplicateHostsAccumulate(t *testing.T) {
	hf := mustParse(t, "a:2\nb:1\na:3\n")
	if len(hf.Entries) != 2 {
		t.Fatalf("entries %+v", hf.Entries)
	}
	if hf.Entries[0].Slots != 5 {
		t.Fatalf("a slots %d", hf.Entries[0].Slots)
	}
}

func TestParseErrors(t *testing.T) {
	for name, src := range map[string]string{
		"bad slots":  "a:x\n",
		"zero slots": "a:0\n",
		"neg slots":  "a:-2\n",
		"empty host": ":4\n",
	} {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	hf := mustParse(t, "a:2\nb:3\n")
	out := hf.String()
	hf2 := mustParse(t, out)
	if hf2.String() != out {
		t.Fatalf("round trip: %q vs %q", out, hf2.String())
	}
}

func TestParseLines(t *testing.T) {
	hf, err := ParseLines([]string{"csews1:4", "csews9:4"})
	if err != nil {
		t.Fatal(err)
	}
	if hf.TotalSlots() != 8 {
		t.Fatalf("slots %d", hf.TotalSlots())
	}
	if got := hf.Hosts(); len(got) != 2 || got[1] != "csews9" {
		t.Fatalf("hosts %v", got)
	}
}

func TestValidate(t *testing.T) {
	hf := mustParse(t, "a:4\nb:4\n")
	if err := hf.Validate(8, nil); err != nil {
		t.Fatal(err)
	}
	if err := hf.Validate(9, nil); err == nil {
		t.Fatal("overcommit accepted")
	}
	allowed := map[string]bool{"a": true}
	if err := hf.Validate(4, allowed); err == nil {
		t.Fatal("dead host accepted")
	}
	if err := (&Hostfile{}).Validate(1, nil); err == nil {
		t.Fatal("empty hostfile accepted")
	}
}

func TestMapRanksBlock(t *testing.T) {
	hf := mustParse(t, "a:2\nb:2\n")
	ranks, err := hf.MapRanks(3, Block)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "a", "b"}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("block mapping %v", ranks)
		}
	}
}

func TestMapRanksRoundRobin(t *testing.T) {
	hf := mustParse(t, "a:2\nb:2\n")
	ranks, err := hf.MapRanks(4, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "a", "b"}
	for i := range want {
		if ranks[i] != want[i] {
			t.Fatalf("round-robin mapping %v", ranks)
		}
	}
}

func TestMapRanksErrors(t *testing.T) {
	hf := mustParse(t, "a:1\n")
	if _, err := hf.MapRanks(2, Block); err == nil {
		t.Fatal("overcommit mapping accepted")
	}
	if _, err := hf.MapRanks(1, RankMapping(9)); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

// Property: for any valid slot configuration, both mappings produce
// exactly np ranks and never exceed any host's slots.
func TestMapRanksProperties(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 10 {
			raw = raw[:10]
		}
		hf := &Hostfile{}
		total := 0
		for i, r := range raw {
			slots := int(r%8) + 1
			hf.Entries = append(hf.Entries, Entry{Host: string(rune('a' + i)), Slots: slots})
			total += slots
		}
		for _, strat := range []RankMapping{Block, RoundRobin} {
			ranks, err := hf.MapRanks(total, strat)
			if err != nil || len(ranks) != total {
				return false
			}
			counts := map[string]int{}
			for _, h := range ranks {
				counts[h]++
			}
			for _, e := range hf.Entries {
				if counts[e.Host] != e.Slots {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
