// Package hostfile reads and writes MPI hostfiles — the interface between
// the broker and mpiexec. The paper's workflow ends with a list of
// "host:slots" lines handed to the MPI process manager; this package
// provides the parsing, validation and rank-mapping that a real launcher
// needs (MPICH/Hydra hostfile syntax: one host per line, optional
// ":slots" suffix, '#' comments).
package hostfile

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Entry is one hostfile line: a host with a slot count.
type Entry struct {
	Host  string
	Slots int
}

// Hostfile is an ordered list of entries.
type Hostfile struct {
	Entries []Entry
}

// Parse reads hostfile syntax: one "host" or "host:slots" per line,
// blank lines and '#' comments ignored. A bare host means one slot.
// Duplicate hosts accumulate slots (mpiexec semantics).
func Parse(r io.Reader) (*Hostfile, error) {
	hf := &Hostfile{}
	index := make(map[string]int)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		host := line
		slots := 1
		if i := strings.IndexByte(line, ':'); i >= 0 {
			host = strings.TrimSpace(line[:i])
			v, err := strconv.Atoi(strings.TrimSpace(line[i+1:]))
			if err != nil {
				return nil, fmt.Errorf("hostfile: line %d: bad slot count %q", lineNo, line[i+1:])
			}
			slots = v
		}
		if host == "" {
			return nil, fmt.Errorf("hostfile: line %d: empty host", lineNo)
		}
		if slots <= 0 {
			return nil, fmt.Errorf("hostfile: line %d: non-positive slots %d", lineNo, slots)
		}
		if at, ok := index[host]; ok {
			hf.Entries[at].Slots += slots
			continue
		}
		index[host] = len(hf.Entries)
		hf.Entries = append(hf.Entries, Entry{Host: host, Slots: slots})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hostfile: read: %w", err)
	}
	return hf, nil
}

// ParseLines parses broker-style "host:slots" strings.
func ParseLines(lines []string) (*Hostfile, error) {
	return Parse(strings.NewReader(strings.Join(lines, "\n")))
}

// Write renders the hostfile in "host:slots" form.
func (h *Hostfile) Write(w io.Writer) error {
	for _, e := range h.Entries {
		if _, err := fmt.Fprintf(w, "%s:%d\n", e.Host, e.Slots); err != nil {
			return err
		}
	}
	return nil
}

// String renders the hostfile as a single string.
func (h *Hostfile) String() string {
	var b strings.Builder
	_ = h.Write(&b)
	return b.String()
}

// TotalSlots returns the sum of slot counts.
func (h *Hostfile) TotalSlots() int {
	total := 0
	for _, e := range h.Entries {
		total += e.Slots
	}
	return total
}

// Hosts returns the hosts in file order.
func (h *Hostfile) Hosts() []string {
	out := make([]string, len(h.Entries))
	for i, e := range h.Entries {
		out[i] = e.Host
	}
	return out
}

// Validate checks the hostfile can run np processes and that every host
// is in the allowed set (e.g. the monitor's livehosts). allowed may be
// nil to skip the membership check.
func (h *Hostfile) Validate(np int, allowed map[string]bool) error {
	if len(h.Entries) == 0 {
		return fmt.Errorf("hostfile: empty")
	}
	if total := h.TotalSlots(); total < np {
		return fmt.Errorf("hostfile: %d slots for %d processes", total, np)
	}
	if allowed != nil {
		var bad []string
		for _, e := range h.Entries {
			if !allowed[e.Host] {
				bad = append(bad, e.Host)
			}
		}
		if len(bad) > 0 {
			sort.Strings(bad)
			return fmt.Errorf("hostfile: hosts not in the live set: %s", strings.Join(bad, ", "))
		}
	}
	return nil
}

// RankMapping strategies mirror mpiexec's process placement.
type RankMapping int

const (
	// Block fills each host's slots before moving on (mpiexec default).
	Block RankMapping = iota
	// RoundRobin deals ranks across hosts one at a time.
	RoundRobin
)

// MapRanks assigns np ranks to hosts under the given strategy. It errors
// when the hostfile has fewer than np slots.
func (h *Hostfile) MapRanks(np int, strategy RankMapping) ([]string, error) {
	if err := h.Validate(np, nil); err != nil {
		return nil, err
	}
	out := make([]string, 0, np)
	switch strategy {
	case Block:
		for _, e := range h.Entries {
			for s := 0; s < e.Slots && len(out) < np; s++ {
				out = append(out, e.Host)
			}
			if len(out) == np {
				break
			}
		}
	case RoundRobin:
		used := make([]int, len(h.Entries))
		for len(out) < np {
			progressed := false
			for i, e := range h.Entries {
				if used[i] < e.Slots {
					out = append(out, e.Host)
					used[i]++
					progressed = true
					if len(out) == np {
						break
					}
				}
			}
			if !progressed {
				return nil, fmt.Errorf("hostfile: ran out of slots at rank %d", len(out))
			}
		}
	default:
		return nil, fmt.Errorf("hostfile: unknown mapping strategy %d", strategy)
	}
	return out, nil
}
