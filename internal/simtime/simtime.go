// Package simtime provides virtual time for the cluster simulation.
//
// The reproduction runs the paper's two-day monitoring traces and all
// strong-scaling experiments in milliseconds of wall time by driving every
// periodic activity (monitor daemons, background-load steps, MPI job
// progress) from a deterministic discrete-event Scheduler. The same
// components can run against wall-clock time through RealRuntime, which is
// what the cmd/ daemons use.
package simtime

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Runtime is the time abstraction shared by the simulated and real modes.
// Components that need to act periodically depend on this interface only.
type Runtime interface {
	// Now returns the current (virtual or wall) time.
	Now() time.Time
	// Every schedules fn to run every period, first at Now()+period.
	// The returned CancelFunc stops future invocations.
	Every(period time.Duration, name string, fn func(now time.Time)) CancelFunc
	// After schedules fn to run once at Now()+d.
	After(d time.Duration, name string, fn func(now time.Time)) CancelFunc
}

// CancelFunc stops a scheduled activity. It is idempotent.
type CancelFunc func()

// event is a single scheduled callback.
type event struct {
	at     time.Time
	seq    uint64 // tie-break so equal-time events fire in schedule order
	name   string
	fn     func(now time.Time)
	period time.Duration // 0 for one-shot
	done   bool
	index  int // heap index
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Scheduler is a deterministic discrete-event scheduler. It is safe for
// concurrent scheduling, but RunUntil/Step must be called from one
// goroutine at a time. Callbacks run synchronously inside Step.
type Scheduler struct {
	mu    sync.Mutex
	now   time.Time
	seq   uint64
	queue eventQueue
}

// NewScheduler returns a scheduler whose virtual clock starts at start.
func NewScheduler(start time.Time) *Scheduler {
	return &Scheduler{now: start}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

func (s *Scheduler) schedule(at time.Time, name string, fn func(time.Time), period time.Duration) *event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scheduleLocked(at, name, fn, period)
}

// scheduleLocked is schedule with s.mu already held. Callers that derive
// the target from the current clock (After, Every) use it so the Now()
// read and the heap insert are one atomic step — with two separate lock
// acquisitions a concurrent Step could advance the clock in between and
// the event would be silently clamped to a later instant.
func (s *Scheduler) scheduleLocked(at time.Time, name string, fn func(time.Time), period time.Duration) *event {
	if at.Before(s.now) {
		at = s.now
	}
	e := &event{at: at, seq: s.seq, name: name, fn: fn, period: period}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

func (s *Scheduler) cancel(e *event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.done = true
}

// At schedules fn to run once at time at (clamped to Now if in the past).
func (s *Scheduler) At(at time.Time, name string, fn func(now time.Time)) CancelFunc {
	e := s.schedule(at, name, fn, 0)
	return func() { s.cancel(e) }
}

// After schedules fn to run once after d (a non-positive d fires at the
// current instant, after events already queued there).
func (s *Scheduler) After(d time.Duration, name string, fn func(now time.Time)) CancelFunc {
	s.mu.Lock()
	e := s.scheduleLocked(s.now.Add(d), name, fn, 0)
	s.mu.Unlock()
	return func() { s.cancel(e) }
}

// Every schedules fn to run every period, first at Now()+period.
// It panics if period <= 0.
func (s *Scheduler) Every(period time.Duration, name string, fn func(now time.Time)) CancelFunc {
	if period <= 0 {
		panic(fmt.Sprintf("simtime: Every(%v) for %q: period must be positive", period, name))
	}
	s.mu.Lock()
	e := s.scheduleLocked(s.now.Add(period), name, fn, period)
	s.mu.Unlock()
	return func() { s.cancel(e) }
}

// Step fires the single earliest pending event, advancing the virtual clock
// to its timestamp. It reports whether an event was fired.
func (s *Scheduler) Step() bool {
	for {
		s.mu.Lock()
		if len(s.queue) == 0 {
			s.mu.Unlock()
			return false
		}
		e := heap.Pop(&s.queue).(*event)
		if e.done {
			s.mu.Unlock()
			continue
		}
		s.now = e.at
		if e.period > 0 {
			// Re-push the same event object so the CancelFunc's done flag
			// keeps covering all future occurrences.
			now := e.at
			e.at = e.at.Add(e.period)
			e.seq = s.seq
			s.seq++
			heap.Push(&s.queue, e)
			fn := e.fn
			s.mu.Unlock()
			fn(now)
			return true
		}
		now := e.at
		fn := e.fn
		s.mu.Unlock()
		fn(now)
		return true
	}
}

// RunUntil fires all events with timestamps <= deadline in order and then
// advances the clock to deadline. It returns the number of events fired.
func (s *Scheduler) RunUntil(deadline time.Time) int {
	fired := 0
	for {
		s.mu.Lock()
		// Discard cancelled events at the head before peeking: a cancelled
		// event inside the deadline must not make Step fire the next LIVE
		// event, which may lie beyond the deadline (Step skips cancelled
		// entries internally and would run past the horizon).
		for len(s.queue) > 0 && s.queue[0].done {
			heap.Pop(&s.queue)
		}
		if len(s.queue) == 0 || s.queue[0].at.After(deadline) {
			if s.now.Before(deadline) {
				s.now = deadline
			}
			s.mu.Unlock()
			return fired
		}
		s.mu.Unlock()
		if s.Step() {
			fired++
		}
	}
}

// RunFor is RunUntil(Now()+d).
func (s *Scheduler) RunFor(d time.Duration) int {
	return s.RunUntil(s.Now().Add(d))
}

// Pending returns the number of live scheduled events.
func (s *Scheduler) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, e := range s.queue {
		if !e.done {
			n++
		}
	}
	return n
}

// Compile-time checks that both time sources satisfy Runtime.
var (
	_ Runtime = (*Scheduler)(nil)
	_ Runtime = (*RealRuntime)(nil)
)
