package simtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

var epoch = time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)

func TestSchedulerFiresInTimeOrder(t *testing.T) {
	s := NewScheduler(epoch)
	var order []int
	s.At(epoch.Add(3*time.Second), "c", func(time.Time) { order = append(order, 3) })
	s.At(epoch.Add(1*time.Second), "a", func(time.Time) { order = append(order, 1) })
	s.At(epoch.Add(2*time.Second), "b", func(time.Time) { order = append(order, 2) })
	s.RunUntil(epoch.Add(10 * time.Second))
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired in order %v", order)
	}
}

func TestSchedulerSameTimestampFIFO(t *testing.T) {
	s := NewScheduler(epoch)
	var order []string
	at := epoch.Add(time.Second)
	s.At(at, "first", func(time.Time) { order = append(order, "first") })
	s.At(at, "second", func(time.Time) { order = append(order, "second") })
	s.RunUntil(at)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("same-time events fired as %v", order)
	}
}

func TestSchedulerClockAdvancesToEvent(t *testing.T) {
	s := NewScheduler(epoch)
	var sawNow time.Time
	s.After(5*time.Second, "x", func(now time.Time) { sawNow = now })
	s.RunUntil(epoch.Add(time.Minute))
	want := epoch.Add(5 * time.Second)
	if !sawNow.Equal(want) {
		t.Fatalf("callback saw now=%v, want %v", sawNow, want)
	}
	if !s.Now().Equal(epoch.Add(time.Minute)) {
		t.Fatalf("RunUntil left clock at %v", s.Now())
	}
}

func TestSchedulerEvery(t *testing.T) {
	s := NewScheduler(epoch)
	count := 0
	s.Every(time.Second, "tick", func(time.Time) { count++ })
	s.RunUntil(epoch.Add(10 * time.Second))
	if count != 10 {
		t.Fatalf("10s of 1s ticks fired %d times", count)
	}
}

func TestSchedulerEveryCancelStopsFutureTicks(t *testing.T) {
	s := NewScheduler(epoch)
	count := 0
	var cancel CancelFunc
	cancel = s.Every(time.Second, "tick", func(time.Time) {
		count++
		if count == 3 {
			cancel()
		}
	})
	s.RunUntil(epoch.Add(time.Minute))
	if count != 3 {
		t.Fatalf("cancelled periodic fired %d times, want 3", count)
	}
}

func TestSchedulerCancelOneShot(t *testing.T) {
	s := NewScheduler(epoch)
	fired := false
	cancel := s.After(time.Second, "x", func(time.Time) { fired = true })
	cancel()
	cancel() // idempotent
	s.RunUntil(epoch.Add(time.Minute))
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestSchedulerEveryPanicsOnBadPeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewScheduler(epoch).Every(0, "bad", func(time.Time) {})
}

func TestSchedulerPastEventClampedToNow(t *testing.T) {
	s := NewScheduler(epoch)
	fired := false
	s.At(epoch.Add(-time.Hour), "past", func(time.Time) { fired = true })
	s.Step()
	if !fired {
		t.Fatal("past-scheduled event did not fire")
	}
	if s.Now().Before(epoch) {
		t.Fatal("clock moved backwards")
	}
}

func TestSchedulerRunUntilReturnsCount(t *testing.T) {
	s := NewScheduler(epoch)
	for i := 1; i <= 5; i++ {
		s.After(time.Duration(i)*time.Second, "e", func(time.Time) {})
	}
	if n := s.RunUntil(epoch.Add(3 * time.Second)); n != 3 {
		t.Fatalf("RunUntil fired %d events, want 3", n)
	}
	if n := s.RunUntil(epoch.Add(10 * time.Second)); n != 2 {
		t.Fatalf("second RunUntil fired %d events, want 2", n)
	}
}

func TestSchedulerStepEmptyQueue(t *testing.T) {
	s := NewScheduler(epoch)
	if s.Step() {
		t.Fatal("Step on empty queue reported an event")
	}
}

func TestSchedulerPending(t *testing.T) {
	s := NewScheduler(epoch)
	c1 := s.After(time.Second, "a", func(time.Time) {})
	s.After(2*time.Second, "b", func(time.Time) {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	c1()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending after cancel = %d, want 1", got)
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(epoch)
	var fired []string
	s.After(time.Second, "outer", func(now time.Time) {
		fired = append(fired, "outer")
		s.After(time.Second, "inner", func(time.Time) {
			fired = append(fired, "inner")
		})
	})
	s.RunUntil(epoch.Add(5 * time.Second))
	if len(fired) != 2 || fired[1] != "inner" {
		t.Fatalf("nested scheduling fired %v", fired)
	}
}

func TestSchedulerConcurrentScheduling(t *testing.T) {
	s := NewScheduler(epoch)
	var wg sync.WaitGroup
	var count int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.After(time.Duration(i+1)*time.Millisecond, "c", func(time.Time) {
					atomic.AddInt64(&count, 1)
				})
			}
		}(g)
	}
	wg.Wait()
	s.RunUntil(epoch.Add(time.Second))
	if count != 800 {
		t.Fatalf("fired %d of 800 concurrent events", count)
	}
}

func TestRealRuntimeEveryAndCancel(t *testing.T) {
	rt := NewRealRuntime()
	defer rt.Close()
	var count int64
	cancel := rt.Every(5*time.Millisecond, "tick", func(time.Time) {
		atomic.AddInt64(&count, 1)
	})
	deadline := time.Now().Add(2 * time.Second)
	for atomic.LoadInt64(&count) < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if atomic.LoadInt64(&count) < 3 {
		t.Fatal("real ticker did not fire")
	}
	cancel()
	settled := atomic.LoadInt64(&count)
	time.Sleep(30 * time.Millisecond)
	if late := atomic.LoadInt64(&count) - settled; late > 1 {
		t.Fatalf("%d ticks after cancel", late)
	}
}

func TestRealRuntimeAfter(t *testing.T) {
	rt := NewRealRuntime()
	defer rt.Close()
	done := make(chan struct{})
	rt.After(time.Millisecond, "once", func(time.Time) { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("After never fired")
	}
}

func TestRealRuntimeCloseStopsAll(t *testing.T) {
	rt := NewRealRuntime()
	var count int64
	rt.Every(time.Millisecond, "tick", func(time.Time) { atomic.AddInt64(&count, 1) })
	time.Sleep(10 * time.Millisecond)
	rt.Close()
	settled := atomic.LoadInt64(&count)
	time.Sleep(20 * time.Millisecond)
	if late := atomic.LoadInt64(&count) - settled; late > 1 {
		t.Fatalf("%d ticks after Close", late)
	}
	// Post-close registrations are inert.
	cancel := rt.Every(time.Millisecond, "dead", func(time.Time) { t.Error("fired after close") })
	cancel()
	time.Sleep(5 * time.Millisecond)
}

// TestRunUntilCancelledHeadRespectsDeadline is a regression test for the
// event-loop wiring (PR 7): with a cancelled event inside the deadline at
// the head of the queue, RunUntil used to peek the cancelled entry, call
// Step, and fire the next LIVE event even when it lay beyond the deadline
// — advancing the virtual clock past the requested horizon.
func TestRunUntilCancelledHeadRespectsDeadline(t *testing.T) {
	s := NewScheduler(epoch)
	cancel := s.At(epoch.Add(10*time.Second), "cancelled", func(time.Time) {
		t.Fatal("cancelled event fired")
	})
	lateFired := false
	s.At(epoch.Add(30*time.Second), "late", func(time.Time) { lateFired = true })
	cancel()
	if fired := s.RunUntil(epoch.Add(20 * time.Second)); fired != 0 {
		t.Fatalf("RunUntil fired %d events, want 0", fired)
	}
	if lateFired {
		t.Fatal("event beyond the deadline fired")
	}
	if want := epoch.Add(20 * time.Second); !s.Now().Equal(want) {
		t.Fatalf("clock at %v, want %v", s.Now(), want)
	}
	// The late event is still pending and fires once the horizon reaches it.
	s.RunUntil(epoch.Add(40 * time.Second))
	if !lateFired {
		t.Fatal("late event lost")
	}
}

// TestAfterZeroDurationFiresInScheduleOrder pins the zero-duration timer
// semantics the sim event loop relies on: an After(0) fires at the
// current instant but AFTER events already queued there, and a zero-delay
// event scheduled from inside a callback fires after every previously
// scheduled same-instant event (schedule order, never reordered).
func TestAfterZeroDurationFiresInScheduleOrder(t *testing.T) {
	s := NewScheduler(epoch)
	var order []string
	s.After(0, "a", func(time.Time) {
		order = append(order, "a")
		s.After(0, "nested", func(time.Time) { order = append(order, "nested") })
	})
	s.After(0, "b", func(time.Time) { order = append(order, "b") })
	s.After(-time.Second, "clamped", func(now time.Time) {
		if !now.Equal(epoch) {
			t.Fatalf("negative After fired at %v, want clamp to %v", now, epoch)
		}
		order = append(order, "clamped")
	})
	s.RunUntil(epoch)
	want := []string{"a", "b", "clamped", "nested"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if !s.Now().Equal(epoch) {
		t.Fatalf("zero-duration events moved the clock to %v", s.Now())
	}
}

// TestEveryCancelInsideCallback verifies that a periodic activity
// cancelling itself from its own callback stops immediately: the
// occurrence re-pushed before the callback ran must be dropped.
func TestEveryCancelInsideCallback(t *testing.T) {
	s := NewScheduler(epoch)
	fires := 0
	var cancel CancelFunc
	cancel = s.Every(time.Second, "self-stop", func(time.Time) {
		fires++
		if fires == 2 {
			cancel()
		}
	})
	s.RunUntil(epoch.Add(time.Minute))
	if fires != 2 {
		t.Fatalf("self-cancelled ticker fired %d times, want 2", fires)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("%d events still pending after self-cancel", got)
	}
}

// TestAfterSchedulesAtomically exercises the single-lock After path under
// the race detector: concurrent schedulers and a stepping driver must
// never deliver a callback with a now before the scheduler's start.
func TestAfterSchedulesAtomically(t *testing.T) {
	s := NewScheduler(epoch)
	var wg sync.WaitGroup
	var bad atomic.Int32
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.After(time.Duration(i)*time.Millisecond, "conc", func(now time.Time) {
					if now.Before(epoch) {
						bad.Add(1)
					}
				})
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s.Step()
		}
	}()
	wg.Wait()
	<-done
	s.RunUntil(epoch.Add(time.Second))
	if bad.Load() != 0 {
		t.Fatalf("%d callbacks saw a pre-start now", bad.Load())
	}
}
