package simtime

import (
	"sync"
	"time"
)

// RealRuntime implements Runtime against the wall clock using goroutines
// and time.Ticker. It is used by the standalone cmd/ daemons; simulations
// use Scheduler instead.
type RealRuntime struct {
	mu      sync.Mutex
	stopped bool
	cancels []CancelFunc
}

// NewRealRuntime returns a wall-clock runtime.
func NewRealRuntime() *RealRuntime { return &RealRuntime{} }

// Now returns the wall-clock time.
func (r *RealRuntime) Now() time.Time { return time.Now() }

// track registers a stop channel and returns an idempotent cancel for it,
// or (nil, noop) if the runtime is already closed.
func (r *RealRuntime) track() (stop chan struct{}, cancel CancelFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return nil, func() {}
	}
	stop = make(chan struct{})
	var once sync.Once
	cancel = func() { once.Do(func() { close(stop) }) }
	r.cancels = append(r.cancels, cancel)
	return stop, cancel
}

// Every runs fn every period on its own goroutine until cancelled.
func (r *RealRuntime) Every(period time.Duration, name string, fn func(now time.Time)) CancelFunc {
	stop, cancel := r.track()
	if stop == nil {
		return cancel
	}
	go func() {
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				fn(now)
			case <-stop:
				return
			}
		}
	}()
	return cancel
}

// After runs fn once after d on its own goroutine unless cancelled.
func (r *RealRuntime) After(d time.Duration, name string, fn func(now time.Time)) CancelFunc {
	stop, cancel := r.track()
	if stop == nil {
		return cancel
	}
	go func() {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case now := <-t.C:
			fn(now)
		case <-stop:
		}
	}()
	return cancel
}

// Close cancels all outstanding activities started through this runtime.
func (r *RealRuntime) Close() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	cancels := r.cancels
	r.cancels = nil
	r.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}
