package apps

import (
	"math"
	"testing"
	"time"

	"nlarm/internal/mpisim"
)

// flatEnv mirrors the mpisim test environment for app-level checks.
type flatEnv struct {
	bwBps   float64
	latency time.Duration
	bgLoad  float64
}

func (e flatEnv) NodeCores(int) int                         { return 12 }
func (e flatEnv) NodeFreqGHz(int) float64                   { return 4.6 }
func (e flatEnv) NodeBackgroundLoad(int, int) float64       { return e.bgLoad }
func (e flatEnv) AvailBandwidthBps(u, v int, _ int) float64 { return e.bwBps }
func (e flatEnv) Latency(u, v int) time.Duration            { return e.latency }

func idle() flatEnv {
	return flatEnv{bwBps: 110e6, latency: 130 * time.Microsecond}
}

func run(t *testing.T, shape *mpisim.Shape, nodes []int, ppn int, env mpisim.Env) mpisim.Result {
	t.Helper()
	place, err := mpisim.NewPlacement(shape.Ranks, nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	j, err := mpisim.NewJob(1, shape, place, time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	for done := false; !done; {
		_, done = j.Advance(env, time.Minute)
	}
	return j.Result()
}

func TestMiniMDAtomCounts(t *testing.T) {
	// Paper: s=8 -> 2K atoms, s=48 -> 442K atoms.
	if got := (MiniMDParams{S: 8}).Atoms(); got != 2048 {
		t.Fatalf("s=8 atoms = %d", got)
	}
	if got := (MiniMDParams{S: 48}).Atoms(); got != 442368 {
		t.Fatalf("s=48 atoms = %d", got)
	}
}

func TestMiniFERows(t *testing.T) {
	if got := (MiniFEParams{NX: 48}).Rows(); got != 48*48*48 {
		t.Fatalf("nx=48 rows = %d", got)
	}
	if got := (MiniFEParams{NX: 10, NY: 20, NZ: 30}).Rows(); got != 6000 {
		t.Fatalf("explicit dims rows = %d", got)
	}
}

func TestMiniMDShapeStructure(t *testing.T) {
	s, err := MiniMD(MiniMDParams{S: 16}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ranks != 32 || s.Iterations != 100 {
		t.Fatalf("shape %+v", s)
	}
	if len(s.P2P) == 0 {
		t.Fatal("no halo pattern")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMiniMDErrors(t *testing.T) {
	if _, err := MiniMD(MiniMDParams{S: 0}, 8); err == nil {
		t.Fatal("s=0 accepted")
	}
	if _, err := MiniMD(MiniMDParams{S: 8, Steps: -1}, 8); err == nil {
		t.Fatal("negative steps accepted")
	}
	if _, err := MiniMD(MiniMDParams{S: 8}, 0); err == nil {
		t.Fatal("0 ranks accepted")
	}
}

func TestMiniFEErrors(t *testing.T) {
	if _, err := MiniFE(MiniFEParams{NX: 0}, 8); err == nil {
		t.Fatal("nx=0 accepted")
	}
	if _, err := MiniFE(MiniFEParams{NX: 48, Iters: -1}, 8); err == nil {
		t.Fatal("negative iters accepted")
	}
}

func TestMiniMDCommFractionInPaperRange(t *testing.T) {
	// Paper: miniMD spends 40-80% of time communicating. Check a middle
	// configuration on an idle cluster.
	s, err := MiniMD(MiniMDParams{S: 16}, 32)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, s, []int{0, 1, 2, 3, 4, 5, 6, 7}, 4, idle())
	f := res.CommFraction()
	if f < 0.25 || f > 0.9 {
		t.Fatalf("miniMD comm fraction %.0f%%, paper range 40-80%%", f*100)
	}
}

func TestCommFractionsInPaperRegime(t *testing.T) {
	// Paper §5: on the live (loaded) cluster miniMD spends 40-80% of its
	// time communicating and miniFE 25-60%. Reproduce the measurement on
	// a loaded environment (inflated latency, reduced bandwidth).
	loaded := flatEnv{bwBps: 40e6, latency: 600 * time.Microsecond}
	md, _ := MiniMD(MiniMDParams{S: 16}, 48)
	fe, _ := MiniFE(MiniFEParams{NX: 144}, 48)
	nodes := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	mdRes := run(t, md, nodes, 4, loaded)
	feRes := run(t, fe, nodes, 4, loaded)
	if f := mdRes.CommFraction(); f < 0.4 || f > 0.9 {
		t.Fatalf("miniMD comm fraction %.0f%%, paper range 40-80%%", f*100)
	}
	if f := feRes.CommFraction(); f < 0.2 || f > 0.7 {
		t.Fatalf("miniFE comm fraction %.0f%%, paper range 25-60%%", f*100)
	}
}

func TestMiniMDStrongScalingReducesComputeTime(t *testing.T) {
	// More processes -> less compute per rank -> shorter compute phase.
	small, _ := MiniMD(MiniMDParams{S: 32}, 8)
	large, _ := MiniMD(MiniMDParams{S: 32}, 64)
	res8 := run(t, small, []int{0, 1}, 4, idle())
	res64 := run(t, large, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}, 4, idle())
	if res64.ComputeTime >= res8.ComputeTime {
		t.Fatalf("compute did not shrink with scale: %v -> %v", res8.ComputeTime, res64.ComputeTime)
	}
}

func TestMiniMDProblemSizeScalesTime(t *testing.T) {
	small, _ := MiniMD(MiniMDParams{S: 8}, 8)
	big, _ := MiniMD(MiniMDParams{S: 32}, 8)
	nodes := []int{0, 1}
	ts := run(t, small, nodes, 4, idle())
	tb := run(t, big, nodes, 4, idle())
	// 64x more atoms must cost much more time.
	if tb.Elapsed < ts.Elapsed*8 {
		t.Fatalf("s=8: %v, s=32: %v — size barely matters", ts.Elapsed, tb.Elapsed)
	}
}

func TestMiniAppsDegradeUnderBadNetwork(t *testing.T) {
	congested := flatEnv{bwBps: 10e6, latency: 2 * time.Millisecond}
	for name, mk := range map[string]func() (*mpisim.Shape, error){
		"miniMD": func() (*mpisim.Shape, error) { return MiniMD(MiniMDParams{S: 16}, 16) },
		"miniFE": func() (*mpisim.Shape, error) { return MiniFE(MiniFEParams{NX: 96}, 16) },
	} {
		sGood, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		sBad, _ := mk()
		nodes := []int{0, 1, 2, 3}
		good := run(t, sGood, nodes, 4, idle())
		bad := run(t, sBad, nodes, 4, congested)
		if bad.Elapsed < good.Elapsed*2 {
			t.Fatalf("%s: congestion barely hurts: %v -> %v", name, good.Elapsed, bad.Elapsed)
		}
	}
}

func TestSuggestAlphaBeta(t *testing.T) {
	cases := []struct {
		comm        float64
		alpha, beta float64
	}{
		{0.7, 0.3, 0.7}, // miniMD regime
		{0.6, 0.4, 0.6}, // miniFE regime
		{0.0, 0.9, 0.1}, // pure compute still keeps some β
		{1.0, 0.1, 0.9}, // pure comm keeps some α
		{-1, 0.9, 0.1},  // clamped
		{2, 0.1, 0.9},   // clamped
	}
	for _, c := range cases {
		a, b := SuggestAlphaBeta(c.comm)
		if math.Abs(a-c.alpha) > 1e-9 || math.Abs(b-c.beta) > 1e-9 {
			t.Errorf("SuggestAlphaBeta(%g) = %g/%g, want %g/%g", c.comm, a, b, c.alpha, c.beta)
		}
		if math.Abs(a+b-1) > 1e-9 {
			t.Errorf("α+β = %g", a+b)
		}
	}
}

func TestPaperAlphaBeta(t *testing.T) {
	a, b := PaperAlphaBetaMiniMD()
	if a != 0.3 || b != 0.7 {
		t.Fatalf("miniMD α/β = %g/%g", a, b)
	}
	a, b = PaperAlphaBetaMiniFE()
	if a != 0.4 || b != 0.6 {
		t.Fatalf("miniFE α/β = %g/%g", a, b)
	}
}

func TestStencil2DShape(t *testing.T) {
	s, err := Stencil2D(Stencil2DParams{N: 1024}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ranks != 16 || s.Iterations != 500 {
		t.Fatalf("shape %+v", s)
	}
	// 4x4 grid: 24 edge-adjacent pairs.
	if len(s.P2P) != 24 {
		t.Fatalf("stencil pairs %d, want 24", len(s.P2P))
	}
	if len(s.Collectives) != 1 || s.Collectives[0].Kind != mpisim.Allreduce {
		t.Fatalf("collectives %+v", s.Collectives)
	}
}

func TestStencil2DErrors(t *testing.T) {
	if _, err := Stencil2D(Stencil2DParams{N: 0}, 4); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := Stencil2D(Stencil2DParams{N: 64, Steps: -1}, 4); err == nil {
		t.Fatal("negative steps accepted")
	}
	if _, err := Stencil2D(Stencil2DParams{N: 64}, 0); err == nil {
		t.Fatal("zero ranks accepted")
	}
}

func TestStencil2DRuns(t *testing.T) {
	s, err := Stencil2D(Stencil2DParams{N: 512, Steps: 50}, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, s, []int{0, 1}, 4, idle())
	if res.Elapsed <= 0 {
		t.Fatalf("result %+v", res)
	}
	// Latency-sensitive: a high-latency environment must hurt.
	s2, _ := Stencil2D(Stencil2DParams{N: 512, Steps: 50}, 8)
	slow := flatEnv{bwBps: 100e6, latency: 3 * time.Millisecond}
	res2 := run(t, s2, []int{0, 1}, 4, slow)
	if res2.Elapsed < res.Elapsed*2 {
		t.Fatalf("latency insensitivity: %v vs %v", res.Elapsed, res2.Elapsed)
	}
}
