// Package apps models the two Mantevo mini-applications the paper
// evaluates with — miniMD (molecular dynamics, spatial decomposition) and
// miniFE (implicit finite elements, CG solver) — as mpisim shapes.
//
// The models capture what determines these codes' sensitivity to node
// allocation:
//
//   - miniMD: per-timestep force computation proportional to atoms/rank,
//     plus a six-face halo exchange whose volume scales with the subdomain
//     surface (~(atoms/rank)^(2/3)) and whose cost is latency-dominated at
//     small problem sizes — the paper measured 40-80% of time in
//     communication.
//   - miniFE: per-CG-iteration SpMV proportional to rows/rank, a surface
//     halo exchange, and two latency-bound dot-product allreduces per
//     iteration — the paper measured 25-60% communication.
//
// Constants are calibrated so simulated runs land in the paper's regime
// (seconds to tens of seconds, with the reported communication fractions
// on an idle cluster); absolute times on the authors' hardware are not
// reproducible, the scaling *shape* is.
package apps

import (
	"fmt"
	"math"

	"nlarm/internal/mpisim"
)

// RefFreqGHz is the CPU clock all compute constants are calibrated for
// (the testbed's fast nodes).
const RefFreqGHz = 4.6

// --- miniMD ----------------------------------------------------------------

// MiniMDParams selects a miniMD run. The paper varies S from 8 to 48
// (2K-442K atoms) and runs on 8-64 processes at 4 processes/node.
type MiniMDParams struct {
	// S is the problem size: the simulation box is S³ FCC unit cells with
	// 4 atoms each, so S=8 → 2,048 atoms and S=48 → 442,368 atoms,
	// matching the paper's "2K - 442K atoms".
	S int
	// Steps is the number of MD timesteps (default 100, miniMD's default).
	Steps int
}

// Atoms returns the atom count 4·S³.
func (p MiniMDParams) Atoms() int { return 4 * p.S * p.S * p.S }

const (
	// miniMDForceSecPerAtom is the per-atom per-timestep compute cost at
	// RefFreqGHz (force evaluation + neighbor maintenance on the paper's
	// lab nodes).
	miniMDForceSecPerAtom = 8e-6
	// miniMDBytesPerHaloAtom is the payload exchanged per border atom per
	// step (positions out, forces back; 3 doubles each way).
	miniMDBytesPerHaloAtom = 48
	// miniMDHaloLayers is the ghost-shell thickness in atom layers
	// (cutoff 2.8σ over an FCC lattice).
	miniMDHaloLayers = 1.7
	// miniMDMsgsPerFace is messages per face per step (position exchange
	// and reverse force communication, send+receive).
	miniMDMsgsPerFace = 4
)

// MiniMD builds the miniMD shape for the given parameters and rank count.
func MiniMD(p MiniMDParams, ranks int) (*mpisim.Shape, error) {
	if p.S <= 0 {
		return nil, fmt.Errorf("apps: miniMD size %d", p.S)
	}
	if p.Steps == 0 {
		p.Steps = 100
	}
	if p.Steps < 0 || ranks <= 0 {
		return nil, fmt.Errorf("apps: miniMD steps=%d ranks=%d", p.Steps, ranks)
	}
	atoms := float64(p.Atoms())
	perRank := atoms / float64(ranks)
	s := &mpisim.Shape{
		Name:              fmt.Sprintf("miniMD(s=%d,p=%d)", p.S, ranks),
		Ranks:             ranks,
		Iterations:        p.Steps,
		ComputeSecPerIter: miniMDForceSecPerAtom * perRank,
		RefFreqGHz:        RefFreqGHz,
		// Thermo output every few steps: one small allreduce amortized.
		CollectivesPerIter: 1,
		CollectiveBytes:    64,
		SetupSeconds:       0.2 + atoms*1e-8,
	}
	// Halo exchange across the six faces of each rank's subdomain.
	haloAtoms := miniMDHaloLayers * math.Pow(perRank, 2.0/3.0)
	bytesPerFace := haloAtoms * miniMDBytesPerHaloAtom
	mpisim.Halo3D(s, bytesPerFace, miniMDMsgsPerFace)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- miniFE ----------------------------------------------------------------

// MiniFEParams selects a miniFE run. The paper varies nx from 48 to 384
// with ny=nz=nx, on 8-48 processes at 4 processes/node.
type MiniFEParams struct {
	// NX, NY, NZ are the global element counts per dimension; zero NY/NZ
	// default to NX (the paper sets ny=nz=nx).
	NX, NY, NZ int
	// Iters is the number of CG iterations (default 200, miniFE's cap).
	Iters int
}

// Rows returns the number of unknowns (≈ element count for the
// hexahedral brick).
func (p MiniFEParams) Rows() int {
	ny, nz := p.NY, p.NZ
	if ny == 0 {
		ny = p.NX
	}
	if nz == 0 {
		nz = p.NX
	}
	return p.NX * ny * nz
}

const (
	// miniFESecPerRow is the per-row per-CG-iteration compute cost at
	// RefFreqGHz: a 27-point SpMV plus the vector updates. CG is
	// memory-bandwidth-bound on desktop nodes (~450 bytes touched per row
	// per iteration against a few GB/s of effective stream bandwidth).
	miniFESecPerRow = 120e-9
	// miniFEBytesPerFacePoint is the payload per boundary point per halo
	// exchange (one double).
	miniFEBytesPerFacePoint = 8
	// miniFEMsgsPerFace is messages per face per iteration (halo
	// send+receive).
	miniFEMsgsPerFace = 2
	// miniFESetupSecPerRow is the one-off assembly cost per row (FE
	// operator generation and matrix structure setup are comparable to a
	// few solver iterations).
	miniFESetupSecPerRow = 8e-7
)

// MiniFE builds the miniFE shape for the given parameters and rank count.
func MiniFE(p MiniFEParams, ranks int) (*mpisim.Shape, error) {
	if p.NX <= 0 {
		return nil, fmt.Errorf("apps: miniFE nx %d", p.NX)
	}
	if p.Iters == 0 {
		p.Iters = 200
	}
	if p.Iters < 0 || ranks <= 0 {
		return nil, fmt.Errorf("apps: miniFE iters=%d ranks=%d", p.Iters, ranks)
	}
	rows := float64(p.Rows())
	perRank := rows / float64(ranks)
	s := &mpisim.Shape{
		Name:              fmt.Sprintf("miniFE(nx=%d,p=%d)", p.NX, ranks),
		Ranks:             ranks,
		Iterations:        p.Iters,
		ComputeSecPerIter: miniFESecPerRow * perRank,
		RefFreqGHz:        RefFreqGHz,
		// Two dot products per CG iteration, each an 8-byte allreduce.
		CollectivesPerIter: 2,
		CollectiveBytes:    8,
		SetupSeconds:       0.1 + perRank*miniFESetupSecPerRow,
	}
	facePoints := math.Pow(perRank, 2.0/3.0)
	bytesPerFace := facePoints * miniFEBytesPerFacePoint
	mpisim.Halo3D(s, bytesPerFace, miniFEMsgsPerFace)
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- stencil2d ---------------------------------------------------------------

// Stencil2DParams selects a 2-D Jacobi heat-diffusion run — a third
// workload (beyond the paper's two) exercising the broker with a
// bandwidth-light, latency-sensitive iteration structure and a per-sweep
// residual allreduce built on the collective cost models.
type Stencil2DParams struct {
	// N is the global grid edge (N×N doubles).
	N int
	// Steps is the number of Jacobi sweeps (default 500).
	Steps int
}

const (
	// stencilSecPerPoint is the per-point per-sweep compute cost at
	// RefFreqGHz (5-point stencil, memory-bound).
	stencilSecPerPoint = 6e-9
	// stencilBytesPerEdgePoint is the halo payload per boundary point.
	stencilBytesPerEdgePoint = 8
)

// Stencil2D builds the Jacobi shape for the given parameters and ranks.
func Stencil2D(p Stencil2DParams, ranks int) (*mpisim.Shape, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("apps: stencil2d N %d", p.N)
	}
	if p.Steps == 0 {
		p.Steps = 500
	}
	if p.Steps < 0 || ranks <= 0 {
		return nil, fmt.Errorf("apps: stencil2d steps=%d ranks=%d", p.Steps, ranks)
	}
	points := float64(p.N) * float64(p.N)
	perRank := points / float64(ranks)
	s := &mpisim.Shape{
		Name:              fmt.Sprintf("stencil2d(n=%d,p=%d)", p.N, ranks),
		Ranks:             ranks,
		Iterations:        p.Steps,
		ComputeSecPerIter: stencilSecPerPoint * perRank,
		RefFreqGHz:        RefFreqGHz,
		SetupSeconds:      0.05 + perRank*2e-8,
	}
	// Each subdomain edge is ~sqrt(perRank) points.
	edgeBytes := math.Sqrt(perRank) * stencilBytesPerEdgePoint
	mpisim.Halo2D(s, edgeBytes, 2)
	// Per-sweep residual norm: one 8-byte allreduce.
	s.Collectives = []mpisim.CollectiveSpec{
		{Kind: mpisim.Allreduce, Bytes: 8, Count: 1},
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// --- Profiling-guided α/β ---------------------------------------------------

// SuggestAlphaBeta derives Equation 4's weights from a measured
// communication fraction (§5: "One may set these weights by profiling an
// application and decide the relative weights on the basis of the
// computation and communication times"). The fraction is clamped and
// quantized to a 0.1 grid with both weights kept in [0.1, 0.9], matching
// how the authors picked 0.3/0.7 (miniMD, 40-80% comm) and 0.4/0.6
// (miniFE, 25-60% comm) empirically.
func SuggestAlphaBeta(commFraction float64) (alpha, beta float64) {
	if commFraction < 0 {
		commFraction = 0
	}
	if commFraction > 1 {
		commFraction = 1
	}
	beta = math.Round(commFraction*10) / 10
	if beta < 0.1 {
		beta = 0.1
	}
	if beta > 0.9 {
		beta = 0.9
	}
	return 1 - beta, beta
}

// PaperAlphaBetaMiniMD returns the α/β the paper uses for miniMD.
func PaperAlphaBetaMiniMD() (alpha, beta float64) { return 0.3, 0.7 }

// PaperAlphaBetaMiniFE returns the α/β the paper uses for miniFE.
func PaperAlphaBetaMiniFE() (alpha, beta float64) { return 0.4, 0.6 }
