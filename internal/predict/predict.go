// Package predict estimates how long an MPI job would run on a candidate
// allocation using only the resource monitor's published data — the same
// α-β cost model the simulator executes, but driven by measured node
// attributes and pairwise bandwidth/latency instead of ground truth.
//
// This is the broker-side "what-if" that the paper's cost heuristic
// approximates implicitly: given two candidate node sets, Estimate prices
// the actual job on each, so allocations can be ranked by predicted
// execution time and predictions can later be compared against reality.
package predict

import (
	"fmt"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/mpisim"
)

// snapshotEnv adapts a monitoring snapshot to mpisim.Env: the prediction
// runs the job against frozen measured conditions.
type snapshotEnv struct {
	snap *metrics.Snapshot
}

func (e snapshotEnv) NodeCores(id int) int { return e.snap.Nodes[id].Cores }

func (e snapshotEnv) NodeFreqGHz(id int) float64 { return e.snap.Nodes[id].FreqGHz }

func (e snapshotEnv) NodeBackgroundLoad(id int, _ int) float64 {
	return e.snap.Nodes[id].CPULoad.M1
}

func (e snapshotEnv) AvailBandwidthBps(u, v int, _ int) float64 {
	if avail, _, ok := e.snap.BandwidthOf(u, v); ok {
		return avail
	}
	return 1 // unmeasured pair: pessimistic, like the allocator's pricing
}

func (e snapshotEnv) Latency(u, v int) time.Duration {
	if lat, ok := e.snap.LatencyOf(u, v); ok {
		return lat
	}
	return time.Second
}

// Estimate prices shape on placement under the snapshot's measured
// conditions and returns the projected result (total, compute and
// communication time). Every placed node must have published state.
func Estimate(snap *metrics.Snapshot, shape *mpisim.Shape, place mpisim.Placement) (mpisim.Result, error) {
	for _, n := range place.NodeOf {
		if _, ok := snap.Nodes[n]; !ok {
			return mpisim.Result{}, fmt.Errorf("predict: node %d has no published state", n)
		}
	}
	j, err := mpisim.NewJob(0, shape, place, snap.Taken)
	if err != nil {
		return mpisim.Result{}, err
	}
	env := snapshotEnv{snap: snap}
	// Conditions are frozen, so the job completes in a bounded number of
	// coarse steps (one, unless the shape is degenerate).
	const maxSteps = 1000
	for i := 0; i < maxSteps; i++ {
		if _, done := j.Advance(env, 24*time.Hour); done {
			return j.Result(), nil
		}
	}
	return mpisim.Result{}, fmt.Errorf("predict: job %q did not converge within %d steps", shape.Name, maxSteps)
}

// EstimateAllocation is Estimate over an allocation's rank slots with the
// given total rank count (block placement, as the broker hands out).
func EstimateAllocation(snap *metrics.Snapshot, shape *mpisim.Shape, rankNodes []int) (mpisim.Result, error) {
	if len(rankNodes) != shape.Ranks {
		return mpisim.Result{}, fmt.Errorf("predict: %d rank slots for %d ranks", len(rankNodes), shape.Ranks)
	}
	return Estimate(snap, shape, mpisim.Placement{NodeOf: rankNodes})
}

// Rank orders candidate allocations (given as rank-node lists) by
// predicted execution time, ascending. It returns the indices of the
// candidates in predicted order along with each prediction.
func Rank(snap *metrics.Snapshot, shape *mpisim.Shape, candidates [][]int) ([]int, []mpisim.Result, error) {
	results := make([]mpisim.Result, len(candidates))
	order := make([]int, len(candidates))
	for i, rankNodes := range candidates {
		res, err := EstimateAllocation(snap, shape, rankNodes)
		if err != nil {
			return nil, nil, fmt.Errorf("predict: candidate %d: %w", i, err)
		}
		results[i] = res
		order[i] = i
	}
	// Insertion sort by predicted elapsed (candidate lists are small).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && results[order[j]].Elapsed < results[order[j-1]].Elapsed; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order, results, nil
}
