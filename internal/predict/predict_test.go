package predict

import (
	"testing"
	"time"

	"nlarm/internal/apps"
	"nlarm/internal/metrics"
	"nlarm/internal/mpisim"
	"nlarm/internal/stats"
)

var t0 = time.Date(2020, 3, 2, 8, 0, 0, 0, time.UTC)

// snap builds a synthetic snapshot: n nodes on a line, latency and
// bandwidth degrading with distance, per-node loads given.
func snap(loads []float64) *metrics.Snapshot {
	n := len(loads)
	s := &metrics.Snapshot{
		Taken:     t0,
		Nodes:     make(map[int]metrics.NodeAttrs),
		Latency:   make(map[metrics.PairKey]metrics.PairLatency),
		Bandwidth: make(map[metrics.PairKey]metrics.PairBandwidth),
	}
	for i := 0; i < n; i++ {
		s.Livehosts = append(s.Livehosts, i)
		na := metrics.NodeAttrs{
			NodeID: i, Hostname: "n", Timestamp: t0,
			Cores: 12, FreqGHz: 4.6, TotalMemMB: 16384,
		}
		na.CPULoad = stats.Windowed{M1: loads[i], M5: loads[i], M15: loads[i]}
		s.Nodes[i] = na
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := float64(j - i)
			key := metrics.Pair(i, j)
			s.Latency[key] = metrics.PairLatency{
				U: i, V: j, Timestamp: t0,
				Mean1: time.Duration(80+100*d) * time.Microsecond,
			}
			s.Bandwidth[key] = metrics.PairBandwidth{
				U: i, V: j, Timestamp: t0,
				AvailBps: 120e6 / d,
				PeakBps:  125e6,
			}
		}
	}
	return s
}

func blockPlacement(t *testing.T, ranks int, nodes []int, ppn int) mpisim.Placement {
	t.Helper()
	p, err := mpisim.NewPlacement(ranks, nodes, ppn)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEstimateBasic(t *testing.T) {
	s := snap([]float64{0.2, 0.2, 0.2, 0.2})
	shape, err := apps.MiniMD(apps.MiniMDParams{S: 8, Steps: 50}, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Estimate(s, shape, blockPlacement(t, 8, []int{0, 1}, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 || res.CommTime <= 0 || res.ComputeTime <= 0 {
		t.Fatalf("estimate %+v", res)
	}
}

func TestEstimateSensitivities(t *testing.T) {
	shapeOf := func() *mpisim.Shape {
		sh, err := apps.MiniMD(apps.MiniMDParams{S: 16, Steps: 50}, 8)
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	// Near pair beats far pair (better latency and bandwidth).
	s := snap([]float64{0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2})
	near, err := Estimate(s, shapeOf(), blockPlacement(t, 8, []int{0, 1}, 4))
	if err != nil {
		t.Fatal(err)
	}
	far, err := Estimate(s, shapeOf(), blockPlacement(t, 8, []int{0, 7}, 4))
	if err != nil {
		t.Fatal(err)
	}
	if far.Elapsed <= near.Elapsed {
		t.Fatalf("far pair predicted faster: %v vs %v", near.Elapsed, far.Elapsed)
	}
	// Loaded nodes predicted slower than idle ones.
	loaded := snap([]float64{12, 12, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2})
	busy, err := Estimate(loaded, shapeOf(), blockPlacement(t, 8, []int{0, 1}, 4))
	if err != nil {
		t.Fatal(err)
	}
	if busy.Elapsed <= near.Elapsed {
		t.Fatalf("loaded nodes predicted faster: %v vs %v", near.Elapsed, busy.Elapsed)
	}
}

func TestEstimateUnpublishedNode(t *testing.T) {
	s := snap([]float64{0.2, 0.2})
	shape, _ := apps.MiniMD(apps.MiniMDParams{S: 8, Steps: 10}, 8)
	if _, err := Estimate(s, shape, blockPlacement(t, 8, []int{0, 9}, 4)); err == nil {
		t.Fatal("unpublished node accepted")
	}
}

func TestEstimateUnmeasuredPairIsPessimistic(t *testing.T) {
	s := snap([]float64{0.2, 0.2, 0.2})
	delete(s.Bandwidth, metrics.Pair(0, 1))
	delete(s.Latency, metrics.Pair(0, 1))
	shape, _ := apps.MiniMD(apps.MiniMDParams{S: 8, Steps: 10}, 8)
	unknown, err := Estimate(s, shape, blockPlacement(t, 8, []int{0, 1}, 4))
	if err != nil {
		t.Fatal(err)
	}
	known, err := Estimate(s, shape, blockPlacement(t, 8, []int{1, 2}, 4))
	if err != nil {
		t.Fatal(err)
	}
	if unknown.Elapsed <= known.Elapsed {
		t.Fatal("unmeasured pair not priced pessimistically")
	}
}

func TestRankOrdersCandidates(t *testing.T) {
	s := snap([]float64{0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2, 0.2})
	shape, _ := apps.MiniMD(apps.MiniMDParams{S: 16, Steps: 20}, 8)
	candidates := [][]int{
		rankNodes([]int{0, 7}, 4), // far
		rankNodes([]int{0, 1}, 4), // near: best
		rankNodes([]int{0, 4}, 4), // middle
	}
	order, results, err := Rank(s, shape, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 || order[2] != 0 {
		t.Fatalf("predicted order %v (elapsed %v %v %v)", order,
			results[0].Elapsed, results[1].Elapsed, results[2].Elapsed)
	}
}

func TestRankBadCandidate(t *testing.T) {
	s := snap([]float64{0.2, 0.2})
	shape, _ := apps.MiniMD(apps.MiniMDParams{S: 8, Steps: 10}, 8)
	if _, _, err := Rank(s, shape, [][]int{{0, 1}}); err == nil {
		t.Fatal("short candidate accepted")
	}
}

func rankNodes(nodes []int, ppn int) []int {
	var out []int
	for _, n := range nodes {
		for i := 0; i < ppn; i++ {
			out = append(out, n)
		}
	}
	return out
}
