package broker

import (
	"errors"
	"sync"
	"sync/atomic"
)

// PoolOptions tunes a connection pool.
type PoolOptions struct {
	// Size is the number of pooled connections. Default 4.
	Size int
	// Client configures each pooled connection (dial timeout, tenant,
	// per-connection in-flight cap).
	Client ClientOptions
}

func (o PoolOptions) withDefaults() PoolOptions {
	if o.Size <= 0 {
		o.Size = 4
	}
	return o
}

// Pool multiplexes callers over a fixed set of pipelined broker
// connections: requests round-robin across connections, each connection
// keeps many requests in flight, and a connection that dies (server
// restart, network blip) is redialed transparently on next use, with
// one retry for the call that found it dead. Millions of logical
// clients front a broker through a handful of pooled connections
// instead of a handful of syscalls each.
type Pool struct {
	addr string
	opts PoolOptions

	next atomic.Uint64
	mu   sync.Mutex
	conn []*Client
	done bool
}

// NewPool builds a pool dialing addr lazily: connections are opened on
// first use, so construction never blocks on the network.
func NewPool(addr string, opts PoolOptions) *Pool {
	opts = opts.withDefaults()
	return &Pool{addr: addr, opts: opts, conn: make([]*Client, opts.Size)}
}

// get returns the next connection in round-robin order, dialing or
// redialing its slot if it is absent or dead.
func (p *Pool) get() (*Client, error) {
	slot := int(p.next.Add(1) % uint64(p.opts.Size))
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return nil, errClientClosed
	}
	c := p.conn[slot]
	if c != nil && c.Alive() {
		return c, nil
	}
	if c != nil {
		_ = c.Close()
	}
	nc, err := DialOpts(p.addr, p.opts.Client)
	if err != nil {
		p.conn[slot] = nil
		return nil, err
	}
	p.conn[slot] = nc
	return nc, nil
}

// refresh replaces old (wherever it still sits in the pool) with a
// freshly dialed connection and returns it. Dialing anew — rather than
// round-robining to a neighbor — matters after a server restart: every
// other slot may be equally dead without its reader having noticed yet,
// so a retry on a neighbor would just fail again.
func (p *Pool) refresh(old *Client) (*Client, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.done {
		return nil, errClientClosed
	}
	slot := -1
	for i, c := range p.conn {
		if c == old {
			slot = i
			break
		}
	}
	_ = old.Close()
	nc, err := DialOpts(p.addr, p.opts.Client)
	if err != nil {
		if slot >= 0 {
			p.conn[slot] = nil
		}
		return nil, err
	}
	if slot >= 0 {
		p.conn[slot] = nc
	}
	return nc, nil
}

// retryable reports whether an error is a transport failure worth one
// retry on a fresh connection. Server-side answers (allocation errors,
// sheds) are returned to the caller untouched.
func retryable(err error) bool {
	return err != nil && !errors.Is(err, ErrShed) &&
		(errors.Is(err, errClientClosed) || isTransport(err))
}

// isTransport matches the client's wrapped send/recv/decode failures.
func isTransport(err error) bool {
	s := err.Error()
	for _, prefix := range []string{"broker: send: ", "broker: recv: ", "broker: decode: ", "broker: dial "} {
		if len(s) >= len(prefix) && s[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// Allocate requests an allocation over a pooled connection, retrying
// once on a fresh connection if the first died mid-call.
func (p *Pool) Allocate(req Request) (Response, error) {
	c, err := p.get()
	if err != nil {
		return Response{}, err
	}
	resp, err := c.Allocate(req)
	if retryable(err) {
		if c, rerr := p.refresh(c); rerr == nil {
			return c.Allocate(req)
		}
	}
	return resp, err
}

// Submit queues a job over a pooled connection, retrying once on a
// fresh connection if the first died mid-call. A retry can double-submit
// if the original request was applied before the connection died —
// callers that need exactly-once submission should use Client directly.
func (p *Pool) Submit(req SubmitRequest) (int, error) {
	c, err := p.get()
	if err != nil {
		return 0, err
	}
	id, err := c.Submit(req)
	if retryable(err) {
		if c, rerr := p.refresh(c); rerr == nil {
			return c.Submit(req)
		}
	}
	return id, err
}

// Health checks the server over a pooled connection.
func (p *Pool) Health() error {
	c, err := p.get()
	if err != nil {
		return err
	}
	err = c.Health()
	if retryable(err) {
		if c, rerr := p.refresh(c); rerr == nil {
			return c.Health()
		}
	}
	return err
}

// Close tears down every pooled connection; subsequent calls fail.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done = true
	var first error
	for i, c := range p.conn {
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
			p.conn[i] = nil
		}
	}
	return first
}
