package broker

import (
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"nlarm/internal/alloc"
	"nlarm/internal/cluster"
	"nlarm/internal/loadgen"
)

// shardedBroker builds a broker over r's store whose 8-node cluster is
// above the shard threshold, so every cost model takes the hierarchical
// (non-dense) representation.
func shardedBroker(t *testing.T, r *rig, cfg Config) *Broker {
	t.Helper()
	cl, err := cluster.BuildUniform(2, 4, 8, 3.0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shard = alloc.ShardOptions{
		Plan:         alloc.NewShardPlan(cl.Topo.Shards(4), "topology"),
		Threshold:    4,
		MaxShardSize: 4,
		TopK:         1,
	}
	return New(r.st, r.sched, cfg)
}

// TestShardedDecisionPricesNetworkCost is the regression for the
// decision-log pricing hole: contributions only read the dense NLUnit
// matrix, which sharded models leave empty, so every decision above the
// shard threshold reported NetworkCost 0 and all-zero per-node NL. The
// pair accessor routes through the model's own representation.
func TestShardedDecisionPricesNetworkCost(t *testing.T) {
	r := newRig(t, 5, loadgen.Config{})
	b := shardedBroker(t, r, Config{Seed: 5})
	if _, err := b.Allocate(Request{Procs: 8, PPN: 4, Alpha: 0.5, Beta: 0.5}); err != nil {
		t.Fatal(err)
	}
	recs := b.Decisions(1)
	if len(recs) != 1 {
		t.Fatalf("decisions: %d", len(recs))
	}
	rec := recs[0]
	if rec.NetworkCost <= 0 {
		t.Fatalf("sharded decision NetworkCost = %g, want > 0", rec.NetworkCost)
	}
	nlSum := 0.0
	for _, c := range rec.Contributions {
		nlSum += c.NL
	}
	if nlSum <= 0 {
		t.Fatalf("sharded decision has all-zero per-node NL: %+v", rec.Contributions)
	}
	// The endpoint-charged column sums must still reconcile with the
	// pair-once total.
	if diff := nlSum - 2*rec.NetworkCost; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("NL column sum %g != 2 x NetworkCost %g", nlSum, rec.NetworkCost)
	}
}

// TestDecisionRingEviction pins the ring contract: DecisionCount counts
// every decision ever recorded, Decisions(0) returns the retained window
// oldest first, and Decisions(limit) is the most recent limit of those.
func TestDecisionRingEviction(t *testing.T) {
	r := newRig(t, 6, loadgen.Config{})
	b := New(r.st, r.sched, Config{Seed: 6, DecisionLog: 4})
	for i := 0; i < 7; i++ {
		if _, err := b.Allocate(Request{Procs: 2, PPN: 2}); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.DecisionCount(); got != 7 {
		t.Fatalf("DecisionCount = %d, want 7 (evicted decisions must still count)", got)
	}
	recs := b.Decisions(0)
	if len(recs) != 4 {
		t.Fatalf("retained %d decisions, want ring size 4", len(recs))
	}
	for i, rec := range recs {
		if want := uint64(4 + i); rec.Seq != want {
			t.Fatalf("Decisions(0)[%d].Seq = %d, want %d (oldest first)", i, rec.Seq, want)
		}
	}
	last := b.Decisions(2)
	if len(last) != 2 || last[0].Seq != 6 || last[1].Seq != 7 {
		t.Fatalf("Decisions(2) = %v, want Seq 6,7", seqsOf(last))
	}
	if got := b.Decisions(99); len(got) != 4 {
		t.Fatalf("Decisions(99) returned %d records, want the 4 retained", len(got))
	}
}

func seqsOf(recs []DecisionRecord) []uint64 {
	out := make([]uint64, len(recs))
	for i, r := range recs {
		out[i] = r.Seq
	}
	return out
}

// TestDecisionSeqMonotonicUnderConcurrency hammers the decision ring
// from both entry points at once (run with -race): direct Allocate
// callers on many goroutines racing the batcher's dispatcher, which
// finishes batched decisions on its own goroutine. Seq assignment and
// the ring append happen under one lock, so the retained records must
// come back in strictly increasing Seq order with no gaps lost inside
// the window.
func TestDecisionSeqMonotonicUnderConcurrency(t *testing.T) {
	r := newRig(t, 7, loadgen.Config{})
	const (
		workers = 8
		perW    = 16
		batched = 32
	)
	total := workers*perW + batched
	b := New(r.st, r.sched, Config{Seed: 7, DecisionLog: total})
	bt := NewBatcher(b, nil, BatcherOptions{})
	bt.Start()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				req := Request{Procs: 2 + 2*(w%3), PPN: 2}
				if w%2 == 0 {
					req.Force = true
				}
				_, _ = b.Allocate(req)
			}
		}(w)
	}
	wg.Add(batched)
	for i := 0; i < batched; i++ {
		err := bt.EnqueueAllocate("t", Request{Procs: 2, PPN: 2, Force: i%2 == 0},
			func(Response, error) { wg.Done() })
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	bt.Close()
	recs := b.Decisions(0)
	if len(recs) != total {
		t.Fatalf("retained %d decisions, want %d", len(recs), total)
	}
	if got := b.DecisionCount(); got != uint64(total) {
		t.Fatalf("DecisionCount = %d, want %d", got, total)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("Seq not strictly increasing at %d: %d after %d", i, recs[i].Seq, recs[i-1].Seq)
		}
	}
	if recs[0].Seq != 1 || recs[len(recs)-1].Seq != uint64(total) {
		t.Fatalf("Seq window [%d, %d], want [1, %d]", recs[0].Seq, recs[len(recs)-1].Seq, total)
	}
}

// TestCounterfactualOffIsBitIdentical pins the opt-in contract: with
// CounterfactualK = 0 the broker must answer exactly as before the
// feature existed — same responses, same decision records, and no
// "counterfactuals" key in the serialized record.
func TestCounterfactualOffIsBitIdentical(t *testing.T) {
	r := newRig(t, 8, loadgen.Config{})
	plain := New(r.st, r.sched, Config{Seed: 300})
	withK := New(r.st, r.sched, Config{Seed: 300, CounterfactualK: 4})
	reqs := []Request{
		{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7},
		{Procs: 4, PPN: 2},
		{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7, UseForecast: true},
		{Procs: 6, PPN: 2, Alpha: 0.8, Beta: 0.2, Force: true},
	}
	for i, req := range reqs {
		p, errP := plain.Allocate(req)
		k, errK := withK.Allocate(req)
		if (errP == nil) != (errK == nil) {
			t.Fatalf("req %d: err %v vs %v", i, errP, errK)
		}
		k.counterfactuals = nil
		if !reflect.DeepEqual(p, k) {
			t.Fatalf("req %d: responses diverged with retention on:\nplain %+v\nwithK %+v", i, p, k)
		}
	}
	pRecs, kRecs := plain.Decisions(0), withK.Decisions(0)
	if len(pRecs) != len(kRecs) {
		t.Fatalf("decision counts diverged: %d vs %d", len(pRecs), len(kRecs))
	}
	sawCF := false
	for i := range pRecs {
		if len(pRecs[i].Counterfactuals) != 0 {
			t.Fatalf("k=0 record %d retained counterfactuals: %+v", i, pRecs[i].Counterfactuals)
		}
		if len(kRecs[i].Counterfactuals) > 0 {
			sawCF = true
		}
		k := kRecs[i]
		k.Counterfactuals = nil
		if !reflect.DeepEqual(pRecs[i], k) {
			t.Fatalf("record %d diverged beyond Counterfactuals:\nplain %+v\nwithK %+v", i, pRecs[i], k)
		}
	}
	if !sawCF {
		t.Fatal("k=4 broker never retained a counterfactual candidate")
	}
	// Serialized k=0 records must stay byte-identical to the pre-feature
	// wire format: the key is omitted, not emitted empty.
	data, err := json.Marshal(pRecs)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "counterfactuals") {
		t.Fatalf("k=0 decision JSON leaks the counterfactuals key:\n%s", data)
	}
}

// TestCounterfactualRetention pins what k>0 actually stores: at most k
// rejected candidates, none of them the winner, each priced with the
// raw CL/NL sums regret analysis re-scores.
func TestCounterfactualRetention(t *testing.T) {
	r := newRig(t, 9, loadgen.Config{})
	b := New(r.st, r.sched, Config{Seed: 9, CounterfactualK: 2})
	resp, err := b.Allocate(Request{Procs: 4, PPN: 2, Alpha: 0.5, Beta: 0.5, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := b.Decisions(1)[0]
	if len(rec.Counterfactuals) == 0 {
		t.Fatal("no counterfactuals retained")
	}
	if len(rec.Counterfactuals) > 2 {
		t.Fatalf("retained %d counterfactuals, want <= k=2", len(rec.Counterfactuals))
	}
	if len(resp.Candidates) <= 2 {
		t.Fatalf("test needs more candidates than k, got %d", len(resp.Candidates))
	}
	var chosenStart int
	for _, c := range resp.Candidates {
		if c.Chosen {
			chosenStart = c.Start
		}
	}
	for _, cf := range rec.Counterfactuals {
		if cf.Start == chosenStart {
			t.Fatalf("winner retained as its own counterfactual: %+v", cf)
		}
		if len(cf.Nodes) == 0 {
			t.Fatalf("counterfactual without nodes: %+v", cf)
		}
		if cf.ComputeCost <= 0 {
			t.Fatalf("counterfactual not priced: %+v", cf)
		}
	}
	// Retained candidates are the cheapest rejected ones by decision-time
	// normalized score, cheapest first.
	for i := 1; i < len(rec.Counterfactuals); i++ {
		if rec.Counterfactuals[i].TotalLoad < rec.Counterfactuals[i-1].TotalLoad {
			t.Fatalf("counterfactuals out of order: %+v", rec.Counterfactuals)
		}
	}
	// Serialized records carry the new fields under the documented keys.
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"counterfactuals"`, `"start"`, `"total_load"`} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("k>0 decision JSON missing %s:\n%s", key, data)
		}
	}
}

// TestTopRejectedBounds covers the selection helper directly: winner
// excluded, cheapest-by-TotalLoad first with Start as the tie-break,
// bounded at k.
func TestTopRejectedBounds(t *testing.T) {
	cands := []alloc.Candidate{
		{Start: 3, TotalLoad: 0.9},
		{Start: 1, TotalLoad: 0.2}, // winner
		{Start: 4, TotalLoad: 0.5},
		{Start: 0, TotalLoad: 0.5},
		{Start: 2, TotalLoad: 0.3},
	}
	got := alloc.TopRejected(cands, 1, 3)
	if len(got) != 3 {
		t.Fatalf("len %d, want 3", len(got))
	}
	if got[0].Start != 2 || got[1].Start != 0 || got[2].Start != 4 {
		t.Fatalf("order: %v, %v, %v", got[0].Start, got[1].Start, got[2].Start)
	}
	if alloc.TopRejected(cands, 1, 0) != nil {
		t.Fatal("k=0 must retain nothing")
	}
	if got := alloc.TopRejected(cands, 1, 99); len(got) != 4 {
		t.Fatalf("oversized k retained %d, want all 4 rejected", len(got))
	}
}
