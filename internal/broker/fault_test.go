package broker

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/cluster"
	"nlarm/internal/loadgen"
	"nlarm/internal/monitor"
	"nlarm/internal/simtime"
	"nlarm/internal/store"
	"nlarm/internal/world"
)

// faultRig is the broker test rig with a fault-injecting store between
// the monitor and the broker.
type faultRig struct {
	sched *simtime.Scheduler
	w     *world.World
	fs    *store.FaultStore
	mgr   *monitor.Manager
	b     *Broker
}

func newFaultRig(t *testing.T, seed uint64) *faultRig {
	t.Helper()
	cl, err := cluster.BuildUniform(2, 4, 8, 3.0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	sched := simtime.NewScheduler(t0)
	w := world.New(cl, world.Config{Seed: seed, StepSize: time.Second}, t0)
	w.Attach(sched)
	fs := store.NewFault(store.NewMem(), seed)
	mgr := monitor.NewManager(&monitor.WorldProber{W: w}, fs, monitor.Config{
		NodeStatePeriod: 2 * time.Second,
		LivehostsPeriod: 2 * time.Second,
		LatencyPeriod:   5 * time.Second,
		BandwidthPeriod: 10 * time.Second,
	})
	if err := mgr.Start(sched); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)
	sched.RunFor(30 * time.Second)
	return &faultRig{sched: sched, w: w, fs: fs, mgr: mgr, b: New(fs, sched, Config{Seed: seed})}
}

func TestFaultDegradedServesLastGoodOnReadFailure(t *testing.T) {
	r := newFaultRig(t, 21)
	fresh, err := r.b.Allocate(Request{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Degraded {
		t.Fatalf("healthy store produced a degraded response: %s", fresh.DegradedReason)
	}

	// Partition the livehosts prefix: the snapshot read now fails, but
	// the broker must keep answering from its last-good copy.
	r.fs.Partition(monitor.KeyLivehostsPrefix)
	resp, err := r.b.Allocate(Request{Procs: 4})
	if err != nil {
		t.Fatalf("allocation failed during partition instead of degrading: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("partitioned store served a non-degraded response")
	}
	if !strings.Contains(resp.DegradedReason, "snapshot read failed") {
		t.Fatalf("degraded reason %q", resp.DegradedReason)
	}
	if len(resp.Nodes) == 0 {
		t.Fatal("degraded response carries no nodes")
	}
	if got := r.b.DegradedServed(); got != 1 {
		t.Fatalf("DegradedServed = %d, want 1", got)
	}

	// Healing restores fresh service.
	r.fs.HealAll()
	after, err := r.b.Allocate(Request{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if after.Degraded {
		t.Fatal("healed store still serving degraded responses")
	}
}

func TestFaultDegradedServesLastGoodOnStaleData(t *testing.T) {
	r := newFaultRig(t, 22)
	if _, err := r.b.Allocate(Request{Procs: 4}); err != nil {
		t.Fatal(err)
	}
	// Stop monitoring and let the data age far beyond the bound. A broker
	// that already saw a healthy monitor degrades instead of refusing.
	r.mgr.Stop()
	r.sched.RunFor(10 * time.Minute)
	resp, err := r.b.Allocate(Request{Procs: 4})
	if err != nil {
		t.Fatalf("stale data refused despite last-good copy: %v", err)
	}
	if !resp.Degraded || !strings.Contains(resp.DegradedReason, "older than") {
		t.Fatalf("degraded=%v reason=%q", resp.Degraded, resp.DegradedReason)
	}
	if resp.SnapshotAge < 5*time.Minute {
		t.Fatalf("degraded SnapshotAge = %v, want the last-good copy's real age", resp.SnapshotAge)
	}
}

func TestFaultDegradedFiltersNodesGoneFromLivehosts(t *testing.T) {
	r := newFaultRig(t, 23)
	if _, err := r.b.Allocate(Request{Procs: 4}); err != nil {
		t.Fatal(err)
	}
	// Kill a node and let the livehosts list notice, then partition the
	// node-state prefix so the next snapshot has no fresh node data.
	const dead = 3
	r.w.SetNodeDown(dead, true)
	r.sched.RunFor(6 * time.Second)
	r.fs.Partition(monitor.KeyNodeStatePrefix)

	// A full-cluster request can only be satisfied by the 7 survivors:
	// the degraded snapshot must have dropped the dead node.
	resp, err := r.b.Allocate(Request{Procs: 56, PPN: 8, Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded {
		t.Fatal("node-state partition did not degrade the response")
	}
	if len(resp.Nodes) != 7 {
		t.Fatalf("degraded allocation used %d nodes, want the 7 live ones", len(resp.Nodes))
	}
	for _, n := range resp.Nodes {
		if n == dead {
			t.Fatalf("degraded allocation placed ranks on dead node %d", dead)
		}
	}
}

// TestFaultStaleReadCannotSkewReservationClock is the regression test
// for the reservation-expiry clock-skew fix (ISSUE 5): the chaos
// harness's stale-read fault makes node-state reads serve their
// previous values, the broker detects the data as stale and degrades to
// its last-good snapshot — whose Taken is older than clocks the
// ReservingPolicy has already seen. Under the old arithmetic
// (snap.Taken.Sub(res.at) < TTL with no monotonic bound) a reservation
// recorded from that degraded serve was stamped at the rewound clock
// and died the moment a fresh snapshot arrived, re-opening the herding
// window the policy exists to close. The monotonic `seen` clock keeps
// it alive for its full TTL.
func TestFaultStaleReadCannotSkewReservationClock(t *testing.T) {
	r := newFaultRig(t, 24)
	const ttl = 12 * time.Second
	r.mgr.Stop()
	r.b.cfg.SnapshotMaxAge = 8 * time.Second
	rp := alloc.NewReservingPolicy(alloc.LoadAware{}, ttl)
	r.b.RegisterPolicy(rp)
	req := Request{Procs: 4, Policy: rp.Name()}

	// A fresh allocation records a reservation at T; the broker's
	// last-good copy keeps that same Taken.
	if resp, err := r.b.Allocate(req); err != nil || resp.Degraded {
		t.Fatalf("fresh allocate: degraded=%v err=%v", resp.Degraded, err)
	}
	base, err := r.b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// The backfill queue's capacity pass prices free slots through
	// Charged with its own freshly-stamped snapshot — advancing the
	// policy's clock to T+6s without touching the broker's last-good copy
	// or its fingerprint-keyed model cache.
	r.sched.RunFor(6 * time.Second)
	snap6, err := r.b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rp.Charged(snap6)

	// Arm the stale-read fault, then republish node state: each Put
	// records the old record as the key's stale value, and every
	// subsequent read serves that old record.
	r.fs.SetScope(monitor.KeyNodeStatePrefix)
	r.fs.SetRates(store.Rates{StaleRead: 1})
	publish := func(ts time.Time) {
		for _, id := range base.Livehosts {
			attrs := base.Nodes[id]
			attrs.Timestamp = ts
			bts, err := json.Marshal(attrs)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.fs.Put(fmt.Sprintf("%s%d", monitor.KeyNodeStatePrefix, id), bts); err != nil {
				t.Fatal(err)
			}
		}
	}
	publish(r.sched.Now())

	// The stale reads push the served data past SnapshotMaxAge, so this
	// allocation is answered from the last-good copy and its reservation
	// is recorded against a snapshot whose Taken (T) has rewound behind
	// the clock the policy already saw (T+6s). The monotonic fallback
	// stamps it at T+6s; the skewed arithmetic stamped it at T.
	r.sched.RunFor(9 * time.Second)
	resp, err := r.b.Allocate(req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Degraded || !strings.Contains(resp.DegradedReason, "older than") {
		t.Fatalf("stale-read fault did not degrade: degraded=%v reason=%q", resp.Degraded, resp.DegradedReason)
	}
	if r.fs.FaultCount(store.FaultStaleRead) == 0 {
		t.Fatal("stale-read fault never fired")
	}
	// At T+15s the first grant (age 15s) is expired and the degraded
	// grant (age 9s on the monotonic clock) is live. The old arithmetic
	// priced the degraded grant as 15s old and reported zero.
	if got := rp.Outstanding(r.sched.Now()); got != 1 {
		t.Fatalf("Outstanding during degradation = %d, want 1", got)
	}

	// Heal and recover with genuinely fresh data. The reservation from
	// the degraded serve is 11s old on the monotonic clock — still inside
	// its 12s TTL. The skewed arithmetic would have stamped it at the
	// rewound Taken (17s ago) and pruned it here, re-opening the herding
	// window right when the cluster is recovering.
	r.fs.SetRates(store.Rates{})
	r.sched.RunFor(2 * time.Second)
	publish(r.sched.Now())
	if resp, err := r.b.Allocate(req); err != nil || resp.Degraded {
		t.Fatalf("healed allocate: degraded=%v err=%v", resp.Degraded, err)
	}
	// Live now: the degraded-serve grant (11s) and the healed grant (0s).
	// The first grant (17s) expired on schedule.
	if got := rp.Outstanding(r.sched.Now()); got != 2 {
		t.Fatalf("Outstanding after heal = %d, want 2 (degraded-serve reservation must live its full TTL)", got)
	}
}

func TestFaultNoLastGoodStillErrors(t *testing.T) {
	sched := simtime.NewScheduler(t0)
	fs := store.NewFault(store.NewMem(), 9)
	b := New(fs, sched, Config{})
	if _, err := b.Allocate(Request{Procs: 4}); err == nil {
		t.Fatal("broker with no last-good snapshot served an empty store")
	}
	if got := b.DegradedServed(); got != 0 {
		t.Fatalf("DegradedServed = %d for a broker that never degraded", got)
	}
}

// TestFaultCostModelCacheRace hammers the PR 1 cost-model cache with
// concurrent Allocate calls while a republisher keeps rewriting node
// state (changing the snapshot fingerprint), then verifies the cache was
// never left serving a model for a superseded fingerprint. Run with
// -race.
func TestFaultCostModelCacheRace(t *testing.T) {
	r := newRig(t, 31, loadgen.Config{})
	snap0, err := r.b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	base := snap0.Nodes[0]

	const allocators, rounds = 4, 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	republisherDone := make(chan struct{})
	go func() {
		defer close(republisherDone)
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			i++
			attrs := base
			attrs.CPULoad.M1 = float64(i%17) * 0.25
			attrs.Timestamp = base.Timestamp.Add(time.Duration(i) * time.Millisecond)
			bts, err := json.Marshal(attrs)
			if err != nil {
				panic(err)
			}
			_ = r.st.Put(fmt.Sprintf("%s0", monitor.KeyNodeStatePrefix), bts)
		}
	}()
	for g := 0; g < allocators; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := r.b.Allocate(Request{Procs: 4, Force: true,
					Alpha: 0.1 * float64(g+1), Beta: 1 - 0.1*float64(g+1)}); err != nil {
					t.Errorf("allocator %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-republisherDone

	// The cache must now rebuild for the final snapshot exactly as a
	// from-scratch build would: a missed invalidation would surface here
	// as a model computed from a superseded snapshot.
	final, err := r.b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	w := alloc.Weights{CPULoad: 1}
	finalView := snapView{snap: final, fp: final.Fingerprint()}
	got, _ := r.b.costModel(finalView, w, false)
	want := alloc.NewCostModel(final, w, false)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("cost model cache returned a model that does not match a fresh build for the current snapshot")
	}
	// And an immediate second lookup is a hit on that same model.
	hitsBefore, _ := r.b.ModelCacheStats()
	if again, hit := r.b.costModel(finalView, w, false); !reflect.DeepEqual(again, want) || !hit {
		t.Fatal("second lookup diverged")
	}
	if hitsAfter, _ := r.b.ModelCacheStats(); hitsAfter != hitsBefore+1 {
		t.Fatalf("expected a cache hit, hits %d -> %d", hitsBefore, hitsAfter)
	}
}
