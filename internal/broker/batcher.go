package broker

import (
	"sync"
	"time"
)

// BatcherOptions tunes the batched front door.
type BatcherOptions struct {
	// Window is how long the dispatcher waits after waking for a batch
	// to fill before pricing it (wall-clock; the trade is added latency
	// for larger batches). 0 means greedy dispatch: the dispatcher
	// prices whatever is queued the moment it frees up, so batches form
	// naturally under load — while one batch is being applied, new
	// arrivals coalesce behind it — and an idle server adds no latency.
	Window time.Duration
	// MaxBatch caps how many requests one dispatch prices against a
	// single snapshot generation. Default 256.
	MaxBatch int
	// Admission configures the token-bucket + fairness front end.
	Admission AdmissionConfig
	// AfterBatch, when set, runs after each batch's callbacks have all
	// been invoked — the server uses it to flush per-connection write
	// buffers once per batch instead of once per response.
	AfterBatch func()
}

func (o BatcherOptions) withDefaults() BatcherOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	return o
}

// Batcher coalesces allocate and submit requests and prices each batch
// against a single snapshot generation (one singleflight refresh and one
// cost-model fetch amortized across the batch, sequential in-batch
// application so stateful policies and Equation-3 reservations stay
// consistent). Requests pass per-tenant token-bucket admission on entry
// and are dequeued weighted-round-robin across tenants, so one hot
// tenant cannot starve the rest; rejected requests get an explicit
// *ShedError with a retry hint instead of silently queuing forever.
//
// A Batcher is driven either by Start (a dispatcher goroutine, what the
// Server uses) or by explicit Flush calls (what deterministic tests
// use). Both apply batches on one goroutine at a time.
type Batcher struct {
	b    *Broker
	mgr  Manager // optional; nil rejects submits
	opts BatcherOptions

	mu     sync.Mutex
	cond   *sync.Cond
	adm    *admission
	closed bool

	flushMu sync.Mutex // serializes Flush bodies against each other
	wg      sync.WaitGroup
}

// NewBatcher builds a batcher over b. mgr may be nil, in which case
// submit enqueues are rejected (matching a Server with no Manager).
func NewBatcher(b *Broker, mgr Manager, opts BatcherOptions) *Batcher {
	bt := &Batcher{b: b, mgr: mgr, opts: opts.withDefaults(), adm: newAdmission(opts.Admission)}
	bt.cond = sync.NewCond(&bt.mu)
	return bt
}

// EnqueueAllocate admits and queues one allocation request. done is
// called exactly once with the result — from a later Flush/dispatch, or
// with ErrBatcherClosed if the batcher shuts down first. A non-nil
// return (*ShedError or ErrBatcherClosed) means the request was never
// queued and done will not be called.
func (bt *Batcher) EnqueueAllocate(tenant string, req Request, done func(Response, error)) error {
	r := req
	return bt.enqueue(&pendingItem{tenant: tenant, alloc: &r, doneAlloc: done})
}

// EnqueueSubmit admits and queues one job submission; semantics match
// EnqueueAllocate.
func (bt *Batcher) EnqueueSubmit(tenant string, req SubmitRequest, done func(int, error)) error {
	r := req
	return bt.enqueue(&pendingItem{tenant: tenant, submit: &r, doneSubmit: done})
}

func (bt *Batcher) enqueue(item *pendingItem) error {
	now := bt.b.rt.Now()
	bt.mu.Lock()
	if bt.closed {
		bt.mu.Unlock()
		return ErrBatcherClosed
	}
	shed := bt.adm.admit(item, now)
	depth := bt.adm.depth
	bt.mu.Unlock()
	obs := bt.b.obs
	obs.Gauge("broker.admit.queue.depth").Set(float64(depth))
	if shed != nil {
		obs.Counter("broker.admit.shed.total").Inc()
		obs.Counter("broker.admit.shed." + shed.Reason).Inc()
		obs.Counter("broker.admit.shed.tenant." + tenantLabel(item.tenant)).Inc()
		return shed
	}
	obs.Counter("broker.admit.admitted.total").Inc()
	bt.cond.Signal()
	return nil
}

// QueueDepth reports the total number of queued requests (diagnostic).
func (bt *Batcher) QueueDepth() int {
	bt.mu.Lock()
	defer bt.mu.Unlock()
	return bt.adm.depth
}

// Start launches the dispatcher goroutine. It returns immediately; stop
// it with Close.
func (bt *Batcher) Start() {
	bt.wg.Add(1)
	go bt.dispatch()
}

func (bt *Batcher) dispatch() {
	defer bt.wg.Done()
	for {
		bt.mu.Lock()
		for bt.adm.depth == 0 && !bt.closed {
			bt.cond.Wait()
		}
		if bt.closed {
			bt.mu.Unlock()
			return
		}
		bt.mu.Unlock()
		if bt.opts.Window > 0 {
			// Real sleep, not simtime: the window trades wall-clock
			// latency for batch size, which only exists on a wall clock.
			time.Sleep(bt.opts.Window)
		}
		bt.Flush()
	}
}

// Flush dequeues and applies one batch synchronously, returning how many
// requests it served. Safe to call concurrently with the dispatcher and
// with enqueues; batch application itself is serialized.
func (bt *Batcher) Flush() int {
	bt.flushMu.Lock()
	defer bt.flushMu.Unlock()

	bt.mu.Lock()
	items := bt.adm.dequeue(bt.opts.MaxBatch)
	depth := bt.adm.depth
	bt.mu.Unlock()
	if len(items) == 0 {
		return 0
	}
	obs := bt.b.obs
	obs.Gauge("broker.admit.queue.depth").Set(float64(depth))
	obs.Counter("broker.batch.flushes").Inc()
	obs.Histogram("broker.batch.size", 1, 2, 4, 8, 16, 32, 64, 128, 256, 512).Observe(float64(len(items)))

	// One snapshot generation for the whole batch: allocates are priced
	// in admission (WRR) order against it. Submits only hand the job to
	// the manager here — their allocation happens at launch time — so
	// applying them after the batch's allocates does not change any
	// pricing, and keeps the allocate path a single tight loop.
	var allocReqs []Request
	var allocItems []*pendingItem
	for _, item := range items {
		if item.alloc != nil {
			allocReqs = append(allocReqs, *item.alloc)
			allocItems = append(allocItems, item)
		}
	}
	if len(allocReqs) > 0 {
		results := bt.b.AllocateBatch(allocReqs)
		for i, item := range allocItems {
			obs.Counter("broker.batch.served.tenant." + tenantLabel(item.tenant)).Inc()
			item.doneAlloc(results[i].Response, results[i].Err)
		}
	}
	for _, item := range items {
		if item.submit == nil {
			continue
		}
		obs.Counter("broker.batch.served.tenant." + tenantLabel(item.tenant)).Inc()
		if bt.mgr == nil {
			item.doneSubmit(0, errNoManager)
			continue
		}
		id, err := bt.mgr.Submit(*item.submit)
		item.doneSubmit(id, err)
	}
	if bt.opts.AfterBatch != nil {
		bt.opts.AfterBatch()
	}
	return len(items)
}

// Close stops the dispatcher and fails every still-queued request with
// ErrBatcherClosed. A batch already being applied completes first; Close
// returns once the dispatcher has exited and the queue is drained.
func (bt *Batcher) Close() {
	bt.mu.Lock()
	if bt.closed {
		bt.mu.Unlock()
		return
	}
	bt.closed = true
	bt.cond.Broadcast()
	bt.mu.Unlock()
	bt.wg.Wait()

	// The dispatcher is gone; any batch in a concurrent Flush finishes
	// under flushMu, then the leftovers are failed.
	bt.flushMu.Lock()
	defer bt.flushMu.Unlock()
	bt.mu.Lock()
	left := bt.adm.drain()
	bt.mu.Unlock()
	for _, item := range left {
		item.fail(ErrBatcherClosed)
	}
	if bt.opts.AfterBatch != nil && len(left) > 0 {
		bt.opts.AfterBatch()
	}
}

// tenantLabel maps the empty (default) tenant to a printable metrics
// label.
func tenantLabel(t string) string {
	if t == "" {
		return "default"
	}
	return t
}
