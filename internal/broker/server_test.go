package broker

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"nlarm/internal/loadgen"
)

// TestServerMetricsAction exercises the "metrics" wire action end to end:
// the snapshot must carry the decision counters for traffic already
// served, and the text rendering must be non-empty and deterministic.
func TestServerMetricsAction(t *testing.T) {
	r := newRig(t, 21, loadgen.Config{})
	srv, err := NewServer(r.b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Allocate(Request{Procs: 8, PPN: 4}); err != nil {
		t.Fatal(err)
	}
	snap, text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["broker.allocate.total"] != 1 || snap.Counters["broker.allocate.ok"] != 1 {
		t.Fatalf("allocate counters not reflected: %v", snap.Counters)
	}
	if !strings.Contains(text, "counter broker.allocate.total 1") {
		t.Fatalf("rendered text missing allocate counter:\n%s", text)
	}
	if text != snap.Render() {
		t.Fatal("metrics_text does not match rendering the returned snapshot")
	}
}

// TestServerDecisionsAction verifies the "decisions" action returns the
// recorded decision log, honors limit, and includes the cost breakdown.
func TestServerDecisionsAction(t *testing.T) {
	r := newRig(t, 22, loadgen.Config{})
	srv, err := NewServer(r.b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Allocate(Request{Procs: 8, PPN: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocate(Request{Procs: 4, PPN: 4, Policy: "random"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Allocate(Request{Policy: "no-such-policy", Procs: 1}); err == nil {
		t.Fatal("expected error for unknown policy")
	}

	recs, err := c.Decisions(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("want 3 decisions, got %d", len(recs))
	}
	first, last := recs[0], recs[2]
	if first.Seq != 1 || first.Policy != "net-load-aware" || first.Recommendation != RecommendAllocate {
		t.Fatalf("first decision %+v", first)
	}
	if len(first.Nodes) == 0 || len(first.Contributions) != len(first.Nodes) {
		t.Fatalf("first decision lacks contributions: %+v", first)
	}
	if first.Candidates == 0 {
		t.Fatal("model policy decision should report candidate count")
	}
	var sumCL float64
	for _, contrib := range first.Contributions {
		sumCL += contrib.CL
	}
	if diff := sumCL - first.ComputeCost; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("compute cost %v != sum of contributions %v", first.ComputeCost, sumCL)
	}
	if last.Error == "" || last.Seq != 3 {
		t.Fatalf("error decision not recorded: %+v", last)
	}

	limited, err := c.Decisions(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 1 || limited[0].Seq != 3 {
		t.Fatalf("limit=1 should return newest record, got %+v", limited)
	}
}

// TestServerOversizedLine sends a line beyond MaxLineBytes and expects
// one error response followed by a clean close — not a hang, not a panic.
func TestServerOversizedLine(t *testing.T) {
	r := newRig(t, 23, loadgen.Config{})
	srv, err := NewServerOpts(r.b, nil, "127.0.0.1:0", ServerOptions{MaxLineBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	huge := append(bytes.Repeat([]byte("x"), 8192), '\n')
	if _, err := conn.Write(huge); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatal("expected an error response before close")
	}
	var resp wireResponse
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if resp.OK || !strings.Contains(resp.Error, "exceeds") {
		t.Fatalf("unexpected response %+v", resp)
	}
	// The server must then close the connection.
	if sc.Scan() {
		t.Fatalf("expected close after error, got %q", sc.Text())
	}
}

// TestServerReadDeadline verifies a silent client is disconnected once
// ReadTimeout expires instead of pinning the serving goroutine forever.
func TestServerReadDeadline(t *testing.T) {
	r := newRig(t, 24, loadgen.Config{})
	srv, err := NewServerOpts(r.b, nil, "127.0.0.1:0", ServerOptions{ReadTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	// Send nothing. The server should drop us after ~100ms.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected connection close, got data")
	}
}

// TestServerPartialLineThenSilence covers the stalled-mid-request case:
// bytes arrive but no newline ever does. The deadline must still fire;
// the truncated request gets at most one error response, then the
// connection closes.
func TestServerPartialLineThenSilence(t *testing.T) {
	r := newRig(t, 25, loadgen.Config{})
	srv, err := NewServerOpts(r.b, nil, "127.0.0.1:0", ServerOptions{ReadTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	if _, err := conn.Write([]byte(`{"action":"hea`)); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if sc.Scan() {
		// The deadline flushed the partial line to the handler: that must
		// have produced a bad-request error, and nothing after it.
		var resp wireResponse
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatalf("response not JSON: %v", err)
		}
		if resp.OK || resp.Error == "" {
			t.Fatalf("truncated request must be an error, got %+v", resp)
		}
		if sc.Scan() {
			t.Fatalf("expected close after error, got %q", sc.Text())
		}
	}
	// Either way the connection is now closed, not hung.
	if err := sc.Err(); err != nil {
		t.Fatalf("expected clean close, got %v", err)
	}
}
