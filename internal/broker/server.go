package broker

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"nlarm/internal/obs"
)

// wireRequest is the newline-delimited JSON protocol envelope.
type wireRequest struct {
	// Action is "allocate", "policies", "health", "metrics", "decisions",
	// or — when the server has a Manager — "submit", "job", "queue".
	Action  string         `json:"action"`
	Request Request        `json:"request,omitempty"`
	Submit  *SubmitRequest `json:"submit,omitempty"`
	JobID   int            `json:"job_id,omitempty"`
	// Limit caps how many decision records a "decisions" action returns
	// (0 = all retained).
	Limit int `json:"limit,omitempty"`
}

type wireResponse struct {
	OK       bool        `json:"ok"`
	Error    string      `json:"error,omitempty"`
	Response *Response   `json:"response,omitempty"`
	Policies []string    `json:"policies,omitempty"`
	Health   string      `json:"health,omitempty"`
	JobID    int         `json:"job_id,omitempty"`
	Job      *JobInfo    `json:"job,omitempty"`
	Queue    *QueueStats `json:"queue,omitempty"`
	// Metrics is the structured registry snapshot and MetricsText its
	// deterministic rendering ("metrics" action).
	Metrics     *obs.Snapshot `json:"metrics,omitempty"`
	MetricsText string        `json:"metrics_text,omitempty"`
	// Decisions is the recent allocation decision log ("decisions" action).
	Decisions []DecisionRecord `json:"decisions,omitempty"`
}

// ServerOptions harden the wire protocol against misbehaving clients.
type ServerOptions struct {
	// ReadTimeout is the per-line read deadline: a connection that sends
	// no complete line for this long is closed, so a stalled client can
	// never pin a serving goroutine forever. Default 2 minutes; negative
	// disables the deadline.
	ReadTimeout time.Duration
	// MaxLineBytes caps one request line. A longer line gets a single
	// error response, then the connection closes. Default 1 MiB.
	MaxLineBytes int
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.ReadTimeout == 0 {
		o.ReadTimeout = 2 * time.Minute
	}
	if o.MaxLineBytes <= 0 {
		o.MaxLineBytes = 1 << 20
	}
	return o
}

// Server exposes a Broker over TCP with a newline-delimited JSON
// protocol: one request object per line, one response object per line.
type Server struct {
	b    *Broker
	mgr  Manager // optional job-submission backend
	ln   net.Listener
	opts ServerOptions

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer starts serving b on addr (e.g. "127.0.0.1:7077"; use port 0
// for an ephemeral port). The returned server is already accepting.
func NewServer(b *Broker, addr string) (*Server, error) {
	return NewManagedServer(b, nil, addr)
}

// NewManagedServer is NewServer with a job-submission Manager attached;
// the submit/job/queue wire actions are enabled when mgr is non-nil.
func NewManagedServer(b *Broker, mgr Manager, addr string) (*Server, error) {
	return NewServerOpts(b, mgr, addr, ServerOptions{})
}

// NewServerOpts is NewManagedServer with explicit protocol limits.
func NewServerOpts(b *Broker, mgr Manager, addr string, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broker: listen %s: %w", addr, err)
	}
	s := &Server{b: b, mgr: mgr, ln: ln, opts: opts.withDefaults(), conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	scanner := bufio.NewScanner(conn)
	// Scanner's limit is max(limit, cap(buf)): keep the initial buffer at
	// or below MaxLineBytes so the cap actually binds.
	bufCap := 64 * 1024
	if bufCap > s.opts.MaxLineBytes {
		bufCap = s.opts.MaxLineBytes
	}
	scanner.Buffer(make([]byte, 0, bufCap), s.opts.MaxLineBytes)
	enc := json.NewEncoder(conn)
	for {
		if s.opts.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		if !scanner.Scan() {
			// An over-long line is a protocol violation, not a transport
			// failure: answer it once, then close cleanly.
			if errors.Is(scanner.Err(), bufio.ErrTooLong) {
				_ = enc.Encode(wireResponse{Error: fmt.Sprintf("bad request: line exceeds %d bytes", s.opts.MaxLineBytes)})
			}
			return
		}
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var req wireRequest
		var resp wireResponse
		if err := json.Unmarshal(line, &req); err != nil {
			resp = wireResponse{Error: fmt.Sprintf("bad request: %v", err)}
		} else {
			resp = s.handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) handle(req wireRequest) wireResponse {
	switch req.Action {
	case "allocate":
		r, err := s.b.Allocate(req.Request)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true, Response: &r}
	case "policies":
		return wireResponse{OK: true, Policies: s.b.Policies()}
	case "health":
		return wireResponse{OK: true, Health: "ok"}
	case "metrics":
		snap := s.b.Obs().Snapshot()
		return wireResponse{OK: true, Metrics: snap, MetricsText: snap.Render()}
	case "decisions":
		recs := s.b.Decisions(req.Limit)
		if recs == nil {
			recs = []DecisionRecord{}
		}
		return wireResponse{OK: true, Decisions: recs}
	case "submit":
		if s.mgr == nil {
			return wireResponse{Error: "server has no job manager"}
		}
		if req.Submit == nil {
			return wireResponse{Error: "submit action without submit payload"}
		}
		id, err := s.mgr.Submit(*req.Submit)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true, JobID: id}
	case "job":
		if s.mgr == nil {
			return wireResponse{Error: "server has no job manager"}
		}
		info, ok := s.mgr.Status(req.JobID)
		if !ok {
			return wireResponse{Error: fmt.Sprintf("no job %d", req.JobID)}
		}
		return wireResponse{OK: true, Job: &info}
	case "queue":
		if s.mgr == nil {
			return wireResponse{Error: "server has no job manager"}
		}
		qs := s.mgr.QueueStats()
		return wireResponse{OK: true, Queue: &qs}
	default:
		return wireResponse{Error: fmt.Sprintf("unknown action %q", req.Action)}
	}
}

// Close stops accepting and tears down open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client talks to a broker Server.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

// Dial connects to a broker server at addr.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("broker: dial %s: %w", addr, err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Client{conn: conn, enc: json.NewEncoder(conn), sc: sc}, nil
}

func (c *Client) roundTrip(req wireRequest) (wireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return wireResponse{}, fmt.Errorf("broker: send: %w", err)
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return wireResponse{}, fmt.Errorf("broker: recv: %w", err)
		}
		return wireResponse{}, errors.New("broker: connection closed")
	}
	var resp wireResponse
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return wireResponse{}, fmt.Errorf("broker: decode: %w", err)
	}
	return resp, nil
}

// Allocate requests an allocation.
func (c *Client) Allocate(req Request) (Response, error) {
	resp, err := c.roundTrip(wireRequest{Action: "allocate", Request: req})
	if err != nil {
		return Response{}, err
	}
	if resp.Error != "" {
		return Response{}, errors.New(resp.Error)
	}
	if resp.Response == nil {
		return Response{}, errors.New("broker: empty response")
	}
	return *resp.Response, nil
}

// Policies lists the server's registered policies.
func (c *Client) Policies() ([]string, error) {
	resp, err := c.roundTrip(wireRequest{Action: "policies"})
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	return resp.Policies, nil
}

// Health checks the server is alive.
func (c *Client) Health() error {
	resp, err := c.roundTrip(wireRequest{Action: "health"})
	if err != nil {
		return err
	}
	if resp.Error != "" {
		return errors.New(resp.Error)
	}
	return nil
}

// Submit queues a job on a managed server and returns its ID.
func (c *Client) Submit(req SubmitRequest) (int, error) {
	resp, err := c.roundTrip(wireRequest{Action: "submit", Submit: &req})
	if err != nil {
		return 0, err
	}
	if resp.Error != "" {
		return 0, errors.New(resp.Error)
	}
	return resp.JobID, nil
}

// JobStatus fetches a submitted job's state.
func (c *Client) JobStatus(id int) (JobInfo, error) {
	resp, err := c.roundTrip(wireRequest{Action: "job", JobID: id})
	if err != nil {
		return JobInfo{}, err
	}
	if resp.Error != "" {
		return JobInfo{}, errors.New(resp.Error)
	}
	if resp.Job == nil {
		return JobInfo{}, errors.New("broker: empty job status")
	}
	return *resp.Job, nil
}

// QueueStats fetches the managed server's queue counters.
func (c *Client) QueueStats() (QueueStats, error) {
	resp, err := c.roundTrip(wireRequest{Action: "queue"})
	if err != nil {
		return QueueStats{}, err
	}
	if resp.Error != "" {
		return QueueStats{}, errors.New(resp.Error)
	}
	if resp.Queue == nil {
		return QueueStats{}, errors.New("broker: empty queue stats")
	}
	return *resp.Queue, nil
}

// Metrics fetches the server's instrumentation snapshot and its
// deterministic text rendering.
func (c *Client) Metrics() (*obs.Snapshot, string, error) {
	resp, err := c.roundTrip(wireRequest{Action: "metrics"})
	if err != nil {
		return nil, "", err
	}
	if resp.Error != "" {
		return nil, "", errors.New(resp.Error)
	}
	if resp.Metrics == nil {
		return nil, "", errors.New("broker: empty metrics")
	}
	return resp.Metrics, resp.MetricsText, nil
}

// Decisions fetches the most recent limit allocation decision records
// (0 = all the server retains), oldest first.
func (c *Client) Decisions(limit int) ([]DecisionRecord, error) {
	resp, err := c.roundTrip(wireRequest{Action: "decisions", Limit: limit})
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	return resp.Decisions, nil
}

// Close closes the client connection.
func (c *Client) Close() error { return c.conn.Close() }
