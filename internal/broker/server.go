package broker

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"nlarm/internal/obs"
)

// errNoManager is the rejection for submit/job/queue actions on a server
// built without a job manager.
var errNoManager = errors.New("server has no job manager")

// wireRequest is the newline-delimited JSON protocol envelope.
type wireRequest struct {
	// ID is the client's request identifier, echoed verbatim on the
	// response so a pipelined client can keep many requests in flight on
	// one connection and match answers by ID. 0 (or absent) is valid for
	// strictly serial clients: responses to a connection that never
	// pipelines still come back in order.
	ID uint64 `json:"id,omitempty"`
	// Tenant labels the request for admission control and fairness
	// accounting. Empty means the default tenant.
	Tenant string `json:"tenant,omitempty"`
	// Action is "allocate", "policies", "health", "metrics", "decisions",
	// or — when the server has a Manager — "submit", "job", "queue".
	Action  string         `json:"action"`
	Request Request        `json:"request,omitempty"`
	Submit  *SubmitRequest `json:"submit,omitempty"`
	JobID   int            `json:"job_id,omitempty"`
	// Limit caps how many decision records a "decisions" action returns
	// (0 = all retained).
	Limit int `json:"limit,omitempty"`
}

type wireResponse struct {
	// ID echoes the request's ID (0 for unsolicited errors such as an
	// unparseable line, where no ID could be read).
	ID    uint64 `json:"id,omitempty"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Shed marks an admission-control rejection; RetryAfterMS is the
	// server's retry hint in milliseconds and ShedReason the cause
	// ("rate", "queue-full", "inflight").
	Shed         bool        `json:"shed,omitempty"`
	RetryAfterMS int64       `json:"retry_after_ms,omitempty"`
	ShedReason   string      `json:"shed_reason,omitempty"`
	Response     *Response   `json:"response,omitempty"`
	Policies     []string    `json:"policies,omitempty"`
	Health       string      `json:"health,omitempty"`
	JobID        int         `json:"job_id,omitempty"`
	Job          *JobInfo    `json:"job,omitempty"`
	Queue        *QueueStats `json:"queue,omitempty"`
	// Metrics is the structured registry snapshot and MetricsText its
	// deterministic rendering ("metrics" action).
	Metrics     *obs.Snapshot `json:"metrics,omitempty"`
	MetricsText string        `json:"metrics_text,omitempty"`
	// Decisions is the recent allocation decision log ("decisions" action).
	Decisions []DecisionRecord `json:"decisions,omitempty"`
}

// shedResponse builds the wire form of an admission rejection.
func shedResponse(id uint64, e *ShedError) wireResponse {
	return wireResponse{
		ID:           id,
		Error:        e.Error(),
		Shed:         true,
		RetryAfterMS: int64(e.RetryAfter / time.Millisecond),
		ShedReason:   e.Reason,
	}
}

// ServerOptions harden the wire protocol against misbehaving clients and
// configure the batched front door.
type ServerOptions struct {
	// ReadTimeout is the per-line read deadline: a connection that sends
	// no complete line for this long is closed, so a stalled client can
	// never pin a serving goroutine forever. Default 2 minutes; negative
	// disables the deadline.
	ReadTimeout time.Duration
	// MaxLineBytes caps one request line. A longer line gets a single
	// error response, then the connection closes. Default 1 MiB.
	MaxLineBytes int
	// Batching, when non-nil, routes allocate and submit requests
	// through a Batcher: admission control, per-tenant fairness, and
	// batch pricing against one snapshot generation. Nil serves every
	// request inline on its connection goroutine (the pre-batching wire
	// path). Responses to batched requests may return out of order;
	// pipelined clients match them by request ID.
	Batching *BatcherOptions
	// MaxInflight caps outstanding batched requests per connection;
	// excess requests are shed with reason "inflight". 0 means the
	// default 1024; negative disables the cap. Only meaningful with
	// Batching set.
	MaxInflight int
	// WriteTimeout bounds every response write. Without it a client that
	// stops reading would eventually block a batch flush on its full TCP
	// send buffer — pinning the dispatcher the way stalled readers once
	// pinned serving goroutines. On expiry the connection is closed and
	// the batch moves on. Default 1 minute; negative disables.
	WriteTimeout time.Duration
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.ReadTimeout == 0 {
		o.ReadTimeout = 2 * time.Minute
	}
	if o.MaxLineBytes <= 0 {
		o.MaxLineBytes = 1 << 20
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 1024
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = time.Minute
	}
	return o
}

// connWriter serializes and buffers one connection's responses. Inline
// responses flush immediately; batched responses accumulate in the
// buffer and are flushed once per batch (the write-side amortization
// that, with request pipelining, turns one syscall per response into one
// per connection per batch).
type connWriter struct {
	conn     net.Conn
	timeout  time.Duration
	mu       sync.Mutex
	bw       *bufio.Writer
	enc      *json.Encoder
	err      error
	inflight atomic.Int64
}

func newConnWriter(conn net.Conn, timeout time.Duration) *connWriter {
	bw := bufio.NewWriterSize(conn, 32*1024)
	return &connWriter{conn: conn, timeout: timeout, bw: bw, enc: json.NewEncoder(bw)}
}

// arm sets the write deadline ahead of a socket-touching operation; a
// full bufio.Writer can flush (and therefore block) inside Encode, so
// encode arms too. Must hold mu.
func (cw *connWriter) arm() {
	if cw.timeout > 0 {
		_ = cw.conn.SetWriteDeadline(time.Now().Add(cw.timeout))
	}
}

// finish records a write failure and closes the connection so the
// reader goroutine unblocks promptly. Must hold mu.
func (cw *connWriter) finish() error {
	if cw.err != nil {
		cw.conn.Close()
	}
	return cw.err
}

// encode appends one response to the buffer without flushing (a full
// buffer may still spill to the socket under the armed deadline).
func (cw *connWriter) encode(resp wireResponse) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.err != nil {
		return cw.err
	}
	cw.arm()
	cw.err = cw.enc.Encode(resp)
	return cw.finish()
}

// flush pushes buffered responses to the socket.
func (cw *connWriter) flush() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.err != nil {
		return cw.err
	}
	cw.arm()
	cw.err = cw.bw.Flush()
	return cw.finish()
}

// send encodes and flushes one response (inline path).
func (cw *connWriter) send(resp wireResponse) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.err != nil {
		return cw.err
	}
	cw.arm()
	if cw.err = cw.enc.Encode(resp); cw.err != nil {
		return cw.finish()
	}
	cw.err = cw.bw.Flush()
	return cw.finish()
}

// Server exposes a Broker over TCP with a newline-delimited JSON
// protocol: one request object per line, one response object per line
// (responses to pipelined batched requests may be reordered; match by
// ID).
type Server struct {
	b       *Broker
	mgr     Manager // optional job-submission backend
	ln      net.Listener
	opts    ServerOptions
	batcher *Batcher // nil when Batching is off

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	dirtyMu sync.Mutex
	dirty   map[*connWriter]struct{}
}

// NewServer starts serving b on addr (e.g. "127.0.0.1:7077"; use port 0
// for an ephemeral port). The returned server is already accepting.
func NewServer(b *Broker, addr string) (*Server, error) {
	return NewManagedServer(b, nil, addr)
}

// NewManagedServer is NewServer with a job-submission Manager attached;
// the submit/job/queue wire actions are enabled when mgr is non-nil.
func NewManagedServer(b *Broker, mgr Manager, addr string) (*Server, error) {
	return NewServerOpts(b, mgr, addr, ServerOptions{})
}

// NewServerOpts is NewManagedServer with explicit protocol limits and
// optional batching.
func NewServerOpts(b *Broker, mgr Manager, addr string, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broker: listen %s: %w", addr, err)
	}
	s := &Server{
		b: b, mgr: mgr, ln: ln, opts: opts.withDefaults(),
		conns: make(map[net.Conn]struct{}),
		dirty: make(map[*connWriter]struct{}),
	}
	if opts.Batching != nil {
		bo := *opts.Batching
		// Chain the server's per-batch connection flush after any caller
		// hook so buffered batch responses always reach the socket.
		caller := bo.AfterBatch
		bo.AfterBatch = func() {
			if caller != nil {
				caller()
			}
			s.flushDirty()
		}
		s.batcher = NewBatcher(b, mgr, bo)
		s.batcher.Start()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Batcher returns the server's batched front door, or nil when batching
// is off (diagnostic/test access to queue depth).
func (s *Server) Batcher() *Batcher { return s.batcher }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// markDirty registers a connection writer holding unflushed batch
// responses; flushDirty runs at the end of every batch.
func (s *Server) markDirty(cw *connWriter) {
	s.dirtyMu.Lock()
	s.dirty[cw] = struct{}{}
	s.dirtyMu.Unlock()
}

func (s *Server) flushDirty() {
	s.dirtyMu.Lock()
	dirty := s.dirty
	s.dirty = make(map[*connWriter]struct{})
	s.dirtyMu.Unlock()
	for cw := range dirty {
		_ = cw.flush() // write errors surface as the conn's read loop exits
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	scanner := bufio.NewScanner(conn)
	// Scanner's limit is max(limit, cap(buf)): keep the initial buffer at
	// or below MaxLineBytes so the cap actually binds.
	bufCap := 64 * 1024
	if bufCap > s.opts.MaxLineBytes {
		bufCap = s.opts.MaxLineBytes
	}
	scanner.Buffer(make([]byte, 0, bufCap), s.opts.MaxLineBytes)
	cw := newConnWriter(conn, s.opts.WriteTimeout)
	for {
		if s.opts.ReadTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		if !scanner.Scan() {
			// An over-long line is a protocol violation, not a transport
			// failure: answer it once, then close cleanly.
			if errors.Is(scanner.Err(), bufio.ErrTooLong) {
				_ = cw.send(wireResponse{Error: fmt.Sprintf("bad request: line exceeds %d bytes", s.opts.MaxLineBytes)})
			}
			return
		}
		line := scanner.Bytes()
		if len(line) == 0 {
			continue
		}
		var req wireRequest
		if err := json.Unmarshal(line, &req); err != nil {
			if cw.send(wireResponse{Error: fmt.Sprintf("bad request: %v", err)}) != nil {
				return
			}
			continue
		}
		if s.batcher != nil && (req.Action == "allocate" || req.Action == "submit") {
			s.dispatchBatched(cw, req)
			continue
		}
		resp := s.handle(req)
		resp.ID = req.ID
		if cw.send(resp) != nil {
			return
		}
	}
}

// dispatchBatched admits one allocate/submit request into the batcher.
// The response is written by the batch that serves it; sheds and
// enqueue failures are answered immediately. The reader goroutine never
// blocks on pricing, which is what lets one connection pipeline many
// requests.
func (s *Server) dispatchBatched(cw *connWriter, req wireRequest) {
	if s.opts.MaxInflight > 0 && cw.inflight.Load() >= int64(s.opts.MaxInflight) {
		s.b.obs.Counter("broker.admit.shed.total").Inc()
		s.b.obs.Counter("broker.admit.shed.inflight").Inc()
		_ = cw.send(shedResponse(req.ID, &ShedError{
			Tenant: req.Tenant, RetryAfter: 10 * time.Millisecond, Reason: "inflight",
		}))
		return
	}
	id := req.ID
	var err error
	switch req.Action {
	case "allocate":
		cw.inflight.Add(1)
		err = s.batcher.EnqueueAllocate(req.Tenant, req.Request, func(resp Response, aerr error) {
			defer cw.inflight.Add(-1)
			wr := wireResponse{ID: id}
			switch {
			case errors.Is(aerr, ErrShed) || errors.Is(aerr, ErrBatcherClosed):
				wr.Error = aerr.Error()
				wr.Shed = errors.Is(aerr, ErrShed)
			case aerr != nil:
				wr.Error = aerr.Error()
			default:
				r := resp
				wr.OK = true
				wr.Response = &r
			}
			if cw.encode(wr) == nil {
				s.markDirty(cw)
			}
		})
		if err != nil {
			cw.inflight.Add(-1)
		}
	case "submit":
		if s.mgr == nil {
			_ = cw.send(wireResponse{ID: id, Error: errNoManager.Error()})
			return
		}
		if req.Submit == nil {
			_ = cw.send(wireResponse{ID: id, Error: "submit action without submit payload"})
			return
		}
		cw.inflight.Add(1)
		err = s.batcher.EnqueueSubmit(req.Tenant, *req.Submit, func(jobID int, serr error) {
			defer cw.inflight.Add(-1)
			wr := wireResponse{ID: id}
			if serr != nil {
				wr.Error = serr.Error()
			} else {
				wr.OK = true
				wr.JobID = jobID
			}
			if cw.encode(wr) == nil {
				s.markDirty(cw)
			}
		})
		if err != nil {
			cw.inflight.Add(-1)
		}
	}
	if err != nil {
		var shed *ShedError
		if errors.As(err, &shed) {
			_ = cw.send(shedResponse(id, shed))
		} else {
			_ = cw.send(wireResponse{ID: id, Error: err.Error()})
		}
	}
}

func (s *Server) handle(req wireRequest) wireResponse {
	switch req.Action {
	case "allocate":
		r, err := s.b.Allocate(req.Request)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true, Response: &r}
	case "policies":
		return wireResponse{OK: true, Policies: s.b.Policies()}
	case "health":
		return wireResponse{OK: true, Health: "ok"}
	case "metrics":
		snap := s.b.Obs().Snapshot()
		return wireResponse{OK: true, Metrics: snap, MetricsText: snap.Render()}
	case "decisions":
		recs := s.b.Decisions(req.Limit)
		if recs == nil {
			recs = []DecisionRecord{}
		}
		return wireResponse{OK: true, Decisions: recs}
	case "submit":
		if s.mgr == nil {
			return wireResponse{Error: errNoManager.Error()}
		}
		if req.Submit == nil {
			return wireResponse{Error: "submit action without submit payload"}
		}
		id, err := s.mgr.Submit(*req.Submit)
		if err != nil {
			return wireResponse{Error: err.Error()}
		}
		return wireResponse{OK: true, JobID: id}
	case "job":
		if s.mgr == nil {
			return wireResponse{Error: errNoManager.Error()}
		}
		info, ok := s.mgr.Status(req.JobID)
		if !ok {
			return wireResponse{Error: fmt.Sprintf("no job %d", req.JobID)}
		}
		return wireResponse{OK: true, Job: &info}
	case "queue":
		if s.mgr == nil {
			return wireResponse{Error: errNoManager.Error()}
		}
		qs := s.mgr.QueueStats()
		return wireResponse{OK: true, Queue: &qs}
	default:
		return wireResponse{Error: fmt.Sprintf("unknown action %q", req.Action)}
	}
}

// DisconnectAll closes every open connection without stopping the
// listener — a chaos/test hook standing in for a network blip between
// clients and the broker. Clients with pooled connections are expected
// to redial and carry on.
func (s *Server) DisconnectAll() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

// Close stops accepting, shuts down the batcher (answering still-queued
// requests with ErrBatcherClosed while their connections are open), and
// tears down open connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	if s.batcher != nil {
		// Batches in flight complete and their responses flush to
		// still-open connections; the queue drains with errors.
		s.batcher.Close()
	}
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}
