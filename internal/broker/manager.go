package broker

import "time"

// SubmitRequest asks the resource manager to queue and run a job (rather
// than only returning a hostfile). App selects the built-in workload
// model; real deployments would carry an mpiexec command line instead.
type SubmitRequest struct {
	// Name labels the job.
	Name string `json:"name"`
	// App is "minimd" or "minife".
	App string `json:"app"`
	// Size is miniMD's s or miniFE's nx.
	Size int `json:"size"`
	// Iterations overrides the app's default iteration count.
	Iterations int `json:"iterations,omitempty"`
	// Request is the allocation request made when the job is launched.
	Request Request `json:"request"`
	// Walltime is the user's estimated run time. Zero means unknown; the
	// backfill scheduler only considers jobs with an estimate, exactly
	// like EASY backfill in batch schedulers.
	Walltime time.Duration `json:"walltime,omitempty"`
	// Priority orders the queue: higher runs earlier, ties keep
	// submission order. Zero is the default priority.
	Priority int `json:"priority,omitempty"`
}

// JobInfo is the externally visible state of a submitted job.
type JobInfo struct {
	ID          int           `json:"id"`
	Name        string        `json:"name"`
	State       string        `json:"state"`
	Attempts    int           `json:"attempts"`
	WaitAnswers int           `json:"wait_answers"`
	Nodes       []int         `json:"nodes,omitempty"`
	Hostfile    []string      `json:"hostfile,omitempty"`
	Elapsed     time.Duration `json:"elapsed,omitempty"`
	// PredictedElapsed is the launch-time execution-time prediction from
	// monitoring data (0 when predictions are disabled).
	PredictedElapsed time.Duration `json:"predicted_elapsed,omitempty"`
	// Walltime and Priority echo the submitted estimate and queue
	// priority; Backfilled reports that the job was started out of FIFO
	// order by the backfill scheduler.
	Walltime   time.Duration `json:"walltime,omitempty"`
	Priority   int           `json:"priority,omitempty"`
	Backfilled bool          `json:"backfilled,omitempty"`
	Error      string        `json:"error,omitempty"`
}

// QueueStats summarizes the manager's queue.
type QueueStats struct {
	Pending int `json:"pending"`
	Running int `json:"running"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
}

// Manager extends a broker Server with job submission: jobs are queued,
// launched when the broker stops recommending to wait, and tracked to
// completion. cmd/nlarm-broker wires this to internal/jobqueue plus the
// simulated world.
type Manager interface {
	// Submit queues a job and returns its ID.
	Submit(req SubmitRequest) (int, error)
	// Status returns a job's state.
	Status(id int) (JobInfo, bool)
	// QueueStats returns queue counters.
	QueueStats() QueueStats
}
