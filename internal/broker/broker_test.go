package broker

import (
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/cluster"
	"nlarm/internal/loadgen"
	"nlarm/internal/metrics"
	"nlarm/internal/monitor"
	"nlarm/internal/obs"
	"nlarm/internal/rng"
	"nlarm/internal/simtime"
	"nlarm/internal/store"
	"nlarm/internal/world"
)

var t0 = time.Date(2020, 3, 2, 8, 0, 0, 0, time.UTC)

// rig wires a small monitored cluster and a broker over it.
type rig struct {
	sched *simtime.Scheduler
	w     *world.World
	st    *store.MemStore
	mgr   *monitor.Manager
	b     *Broker
}

func newRig(t testing.TB, seed uint64, bg loadgen.Config) *rig {
	t.Helper()
	cl, err := cluster.BuildUniform(2, 4, 8, 3.0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	sched := simtime.NewScheduler(t0)
	w := world.New(cl, world.Config{Seed: seed, StepSize: time.Second, Background: bg}, t0)
	w.Attach(sched)
	st := store.NewMem()
	mgr := monitor.NewManager(&monitor.WorldProber{W: w}, st, monitor.Config{
		NodeStatePeriod: 2 * time.Second,
		LivehostsPeriod: 2 * time.Second,
		LatencyPeriod:   5 * time.Second,
		BandwidthPeriod: 10 * time.Second,
	})
	if err := mgr.Start(sched); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)
	sched.RunFor(30 * time.Second)
	return &rig{sched: sched, w: w, st: st, mgr: mgr, b: New(st, sched, Config{Seed: seed})}
}

func TestAllocateDefaultPolicy(t *testing.T) {
	r := newRig(t, 1, loadgen.Config{})
	resp, err := r.b.Allocate(Request{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Recommendation != RecommendAllocate {
		t.Fatalf("recommendation %v", resp.Recommendation)
	}
	if resp.Policy != "net-load-aware" {
		t.Fatalf("default policy %q", resp.Policy)
	}
	if len(resp.Nodes) != 2 || len(resp.Hostfile) != 2 {
		t.Fatalf("nodes %v hostfile %v", resp.Nodes, resp.Hostfile)
	}
	for _, line := range resp.Hostfile {
		if !strings.Contains(line, ":4") {
			t.Fatalf("hostfile line %q lacks slot count", line)
		}
	}
	if resp.Allocation.TotalProcs() != 8 {
		t.Fatalf("allocation procs %d", resp.Allocation.TotalProcs())
	}
}

func TestAllocateEachPolicy(t *testing.T) {
	r := newRig(t, 2, loadgen.Config{})
	for _, pol := range r.b.Policies() {
		resp, err := r.b.Allocate(Request{Procs: 8, PPN: 4, Policy: pol})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if resp.Policy != pol {
			t.Fatalf("asked %s got %s", pol, resp.Policy)
		}
	}
}

func TestCostModelCacheReuse(t *testing.T) {
	r := newRig(t, 11, loadgen.Config{})
	req := Request{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7}

	// Frozen virtual time: the store content cannot change between these
	// calls, so the second request must reuse the first's cost model.
	first, err := r.b.Allocate(req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.b.Allocate(req)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := r.b.ModelCacheStats()
	if hits < 1 {
		t.Fatalf("no cache hit on identical back-to-back requests (hits=%d misses=%d)", hits, misses)
	}
	if misses != 1 {
		t.Fatalf("expected exactly one miss (the first build), got %d", misses)
	}
	if !reflect.DeepEqual(first.Nodes, second.Nodes) || !reflect.DeepEqual(first.Procs, second.Procs) {
		t.Fatalf("cached model changed the allocation: %v/%v vs %v/%v",
			first.Nodes, first.Procs, second.Nodes, second.Procs)
	}

	// Different pricing inputs share the fingerprint but not the model:
	// a second key is built (miss), no invalidation.
	if _, err := r.b.Allocate(Request{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7, UseForecast: true}); err != nil {
		t.Fatal(err)
	}
	_, misses = r.b.ModelCacheStats()
	if misses != 2 {
		t.Fatalf("forecast pricing should be a distinct cache entry, got %d misses", misses)
	}

	// Advancing time republishes monitoring data, changing the snapshot
	// fingerprint: the cache must invalidate and rebuild.
	r.sched.RunFor(10 * time.Second)
	if _, err := r.b.Allocate(req); err != nil {
		t.Fatal(err)
	}
	_, missesAfter := r.b.ModelCacheStats()
	if missesAfter != 3 {
		t.Fatalf("republished snapshot should miss the cache, got %d misses", missesAfter)
	}
}

func TestUnknownPolicy(t *testing.T) {
	r := newRig(t, 3, loadgen.Config{})
	if _, err := r.b.Allocate(Request{Procs: 4, Policy: "magic"}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestWaitRecommendation(t *testing.T) {
	// Crush the cluster with background load.
	heavy := loadgen.Config{BaseCPULoad: 12, SessionRatePerHour: 0.001}
	r := newRig(t, 4, heavy)
	resp, err := r.b.Allocate(Request{Procs: 8, PPN: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Recommendation != RecommendWait {
		t.Fatalf("overloaded cluster got %v (load/core %g)", resp.Recommendation, resp.ClusterLoad)
	}
	if len(resp.Nodes) != 0 {
		t.Fatal("wait recommendation included nodes")
	}
	// Force overrides.
	forced, err := r.b.Allocate(Request{Procs: 8, PPN: 4, Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Recommendation != RecommendAllocate || len(forced.Nodes) == 0 {
		t.Fatalf("forced request got %+v", forced)
	}
}

func TestFreeProcsAndEarliestStart(t *testing.T) {
	// Idle cluster: 8 nodes × 8 cores with only trickle background load
	// should report most slots free, and a successful answer carries no
	// earliest-start estimate.
	idle := newRig(t, 41, loadgen.Config{})
	resp, err := idle.b.Allocate(Request{Procs: 8, PPN: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.FreeProcs < 32 || resp.FreeProcs > 64 {
		t.Fatalf("idle cluster FreeProcs = %d, want most of 64 slots", resp.FreeProcs)
	}
	if !resp.EarliestStart.IsZero() {
		t.Fatalf("allocate answer carries EarliestStart %v", resp.EarliestStart)
	}
	recs := idle.b.Decisions(1)
	if len(recs) != 1 || recs[0].FreeProcs != resp.FreeProcs {
		t.Fatalf("decision record FreeProcs = %+v, want %d", recs, resp.FreeProcs)
	}

	// Saturated cluster: zero free slots, and the wait answer estimates
	// when the load will have decayed back to the threshold.
	heavy := newRig(t, 42, loadgen.Config{BaseCPULoad: 12, SessionRatePerHour: 0.001})
	now := heavy.sched.Now()
	wait, err := heavy.b.Allocate(Request{Procs: 8, PPN: 4})
	if err != nil {
		t.Fatal(err)
	}
	if wait.Recommendation != RecommendWait {
		t.Fatalf("overloaded cluster got %v", wait.Recommendation)
	}
	if wait.FreeProcs != 0 {
		t.Fatalf("saturated cluster FreeProcs = %d, want 0", wait.FreeProcs)
	}
	if !wait.EarliestStart.After(now) || wait.EarliestStart.After(now.Add(10*time.Minute)) {
		t.Fatalf("EarliestStart %v not in (now, now+10m]", wait.EarliestStart.Sub(now))
	}
	recs = heavy.b.Decisions(1)
	if len(recs) != 1 || !recs[0].EarliestStart.Equal(wait.EarliestStart) {
		t.Fatalf("decision record EarliestStart = %+v, want %v", recs, wait.EarliestStart)
	}
}

func TestLoadDecayETA(t *testing.T) {
	if got := loadDecayETA(0.5, 0.9); got != time.Second {
		t.Fatalf("below-threshold ETA %v, want the 1s floor", got)
	}
	if got := loadDecayETA(1.0, 0); got != time.Second {
		t.Fatalf("zero threshold ETA %v, want the 1s floor", got)
	}
	lo, hi := loadDecayETA(1.2, 0.9), loadDecayETA(4.0, 0.9)
	if lo <= 0 || hi <= lo {
		t.Fatalf("ETA not increasing in load: %v then %v", lo, hi)
	}
	// ln(2)·60s ≈ 41.5s: a load at twice the threshold decays back in
	// under a minute on the 1-minute window's time constant.
	if got := loadDecayETA(1.8, 0.9); got < 40*time.Second || got > 43*time.Second {
		t.Fatalf("2× threshold ETA = %v, want ≈41.5s", got)
	}
}

func TestStaleMonitorRefused(t *testing.T) {
	r := newRig(t, 5, loadgen.Config{})
	// Stop all monitoring, let data age beyond the threshold.
	r.mgr.Stop()
	r.sched.RunFor(10 * time.Minute)
	if _, err := r.b.Allocate(Request{Procs: 4}); err == nil {
		t.Fatal("stale monitoring data accepted")
	}
}

func TestNoMonitorData(t *testing.T) {
	sched := simtime.NewScheduler(t0)
	b := New(store.NewMem(), sched, Config{})
	if _, err := b.Allocate(Request{Procs: 4}); err == nil {
		t.Fatal("empty store accepted")
	}
}

func TestSnapshotAgeReported(t *testing.T) {
	r := newRig(t, 6, loadgen.Config{})
	resp, err := r.b.Allocate(Request{Procs: 4, PPN: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp.SnapshotAge < 0 || resp.SnapshotAge > time.Minute {
		t.Fatalf("snapshot age %v", resp.SnapshotAge)
	}
}

func TestRegisterPolicy(t *testing.T) {
	r := newRig(t, 7, loadgen.Config{})
	before := len(r.b.Policies())
	r.b.RegisterPolicy(fakePolicy{})
	if len(r.b.Policies()) != before+1 {
		t.Fatal("policy not registered")
	}
	resp, err := r.b.Allocate(Request{Procs: 4, Policy: "fake"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Nodes) != 1 || resp.Nodes[0] != 0 {
		t.Fatalf("fake policy result %v", resp.Nodes)
	}
}

// --- TCP server/client ---------------------------------------------------

func TestServerClientRoundTrip(t *testing.T) {
	r := newRig(t, 8, loadgen.Config{})
	srv, err := NewServer(r.b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Health(); err != nil {
		t.Fatal(err)
	}
	pols, err := c.Policies()
	if err != nil {
		t.Fatal(err)
	}
	if len(pols) != 4 {
		t.Fatalf("policies over wire: %v", pols)
	}
	resp, err := c.Allocate(Request{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Recommendation != RecommendAllocate || len(resp.Hostfile) != 2 {
		t.Fatalf("wire allocate: %+v", resp)
	}
}

func TestServerErrorPropagation(t *testing.T) {
	r := newRig(t, 9, loadgen.Config{})
	srv, err := NewServer(r.b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Allocate(Request{Procs: 4, Policy: "nope"}); err == nil {
		t.Fatal("server error not propagated")
	}
	// Connection still usable after an error response.
	if err := c.Health(); err != nil {
		t.Fatal(err)
	}
}

func TestServerMultipleClients(t *testing.T) {
	r := newRig(t, 10, loadgen.Config{})
	srv, err := NewServer(r.b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			c, err := Dial(srv.Addr(), time.Second)
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			for j := 0; j < 5; j++ {
				if _, err := c.Allocate(Request{Procs: 4, PPN: 4}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	r := newRig(t, 11, loadgen.Config{})
	srv, err := NewServer(r.b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	srv.Close()
	if err := c.Health(); err == nil {
		t.Fatal("health succeeded against closed server")
	}
}

// fakePolicy is a trivial test policy.
type fakePolicy struct{}

func (fakePolicy) Name() string { return "fake" }
func (fakePolicy) Allocate(snap *metrics.Snapshot, req alloc.Request, r *rng.Rand) (alloc.Allocation, error) {
	return alloc.Allocation{Policy: "fake", Nodes: []int{0}, Procs: map[int]int{0: req.Procs}}, nil
}

func TestExplainReturnsCandidates(t *testing.T) {
	r := newRig(t, 12, loadgen.Config{})
	resp, err := r.b.Allocate(Request{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 1 generates one candidate per live node (8 here).
	if len(resp.Candidates) != 8 {
		t.Fatalf("%d candidates", len(resp.Candidates))
	}
	chosen := 0
	for _, c := range resp.Candidates {
		if c.Chosen {
			chosen++
			if len(c.Nodes) != len(resp.Nodes) {
				t.Fatalf("chosen candidate %v vs response %v", c.Nodes, resp.Nodes)
			}
		}
		if len(c.Nodes) == 0 {
			t.Fatalf("empty candidate %+v", c)
		}
	}
	if chosen != 1 {
		t.Fatalf("%d candidates marked chosen", chosen)
	}
	// Non-NLA policies ignore Explain.
	resp, err = r.b.Allocate(Request{Procs: 8, PPN: 4, Policy: "random", Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) != 0 {
		t.Fatal("random policy returned candidates")
	}
}

func TestUseForecastAccepted(t *testing.T) {
	r := newRig(t, 13, loadgen.Config{})
	resp, err := r.b.Allocate(Request{Procs: 8, PPN: 4, UseForecast: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Recommendation != RecommendAllocate {
		t.Fatalf("forecast-priced request got %v", resp.Recommendation)
	}
}

func TestServerRejectsGarbageLine(t *testing.T) {
	r := newRig(t, 14, loadgen.Config{})
	srv, err := NewServer(r.b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "bad request") {
		t.Fatalf("garbage answered with %q", buf[:n])
	}
	// Blank lines are skipped; the connection stays usable.
	if _, err := conn.Write([]byte("\n{\"action\":\"health\"}\n")); err != nil {
		t.Fatal(err)
	}
	n, err = conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf[:n]), "ok") {
		t.Fatalf("health after garbage: %q", buf[:n])
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

// TestAllocateShardedWiring drives a broker configured with a shard
// threshold below the cluster size end to end: the model builds sharded
// (counter ticks), allocations still cover the request, and repeated
// requests with identical weights hit the same cached sharded model.
func TestAllocateShardedWiring(t *testing.T) {
	r := newRig(t, 5, loadgen.Config{})
	cl, err := cluster.BuildUniform(2, 4, 8, 3.0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	shard := alloc.ShardOptions{
		Plan:         alloc.NewShardPlan(cl.Topo.Shards(4), "topology"),
		Threshold:    4,
		MaxShardSize: 4,
		TopK:         1,
	}
	b := New(r.st, r.sched, Config{Seed: 5, Obs: reg, Shard: shard})
	resp, err := b.Allocate(Request{Procs: 8, PPN: 4, Alpha: 0.5, Beta: 0.5, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Recommendation != RecommendAllocate {
		t.Fatalf("recommendation %v", resp.Recommendation)
	}
	if resp.Allocation.TotalProcs() != 8 {
		t.Fatalf("allocation procs %d", resp.Allocation.TotalProcs())
	}
	if len(resp.Candidates) == 0 {
		t.Fatal("explain returned no candidates")
	}
	if got := reg.Counter("broker.model.sharded").Value(); got == 0 {
		t.Fatal("broker.model.sharded counter never ticked")
	}
	if got := reg.Counter("broker.alloc.sharded").Value(); got == 0 {
		t.Fatal("broker.alloc.sharded counter never ticked")
	}
	built := reg.Counter("broker.model.sharded").Value()
	if _, err := b.Allocate(Request{Procs: 8, PPN: 4, Alpha: 0.5, Beta: 0.5}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("broker.model.sharded").Value(); got != built {
		t.Fatalf("second allocate rebuilt the sharded model: %d -> %d builds", built, got)
	}
}
