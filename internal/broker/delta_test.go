package broker

import (
	"reflect"
	"testing"
	"time"

	"nlarm/internal/cluster"
	"nlarm/internal/monitor"
	"nlarm/internal/obs"
	"nlarm/internal/simtime"
	"nlarm/internal/store"
	"nlarm/internal/world"
)

// TestBrokerIncrementalModelUpdate wires the full delta pipeline — a
// versioned store under the monitor daemons and a cache-backed broker —
// and checks that a node-state-only republish is absorbed by an in-place
// CostModel update (not a rebuild) while producing exactly the answer a
// from-scratch broker computes on the same store.
func TestBrokerIncrementalModelUpdate(t *testing.T) {
	cl, err := cluster.BuildUniform(2, 4, 8, 3.0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	sched := simtime.NewScheduler(t0)
	w := world.New(cl, world.Config{Seed: 5, StepSize: time.Second}, t0)
	w.Attach(sched)
	reg := obs.NewRegistry()
	vst := store.Version(store.NewMem())
	mgr := monitor.NewManager(&monitor.WorldProber{W: w}, vst, monitor.Config{
		NodeStatePeriod: 2 * time.Second,
		LivehostsPeriod: 2 * time.Second,
		LatencyPeriod:   5 * time.Second,
		BandwidthPeriod: 10 * time.Second,
	})
	if err := mgr.Start(sched); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Stop)
	sched.RunFor(30 * time.Second)

	b := New(vst, sched, Config{Seed: 5, Obs: reg})
	req := Request{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7}
	if _, err := b.Allocate(req); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("broker.model.update.full").Value(); got != 1 {
		t.Fatalf("cold allocate built %d full models, want 1", got)
	}

	// Advance 2s: NodeStateD and LivehostsD republish, the matrices do
	// not (their periods are 5s and 10s, next fires at t=35s/40s) — an
	// incremental refresh by construction.
	sched.RunFor(2 * time.Second)
	resp, err := b.Allocate(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("broker.model.update.incremental").Value(); got != 1 {
		t.Fatalf("warm allocate after node-state republish did %d incremental updates, want 1 (full=%d)",
			got, reg.Counter("broker.model.update.full").Value())
	}
	if got := reg.Counter("broker.model.update.full").Value(); got != 1 {
		t.Fatalf("warm allocate rebuilt the model from scratch (full=%d)", got)
	}

	// The incrementally maintained model must answer exactly like a
	// broker with no history at all.
	fresh := New(vst, sched, Config{Seed: 5})
	want, err := fresh.Allocate(req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp.Nodes, want.Nodes) || !reflect.DeepEqual(resp.Procs, want.Procs) {
		t.Fatalf("incremental answer diverged:\nincremental: %v %v\nfresh:       %v %v",
			resp.Nodes, resp.Procs, want.Nodes, want.Procs)
	}
	if resp.ClusterLoad != want.ClusterLoad {
		t.Fatalf("ClusterLoad diverged: %v vs %v", resp.ClusterLoad, want.ClusterLoad)
	}
}
