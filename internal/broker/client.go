package broker

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"nlarm/internal/obs"
)

// errClientClosed reports a round trip attempted on (or interrupted by)
// a closed client.
var errClientClosed = errors.New("broker: connection closed")

// ClientOptions tunes a broker connection.
type ClientOptions struct {
	// Timeout bounds the dial. Default 5 seconds.
	Timeout time.Duration
	// Tenant labels every request for admission control. Empty is the
	// default tenant.
	Tenant string
	// MaxInflight caps this connection's concurrently outstanding
	// requests; further calls block until a slot frees. Default 256.
	// Keep it at or below the server's per-connection MaxInflight or the
	// server sheds the excess.
	MaxInflight int
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Second
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 256
	}
	return o
}

// Client talks to a broker Server over one pipelined connection. It is
// safe for concurrent use: every request carries a unique ID, writes are
// serialized, and a reader goroutine demultiplexes responses back to
// their callers by ID — so many goroutines sharing one Client keep many
// requests in flight instead of serializing whole round trips. (The
// pre-pipelining client held one lock across send+receive, which was
// safe but allowed exactly one request per round trip; interleaving
// without IDs would have mismatched responses under concurrency.)
type Client struct {
	conn   net.Conn
	tenant string
	sem    chan struct{} // in-flight slots

	mu      sync.Mutex
	enc     *json.Encoder
	pending map[uint64]chan wireResponse
	nextID  uint64
	err     error // first transport error; sticky
	closed  bool

	readerDone chan struct{}
}

// Dial connects to a broker server at addr.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	return DialOpts(addr, ClientOptions{Timeout: timeout})
}

// DialOpts connects with explicit options (tenant label, in-flight cap).
func DialOpts(addr string, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return nil, fmt.Errorf("broker: dial %s: %w", addr, err)
	}
	c := &Client{
		conn:       conn,
		tenant:     opts.Tenant,
		sem:        make(chan struct{}, opts.MaxInflight),
		enc:        json.NewEncoder(conn),
		pending:    make(map[uint64]chan wireResponse),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop demultiplexes responses to waiting round trips by request ID
// until the connection dies, then fails every still-pending call.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	sc := bufio.NewScanner(c.conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var resp wireResponse
		if err := json.Unmarshal(line, &resp); err != nil {
			c.fail(fmt.Errorf("broker: decode: %w", err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp // buffered; never blocks
		}
		// A response to an unknown ID (e.g. an unsolicited protocol
		// error for ID 0) is dropped: the offending call already failed
		// or no call is waiting.
	}
	err := sc.Err()
	if err == nil {
		err = errClientClosed
	} else {
		err = fmt.Errorf("broker: recv: %w", err)
	}
	c.fail(err)
}

// fail records the first transport error and unblocks every pending
// round trip.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan wireResponse)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Alive reports whether the connection is still usable (no transport
// error and not closed). Pools use it to decide when to redial.
func (c *Client) Alive() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err == nil && !c.closed
}

func (c *Client) roundTrip(req wireRequest) (wireResponse, error) {
	c.sem <- struct{}{}
	defer func() { <-c.sem }()

	ch := make(chan wireResponse, 1)
	c.mu.Lock()
	if c.closed || c.err != nil {
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errClientClosed
		}
		return wireResponse{}, err
	}
	c.nextID++
	id := c.nextID
	req.ID = id
	if req.Tenant == "" {
		req.Tenant = c.tenant
	}
	c.pending[id] = ch
	// Encoding under the lock serializes concurrent writers onto the
	// socket; the reader never takes this lock while delivering, so
	// pipelined calls overlap freely.
	err := c.enc.Encode(req)
	if err != nil {
		delete(c.pending, id)
		c.mu.Unlock()
		c.fail(fmt.Errorf("broker: send: %w", err))
		return wireResponse{}, fmt.Errorf("broker: send: %w", err)
	}
	c.mu.Unlock()

	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = errClientClosed
		}
		return wireResponse{}, err
	}
	if resp.Shed {
		return wireResponse{}, &ShedError{
			Tenant:     req.Tenant,
			RetryAfter: time.Duration(resp.RetryAfterMS) * time.Millisecond,
			Reason:     resp.ShedReason,
		}
	}
	return resp, nil
}

// Allocate requests an allocation.
func (c *Client) Allocate(req Request) (Response, error) {
	resp, err := c.roundTrip(wireRequest{Action: "allocate", Request: req})
	if err != nil {
		return Response{}, err
	}
	if resp.Error != "" {
		return Response{}, errors.New(resp.Error)
	}
	if resp.Response == nil {
		return Response{}, errors.New("broker: empty response")
	}
	return *resp.Response, nil
}

// Policies lists the server's registered policies.
func (c *Client) Policies() ([]string, error) {
	resp, err := c.roundTrip(wireRequest{Action: "policies"})
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	return resp.Policies, nil
}

// Health checks the server is alive.
func (c *Client) Health() error {
	resp, err := c.roundTrip(wireRequest{Action: "health"})
	if err != nil {
		return err
	}
	if resp.Error != "" {
		return errors.New(resp.Error)
	}
	return nil
}

// Submit queues a job on a managed server and returns its ID.
func (c *Client) Submit(req SubmitRequest) (int, error) {
	resp, err := c.roundTrip(wireRequest{Action: "submit", Submit: &req})
	if err != nil {
		return 0, err
	}
	if resp.Error != "" {
		return 0, errors.New(resp.Error)
	}
	return resp.JobID, nil
}

// JobStatus fetches a submitted job's state.
func (c *Client) JobStatus(id int) (JobInfo, error) {
	resp, err := c.roundTrip(wireRequest{Action: "job", JobID: id})
	if err != nil {
		return JobInfo{}, err
	}
	if resp.Error != "" {
		return JobInfo{}, errors.New(resp.Error)
	}
	if resp.Job == nil {
		return JobInfo{}, errors.New("broker: empty job status")
	}
	return *resp.Job, nil
}

// QueueStats fetches the managed server's queue counters.
func (c *Client) QueueStats() (QueueStats, error) {
	resp, err := c.roundTrip(wireRequest{Action: "queue"})
	if err != nil {
		return QueueStats{}, err
	}
	if resp.Error != "" {
		return QueueStats{}, errors.New(resp.Error)
	}
	if resp.Queue == nil {
		return QueueStats{}, errors.New("broker: empty queue stats")
	}
	return *resp.Queue, nil
}

// Metrics fetches the server's instrumentation snapshot and its
// deterministic text rendering.
func (c *Client) Metrics() (*obs.Snapshot, string, error) {
	resp, err := c.roundTrip(wireRequest{Action: "metrics"})
	if err != nil {
		return nil, "", err
	}
	if resp.Error != "" {
		return nil, "", errors.New(resp.Error)
	}
	if resp.Metrics == nil {
		return nil, "", errors.New("broker: empty metrics")
	}
	return resp.Metrics, resp.MetricsText, nil
}

// Decisions fetches the most recent limit allocation decision records
// (0 = all the server retains), oldest first.
func (c *Client) Decisions(limit int) ([]DecisionRecord, error) {
	resp, err := c.roundTrip(wireRequest{Action: "decisions", Limit: limit})
	if err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, errors.New(resp.Error)
	}
	return resp.Decisions, nil
}

// Close closes the client connection and unblocks in-flight calls.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}
