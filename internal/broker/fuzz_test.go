package broker

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"

	"nlarm/internal/loadgen"
)

// sentIDs parses the fuzz input the way the server will — newline-split,
// JSON per line — and collects the request IDs of the well-formed lines.
// Responses may only echo these IDs (or 0 for malformed/ID-less lines).
func sentIDs(data []byte) map[uint64]bool {
	ids := map[uint64]bool{0: true}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var req wireRequest
		if err := json.Unmarshal(line, &req); err == nil {
			ids[req.ID] = true
		}
	}
	return ids
}

// fuzzExchange writes one fuzz input over a fresh connection and checks
// the wire contract on everything that comes back: every line is JSON,
// every response is ok or carries an error, every echoed request ID was
// actually sent (pipelining must never invent or cross-wire IDs), and
// the server always terminates the conversation.
func fuzzExchange(t *testing.T, addr string, data []byte) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Skip("dial failed (fd pressure)")
	}
	defer conn.Close()
	// Hard deadline on everything: a hang is a failure, not a wait.
	conn.SetDeadline(time.Now().Add(5 * time.Second))

	if _, err := conn.Write(data); err != nil {
		return // server already rejected us (e.g. mid-oversized-line close)
	}
	// Half-close so the server sees EOF after our input and can drain.
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
	valid := sentIDs(data)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var resp wireResponse
		if err := json.Unmarshal(line, &resp); err != nil {
			t.Fatalf("server emitted non-JSON line %q: %v", line, err)
		}
		if !resp.OK && resp.Error == "" {
			t.Fatalf("response neither ok nor error: %q", line)
		}
		if !valid[resp.ID] {
			t.Fatalf("response echoes id %d that was never sent: %q", resp.ID, line)
		}
	}
	// Any scanner error other than a clean close means the *client*
	// deadline fired — i.e. the server hung instead of closing.
	if err := sc.Err(); err != nil {
		if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Fatalf("server neither answered nor closed within deadline (input %q)", data)
		}
		// Connection resets are acceptable teardown for hostile input.
	}
}

// addWireSeeds seeds a wire-protocol fuzz target with the interesting
// shapes: plain actions, ID/tenant framing, pipelined lines, malformed
// JSON, truncation, binary garbage, oversized lines.
func addWireSeeds(f *testing.F) {
	f.Add([]byte(`{"action":"health"}` + "\n"))
	f.Add([]byte(`{"action":"policies"}` + "\n"))
	f.Add([]byte(`{"action":"metrics"}` + "\n"))
	f.Add([]byte(`{"action":"decisions","limit":3}` + "\n"))
	f.Add([]byte(`{"action":"allocate","request":{"procs":4,"force":true}}` + "\n"))
	f.Add([]byte(`{"action":"submit"}` + "\n"))
	f.Add([]byte(`{"action":"job","job_id":-1}` + "\n"))
	f.Add([]byte(`{"action":"nope"}` + "\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte(`{"action":"health"`)) // truncated, no newline
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{0x00, 0xff, 0xfe, '\n'})
	f.Add([]byte(`{"action":1234}` + "\n"))
	f.Add([]byte(`{"action":"allocate","request":{"procs":-5}}` + "\n"))
	f.Add(append(bytes.Repeat([]byte("x"), 128*1024), '\n')) // beyond MaxLineBytes
	f.Add([]byte(`{"action":"health"}` + "\n" + `{"action":"policies"}` + "\n"))
	// Request-ID framing: explicit IDs, duplicate IDs, huge IDs, tenant
	// labels, and a pipelined burst whose responses may return reordered.
	f.Add([]byte(`{"id":7,"tenant":"t1","action":"allocate","request":{"procs":4,"force":true}}` + "\n"))
	f.Add([]byte(`{"id":1,"action":"health"}` + "\n" + `{"id":2,"action":"health"}` + "\n" + `{"id":3,"action":"allocate","request":{"procs":2}}` + "\n"))
	f.Add([]byte(`{"id":5,"action":"health"}` + "\n" + `{"id":5,"action":"health"}` + "\n")) // duplicate IDs are the client's problem, not a server crash
	f.Add([]byte(`{"id":18446744073709551615,"action":"health"}` + "\n"))
	f.Add([]byte(`{"id":-1,"action":"health"}` + "\n")) // invalid for uint64: malformed line
	f.Add([]byte(`{"id":9,"tenant":"` + string(bytes.Repeat([]byte("t"), 512)) + `","action":"allocate","request":{"procs":1}}` + "\n"))
}

// FuzzWireProtocol throws arbitrary bytes at the newline-JSON server:
// malformed JSON, unknown actions, oversized lines, truncated requests,
// binary garbage. The contract under fuzzing is that every complete line
// gets exactly one JSON response (ok or error) echoing a sent request
// ID, the connection always terminates (no goroutine pinned by a hostile
// client), and the server never panics — a panic anywhere crashes the
// whole test process, which the fuzzer reports as a failing input.
func FuzzWireProtocol(f *testing.F) {
	r := newRig(f, 31, loadgen.Config{})
	srv, err := NewServerOpts(r.b, nil, "127.0.0.1:0", ServerOptions{
		ReadTimeout:  500 * time.Millisecond,
		MaxLineBytes: 64 * 1024,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close() })
	addr := srv.Addr()

	addWireSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzExchange(t, addr, data)
	})
}

// FuzzWireProtocolBatched runs the same wire contract against a server
// with the batched front door enabled: allocate/submit lines detour
// through admission and the batcher, responses flush per batch and may
// come back out of order — but each must still echo a sent ID, and sheds
// must read as errors.
func FuzzWireProtocolBatched(f *testing.F) {
	r := newRig(f, 32, loadgen.Config{})
	srv, err := NewServerOpts(r.b, nil, "127.0.0.1:0", ServerOptions{
		ReadTimeout:  500 * time.Millisecond,
		MaxLineBytes: 64 * 1024,
		MaxInflight:  8, // small, so fuzzed bursts exercise the inflight shed
		Batching: &BatcherOptions{
			MaxBatch:  16,
			Admission: AdmissionConfig{TenantRate: 1000, TenantBurst: 4, QueueDepth: 8},
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close() })
	addr := srv.Addr()

	addWireSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzExchange(t, addr, data)
	})
}
