package broker

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"testing"
	"time"

	"nlarm/internal/loadgen"
)

// FuzzWireProtocol throws arbitrary bytes at the newline-JSON server:
// malformed JSON, unknown actions, oversized lines, truncated requests,
// binary garbage. The contract under fuzzing is that every complete line
// gets exactly one JSON response (ok or error), the connection always
// terminates (no goroutine pinned by a hostile client), and the server
// never panics — a panic anywhere crashes the whole test process, which
// the fuzzer reports as a failing input.
func FuzzWireProtocol(f *testing.F) {
	r := newRig(f, 31, loadgen.Config{})
	srv, err := NewServerOpts(r.b, nil, "127.0.0.1:0", ServerOptions{
		ReadTimeout:  500 * time.Millisecond,
		MaxLineBytes: 64 * 1024,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close() })
	addr := srv.Addr()

	f.Add([]byte(`{"action":"health"}` + "\n"))
	f.Add([]byte(`{"action":"policies"}` + "\n"))
	f.Add([]byte(`{"action":"metrics"}` + "\n"))
	f.Add([]byte(`{"action":"decisions","limit":3}` + "\n"))
	f.Add([]byte(`{"action":"allocate","request":{"procs":4,"force":true}}` + "\n"))
	f.Add([]byte(`{"action":"submit"}` + "\n"))
	f.Add([]byte(`{"action":"job","job_id":-1}` + "\n"))
	f.Add([]byte(`{"action":"nope"}` + "\n"))
	f.Add([]byte("not json at all\n"))
	f.Add([]byte(`{"action":"health"`)) // truncated, no newline
	f.Add([]byte("\n\n\n"))
	f.Add([]byte{0x00, 0xff, 0xfe, '\n'})
	f.Add([]byte(`{"action":1234}` + "\n"))
	f.Add([]byte(`{"action":"allocate","request":{"procs":-5}}` + "\n"))
	f.Add(append(bytes.Repeat([]byte("x"), 128*1024), '\n')) // beyond MaxLineBytes
	f.Add([]byte(`{"action":"health"}` + "\n" + `{"action":"policies"}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Skip("dial failed (fd pressure)")
		}
		defer conn.Close()
		// Hard deadline on everything: a hang is a failure, not a wait.
		conn.SetDeadline(time.Now().Add(5 * time.Second))

		if _, err := conn.Write(data); err != nil {
			return // server already rejected us (e.g. mid-oversized-line close)
		}
		// Half-close so the server sees EOF after our input and can drain.
		if tc, ok := conn.(*net.TCPConn); ok {
			_ = tc.CloseWrite()
		}
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var resp wireResponse
			if err := json.Unmarshal(line, &resp); err != nil {
				t.Fatalf("server emitted non-JSON line %q: %v", line, err)
			}
			if !resp.OK && resp.Error == "" {
				t.Fatalf("response neither ok nor error: %q", line)
			}
		}
		// Any scanner error other than a clean close means the *client*
		// deadline fired — i.e. the server hung instead of closing.
		if err := sc.Err(); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatalf("server neither answered nor closed within deadline (input %q)", data)
			}
			// Connection resets are acceptable teardown for hostile input.
		}
	})
}
