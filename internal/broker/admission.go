package broker

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"
)

// ErrShed is the sentinel error for admission-control rejections: the
// request was dropped before pricing because the tenant exceeded its
// token-bucket rate, its queue was full, or the connection had too many
// requests in flight. Callers match it with errors.Is; the concrete
// *ShedError carries the retry hint.
var ErrShed = errors.New("broker: request shed")

// ErrBatcherClosed is returned by Batcher enqueues after Close, and
// delivered to requests still queued when the batcher shut down.
var ErrBatcherClosed = errors.New("broker: batcher closed")

// ShedError reports an admission-control rejection. It unwraps to
// ErrShed, so errors.Is(err, ErrShed) selects every shed outcome
// regardless of the reason.
type ShedError struct {
	// Tenant is the rejected request's tenant label ("" = default).
	Tenant string
	// RetryAfter is the server's estimate of when capacity frees up:
	// the token bucket's next-token time for rate sheds, one batch
	// window's worth of drain for queue-full sheds. A hint, not a
	// reservation.
	RetryAfter time.Duration
	// Reason is "rate", "queue-full", or "inflight".
	Reason string
}

// Error formats the shed with its reason and retry hint.
func (e *ShedError) Error() string {
	return fmt.Sprintf("broker: request shed (%s, tenant %q, retry after %v)", e.Reason, e.Tenant, e.RetryAfter)
}

// Is reports that a ShedError matches the ErrShed sentinel.
func (e *ShedError) Is(target error) bool { return target == ErrShed }

// AdmissionConfig tunes the per-tenant token-bucket admission control in
// front of the batcher. The zero value admits everything (no rate limit,
// default queue depth) — admission only binds when configured.
type AdmissionConfig struct {
	// TenantRate is each tenant's sustained admission rate in requests
	// per second. 0 disables rate limiting.
	TenantRate float64
	// TenantBurst is the token-bucket size (instantaneous burst
	// allowance). Default: max(1, ceil(TenantRate)).
	TenantBurst int
	// QueueDepth bounds each tenant's pending queue; arrivals beyond it
	// are shed. Default 1024.
	QueueDepth int
	// Weights sets per-tenant weighted-round-robin dequeue weights
	// (default 1 each): a tenant with weight 2 drains two requests per
	// scheduling turn for every one of a weight-1 tenant, whenever both
	// have work queued.
	Weights map[string]int
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.TenantBurst <= 0 {
		// ceil(TenantRate), floored at 1. The old +0.999 trick
		// under-rounded fractional rates just above an integer (e.g.
		// 1.0005 → burst 1 instead of 2), which shrank the bucket and
		// inflated rate-shed RetryAfter hints for those tenants.
		c.TenantBurst = 1
		if b := math.Ceil(c.TenantRate); b > 1 {
			c.TenantBurst = int(b)
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	return c
}

// pendingItem is one queued front-door request: exactly one of alloc or
// submit is set, and exactly one of the done callbacks is invoked once.
type pendingItem struct {
	tenant     string
	alloc      *Request
	submit     *SubmitRequest
	doneAlloc  func(Response, error)
	doneSubmit func(int, error)
}

// fail delivers err to whichever callback the item carries.
func (p *pendingItem) fail(err error) {
	if p.doneAlloc != nil {
		p.doneAlloc(Response{}, err)
	} else if p.doneSubmit != nil {
		p.doneSubmit(0, err)
	}
}

// tenantState is one tenant's token bucket and FIFO queue. All fields
// are guarded by the owning batcher's mutex.
type tenantState struct {
	name   string
	tokens float64
	last   time.Time
	weight int
	queue  []*pendingItem
}

// admission is the token-bucket + weighted-round-robin front of the
// batcher. It has no lock of its own: every method must be called with
// the owning Batcher's mutex held, which keeps the bucket refill, the
// queue bounds, and the WRR cursor consistent with the batcher's
// dispatch state.
type admission struct {
	cfg     AdmissionConfig
	tenants map[string]*tenantState
	order   []string // sorted tenant names: deterministic WRR sweep order
	cursor  int      // WRR position in order, persists across dequeues
	depth   int      // total queued items across tenants
}

func newAdmission(cfg AdmissionConfig) *admission {
	return &admission{cfg: cfg.withDefaults(), tenants: make(map[string]*tenantState)}
}

// state returns (creating if needed) the tenant's bucket and queue.
// New tenants start with a full burst allowance.
func (a *admission) state(tenant string, now time.Time) *tenantState {
	ts, ok := a.tenants[tenant]
	if !ok {
		weight := 1
		if w, ok := a.cfg.Weights[tenant]; ok && w > 0 {
			weight = w
		}
		ts = &tenantState{name: tenant, tokens: float64(a.cfg.TenantBurst), last: now, weight: weight}
		a.tenants[tenant] = ts
		i := sort.SearchStrings(a.order, tenant)
		a.order = append(a.order, "")
		copy(a.order[i+1:], a.order[i:])
		a.order[i] = tenant
		if i < a.cursor {
			a.cursor++ // keep the cursor on the tenant it pointed at
		}
	}
	return ts
}

// admit runs the token bucket and queue-depth checks for one arrival and
// either queues the item or returns the shed verdict. The caller owns
// delivering the ShedError to the request.
func (a *admission) admit(item *pendingItem, now time.Time) *ShedError {
	ts := a.state(item.tenant, now)
	if a.cfg.TenantRate > 0 {
		dt := now.Sub(ts.last).Seconds()
		if dt > 0 {
			ts.tokens += dt * a.cfg.TenantRate
			if max := float64(a.cfg.TenantBurst); ts.tokens > max {
				ts.tokens = max
			}
			ts.last = now
		}
		if ts.tokens < 1 {
			wait := time.Duration((1 - ts.tokens) / a.cfg.TenantRate * float64(time.Second))
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			return &ShedError{Tenant: item.tenant, RetryAfter: wait, Reason: "rate"}
		}
		ts.tokens--
	}
	if len(ts.queue) >= a.cfg.QueueDepth {
		// The queue drains one batch per dispatch; a full queue's retry
		// hint is one queue's worth of service at the tenant's rate, or a
		// nominal dispatch interval when no rate is configured.
		wait := 50 * time.Millisecond
		if a.cfg.TenantRate > 0 {
			wait = time.Duration(float64(a.cfg.QueueDepth) / a.cfg.TenantRate * float64(time.Second))
		}
		return &ShedError{Tenant: item.tenant, RetryAfter: wait, Reason: "queue-full"}
	}
	ts.queue = append(ts.queue, item)
	a.depth++
	return nil
}

// dequeue removes up to max items in weighted round-robin order across
// tenant queues: each sweep visits tenants in sorted-name order starting
// at the persistent cursor, taking up to weight items per tenant per
// sweep, so two equal-weight tenants with backlogs split a batch evenly
// no matter how lopsided their offered load is.
func (a *admission) dequeue(max int) []*pendingItem {
	if max <= 0 || a.depth == 0 {
		return nil
	}
	var out []*pendingItem
	for len(out) < max && a.depth > 0 {
		progressed := false
		for range a.order {
			if len(out) >= max {
				break
			}
			name := a.order[a.cursor%len(a.order)]
			a.cursor = (a.cursor + 1) % len(a.order)
			ts := a.tenants[name]
			take := ts.weight
			for take > 0 && len(ts.queue) > 0 && len(out) < max {
				item := ts.queue[0]
				copy(ts.queue, ts.queue[1:])
				ts.queue[len(ts.queue)-1] = nil
				ts.queue = ts.queue[:len(ts.queue)-1]
				out = append(out, item)
				a.depth--
				take--
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	return out
}

// drain removes and returns every queued item (used at Close).
func (a *admission) drain() []*pendingItem {
	var out []*pendingItem
	for _, name := range a.order {
		ts := a.tenants[name]
		out = append(out, ts.queue...)
		ts.queue = nil
	}
	a.depth = 0
	return out
}
