package broker

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"nlarm/internal/loadgen"
)

// startServer spins a broker server for pipelining tests and tears it
// down with the test.
func startServer(t *testing.T, seed uint64, opts ServerOptions) (*rig, *Server) {
	t.Helper()
	r := newRig(t, seed, loadgen.Config{})
	srv, err := NewServerOpts(r.b, nil, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return r, srv
}

// procsOf sums a response's per-node process counts — the echo that
// ties a response back to the request that asked for it.
func procsOf(resp Response) int {
	total := 0
	for _, n := range resp.Procs {
		total += n
	}
	return total
}

// TestClientPipelineNoCrossWiring is the regression test for the
// round-trip serialization fix: the old client held one lock across
// send+receive, so interleaved concurrent calls were impossible and an
// ID-less interleaving would have handed responses to the wrong
// callers. Here many goroutines share one Client, each asking for a
// distinct process count, and every response must answer its own
// request — on both the inline and the batched server paths.
func TestClientPipelineNoCrossWiring(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts ServerOptions
	}{
		{"inline", ServerOptions{}},
		{"batched", ServerOptions{Batching: &BatcherOptions{MaxBatch: 32}}},
	} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			_, srv := startServer(t, 41, mode.opts)
			c, err := Dial(srv.Addr(), time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			const workers = 8
			const rounds = 30
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				want := w + 1 // distinct procs per goroutine
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						resp, err := c.Allocate(Request{Procs: want, Force: true})
						if err != nil {
							errs <- fmt.Errorf("procs=%d: %w", want, err)
							return
						}
						if got := procsOf(resp); got != want {
							errs <- fmt.Errorf("asked for %d procs, response placed %d: cross-wired", want, got)
							return
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
		})
	}
}

// TestClientPipelinesConcurrently proves requests actually overlap on
// one connection: with a batching server and no dispatcher running,
// every in-flight request parks in the queue — N concurrent calls can
// only all become pending at once if the client pipelines instead of
// serializing whole round trips.
func TestClientPipelinesConcurrently(t *testing.T) {
	r := newRig(t, 42, loadgen.Config{})
	bt := NewBatcher(r.b, nil, BatcherOptions{MaxBatch: 64})
	srv, err := NewServerOpts(r.b, nil, "127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	// Undispatched batcher injected by hand: requests queue until we
	// Flush, which must still drain the per-connection write buffers.
	bt.opts.AfterBatch = srv.flushDirty
	srv.batcher = bt

	c, err := Dial(srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const inflight = 10
	var wg sync.WaitGroup
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Allocate(Request{Procs: 4, Force: true}); err != nil {
				t.Errorf("pipelined allocate: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for bt.QueueDepth() < inflight {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests in flight on one connection: client is serializing round trips", bt.QueueDepth(), inflight)
		}
		time.Sleep(time.Millisecond)
	}
	if served := bt.Flush(); served != inflight {
		t.Fatalf("flush served %d of %d", served, inflight)
	}
	wg.Wait()
	bt.Close()
}

// TestPoolReconnectsAfterConnDeath kills every server-side connection
// out from under a pool and checks the next calls transparently redial
// and succeed — the retry path that makes server restarts invisible to
// pool callers.
func TestPoolReconnectsAfterConnDeath(t *testing.T) {
	_, srv := startServer(t, 43, ServerOptions{Batching: &BatcherOptions{MaxBatch: 16}})
	p := NewPool(srv.Addr(), PoolOptions{Size: 3})
	defer p.Close()

	for i := 0; i < 6; i++ { // warm every slot
		if _, err := p.Allocate(Request{Procs: 4, Force: true}); err != nil {
			t.Fatalf("warmup %d: %v", i, err)
		}
	}
	srv.DisconnectAll()
	for i := 0; i < 6; i++ { // every slot must recover
		if _, err := p.Allocate(Request{Procs: 4, Force: true}); err != nil {
			t.Fatalf("post-disconnect allocate %d: %v", i, err)
		}
	}
	if err := p.Health(); err != nil {
		t.Fatalf("health after recovery: %v", err)
	}
}

// TestPoolDoesNotRetrySheds: a shed is a server answer, not a transport
// failure — retrying it on a fresh connection would defeat admission
// control. The pool must hand the ShedError straight back.
func TestPoolDoesNotRetrySheds(t *testing.T) {
	r, srv := startServer(t, 44, ServerOptions{Batching: &BatcherOptions{
		MaxBatch:  16,
		Admission: AdmissionConfig{TenantRate: 1, TenantBurst: 1},
	}})
	p := NewPool(srv.Addr(), PoolOptions{Size: 1})
	defer p.Close()

	if _, err := p.Allocate(Request{Procs: 4, Force: true}); err != nil {
		t.Fatalf("first allocate (burst token): %v", err)
	}
	_, err := p.Allocate(Request{Procs: 4, Force: true})
	var se *ShedError
	if !errors.As(err, &se) {
		t.Fatalf("second allocate: got %v, want shed", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("shed lost its retry hint over the wire: %+v", se)
	}
	shedTotal := r.b.Obs().Counter("broker.admit.shed.total").Value()
	if shedTotal != 1 {
		t.Fatalf("server shed %d requests; a retry would have made it 2+", shedTotal)
	}
}

// TestPoolLazyDialFailure: a pool pointed at a dead address fails each
// call with a dial error rather than hanging or panicking, and Close is
// still clean.
func TestPoolLazyDialFailure(t *testing.T) {
	p := NewPool("127.0.0.1:1", PoolOptions{Size: 2, Client: ClientOptions{Timeout: 200 * time.Millisecond}})
	if _, err := p.Allocate(Request{Procs: 4}); err == nil {
		t.Fatal("allocate against dead address succeeded")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := p.Allocate(Request{Procs: 4}); !errors.Is(err, errClientClosed) {
		t.Fatalf("allocate after close: %v", err)
	}
}
