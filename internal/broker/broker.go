// Package broker ties the resource monitor and the node allocator into
// the user-facing service of Figure 3: a user submits a request (process
// count, optional ppn, α/β, policy), the broker assembles the current
// monitoring snapshot, runs the allocation policy, and returns the chosen
// node set as an MPI hostfile.
//
// The broker also implements the paper's future-work recommendation
// (§6): when the whole cluster is heavily loaded there is no good set of
// nodes, and the broker advises the user to wait instead of allocating.
package broker

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"nlarm/internal/alloc"
	"nlarm/internal/metrics"
	"nlarm/internal/monitor"
	"nlarm/internal/obs"
	"nlarm/internal/rng"
	"nlarm/internal/simtime"
	"nlarm/internal/store"
)

// Recommendation is the broker's verdict on a request.
type Recommendation string

const (
	// RecommendAllocate means the returned allocation is good to use.
	RecommendAllocate Recommendation = "allocate"
	// RecommendWait means the cluster is too loaded for a useful
	// allocation; the job should be submitted later.
	RecommendWait Recommendation = "wait"
)

// Request is a broker allocation request.
type Request struct {
	// Procs is the total number of MPI processes.
	Procs int `json:"procs"`
	// PPN optionally fixes processes per node.
	PPN int `json:"ppn,omitempty"`
	// Alpha/Beta balance compute vs network cost (Equation 4); both zero
	// means 0.5/0.5.
	Alpha float64 `json:"alpha,omitempty"`
	Beta  float64 `json:"beta,omitempty"`
	// Policy selects the allocation policy by name; empty means
	// "net-load-aware".
	Policy string `json:"policy,omitempty"`
	// Force requests an allocation even when the broker would recommend
	// waiting.
	Force bool `json:"force,omitempty"`
	// UseForecast prices nodes by their NWS-style forecasts instead of the
	// windowed means.
	UseForecast bool `json:"use_forecast,omitempty"`
	// Explain additionally returns every candidate sub-graph the heuristic
	// considered (net-load-aware only) — the machine-readable version of
	// the paper's Figure 7 analysis.
	Explain bool `json:"explain,omitempty"`
}

// CandidateInfo is one candidate sub-graph from Algorithm 1, with its
// Equation-4 total load.
type CandidateInfo struct {
	Start     int     `json:"start"`
	Nodes     []int   `json:"nodes"`
	TotalLoad float64 `json:"total_load"`
	Chosen    bool    `json:"chosen"`
	// Spill marks a candidate from the hierarchical allocator that could
	// not be satisfied inside its seed shard and crossed shard boundaries.
	Spill bool `json:"spill,omitempty"`
}

// Response is the broker's answer.
type Response struct {
	Recommendation Recommendation   `json:"recommendation"`
	Policy         string           `json:"policy"`
	Nodes          []int            `json:"nodes"`
	Procs          map[int]int      `json:"procs"`
	Hostfile       []string         `json:"hostfile"`
	SnapshotAge    time.Duration    `json:"snapshot_age"`
	ClusterLoad    float64          `json:"cluster_load_per_core"`
	Allocation     alloc.Allocation `json:"-"`
	// FreeProcs is the cluster's aggregate idle process slots in the
	// served snapshot (Σ NodeFreeSlots over monitored livehosts) — the
	// non-wrapping free-capacity reading the job queue's backfill
	// admission works from. Populated for every outcome, including waits
	// and errors past the snapshot read.
	FreeProcs int `json:"free_procs"`
	// EarliestStart estimates, on wait answers only, when the cluster-wide
	// load will have decayed back to the wait threshold: assuming the
	// 1-minute load means decay exponentially with their 60-second time
	// constant, load(t) = load·exp(-t/60s) reaches the threshold at
	// now + ln(load/threshold)·60s. The job queue uses it as the head
	// job's reserved-start estimate; it is a model, not a promise.
	EarliestStart time.Time `json:"earliest_start,omitempty"`
	// Degraded reports that the monitoring store could not serve a fresh
	// snapshot and the answer came from the broker's last-good copy
	// (restricted to nodes still present in the current livehosts list
	// when that list was readable). DegradedReason says why.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Candidates holds Algorithm 1's full candidate set when the request
	// asked for an explanation (net-load-aware policy only).
	Candidates []CandidateInfo `json:"candidates,omitempty"`
	// SnapshotFP is the content fingerprint of the monitoring snapshot
	// this answer was priced against. Every response in one batch
	// carries the same fingerprint — the batcher's same-generation
	// guarantee, testable by clients.
	SnapshotFP uint64 `json:"snapshot_fp,omitempty"`

	// counterfactuals carries the top-k rejected candidates from the
	// allocate path into the decision record (Config.CounterfactualK > 0,
	// net-load-aware only). Unexported: it is decision-log material, not
	// part of the wire response — clients wanting candidates ask with
	// Explain.
	counterfactuals []CounterfactualCandidate
}

// Config tunes the broker.
type Config struct {
	// WaitLoadPerCore is the cluster-wide average CPU load per logical
	// core above which the broker recommends waiting. Default 0.9.
	WaitLoadPerCore float64
	// SnapshotMaxAge is how stale node data may be before the broker
	// refuses to allocate. Default 2 minutes.
	SnapshotMaxAge time.Duration
	// Seed drives policy randomness.
	Seed uint64
	// Obs is the instrumentation registry the broker records into. Nil
	// makes the broker create a private one (so the "metrics" wire action
	// always has data); pass a shared registry to aggregate the whole
	// stack's metrics in one place.
	Obs *obs.Registry
	// DecisionLog bounds the allocation decision ring. Default 256.
	DecisionLog int
	// CounterfactualK retains the k cheapest rejected Algorithm 1
	// candidates (with their decision-time CL/NL pricing) in every
	// net-load-aware decision record, for counterfactual regret analysis
	// (internal/tune). 0 — the default — records no counterfactuals and
	// keeps the allocate path bit-identical to a broker without the
	// feature.
	CounterfactualK int
	// Shard configures the hierarchical cost model (topology-sharded
	// network-load layer). The zero value leaves sharding off (the dense
	// exhaustive path at every size); set Shard.Threshold (e.g.
	// alloc.DefaultShardThreshold) to enable it, and Shard.Plan (from
	// topology.Shards) for topology-aligned shards instead of hash
	// buckets. See alloc.ShardOptions.
	Shard alloc.ShardOptions
}

func (c Config) withDefaults() Config {
	if c.WaitLoadPerCore == 0 {
		c.WaitLoadPerCore = 0.9
	}
	if c.SnapshotMaxAge == 0 {
		c.SnapshotMaxAge = 2 * time.Minute
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Obs == nil {
		c.Obs = obs.NewRegistry()
	}
	if c.DecisionLog <= 0 {
		c.DecisionLog = 256
	}
	return c
}

// Broker serves allocation requests from monitoring data in a shared
// store. It is safe for concurrent use.
type Broker struct {
	cfg      Config
	st       store.Store
	rt       simtime.Runtime
	mu       sync.Mutex
	rnd      *rng.Rand
	policies map[string]alloc.Policy

	// Delta snapshot pipeline: when the store tracks per-key generations
	// (monitor.GenSource), snapshots come from a SnapshotCache that
	// re-reads only changed keys; concurrent Allocate calls coalesce
	// behind one in-flight refresh. A nil cache means the store has no
	// generation tracking and every request does a full read (the
	// pre-delta behavior).
	cache  *monitor.SnapshotCache
	sfMu   sync.Mutex
	sfCall *refreshCall

	// Cost-model cache: dense Equation 1/2 evaluations keyed by snapshot
	// content fingerprint + pricing inputs, so back-to-back Allocate
	// calls against an unchanged monitoring view skip recomputation. A
	// fingerprint change (the monitor republished) retires the current
	// generation of models into prevModels for one epoch, so an
	// incremental refresh (only k nodes' dynamic attributes changed) can
	// update the retired model in place instead of rebuilding O(n²).
	modelMu     sync.Mutex
	models      map[modelKey]*alloc.CostModel
	modelFP     uint64
	prevModels  map[modelKey]*alloc.CostModel
	prevFP      uint64
	cacheHits   uint64
	cacheMisses uint64

	// Degraded-mode state: the last snapshot that passed the freshness
	// checks, kept so a monitoring outage (store unreadable, data aged
	// out) downgrades service instead of interrupting it. lastGoodFP
	// gates the deep copy: an unchanged fingerprint means the stored
	// clone is already current.
	lastGoodMu sync.Mutex
	lastGood   *metrics.Snapshot
	lastGoodFP uint64
	degraded   uint64 // responses served from lastGood

	// Observability: counters/histograms plus the bounded decision log
	// served by the "metrics"/"decisions" wire actions. decMu orders Seq
	// assignment with the ring append (concurrent recordDecision calls
	// must not interleave between the two), guarding decSeq.
	obs       *obs.Registry
	decisions *obs.Ring[DecisionRecord]
	decMu     sync.Mutex
	decSeq    uint64
}

// modelKey identifies one cached cost model: the snapshot's content
// fingerprint plus the pricing inputs (attribute weights, forecast
// flag) and the sharding configuration signature the model was built
// with — a re-planned shard layout must not serve a stale hierarchy.
type modelKey struct {
	fp       uint64
	weights  alloc.Weights
	forecast bool
	shard    uint64
}

// refreshCall is one in-flight snapshot-cache refresh; concurrent
// requests wait on done and share its result (singleflight).
type refreshCall struct {
	done chan struct{}
	res  monitor.Refresh
	err  error
}

// snapView is the snapshot a request was served with, plus the delta
// metadata the cost-model cache needs. A non-cache (full-read) view has
// Incremental false and PrevFP 0.
type snapView struct {
	snap        *metrics.Snapshot
	fp          uint64
	prevFP      uint64
	incremental bool
	changed     []int
}

// New builds a broker reading monitoring data from st, with the standard
// policy set registered (random, sequential, load-aware, net-load-aware).
func New(st store.Store, rt simtime.Runtime, cfg Config) *Broker {
	cfg = cfg.withDefaults()
	b := &Broker{
		cfg:       cfg,
		st:        st,
		rt:        rt,
		rnd:       rng.New(cfg.Seed),
		policies:  make(map[string]alloc.Policy),
		models:    make(map[modelKey]*alloc.CostModel),
		obs:       cfg.Obs,
		decisions: obs.NewRing[DecisionRecord](cfg.DecisionLog),
	}
	for _, p := range []alloc.Policy{alloc.Random{}, alloc.Sequential{}, alloc.LoadAware{}, alloc.NetLoadAware{}} {
		b.policies[p.Name()] = p
	}
	if gs, ok := st.(monitor.GenSource); ok {
		b.cache = monitor.NewSnapshotCache(gs, b.obs, rt.Now)
	}
	return b
}

// RegisterPolicy adds or replaces a policy under its name.
func (b *Broker) RegisterPolicy(p alloc.Policy) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.policies[p.Name()] = p
}

// Policies returns the registered policy names, sorted.
func (b *Broker) Policies() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	names := make([]string, 0, len(b.policies))
	for n := range b.policies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot returns the current consolidated monitoring view.
func (b *Broker) Snapshot() (*metrics.Snapshot, error) {
	return monitor.ReadSnapshotObs(b.st, b.rt.Now(), b.obs)
}

// freshView obtains the current monitoring view: a delta refresh of the
// snapshot cache when the store tracks generations, else a full read.
// Concurrent cache refreshes coalesce — one caller sweeps the store,
// the rest wait on its result.
func (b *Broker) freshView() (snapView, error) {
	if b.cache == nil {
		snap, err := b.Snapshot()
		if err != nil {
			return snapView{}, err
		}
		return snapView{snap: snap, fp: snap.Fingerprint()}, nil
	}
	b.sfMu.Lock()
	if call := b.sfCall; call != nil {
		b.sfMu.Unlock()
		<-call.done
		b.obs.Counter("broker.snapshot.refresh.shared").Inc()
		return viewOf(call.res), call.err
	}
	call := &refreshCall{done: make(chan struct{})}
	b.sfCall = call
	b.sfMu.Unlock()
	call.res, call.err = b.cache.Refresh(b.rt.Now())
	b.sfMu.Lock()
	b.sfCall = nil
	b.sfMu.Unlock()
	close(call.done)
	return viewOf(call.res), call.err
}

func viewOf(r monitor.Refresh) snapView {
	return snapView{
		snap:        r.Snap,
		fp:          r.FP,
		prevFP:      r.PrevFP,
		incremental: r.Incremental,
		changed:     r.ChangedNodes,
	}
}

// acquireSnapshot is Allocate's graceful-degradation front end. It
// prefers a fresh view; when the read fails or the data is older
// than SnapshotMaxAge it falls back to the last snapshot that passed
// those checks, marks it Degraded, and — when the livehosts list is
// still readable — drops nodes no longer in it, so a degraded answer can
// never place ranks on hosts the monitor has since declared dead. With
// no last-good copy (the broker never saw a healthy monitor) the
// original errors surface unchanged.
func (b *Broker) acquireSnapshot() (snapView, string, error) {
	sv, err := b.freshView()
	var reason string
	switch {
	case err != nil:
		reason = fmt.Sprintf("snapshot read failed: %v", err)
	case alloc.StaleAfter(sv.snap, b.cfg.SnapshotMaxAge):
		reason = fmt.Sprintf("monitoring data older than %v", b.cfg.SnapshotMaxAge)
	default:
		b.lastGoodMu.Lock()
		if b.lastGood == nil || b.lastGoodFP != sv.fp {
			b.lastGood = sv.snap.Clone()
			b.lastGoodFP = sv.fp
		}
		b.lastGoodMu.Unlock()
		return sv, "", nil
	}

	b.lastGoodMu.Lock()
	var lg *metrics.Snapshot
	if b.lastGood != nil {
		lg = b.lastGood.Clone()
		b.degraded++
	}
	b.lastGoodMu.Unlock()
	if lg == nil {
		if err != nil {
			return snapView{}, "", fmt.Errorf("broker: no monitoring data: %w", err)
		}
		return snapView{}, "", fmt.Errorf("broker: monitoring data older than %v; is the monitor running?", b.cfg.SnapshotMaxAge)
	}
	lg.Degraded = true
	if hosts, _, err := monitor.ReadLivehosts(b.st); err == nil {
		cur := make(map[int]bool, len(hosts))
		for _, id := range hosts {
			cur[id] = true
		}
		kept := lg.Livehosts[:0]
		for _, id := range lg.Livehosts {
			if cur[id] {
				kept = append(kept, id)
			}
		}
		lg.Livehosts = kept
	}
	// The livehosts filtering above may have changed content, so the
	// degraded view's fingerprint is computed, not cached (rare path).
	return snapView{snap: lg, fp: lg.Fingerprint()}, reason, nil
}

// DegradedServed reports how many allocation requests were answered from
// the last-good snapshot instead of a fresh read.
func (b *Broker) DegradedServed() uint64 {
	b.lastGoodMu.Lock()
	defer b.lastGoodMu.Unlock()
	return b.degraded
}

// costModel returns the dense cost model for the served view priced
// with the given weights and forecast flag, reusing the cached
// evaluation when the monitoring content is unchanged since it was
// built. A fingerprint change (the monitor republished) retires the
// current model generation; when the view says the change was
// incremental (same node set, same matrices, k nodes' dynamic
// attributes moved) and the retired generation belongs to the view's
// predecessor fingerprint, the retired model is updated in place via
// CostModel.UpdateNodes instead of being rebuilt from scratch.
func (b *Broker) costModel(sv snapView, w alloc.Weights, forecast bool) (*alloc.CostModel, bool) {
	shardSig := b.cfg.Shard.Signature()
	key := modelKey{fp: sv.fp, weights: w, forecast: forecast, shard: shardSig}
	b.modelMu.Lock()
	defer b.modelMu.Unlock()
	if sv.fp != b.modelFP {
		b.prevModels, b.prevFP = b.models, b.modelFP
		b.models = make(map[modelKey]*alloc.CostModel)
		b.modelFP = sv.fp
	}
	if m, ok := b.models[key]; ok {
		b.cacheHits++
		b.obs.Counter("broker.modelcache.hits").Inc()
		return m, true
	}
	var m *alloc.CostModel
	if sv.incremental && sv.prevFP != 0 && sv.prevFP == b.prevFP {
		if pm, ok := b.prevModels[modelKey{fp: sv.prevFP, weights: w, forecast: forecast, shard: shardSig}]; ok {
			if um, ok := pm.UpdateNodes(sv.snap, sv.changed); ok {
				m = um
				b.obs.Counter("broker.model.update.incremental").Inc()
			}
		}
	}
	if m == nil {
		m = alloc.NewCostModelSharded(sv.snap, w, forecast, b.cfg.Shard)
		b.obs.Counter("broker.model.update.full").Inc()
	}
	if m.Sharded() {
		b.obs.Counter("broker.model.sharded").Inc()
	}
	b.models[key] = m
	b.cacheMisses++
	b.obs.Counter("broker.modelcache.misses").Inc()
	return m, false
}

// ModelCacheStats reports cost-model cache hits and misses since the
// broker was built (diagnostic).
func (b *Broker) ModelCacheStats() (hits, misses uint64) {
	b.modelMu.Lock()
	defer b.modelMu.Unlock()
	return b.cacheHits, b.cacheMisses
}

// clusterLoadPerCore computes the live cluster's average CPU load per
// logical core — the "overall load" of the paper's wait heuristic.
func clusterLoadPerCore(snap *metrics.Snapshot) float64 {
	totalLoad, totalCores := 0.0, 0.0
	for _, id := range snap.Livehosts {
		na, ok := snap.Nodes[id]
		if !ok {
			continue
		}
		totalLoad += na.CPULoad.M1
		totalCores += float64(na.Cores)
	}
	if totalCores == 0 {
		return 0
	}
	return totalLoad / totalCores
}

// loadDecayETA estimates how long until a per-core load above the wait
// threshold decays back to it. The 1-minute running means behave like an
// exponential moving average with a 60-second time constant, so once the
// demand that produced the spike ends, load(t) ≈ load·exp(-t/60s); that
// crosses threshold at t = ln(load/threshold)·60s. The estimate is
// floored at one second so a hair-above-threshold answer still points
// into the future, and it is only a model — jobs may end later (or
// demand may persist), so callers must treat it as a hint, never a
// deadline.
func loadDecayETA(load, threshold float64) time.Duration {
	if threshold <= 0 || load <= threshold {
		return time.Second
	}
	eta := time.Duration(math.Log(load/threshold) * float64(time.Minute))
	if eta < time.Second {
		eta = time.Second
	}
	return eta
}

// Allocate serves one request, recording a structured decision record
// (request shape, candidate count, chosen nodes with per-node CL and
// pairwise NL contributions, cache hit, degraded flag) for every outcome
// — success, wait, or error.
func (b *Broker) Allocate(req Request) (Response, error) {
	start := b.rt.Now()
	resp, model, cacheHit, err := b.allocate(req)
	b.finishDecision(start, req, resp, model, cacheHit, err)
	if err != nil {
		return Response{}, err
	}
	return resp, nil
}

// BatchResult is one request's outcome from AllocateBatch. Exactly one
// of Response/Err is meaningful, matching Allocate's return contract.
type BatchResult struct {
	Response Response
	Err      error
}

// AllocateBatch prices every request against one snapshot generation:
// the snapshot (and its singleflight refresh) is acquired once, then the
// requests are applied sequentially in order, exactly as back-to-back
// Allocate calls against an unchanged store would be — results are
// bit-identical to that sequential execution, including decision
// records and policy-rng consumption. Identical requests under a
// stateless deterministic policy are additionally deduplicated within
// the batch (the first answer is reused), which cannot change results
// precisely because sequential identical requests on one snapshot are
// deterministic for those policies.
func (b *Broker) AllocateBatch(reqs []Request) []BatchResult {
	results := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return results
	}
	start := b.rt.Now()
	sv, degradedReason, err := b.acquireSnapshot()
	if err != nil {
		for i, req := range reqs {
			results[i] = BatchResult{Err: err}
			b.finishDecision(start, req, Response{}, nil, false, err)
		}
		return results
	}
	if degradedReason != "" && len(reqs) > 1 {
		// acquireSnapshot counted one degraded serve, but every request in
		// this batch is answered from the last-good snapshot —
		// DegradedServed counts requests, not snapshot acquisitions.
		b.lastGoodMu.Lock()
		b.degraded += uint64(len(reqs) - 1)
		b.lastGoodMu.Unlock()
	}
	type dedupKey struct {
		req Request
	}
	type dedupVal struct {
		resp Response
		err  error
	}
	seen := make(map[dedupKey]dedupVal)
	for i, req := range reqs {
		key := dedupKey{req: req}
		if v, ok := seen[key]; ok {
			// Keep the broker's rng stream identical to the sequential
			// execution: every served request consumes one split.
			b.consumeSplit(req.Policy)
			results[i] = BatchResult{Response: v.resp, Err: v.err}
			b.finishDecision(start, req, v.resp, nil, true, v.err)
			b.obs.Counter("broker.batch.dedup.hits").Inc()
			continue
		}
		resp, model, cacheHit, err := b.allocateOn(sv, degradedReason, req)
		if err != nil {
			results[i] = BatchResult{Err: err}
		} else {
			results[i] = BatchResult{Response: resp}
		}
		b.finishDecision(start, req, resp, model, cacheHit, err)
		if !req.Explain && b.dedupablePolicy(req.Policy) {
			seen[key] = dedupVal{resp: resp, err: err}
		}
	}
	return results
}

// dedupablePolicy reports whether identical requests under the named
// policy are safe to answer once per batch: the policy must be
// stateless, never draw from its rng split, and be deterministic on a
// fixed snapshot. The built-in net-load-aware and load-aware policies
// qualify; Random and Sequential do not (both draw from the rng, so
// identical back-to-back requests legitimately differ), and registered
// wrappers like ReservingPolicy do not (reservations make back-to-back
// answers differ by design).
func (b *Broker) dedupablePolicy(name string) bool {
	if name == "" {
		name = alloc.NetLoadAware{}.Name()
	}
	b.mu.Lock()
	pol, ok := b.policies[name]
	b.mu.Unlock()
	if !ok {
		return false
	}
	switch pol.(type) {
	case alloc.NetLoadAware, alloc.LoadAware:
		return true
	}
	return false
}

// consumeSplit advances the policy rng exactly as serving the request
// would, so deduplicated batch members leave the same rng stream behind
// as the sequential execution they stand in for. Unknown policies
// consume nothing (the sequential path errors before splitting).
func (b *Broker) consumeSplit(policy string) {
	if policy == "" {
		policy = alloc.NetLoadAware{}.Name()
	}
	b.mu.Lock()
	if _, ok := b.policies[policy]; ok {
		b.rnd.Split()
	}
	b.mu.Unlock()
}

// finishDecision builds and records the decision record for one served
// request and observes the allocate latency histogram — shared by the
// single-request and batched paths so both leave identical audit trails.
func (b *Broker) finishDecision(start time.Time, req Request, resp Response, model *alloc.CostModel, cacheHit bool, err error) {
	rec := DecisionRecord{
		At:          start,
		Policy:      req.Policy,
		Procs:       req.Procs,
		PPN:         req.PPN,
		Alpha:       req.Alpha,
		Beta:        req.Beta,
		UseForecast: req.UseForecast,
		Forced:      req.Force,
		CacheHit:    cacheHit,
	}
	if rec.Policy == "" {
		rec.Policy = alloc.NetLoadAware{}.Name()
	}
	// Degraded accounting must match DegradedServed exactly, so these come
	// from the (possibly partial) response even when the request failed.
	rec.Degraded = resp.Degraded
	rec.DegradedReason = resp.DegradedReason
	rec.SnapshotAge = resp.SnapshotAge
	rec.ClusterLoad = resp.ClusterLoad
	rec.FreeProcs = resp.FreeProcs
	rec.EarliestStart = resp.EarliestStart
	if err != nil {
		rec.Error = err.Error()
	} else {
		rec.Recommendation = resp.Recommendation
		rec.Nodes = resp.Nodes
		rec.TotalLoad = resp.Allocation.TotalLoad
		if model != nil {
			rec.Candidates = model.Len()
		}
		rec.Contributions, rec.ComputeCost, rec.NetworkCost = contributions(model, resp.Allocation)
		rec.Counterfactuals = resp.counterfactuals
	}
	b.recordDecision(rec)
	b.obs.Histogram("broker.allocate.seconds").Observe(b.rt.Now().Sub(start).Seconds())
}

// allocate is Allocate's core, also reporting the priced cost model and
// whether it came from the cache (for the decision record).
func (b *Broker) allocate(req Request) (Response, *alloc.CostModel, bool, error) {
	sv, degradedReason, err := b.acquireSnapshot()
	if err != nil {
		return Response{}, nil, false, err
	}
	return b.allocateOn(sv, degradedReason, req)
}

// allocateOn prices one request against an already-acquired snapshot
// view — the shared tail of the single-request and batched paths. The
// policy lookup, wait heuristic, cost-model fetch, and policy run all
// happen here; only the snapshot acquisition differs between callers.
func (b *Broker) allocateOn(sv snapView, degradedReason string, req Request) (Response, *alloc.CostModel, bool, error) {
	if req.Policy == "" {
		req.Policy = alloc.NetLoadAware{}.Name()
	}
	b.mu.Lock()
	pol, ok := b.policies[req.Policy]
	var r *rng.Rand
	if ok {
		r = b.rnd.Split()
	}
	b.mu.Unlock()
	if !ok {
		return Response{}, nil, false, fmt.Errorf("broker: unknown policy %q", req.Policy)
	}
	snap := sv.snap

	loadPerCore := clusterLoadPerCore(snap)
	resp := Response{Policy: pol.Name(), ClusterLoad: loadPerCore, FreeProcs: alloc.FreeSlots(snap), SnapshotFP: sv.fp}
	if degradedReason != "" {
		resp.Degraded = true
		resp.DegradedReason = degradedReason
		resp.SnapshotAge = b.rt.Now().Sub(snap.Taken)
	} else if oldest := oldestNodeAge(snap); oldest >= 0 {
		resp.SnapshotAge = oldest
	}
	if loadPerCore > b.cfg.WaitLoadPerCore && !req.Force {
		resp.Recommendation = RecommendWait
		resp.EarliestStart = b.rt.Now().Add(loadDecayETA(loadPerCore, b.cfg.WaitLoadPerCore))
		return resp, nil, false, nil
	}

	allocReq := alloc.Request{
		Procs: req.Procs, PPN: req.PPN, Alpha: req.Alpha, Beta: req.Beta,
		UseForecast: req.UseForecast,
	}
	validated, err := allocReq.Validate()
	if err != nil {
		// Error returns past this point keep resp: its Degraded fields
		// already reflect how the snapshot was served, and the decision
		// record must see them even for failed requests.
		return resp, nil, false, err
	}
	var model *alloc.CostModel
	cacheHit := false
	if _, ok := pol.(alloc.ModelPolicy); ok {
		model, cacheHit = b.costModel(sv, validated.Weights, validated.UseForecast)
	}
	var a alloc.Allocation
	if nla, ok := pol.(alloc.NetLoadAware); ok && (req.Explain || b.cfg.CounterfactualK > 0) {
		// With CounterfactualK set, non-explain net-load-aware requests
		// also run the explain path: AllocateModel is a thin wrapper over
		// AllocateExplainModel, so the winner (and the rng stream — the
		// policy never draws) is bit-identical, and the candidate set is
		// already materialized for counterfactual retention.
		best, cands, err := nla.AllocateExplainModel(model, allocReq)
		if err != nil {
			return resp, model, cacheHit, err
		}
		a = alloc.Allocation{Policy: nla.Name(), Nodes: best.Nodes, Procs: best.Procs, TotalLoad: best.TotalLoad}
		if req.Explain {
			for _, c := range cands {
				resp.Candidates = append(resp.Candidates, CandidateInfo{
					Start:     c.Start,
					Nodes:     c.Nodes,
					TotalLoad: c.TotalLoad,
					Chosen:    c.Start == best.Start,
					Spill:     c.Spill,
				})
			}
		}
		if k := b.cfg.CounterfactualK; k > 0 {
			for _, c := range alloc.TopRejected(cands, best.Start, k) {
				resp.counterfactuals = append(resp.counterfactuals, CounterfactualCandidate{
					Start:       c.Start,
					Nodes:       c.Nodes,
					ComputeCost: c.ComputeCost,
					NetworkCost: c.NetworkCost,
					TotalLoad:   c.TotalLoad,
					Spill:       c.Spill,
				})
			}
		}
	} else if mp, ok := pol.(alloc.ModelPolicy); ok {
		a, err = mp.AllocateModel(model, allocReq, r)
		if err != nil {
			return resp, model, cacheHit, err
		}
	} else {
		a, err = pol.Allocate(snap, allocReq, r)
		if err != nil {
			return resp, model, cacheHit, err
		}
	}
	if model != nil && model.Sharded() {
		b.obs.Counter("broker.alloc.sharded").Inc()
		if spills := model.TakeShardSpills(); spills > 0 {
			b.obs.Counter("broker.alloc.shard.spills").Add(spills)
		}
	}
	resp.Recommendation = RecommendAllocate
	resp.Nodes = a.Nodes
	resp.Procs = a.Procs
	resp.Allocation = a
	for _, n := range a.Nodes {
		resp.Hostfile = append(resp.Hostfile, fmt.Sprintf("%s:%d", snap.Nodes[n].Hostname, a.Procs[n]))
	}
	return resp, model, cacheHit, nil
}

// Obs returns the broker's instrumentation registry (never nil).
func (b *Broker) Obs() *obs.Registry { return b.obs }

// oldestNodeAge returns the age of the freshest node record (how stale
// the best data is), or -1 when there are no records.
func oldestNodeAge(snap *metrics.Snapshot) time.Duration {
	best := time.Duration(-1)
	for _, id := range snap.Livehosts {
		if na, ok := snap.Nodes[id]; ok {
			age := snap.Taken.Sub(na.Timestamp)
			if best < 0 || age < best {
				best = age
			}
		}
	}
	return best
}
