package broker

import (
	"time"

	"nlarm/internal/alloc"
)

// NodeContribution is one chosen node's share of the decision's cost: its
// unit-mean Equation 1 compute cost and the sum of its unit-mean
// Equation 2 network costs against the other chosen nodes.
type NodeContribution struct {
	Node  int     `json:"node"`
	Procs int     `json:"procs"`
	CL    float64 `json:"cl"`
	NL    float64 `json:"nl"`
}

// CounterfactualCandidate is one rejected Algorithm 1 sub-graph retained
// in a decision record for regret analysis: the placement the broker
// considered and turned down, with the CL/NL sums it was priced at when
// the decision was made. Retention is opt-in (Config.CounterfactualK)
// and bounded to the k cheapest rejected candidates per decision.
type CounterfactualCandidate struct {
	// Start is the candidate's seed node (v in Algorithm 1).
	Start int `json:"start"`
	// Nodes are the candidate's selected nodes in addition order.
	Nodes []int `json:"nodes"`
	// ComputeCost is C_G = Σ CL over the candidate's nodes; NetworkCost
	// is N_G = Σ NL over its pairs (each pair once) — the same raw
	// Equation 1/2 sums the winner's ComputeCost/NetworkCost report, so
	// re-scoring chosen-vs-rejected under any α/β is a plain weighted sum.
	ComputeCost float64 `json:"cl"`
	NetworkCost float64 `json:"nl"`
	// TotalLoad is the candidate's Equation 4 score after Algorithm 2's
	// cross-candidate normalization at decision time.
	TotalLoad float64 `json:"total_load"`
	// Spill marks a hierarchically generated candidate that crossed shard
	// boundaries.
	Spill bool `json:"spill,omitempty"`
}

// DecisionRecord is the structured trace of one Allocate call — the
// machine-readable answer to "why did the broker pick these nodes". The
// broker retains the most recent records in a bounded ring served by the
// "decisions" wire action.
type DecisionRecord struct {
	// Seq numbers decisions from 1 in arrival order.
	Seq uint64 `json:"seq"`
	// At is the broker clock when the request arrived.
	At time.Time `json:"at"`

	// Request shape.
	Policy      string  `json:"policy"`
	Procs       int     `json:"procs"`
	PPN         int     `json:"ppn,omitempty"`
	Alpha       float64 `json:"alpha,omitempty"`
	Beta        float64 `json:"beta,omitempty"`
	UseForecast bool    `json:"use_forecast,omitempty"`
	Forced      bool    `json:"forced,omitempty"`

	// Outcome.
	Recommendation Recommendation `json:"recommendation,omitempty"`
	Error          string         `json:"error,omitempty"`
	Degraded       bool           `json:"degraded,omitempty"`
	DegradedReason string         `json:"degraded_reason,omitempty"`
	SnapshotAge    time.Duration  `json:"snapshot_age,omitempty"`
	ClusterLoad    float64        `json:"cluster_load_per_core,omitempty"`
	FreeProcs      int            `json:"free_procs,omitempty"`
	EarliestStart  time.Time      `json:"earliest_start,omitempty"`

	// How the answer was produced.
	Candidates int  `json:"candidates,omitempty"` // sub-graphs considered (model policies: one per live node)
	CacheHit   bool `json:"cache_hit,omitempty"`  // cost model served from the broker cache

	// The chosen group and its cost breakdown.
	Nodes         []int              `json:"nodes,omitempty"`
	Contributions []NodeContribution `json:"contributions,omitempty"`
	ComputeCost   float64            `json:"compute_cost,omitempty"` // Σ CL over chosen nodes
	NetworkCost   float64            `json:"network_cost,omitempty"` // Σ NL over chosen pairs
	TotalLoad     float64            `json:"total_load,omitempty"`   // policy-internal T_G of the winner

	// Counterfactuals holds the top-k rejected candidates with their
	// decision-time pricing (net-load-aware policy only, opt-in via
	// Config.CounterfactualK; omitted entirely at k=0 so existing decision
	// consumers and goldens see byte-identical records).
	Counterfactuals []CounterfactualCandidate `json:"counterfactuals,omitempty"`
}

// contributions derives per-node CL/NL shares for the chosen allocation
// from the priced cost model. Each pair's NL is charged to both of its
// endpoints, so NetworkCost (each pair once) is half the column sum.
// A nil model or a model whose CL/NL construction failed yields partial
// data — exactly what was actually priced.
func contributions(m *alloc.CostModel, a alloc.Allocation) (contribs []NodeContribution, computeCost, networkCost float64) {
	if len(a.Nodes) == 0 {
		return nil, 0, 0
	}
	contribs = make([]NodeContribution, 0, len(a.Nodes))
	idx := make([]int, len(a.Nodes))
	for i, node := range a.Nodes {
		idx[i] = -1
		if m != nil {
			if j, ok := m.IndexOf(node); ok {
				idx[i] = j
			}
		}
	}
	priceNL := m != nil && m.NLErr() == nil
	for i, node := range a.Nodes {
		c := NodeContribution{Node: node, Procs: a.Procs[node]}
		if j := idx[i]; j >= 0 {
			if j < len(m.CLUnit) {
				c.CL = m.CLUnit[j]
				computeCost += c.CL
			}
			if priceNL {
				// PairNLUnit dispatches on the model's representation —
				// flat matrix on dense models, the hierarchical shard
				// layer above the shard threshold — so sharded decisions
				// price their network cost instead of reporting zero.
				for k, other := range idx {
					if k == i || other < 0 {
						continue
					}
					c.NL += m.PairNLUnit(j, other)
				}
				networkCost += c.NL
			}
		}
		contribs = append(contribs, c)
	}
	return contribs, computeCost, networkCost / 2
}

// recordDecision appends one decision to the ring and bumps the outcome
// counters. Seq assignment and the ring append happen under one lock:
// batched allocates can finish decisions concurrently with single-request
// callers, and a Seq drawn outside the append's critical section could
// land in the ring out of Seq order.
func (b *Broker) recordDecision(rec DecisionRecord) {
	b.decMu.Lock()
	b.decSeq++
	rec.Seq = b.decSeq
	b.decisions.Append(rec)
	b.decMu.Unlock()
	b.obs.Counter("broker.allocate.total").Inc()
	switch {
	case rec.Error != "":
		b.obs.Counter("broker.allocate.errors").Inc()
	case rec.Recommendation == RecommendWait:
		b.obs.Counter("broker.allocate.wait").Inc()
	default:
		b.obs.Counter("broker.allocate.ok").Inc()
	}
	if rec.Degraded {
		b.obs.Counter("broker.allocate.degraded").Inc()
	}
}

// Decisions returns the most recent min(limit, retained) decision
// records, oldest first. limit <= 0 means all retained records.
func (b *Broker) Decisions(limit int) []DecisionRecord {
	if limit <= 0 {
		return b.decisions.Items()
	}
	return b.decisions.Last(limit)
}

// DecisionCount reports how many decisions were ever recorded (including
// ones evicted from the ring).
func (b *Broker) DecisionCount() uint64 { return b.decisions.Total() }
