package broker

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"nlarm/internal/loadgen"
	"nlarm/internal/rng"
)

// collectAlloc enqueues one allocate and returns a fetch function for
// its (eventual) result — enqueue-time errors fail the test.
func collectAlloc(t testing.TB, bt *Batcher, tenant string, req Request) func() (Response, error) {
	t.Helper()
	var (
		mu   sync.Mutex
		resp Response
		err  error
		done bool
	)
	if eerr := bt.EnqueueAllocate(tenant, req, func(r Response, e error) {
		mu.Lock()
		resp, err, done = r, e, true
		mu.Unlock()
	}); eerr != nil {
		t.Fatalf("enqueue: %v", eerr)
	}
	return func() (Response, error) {
		mu.Lock()
		defer mu.Unlock()
		if !done {
			t.Fatal("result fetched before flush delivered it")
		}
		return resp, err
	}
}

// TestBatchSameGeneration is the coalescing guarantee: every request
// served by one flush is priced against the same snapshot fingerprint,
// and a monitoring republish between batches moves the whole next batch
// to the new fingerprint — never a mix.
func TestBatchSameGeneration(t *testing.T) {
	r := newRig(t, 21, loadgen.Config{})
	bt := NewBatcher(r.b, nil, BatcherOptions{MaxBatch: 64})

	const n = 24
	fetch := make([]func() (Response, error), n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			fetch[i] = collectAlloc(t, bt, fmt.Sprintf("tenant-%d", i%3), Request{Procs: 4, PPN: 4})
		}()
	}
	wg.Wait()
	if served := bt.Flush(); served != n {
		t.Fatalf("flush served %d of %d", served, n)
	}

	first, err := fetch[0]()
	if err != nil {
		t.Fatal(err)
	}
	if first.SnapshotFP == 0 {
		t.Fatal("response carries no snapshot fingerprint")
	}
	for i := 1; i < n; i++ {
		resp, err := fetch[i]()
		if err != nil {
			t.Fatal(err)
		}
		if resp.SnapshotFP != first.SnapshotFP {
			t.Fatalf("request %d priced against fp %x, batch started at %x", i, resp.SnapshotFP, first.SnapshotFP)
		}
	}

	// Republish monitoring data: the next batch must move to the new
	// generation wholesale.
	r.sched.RunFor(10 * time.Second)
	next := collectAlloc(t, bt, "", Request{Procs: 4, PPN: 4})
	if bt.Flush() != 1 {
		t.Fatal("second flush served nothing")
	}
	resp, err := next()
	if err != nil {
		t.Fatal(err)
	}
	if resp.SnapshotFP == first.SnapshotFP {
		t.Fatal("republished snapshot did not change the batch fingerprint")
	}
}

// TestBatchEquivalentToSequential is the bit-identical property: a
// seeded random request stream answered by AllocateBatch must equal the
// same stream answered by back-to-back Allocate calls on an identically
// built broker over the same store — every field, including dedup'd
// members, wait answers, and errors.
func TestBatchEquivalentToSequential(t *testing.T) {
	for _, seed := range []uint64{1, 7, 23} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := newRig(t, seed, loadgen.Config{})
			seqB := New(r.st, r.sched, Config{Seed: 999})
			batB := New(r.st, r.sched, Config{Seed: 999})

			policies := []string{"", "net-load-aware", "load-aware", "sequential", "random", "bogus"}
			rnd := rng.New(seed * 77)
			reqs := make([]Request, 64)
			for i := range reqs {
				reqs[i] = Request{
					Procs:       2 + int(rnd.Uint64()%8),
					PPN:         1 + int(rnd.Uint64()%4),
					Alpha:       float64(rnd.Uint64()%10) / 10,
					Policy:      policies[rnd.Uint64()%uint64(len(policies))],
					Force:       rnd.Uint64()%4 == 0,
					UseForecast: rnd.Uint64()%5 == 0,
					Explain:     rnd.Uint64()%7 == 0,
				}
				if reqs[i].Alpha > 0 {
					reqs[i].Beta = 1 - reqs[i].Alpha
				}
				// Repeat runs of identical requests exercise the dedup path.
				if i > 0 && rnd.Uint64()%3 == 0 {
					reqs[i] = reqs[i-1]
				}
			}

			want := make([]BatchResult, len(reqs))
			for i, req := range reqs {
				resp, err := seqB.Allocate(req)
				want[i] = BatchResult{Response: resp, Err: err}
			}
			got := batB.AllocateBatch(reqs)

			for i := range reqs {
				if (want[i].Err == nil) != (got[i].Err == nil) {
					t.Fatalf("req %d (%+v): sequential err=%v batched err=%v", i, reqs[i], want[i].Err, got[i].Err)
				}
				if want[i].Err != nil {
					if want[i].Err.Error() != got[i].Err.Error() {
						t.Fatalf("req %d: error text diverged: %q vs %q", i, want[i].Err, got[i].Err)
					}
					continue
				}
				if !reflect.DeepEqual(want[i].Response, got[i].Response) {
					t.Fatalf("req %d (%+v): responses diverged\nsequential: %+v\nbatched:    %+v",
						i, reqs[i], want[i].Response, got[i].Response)
				}
			}
			// Both paths must leave the same audit trail size behind.
			if ns, nb := len(seqB.Decisions(0)), len(batB.Decisions(0)); ns != nb {
				t.Fatalf("decision records diverged: sequential %d, batched %d", ns, nb)
			}
			if hits := batB.Obs().Counter("broker.batch.dedup.hits").Value(); hits == 0 {
				t.Fatal("request stream never exercised the dedup path")
			}
		})
	}
}

// TestBatchDedupSkipsStatefulPolicies pins the dedup whitelist: the
// reserving wrapper (stateful by design — identical back-to-back
// requests must see each other's reservations) is never deduplicated.
func TestBatchDedupSkipsStatefulPolicies(t *testing.T) {
	r := newRig(t, 31, loadgen.Config{})
	if r.b.dedupablePolicy("") != true || r.b.dedupablePolicy("net-load-aware") != true {
		t.Fatal("net-load-aware must be dedupable")
	}
	if r.b.dedupablePolicy("random") {
		t.Fatal("random policy must not be dedupable")
	}
	if r.b.dedupablePolicy("sequential") {
		t.Fatal("sequential draws its rotation start from the rng; not dedupable")
	}
	if r.b.dedupablePolicy("no-such-policy") {
		t.Fatal("unknown policy must not be dedupable")
	}
	r.b.RegisterPolicy(fakePolicy{})
	if r.b.dedupablePolicy("fake") {
		t.Fatal("registered wrapper policies must not be dedupable")
	}
}

// TestShedUnderBurst drives a burst far past the token bucket and queue
// bounds: the overflow gets explicit ShedError answers with a positive
// retry hint, the books balance exactly (admitted + shed == offered),
// and the obs counters agree with both.
func TestShedUnderBurst(t *testing.T) {
	r := newRig(t, 22, loadgen.Config{})
	bt := NewBatcher(r.b, nil, BatcherOptions{
		MaxBatch:  64,
		Admission: AdmissionConfig{TenantRate: 5, TenantBurst: 3, QueueDepth: 64},
	})

	const offered = 40
	admitted, shed := 0, 0
	for i := 0; i < offered; i++ {
		err := bt.EnqueueAllocate("bursty", Request{Procs: 4, PPN: 4}, func(Response, error) {})
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrShed):
			var se *ShedError
			if !errors.As(err, &se) {
				t.Fatalf("shed error has wrong concrete type: %T", err)
			}
			if se.RetryAfter <= 0 {
				t.Fatalf("shed without retry hint: %+v", se)
			}
			if se.Reason != "rate" {
				t.Fatalf("expected rate shed, got %q", se.Reason)
			}
			shed++
		default:
			t.Fatalf("unexpected enqueue error: %v", err)
		}
	}
	if admitted != 3 {
		t.Fatalf("burst admitted %d, want the burst allowance 3", admitted)
	}
	if admitted+shed != offered {
		t.Fatalf("books don't balance: admitted %d + shed %d != offered %d", admitted, shed, offered)
	}
	reg := r.b.Obs()
	if got := reg.Counter("broker.admit.admitted.total").Value(); got != uint64(admitted) {
		t.Fatalf("admitted counter %d, want %d", got, admitted)
	}
	if got := reg.Counter("broker.admit.shed.total").Value(); got != uint64(shed) {
		t.Fatalf("shed counter %d, want %d", got, shed)
	}
	if bt.Flush() != admitted {
		t.Fatal("flush did not serve the admitted burst")
	}

	// Virtual time passing refills the bucket at TenantRate.
	r.sched.RunFor(time.Second)
	refilled := 0
	for i := 0; i < 10; i++ {
		if bt.EnqueueAllocate("bursty", Request{Procs: 4}, func(Response, error) {}) == nil {
			refilled++
		}
	}
	if refilled != 3 {
		t.Fatalf("1s at rate 5 (burst cap 3) refilled %d admissions, want 3", refilled)
	}
}

// TestBatcherCloseFailsQueued: Close answers still-queued requests with
// ErrBatcherClosed and rejects later enqueues outright.
func TestBatcherCloseFailsQueued(t *testing.T) {
	r := newRig(t, 23, loadgen.Config{})
	bt := NewBatcher(r.b, nil, BatcherOptions{})
	var mu sync.Mutex
	var errs []error
	for i := 0; i < 5; i++ {
		if err := bt.EnqueueAllocate("", Request{Procs: 4}, func(_ Response, e error) {
			mu.Lock()
			errs = append(errs, e)
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	bt.Close()
	mu.Lock()
	defer mu.Unlock()
	if len(errs) != 5 {
		t.Fatalf("%d of 5 queued callbacks ran at close", len(errs))
	}
	for _, e := range errs {
		if !errors.Is(e, ErrBatcherClosed) {
			t.Fatalf("queued request failed with %v, want ErrBatcherClosed", e)
		}
	}
	if err := bt.EnqueueAllocate("", Request{Procs: 4}, nil); !errors.Is(err, ErrBatcherClosed) {
		t.Fatalf("enqueue after close: %v", err)
	}
}

// TestServerCloseWithInflightBatches hammers a batching server from many
// pipelined clients and closes it mid-storm: every in-flight call must
// return (success or error) promptly — no goroutine may hang on a
// response that will never come.
func TestServerCloseWithInflightBatches(t *testing.T) {
	r := newRig(t, 24, loadgen.Config{})
	srv, err := NewServerOpts(r.b, nil, "127.0.0.1:0", ServerOptions{
		Batching: &BatcherOptions{MaxBatch: 16},
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr(), time.Second)
			if err != nil {
				return
			}
			defer c.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Allocate(Request{Procs: 4, PPN: 4}); err != nil {
					return // server closing: any error is a valid unblock
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let the storm build
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("clients still blocked 10s after server close")
	}
}
