package broker

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"nlarm/internal/loadgen"
	"nlarm/internal/rng"
)

// jain computes the Jain fairness index over per-tenant served counts:
// 1.0 is perfectly fair, 1/n is maximally unfair.
func jain(xs ...float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// TestFairnessJainIndex is the headline fairness property: a hog tenant
// offering 10x the load of a meek tenant, both with equal weights, must
// not crowd the meek tenant out. Whenever both have work queued, the
// weighted round robin splits each batch evenly, so served throughput
// lands within epsilon of half/half (Jain index >= 0.95) across seeds
// and arrival orders.
func TestFairnessJainIndex(t *testing.T) {
	for _, seed := range []uint64{3, 11, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := newRig(t, seed, loadgen.Config{})
			bt := NewBatcher(r.b, nil, BatcherOptions{
				MaxBatch: 4,
				// No rate limit: fairness must come from the WRR dequeue
				// alone. The bounded queue sheds the hog's excess backlog.
				Admission: AdmissionConfig{QueueDepth: 8},
			})

			served := map[string]int{}
			record := func(tenant string) func(Response, error) {
				return func(_ Response, err error) {
					if err == nil {
						served[tenant]++ // Flush runs callbacks on this goroutine
					}
				}
			}

			// Each round the hog offers 20 and the meek offers 2 against a
			// batch capacity of 4 — the meek's offered load exactly equals
			// its fair share. Arrival order is shuffled per seed so the
			// result cannot depend on who enqueues first.
			const rounds = 50
			rnd := rng.New(seed)
			req := Request{Procs: 4, PPN: 4}
			for round := 0; round < rounds; round++ {
				arrivals := make([]string, 0, 22)
				for i := 0; i < 20; i++ {
					arrivals = append(arrivals, "hog")
				}
				arrivals = append(arrivals, "meek", "meek")
				for i := len(arrivals) - 1; i > 0; i-- {
					j := int(rnd.Uint64() % uint64(i+1))
					arrivals[i], arrivals[j] = arrivals[j], arrivals[i]
				}
				for _, tenant := range arrivals {
					err := bt.EnqueueAllocate(tenant, req, record(tenant))
					if err != nil && !errors.Is(err, ErrShed) {
						t.Fatalf("enqueue: %v", err)
					}
				}
				bt.Flush()
			}
			for bt.QueueDepth() > 0 {
				bt.Flush()
			}

			hog, meek := float64(served["hog"]), float64(served["meek"])
			if meek == 0 {
				t.Fatal("meek tenant starved outright")
			}
			if idx := jain(hog, meek); idx < 0.95 {
				t.Fatalf("Jain index %.4f < 0.95 (hog served %v, meek served %v)", idx, hog, meek)
			}
			if ratio := hog / (hog + meek); ratio > 0.6 {
				t.Fatalf("hog took %.0f%% of admitted throughput, want ~half", 100*ratio)
			}

			// The obs per-tenant served counters must tell the same story
			// the callbacks did.
			reg := r.b.Obs()
			for tenant, n := range served {
				if got := reg.Counter("broker.batch.served.tenant." + tenant).Value(); got != uint64(n) {
					t.Fatalf("served counter for %s = %d, callbacks saw %d", tenant, got, n)
				}
			}
		})
	}
}

// TestFairnessWeighted checks the weighted variant: with both tenants
// saturating their queues and weights 3:1, served throughput divides
// 3:1 (within epsilon), not evenly.
func TestFairnessWeighted(t *testing.T) {
	r := newRig(t, 12, loadgen.Config{})
	bt := NewBatcher(r.b, nil, BatcherOptions{
		MaxBatch: 4,
		Admission: AdmissionConfig{
			QueueDepth: 16,
			Weights:    map[string]int{"gold": 3, "bronze": 1},
		},
	})
	served := map[string]int{}
	record := func(tenant string) func(Response, error) {
		return func(_ Response, err error) {
			if err == nil {
				served[tenant]++
			}
		}
	}
	req := Request{Procs: 4, PPN: 4}
	for round := 0; round < 40; round++ {
		for i := 0; i < 10; i++ {
			_ = bt.EnqueueAllocate("gold", req, record("gold"))
			_ = bt.EnqueueAllocate("bronze", req, record("bronze"))
		}
		bt.Flush()
	}
	gold, bronze := float64(served["gold"]), float64(served["bronze"])
	if bronze == 0 {
		t.Fatal("bronze tenant starved outright")
	}
	if ratio := gold / bronze; ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("gold:bronze served ratio %.2f, want ~3 (gold %v, bronze %v)", ratio, gold, bronze)
	}
}

// TestShedQueueFull pins the queue-depth bound: with rate limiting off,
// the (depth+1)-th pending request for a tenant sheds with reason
// "queue-full" and a positive retry hint, while another tenant's queue
// is unaffected.
func TestShedQueueFull(t *testing.T) {
	r := newRig(t, 13, loadgen.Config{})
	bt := NewBatcher(r.b, nil, BatcherOptions{
		MaxBatch:  64,
		Admission: AdmissionConfig{QueueDepth: 4},
	})
	for i := 0; i < 4; i++ {
		if err := bt.EnqueueAllocate("full", Request{Procs: 4}, func(Response, error) {}); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	err := bt.EnqueueAllocate("full", Request{Procs: 4}, func(Response, error) {})
	var se *ShedError
	if !errors.As(err, &se) || se.Reason != "queue-full" || se.RetryAfter <= 0 {
		t.Fatalf("overflow enqueue: got %v, want queue-full shed with retry hint", err)
	}
	if got := r.b.Obs().Counter("broker.admit.shed.queue-full").Value(); got != 1 {
		t.Fatalf("queue-full shed counter = %d, want 1", got)
	}
	// A different tenant still has a whole queue of its own.
	if err := bt.EnqueueAllocate("other", Request{Procs: 4}, func(Response, error) {}); err != nil {
		t.Fatalf("independent tenant shed by a full neighbor: %v", err)
	}
}

// TestShedErrorMatching pins the error-matching contract shed handling
// is built on: errors.Is selects ErrShed through wrapping, errors.As
// recovers the retry hint, and non-shed errors do not match.
func TestShedErrorMatching(t *testing.T) {
	se := &ShedError{Tenant: "t", RetryAfter: 20 * time.Millisecond, Reason: "rate"}
	if !errors.Is(se, ErrShed) {
		t.Fatal("ShedError does not match ErrShed")
	}
	wrapped := fmt.Errorf("front door: %w", se)
	if !errors.Is(wrapped, ErrShed) {
		t.Fatal("wrapped ShedError does not match ErrShed")
	}
	var out *ShedError
	if !errors.As(wrapped, &out) || out.RetryAfter != 20*time.Millisecond {
		t.Fatal("errors.As lost the retry hint through wrapping")
	}
	if errors.Is(errors.New("broker: request shed"), ErrShed) {
		t.Fatal("string twin must not match the sentinel")
	}
	if errors.Is(ErrBatcherClosed, ErrShed) {
		t.Fatal("batcher-closed must not read as shed")
	}
}

// TestWRRDeterministic: the weighted-round-robin dequeue is a pure
// function of the arrival sequence — two admissions fed identically
// drain identically, which the batched/sequential equivalence property
// quietly depends on.
func TestWRRDeterministic(t *testing.T) {
	build := func() *admission {
		a := newAdmission(AdmissionConfig{QueueDepth: 64, Weights: map[string]int{"b": 2}})
		now := time.Unix(1000, 0)
		for i := 0; i < 30; i++ {
			tenant := []string{"c", "a", "b"}[i%3]
			if shed := a.admit(&pendingItem{tenant: tenant, alloc: &Request{Procs: i}}, now); shed != nil {
				t.Fatalf("unexpected shed: %v", shed)
			}
		}
		return a
	}
	drainOrder := func(a *admission) []int {
		var got []int
		for {
			items := a.dequeue(7)
			if len(items) == 0 {
				return got
			}
			for _, it := range items {
				got = append(got, it.alloc.Procs)
			}
		}
	}
	first := drainOrder(build())
	second := drainOrder(build())
	if len(first) != 30 {
		t.Fatalf("drained %d of 30", len(first))
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("dequeue order not deterministic:\n%v\n%v", first, second)
	}
	// Weight 2 means "b" items appear twice as densely early on: within
	// the first sweep of 7, b must contribute 2 items to a's and c's 1.
	perTenant := map[int]string{}
	for i := 0; i < 30; i++ {
		perTenant[i] = []string{"c", "a", "b"}[i%3]
	}
	counts := map[string]int{}
	for _, p := range first[:4] {
		counts[perTenant[p]]++
	}
	if counts["b"] != 2 || counts["a"] != 1 || counts["c"] != 1 {
		t.Fatalf("first WRR sweep took %v, want b=2 a=1 c=1", counts)
	}
}

// TestBurstDefaultRounding pins the TenantBurst default to
// max(1, ceil(TenantRate)). The old int(rate+0.999) rounding collapsed
// fractional rates just above an integer (1.0005 → 1) and overflowed
// nothing, but mis-sized the bucket for exactly the tenants whose rate
// was not integral.
func TestBurstDefaultRounding(t *testing.T) {
	cases := []struct {
		rate  float64
		burst int
	}{
		{0, 1},       // no rate limit still gets a 1-token bucket
		{0.25, 1},    // sub-1 rates keep the floor
		{1, 1},       // exact integers are untouched
		{1.0005, 2},  // just-above-integer rates round up, not down
		{2.5, 3},     // plain fractional
		{1000.25, 1001},
	}
	for _, c := range cases {
		got := AdmissionConfig{TenantRate: c.rate}.withDefaults().TenantBurst
		if got != c.burst {
			t.Errorf("rate %g: burst %d, want %d", c.rate, got, c.burst)
		}
	}
	// An explicit burst always wins over the derived default.
	if got := (AdmissionConfig{TenantRate: 9.5, TenantBurst: 2}).withDefaults().TenantBurst; got != 2 {
		t.Errorf("explicit burst overridden: got %d", got)
	}
}

// TestRateShedRetryAfter pins the rate-shed retry hint: with the bucket
// drained to a known level, RetryAfter is the time for the missing
// token fraction to refill at TenantRate, floored at 1ms.
func TestRateShedRetryAfter(t *testing.T) {
	now := t0
	a := newAdmission(AdmissionConfig{TenantRate: 2}) // burst 2
	item := func() *pendingItem { return &pendingItem{tenant: "a", alloc: &Request{Procs: 2}} }
	// Drain the burst allowance at a frozen clock.
	for i := 0; i < 2; i++ {
		if shed := a.admit(item(), now); shed != nil {
			t.Fatalf("burst request %d shed: %v", i, shed)
		}
	}
	// tokens == 0: one full token at 2 req/s takes 500ms.
	shed := a.admit(item(), now)
	if shed == nil || shed.Reason != "rate" {
		t.Fatalf("expected rate shed, got %+v", shed)
	}
	if d := shed.RetryAfter - 500*time.Millisecond; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("RetryAfter = %v, want 500ms", shed.RetryAfter)
	}
	// 400ms later the bucket holds 0.8 tokens: 0.2 missing → 100ms.
	shed = a.admit(item(), now.Add(400*time.Millisecond))
	if shed == nil || shed.Reason != "rate" {
		t.Fatalf("expected rate shed, got %+v", shed)
	}
	if d := shed.RetryAfter - 100*time.Millisecond; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("RetryAfter = %v, want 100ms", shed.RetryAfter)
	}
	// Nearly refilled: the hint never drops below the 1ms floor.
	shed = a.admit(item(), now.Add(499999*time.Microsecond))
	if shed == nil {
		t.Fatal("expected rate shed just before refill")
	}
	if shed.RetryAfter < time.Millisecond {
		t.Fatalf("RetryAfter = %v, want >= 1ms floor", shed.RetryAfter)
	}
}
