// Package cluster defines the static description of the compute cluster:
// node hardware attributes (logical core count, CPU clock, total memory)
// and their attachment to the network topology. It reproduces the paper's
// heterogeneous testbed: 40 12-core 4.6 GHz nodes and 20 8-core 2.8 GHz
// nodes, mostly with 16 GB RAM, spread over a 4-switch Gigabit tree.
package cluster

import (
	"fmt"

	"nlarm/internal/topology"
)

// NodeSpec is the immutable hardware description of one compute node —
// the "static attributes" of Table 1 (CPU/core count, CPU frequency,
// total memory).
type NodeSpec struct {
	ID       int
	Hostname string
	// Cores is the logical core count (the paper's nodes are hyperthreaded;
	// the allocator reasons in logical cores throughout).
	Cores int
	// FreqGHz is the CPU clock speed in GHz.
	FreqGHz float64
	// TotalMemMB is physical RAM in MiB.
	TotalMemMB float64
}

// Cluster couples node specs with the network topology. Node IDs index
// both Nodes and the topology.
type Cluster struct {
	Topo  *topology.Topology
	Nodes []NodeSpec
}

// New validates that specs cover exactly the topology's nodes and returns
// the cluster.
func New(topo *topology.Topology, specs []NodeSpec) (*Cluster, error) {
	if len(specs) != topo.NumNodes() {
		return nil, fmt.Errorf("cluster: %d node specs for a %d-node topology", len(specs), topo.NumNodes())
	}
	seen := make(map[string]bool, len(specs))
	for i, s := range specs {
		if s.ID != i {
			return nil, fmt.Errorf("cluster: spec %d has ID %d; IDs must be dense and ordered", i, s.ID)
		}
		if s.Hostname == "" {
			return nil, fmt.Errorf("cluster: node %d has empty hostname", i)
		}
		if seen[s.Hostname] {
			return nil, fmt.Errorf("cluster: duplicate hostname %q", s.Hostname)
		}
		seen[s.Hostname] = true
		if s.Cores <= 0 {
			return nil, fmt.Errorf("cluster: node %q has non-positive core count", s.Hostname)
		}
		if s.FreqGHz <= 0 {
			return nil, fmt.Errorf("cluster: node %q has non-positive CPU frequency", s.Hostname)
		}
		if s.TotalMemMB <= 0 {
			return nil, fmt.Errorf("cluster: node %q has non-positive memory", s.Hostname)
		}
	}
	return &Cluster{Topo: topo, Nodes: specs}, nil
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.Nodes) }

// Node returns the spec of node id.
func (c *Cluster) Node(id int) NodeSpec { return c.Nodes[id] }

// ByHostname returns the node with the given hostname.
func (c *Cluster) ByHostname(h string) (NodeSpec, bool) {
	for _, n := range c.Nodes {
		if n.Hostname == h {
			return n, true
		}
	}
	return NodeSpec{}, false
}

// TotalCores returns the cluster-wide logical core count.
func (c *Cluster) TotalCores() int {
	total := 0
	for _, n := range c.Nodes {
		total += n.Cores
	}
	return total
}

// MaxFreqGHz returns the highest CPU clock in the cluster.
func (c *Cluster) MaxFreqGHz() float64 {
	maxF := 0.0
	for _, n := range c.Nodes {
		if n.FreqGHz > maxF {
			maxF = n.FreqGHz
		}
	}
	return maxF
}

// BuildIITK builds the paper's testbed on the default 4-switch chain:
// each 15-node switch hosts ten 12-core 4.6 GHz nodes followed by five
// 8-core 2.8 GHz nodes (40 fast + 20 slow in total), all with 16 GB RAM.
// Hostnames follow the paper's csewsN convention, 1-based.
func BuildIITK() (*Cluster, error) {
	topo, err := topology.New(topology.DefaultIITK())
	if err != nil {
		return nil, err
	}
	specs := make([]NodeSpec, 0, topo.NumNodes())
	for s := 0; s < topo.NumSwitches(); s++ {
		for i, node := range topo.NodesAt(s) {
			spec := NodeSpec{
				ID:         node,
				Hostname:   fmt.Sprintf("csews%d", node+1),
				Cores:      12,
				FreqGHz:    4.6,
				TotalMemMB: 16 * 1024,
			}
			if i >= 10 { // last five nodes per switch are the older machines
				spec.Cores = 8
				spec.FreqGHz = 2.8
			}
			specs = append(specs, spec)
		}
	}
	return New(topo, specs)
}

// BuildMultiCluster builds a homogeneous multi-cluster deployment on the
// given WAN-joined topology (paper §6's "large department/institute that
// may span over multiple clusters"). It returns the cluster plus a
// node→cluster-index mapping for grouped allocation.
func BuildMultiCluster(mc topology.MultiClusterConfig, cores int, freqGHz, totalMemMB float64) (*Cluster, func(node int) int, error) {
	cfg, err := topology.MultiCluster(mc)
	if err != nil {
		return nil, nil, err
	}
	topo, err := topology.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	specs := make([]NodeSpec, topo.NumNodes())
	for i := range specs {
		specs[i] = NodeSpec{
			ID:         i,
			Hostname:   fmt.Sprintf("c%dn%d", mc.ClusterOf(topo)(i), i+1),
			Cores:      cores,
			FreqGHz:    freqGHz,
			TotalMemMB: totalMemMB,
		}
	}
	cl, err := New(topo, specs)
	if err != nil {
		return nil, nil, err
	}
	return cl, mc.ClusterOf(topo), nil
}

// BuildUniform builds a homogeneous cluster for tests and micro-benchmarks:
// nodesPerSwitch nodes on each of numSwitches chained switches, every node
// with the given cores/freq/mem.
func BuildUniform(numSwitches, nodesPerSwitch, cores int, freqGHz, totalMemMB float64) (*Cluster, error) {
	if numSwitches <= 0 || nodesPerSwitch <= 0 {
		return nil, fmt.Errorf("cluster: switches and nodes per switch must be positive")
	}
	cfg := topology.DefaultIITK()
	cfg.NodesPerSwitch = make([]int, numSwitches)
	cfg.SwitchLinks = nil
	for i := range cfg.NodesPerSwitch {
		cfg.NodesPerSwitch[i] = nodesPerSwitch
		if i > 0 {
			cfg.SwitchLinks = append(cfg.SwitchLinks, [2]int{i - 1, i})
		}
	}
	topo, err := topology.New(cfg)
	if err != nil {
		return nil, err
	}
	specs := make([]NodeSpec, topo.NumNodes())
	for i := range specs {
		specs[i] = NodeSpec{
			ID:         i,
			Hostname:   fmt.Sprintf("node%d", i+1),
			Cores:      cores,
			FreqGHz:    freqGHz,
			TotalMemMB: totalMemMB,
		}
	}
	return New(topo, specs)
}
