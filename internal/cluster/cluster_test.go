package cluster

import (
	"strings"
	"testing"

	"nlarm/internal/topology"
)

func TestBuildIITK(t *testing.T) {
	cl, err := BuildIITK()
	if err != nil {
		t.Fatal(err)
	}
	if cl.Size() != 60 {
		t.Fatalf("size = %d, want 60", cl.Size())
	}
	fast, slow := 0, 0
	for _, n := range cl.Nodes {
		switch {
		case n.Cores == 12 && n.FreqGHz == 4.6:
			fast++
		case n.Cores == 8 && n.FreqGHz == 2.8:
			slow++
		default:
			t.Fatalf("unexpected node spec %+v", n)
		}
		if n.TotalMemMB != 16*1024 {
			t.Fatalf("node %s memory %g", n.Hostname, n.TotalMemMB)
		}
	}
	if fast != 40 || slow != 20 {
		t.Fatalf("fast=%d slow=%d, want 40/20 (paper's testbed)", fast, slow)
	}
}

func TestBuildIITKHostnames(t *testing.T) {
	cl, _ := BuildIITK()
	if cl.Nodes[0].Hostname != "csews1" {
		t.Fatalf("first hostname %q", cl.Nodes[0].Hostname)
	}
	if cl.Nodes[59].Hostname != "csews60" {
		t.Fatalf("last hostname %q", cl.Nodes[59].Hostname)
	}
	spec, ok := cl.ByHostname("csews30")
	if !ok || spec.ID != 29 {
		t.Fatalf("ByHostname(csews30) = %+v %v", spec, ok)
	}
	if _, ok := cl.ByHostname("nope"); ok {
		t.Fatal("ByHostname found a ghost")
	}
}

func TestTotalCoresAndMaxFreq(t *testing.T) {
	cl, _ := BuildIITK()
	want := 40*12 + 20*8
	if got := cl.TotalCores(); got != want {
		t.Fatalf("TotalCores = %d, want %d", got, want)
	}
	if f := cl.MaxFreqGHz(); f != 4.6 {
		t.Fatalf("MaxFreqGHz = %g", f)
	}
}

func TestBuildUniform(t *testing.T) {
	cl, err := BuildUniform(3, 4, 8, 3.0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Size() != 12 {
		t.Fatalf("size = %d", cl.Size())
	}
	if cl.Topo.NumSwitches() != 3 {
		t.Fatalf("switches = %d", cl.Topo.NumSwitches())
	}
	for _, n := range cl.Nodes {
		if n.Cores != 8 || n.FreqGHz != 3.0 || n.TotalMemMB != 8192 {
			t.Fatalf("bad uniform spec %+v", n)
		}
	}
}

func TestBuildUniformSingleSwitch(t *testing.T) {
	cl, err := BuildUniform(1, 6, 4, 2.0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Size() != 6 || cl.Topo.NumSwitches() != 1 {
		t.Fatalf("single switch build: %d nodes, %d switches", cl.Size(), cl.Topo.NumSwitches())
	}
}

func TestBuildUniformErrors(t *testing.T) {
	if _, err := BuildUniform(0, 4, 8, 3, 1024); err == nil {
		t.Fatal("zero switches accepted")
	}
	if _, err := BuildUniform(2, 0, 8, 3, 1024); err == nil {
		t.Fatal("zero nodes per switch accepted")
	}
}

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	cfg := topology.DefaultIITK()
	cfg.NodesPerSwitch = []int{2}
	cfg.SwitchLinks = nil
	topo, err := topology.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestNewValidation(t *testing.T) {
	topo := testTopo(t)
	good := []NodeSpec{
		{ID: 0, Hostname: "a", Cores: 4, FreqGHz: 2, TotalMemMB: 1024},
		{ID: 1, Hostname: "b", Cores: 4, FreqGHz: 2, TotalMemMB: 1024},
	}
	if _, err := New(topo, good); err != nil {
		t.Fatal(err)
	}
	mutate := func(f func([]NodeSpec)) []NodeSpec {
		specs := make([]NodeSpec, len(good))
		copy(specs, good)
		f(specs)
		return specs
	}
	cases := map[string][]NodeSpec{
		"wrong count":    good[:1],
		"bad id":         mutate(func(s []NodeSpec) { s[1].ID = 5 }),
		"empty hostname": mutate(func(s []NodeSpec) { s[0].Hostname = "" }),
		"dup hostname":   mutate(func(s []NodeSpec) { s[1].Hostname = "a" }),
		"zero cores":     mutate(func(s []NodeSpec) { s[0].Cores = 0 }),
		"zero freq":      mutate(func(s []NodeSpec) { s[1].FreqGHz = 0 }),
		"zero mem":       mutate(func(s []NodeSpec) { s[0].TotalMemMB = 0 }),
	}
	for name, specs := range cases {
		if _, err := New(topo, specs); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !strings.Contains(err.Error(), "cluster:") {
			t.Errorf("%s: error lacks package prefix: %v", name, err)
		}
	}
}

func TestNodeAccessor(t *testing.T) {
	cl, _ := BuildIITK()
	n := cl.Node(29)
	if n.ID != 29 || n.Hostname != "csews30" {
		t.Fatalf("Node(29) = %+v", n)
	}
}

func TestIITKHeterogeneityPerSwitch(t *testing.T) {
	cl, _ := BuildIITK()
	// Each switch: first 10 attached nodes fast, last 5 slow.
	for s := 0; s < cl.Topo.NumSwitches(); s++ {
		nodes := cl.Topo.NodesAt(s)
		for i, id := range nodes {
			want := 12
			if i >= 10 {
				want = 8
			}
			if cl.Node(id).Cores != want {
				t.Fatalf("switch %d position %d: cores %d, want %d", s, i, cl.Node(id).Cores, want)
			}
		}
	}
}

func TestBuildMultiCluster(t *testing.T) {
	mc := topology.MultiClusterConfig{Clusters: 2, SwitchesPerCluster: 2, NodesPerSwitch: 3}
	cl, clusterOf, err := BuildMultiCluster(mc, 8, 3.0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Size() != 12 {
		t.Fatalf("size %d", cl.Size())
	}
	if clusterOf(0) != 0 || clusterOf(11) != 1 {
		t.Fatal("cluster mapping wrong")
	}
	// Hostnames encode the cluster.
	if cl.Node(0).Hostname != "c0n1" || cl.Node(6).Hostname != "c1n7" {
		t.Fatalf("hostnames %q %q", cl.Node(0).Hostname, cl.Node(6).Hostname)
	}
	if _, _, err := BuildMultiCluster(topology.MultiClusterConfig{}, 8, 3, 8192); err == nil {
		t.Fatal("empty multi-cluster config accepted")
	}
}
