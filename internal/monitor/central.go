package monitor

import (
	"sync"
	"time"

	"nlarm/internal/simtime"
	"nlarm/internal/store"
)

// leaderLease is the master-election record in the shared store. The
// master refreshes it every supervision tick; a slave that finds it stale
// promotes itself.
type leaderLease struct {
	ID string    `json:"id"`
	At time.Time `json:"at"`
}

// Role is a central monitor's current role.
type Role int

const (
	// RoleSlave watches the master's lease and promotes itself when the
	// lease goes stale.
	RoleSlave Role = iota
	// RoleMaster supervises the daemons and refreshes the lease.
	RoleMaster
)

// String names the role for logs.
func (r Role) String() string {
	if r == RoleMaster {
		return "master"
	}
	return "slave"
}

// Hooks lets the embedding system react to central monitor transitions.
type Hooks struct {
	// OnPromoted fires when a slave becomes master (after master failure).
	OnPromoted func(m *CentralMonitor)
	// OnSlaveDead fires on the master when it detects the slave's
	// heartbeat has gone stale, so a replacement slave can be launched.
	OnSlaveDead func(m *CentralMonitor)
}

// CentralMonitor launches, supervises and relaunches the monitoring
// daemons (§4 of the paper). One master and one slave instance run at a
// time; the master does the supervision work, the slave only watches the
// master's lease. Either can fail and the pair heals itself; if both
// fail, the other daemons keep running unsupervised — exactly the
// degraded mode the paper describes.
type CentralMonitor struct {
	daemonBase
	cfg   Config
	hooks Hooks

	roleMu     sync.Mutex
	role       Role
	rt         simtime.Runtime
	supervised []Daemon
	peerName   string // the other central monitor instance's daemon name
	relaunches int
	promotions int
}

// NewCentralMonitor builds a central monitor instance with the given
// unique name ("centralmon/a", "centralmon/b", ...) starting in role.
// supervised lists the daemons a master must keep alive. peerName is the
// daemon name of the sibling instance (for slave-death detection).
func NewCentralMonitor(name string, role Role, supervised []Daemon, peerName string, st store.Store, cfg Config, hooks Hooks) *CentralMonitor {
	cfg = cfg.withDefaults()
	return &CentralMonitor{
		daemonBase: daemonBase{name: name, period: cfg.SupervisePeriod, st: st},
		cfg:        cfg,
		hooks:      hooks,
		role:       role,
		supervised: supervised,
		peerName:   peerName,
	}
}

// Role returns the instance's current role.
func (m *CentralMonitor) Role() Role {
	m.roleMu.Lock()
	defer m.roleMu.Unlock()
	return m.role
}

// Relaunches returns how many daemon relaunches this instance performed.
func (m *CentralMonitor) Relaunches() int {
	m.roleMu.Lock()
	defer m.roleMu.Unlock()
	return m.relaunches
}

// Promotions returns how many times this instance promoted itself.
func (m *CentralMonitor) Promotions() int {
	m.roleMu.Lock()
	defer m.roleMu.Unlock()
	return m.promotions
}

// Start implements Daemon. A master immediately claims the lease.
func (m *CentralMonitor) Start(rt simtime.Runtime) error {
	m.roleMu.Lock()
	m.rt = rt
	if m.role == RoleMaster {
		_ = putJSON(m.st, KeyLeader, leaderLease{ID: m.name, At: rt.Now()})
	}
	m.roleMu.Unlock()
	return m.start(rt, m.tick)
}

func (m *CentralMonitor) tick(now time.Time) {
	m.roleMu.Lock()
	role := m.role
	m.roleMu.Unlock()
	if role == RoleMaster {
		m.masterTick(now)
	} else {
		m.slaveTick(now)
	}
}

func (m *CentralMonitor) masterTick(now time.Time) {
	// Refresh the lease first: supervision work must not cost the master
	// its leadership.
	_ = putJSON(m.st, KeyLeader, leaderLease{ID: m.name, At: now})

	for _, d := range m.supervised {
		if m.staleFor(d.Name(), d.Period(), now) {
			d.Stop() // clear any half-alive state before relaunch
			if err := d.Start(m.rt); err == nil {
				m.roleMu.Lock()
				m.relaunches++
				m.roleMu.Unlock()
				writeHeartbeat(m.st, d.Name(), now)
				m.obs.Counter("monitor.relaunches.total").Inc()
				m.obs.Emit(now, "relaunch", d.Name()+" by "+m.name)
			}
		}
	}

	if m.peerName != "" && m.staleFor(m.peerName, m.cfg.SupervisePeriod, now) && m.hooks.OnSlaveDead != nil {
		m.hooks.OnSlaveDead(m)
	}
}

func (m *CentralMonitor) slaveTick(now time.Time) {
	var lease leaderLease
	err := getJSON(m.st, KeyLeader, &lease)
	if err == nil && now.Sub(lease.At) <= m.cfg.HeartbeatTimeout {
		return // master is healthy
	}
	// Master lease is stale (or missing): promote.
	m.roleMu.Lock()
	m.role = RoleMaster
	m.promotions++
	m.roleMu.Unlock()
	_ = putJSON(m.st, KeyLeader, leaderLease{ID: m.name, At: now})
	m.obs.Counter("monitor.promotions.total").Inc()
	m.obs.Emit(now, "promotion", m.name)
	if m.hooks.OnPromoted != nil {
		m.hooks.OnPromoted(m)
	}
}

// AdoptSupervised replaces the supervised daemon set (used when a
// promoted slave takes over supervision, and by the manager when spawning
// replacement instances).
func (m *CentralMonitor) AdoptSupervised(ds []Daemon, peerName string) {
	m.roleMu.Lock()
	defer m.roleMu.Unlock()
	m.supervised = ds
	m.peerName = peerName
}

// staleFor reports whether the named daemon's heartbeat is too old. The
// threshold comes from stalenessThreshold — the same rule the doctor's
// thresholdFor applies — so supervision and diagnosis can never disagree
// about who is dead.
func (m *CentralMonitor) staleFor(name string, period time.Duration, now time.Time) bool {
	at, ok := readHeartbeat(m.st, name)
	if !ok {
		return true
	}
	return now.Sub(at) > stalenessThreshold(period, m.cfg)
}
