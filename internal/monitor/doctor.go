package monitor

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nlarm/internal/store"
)

// DaemonHealth is one daemon's liveness verdict, judged from its
// heartbeat in the shared store.
type DaemonHealth struct {
	Name      string
	Last      time.Time
	Age       time.Duration
	Threshold time.Duration
	Healthy   bool
}

// Diagnosis is a full health check of the monitoring system, computed
// purely from the shared store — it can run anywhere the store is
// reachable, with no access to the daemon processes (exactly how an
// operator would check the paper's NFS directory).
type Diagnosis struct {
	Taken   time.Time
	Daemons []DaemonHealth
	// LeaderName and LeaderAge describe the central-monitor lease.
	LeaderName    string
	LeaderAge     time.Duration
	LeaderHealthy bool
	// Livehosts is the published live-node count; LivehostsAge its age.
	Livehosts    int
	LivehostsAge time.Duration
	// FreshNodeRecords counts node-state records younger than twice the
	// sampling period; StaleNodeRecords the rest.
	FreshNodeRecords int
	StaleNodeRecords int
	// LatencyPairs/BandwidthPairs are the published matrix sizes.
	LatencyPairs   int
	BandwidthPairs int
}

// Healthy reports whether every daemon heartbeat and the leader lease are
// fresh.
func (d *Diagnosis) Healthy() bool {
	if !d.LeaderHealthy {
		return false
	}
	for _, h := range d.Daemons {
		if !h.Healthy {
			return false
		}
	}
	return true
}

// stalenessThreshold is the single source of truth for how stale a
// heartbeat may be before a daemon with the given tick period counts as
// dead: the larger of the configured timeout and 2.5 periods, so slow
// daemons like BandwidthD are not declared dead (or relaunched) between
// legitimate ticks. Both the central monitor's supervision (staleFor)
// and the doctor's diagnosis (thresholdFor) apply this rule.
func stalenessThreshold(period time.Duration, cfg Config) time.Duration {
	threshold := cfg.HeartbeatTimeout
	if p := period * 5 / 2; p > threshold {
		threshold = p
	}
	return threshold
}

// periodFor maps a daemon name to the tick period the staleness rule
// should assume for it. The central monitor knows each supervised
// daemon's exact period; the doctor only has names, so it reconstructs
// the period per daemon family.
func periodFor(name string, cfg Config) time.Duration {
	switch {
	case strings.HasPrefix(name, "nodestated/"):
		return cfg.NodeStatePeriod
	case strings.HasPrefix(name, "livehostsd/"):
		// Replicas run at staggered multiples of the base period; allow
		// the slowest replica's cadence.
		return cfg.LivehostsPeriod * time.Duration(cfg.LivehostsReplicas)
	case name == "latencyd":
		return cfg.LatencyPeriod
	case name == "bandwidthd":
		return cfg.BandwidthPeriod
	default: // centralmon/* and anything unknown
		return cfg.SupervisePeriod
	}
}

// thresholdFor is the doctor's staleness threshold for the named daemon:
// periodFor's family period fed through the shared stalenessThreshold
// rule.
func thresholdFor(name string, cfg Config) time.Duration {
	return stalenessThreshold(periodFor(name, cfg), cfg)
}

// Diagnose inspects the store and returns the system's health at `now`.
func Diagnose(st store.Store, now time.Time, cfg Config) (*Diagnosis, error) {
	cfg = cfg.withDefaults()
	d := &Diagnosis{Taken: now}

	keys, err := st.List(KeyHeartbeatPrefix)
	if err != nil {
		return nil, fmt.Errorf("monitor: diagnose: %w", err)
	}
	for _, k := range keys {
		name := strings.TrimPrefix(k, KeyHeartbeatPrefix)
		at, ok := readHeartbeat(st, name)
		if !ok {
			continue
		}
		h := DaemonHealth{
			Name:      name,
			Last:      at,
			Age:       now.Sub(at),
			Threshold: thresholdFor(name, cfg),
		}
		h.Healthy = h.Age <= h.Threshold
		d.Daemons = append(d.Daemons, h)
	}
	sort.Slice(d.Daemons, func(i, j int) bool { return d.Daemons[i].Name < d.Daemons[j].Name })

	var lease leaderLease
	if err := getJSON(st, KeyLeader, &lease); err == nil {
		d.LeaderName = lease.ID
		d.LeaderAge = now.Sub(lease.At)
		d.LeaderHealthy = d.LeaderAge <= thresholdFor(lease.ID, cfg)
	}

	if hosts, at, err := ReadLivehosts(st); err == nil {
		d.Livehosts = len(hosts)
		d.LivehostsAge = now.Sub(at)
		freshCut := 2 * cfg.NodeStatePeriod
		for _, id := range hosts {
			attrs, err := ReadNodeState(st, id)
			if err != nil {
				d.StaleNodeRecords++
				continue
			}
			if now.Sub(attrs.Timestamp) <= freshCut {
				d.FreshNodeRecords++
			} else {
				d.StaleNodeRecords++
			}
		}
	}
	if lm, err := ReadLatencyMatrix(st); err == nil {
		d.LatencyPairs = len(lm)
	}
	if bm, err := ReadBandwidthMatrix(st); err == nil {
		d.BandwidthPairs = len(bm)
	}
	return d, nil
}

// FormatDiagnosis renders a human-readable health report.
func FormatDiagnosis(d *Diagnosis) string {
	var b strings.Builder
	status := "HEALTHY"
	if !d.Healthy() {
		status = "DEGRADED"
	}
	fmt.Fprintf(&b, "monitor health: %s (leader %s, lease age %v)\n",
		status, d.LeaderName, d.LeaderAge.Round(time.Second))
	fmt.Fprintf(&b, "livehosts: %d (age %v); node records: %d fresh, %d stale; matrices: %d latency, %d bandwidth pairs\n",
		d.Livehosts, d.LivehostsAge.Round(time.Second),
		d.FreshNodeRecords, d.StaleNodeRecords, d.LatencyPairs, d.BandwidthPairs)
	sick := 0
	for _, h := range d.Daemons {
		if !h.Healthy {
			sick++
			fmt.Fprintf(&b, "  DEAD %-16s last heartbeat %v ago (threshold %v)\n",
				h.Name, h.Age.Round(time.Second), h.Threshold)
		}
	}
	if sick == 0 {
		fmt.Fprintf(&b, "all %d daemons heartbeating\n", len(d.Daemons))
	}
	return b.String()
}
