package monitor

import (
	"fmt"
	"time"

	"nlarm/internal/simtime"
	"nlarm/internal/store"
)

// livehostsRecord is what a LivehostsD replica publishes.
type livehostsRecord struct {
	Replica int       `json:"replica"`
	At      time.Time `json:"at"`
	Hosts   []int     `json:"hosts"`
}

// LivehostsD periodically pings every node and publishes the list of
// reachable ("live") hosts. The paper runs several replicas at different
// frequencies on different nodes for fault tolerance; replica identifies
// this instance.
type LivehostsD struct {
	daemonBase
	replica int
	pr      Prober
}

// NewLivehostsD builds replica `replica` with the given ping period.
func NewLivehostsD(replica int, pr Prober, st store.Store, period time.Duration) *LivehostsD {
	return &LivehostsD{
		daemonBase: daemonBase{
			name:   fmt.Sprintf("livehostsd/%d", replica),
			period: period,
			st:     st,
		},
		replica: replica,
		pr:      pr,
	}
}

// Start implements Daemon.
func (d *LivehostsD) Start(rt simtime.Runtime) error {
	return d.start(rt, d.tick)
}

func (d *LivehostsD) tick(now time.Time) {
	rec := livehostsRecord{Replica: d.replica, At: now}
	for id := 0; id < d.pr.NumNodes(); id++ {
		if d.pr.Ping(id) {
			rec.Hosts = append(rec.Hosts, id)
		}
	}
	_ = putJSON(d.st, fmt.Sprintf("%s%d", KeyLivehostsPrefix, d.replica), rec)
}

// ReadLivehosts merges the replicas' published lists, preferring the most
// recent record (the paper's replicas exist so at least one is fresh).
func ReadLivehosts(st store.Store) ([]int, time.Time, error) {
	keys, err := st.List(KeyLivehostsPrefix)
	if err != nil {
		return nil, time.Time{}, err
	}
	var best livehostsRecord
	found := false
	for _, k := range keys {
		var rec livehostsRecord
		if err := getJSON(st, k, &rec); err != nil {
			continue
		}
		if !found || rec.At.After(best.At) {
			best = rec
			found = true
		}
	}
	if !found {
		return nil, time.Time{}, fmt.Errorf("monitor: no livehosts records: %w", store.ErrNotFound)
	}
	return best.Hosts, best.At, nil
}
