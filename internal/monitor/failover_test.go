package monitor

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// chaosSeeds returns the deterministic seed set for failure-injection
// tests. CI's chaos job adds one matrix seed via NLARM_CHAOS_SEED.
func chaosSeeds() []uint64 {
	seeds := []uint64{1, 2, 3}
	if v := os.Getenv("NLARM_CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			seeds = append(seeds, n)
		}
	}
	return seeds
}

// --- thresholdFor / staleFor single source of truth (satellite) ----------

func TestFaultThresholdSingleSourceOfTruth(t *testing.T) {
	cfgs := map[string]Config{
		"defaults": DefaultConfig(),
		"custom": {
			NodeStatePeriod:   3 * time.Second,
			LivehostsPeriod:   7 * time.Second,
			LatencyPeriod:     90 * time.Second,
			BandwidthPeriod:   11 * time.Minute,
			SupervisePeriod:   20 * time.Second,
			HeartbeatTimeout:  time.Minute,
			LivehostsReplicas: 3,
		},
		"tiny-timeout": {
			NodeStatePeriod:   2 * time.Second,
			LivehostsPeriod:   2 * time.Second,
			LatencyPeriod:     5 * time.Second,
			BandwidthPeriod:   10 * time.Second,
			SupervisePeriod:   4 * time.Second,
			HeartbeatTimeout:  1 * time.Second,
			LivehostsReplicas: 2,
		},
	}
	for cname, cfg := range cfgs {
		cfg = cfg.withDefaults()
		cases := []struct {
			name   string
			period time.Duration
		}{
			{"nodestated/0", cfg.NodeStatePeriod},
			{"nodestated/59", cfg.NodeStatePeriod},
			{"livehostsd/0", cfg.LivehostsPeriod * time.Duration(cfg.LivehostsReplicas)},
			{"livehostsd/2", cfg.LivehostsPeriod * time.Duration(cfg.LivehostsReplicas)},
			{"latencyd", cfg.LatencyPeriod},
			{"bandwidthd", cfg.BandwidthPeriod},
			{"centralmon/0", cfg.SupervisePeriod},
			{"centralmon/17", cfg.SupervisePeriod},
			{"somethingelse", cfg.SupervisePeriod},
		}
		for _, tc := range cases {
			t.Run(cname+"/"+tc.name, func(t *testing.T) {
				want := cfg.HeartbeatTimeout
				if p := tc.period * 5 / 2; p > want {
					want = p
				}
				if got := thresholdFor(tc.name, cfg); got != want {
					t.Fatalf("thresholdFor(%s) = %v, want %v", tc.name, got, want)
				}
				if got := stalenessThreshold(periodFor(tc.name, cfg), cfg); got != thresholdFor(tc.name, cfg) {
					t.Fatalf("doctor and shared rule disagree: %v", got)
				}
			})
		}
	}
}

// TestFaultStaleForMatchesDoctorThreshold pins supervision and diagnosis
// to the same verdict: a heartbeat exactly at the threshold is alive to
// both, one tick past it is dead to both.
func TestFaultStaleForMatchesDoctorThreshold(t *testing.T) {
	r := newRig(t, 20)
	cfg := fastConfig()
	m := NewCentralMonitor("centralmon/test", RoleMaster, nil, "", r.st, cfg, Hooks{})
	cfg = cfg.withDefaults()
	for _, name := range []string{"nodestated/1", "livehostsd/0", "latencyd", "bandwidthd"} {
		period := periodFor(name, cfg)
		threshold := thresholdFor(name, cfg)
		at := t0
		writeHeartbeat(r.st, name, at)
		if m.staleFor(name, period, at.Add(threshold)) {
			t.Fatalf("%s: stale exactly at threshold %v", name, threshold)
		}
		if !m.staleFor(name, period, at.Add(threshold+time.Nanosecond)) {
			t.Fatalf("%s: alive past threshold %v", name, threshold)
		}
	}
}

// --- master/slave failover under seeded kills (satellite) ----------------

func TestFailoverExactlyOnePromotion(t *testing.T) {
	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := newRig(t, seed)
			mgr := NewManager(r.pr, r.st, fastConfig())
			if err := mgr.Start(r.sched); err != nil {
				t.Fatal(err)
			}
			defer mgr.Stop()

			// Concurrent observer so -race exercises the managers' locking
			// while the scheduler drives ticks.
			stopObs := make(chan struct{})
			obsDone := make(chan struct{})
			go func() {
				defer close(obsDone)
				for {
					select {
					case <-stopObs:
						return
					default:
					}
					_ = mgr.Master()
					for _, c := range mgr.Centrals() {
						_ = c.Role()
						_ = c.Promotions()
						_ = c.Relaunches()
					}
					_, _ = Diagnose(r.st, r.sched.Now(), fastConfig())
				}
			}()
			defer func() { close(stopObs); <-obsDone }()

			// Seed-varied kill instant: mid-run, not tick-aligned.
			r.sched.RunFor(10*time.Second + time.Duration(seed%7)*700*time.Millisecond)
			master := mgr.Centrals()[0]
			if master.Role() != RoleMaster {
				t.Fatal("instance 0 is not the initial master")
			}
			master.Crash()
			r.sched.RunFor(time.Minute)

			promotions := 0
			runningMasters := 0
			for _, c := range mgr.Centrals() {
				promotions += c.Promotions()
				if c.Running() && c.Role() == RoleMaster {
					runningMasters++
				}
			}
			if promotions != 1 {
				t.Fatalf("promotions = %d, want exactly 1", promotions)
			}
			if runningMasters != 1 {
				t.Fatalf("running masters = %d, want exactly 1", runningMasters)
			}
			if len(mgr.Centrals()) != 3 {
				t.Fatalf("%d central instances, want 3 (pair + replacement slave)", len(mgr.Centrals()))
			}
			replacement := mgr.Centrals()[2]
			if !replacement.Running() || replacement.Role() != RoleSlave {
				t.Fatalf("replacement slave: running=%v role=%v", replacement.Running(), replacement.Role())
			}
		})
	}
}

func TestFailoverAdoptionAndNoDoubleRelaunch(t *testing.T) {
	for _, seed := range chaosSeeds() {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := newRig(t, seed+100)
			mgr := NewManager(r.pr, r.st, fastConfig())
			if err := mgr.Start(r.sched); err != nil {
				t.Fatal(err)
			}
			defer mgr.Stop()
			r.sched.RunFor(10 * time.Second)

			// Kill the master, let the slave take over.
			mgr.Centrals()[0].Crash()
			r.sched.RunFor(time.Minute)
			promoted := mgr.Master()
			if promoted == nil || promoted != mgr.Centrals()[1] {
				t.Fatal("slave did not take over as the authoritative master")
			}

			// Supervised-daemon adoption: a worker crashed AFTER failover
			// must be relaunched by the promoted master.
			d := mgr.Daemon("latencyd")
			d.Crash()
			r.sched.RunFor(time.Minute)
			if !d.Running() {
				t.Fatal("promoted master did not relaunch crashed worker (adoption broken)")
			}
			if promoted.Relaunches() != 1 {
				t.Fatalf("promoted master relaunches = %d, want 1", promoted.Relaunches())
			}

			// No double-relaunch: nobody else relaunched it, and further
			// settling must not relaunch a healthy daemon again.
			total := 0
			for _, c := range mgr.Centrals() {
				total += c.Relaunches()
			}
			if total != 1 {
				t.Fatalf("total relaunches = %d, want exactly 1 (double relaunch)", total)
			}
			ticksBefore := d.(*LatencyD).Ticks()
			r.sched.RunFor(2 * time.Minute)
			total = 0
			for _, c := range mgr.Centrals() {
				total += c.Relaunches()
			}
			if total != 1 {
				t.Fatalf("healthy daemon relaunched again: total=%d", total)
			}
			if d.(*LatencyD).Ticks() <= ticksBefore {
				t.Fatal("relaunched daemon stopped ticking")
			}
		})
	}
}
