package monitor

import (
	"strings"
	"testing"
	"time"
)

func TestDiagnoseHealthySystem(t *testing.T) {
	r := newRig(t, 40)
	mgr := NewManager(r.pr, r.st, fastConfig())
	if err := mgr.Start(r.sched); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	r.sched.RunFor(30 * time.Second)

	d, err := Diagnose(r.st, r.sched.Now(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !d.Healthy() {
		t.Fatalf("healthy system diagnosed as degraded:\n%s", FormatDiagnosis(d))
	}
	// 8 nodestated + 2 livehostsd + latencyd + bandwidthd + 2 centrals.
	if len(d.Daemons) != 14 {
		t.Fatalf("%d daemons in diagnosis", len(d.Daemons))
	}
	if d.Livehosts != 8 || d.FreshNodeRecords != 8 || d.StaleNodeRecords != 0 {
		t.Fatalf("node accounting: %+v", d)
	}
	if d.LatencyPairs != 28 || d.BandwidthPairs != 28 {
		t.Fatalf("matrices %d/%d", d.LatencyPairs, d.BandwidthPairs)
	}
	if d.LeaderName == "" || !d.LeaderHealthy {
		t.Fatalf("leader %q healthy=%v", d.LeaderName, d.LeaderHealthy)
	}
	out := FormatDiagnosis(d)
	if !strings.Contains(out, "HEALTHY") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestDiagnoseDetectsDeadDaemon(t *testing.T) {
	r := newRig(t, 41)
	mgr := NewManager(r.pr, r.st, fastConfig())
	if err := mgr.Start(r.sched); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(30 * time.Second)
	// Stop everything (including the supervisors, so nothing relaunches),
	// then let heartbeats go stale.
	mgr.Stop()
	r.sched.RunFor(5 * time.Minute)

	d, err := Diagnose(r.st, r.sched.Now(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.Healthy() {
		t.Fatal("dead system diagnosed as healthy")
	}
	dead := 0
	for _, h := range d.Daemons {
		if !h.Healthy {
			dead++
		}
	}
	if dead != len(d.Daemons) {
		t.Fatalf("%d of %d daemons flagged dead", dead, len(d.Daemons))
	}
	if d.LeaderHealthy {
		t.Fatal("stale lease reported healthy")
	}
	out := FormatDiagnosis(d)
	if !strings.Contains(out, "DEGRADED") || !strings.Contains(out, "DEAD") {
		t.Fatalf("report:\n%s", out)
	}
}

func TestDiagnoseRespectsSlowDaemonPeriods(t *testing.T) {
	// A healthy BandwidthD heartbeats only every BandwidthPeriod; the
	// doctor must not flag it between sweeps.
	r := newRig(t, 42)
	cfg := fastConfig()
	cfg.BandwidthPeriod = 2 * time.Minute
	mgr := NewManager(r.pr, r.st, cfg)
	if err := mgr.Start(r.sched); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	// At t=3min the last bandwidth heartbeat is ≤2min old: healthy.
	r.sched.RunFor(3 * time.Minute)
	d, err := Diagnose(r.st, r.sched.Now(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range d.Daemons {
		if h.Name == "bandwidthd" && !h.Healthy {
			t.Fatalf("slow-but-healthy bandwidthd flagged: age %v threshold %v", h.Age, h.Threshold)
		}
	}
}

func TestDiagnoseEmptyStore(t *testing.T) {
	r := newRig(t, 43)
	d, err := Diagnose(r.st, r.sched.Now(), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Daemons) != 0 || d.Livehosts != 0 {
		t.Fatalf("empty-store diagnosis %+v", d)
	}
	// No lease at all: not healthy.
	if d.Healthy() {
		t.Fatal("empty system healthy")
	}
}
