// Package monitor implements the paper's Resource Monitor: a set of
// light-weight daemons (LivehostsD, NodeStateD, LatencyD, BandwidthD)
// that periodically probe the cluster and publish node attributes and
// pairwise network measurements to a shared store, plus the Central
// Monitor master/slave pair that supervises and relaunches them.
//
// Daemons are driven by a simtime.Runtime, so the same code runs inside
// the deterministic simulation (experiments) and against the wall clock
// (the cmd/ daemons).
package monitor

import (
	"time"

	"nlarm/internal/world"
)

// NodeSample is one instantaneous reading of a node's dynamic attributes.
type NodeSample struct {
	CPULoad     float64
	CPUUtilPct  float64
	UsedMemMB   float64
	Users       int
	FlowRateBps float64
}

// Prober abstracts how daemons observe the cluster. The simulation world
// implements it via WorldProber; a real deployment would shell out to
// lscpu/uptime/psutil equivalents and MPI ping-pong benchmarks.
type Prober interface {
	// NumNodes returns the cluster size; node IDs are 0..NumNodes-1.
	NumNodes() int
	// Hostname returns the node's hostname.
	Hostname(id int) string
	// StaticAttrs returns the node's immutable hardware attributes.
	StaticAttrs(id int) (cores int, freqGHz, totalMemMB float64)
	// Ping reports whether the node currently responds.
	Ping(id int) bool
	// SampleNode reads the node's dynamic attributes; it fails when the
	// node is unreachable.
	SampleNode(id int) (NodeSample, error)
	// MeasureLatency runs a latency probe between two nodes.
	MeasureLatency(u, v int) (time.Duration, error)
	// MeasureBandwidth runs a bandwidth probe between two nodes, returning
	// the effective available bandwidth and the pair's peak capacity.
	MeasureBandwidth(u, v int) (availBps, peakBps float64, err error)
}

// WorldProber adapts the simulation world to the Prober interface.
type WorldProber struct {
	W *world.World
	// ProbeTraffic, when positive, injects measurement traffic of this
	// rate for ProbeDuration on every bandwidth probe, reproducing the
	// footprint of the paper's MPI measurement runs.
	ProbeTraffic  float64
	ProbeDuration time.Duration
}

// NumNodes implements Prober.
func (p *WorldProber) NumNodes() int { return p.W.Cluster().Size() }

// Hostname implements Prober.
func (p *WorldProber) Hostname(id int) string { return p.W.Cluster().Node(id).Hostname }

// StaticAttrs implements Prober.
func (p *WorldProber) StaticAttrs(id int) (int, float64, float64) {
	n := p.W.Cluster().Node(id)
	return n.Cores, n.FreqGHz, n.TotalMemMB
}

// Ping implements Prober.
func (p *WorldProber) Ping(id int) bool { return p.W.Ping(id) }

// SampleNode implements Prober.
func (p *WorldProber) SampleNode(id int) (NodeSample, error) {
	s, err := p.W.SampleNode(id)
	if err != nil {
		return NodeSample{}, err
	}
	return NodeSample{
		CPULoad:     s.CPULoad,
		CPUUtilPct:  s.CPUUtilPct,
		UsedMemMB:   s.UsedMemMB,
		Users:       s.Users,
		FlowRateBps: s.FlowRateBps,
	}, nil
}

// MeasureLatency implements Prober.
func (p *WorldProber) MeasureLatency(u, v int) (time.Duration, error) {
	return p.W.MeasureLatency(u, v)
}

// MeasureBandwidth implements Prober.
func (p *WorldProber) MeasureBandwidth(u, v int) (float64, float64, error) {
	avail, peak, err := p.W.MeasureBandwidth(u, v)
	if err == nil && p.ProbeTraffic > 0 && p.ProbeDuration > 0 {
		p.W.InjectProbe(u, v, p.ProbeTraffic, p.ProbeDuration)
	}
	return avail, peak, err
}
