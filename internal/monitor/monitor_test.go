package monitor

import (
	"testing"
	"time"

	"nlarm/internal/cluster"
	"nlarm/internal/simtime"
	"nlarm/internal/store"
	"nlarm/internal/world"
)

var t0 = time.Date(2020, 3, 2, 8, 0, 0, 0, time.UTC)

// rig is a small world + store + scheduler for monitor tests.
type rig struct {
	sched *simtime.Scheduler
	w     *world.World
	st    *store.MemStore
	pr    *WorldProber
}

func newRig(t *testing.T, seed uint64) *rig {
	t.Helper()
	cl, err := cluster.BuildUniform(2, 4, 8, 3.0, 8192)
	if err != nil {
		t.Fatal(err)
	}
	sched := simtime.NewScheduler(t0)
	w := world.New(cl, world.Config{Seed: seed, StepSize: time.Second}, t0)
	w.Attach(sched)
	return &rig{sched: sched, w: w, st: store.NewMem(), pr: &WorldProber{W: w}}
}

func fastConfig() Config {
	return Config{
		NodeStatePeriod:   2 * time.Second,
		LivehostsPeriod:   2 * time.Second,
		LatencyPeriod:     5 * time.Second,
		BandwidthPeriod:   10 * time.Second,
		SupervisePeriod:   4 * time.Second,
		HeartbeatTimeout:  10 * time.Second,
		LivehostsReplicas: 2,
	}
}

// --- Rounds ------------------------------------------------------------------

func TestRoundsDisjointPairs(t *testing.T) {
	nodes := []int{0, 1, 2, 3, 4, 5}
	rounds := Rounds(nodes)
	if len(rounds) != 5 {
		t.Fatalf("%d rounds for 6 nodes, want 5", len(rounds))
	}
	for ri, round := range rounds {
		if len(round) != 3 {
			t.Fatalf("round %d has %d pairs, want n/2=3", ri, len(round))
		}
		seen := map[int]bool{}
		for _, p := range round {
			if seen[p[0]] || seen[p[1]] {
				t.Fatalf("round %d reuses a node: %v", ri, round)
			}
			seen[p[0]] = true
			seen[p[1]] = true
		}
	}
}

func TestRoundsCoverAllPairs(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 13} {
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = i * 10
		}
		seen := map[[2]int]int{}
		for _, round := range Rounds(nodes) {
			for _, p := range round {
				seen[p]++
			}
		}
		want := n * (n - 1) / 2
		if len(seen) != want {
			t.Fatalf("n=%d: %d distinct pairs, want %d", n, len(seen), want)
		}
		for p, count := range seen {
			if count != 1 {
				t.Fatalf("n=%d: pair %v measured %d times", n, p, count)
			}
		}
	}
}

func TestRoundsOddNodeCount(t *testing.T) {
	rounds := Rounds([]int{1, 2, 3})
	// 3 nodes -> 3 rounds of 1 pair each (one node byes per round).
	total := 0
	for _, r := range rounds {
		total += len(r)
	}
	if total != 3 {
		t.Fatalf("odd count covered %d pairs, want 3", total)
	}
}

func TestRoundsDegenerate(t *testing.T) {
	if Rounds(nil) != nil || Rounds([]int{7}) != nil {
		t.Fatal("degenerate inputs should give no rounds")
	}
}

// --- Individual daemons -------------------------------------------------------

func TestLivehostsD(t *testing.T) {
	r := newRig(t, 1)
	d := NewLivehostsD(0, r.pr, r.st, 2*time.Second)
	if err := d.Start(r.sched); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(3 * time.Second)
	hosts, at, err := ReadLivehosts(r.st)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 8 {
		t.Fatalf("livehosts = %v", hosts)
	}
	if at.IsZero() {
		t.Fatal("no timestamp")
	}
	// Down node disappears on next sweep.
	r.w.SetNodeDown(3, true)
	r.sched.RunFor(3 * time.Second)
	hosts, _, _ = ReadLivehosts(r.st)
	for _, h := range hosts {
		if h == 3 {
			t.Fatal("down node still in livehosts")
		}
	}
}

func TestNodeStateDPublishesRunningMeans(t *testing.T) {
	r := newRig(t, 2)
	d := NewNodeStateD(1, r.pr, r.st, 2*time.Second)
	if err := d.Start(r.sched); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(3 * time.Minute)
	attrs, err := ReadNodeState(r.st, 1)
	if err != nil {
		t.Fatal(err)
	}
	if attrs.NodeID != 1 || attrs.Cores != 8 || attrs.FreqGHz != 3.0 {
		t.Fatalf("static attrs %+v", attrs)
	}
	if attrs.Hostname == "" {
		t.Fatal("no hostname")
	}
	if attrs.CPULoad.M1 < 0 || attrs.AvailMemMB.M15 <= 0 {
		t.Fatalf("dynamic attrs %+v", attrs)
	}
	if attrs.Timestamp.IsZero() {
		t.Fatal("no timestamp")
	}
}

func TestNodeStateDSkipsDownNode(t *testing.T) {
	r := newRig(t, 3)
	d := NewNodeStateD(2, r.pr, r.st, 2*time.Second)
	_ = d.Start(r.sched)
	r.sched.RunFor(5 * time.Second)
	first, err := ReadNodeState(r.st, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.w.SetNodeDown(2, true)
	r.sched.RunFor(time.Minute)
	second, _ := ReadNodeState(r.st, 2)
	if !second.Timestamp.Equal(first.Timestamp) {
		// The record may have refreshed between RunFor boundaries before
		// the node went down, but it must be stale versus now.
		age := r.sched.Now().Sub(second.Timestamp)
		if age < 50*time.Second {
			t.Fatalf("down node's record still fresh (age %v)", age)
		}
	}
}

func TestLatencyAndBandwidthDaemons(t *testing.T) {
	r := newRig(t, 4)
	lat := NewLatencyD(r.pr, r.st, 5*time.Second)
	bw := NewBandwidthD(r.pr, r.st, 10*time.Second)
	if err := lat.Start(r.sched); err != nil {
		t.Fatal(err)
	}
	if err := bw.Start(r.sched); err != nil {
		t.Fatal(err)
	}
	r.sched.RunFor(time.Minute)
	lm, err := ReadLatencyMatrix(r.st)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := ReadBandwidthMatrix(r.st)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := 8 * 7 / 2
	if len(lm) != wantPairs || len(bm) != wantPairs {
		t.Fatalf("matrix sizes %d/%d, want %d", len(lm), len(bm), wantPairs)
	}
	for k, pl := range lm {
		if pl.Last <= 0 || pl.Mean1 <= 0 {
			t.Fatalf("pair %v latency %+v", k, pl)
		}
	}
	for k, pb := range bm {
		if pb.AvailBps <= 0 || pb.PeakBps <= 0 {
			t.Fatalf("pair %v bandwidth %+v", k, pb)
		}
	}
}

func TestBandwidthProbeInjection(t *testing.T) {
	r := newRig(t, 5)
	r.pr.ProbeTraffic = 50e6
	r.pr.ProbeDuration = 2 * time.Second
	bw := NewBandwidthD(r.pr, r.st, 10*time.Second)
	_ = bw.Start(r.sched)
	r.sched.RunFor(11 * time.Second)
	// Probe traffic was injected; it expires after ProbeDuration, so by
	// now the network is clean again — just assert the sweep happened.
	if bw.Ticks() == 0 {
		t.Fatal("bandwidth daemon never ticked")
	}
	if _, err := ReadBandwidthMatrix(r.st); err != nil {
		t.Fatal(err)
	}
}

// --- Manager & central monitor -----------------------------------------------

func TestManagerPublishesEverything(t *testing.T) {
	r := newRig(t, 6)
	mgr := NewManager(r.pr, r.st, fastConfig())
	if err := mgr.Start(r.sched); err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	r.sched.RunFor(30 * time.Second)
	snap, err := mgr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Livehosts) != 8 || len(snap.Nodes) != 8 {
		t.Fatalf("snapshot hosts=%d nodes=%d", len(snap.Livehosts), len(snap.Nodes))
	}
	if len(snap.Latency) != 28 || len(snap.Bandwidth) != 28 {
		t.Fatalf("snapshot matrices lat=%d bw=%d", len(snap.Latency), len(snap.Bandwidth))
	}
}

func TestManagerDoubleStartFails(t *testing.T) {
	r := newRig(t, 7)
	mgr := NewManager(r.pr, r.st, fastConfig())
	_ = mgr.Start(r.sched)
	defer mgr.Stop()
	if err := mgr.Start(r.sched); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestCentralMonitorRelaunchesCrashedDaemon(t *testing.T) {
	r := newRig(t, 8)
	mgr := NewManager(r.pr, r.st, fastConfig())
	_ = mgr.Start(r.sched)
	defer mgr.Stop()
	r.sched.RunFor(10 * time.Second)

	d := mgr.Daemon("latencyd")
	if d == nil || !d.Running() {
		t.Fatal("latencyd not running")
	}
	d.Crash()
	if d.Running() {
		t.Fatal("crash did not stop daemon")
	}
	// Heartbeat timeout 10s (or 2.5 periods = 12.5s for latencyd) +
	// supervise period 4s: well within a minute.
	r.sched.RunFor(time.Minute)
	if !d.Running() {
		t.Fatal("central monitor did not relaunch crashed latencyd")
	}
	if mgr.Master().Relaunches() == 0 {
		t.Fatal("master counted no relaunches")
	}
}

func TestMasterFailover(t *testing.T) {
	r := newRig(t, 9)
	mgr := NewManager(r.pr, r.st, fastConfig())
	_ = mgr.Start(r.sched)
	defer mgr.Stop()
	r.sched.RunFor(10 * time.Second)

	centrals := mgr.Centrals()
	if len(centrals) != 2 {
		t.Fatalf("%d central monitors, want 2", len(centrals))
	}
	master, slave := centrals[0], centrals[1]
	if master.Role() != RoleMaster || slave.Role() != RoleSlave {
		t.Fatalf("roles: %v / %v", master.Role(), slave.Role())
	}
	// Kill the master; slave must promote and spawn a replacement slave.
	master.Crash()
	r.sched.RunFor(time.Minute)
	if slave.Role() != RoleMaster {
		t.Fatal("slave did not promote after master death")
	}
	if slave.Promotions() != 1 {
		t.Fatalf("promotions = %d", slave.Promotions())
	}
	after := mgr.Centrals()
	if len(after) != 3 {
		t.Fatalf("no replacement slave spawned: %d centrals", len(after))
	}
	replacement := after[2]
	if !replacement.Running() || replacement.Role() != RoleSlave {
		t.Fatalf("replacement state: running=%v role=%v", replacement.Running(), replacement.Role())
	}
	if mgr.Master() != slave {
		t.Fatal("Master() does not report the promoted instance")
	}
}

func TestSlaveDeathSpawnsReplacement(t *testing.T) {
	r := newRig(t, 10)
	mgr := NewManager(r.pr, r.st, fastConfig())
	_ = mgr.Start(r.sched)
	defer mgr.Stop()
	r.sched.RunFor(10 * time.Second)
	centrals := mgr.Centrals()
	slave := centrals[1]
	slave.Crash()
	r.sched.RunFor(time.Minute)
	after := mgr.Centrals()
	if len(after) < 3 {
		t.Fatal("master did not spawn replacement slave")
	}
	if !after[len(after)-1].Running() {
		t.Fatal("replacement slave not running")
	}
}

func TestBothCentralsDeadDegradedMode(t *testing.T) {
	r := newRig(t, 11)
	mgr := NewManager(r.pr, r.st, fastConfig())
	_ = mgr.Start(r.sched)
	defer mgr.Stop()
	r.sched.RunFor(10 * time.Second)
	// Kill both central monitors simultaneously.
	for _, c := range mgr.Centrals() {
		c.Crash()
	}
	before, err := ReadLatencyMatrix(r.st)
	if err != nil {
		t.Fatal(err)
	}
	var beforeTime time.Time
	for _, pl := range before {
		beforeTime = pl.Timestamp
		break
	}
	r.sched.RunFor(time.Minute)
	// Worker daemons keep publishing (the paper's degraded mode).
	after, err := ReadLatencyMatrix(r.st)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range after {
		if !pl.Timestamp.After(beforeTime) {
			t.Fatal("workers stopped publishing after central death")
		}
		break
	}
	// But a crashed worker now stays dead.
	d := mgr.Daemon("latencyd")
	d.Crash()
	r.sched.RunFor(time.Minute)
	if d.Running() {
		t.Fatal("daemon relaunched with no central monitor alive")
	}
}

func TestDaemonDoubleStartFails(t *testing.T) {
	r := newRig(t, 12)
	d := NewLivehostsD(0, r.pr, r.st, time.Second)
	if err := d.Start(r.sched); err != nil {
		t.Fatal(err)
	}
	if err := d.Start(r.sched); err == nil {
		t.Fatal("double start accepted")
	}
	d.Stop()
	if err := d.Start(r.sched); err != nil {
		t.Fatalf("restart after stop: %v", err)
	}
}

func TestReadSnapshotWithoutData(t *testing.T) {
	st := store.NewMem()
	if _, err := ReadSnapshot(st, t0); err == nil {
		t.Fatal("snapshot from empty store succeeded")
	}
}

func TestSnapshotExcludesUnpublishedNodes(t *testing.T) {
	r := newRig(t, 13)
	// Livehosts exists but only node 0 has state.
	lv := NewLivehostsD(0, r.pr, r.st, time.Second)
	ns := NewNodeStateD(0, r.pr, r.st, time.Second)
	_ = lv.Start(r.sched)
	_ = ns.Start(r.sched)
	r.sched.RunFor(3 * time.Second)
	snap, err := ReadSnapshot(r.st, r.sched.Now())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Nodes) != 1 {
		t.Fatalf("snapshot has %d node records, want 1", len(snap.Nodes))
	}
	if len(snap.Livehosts) != 8 {
		t.Fatalf("livehosts = %v", snap.Livehosts)
	}
}

func TestNodeStateDPublishesForecasts(t *testing.T) {
	r := newRig(t, 44)
	d := NewNodeStateD(0, r.pr, r.st, 2*time.Second)
	if err := d.Start(r.sched); err != nil {
		t.Fatal(err)
	}
	// After one sample there is no scored prediction yet.
	r.sched.RunFor(3 * time.Second)
	attrs, err := ReadNodeState(r.st, 0)
	if err != nil {
		t.Fatal(err)
	}
	// After a few minutes the forecasters have history and publish.
	r.sched.RunFor(3 * time.Minute)
	attrs, err = ReadNodeState(r.st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if attrs.CPULoadForecast == nil || attrs.FlowRateForecast == nil {
		t.Fatalf("no forecasts published: %+v", attrs)
	}
	if attrs.CPULoadForecast.Value < 0 || attrs.CPULoadForecast.Method == "" {
		t.Fatalf("bad load forecast %+v", attrs.CPULoadForecast)
	}
}
