package monitor

import (
	"fmt"
	"reflect"
	"slices"
	"testing"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/obs"
	"nlarm/internal/rng"
	"nlarm/internal/stats"
	"nlarm/internal/store"
)

var cacheT0 = time.Date(2020, 3, 2, 8, 0, 0, 0, time.UTC)

// cacheWorld drives a synthetic publishing sequence against a store, the
// way the daemons would, so cache refreshes can be compared against full
// reads after arbitrary mutations.
type cacheWorld struct {
	t     *testing.T
	st    store.Store
	rnd   *rng.Rand
	now   time.Time
	hosts []int // current live set
	pool  []int // all node IDs that can ever be live
	// lenient tolerates failed Puts — set while a fault-store partition is
	// up, where publishing is expected to fail (bumping the generation).
	lenient bool
}

func (w *cacheWorld) put(key string, v any) {
	if err := putJSON(w.st, key, v); err != nil && !w.lenient {
		w.t.Fatal(err)
	}
}

func newCacheWorld(t *testing.T, st store.Store, seed uint64, n int) *cacheWorld {
	w := &cacheWorld{t: t, st: st, rnd: rng.New(seed), now: cacheT0}
	for i := 0; i < n; i++ {
		w.pool = append(w.pool, i*3+1) // non-contiguous IDs
	}
	w.hosts = append([]int(nil), w.pool...)
	w.publishLivehosts()
	for _, id := range w.pool {
		w.publishNode(id)
	}
	w.publishLatency()
	w.publishBandwidth()
	return w
}

func (w *cacheWorld) tick() time.Time {
	w.now = w.now.Add(time.Second)
	return w.now
}

func (w *cacheWorld) nodeKey(id int) string {
	return fmt.Sprintf("%s%d", KeyNodeStatePrefix, id)
}

func (w *cacheWorld) publishNode(id int) {
	attrs := metrics.NodeAttrs{
		NodeID:      id,
		Hostname:    fmt.Sprintf("n%02d", id),
		Timestamp:   w.tick(),
		Cores:       4 + id%4,
		FreqGHz:     2.5,
		TotalMemMB:  8192,
		Users:       w.rnd.Intn(3),
		CPULoad:     windowed(w.rnd.Range(0, 8)),
		CPUUtilPct:  windowed(w.rnd.Range(0, 100)),
		FlowRateBps: windowed(w.rnd.Range(0, 1e8)),
		AvailMemMB:  windowed(w.rnd.Range(100, 8000)),
	}
	w.put(w.nodeKey(id), attrs)
}

func (w *cacheWorld) publishLivehosts() {
	rec := livehostsRecord{Replica: 0, At: w.tick(), Hosts: append([]int(nil), w.hosts...)}
	w.put(KeyLivehostsPrefix+"0", rec)
}

func (w *cacheWorld) publishLatency() {
	var out []metrics.PairLatency
	at := w.tick()
	for i := 0; i < len(w.pool); i++ {
		for j := i + 1; j < len(w.pool); j++ {
			if w.rnd.Float64() < 0.15 {
				continue // never-measured pair
			}
			d := time.Duration(w.rnd.Range(50, 900)) * time.Microsecond
			out = append(out, metrics.PairLatency{
				U: w.pool[i], V: w.pool[j], Timestamp: at, Last: d, Mean1: d, Mean5: d,
			})
		}
	}
	w.put(KeyLatencyMatrix, out)
}

func (w *cacheWorld) publishBandwidth() {
	var out []metrics.PairBandwidth
	at := w.tick()
	for i := 0; i < len(w.pool); i++ {
		for j := i + 1; j < len(w.pool); j++ {
			if w.rnd.Float64() < 0.15 {
				continue
			}
			out = append(out, metrics.PairBandwidth{
				U: w.pool[i], V: w.pool[j], Timestamp: at,
				AvailBps: w.rnd.Range(1e7, 1e9), PeakBps: 1.25e9,
			})
		}
	}
	w.put(KeyBandwidthMatrix, out)
}

// mutate applies one random store mutation from the daemon repertoire:
// node republish, node death/revival via the livehosts list, matrix
// sweeps, a deleted record, or nothing at all.
func (w *cacheWorld) mutate() {
	switch w.rnd.Intn(7) {
	case 0, 1: // republish some node states (the common cadence)
		k := 1 + w.rnd.Intn(3)
		for i := 0; i < k; i++ {
			w.publishNode(w.pool[w.rnd.Intn(len(w.pool))])
		}
	case 2: // node death or revival
		id := w.pool[w.rnd.Intn(len(w.pool))]
		if i := slices.Index(w.hosts, id); i >= 0 {
			if len(w.hosts) > 1 {
				w.hosts = slices.Delete(append([]int(nil), w.hosts...), i, i+1)
			}
		} else {
			w.hosts = append(append([]int(nil), w.hosts...), id)
			slices.Sort(w.hosts)
		}
		w.publishLivehosts()
	case 3:
		w.publishLatency()
	case 4:
		w.publishBandwidth()
	case 5: // a node record vanishes (operator cleanup, daemon wipe)
		if err := w.st.Delete(w.nodeKey(w.pool[w.rnd.Intn(len(w.pool))])); err != nil {
			w.t.Fatal(err)
		}
	case 6: // nothing changed
	}
}

func windowed(v float64) stats.Windowed {
	return stats.Windowed{M1: v, M5: v, M15: v}
}

// TestSnapshotCacheMatchesFullRead is the randomized mutate/refresh
// property test: after every mutation batch, the delta-maintained
// snapshot and its incrementally maintained fingerprint must be
// identical to a from-scratch ReadSnapshot and its Fingerprint().
func TestSnapshotCacheMatchesFullRead(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			vst := store.Version(store.NewMem())
			w := newCacheWorld(t, vst, seed, 8)
			cache := NewSnapshotCache(vst, nil, nil)
			for step := 0; step < 40; step++ {
				w.mutate()
				now := w.tick()
				r, err := cache.Refresh(now)
				if err != nil {
					t.Fatalf("step %d: refresh: %v", step, err)
				}
				full, err := ReadSnapshot(vst, now)
				if err != nil {
					t.Fatalf("step %d: full read: %v", step, err)
				}
				if !reflect.DeepEqual(r.Snap.Livehosts, full.Livehosts) {
					t.Fatalf("step %d: livehosts drifted: %v vs %v", step, r.Snap.Livehosts, full.Livehosts)
				}
				if !reflect.DeepEqual(r.Snap.Nodes, full.Nodes) {
					t.Fatalf("step %d: nodes drifted", step)
				}
				if !reflect.DeepEqual(r.Snap.Latency, full.Latency) {
					t.Fatalf("step %d: latency drifted", step)
				}
				if !reflect.DeepEqual(r.Snap.Bandwidth, full.Bandwidth) {
					t.Fatalf("step %d: bandwidth drifted", step)
				}
				if want := full.Fingerprint(); r.FP != want {
					t.Fatalf("step %d: incremental fingerprint %x != full %x", step, r.FP, want)
				}
				if want := r.Snap.Fingerprint(); r.FP != want {
					t.Fatalf("step %d: refresh FP %x != served snapshot's own %x", step, r.FP, want)
				}
			}
		})
	}
}

// TestSnapshotCacheWarmRefreshRereadsOnlyChangedKeys pins the delta
// property with store op counters: a warm refresh after k node
// republishes issues exactly k Gets and no List.
func TestSnapshotCacheWarmRefreshRereadsOnlyChangedKeys(t *testing.T) {
	reg := obs.NewRegistry()
	clock := func() time.Time { return cacheT0 }
	ist := store.Instrument(store.NewMem(), reg, clock)
	vst := store.Version(ist)
	w := newCacheWorld(t, vst, 3, 6)
	cache := NewSnapshotCache(vst, reg, nil)

	gets := func() uint64 { return reg.Counter("store.get.count").Value() }
	lists := func() uint64 { return reg.Counter("store.list.count").Value() }

	r, err := cache.Refresh(w.tick())
	if err != nil {
		t.Fatal(err)
	}
	// Cold: 1 livehosts record + 6 node records + 2 matrices.
	if r.KeysReread != 9 {
		t.Fatalf("cold KeysReread = %d, want 9", r.KeysReread)
	}

	g0, l0 := gets(), lists()
	changed := []int{w.pool[1], w.pool[2], w.pool[4]}
	for _, id := range changed {
		w.publishNode(id)
	}
	r, err = cache.Refresh(w.tick())
	if err != nil {
		t.Fatal(err)
	}
	if d := gets() - g0; d != 3 {
		t.Fatalf("warm refresh after 3 republishes issued %d Gets, want exactly 3", d)
	}
	if d := lists() - l0; d != 0 {
		t.Fatalf("warm refresh issued %d Lists, want 0", d)
	}
	if r.KeysReread != 3 {
		t.Fatalf("warm KeysReread = %d, want 3", r.KeysReread)
	}
	if !r.Incremental {
		t.Fatal("node-only republish not reported as incremental")
	}
	if !slices.Equal(r.ChangedNodes, changed) {
		t.Fatalf("ChangedNodes = %v, want %v", r.ChangedNodes, changed)
	}

	// Untouched store: zero reads of any kind.
	g1, l1 := gets(), lists()
	r, err = cache.Refresh(w.tick())
	if err != nil {
		t.Fatal(err)
	}
	if gets() != g1 || lists() != l1 || r.KeysReread != 0 {
		t.Fatalf("idle refresh touched the store: gets+%d lists+%d reread=%d",
			gets()-g1, lists()-l1, r.KeysReread)
	}
	if reg.Counter("monitor.snapcache.refresh.unchanged").Value() == 0 {
		t.Fatal("idle refresh not counted as unchanged")
	}
}

// TestSnapshotCachePartitionRecovery exercises the chaos-harness failure
// paths: a livehosts partition fails the refresh without corrupting the
// cache, and after healing the cache reconverges bit-identically with a
// full read — including across a node death and revival.
func TestSnapshotCachePartitionRecovery(t *testing.T) {
	fs := store.NewFault(store.NewMem(), 17)
	vst := store.Version(fs)
	w := newCacheWorld(t, vst, 17, 6)
	cache := NewSnapshotCache(vst, nil, nil)
	if _, err := cache.Refresh(w.tick()); err != nil {
		t.Fatal(err)
	}

	// Partition the livehosts prefix and republish through it: the write
	// fails but bumps the generation, and the refresh must fail the same
	// way a full read would, leaving the cache state untouched.
	fs.Partition(KeyLivehostsPrefix)
	w.lenient = true
	w.publishLivehosts()
	w.lenient = false
	if _, err := cache.Refresh(w.tick()); err == nil {
		t.Fatal("refresh succeeded across a livehosts partition")
	}

	fs.HealAll()
	// Kill node pool[2], then let the monitor notice.
	dead := w.pool[2]
	w.hosts = slices.DeleteFunc(append([]int(nil), w.hosts...), func(id int) bool { return id == dead })
	w.publishLivehosts()
	now := w.tick()
	r, err := cache.Refresh(now)
	if err != nil {
		t.Fatalf("refresh after heal: %v", err)
	}
	full, err := ReadSnapshot(vst, now)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Snap.Nodes, full.Nodes) || r.FP != full.Fingerprint() {
		t.Fatal("cache did not reconverge with the full read after heal + node death")
	}
	if _, ok := r.Snap.Nodes[dead]; ok {
		t.Fatalf("dead node %d still in the cached snapshot", dead)
	}

	// Revival: the node comes back with fresh state.
	w.hosts = append(w.hosts, dead)
	slices.Sort(w.hosts)
	w.publishLivehosts()
	w.publishNode(dead)
	now = w.tick()
	r, err = cache.Refresh(now)
	if err != nil {
		t.Fatal(err)
	}
	full, err = ReadSnapshot(vst, now)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Snap.Nodes, full.Nodes) || r.FP != full.Fingerprint() {
		t.Fatal("cache did not reconverge after node revival")
	}
}

// TestSnapshotCacheMatrixErrorDegrades pins the fixed error semantics:
// a failing matrix read no longer silently serves an empty matrix as
// fresh — the snapshot is marked Degraded with a reason, and the dirty
// matrix is retried on the next refresh even with no new generation.
func TestSnapshotCacheMatrixErrorDegrades(t *testing.T) {
	fs := store.NewFault(store.NewMem(), 5)
	vst := store.Version(fs)
	w := newCacheWorld(t, vst, 5, 4)
	cache := NewSnapshotCache(vst, nil, nil)
	if r, err := cache.Refresh(w.tick()); err != nil || r.Snap.Degraded {
		t.Fatalf("healthy refresh: err=%v degraded=%v", err, r.Snap.Degraded)
	}

	fs.Partition("latency/")
	w.lenient = true
	w.publishLatency() // fails through the partition, but bumps the generation
	w.lenient = false
	r, err := cache.Refresh(w.tick())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Snap.Degraded || len(r.Snap.DegradedReasons) == 0 {
		t.Fatal("failed latency read served as a fresh empty matrix")
	}
	if len(r.Snap.Latency) != 0 {
		t.Fatal("failed latency read left stale entries in the snapshot")
	}
	if r.Incremental {
		t.Fatal("matrix loss reported as incremental")
	}

	// Healing alone (no republish) must be enough: the dirty matrix is
	// retried and the cache reconverges with the full read.
	fs.HealAll()
	now := w.tick()
	r, err = cache.Refresh(now)
	if err != nil {
		t.Fatal(err)
	}
	full, err := ReadSnapshot(vst, now)
	if err != nil {
		t.Fatal(err)
	}
	if r.Snap.Degraded {
		t.Fatalf("healed refresh still degraded: %v", r.Snap.DegradedReasons)
	}
	if !reflect.DeepEqual(r.Snap.Latency, full.Latency) || r.FP != full.Fingerprint() {
		t.Fatal("cache did not reconverge after matrix heal")
	}
}
