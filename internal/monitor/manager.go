package monitor

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/obs"
	"nlarm/internal/simtime"
	"nlarm/internal/store"
)

// Manager assembles and runs the complete Resource Monitor: one
// NodeStateD per node, the LivehostsD replicas, LatencyD, BandwidthD, and
// the central monitor master/slave pair, all publishing into one shared
// store.
type Manager struct {
	cfg Config
	pr  Prober
	st  store.Store

	mu          sync.Mutex
	rt          simtime.Runtime
	started     bool
	nodeStateDs []*NodeStateD
	livehostsDs []*LivehostsD
	latencyD    *LatencyD
	bandwidthD  *BandwidthD
	centrals    []*CentralMonitor // [0]=initial master, [1]=initial slave, + replacements
	nextCentral int
}

// NewManager builds the monitoring stack over prober pr and store st.
func NewManager(pr Prober, st store.Store, cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{cfg: cfg, pr: pr, st: st}
	for id := 0; id < pr.NumNodes(); id++ {
		m.nodeStateDs = append(m.nodeStateDs, NewNodeStateD(id, pr, st, cfg.NodeStatePeriod))
	}
	for r := 0; r < cfg.LivehostsReplicas; r++ {
		// Replicas run at staggered frequencies, as in the paper.
		period := cfg.LivehostsPeriod * time.Duration(r+1)
		m.livehostsDs = append(m.livehostsDs, NewLivehostsD(r, pr, st, period))
	}
	m.latencyD = NewLatencyD(pr, st, cfg.LatencyPeriod)
	m.bandwidthD = NewBandwidthD(pr, st, cfg.BandwidthPeriod)
	if cfg.Obs != nil {
		for _, d := range m.nodeStateDs {
			d.SetObs(cfg.Obs)
		}
		for _, d := range m.livehostsDs {
			d.SetObs(cfg.Obs)
		}
		m.latencyD.SetObs(cfg.Obs)
		m.bandwidthD.SetObs(cfg.Obs)
	}
	return m
}

// workerDaemons returns all supervised (non-central) daemons.
func (m *Manager) workerDaemons() []Daemon {
	var ds []Daemon
	for _, d := range m.nodeStateDs {
		ds = append(ds, d)
	}
	for _, d := range m.livehostsDs {
		ds = append(ds, d)
	}
	ds = append(ds, m.latencyD, m.bandwidthD)
	return ds
}

func (m *Manager) newCentralLocked(role Role, peerName string) *CentralMonitor {
	name := fmt.Sprintf("centralmon/%d", m.nextCentral)
	m.nextCentral++
	hooks := Hooks{
		OnPromoted:  m.onPromoted,
		OnSlaveDead: m.onSlaveDead,
	}
	c := NewCentralMonitor(name, role, m.workerDaemons(), peerName, m.st, m.cfg, hooks)
	c.SetObs(m.cfg.Obs)
	m.centrals = append(m.centrals, c)
	return c
}

// onPromoted runs when a slave promotes itself to master: it launches a
// replacement slave, mirroring "the slave will become new master and
// launches a new slave on another node".
func (m *Manager) onPromoted(promoted *CentralMonitor) {
	m.mu.Lock()
	slave := m.newCentralLocked(RoleSlave, promoted.Name())
	promoted.AdoptSupervised(m.workerDaemons(), slave.Name())
	rt := m.rt
	m.mu.Unlock()
	if rt != nil {
		_ = slave.Start(rt)
	}
}

// onSlaveDead runs on the master when the slave's heartbeat goes stale.
func (m *Manager) onSlaveDead(master *CentralMonitor) {
	m.mu.Lock()
	slave := m.newCentralLocked(RoleSlave, master.Name())
	master.AdoptSupervised(m.workerDaemons(), slave.Name())
	rt := m.rt
	m.mu.Unlock()
	if rt != nil {
		_ = slave.Start(rt)
	}
}

// Start launches every daemon on rt.
func (m *Manager) Start(rt simtime.Runtime) error {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return fmt.Errorf("monitor: manager already started")
	}
	m.started = true
	m.rt = rt
	master := m.newCentralLocked(RoleMaster, "")
	slave := m.newCentralLocked(RoleSlave, master.Name())
	master.AdoptSupervised(m.workerDaemons(), slave.Name())
	slave.AdoptSupervised(m.workerDaemons(), master.Name())
	workers := m.workerDaemons()
	m.mu.Unlock()

	for _, d := range workers {
		if err := d.Start(rt); err != nil {
			return err
		}
	}
	if err := master.Start(rt); err != nil {
		return err
	}
	return slave.Start(rt)
}

// Stop halts all daemons.
func (m *Manager) Stop() {
	m.mu.Lock()
	var all []Daemon
	all = append(all, m.workerDaemons()...)
	for _, c := range m.centrals {
		all = append(all, c)
	}
	m.started = false
	m.mu.Unlock()
	for _, d := range all {
		d.Stop()
	}
}

// Daemon returns the daemon with the given name (for tests and failure
// injection), or nil.
func (m *Manager) Daemon(name string) Daemon {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, d := range m.workerDaemons() {
		if d.Name() == name {
			return d
		}
	}
	for _, c := range m.centrals {
		if c.Name() == name {
			return c
		}
	}
	return nil
}

// Workers returns all supervised (non-central) daemons — what a master
// keeps alive. Chaos harnesses use it to pick crash targets and to
// verify every worker came back after injected failures.
func (m *Manager) Workers() []Daemon {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.workerDaemons()
}

// NodeStateDaemon returns the NodeStateD for node id, or nil.
func (m *Manager) NodeStateDaemon(id int) *NodeStateD {
	if id < 0 || id >= len(m.nodeStateDs) {
		return nil
	}
	return m.nodeStateDs[id]
}

// Centrals returns all central monitor instances created so far.
func (m *Manager) Centrals() []*CentralMonitor {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*CentralMonitor(nil), m.centrals...)
}

// Master returns the current master central monitor, or nil if none.
func (m *Manager) Master() *CentralMonitor {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Later instances win: the newest running master is authoritative.
	for i := len(m.centrals) - 1; i >= 0; i-- {
		c := m.centrals[i]
		if c.Running() && c.Role() == RoleMaster {
			return c
		}
	}
	return nil
}

// ReadSnapshot assembles the consolidated monitoring view from the
// store — the allocator's entire input.
func ReadSnapshot(st store.Store, now time.Time) (*metrics.Snapshot, error) {
	return ReadSnapshotObs(st, now, nil)
}

// ReadSnapshotObs is ReadSnapshot with instrumentation. A missing
// livehosts list fails the whole read; a missing node record or matrix
// is normal startup state (not yet published) and is skipped silently.
// Any *other* read failure is partial data being served as if complete:
// node-state failures count into monitor.snapshot.nodestate.errors, and
// matrix failures additionally mark the snapshot Degraded with a reason
// — an empty matrix silently passed off as fresh would make every pair
// look unmeasured and quietly distort Equation 2.
func ReadSnapshotObs(st store.Store, now time.Time, reg *obs.Registry) (*metrics.Snapshot, error) {
	snap := &metrics.Snapshot{
		Taken:     now,
		Nodes:     make(map[int]metrics.NodeAttrs),
		Latency:   make(map[metrics.PairKey]metrics.PairLatency),
		Bandwidth: make(map[metrics.PairKey]metrics.PairBandwidth),
	}
	hosts, _, err := ReadLivehosts(st)
	if err != nil {
		return nil, fmt.Errorf("monitor: snapshot: %w", err)
	}
	snap.Livehosts = hosts
	for _, id := range hosts {
		attrs, err := ReadNodeState(st, id)
		if err != nil {
			if !errors.Is(err, store.ErrNotFound) {
				reg.Counter("monitor.snapshot.nodestate.errors").Inc()
			}
			continue // node state unavailable; skip
		}
		snap.Nodes[id] = attrs
	}
	lat, err := ReadLatencyMatrix(st)
	switch {
	case err == nil:
		snap.Latency = lat
	case errors.Is(err, store.ErrNotFound):
		// Not yet published; the empty matrix is the truth.
	default:
		snap.Degraded = true
		snap.DegradedReasons = append(snap.DegradedReasons, fmt.Sprintf("latency matrix read failed: %v", err))
		reg.Counter("monitor.snapshot.matrix.errors").Inc()
	}
	bw, err := ReadBandwidthMatrix(st)
	switch {
	case err == nil:
		snap.Bandwidth = bw
	case errors.Is(err, store.ErrNotFound):
		// Not yet published.
	default:
		snap.Degraded = true
		snap.DegradedReasons = append(snap.DegradedReasons, fmt.Sprintf("bandwidth matrix read failed: %v", err))
		reg.Counter("monitor.snapshot.matrix.errors").Inc()
	}
	return snap, nil
}

// Snapshot is a convenience wrapper over ReadSnapshot using the manager's
// runtime clock.
func (m *Manager) Snapshot() (*metrics.Snapshot, error) {
	m.mu.Lock()
	rt := m.rt
	m.mu.Unlock()
	if rt == nil {
		return nil, fmt.Errorf("monitor: manager not started")
	}
	return ReadSnapshot(m.st, rt.Now())
}
