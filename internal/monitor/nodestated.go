package monitor

import (
	"fmt"
	"time"

	"nlarm/internal/forecast"
	"nlarm/internal/metrics"
	"nlarm/internal/simtime"
	"nlarm/internal/stats"
	"nlarm/internal/store"
)

// NodeStateD samples one node's dynamic attributes (CPU load, CPU
// utilization, memory, node data-flow rate, logged-in users) every few
// seconds, maintains 1/5/15-minute running means, and publishes the
// result together with the node's static attributes. One instance runs
// per node, as in the paper.
type NodeStateD struct {
	daemonBase
	node int
	pr   Prober

	cpuLoad  *stats.TimeSeries
	cpuUtil  *stats.TimeSeries
	flowRate *stats.TimeSeries
	availMem *stats.TimeSeries

	// NWS-style forecasters for the attributes the allocator may want to
	// extrapolate (§2 cites NWS; internal/forecast implements the
	// lowest-error-method selection).
	loadForecast *forecast.Forecaster
	flowForecast *forecast.Forecaster
}

// NewNodeStateD builds the state daemon for node id.
func NewNodeStateD(node int, pr Prober, st store.Store, period time.Duration) *NodeStateD {
	const retain = 16 * time.Minute // covers the 15-minute window
	return &NodeStateD{
		daemonBase: daemonBase{
			name:   fmt.Sprintf("nodestated/%d", node),
			period: period,
			st:     st,
		},
		node:         node,
		pr:           pr,
		cpuLoad:      stats.NewTimeSeries(retain),
		cpuUtil:      stats.NewTimeSeries(retain),
		flowRate:     stats.NewTimeSeries(retain),
		availMem:     stats.NewTimeSeries(retain),
		loadForecast: forecast.New(),
		flowForecast: forecast.New(),
	}
}

// Node returns the node this daemon monitors.
func (d *NodeStateD) Node() int { return d.node }

// Start implements Daemon.
func (d *NodeStateD) Start(rt simtime.Runtime) error {
	return d.start(rt, d.tick)
}

func (d *NodeStateD) tick(now time.Time) {
	sample, err := d.pr.SampleNode(d.node)
	if err != nil {
		// Unreachable node: publish nothing; the stale record plus the
		// livehosts list tell the allocator to skip it.
		return
	}
	cores, freq, totalMem := d.pr.StaticAttrs(d.node)
	_ = d.cpuLoad.Add(now, sample.CPULoad)
	_ = d.cpuUtil.Add(now, sample.CPUUtilPct)
	_ = d.flowRate.Add(now, sample.FlowRateBps)
	_ = d.availMem.Add(now, totalMem-sample.UsedMemMB)
	d.loadForecast.Observe(sample.CPULoad)
	d.flowForecast.Observe(sample.FlowRateBps)

	attrs := metrics.NodeAttrs{
		NodeID:      d.node,
		Hostname:    d.pr.Hostname(d.node),
		Timestamp:   now,
		Cores:       cores,
		FreqGHz:     freq,
		TotalMemMB:  totalMem,
		Users:       sample.Users,
		CPULoad:     d.cpuLoad.Means(now),
		CPUUtilPct:  d.cpuUtil.Means(now),
		FlowRateBps: d.flowRate.Means(now),
		AvailMemMB:  d.availMem.Means(now),
	}
	// Publish forecasts once the ensemble has scored at least one method.
	if v, method, ok := d.loadForecast.Forecast(); ok && d.loadForecast.N() > 1 {
		if v < 0 {
			v = 0
		}
		attrs.CPULoadForecast = &metrics.Forecast{Value: v, Method: method}
	}
	if v, method, ok := d.flowForecast.Forecast(); ok && d.flowForecast.N() > 1 {
		if v < 0 {
			v = 0
		}
		attrs.FlowRateForecast = &metrics.Forecast{Value: v, Method: method}
	}
	_ = putJSON(d.st, fmt.Sprintf("%s%d", KeyNodeStatePrefix, d.node), attrs)
}

// ReadNodeState returns the published attributes of node id.
func ReadNodeState(st store.Store, id int) (metrics.NodeAttrs, error) {
	var attrs metrics.NodeAttrs
	err := getJSON(st, fmt.Sprintf("%s%d", KeyNodeStatePrefix, id), &attrs)
	return attrs, err
}
