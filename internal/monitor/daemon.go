package monitor

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"nlarm/internal/obs"
	"nlarm/internal/simtime"
	"nlarm/internal/store"
)

// Store key layout. All values are JSON.
const (
	// KeyLivehostsPrefix + replica index -> livehostsRecord
	KeyLivehostsPrefix = "livehosts/"
	// KeyNodeStatePrefix + node ID -> metrics.NodeAttrs
	KeyNodeStatePrefix = "nodestate/"
	// KeyLatencyMatrix -> []metrics.PairLatency
	KeyLatencyMatrix = "latency/matrix"
	// KeyBandwidthMatrix -> []metrics.PairBandwidth
	KeyBandwidthMatrix = "bandwidth/matrix"
	// KeyHeartbeatPrefix + daemon name -> heartbeat
	KeyHeartbeatPrefix = "heartbeat/"
	// KeyLeader -> leaderLease (central monitor master election)
	KeyLeader = "centralmon/leader"
)

// heartbeat is the liveness record every daemon refreshes on each tick.
type heartbeat struct {
	Name string    `json:"name"`
	At   time.Time `json:"at"`
}

func putJSON(st store.Store, key string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("monitor: marshal %s: %w", key, err)
	}
	return st.Put(key, b)
}

func getJSON(st store.Store, key string, v any) error {
	b, err := st.Get(key)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("monitor: unmarshal %s: %w", key, err)
	}
	return nil
}

func writeHeartbeat(st store.Store, name string, now time.Time) {
	// Heartbeat failures are deliberately swallowed: a daemon that cannot
	// reach the store looks dead to the central monitor, which is exactly
	// the failure semantics we want.
	_ = putJSON(st, KeyHeartbeatPrefix+name, heartbeat{Name: name, At: now})
}

// readHeartbeat returns the last heartbeat time of the named daemon.
func readHeartbeat(st store.Store, name string) (time.Time, bool) {
	var hb heartbeat
	if err := getJSON(st, KeyHeartbeatPrefix+name, &hb); err != nil {
		return time.Time{}, false
	}
	return hb.At, true
}

// Daemon is the common lifecycle of all monitoring daemons. A daemon can
// be started, stopped gracefully, or crashed (for failure-injection
// tests); after Stop or Crash it can be started again — that is what the
// central monitor does when it relaunches a dead daemon.
type Daemon interface {
	// Name returns the unique daemon name (also its heartbeat key).
	Name() string
	// Period returns the daemon's tick period, which also bounds how
	// often it heartbeats — supervisors must allow at least this much
	// staleness.
	Period() time.Duration
	// Start begins periodic operation on rt. Starting a running daemon is
	// an error.
	Start(rt simtime.Runtime) error
	// Stop halts the daemon gracefully.
	Stop()
	// Crash halts the daemon abruptly (no cleanup), simulating a fault.
	Crash()
	// Running reports whether the daemon is currently active.
	Running() bool
}

// daemonBase implements the common lifecycle; concrete daemons embed it
// and provide the tick function.
type daemonBase struct {
	mu       sync.Mutex
	name     string
	period   time.Duration
	st       store.Store
	cancel   simtime.CancelFunc
	ticks    int
	obs      *obs.Registry // nil = recording disabled
	lastTick time.Time
}

// SetObs attaches an instrumentation registry; each tick then records a
// publish counter and the achieved inter-publish interval per daemon
// family (monitor.publish.<kind>, monitor.publish.interval.<kind>). Call
// before Start; nil disables recording.
func (d *daemonBase) SetObs(reg *obs.Registry) {
	d.mu.Lock()
	d.obs = reg
	d.mu.Unlock()
}

// kind is the daemon family for metric names: "nodestate/3" -> "nodestate".
func (d *daemonBase) kind() string {
	if i := strings.IndexByte(d.name, '/'); i >= 0 {
		return d.name[:i]
	}
	return d.name
}

func (d *daemonBase) Name() string { return d.name }

func (d *daemonBase) Period() time.Duration { return d.period }

func (d *daemonBase) Running() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cancel != nil
}

// Ticks returns how many times the daemon has fired (diagnostics/tests).
func (d *daemonBase) Ticks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ticks
}

func (d *daemonBase) start(rt simtime.Runtime, tick func(now time.Time)) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cancel != nil {
		return fmt.Errorf("monitor: daemon %s already running", d.name)
	}
	d.cancel = rt.Every(d.period, d.name, func(now time.Time) {
		d.mu.Lock()
		running := d.cancel != nil
		reg := d.obs
		last := d.lastTick
		if running {
			d.ticks++
			d.lastTick = now
		}
		d.mu.Unlock()
		if !running {
			return
		}
		tick(now)
		writeHeartbeat(d.st, d.name, now)
		// Publish accounting: count per daemon family, and gauge the
		// achieved cadence so a stalled or slow family is visible as a
		// widening interval relative to its configured period.
		kind := d.kind()
		reg.Counter("monitor.publish." + kind).Inc()
		if !last.IsZero() {
			reg.Gauge("monitor.publish.interval." + kind).Set(now.Sub(last).Seconds())
		}
	})
	// Write an immediate heartbeat so the supervisor does not see a fresh
	// daemon as dead before its first tick.
	writeHeartbeat(d.st, d.name, rt.Now())
	return nil
}

func (d *daemonBase) stop() {
	d.mu.Lock()
	cancel := d.cancel
	d.cancel = nil
	d.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (d *daemonBase) Stop()  { d.stop() }
func (d *daemonBase) Crash() { d.stop() }

// Config holds the periods of all monitoring activities. Zero fields take
// the paper's defaults.
type Config struct {
	// NodeStatePeriod is how often NodeStateD samples (paper: 3-10s).
	NodeStatePeriod time.Duration
	// LivehostsPeriod is how often LivehostsD pings the cluster.
	LivehostsPeriod time.Duration
	// LatencyPeriod is the interval between latency sweeps (paper: 1 min).
	LatencyPeriod time.Duration
	// BandwidthPeriod is the interval between bandwidth sweeps (paper: 5 min).
	BandwidthPeriod time.Duration
	// SupervisePeriod is how often the central monitor checks heartbeats.
	SupervisePeriod time.Duration
	// HeartbeatTimeout is how stale a heartbeat may be before the daemon
	// is considered dead and relaunched.
	HeartbeatTimeout time.Duration
	// LivehostsReplicas is how many LivehostsD instances run (paper: "a
	// few selected nodes at different frequencies").
	LivehostsReplicas int
	// Obs is the instrumentation registry every daemon records into
	// (publish counts, supervision transitions). Nil disables recording.
	Obs *obs.Registry
}

// DefaultConfig returns the paper's monitoring cadence.
func DefaultConfig() Config {
	return Config{
		NodeStatePeriod:   5 * time.Second,
		LivehostsPeriod:   10 * time.Second,
		LatencyPeriod:     1 * time.Minute,
		BandwidthPeriod:   5 * time.Minute,
		SupervisePeriod:   15 * time.Second,
		HeartbeatTimeout:  45 * time.Second,
		LivehostsReplicas: 2,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.NodeStatePeriod == 0 {
		c.NodeStatePeriod = d.NodeStatePeriod
	}
	if c.LivehostsPeriod == 0 {
		c.LivehostsPeriod = d.LivehostsPeriod
	}
	if c.LatencyPeriod == 0 {
		c.LatencyPeriod = d.LatencyPeriod
	}
	if c.BandwidthPeriod == 0 {
		c.BandwidthPeriod = d.BandwidthPeriod
	}
	if c.SupervisePeriod == 0 {
		c.SupervisePeriod = d.SupervisePeriod
	}
	if c.HeartbeatTimeout == 0 {
		c.HeartbeatTimeout = d.HeartbeatTimeout
	}
	if c.LivehostsReplicas == 0 {
		c.LivehostsReplicas = d.LivehostsReplicas
	}
	return c
}
