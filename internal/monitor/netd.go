package monitor

import (
	"sort"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/simtime"
	"nlarm/internal/stats"
	"nlarm/internal/store"
)

// Rounds schedules pairwise measurements among the given nodes the way the
// paper does: the sweep is split into rounds such that within a round each
// node communicates with at most one other node (n/2 disjoint pairs per
// round, n-1 rounds for even n). This keeps measurement traffic from
// interfering with itself. The classic round-robin tournament (circle
// method) provides exactly this schedule.
func Rounds(nodes []int) [][][2]int {
	n := len(nodes)
	if n < 2 {
		return nil
	}
	list := append([]int(nil), nodes...)
	const bye = -1
	if len(list)%2 == 1 {
		list = append(list, bye)
	}
	m := len(list)
	rounds := make([][][2]int, 0, m-1)
	for r := 0; r < m-1; r++ {
		var pairs [][2]int
		for i := 0; i < m/2; i++ {
			a, b := list[i], list[m-1-i]
			if a == bye || b == bye {
				continue
			}
			if a > b {
				a, b = b, a
			}
			pairs = append(pairs, [2]int{a, b})
		}
		rounds = append(rounds, pairs)
		// Rotate all but the first element.
		last := list[m-1]
		copy(list[2:], list[1:m-1])
		list[1] = last
	}
	return rounds
}

// livehostsOrAll returns the current livehosts list, or all node IDs when
// no livehosts record exists yet.
func livehostsOrAll(st store.Store, pr Prober) []int {
	hosts, _, err := ReadLivehosts(st)
	if err == nil && len(hosts) > 0 {
		return hosts
	}
	all := make([]int, pr.NumNodes())
	for i := range all {
		all[i] = i
	}
	return all
}

// LatencyD sweeps pairwise latency at a regular interval (1 minute in the
// paper), maintains 1- and 5-minute running means per pair, and publishes
// the full latency matrix.
type LatencyD struct {
	daemonBase
	pr     Prober
	series map[metrics.PairKey]*stats.TimeSeries
	matrix map[metrics.PairKey]metrics.PairLatency
}

// NewLatencyD builds the latency measurement daemon.
func NewLatencyD(pr Prober, st store.Store, period time.Duration) *LatencyD {
	return &LatencyD{
		daemonBase: daemonBase{name: "latencyd", period: period, st: st},
		pr:         pr,
		series:     make(map[metrics.PairKey]*stats.TimeSeries),
		matrix:     make(map[metrics.PairKey]metrics.PairLatency),
	}
}

// Start implements Daemon.
func (d *LatencyD) Start(rt simtime.Runtime) error {
	return d.start(rt, d.tick)
}

func (d *LatencyD) tick(now time.Time) {
	hosts := livehostsOrAll(d.st, d.pr)
	for _, round := range Rounds(hosts) {
		for _, p := range round {
			lat, err := d.pr.MeasureLatency(p[0], p[1])
			if err != nil {
				continue
			}
			key := metrics.Pair(p[0], p[1])
			ts, ok := d.series[key]
			if !ok {
				ts = stats.NewTimeSeries(6 * time.Minute)
				d.series[key] = ts
			}
			_ = ts.Add(now, lat.Seconds())
			m1, ok1 := ts.MeanOver(now, time.Minute)
			m5, ok5 := ts.MeanOver(now, 5*time.Minute)
			if !ok1 {
				m1 = lat.Seconds()
			}
			if !ok5 {
				m5 = lat.Seconds()
			}
			d.matrix[key] = metrics.PairLatency{
				U:         key.U,
				V:         key.V,
				Timestamp: now,
				Last:      lat,
				Mean1:     time.Duration(m1 * float64(time.Second)),
				Mean5:     time.Duration(m5 * float64(time.Second)),
			}
		}
	}
	d.publish()
}

func (d *LatencyD) publish() {
	out := make([]metrics.PairLatency, 0, len(d.matrix))
	for _, v := range d.matrix {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	_ = putJSON(d.st, KeyLatencyMatrix, out)
}

// ReadLatencyMatrix returns the published latency matrix keyed by pair.
func ReadLatencyMatrix(st store.Store) (map[metrics.PairKey]metrics.PairLatency, error) {
	var list []metrics.PairLatency
	if err := getJSON(st, KeyLatencyMatrix, &list); err != nil {
		return nil, err
	}
	m := make(map[metrics.PairKey]metrics.PairLatency, len(list))
	for _, pl := range list {
		m[metrics.Pair(pl.U, pl.V)] = pl
	}
	return m, nil
}

// BandwidthD sweeps pairwise effective bandwidth at a regular interval
// (5 minutes in the paper) using the same round schedule, and publishes
// the instantaneous values (§4: the allocator uses instantaneous
// bandwidth).
type BandwidthD struct {
	daemonBase
	pr     Prober
	matrix map[metrics.PairKey]metrics.PairBandwidth
}

// NewBandwidthD builds the bandwidth measurement daemon.
func NewBandwidthD(pr Prober, st store.Store, period time.Duration) *BandwidthD {
	return &BandwidthD{
		daemonBase: daemonBase{name: "bandwidthd", period: period, st: st},
		pr:         pr,
		matrix:     make(map[metrics.PairKey]metrics.PairBandwidth),
	}
}

// Start implements Daemon.
func (d *BandwidthD) Start(rt simtime.Runtime) error {
	return d.start(rt, d.tick)
}

func (d *BandwidthD) tick(now time.Time) {
	hosts := livehostsOrAll(d.st, d.pr)
	for _, round := range Rounds(hosts) {
		for _, p := range round {
			avail, peak, err := d.pr.MeasureBandwidth(p[0], p[1])
			if err != nil {
				continue
			}
			key := metrics.Pair(p[0], p[1])
			d.matrix[key] = metrics.PairBandwidth{
				U:         key.U,
				V:         key.V,
				Timestamp: now,
				AvailBps:  avail,
				PeakBps:   peak,
			}
		}
	}
	d.publish()
}

func (d *BandwidthD) publish() {
	out := make([]metrics.PairBandwidth, 0, len(d.matrix))
	for _, v := range d.matrix {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	_ = putJSON(d.st, KeyBandwidthMatrix, out)
}

// ReadBandwidthMatrix returns the published bandwidth matrix keyed by pair.
func ReadBandwidthMatrix(st store.Store) (map[metrics.PairKey]metrics.PairBandwidth, error) {
	var list []metrics.PairBandwidth
	if err := getJSON(st, KeyBandwidthMatrix, &list); err != nil {
		return nil, err
	}
	m := make(map[metrics.PairKey]metrics.PairBandwidth, len(list))
	for _, pb := range list {
		m[metrics.Pair(pb.U, pb.V)] = pb
	}
	return m, nil
}
