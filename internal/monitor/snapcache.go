package monitor

import (
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/obs"
	"nlarm/internal/store"
)

// GenSource is the store capability SnapshotCache needs: plain reads
// plus per-key generation visibility. store.VersionedStore implements
// it; wrap any backend with store.Version to get one.
type GenSource interface {
	store.Store
	Generations(prefixes ...string) map[string]uint64
	Seq() uint64
}

// Refresh is the result of one SnapshotCache.Refresh call.
type Refresh struct {
	// Snap is the refreshed snapshot. Its maps and slices are shared
	// with the cache and with other Refresh results — treat them as
	// immutable (every consolidated-snapshot consumer already does; the
	// cache itself never mutates a published map).
	Snap *metrics.Snapshot
	// FP is the snapshot's content fingerprint, maintained incrementally
	// and bit-identical to Snap.Fingerprint().
	FP uint64
	// PrevFP is the fingerprint before this refresh (0 on the first).
	PrevFP uint64
	// Incremental reports that this refresh changed at most the dynamic
	// attributes of ChangedNodes: the monitored node set and both
	// matrices are content-identical to the PrevFP snapshot, so a cost
	// model built for PrevFP can be updated in place.
	Incremental bool
	// ChangedNodes lists the node IDs whose state was re-read (and kept)
	// by this refresh, ascending.
	ChangedNodes []int
	// KeysReread counts the store values this refresh re-read and
	// decoded; 0 means the store was untouched since the last refresh.
	KeysReread int
}

// SnapshotCache keeps the last consolidated monitoring snapshot decoded
// in memory together with the per-key store generations it was built
// from. Refresh re-reads only keys whose generation changed since —
// between the monitor's publish cadences that is nothing at all, and
// within one node-state cadence it is the node records, never the
// matrices — and maintains the snapshot's content fingerprint
// incrementally from per-entry hashes instead of rehashing the world.
//
// Failure semantics mirror ReadSnapshotObs: an unreadable livehosts
// list fails the refresh (and leaves the cache untouched, so the broker
// falls back to its last-good copy exactly as with full reads); a
// failed node read drops that node; a failed matrix read serves an
// empty matrix marked Degraded and keeps the matrix "dirty" so the next
// refresh retries it even if no new generation appeared.
type SnapshotCache struct {
	src GenSource
	reg *obs.Registry
	now func() time.Time

	mu      sync.Mutex
	valid   bool
	lastSeq uint64
	snap    *metrics.Snapshot
	fp      uint64
	gens    map[string]uint64

	// Incremental fingerprint state: per-node entry hashes and the three
	// commutative section accumulators of metrics.CombineFingerprint.
	nodeHash map[int]uint64
	accNodes uint64
	accLat   uint64
	accBW    uint64

	monitored []int // sorted livehosts∩nodes at the last refresh
	latDirty  bool  // last latency-matrix read failed; retry next refresh
	bwDirty   bool
	reasons   []string
}

// NewSnapshotCache builds a cache over src. reg may be nil; now is the
// clock used for the refresh-latency histogram (pass the runtime clock
// so virtual-time runs stay deterministic) and may also be nil.
func NewSnapshotCache(src GenSource, reg *obs.Registry, now func() time.Time) *SnapshotCache {
	if now == nil {
		now = time.Now
	}
	return &SnapshotCache{
		src:      src,
		reg:      reg,
		now:      now,
		gens:     make(map[string]uint64),
		nodeHash: make(map[int]uint64),
	}
}

// Refresh brings the cached snapshot up to date with the store and
// returns it stamped with now as its Taken time. Concurrent callers
// serialize; each performs (or waits for) at most one store sweep.
func (c *SnapshotCache) Refresh(now time.Time) (Refresh, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t0 := c.now()
	seq := c.src.Seq()
	if c.valid && seq == c.lastSeq && !c.latDirty && !c.bwDirty {
		c.reg.Counter("monitor.snapcache.refresh.unchanged").Inc()
		c.reg.Histogram("monitor.snapcache.refresh.seconds").Observe(c.now().Sub(t0).Seconds())
		return c.resultLocked(now, c.fp, 0, nil, true), nil
	}
	res, err := c.refreshLocked(now, seq)
	c.reg.Histogram("monitor.snapcache.refresh.seconds").Observe(c.now().Sub(t0).Seconds())
	if err != nil {
		c.reg.Counter("monitor.snapcache.refresh.errors").Inc()
		return Refresh{}, err
	}
	c.reg.Counter("monitor.snapcache.refresh.changed").Inc()
	c.reg.Counter("monitor.snapcache.keys.reread").Add(uint64(res.KeysReread))
	return res, nil
}

// resultLocked wraps the committed cache state for one caller. The
// struct copy gives each caller its own Taken/Degraded header over the
// shared (immutable) content maps.
func (c *SnapshotCache) resultLocked(now time.Time, prevFP uint64, reread int, changed []int, incremental bool) Refresh {
	s := *c.snap
	s.Taken = now
	s.Degraded = len(c.reasons) > 0
	s.DegradedReasons = c.reasons
	c.reg.Gauge("monitor.snapcache.stale").Set(boolGauge(c.latDirty || c.bwDirty))
	c.reg.Gauge("monitor.snapcache.valid").Set(1)
	return Refresh{
		Snap:         &s,
		FP:           c.fp,
		PrevFP:       prevFP,
		Incremental:  incremental,
		ChangedNodes: changed,
		KeysReread:   reread,
	}
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// refreshLocked is the delta sweep: compare the store's generation map
// against the cache's, re-read only what changed, and rebuild the
// fingerprint from the maintained accumulators.
func (c *SnapshotCache) refreshLocked(now time.Time, seq uint64) (Refresh, error) {
	gens := c.src.Generations(KeyLivehostsPrefix, KeyNodeStatePrefix, KeyLatencyMatrix, KeyBandwidthMatrix)
	prevFP := c.fp
	reread := 0

	// Livehosts: any generation movement under the prefix (including a
	// deleted key) re-reads the whole replicated list — it is a handful
	// of tiny records and the most-recent-wins merge needs all of them.
	hosts := []int(nil)
	lhChanged := !c.valid || prefixGensChanged(gens, c.gens, KeyLivehostsPrefix)
	if lhChanged {
		h, _, err := ReadLivehosts(c.src)
		if err != nil {
			// Abort without committing anything: the cache still holds the
			// previous consistent state and the caller sees the same error a
			// full ReadSnapshot would have produced.
			return Refresh{}, fmt.Errorf("monitor: snapshot: %w", err)
		}
		hosts = h
		for k := range gens {
			if strings.HasPrefix(k, KeyLivehostsPrefix) {
				reread++
			}
		}
	} else {
		hosts = c.snap.Livehosts
	}

	// Node state: re-read a node's record iff its generation moved, or a
	// record we should have is missing (a host newly in the list). Known
	// never-published keys (generation 0 on both sides) are skipped —
	// that is the delta win over a full read, which Gets every one.
	nodes := c.cachedNodes()
	nodesCloned := false
	ensureNodes := func() {
		if !nodesCloned {
			cp := make(map[int]metrics.NodeAttrs, len(nodes))
			for k, v := range nodes {
				cp[k] = v
			}
			nodes = cp
			nodesCloned = true
		}
	}
	dropNode := func(id int) {
		ensureNodes()
		delete(nodes, id)
		c.accNodes -= c.nodeHash[id]
		delete(c.nodeHash, id)
	}
	inHosts := make(map[int]bool, len(hosts))
	for _, id := range hosts {
		inHosts[id] = true
	}
	for id := range nodes {
		if !inHosts[id] {
			dropNode(id)
		}
	}
	var changed []int
	for _, id := range hosts {
		key := fmt.Sprintf("%s%d", KeyNodeStatePrefix, id)
		g, cg := gens[key], c.gens[key]
		_, have := nodes[id]
		if g == cg && (have || g == 0) {
			continue
		}
		reread++
		attrs, err := ReadNodeState(c.src, id)
		if err != nil {
			if !errors.Is(err, store.ErrNotFound) {
				c.reg.Counter("monitor.snapshot.nodestate.errors").Inc()
			}
			if have {
				dropNode(id)
			}
			continue
		}
		ensureNodes()
		nodes[id] = attrs
		h := metrics.FingerprintNode(id, attrs)
		c.accNodes += h - c.nodeHash[id]
		c.nodeHash[id] = h
		changed = append(changed, id)
	}
	slices.Sort(changed)

	prevAccLat, prevAccBW := c.accLat, c.accBW
	var reasons []string
	lat, latRead := c.cachedLat(), false
	if !c.valid || c.latDirty || gens[KeyLatencyMatrix] != c.gens[KeyLatencyMatrix] {
		latRead = true
		reread++
		m, err := ReadLatencyMatrix(c.src)
		switch {
		case err == nil:
			lat = m
			c.latDirty = false
		case errors.Is(err, store.ErrNotFound):
			lat = map[metrics.PairKey]metrics.PairLatency{}
			c.latDirty = false
		default:
			lat = map[metrics.PairKey]metrics.PairLatency{}
			c.latDirty = true
			reasons = append(reasons, fmt.Sprintf("latency matrix read failed: %v", err))
			c.reg.Counter("monitor.snapshot.matrix.errors").Inc()
		}
		c.accLat = 0
		for k, pl := range lat {
			c.accLat += metrics.FingerprintLatency(k, pl)
		}
	}
	bw, bwRead := c.cachedBW(), false
	if !c.valid || c.bwDirty || gens[KeyBandwidthMatrix] != c.gens[KeyBandwidthMatrix] {
		bwRead = true
		reread++
		m, err := ReadBandwidthMatrix(c.src)
		switch {
		case err == nil:
			bw = m
			c.bwDirty = false
		case errors.Is(err, store.ErrNotFound):
			bw = map[metrics.PairKey]metrics.PairBandwidth{}
			c.bwDirty = false
		default:
			bw = map[metrics.PairKey]metrics.PairBandwidth{}
			c.bwDirty = true
			reasons = append(reasons, fmt.Sprintf("bandwidth matrix read failed: %v", err))
			c.reg.Counter("monitor.snapshot.matrix.errors").Inc()
		}
		c.accBW = 0
		for k, pb := range bw {
			c.accBW += metrics.FingerprintBandwidth(k, pb)
		}
	}

	monitored := monitoredOf(hosts, nodes)
	// In-place cost-model updates are sound when the model's node set is
	// unchanged and the matrices are content-identical: matrix re-reads
	// with an unchanged accumulator (a republish of the same values) are
	// still content-identical, so compare accumulators, not read flags.
	incremental := c.valid &&
		slices.Equal(monitored, c.monitored) &&
		c.accLat == prevAccLat && c.accBW == prevAccBW &&
		(!latRead || !c.latDirty) && (!bwRead || !c.bwDirty)

	c.snap = &metrics.Snapshot{
		Taken:     now,
		Livehosts: hosts,
		Nodes:     nodes,
		Latency:   lat,
		Bandwidth: bw,
	}
	c.fp = metrics.CombineFingerprint(hosts, len(nodes), len(lat), len(bw), c.accNodes, c.accLat, c.accBW)
	c.gens = gens
	c.lastSeq = seq
	c.valid = true
	c.monitored = monitored
	c.reasons = reasons
	return c.resultLocked(now, prevFP, reread, changed, incremental), nil
}

// cachedNodes/cachedLat/cachedBW return the cached section maps, or empty
// maps when the cache has never refreshed.
func (c *SnapshotCache) cachedNodes() map[int]metrics.NodeAttrs {
	if c.snap == nil {
		return map[int]metrics.NodeAttrs{}
	}
	return c.snap.Nodes
}

func (c *SnapshotCache) cachedLat() map[metrics.PairKey]metrics.PairLatency {
	if c.snap == nil {
		return map[metrics.PairKey]metrics.PairLatency{}
	}
	return c.snap.Latency
}

func (c *SnapshotCache) cachedBW() map[metrics.PairKey]metrics.PairBandwidth {
	if c.snap == nil {
		return map[metrics.PairKey]metrics.PairBandwidth{}
	}
	return c.snap.Bandwidth
}

// prefixGensChanged reports whether the generation maps differ for any
// key under prefix (added, removed, or moved).
func prefixGensChanged(cur, prev map[string]uint64, prefix string) bool {
	for k, g := range cur {
		if strings.HasPrefix(k, prefix) && prev[k] != g {
			return true
		}
	}
	for k := range prev {
		if strings.HasPrefix(k, prefix) {
			if _, ok := cur[k]; !ok {
				return true
			}
		}
	}
	return false
}

// monitoredOf is alloc.MonitoredLivehosts without the import cycle: the
// sorted host IDs that also have a node record.
func monitoredOf(hosts []int, nodes map[int]metrics.NodeAttrs) []int {
	out := make([]int, 0, len(hosts))
	for _, id := range hosts {
		if _, ok := nodes[id]; ok {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}
