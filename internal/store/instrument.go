package store

import (
	"errors"
	"time"

	"nlarm/internal/obs"
)

// InstrumentedStore wraps a Store and records per-operation counts,
// error counts, injected-fault sightings, and latency histograms into an
// obs.Registry. The clock is injected so virtual-time runs stay
// deterministic (every op observed inside one scheduler callback records
// a zero duration, and two same-seed runs render identical metrics).
//
// Registry names:
//
//	store.<op>.count    counter — attempts, including failed ones
//	store.<op>.errors   counter — attempts that returned an error
//	store.<op>.injected counter — errors carrying ErrInjected (FaultStore)
//	store.<op>.seconds  histogram — per-attempt latency
type InstrumentedStore struct {
	inner Store
	reg   *obs.Registry
	now   func() time.Time
}

// Instrument wraps inner with op metrics recorded into reg (nil reg is a
// valid no-op registry). now supplies timestamps; nil means time.Now.
func Instrument(inner Store, reg *obs.Registry, now func() time.Time) *InstrumentedStore {
	if now == nil {
		now = time.Now
	}
	return &InstrumentedStore{inner: inner, reg: reg, now: now}
}

// Inner returns the wrapped store.
func (s *InstrumentedStore) Inner() Store { return s.inner }

func (s *InstrumentedStore) observe(op Op, start time.Time, err error) {
	name := "store." + string(op)
	s.reg.Counter(name + ".count").Inc()
	s.reg.Histogram(name + ".seconds").Observe(s.now().Sub(start).Seconds())
	if err == nil {
		return
	}
	s.reg.Counter(name + ".errors").Inc()
	if errors.Is(err, ErrInjected) {
		s.reg.Counter(name + ".injected").Inc()
	}
}

// Put implements Store.
func (s *InstrumentedStore) Put(key string, value []byte) error {
	start := s.now()
	err := s.inner.Put(key, value)
	s.observe(OpPut, start, err)
	return err
}

// Get implements Store.
func (s *InstrumentedStore) Get(key string) ([]byte, error) {
	start := s.now()
	v, err := s.inner.Get(key)
	if errors.Is(err, ErrNotFound) {
		// Missing keys are a normal outcome (a daemon that has not
		// published yet), not a store failure.
		s.reg.Counter("store.get.count").Inc()
		s.reg.Counter("store.get.notfound").Inc()
		s.reg.Histogram("store.get.seconds").Observe(s.now().Sub(start).Seconds())
		return v, err
	}
	s.observe(OpGet, start, err)
	return v, err
}

// List implements Store.
func (s *InstrumentedStore) List(prefix string) ([]string, error) {
	start := s.now()
	keys, err := s.inner.List(prefix)
	s.observe(OpList, start, err)
	return keys, err
}

// Delete implements Store.
func (s *InstrumentedStore) Delete(key string) error {
	start := s.now()
	err := s.inner.Delete(key)
	s.observe(OpDelete, start, err)
	return err
}

// SyncFaults copies the FaultStore's fault and op counters into reg as
// gauges (store.faults.<kind>, store.faults.total, store.ops.<op>), so a
// metrics snapshot carries the injector's exact accounting alongside the
// wrapper's own observations. Call it before rendering; gauges are
// last-value-wins, so repeated syncs are idempotent.
func SyncFaults(fs *FaultStore, reg *obs.Registry) {
	if fs == nil || reg == nil {
		return
	}
	for _, kind := range []string{FaultPutError, FaultTornWrite, FaultGetError,
		FaultStaleRead, FaultListError, FaultPartition} {
		reg.Gauge("store.faults." + kind).Set(float64(fs.FaultCount(kind)))
	}
	reg.Gauge("store.faults.total").Set(float64(fs.TotalFaults()))
	for _, op := range []Op{OpPut, OpGet, OpList, OpDelete} {
		reg.Gauge("store.ops." + string(op)).Set(float64(fs.OpCount(op)))
	}
}

// Compile-time check.
var _ Store = (*InstrumentedStore)(nil)
