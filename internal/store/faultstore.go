package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"nlarm/internal/rng"
)

// ErrInjected is the sentinel wrapped by every fault the FaultStore
// injects, so callers (and tests) can distinguish injected failures from
// real backend errors with errors.Is.
var ErrInjected = fmt.Errorf("store: injected fault")

// Op identifies a store operation for counters and fault rules.
type Op string

// Store operations.
const (
	OpPut    Op = "put"
	OpGet    Op = "get"
	OpList   Op = "list"
	OpDelete Op = "delete"
)

// Fault kinds counted by FaultCount.
const (
	FaultPutError  = "put-error"  // Put failed without writing
	FaultTornWrite = "torn-write" // Put persisted, then reported failure
	FaultGetError  = "get-error"  // Get failed
	FaultStaleRead = "stale-read" // Get returned the key's previous value
	FaultListError = "list-error" // List failed
	FaultPartition = "partition"  // operation hit a partitioned prefix
)

// Rates are per-operation fault probabilities in [0, 1]. A zero rate
// never draws from the generator, so enabling one fault class does not
// perturb the random stream of the others.
type Rates struct {
	// PutError makes Put fail before anything is written.
	PutError float64
	// TornWrite makes Put persist the value and then report failure —
	// the shared-filesystem failure mode where the writer dies after the
	// data hit the disk but before it learned so.
	TornWrite float64
	// GetError makes Get fail outright.
	GetError float64
	// StaleRead makes Get return the key's previous value (the read
	// landed on a replica that has not seen the latest write). Keys
	// written at most once never read stale.
	StaleRead float64
	// ListError makes List fail outright.
	ListError float64
}

// FaultStore wraps a Store and injects seeded, schedule-driven faults:
// probabilistic Put/Get/List errors, torn writes, stale reads, and
// per-key-prefix partitions, plus operation and fault counters for test
// assertions. With zero rates and no partitions it is a transparent
// pass-through.
//
// All methods are safe for concurrent use. Outcomes are deterministic for
// a fixed seed and a fixed operation order — inside the discrete-event
// simulation every store call happens on the scheduler goroutine, so
// chaos scenarios replay bit-identically.
type FaultStore struct {
	inner Store

	mu         sync.Mutex
	rnd        *rng.Rand
	rates      Rates
	scope      []string          // probabilistic faults only hit these prefixes
	partitions []string          // active partitioned key prefixes
	prev       map[string][]byte // previous value per overwritten key
	ops        map[Op]uint64
	faults     map[string]uint64
}

// NewFault wraps inner with a fault injector seeded from seed. The
// wrapper starts fault-free: set Rates and Partition to arm it.
func NewFault(inner Store, seed uint64) *FaultStore {
	return &FaultStore{
		inner:  inner,
		rnd:    rng.New(seed),
		prev:   make(map[string][]byte),
		ops:    make(map[Op]uint64),
		faults: make(map[string]uint64),
	}
}

// SetRates replaces the probabilistic fault rates.
func (s *FaultStore) SetRates(r Rates) {
	s.mu.Lock()
	s.rates = r
	s.mu.Unlock()
}

// SetScope limits the blast radius of the probabilistic faults (Rates) to
// keys under the given prefixes; an empty scope means every key. Chaos
// scenarios use it to corrupt monitoring data while leaving control-plane
// keys (heartbeats, the leader lease) honest, so failure accounting stays
// exact. Partitions are schedule-driven and ignore the scope.
func (s *FaultStore) SetScope(prefixes ...string) {
	s.mu.Lock()
	s.scope = append([]string(nil), prefixes...)
	s.mu.Unlock()
}

// inScopeLocked reports whether probabilistic faults may hit key.
func (s *FaultStore) inScopeLocked(key string) bool {
	if len(s.scope) == 0 {
		return true
	}
	for _, p := range s.scope {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}

// Partition makes every key under prefix unreachable (Put/Get/Delete
// error; List of a prefix inside the partition errors, wider List calls
// silently omit the partitioned keys — the directory simply looks
// empty). Partitioning an already-partitioned prefix is a no-op.
func (s *FaultStore) Partition(prefix string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.partitions {
		if p == prefix {
			return
		}
	}
	s.partitions = append(s.partitions, prefix)
}

// Heal removes a partition installed by Partition. Healing an unknown
// prefix is a no-op.
func (s *FaultStore) Heal(prefix string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := s.partitions[:0]
	for _, p := range s.partitions {
		if p != prefix {
			live = append(live, p)
		}
	}
	s.partitions = live
}

// HealAll removes every active partition.
func (s *FaultStore) HealAll() {
	s.mu.Lock()
	s.partitions = nil
	s.mu.Unlock()
}

// Partitioned returns the active partition prefixes, sorted.
func (s *FaultStore) Partitioned() []string {
	s.mu.Lock()
	out := append([]string(nil), s.partitions...)
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// OpCount returns how many times op was attempted (including faulted
// attempts).
func (s *FaultStore) OpCount(op Op) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ops[op]
}

// FaultCount returns how many faults of the given kind were injected.
func (s *FaultStore) FaultCount(kind string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults[kind]
}

// TotalFaults returns the number of injected faults across all kinds.
func (s *FaultStore) TotalFaults() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, c := range s.faults {
		n += c
	}
	return n
}

// partitionedLocked reports whether key falls under an active partition.
func (s *FaultStore) partitionedLocked(key string) bool {
	for _, p := range s.partitions {
		if strings.HasPrefix(key, p) {
			return true
		}
	}
	return false
}

// roll draws once when rate is positive and reports whether the fault
// fires, recording it under kind.
func (s *FaultStore) rollLocked(rate float64, kind string) bool {
	if rate <= 0 {
		return false
	}
	if s.rnd.Float64() >= rate {
		return false
	}
	s.faults[kind]++
	return true
}

// Put implements Store.
func (s *FaultStore) Put(key string, value []byte) error {
	s.mu.Lock()
	s.ops[OpPut]++
	if s.partitionedLocked(key) {
		s.faults[FaultPartition]++
		s.mu.Unlock()
		return fmt.Errorf("%w: partitioned prefix blocks put %q", ErrInjected, key)
	}
	torn := false
	if s.inScopeLocked(key) {
		torn = s.rollLocked(s.rates.TornWrite, FaultTornWrite)
		if !torn && s.rollLocked(s.rates.PutError, FaultPutError) {
			s.mu.Unlock()
			return fmt.Errorf("%w: put %q", ErrInjected, key)
		}
	}
	s.mu.Unlock()

	// Remember the value being replaced so stale reads have something old
	// to serve. The pre-read races against other writers only outside the
	// simulation, where stale reads are approximate anyway.
	if s.staleTracking(key) {
		if old, err := s.inner.Get(key); err == nil {
			s.mu.Lock()
			s.prev[key] = old
			s.mu.Unlock()
		}
	}
	if err := s.inner.Put(key, value); err != nil {
		return err
	}
	if torn {
		return fmt.Errorf("%w: torn write %q (value persisted)", ErrInjected, key)
	}
	return nil
}

// staleTracking reports whether previous values of key need recording.
func (s *FaultStore) staleTracking(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rates.StaleRead > 0 && s.inScopeLocked(key)
}

// Get implements Store.
func (s *FaultStore) Get(key string) ([]byte, error) {
	s.mu.Lock()
	s.ops[OpGet]++
	if s.partitionedLocked(key) {
		s.faults[FaultPartition]++
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: partitioned prefix blocks get %q", ErrInjected, key)
	}
	if s.inScopeLocked(key) {
		if s.rollLocked(s.rates.GetError, FaultGetError) {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: get %q", ErrInjected, key)
		}
		if s.rates.StaleRead > 0 {
			if old, ok := s.prev[key]; ok && s.rollLocked(s.rates.StaleRead, FaultStaleRead) {
				cp := append([]byte(nil), old...)
				s.mu.Unlock()
				return cp, nil
			}
		}
	}
	s.mu.Unlock()
	return s.inner.Get(key)
}

// List implements Store.
func (s *FaultStore) List(prefix string) ([]string, error) {
	s.mu.Lock()
	s.ops[OpList]++
	for _, p := range s.partitions {
		if strings.HasPrefix(prefix, p) {
			s.faults[FaultPartition]++
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: partitioned prefix blocks list %q", ErrInjected, prefix)
		}
	}
	if s.inScopeLocked(prefix) && s.rollLocked(s.rates.ListError, FaultListError) {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: list %q", ErrInjected, prefix)
	}
	parts := append([]string(nil), s.partitions...)
	s.mu.Unlock()

	keys, err := s.inner.List(prefix)
	if err != nil || len(parts) == 0 {
		return keys, err
	}
	visible := keys[:0]
	for _, k := range keys {
		blocked := false
		for _, p := range parts {
			if strings.HasPrefix(k, p) {
				blocked = true
				break
			}
		}
		if !blocked {
			visible = append(visible, k)
		}
	}
	return visible, nil
}

// Delete implements Store.
func (s *FaultStore) Delete(key string) error {
	s.mu.Lock()
	s.ops[OpDelete]++
	if s.partitionedLocked(key) {
		s.faults[FaultPartition]++
		s.mu.Unlock()
		return fmt.Errorf("%w: partitioned prefix blocks delete %q", ErrInjected, key)
	}
	s.mu.Unlock()
	return s.inner.Delete(key)
}

// Compile-time check.
var _ Store = (*FaultStore)(nil)
