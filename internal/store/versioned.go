package store

import (
	"strings"
	"sync"
)

// VersionedStore wraps a Store and stamps every written key with a
// monotonically increasing generation, so readers can find out *which*
// keys changed since they last looked without re-reading any values.
// Values pass through unmodified — generations live beside the data, not
// inside it — so direct readers of the wrapped store see exactly the
// bytes the writers put there, and the wrapper composes with FileStore,
// FaultStore, and InstrumentedStore in any inner position.
//
// Generations are process-local bookkeeping, which matches how the repo
// deploys the store: every writer and every generation-aware reader
// (monitor daemons, the broker's SnapshotCache) share one process. Keys
// that already exist in the wrapped store at construction time are
// seeded with an initial generation so a cache built later still sees
// them.
//
// A Put that returns an error still bumps the key's generation: with a
// torn write (FaultStore, or a crashed FileStore writer) the value may
// have reached the backend even though the writer saw a failure, and a
// spurious re-read is harmless while a missed one serves stale data.
type VersionedStore struct {
	inner Store

	mu   sync.RWMutex
	seq  uint64 // bumped by every Put/Delete; cheap "anything changed?" probe
	ctr  uint64 // generation source; strictly increasing across all keys
	gens map[string]uint64
}

// Version wraps inner with generation tracking, seeding generations for
// every key the wrapped store already holds. Listing errors during
// seeding are ignored: an unreadable backend simply starts with no
// seeded generations, and caches treat unknown keys as changed.
func Version(inner Store) *VersionedStore {
	v := &VersionedStore{inner: inner, gens: make(map[string]uint64)}
	if keys, err := inner.List(""); err == nil {
		for _, k := range keys {
			v.ctr++
			v.gens[k] = v.ctr
			v.seq++
		}
	}
	return v
}

// Put writes through to the wrapped store and bumps the key's
// generation (even on error; see the type comment).
func (v *VersionedStore) Put(key string, value []byte) error {
	err := v.inner.Put(key, value)
	v.mu.Lock()
	v.ctr++
	v.gens[key] = v.ctr
	v.seq++
	v.mu.Unlock()
	return err
}

// Get reads through to the wrapped store.
func (v *VersionedStore) Get(key string) ([]byte, error) { return v.inner.Get(key) }

// List lists through to the wrapped store.
func (v *VersionedStore) List(prefix string) ([]string, error) { return v.inner.List(prefix) }

// Delete removes the key from the wrapped store and drops its
// generation, so readers comparing generation maps see the key vanish.
func (v *VersionedStore) Delete(key string) error {
	err := v.inner.Delete(key)
	v.mu.Lock()
	delete(v.gens, key)
	v.seq++
	v.mu.Unlock()
	return err
}

// Seq returns a counter bumped by every write (Put or Delete). A reader
// that remembers the last Seq it acted on can skip the whole
// generation-map comparison when nothing was written at all — the
// broker's idle-cluster fast path.
func (v *VersionedStore) Seq() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.seq
}

// Generation returns key's current generation, or 0 if the key has
// never been written (or was deleted).
func (v *VersionedStore) Generation(key string) uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.gens[key]
}

// Generations returns a copy of the generation map restricted to keys
// under the given prefixes (no prefixes = every key).
func (v *VersionedStore) Generations(prefixes ...string) map[string]uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]uint64, len(v.gens))
	for k, g := range v.gens {
		if len(prefixes) == 0 {
			out[k] = g
			continue
		}
		for _, p := range prefixes {
			if strings.HasPrefix(k, p) {
				out[k] = g
				break
			}
		}
	}
	return out
}

var _ Store = (*VersionedStore)(nil)
