package store

import (
	"errors"
	"testing"
	"time"

	"nlarm/internal/obs"
)

func TestInstrumentedStoreCountsOpsAndErrors(t *testing.T) {
	reg := obs.NewRegistry()
	clock := time.Unix(1000, 0)
	ist := Instrument(NewMem(), reg, func() time.Time { return clock })

	if err := ist.Put("a/1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := ist.Get("a/1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ist.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get missing: %v", err)
	}
	if _, err := ist.List("a/"); err != nil {
		t.Fatal(err)
	}
	if err := ist.Delete("a/1"); err != nil {
		t.Fatal(err)
	}

	for name, want := range map[string]uint64{
		"store.put.count":    1,
		"store.get.count":    2,
		"store.get.notfound": 1,
		"store.get.errors":   0,
		"store.list.count":   1,
		"store.delete.count": 1,
		"store.put.errors":   0,
	} {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if h := reg.Histogram("store.put.seconds"); h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("put latency hist count=%d sum=%g (frozen clock must give 0s)", h.Count(), h.Sum())
	}
}

func TestInstrumentedStoreSeesInjectedFaults(t *testing.T) {
	reg := obs.NewRegistry()
	fs := NewFault(NewMem(), 1)
	ist := Instrument(fs, reg, nil)

	fs.Partition("part/")
	if err := ist.Put("part/x", nil); err == nil {
		t.Fatal("partitioned put succeeded")
	}
	if _, err := ist.Get("part/x"); err == nil {
		t.Fatal("partitioned get succeeded")
	}
	if got := reg.Counter("store.put.injected").Value(); got != 1 {
		t.Fatalf("put.injected = %d", got)
	}
	if got := reg.Counter("store.get.injected").Value(); got != 1 {
		t.Fatalf("get.injected = %d", got)
	}
	if got := reg.Counter("store.get.errors").Value(); got != 1 {
		t.Fatalf("get.errors = %d", got)
	}
}

func TestSyncFaultsMirrorsFaultStoreCounters(t *testing.T) {
	reg := obs.NewRegistry()
	fs := NewFault(NewMem(), 42)
	fs.SetRates(Rates{PutError: 1})
	for i := 0; i < 5; i++ {
		_ = fs.Put("k", []byte("v"))
	}
	SyncFaults(fs, reg)
	snap := reg.Snapshot()
	if got := snap.Gauges["store.faults."+FaultPutError]; got != float64(fs.FaultCount(FaultPutError)) {
		t.Fatalf("put-error gauge = %g, want %d", got, fs.FaultCount(FaultPutError))
	}
	if got := snap.Gauges["store.faults.total"]; got != float64(fs.TotalFaults()) {
		t.Fatalf("total gauge = %g, want %d", got, fs.TotalFaults())
	}
	if got := snap.Gauges["store.ops.put"]; got != 5 {
		t.Fatalf("ops.put gauge = %g, want 5", got)
	}
	// Idempotent re-sync.
	SyncFaults(fs, reg)
	if got := reg.Gauge("store.faults.total").Value(); got != float64(fs.TotalFaults()) {
		t.Fatalf("re-sync drifted: %g", got)
	}
	// Nil args are no-ops.
	SyncFaults(nil, reg)
	SyncFaults(fs, nil)
}
