package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// storeImpls returns both backends for shared conformance tests.
func storeImpls(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem":  NewMem(),
		"file": fs,
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	for name, st := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.Put("a/b", []byte("hello")); err != nil {
				t.Fatal(err)
			}
			got, err := st.Get("a/b")
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "hello" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestGetMissing(t *testing.T) {
	for name, st := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			_, err := st.Get("missing")
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestPutReplaces(t *testing.T) {
	for name, st := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			_ = st.Put("k", []byte("v1"))
			_ = st.Put("k", []byte("v2"))
			got, _ := st.Get("k")
			if string(got) != "v2" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestList(t *testing.T) {
	for name, st := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			_ = st.Put("nodestate/2", []byte("x"))
			_ = st.Put("nodestate/1", []byte("x"))
			_ = st.Put("latency/matrix", []byte("x"))
			keys, err := st.List("nodestate/")
			if err != nil {
				t.Fatal(err)
			}
			if len(keys) != 2 || keys[0] != "nodestate/1" || keys[1] != "nodestate/2" {
				t.Fatalf("List = %v", keys)
			}
			all, _ := st.List("")
			if len(all) != 3 {
				t.Fatalf("List all = %v", all)
			}
		})
	}
}

func TestDelete(t *testing.T) {
	for name, st := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			_ = st.Put("k", []byte("v"))
			if err := st.Delete("k"); err != nil {
				t.Fatal(err)
			}
			if _, err := st.Get("k"); !errors.Is(err, ErrNotFound) {
				t.Fatal("key survived delete")
			}
			// Deleting a missing key is fine.
			if err := st.Delete("k"); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	for name, st := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			if err := st.Put("", []byte("v")); err == nil {
				t.Fatal("empty key accepted")
			}
		})
	}
}

func TestValueIsolation(t *testing.T) {
	st := NewMem()
	buf := []byte("orig")
	_ = st.Put("k", buf)
	buf[0] = 'X'
	got, _ := st.Get("k")
	if string(got) != "orig" {
		t.Fatal("MemStore aliased caller's put buffer")
	}
	got[0] = 'Y'
	again, _ := st.Get("k")
	if string(again) != "orig" {
		t.Fatal("MemStore aliased returned buffer")
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	for name, st := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					key := fmt.Sprintf("worker/%d", w)
					for i := 0; i < 50; i++ {
						if err := st.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
							t.Errorf("put: %v", err)
							return
						}
					}
				}(w)
			}
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						_, _ = st.List("worker/")
						_, _ = st.Get("worker/0")
					}
				}()
			}
			wg.Wait()
			keys, _ := st.List("worker/")
			if len(keys) != 4 {
				t.Fatalf("keys after concurrent writes: %v", keys)
			}
		})
	}
}

func TestMemLen(t *testing.T) {
	st := NewMem()
	_ = st.Put("a", nil)
	_ = st.Put("b", nil)
	if st.Len() != 2 {
		t.Fatalf("Len = %d", st.Len())
	}
}

func TestFileStoreTraversalRejected(t *testing.T) {
	st, _ := NewFile(t.TempDir())
	for _, key := range []string{"../escape", "/abs/path", "a/../../b"} {
		if err := st.Put(key, []byte("x")); err == nil {
			t.Errorf("traversal key %q accepted", key)
		}
	}
}

func TestFileStoreSkipsTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, _ := NewFile(dir)
	_ = st.Put("real", []byte("x"))
	// Simulate a leftover temp file from a crashed writer.
	if err := os.WriteFile(filepath.Join(dir, "ghost.tmp"), []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	keys, err := st.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "real" {
		t.Fatalf("List = %v", keys)
	}
}

func TestFileStorePersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	st1, _ := NewFile(dir)
	_ = st1.Put("nodestate/5", []byte("persisted"))
	st2, _ := NewFile(dir)
	got, err := st2.Get("nodestate/5")
	if err != nil || string(got) != "persisted" {
		t.Fatalf("reopen: %q %v", got, err)
	}
}

func TestFileStoreNestedKeys(t *testing.T) {
	st, _ := NewFile(t.TempDir())
	if err := st.Put("a/b/c/d", []byte("deep")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Get("a/b/c/d")
	if err != nil || string(got) != "deep" {
		t.Fatalf("deep key: %q %v", got, err)
	}
}
