// Package store provides the shared state store that monitoring daemons
// publish into and the allocator reads from. The paper uses a shared NFS
// mount; this package offers the same contract with two backends: an
// in-memory store for simulations and tests, and a directory-backed store
// whose atomic file writes mirror the paper's NFS layout for the
// standalone daemons.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = fmt.Errorf("store: key not found")

// Store is a small key-value abstraction. Keys are slash-separated paths
// like "nodestate/csews3" or "bandwidth/3-17". Implementations must be
// safe for concurrent use: many daemons write while the allocator reads.
type Store interface {
	// Put atomically replaces the value at key.
	Put(key string, value []byte) error
	// Get returns the value at key, or ErrNotFound.
	Get(key string) ([]byte, error)
	// List returns all keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Delete removes key; deleting a missing key is not an error.
	Delete(key string) error
}

// MemStore is an in-memory Store.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(key string, value []byte) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	cp := append([]byte(nil), value...)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	v, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return append([]byte(nil), v...), nil
}

// List implements Store.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	keys := make([]string, 0, len(s.m))
	for k := range s.m {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	delete(s.m, key)
	s.mu.Unlock()
	return nil
}

// Len returns the number of stored keys.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// FileStore persists keys as files under a root directory, one file per
// key, with atomic replace via rename — the way the paper's daemons write
// to NFS. Key path separators become subdirectories. Temp files carry a
// leading dot plus unique suffix, so a writer that crashes mid-write can
// never be confused with a published value: readers skip dot-files and
// the half-written temp is simply garbage next to the intact old value.
type FileStore struct {
	root string
}

// NewFile returns a file-backed store rooted at dir, creating it if
// needed.
func NewFile(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create root: %w", err)
	}
	return &FileStore{root: dir}, nil
}

func (s *FileStore) path(key string) (string, error) {
	if key == "" {
		return "", fmt.Errorf("store: empty key")
	}
	clean := filepath.Clean(key)
	if strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return "", fmt.Errorf("store: invalid key %q", key)
	}
	return filepath.Join(s.root, clean), nil
}

// Put implements Store with write-temp-then-rename atomicity. The temp
// file gets a unique name (so concurrent writers — even from different
// processes sharing the mount — never interleave into one file), is
// fsynced before the rename (so a crash cannot publish an empty or
// partial rename target), and is removed on any failure.
func (s *FileStore) Put(key string, value []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: mkdir for %q: %w", key, err)
	}
	f, err := os.CreateTemp(dir, "."+filepath.Base(p)+".tmp-")
	if err != nil {
		return fmt.Errorf("store: temp for %q: %w", key, err)
	}
	tmp := f.Name()
	fail := func(stage string, err error) error {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: %s %q: %w", stage, key, err)
	}
	if _, err := f.Write(value); err != nil {
		return fail("write", err)
	}
	if err := f.Sync(); err != nil {
		return fail("sync", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: close %q: %w", key, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: rename %q: %w", key, err)
	}
	return nil
}

// Get implements Store.
func (s *FileStore) Get(key string) ([]byte, error) {
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err != nil {
		return nil, fmt.Errorf("store: read %q: %w", key, err)
	}
	return b, nil
}

// List implements Store.
func (s *FileStore) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.Walk(s.root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		base := filepath.Base(path)
		// Skip in-flight and abandoned temp files: current writers use
		// dot-prefixed unique names; older layouts used a ".tmp" suffix.
		if info.IsDir() || strings.HasPrefix(base, ".") || strings.HasSuffix(path, ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(s.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	sort.Strings(keys)
	return keys, nil
}

// Delete implements Store.
func (s *FileStore) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: delete %q: %w", key, err)
	}
	return nil
}
