package store

import (
	"errors"
	"testing"
)

func TestVersionedGenerationsBumpPerPut(t *testing.T) {
	v := Version(NewMem())
	if got := v.Seq(); got != 0 {
		t.Fatalf("fresh store Seq = %d, want 0", got)
	}
	if got := v.Generation("a"); got != 0 {
		t.Fatalf("unwritten key generation = %d, want 0", got)
	}
	if err := v.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	g1 := v.Generation("a")
	if g1 == 0 {
		t.Fatal("written key has generation 0")
	}
	if err := v.Put("b", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if gb := v.Generation("b"); gb <= g1 {
		t.Fatalf("later write generation %d not greater than earlier %d", gb, g1)
	}
	if err := v.Put("a", []byte("3")); err != nil {
		t.Fatal(err)
	}
	if g2 := v.Generation("a"); g2 <= v.Generation("b") {
		t.Fatalf("rewrite generation %d did not move past %d", g2, v.Generation("b"))
	}
	if got := v.Seq(); got != 3 {
		t.Fatalf("Seq after 3 writes = %d, want 3", got)
	}
	// Values pass through unmodified.
	val, err := v.Get("a")
	if err != nil || string(val) != "3" {
		t.Fatalf("Get = %q, %v", val, err)
	}
}

func TestVersionedDeleteDropsGeneration(t *testing.T) {
	v := Version(NewMem())
	if err := v.Put("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	seq := v.Seq()
	if err := v.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if got := v.Generation("k"); got != 0 {
		t.Fatalf("deleted key generation = %d, want 0", got)
	}
	if v.Seq() != seq+1 {
		t.Fatalf("Delete did not bump Seq: %d -> %d", seq, v.Seq())
	}
	if _, err := v.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v, want ErrNotFound", err)
	}
}

func TestVersionedSeedsPreexistingKeys(t *testing.T) {
	inner := NewMem()
	for _, k := range []string{"x/1", "x/2", "y/1"} {
		if err := inner.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	v := Version(inner)
	for _, k := range []string{"x/1", "x/2", "y/1"} {
		if v.Generation(k) == 0 {
			t.Fatalf("pre-existing key %q not seeded", k)
		}
	}
	if v.Seq() == 0 {
		t.Fatal("seeding left Seq at 0; a cache built before the first write would never notice the seeded keys")
	}
}

func TestVersionedGenerationsPrefixFilter(t *testing.T) {
	v := Version(NewMem())
	for _, k := range []string{"a/1", "a/2", "b/1"} {
		if err := v.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	got := v.Generations("a/")
	if len(got) != 2 {
		t.Fatalf("Generations(a/) = %v, want the 2 a/ keys", got)
	}
	if _, ok := got["b/1"]; ok {
		t.Fatal("prefix filter leaked b/1")
	}
	all := v.Generations()
	if len(all) != 3 {
		t.Fatalf("Generations() = %v, want all 3 keys", all)
	}
	// The returned map is a copy: mutating it must not corrupt the store.
	all["a/1"] = 999999
	if v.Generation("a/1") == 999999 {
		t.Fatal("Generations returned the live map")
	}
}

func TestVersionedBumpsOnFailedPut(t *testing.T) {
	fs := NewFault(NewMem(), 1)
	fs.SetRates(Rates{PutError: 1})
	v := Version(fs)
	if err := v.Put("k", []byte("x")); err == nil {
		t.Fatal("fault store accepted the write")
	}
	// A failed Put may still have reached the backend (torn write), so
	// the generation must move: a spurious re-read is harmless, serving
	// stale data is not.
	if v.Generation("k") == 0 {
		t.Fatal("failed Put did not bump the generation")
	}
}

func TestVersionedComposesWithInstrument(t *testing.T) {
	// Version outermost over Instrument: reads through the stack count in
	// the instrumented counters, which is what the snapshot-cache op-count
	// assertions rely on.
	var _ interface {
		Store
		Generations(...string) map[string]uint64
		Seq() uint64
	} = Version(NewMem())
}
