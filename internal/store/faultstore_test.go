package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

func TestFaultStorePassThroughWhenQuiet(t *testing.T) {
	fs := NewFault(NewMem(), 1)
	if err := fs.Put("a/b", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get("a/b")
	if err != nil || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	keys, err := fs.List("a/")
	if err != nil || len(keys) != 1 {
		t.Fatalf("List = %v, %v", keys, err)
	}
	if err := fs.Delete("a/b"); err != nil {
		t.Fatal(err)
	}
	if fs.OpCount(OpPut) != 1 || fs.OpCount(OpGet) != 1 || fs.OpCount(OpList) != 1 || fs.OpCount(OpDelete) != 1 {
		t.Fatalf("op counters: put=%d get=%d list=%d delete=%d",
			fs.OpCount(OpPut), fs.OpCount(OpGet), fs.OpCount(OpList), fs.OpCount(OpDelete))
	}
	if fs.TotalFaults() != 0 {
		t.Fatalf("quiet store injected %d faults", fs.TotalFaults())
	}
}

func TestFaultStoreInjectedErrors(t *testing.T) {
	fs := NewFault(NewMem(), 2)
	fs.SetRates(Rates{PutError: 1, GetError: 1, ListError: 1})
	if err := fs.Put("k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put err = %v", err)
	}
	if _, err := fs.Get("k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Get err = %v", err)
	}
	if _, err := fs.List(""); !errors.Is(err, ErrInjected) {
		t.Fatalf("List err = %v", err)
	}
	// The failed Put must not have written.
	fs.SetRates(Rates{})
	if _, err := fs.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed put persisted: %v", err)
	}
	for _, kind := range []string{FaultPutError, FaultGetError, FaultListError} {
		if fs.FaultCount(kind) != 1 {
			t.Fatalf("fault %s counted %d times", kind, fs.FaultCount(kind))
		}
	}
}

func TestFaultStoreScopeLimitsBlastRadius(t *testing.T) {
	fs := NewFault(NewMem(), 11)
	fs.SetRates(Rates{PutError: 1, GetError: 1, ListError: 1})
	fs.SetScope("data/")

	// Out-of-scope keys never fault, even at rate 1.
	if err := fs.Put("heartbeat/x", []byte("v")); err != nil {
		t.Fatalf("out-of-scope Put faulted: %v", err)
	}
	if got, err := fs.Get("heartbeat/x"); err != nil || string(got) != "v" {
		t.Fatalf("out-of-scope Get = %q, %v", got, err)
	}
	if _, err := fs.List("heartbeat/"); err != nil {
		t.Fatalf("out-of-scope List faulted: %v", err)
	}

	// In-scope keys fault as configured.
	if err := fs.Put("data/k", []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("in-scope Put err = %v", err)
	}
	if _, err := fs.Get("data/k"); !errors.Is(err, ErrInjected) {
		t.Fatalf("in-scope Get err = %v", err)
	}
	if _, err := fs.List("data/"); !errors.Is(err, ErrInjected) {
		t.Fatalf("in-scope List err = %v", err)
	}

	// Partitions ignore the scope: they are schedule-driven, not random.
	fs.SetRates(Rates{})
	fs.Partition("heartbeat/")
	if _, err := fs.Get("heartbeat/x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("partition should ignore scope: %v", err)
	}
	fs.HealAll()

	// Clearing the scope re-arms every key.
	fs.SetRates(Rates{GetError: 1})
	fs.SetScope()
	if _, err := fs.Get("heartbeat/x"); !errors.Is(err, ErrInjected) {
		t.Fatalf("empty scope should cover all keys: %v", err)
	}
}

func TestFaultStoreTornWrite(t *testing.T) {
	fs := NewFault(NewMem(), 3)
	fs.SetRates(Rates{TornWrite: 1})
	err := fs.Put("snap", []byte("payload"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write reported %v", err)
	}
	// Torn semantics: the error lied — the value IS there.
	fs.SetRates(Rates{})
	got, err := fs.Get("snap")
	if err != nil || string(got) != "payload" {
		t.Fatalf("torn write did not persist: %q, %v", got, err)
	}
	if fs.FaultCount(FaultTornWrite) != 1 {
		t.Fatalf("torn-write count %d", fs.FaultCount(FaultTornWrite))
	}
}

func TestFaultStoreStaleRead(t *testing.T) {
	fs := NewFault(NewMem(), 4)
	fs.SetRates(Rates{StaleRead: 1})
	if err := fs.Put("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// First write has no previous value: reads are necessarily fresh.
	got, err := fs.Get("k")
	if err != nil || string(got) != "v1" {
		t.Fatalf("first-value read = %q, %v", got, err)
	}
	if err := fs.Put("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err = fs.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" {
		t.Fatalf("stale read returned %q, want previous value v1", got)
	}
	if fs.FaultCount(FaultStaleRead) != 1 {
		t.Fatalf("stale-read count %d", fs.FaultCount(FaultStaleRead))
	}
	fs.SetRates(Rates{})
	got, _ = fs.Get("k")
	if string(got) != "v2" {
		t.Fatalf("healed read returned %q", got)
	}
}

func TestFaultStorePartition(t *testing.T) {
	fs := NewFault(NewMem(), 5)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(fs.Put("livehosts/0", []byte("a")))
	must(fs.Put("nodestate/1", []byte("b")))

	fs.Partition("livehosts/")
	if err := fs.Put("livehosts/0", []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("put into partition: %v", err)
	}
	if _, err := fs.Get("livehosts/0"); !errors.Is(err, ErrInjected) {
		t.Fatalf("get from partition: %v", err)
	}
	if _, err := fs.List("livehosts/"); !errors.Is(err, ErrInjected) {
		t.Fatalf("list inside partition: %v", err)
	}
	// A wider list silently omits the partitioned subtree.
	keys, err := fs.List("")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"nodestate/1"}) {
		t.Fatalf("wide list = %v", keys)
	}
	// Other prefixes unaffected.
	if _, err := fs.Get("nodestate/1"); err != nil {
		t.Fatal(err)
	}
	if got := fs.Partitioned(); !reflect.DeepEqual(got, []string{"livehosts/"}) {
		t.Fatalf("Partitioned = %v", got)
	}

	fs.Heal("livehosts/")
	if _, err := fs.Get("livehosts/0"); err != nil {
		t.Fatalf("healed get: %v", err)
	}
	got, _ := fs.Get("livehosts/0")
	if string(got) != "a" {
		t.Fatalf("partition-blocked put leaked: %q", got)
	}
	if fs.FaultCount(FaultPartition) == 0 {
		t.Fatal("partition faults not counted")
	}
}

func TestFaultStoreDeterministicAcrossRuns(t *testing.T) {
	run := func(seed uint64) []string {
		fs := NewFault(NewMem(), seed)
		fs.SetRates(Rates{PutError: 0.3, GetError: 0.3, StaleRead: 0.5})
		var log []string
		for i := 0; i < 200; i++ {
			key := fmt.Sprintf("k/%d", i%7)
			if err := fs.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
				log = append(log, "putfail")
			}
			v, err := fs.Get(key)
			if err != nil {
				log = append(log, "getfail")
			} else {
				log = append(log, string(v))
			}
		}
		log = append(log, fmt.Sprintf("faults=%d", fs.TotalFaults()))
		return log
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault sequences")
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault sequences (suspicious)")
	}
}

func TestFaultStoreConcurrentUse(t *testing.T) {
	fs := NewFault(NewMem(), 6)
	fs.SetRates(Rates{PutError: 0.1, GetError: 0.1, StaleRead: 0.2, TornWrite: 0.1})
	fs.Partition("blocked/")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k/%d", (g+i)%5)
				_ = fs.Put(key, []byte("v"))
				_, _ = fs.Get(key)
				_, _ = fs.List("k/")
				_ = fs.Put("blocked/x", []byte("v"))
			}
		}(g)
	}
	wg.Wait()
	if fs.OpCount(OpPut) != 1600 || fs.OpCount(OpGet) != 800 || fs.OpCount(OpList) != 800 {
		t.Fatalf("op counts put=%d get=%d list=%d", fs.OpCount(OpPut), fs.OpCount(OpGet), fs.OpCount(OpList))
	}
	if fs.FaultCount(FaultPartition) != 800 {
		t.Fatalf("partition faults %d, want 800", fs.FaultCount(FaultPartition))
	}
}

// --- FileStore atomic-write regression (satellite) -----------------------

func TestFileStorePartialWriteFaultInvisible(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("snap/a", []byte("good")); err != nil {
		t.Fatal(err)
	}
	// Simulate writers that crashed mid-write under both temp-name
	// schemes: a dot-prefixed unique temp and the legacy fixed ".tmp".
	for _, ghost := range []string{".a.tmp-1234567", "a.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, "snap", ghost), []byte("par"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := st.Get("snap/a")
	if err != nil || string(got) != "good" {
		t.Fatalf("reader saw %q, %v — partial write leaked", got, err)
	}
	keys, err := st.List("")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(keys, []string{"snap/a"}) {
		t.Fatalf("List exposes temp garbage: %v", keys)
	}
	// A later writer replaces the value cleanly despite the garbage.
	if err := st.Put("snap/a", []byte("newer")); err != nil {
		t.Fatal(err)
	}
	if got, _ := st.Get("snap/a"); string(got) != "newer" {
		t.Fatalf("replacement read %q", got)
	}
}

func TestFileStoreConcurrentSameKeyFault(t *testing.T) {
	st, err := NewFile(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Many writers hammer one key; every read must observe one writer's
	// complete value, never an interleaving.
	valid := map[string]bool{}
	for i := 0; i < 8; i++ {
		valid[fmt.Sprintf("writer-%d-payload", i)] = true
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 1)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := []byte(fmt.Sprintf("writer-%d-payload", i))
			for j := 0; j < 50; j++ {
				if err := st.Put("hot", v); err != nil {
					select {
					case errCh <- err:
					default:
					}
					return
				}
			}
		}(i)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			v, err := st.Get("hot")
			if err != nil {
				continue // not yet written or mid-rename on a weird FS
			}
			if !valid[string(v)] {
				select {
				case errCh <- fmt.Errorf("torn value %q", v):
				default:
				}
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-readerDone
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}
