package alloc

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
	"nlarm/internal/stats"
)

// refAllocateExplain is a frozen copy of the pre-dense-model heuristic:
// the map-keyed AllocateExplain exactly as the seed shipped it, kept
// here as the reference the CostModel/parallel path must match
// bit-for-bit. Do not "improve" this function — its value is that it
// never changes.
func refAllocateExplain(snap *metrics.Snapshot, req Request) (Candidate, []Candidate, error) {
	req, err := req.Validate()
	if err != nil {
		return Candidate{}, nil, err
	}
	ids := MonitoredLivehosts(snap)
	if len(ids) == 0 {
		return Candidate{}, nil, fmt.Errorf("alloc: net-load-aware: no live monitored nodes")
	}
	cl, err := ComputeLoadsOpt(snap, ids, req.Weights, req.UseForecast)
	if err != nil {
		return Candidate{}, nil, err
	}
	nl, err := NetworkLoads(snap, ids, req.Weights)
	if err != nil {
		return Candidate{}, nil, err
	}
	RescaleMeanNode(cl)
	RescaleMeanPair(nl)
	caps := capacity(snap, ids, req)

	candidates := make([]Candidate, 0, len(ids))
	for _, v := range ids {
		candidates = append(candidates, refGenerate(v, ids, cl, nl, caps, req))
	}

	sumC, sumN := 0.0, 0.0
	for _, c := range candidates {
		sumC += c.ComputeCost
		sumN += c.NetworkCost
	}
	bestIdx := -1
	minTotal := math.Inf(1)
	for i := range candidates {
		c := &candidates[i]
		cNorm, nNorm := 0.0, 0.0
		if sumC > 0 {
			cNorm = c.ComputeCost / sumC
		}
		if sumN > 0 {
			nNorm = c.NetworkCost / sumN
		}
		c.TotalLoad = req.Alpha*cNorm + req.Beta*nNorm
		if c.TotalLoad < minTotal {
			minTotal = c.TotalLoad
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return Candidate{}, nil, fmt.Errorf("alloc: net-load-aware: no candidate produced")
	}
	return candidates[bestIdx], candidates, nil
}

func refGenerate(v int, ids []int, cl map[int]float64, nl map[metrics.PairKey]float64, caps map[int]int, req Request) Candidate {
	addCost := make(map[int]float64, len(ids))
	for _, u := range ids {
		if u == v {
			addCost[u] = 0
			continue
		}
		addCost[u] = req.Alpha*cl[u] + req.Beta*nl[metrics.Pair(v, u)]
	}
	order := sortByCost(ids, addCost)
	nodes, procs := fill(order, caps, req.Procs)

	cand := Candidate{Start: v, Nodes: nodes, Procs: procs}
	for _, n := range nodes {
		cand.ComputeCost += cl[n]
	}
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			cand.NetworkCost += nl[metrics.Pair(nodes[i], nodes[j])]
		}
	}
	return cand
}

// randomEquivSnapshot builds a seeded random snapshot with heterogeneous
// hardware, non-contiguous node IDs, optional forecasts, and a fraction
// of pair measurements missing (pricing them at the worst observed —
// both paths must agree there too).
func randomEquivSnapshot(r *rng.Rand, n int) *metrics.Snapshot {
	snap := &metrics.Snapshot{
		Taken:     t0,
		Nodes:     make(map[int]metrics.NodeAttrs),
		Latency:   make(map[metrics.PairKey]metrics.PairLatency),
		Bandwidth: make(map[metrics.PairKey]metrics.PairBandwidth),
	}
	var ids []int
	id := 0
	for i := 0; i < n; i++ {
		id += 1 + r.Intn(3) // non-contiguous, unsorted insertion order below
		ids = append(ids, id)
	}
	// Publish livehosts in shuffled order; MonitoredLivehosts re-sorts.
	order := r.Perm(n)
	for _, k := range order {
		nid := ids[k]
		snap.Livehosts = append(snap.Livehosts, nid)
		cores := 4 * (1 + r.Intn(4)) // 4..16
		na := metrics.NodeAttrs{
			NodeID: nid, Hostname: fmt.Sprintf("n%d", nid), Timestamp: t0,
			Cores: cores, FreqGHz: r.Range(2.0, 5.0), TotalMemMB: 8192 * float64(1+r.Intn(3)),
			Users: r.Intn(4),
		}
		load := r.Range(0, float64(cores)+4) // sometimes above core count
		na.CPULoad = stats.Windowed{M1: load, M5: load * r.Range(0.5, 1.5), M15: load * r.Range(0.5, 1.5)}
		na.CPUUtilPct = stats.Windowed{M1: r.Range(0, 100), M5: r.Range(0, 100), M15: r.Range(0, 100)}
		na.FlowRateBps = stats.Windowed{M1: r.Range(0, 5e7), M5: r.Range(0, 5e7), M15: r.Range(0, 5e7)}
		na.AvailMemMB = stats.Windowed{M1: r.Range(1000, na.TotalMemMB), M5: 9000, M15: 9000}
		if r.Bool(0.5) {
			na.CPULoadForecast = &metrics.Forecast{Value: r.Range(0, float64(cores)), Method: "ar"}
		}
		if r.Bool(0.3) {
			na.FlowRateForecast = &metrics.Forecast{Value: r.Range(0, 5e7), Method: "mean"}
		}
		snap.Nodes[nid] = na
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Bool(0.15) {
				continue // unmeasured pair: priced at worst observed
			}
			key := metrics.Pair(ids[i], ids[j])
			lat := time.Duration(r.Range(50, 800)) * time.Microsecond
			peak := r.Range(100e6, 130e6)
			snap.Latency[key] = metrics.PairLatency{
				U: key.U, V: key.V, Timestamp: t0, Last: lat, Mean1: lat,
			}
			snap.Bandwidth[key] = metrics.PairBandwidth{
				U: key.U, V: key.V, Timestamp: t0,
				AvailBps: r.Range(10e6, peak), PeakBps: peak,
			}
		}
	}
	return snap
}

// TestAllocateExplainEquivalence proves the dense CostModel + parallel
// candidate path is bit-identical to the seed's map-keyed sequential
// path: same best candidate, same candidate ordering, same TotalLoad /
// ComputeCost / NetworkCost floats, over ≥20 seeded random snapshots
// varying n, α/β, PPN, and forecast pricing.
func TestAllocateExplainEquivalence(t *testing.T) {
	p := NetLoadAware{}
	alphas := []float64{0, 0.3, 0.5, 0.7, 1}
	for seed := uint64(1); seed <= 24; seed++ {
		r := rng.New(seed * 7919)
		n := 4 + r.Intn(37) // 4..40 nodes
		snap := randomEquivSnapshot(r, n)
		alpha := alphas[int(seed)%len(alphas)]
		req := Request{
			Procs:       1 + r.Intn(4*n),
			PPN:         r.Intn(5), // 0..4; 0 = Equation 3 capacity
			Alpha:       alpha,
			Beta:        1 - alpha,
			UseForecast: seed%2 == 0,
		}
		wantBest, wantCands, wantErr := refAllocateExplain(snap, req)
		gotBest, gotCands, gotErr := p.AllocateExplain(snap, req)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("seed %d: error mismatch: ref=%v new=%v", seed, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(wantBest, gotBest) {
			t.Errorf("seed %d (n=%d req=%+v): best candidate mismatch:\nref: %+v\nnew: %+v",
				seed, n, req, wantBest, gotBest)
		}
		if !reflect.DeepEqual(wantCands, gotCands) {
			t.Errorf("seed %d (n=%d): candidate list mismatch (%d vs %d entries)",
				seed, n, len(wantCands), len(gotCands))
			for i := range wantCands {
				if i < len(gotCands) && !reflect.DeepEqual(wantCands[i], gotCands[i]) {
					t.Errorf("  candidate[%d]:\n  ref: %+v\n  new: %+v", i, wantCands[i], gotCands[i])
				}
			}
		}
	}
}

// TestAllocateExplainParallelEquivalence forces the worker-pool branch
// (GOMAXPROCS > 1 and n ≥ minParallelStarts) and checks the fan-out
// still matches the reference exactly. Under -race this also exercises
// the pool for data races.
func TestAllocateExplainParallelEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	p := NetLoadAware{}
	for seed := uint64(100); seed < 105; seed++ {
		r := rng.New(seed)
		n := minParallelStarts + 8 + r.Intn(16)
		snap := randomEquivSnapshot(r, n)
		req := Request{Procs: n, PPN: 1 + r.Intn(3), Alpha: 0.4, Beta: 0.6}
		wantBest, wantCands, err := refAllocateExplain(snap, req)
		if err != nil {
			t.Fatalf("seed %d: reference failed: %v", seed, err)
		}
		gotBest, gotCands, err := p.AllocateExplain(snap, req)
		if err != nil {
			t.Fatalf("seed %d: dense path failed: %v", seed, err)
		}
		if !reflect.DeepEqual(wantBest, gotBest) || !reflect.DeepEqual(wantCands, gotCands) {
			t.Fatalf("seed %d (n=%d): parallel path diverged from reference", seed, n)
		}
	}
}

// TestCostModelMatchesMapViews cross-checks the dense CL/NL arrays
// against the public map-keyed views on a random snapshot.
func TestCostModelMatchesMapViews(t *testing.T) {
	r := rng.New(42)
	snap := randomEquivSnapshot(r, 17)
	ids := MonitoredLivehosts(snap)
	w := PaperWeights()
	m := NewCostModel(snap, w, false)
	if m.Len() != len(ids) {
		t.Fatalf("model has %d nodes, want %d", m.Len(), len(ids))
	}
	cl, err := ComputeLoadsOpt(snap, ids, w, false)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := NetworkLoads(snap, ids, w)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if m.IDs[i] != id {
			t.Fatalf("index %d maps to ID %d, want %d", i, m.IDs[i], id)
		}
		if m.CL[i] != cl[id] {
			t.Errorf("CL[%d] = %v, map says %v", i, m.CL[i], cl[id])
		}
	}
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			want := nl[metrics.Pair(ids[i], ids[j])]
			if got := m.NetLoad(i, j); got != want {
				t.Errorf("NL(%d,%d) = %v, map says %v", ids[i], ids[j], got, want)
			}
		}
	}
}

// mutateDynamicAttrs rewrites the dynamic attributes of node id in snap
// (in place), leaving the static hardware and the network matrices
// untouched — the shape of change UpdateNodes is allowed to absorb.
func mutateDynamicAttrs(r *rng.Rand, snap *metrics.Snapshot, id int) {
	na := snap.Nodes[id]
	load := r.Range(0, float64(na.Cores)+4)
	na.CPULoad = stats.Windowed{M1: load, M5: load * r.Range(0.5, 1.5), M15: load * r.Range(0.5, 1.5)}
	na.CPUUtilPct = stats.Windowed{M1: r.Range(0, 100), M5: r.Range(0, 100), M15: r.Range(0, 100)}
	na.FlowRateBps = stats.Windowed{M1: r.Range(0, 5e7), M5: r.Range(0, 5e7), M15: r.Range(0, 5e7)}
	na.AvailMemMB = stats.Windowed{M1: r.Range(1000, na.TotalMemMB), M5: 9000, M15: 9000}
	na.Users = r.Intn(4)
	na.Timestamp = na.Timestamp.Add(time.Second)
	if r.Bool(0.5) {
		na.CPULoadForecast = &metrics.Forecast{Value: r.Range(0, float64(na.Cores)), Method: "ar"}
	} else {
		na.CPULoadForecast = nil
	}
	if r.Bool(0.3) {
		na.FlowRateForecast = &metrics.Forecast{Value: r.Range(0, 5e7), Method: "mean"}
	} else {
		na.FlowRateForecast = nil
	}
	snap.Nodes[id] = na
}

// requireModelEqual asserts two cost models agree bit-for-bit on every
// array the allocator reads.
func requireModelEqual(t *testing.T, tag string, got, want *CostModel) {
	t.Helper()
	if got.clErr != nil || want.clErr != nil {
		t.Fatalf("%s: clErr got=%v want=%v", tag, got.clErr, want.clErr)
	}
	for _, f := range []struct {
		name string
		a, b any
	}{
		{"IDs", got.IDs, want.IDs},
		{"CL", got.CL, want.CL},
		{"CLUnit", got.CLUnit, want.CLUnit},
		{"NL", got.NL, want.NL},
		{"NLUnit", got.NLUnit, want.NLUnit},
		{"Cores", got.Cores, want.Cores},
		{"LoadM1", got.LoadM1, want.LoadM1},
	} {
		if !reflect.DeepEqual(f.a, f.b) {
			t.Fatalf("%s: %s diverged:\nincremental: %v\nrebuild:     %v", tag, f.name, f.a, f.b)
		}
	}
}

// TestCostModelUpdateNodesMatchesRebuild chains randomized in-place
// updates — each step mutates the dynamic attributes of k nodes and
// applies UpdateNodes — and checks every intermediate model is
// bit-identical to NewCostModel rebuilt from scratch on that snapshot.
func TestCostModelUpdateNodesMatchesRebuild(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		r := rng.New(seed * 104729)
		n := 5 + r.Intn(30)
		snap := randomEquivSnapshot(r, n)
		useForecast := seed%2 == 0
		w := PaperWeights()
		m := NewCostModel(snap, w, useForecast)
		if m.clErr != nil {
			t.Fatalf("seed %d: base model: %v", seed, m.clErr)
		}
		for step := 0; step < 8; step++ {
			next := snap.Clone()
			next.Taken = next.Taken.Add(time.Second)
			k := 1 + r.Intn(4)
			var changed []int
			for i := 0; i < k; i++ {
				id := m.IDs[r.Intn(len(m.IDs))]
				mutateDynamicAttrs(r, next, id)
				changed = append(changed, id)
			}
			u, ok := m.UpdateNodes(next, changed)
			if !ok {
				t.Fatalf("seed %d step %d: UpdateNodes refused a pure dynamic-attr change", seed, step)
			}
			requireModelEqual(t, fmt.Sprintf("seed %d step %d", seed, step),
				u, NewCostModel(next, w, useForecast))
			snap, m = next, u
		}
	}
}

// TestCostModelUpdateNodesFallsBack pins the conditions under which the
// incremental path must refuse and force a full rebuild.
func TestCostModelUpdateNodesFallsBack(t *testing.T) {
	r := rng.New(7)
	snap := randomEquivSnapshot(r, 10)
	w := PaperWeights()
	m := NewCostModel(snap, w, false)

	// Unknown node ID.
	if _, ok := m.UpdateNodes(snap.Clone(), []int{999999}); ok {
		t.Fatal("UpdateNodes accepted a node outside the model")
	}

	// Changed node missing from the new snapshot.
	gone := snap.Clone()
	delete(gone.Nodes, m.IDs[0])
	if _, ok := m.UpdateNodes(gone, []int{m.IDs[0]}); ok {
		t.Fatal("UpdateNodes accepted a node with no published state")
	}

	// Membership change: a node died, the live set differs.
	died := snap.Clone()
	died.Livehosts = died.Livehosts[1:]
	if _, ok := m.UpdateNodes(died, []int{m.IDs[1]}); ok {
		t.Fatal("UpdateNodes accepted a changed live set")
	}

	// Broken base model (no attribute rows) can never update in place.
	broken := &CostModel{Weights: w}
	if _, ok := broken.UpdateNodes(snap, nil); ok {
		t.Fatal("UpdateNodes ran on a model with no attrRows")
	}
}
