package alloc

import (
	"fmt"
	"math"
)

// ConstrainedAlloc is AllocateConstrained's answer, expressed in dense
// model indices so high-rate callers (the policy-fidelity simulator)
// never touch node-ID maps on the hot path.
type ConstrainedAlloc struct {
	// Start is the winning seed's dense index (v in Algorithm 1).
	Start int
	// Nodes are the selected dense indices in addition order; Counts[k]
	// ranks are placed on Nodes[k]. Both alias the scratch and are valid
	// only until the next AllocateConstrained call with the same scratch
	// — callers copy what they keep.
	Nodes  []int
	Counts []int
	// ComputeCost is C_G = Σ CLUnit over the selection; NetworkCost is
	// N_G = Σ pairwise NLUnit over the selection; TotalLoad is Equation 4
	// after normalization across the generated candidates.
	ComputeCost float64
	NetworkCost float64
	TotalLoad   float64
}

// AllocScratch owns the reusable buffers of one AllocateConstrained
// caller (one simulation run or sweep worker). The zero value is ready;
// buffers grow to the model size on first use and are reused afterwards,
// so steady-state decisions allocate nothing.
type AllocScratch struct {
	gen       genScratch
	costC     []float64
	costN     []float64
	allStarts []int
	cand      []int
	alphaCL   []float64
}

// AllocateConstrained runs Algorithms 1-2 over a prebuilt cost model
// with caller-supplied per-node capacities and a bounded start set: the
// seam the policy-fidelity simulator drives per scheduling decision.
//
// caps[i] is the rank capacity of dense index i (0 excludes the node —
// e.g. busy under exclusive allocation), replacing the model's own
// Equation 3 estimate. starts lists the dense indices to seed Algorithm
// 1 at; empty means every node (the paper's exhaustive sweep — on dense
// models then bit-identical in selection and costs to
// AllocateExplainModel's winner). With a k-bounded start set, Algorithm
// 2's normalization runs over those k candidates only, so the result is
// the paper's heuristic restricted to k seeds.
//
// The model must already be priced with the request's weights and
// forecast flag — this path never rebuilds a model. Results are written
// into sc's reused buffers (see ConstrainedAlloc); the call allocates
// nothing in steady state.
func (p NetLoadAware) AllocateConstrained(m *CostModel, req Request, caps []int, starts []int, sc *AllocScratch) (ConstrainedAlloc, error) {
	req, err := req.Validate()
	if err != nil {
		return ConstrainedAlloc{}, err
	}
	if !m.matches(req) {
		return ConstrainedAlloc{}, fmt.Errorf("alloc: constrained allocate: model priced with different weights or forecast flag than the request")
	}
	n := m.Len()
	if n == 0 {
		return ConstrainedAlloc{}, fmt.Errorf("alloc: net-load-aware: no live monitored nodes")
	}
	if err := m.CLErr(); err != nil {
		return ConstrainedAlloc{}, err
	}
	if err := m.NLErr(); err != nil {
		return ConstrainedAlloc{}, err
	}
	if len(caps) != n {
		return ConstrainedAlloc{}, fmt.Errorf("alloc: constrained allocate: %d capacities for %d nodes", len(caps), n)
	}
	// Zero-capacity nodes can never be selected — the old formulation
	// still paid to cost, heap, and pop them on every start. Filter them
	// once per call instead; the selection is unchanged because lessIdx
	// breaks cost ties by index and the candidate list stays in index
	// order, so the surviving nodes pop in exactly the same order.
	if cap(sc.cand) < n {
		sc.cand = make([]int, 0, n)
	}
	cand := sc.cand[:0]
	for i, c := range caps {
		if c > 0 {
			cand = append(cand, i)
		}
	}
	sc.cand = cand
	// α·CL(u) is the start-independent half of every addition cost; price
	// it once per call instead of once per seed.
	if cap(sc.alphaCL) < len(cand) {
		sc.alphaCL = make([]float64, len(cand))
	}
	alphaCL := sc.alphaCL[:len(cand)]
	for s, u := range cand {
		alphaCL[s] = req.Alpha * m.CLUnit[u]
	}
	if len(starts) == 0 {
		if cap(sc.allStarts) < n {
			sc.allStarts = make([]int, n)
		}
		starts = sc.allStarts[:n]
		for i := range starts {
			starts[i] = i
		}
	}
	k := len(starts)
	if cap(sc.costC) < k {
		sc.costC = make([]float64, k)
		sc.costN = make([]float64, k)
	}
	costC, costN := sc.costC[:k], sc.costN[:k]

	// Algorithm 1, cost pass: one greedy sub-graph per seed, recording
	// only C_G and N_G (the selection itself is regenerated for the
	// winner, trading one extra generation for zero per-candidate
	// materialization).
	sumC, sumN := 0.0, 0.0
	for s, v := range starts {
		if v < 0 || v >= n {
			return ConstrainedAlloc{}, fmt.Errorf("alloc: constrained allocate: start index %d outside [0,%d)", v, n)
		}
		cG, nG := p.generateConstrained(m, v, caps, cand, alphaCL, req, &sc.gen)
		costC[s], costN[s] = cG, nG
		sumC += cG
		sumN += nG
	}

	// Algorithm 2 over the seeded candidates: same normalization and
	// strict-< tie-breaking as scoreCandidatesNormed, so with all starts
	// the winner matches the exhaustive path.
	best := -1
	minTotal := math.Inf(1)
	for s := range starts {
		cNorm, nNorm := 0.0, 0.0
		if sumC > 0 {
			cNorm = costC[s] / sumC
		}
		if sumN > 0 {
			nNorm = costN[s] / sumN
		}
		total := req.Alpha*cNorm + req.Beta*nNorm
		if total < minTotal {
			minTotal = total
			best = s
		}
	}
	if best < 0 {
		return ConstrainedAlloc{}, fmt.Errorf("alloc: net-load-aware: no candidate produced")
	}
	cG, nG := p.generateConstrained(m, starts[best], caps, cand, alphaCL, req, &sc.gen)
	if len(sc.gen.used) == 0 {
		return ConstrainedAlloc{}, fmt.Errorf("alloc: constrained allocate: no capacity for %d procs", req.Procs)
	}
	return ConstrainedAlloc{
		Start:       starts[best],
		Nodes:       sc.gen.used,
		Counts:      sc.gen.counts,
		ComputeCost: cG,
		NetworkCost: nG,
		TotalLoad:   minTotal,
	}, nil
}

// generateConstrained is Algorithm 1 seeded at dense index v under
// caller-supplied capacities: the same heap-pop selection (and so the
// same chosen set, in the same order) as generate, pricing network load
// through PairNLUnit so it works on dense and sharded models alike. It
// costs and heaps only cand — the positive-capacity dense indices, in
// ascending order — so a mostly-busy cluster prices a fraction of its
// nodes per seed. alphaCL[s] is the precomputed α·CL(cand[s]) term
// shared by every seed. The heap holds positions into cand; position
// ties reproduce index ties because cand is sorted. The selection is
// left in sc.used/sc.counts; the returns are C_G and N_G.
func (p NetLoadAware) generateConstrained(m *CostModel, v int, caps, cand []int, alphaCL []float64, req Request, sc *genScratch) (cG, nG float64) {
	n := m.Len()
	f := len(cand)
	sc.grow(n)
	addCost := sc.addCost[:f]
	best := -1
	if m.NLUnit != nil {
		nlRow := m.NLUnit[v*n : (v+1)*n]
		for s, u := range cand {
			if u == v {
				addCost[s] = 0 // A_v(v) = 0
			} else {
				addCost[s] = alphaCL[s] + req.Beta*nlRow[u]
			}
			if best < 0 || addCost[s] < addCost[best] {
				best = s
			}
		}
	} else {
		for s, u := range cand {
			if u == v {
				addCost[s] = 0
			} else {
				addCost[s] = alphaCL[s] + req.Beta*m.PairNLUnit(v, u)
			}
			if best < 0 || addCost[s] < addCost[best] {
				best = s
			}
		}
	}
	// The first pop is always the (cost, index)-minimum; when that node
	// alone covers the request — the common case of small jobs — the
	// whole selection is that one node and no ordering work is needed.
	if best >= 0 && caps[cand[best]] >= req.Procs {
		i := cand[best]
		sc.used = append(sc.used[:0], i)
		sc.counts = append(sc.counts[:0], req.Procs)
		return m.CLUnit[i], 0
	}
	// General case: the old formulation heapified all f candidates and
	// popped in ascending (cost, index) order until capacity covered the
	// request — i.e. it used the minimal covering prefix of that order.
	// Compute exactly that prefix with a bounded max-heap instead: scan
	// once, keep a candidate only while it beats the kept maximum or the
	// kept set does not cover yet, and evict the maximum while coverage
	// survives without it. Most candidates cost one comparison against
	// the heap root instead of participating in a full heapify.
	h := sc.heap[:0]
	total := 0
	for s := range addCost {
		if total >= req.Procs && !lessIdx(addCost, s, h[0]) {
			continue
		}
		h = append(h, s)
		siftUpMaxIdx(h, len(h)-1, addCost)
		total += caps[cand[s]]
		for len(h) > 1 && total-caps[cand[h[0]]] >= req.Procs {
			total -= caps[cand[h[0]]]
			last := len(h) - 1
			h[0] = h[last]
			h = h[:last]
			siftDownMaxIdx(h, 0, addCost)
		}
	}
	// Drain the max-heap back to front to recover ascending order — the
	// exact pop order of the old formulation.
	sel := sc.sel[:len(h)]
	for k := len(h) - 1; k >= 0; k-- {
		sel[k] = h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		if len(h) > 0 {
			siftDownMaxIdx(h, 0, addCost)
		}
	}
	used, counts := sc.used[:0], sc.counts[:0]
	remaining := req.Procs
	for _, s := range sel {
		if remaining <= 0 {
			break
		}
		i := cand[s]
		take := caps[i]
		if take > remaining {
			take = remaining
		}
		used = append(used, i)
		counts = append(counts, take)
		remaining -= take
	}
	for remaining > 0 && len(used) > 0 {
		for k := range used {
			if remaining == 0 {
				break
			}
			counts[k]++
			remaining--
		}
	}
	sc.used, sc.counts = used, counts
	for _, i := range used {
		cG += m.CLUnit[i]
	}
	if m.NLUnit != nil {
		for i := 0; i < len(used); i++ {
			for j := i + 1; j < len(used); j++ {
				nG += m.NLUnit[used[i]*n+used[j]]
			}
		}
	} else {
		for i := 0; i < len(used); i++ {
			for j := i + 1; j < len(used); j++ {
				nG += m.PairNLUnit(used[i], used[j])
			}
		}
	}
	return cG, nG
}
