package alloc

import (
	"math"
	"testing"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
	"nlarm/internal/stats"
)

var t0 = time.Date(2020, 3, 2, 8, 0, 0, 0, time.UTC)

// synthSnapshot builds a fully measured snapshot of n nodes on a virtual
// line: nodes i and j have latency proportional to |i-j| and bandwidth
// complement proportional to |i-j|, so closeness == connectivity. Node
// loads are given per node.
func synthSnapshot(loads []float64) *metrics.Snapshot {
	n := len(loads)
	snap := &metrics.Snapshot{
		Taken:     t0,
		Nodes:     make(map[int]metrics.NodeAttrs),
		Latency:   make(map[metrics.PairKey]metrics.PairLatency),
		Bandwidth: make(map[metrics.PairKey]metrics.PairBandwidth),
	}
	for i := 0; i < n; i++ {
		snap.Livehosts = append(snap.Livehosts, i)
		na := metrics.NodeAttrs{
			NodeID: i, Hostname: "n", Timestamp: t0,
			Cores: 12, FreqGHz: 4.6, TotalMemMB: 16384,
		}
		na.CPULoad = stats.Windowed{M1: loads[i], M5: loads[i], M15: loads[i]}
		na.CPUUtilPct = stats.Windowed{M1: loads[i] * 10, M5: loads[i] * 10, M15: loads[i] * 10}
		na.FlowRateBps = stats.Windowed{M1: 1e6, M5: 1e6, M15: 1e6}
		na.AvailMemMB = stats.Windowed{M1: 12000, M5: 12000, M15: 12000}
		snap.Nodes[i] = na
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := float64(j - i)
			key := metrics.Pair(i, j)
			snap.Latency[key] = metrics.PairLatency{
				U: i, V: j, Timestamp: t0,
				Last:  time.Duration(80+20*d) * time.Microsecond,
				Mean1: time.Duration(80+20*d) * time.Microsecond,
			}
			snap.Bandwidth[key] = metrics.PairBandwidth{
				U: i, V: j, Timestamp: t0,
				AvailBps: 120e6 - 10e6*d,
				PeakBps:  125e6,
			}
		}
	}
	return snap
}

func uniformLoads(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestPaperWeightsSumToOne(t *testing.T) {
	w := PaperWeights()
	sum := w.CPULoad + w.CPUUtil + w.FlowRate + w.AvailMem + w.Cores + w.Freq + w.TotalMem + w.Users
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("compute weights sum %g", sum)
	}
	if math.Abs(w.Latency+w.Bandwidth-1) > 1e-12 {
		t.Fatalf("network weights sum %g", w.Latency+w.Bandwidth)
	}
	if w.Latency != 0.25 || w.Bandwidth != 0.75 {
		t.Fatalf("w_lt/w_bw = %g/%g, paper uses 0.25/0.75", w.Latency, w.Bandwidth)
	}
}

func TestComputeLoadsOrdering(t *testing.T) {
	snap := synthSnapshot([]float64{0.1, 2.0, 5.0, 0.5})
	cl, err := ComputeLoads(snap, []int{0, 1, 2, 3}, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	// Identical nodes except load: CL must order by load.
	if !(cl[0] < cl[3] && cl[3] < cl[1] && cl[1] < cl[2]) {
		t.Fatalf("compute loads not load-ordered: %v", cl)
	}
}

func TestComputeLoadsHeterogeneousHardware(t *testing.T) {
	snap := synthSnapshot(uniformLoads(2, 1.0))
	// Make node 1 a slow 8-core machine.
	na := snap.Nodes[1]
	na.Cores = 8
	na.FreqGHz = 2.8
	snap.Nodes[1] = na
	cl, err := ComputeLoads(snap, []int{0, 1}, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	if cl[0] >= cl[1] {
		t.Fatalf("faster node should cost less: %v", cl)
	}
}

func TestComputeLoadsMissingNode(t *testing.T) {
	snap := synthSnapshot(uniformLoads(2, 1))
	if _, err := ComputeLoads(snap, []int{0, 5}, PaperWeights()); err == nil {
		t.Fatal("missing node accepted")
	}
}

func TestNetworkLoadsOrdering(t *testing.T) {
	snap := synthSnapshot(uniformLoads(5, 0.5))
	nl, err := NetworkLoads(snap, []int{0, 1, 2, 3, 4}, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	// Closer pairs have lower network load.
	if !(nl[metrics.Pair(0, 1)] < nl[metrics.Pair(0, 2)] && nl[metrics.Pair(0, 2)] < nl[metrics.Pair(0, 4)]) {
		t.Fatalf("network loads not distance-ordered: %v", nl)
	}
}

func TestNetworkLoadsUnmeasuredPairPricedWorst(t *testing.T) {
	snap := synthSnapshot(uniformLoads(4, 0.5))
	delete(snap.Bandwidth, metrics.Pair(0, 1))
	nl, err := NetworkLoads(snap, []int{0, 1, 2, 3}, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	// The unmeasured near pair must not be cheaper than any measured pair.
	for k, v := range nl {
		if k == metrics.Pair(0, 1) {
			continue
		}
		if nl[metrics.Pair(0, 1)] < v {
			t.Fatalf("unmeasured pair cheaper than %v: %v", k, nl)
		}
	}
}

func TestNetworkLoadsNoMeasurements(t *testing.T) {
	snap := synthSnapshot(uniformLoads(3, 0.5))
	snap.Bandwidth = map[metrics.PairKey]metrics.PairBandwidth{}
	if _, err := NetworkLoads(snap, []int{0, 1, 2}, PaperWeights()); err == nil {
		t.Fatal("no measurements accepted")
	}
}

func TestEffectiveProcsEquation3(t *testing.T) {
	na := metrics.NodeAttrs{Cores: 12}
	cases := []struct {
		load float64
		want int
	}{
		{0, 12},   // idle: all cores
		{0.3, 11}, // ceil(0.3)=1 -> 12-1
		{3.2, 8},  // ceil=4 -> 12-4
		{11, 1},   // ceil=11 -> 12-11
		{12, 12},  // ceil=12 %12 = 0 -> 12 (the paper's modulo wrap)
		{14.5, 9}, // ceil=15 %12 = 3 -> 9
	}
	for _, c := range cases {
		na.CPULoad.M1 = c.load
		if got := EffectiveProcs(na, 0); got != c.want {
			t.Errorf("EffectiveProcs(load=%g) = %d, want %d", c.load, got, c.want)
		}
	}
	// ppn override wins.
	na.CPULoad.M1 = 3
	if got := EffectiveProcs(na, 4); got != 4 {
		t.Fatalf("ppn override = %d", got)
	}
}

func TestEffectiveProcsZeroCores(t *testing.T) {
	// Regression: a node publishing Cores == 0 (or a garbage negative
	// count) used to panic Equation 3 with an integer mod by zero. Such a
	// node is treated as having exactly one process slot.
	for _, cores := range []int{0, -3} {
		na := metrics.NodeAttrs{Cores: cores}
		for _, load := range []float64{0, 0.5, 7, 100} {
			na.CPULoad.M1 = load
			if got := EffectiveProcs(na, 0); got != 1 {
				t.Errorf("EffectiveProcs(cores=%d, load=%g) = %d, want 1", cores, load, got)
			}
		}
		// An explicit ppn still wins.
		if got := EffectiveProcs(na, 4); got != 4 {
			t.Errorf("EffectiveProcs(cores=%d, ppn=4) = %d, want 4", cores, got)
		}
	}
	// A negative load (corrupt measurement) must not panic either.
	na := metrics.NodeAttrs{Cores: 8}
	na.CPULoad.M1 = -2.5
	if got := EffectiveProcs(na, 0); got != 8 {
		t.Errorf("EffectiveProcs(cores=8, load=-2.5) = %d, want 8", got)
	}
}

func TestEffectiveProcsAlwaysPositive(t *testing.T) {
	na := metrics.NodeAttrs{Cores: 8}
	for load := 0.0; load < 40; load += 0.7 {
		na.CPULoad.M1 = load
		if got := EffectiveProcs(na, 0); got < 1 || got > 8 {
			t.Fatalf("EffectiveProcs(load=%g) = %d out of [1,8]", load, got)
		}
	}
}

func TestRequestValidate(t *testing.T) {
	if _, err := (Request{Procs: 0}).Validate(); err == nil {
		t.Fatal("zero procs accepted")
	}
	if _, err := (Request{Procs: 4, PPN: -1}).Validate(); err == nil {
		t.Fatal("negative ppn accepted")
	}
	if _, err := (Request{Procs: 4, Alpha: 0.3, Beta: 0.3}).Validate(); err == nil {
		t.Fatal("α+β != 1 accepted")
	}
	if _, err := (Request{Procs: 4, Alpha: -0.5, Beta: 1.5}).Validate(); err == nil {
		t.Fatal("negative α accepted")
	}
	r, err := (Request{Procs: 4}).Validate()
	if err != nil {
		t.Fatal(err)
	}
	if r.Alpha != 0.5 || r.Beta != 0.5 {
		t.Fatalf("default α/β = %g/%g", r.Alpha, r.Beta)
	}
	if r.Weights == (Weights{}) {
		t.Fatal("weights not defaulted")
	}
}

func TestAllocationHelpers(t *testing.T) {
	a := Allocation{
		Nodes: []int{3, 7},
		Procs: map[int]int{3: 4, 7: 2},
	}
	if a.TotalProcs() != 6 {
		t.Fatalf("TotalProcs = %d", a.TotalProcs())
	}
	ranks := a.RankNodes()
	if len(ranks) != 6 {
		t.Fatalf("RankNodes = %v", ranks)
	}
	for r := 0; r < 4; r++ {
		if ranks[r] != 3 {
			t.Fatalf("rank %d on %d", r, ranks[r])
		}
	}
}

func TestFillRoundRobinSpill(t *testing.T) {
	order := []int{0, 1}
	caps := map[int]int{0: 2, 1: 2}
	nodes, procs := fill(order, caps, 7)
	if len(nodes) != 2 {
		t.Fatalf("nodes = %v", nodes)
	}
	if procs[0]+procs[1] != 7 {
		t.Fatalf("procs = %v", procs)
	}
	// Spill distributed round-robin: 2+2 capacity, 3 extra -> 4/3.
	if procs[0] != 4 || procs[1] != 3 {
		t.Fatalf("round-robin spill = %v", procs)
	}
}

func allPolicies() []Policy {
	return []Policy{Random{}, Sequential{}, LoadAware{}, NetLoadAware{}}
}

func TestPoliciesSatisfyRequest(t *testing.T) {
	snap := synthSnapshot(uniformLoads(10, 0.5))
	req := Request{Procs: 16, PPN: 4, Alpha: 0.3, Beta: 0.7}
	r := rng.New(1)
	for _, pol := range allPolicies() {
		a, err := pol.Allocate(snap, req, r.Split())
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if a.TotalProcs() != 16 {
			t.Fatalf("%s allocated %d procs", pol.Name(), a.TotalProcs())
		}
		if len(a.Nodes) != 4 {
			t.Fatalf("%s used %d nodes at ppn 4", pol.Name(), len(a.Nodes))
		}
		seen := map[int]bool{}
		for _, n := range a.Nodes {
			if seen[n] {
				t.Fatalf("%s selected node %d twice", pol.Name(), n)
			}
			seen[n] = true
			if !snap.Alive(n) {
				t.Fatalf("%s selected dead node %d", pol.Name(), n)
			}
		}
	}
}

func TestPoliciesOversubscribeWhenClusterTooSmall(t *testing.T) {
	snap := synthSnapshot(uniformLoads(3, 0.5))
	req := Request{Procs: 20, PPN: 4, Alpha: 0.5, Beta: 0.5}
	r := rng.New(2)
	for _, pol := range allPolicies() {
		a, err := pol.Allocate(snap, req, r.Split())
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if a.TotalProcs() != 20 {
			t.Fatalf("%s allocated %d of 20 requested", pol.Name(), a.TotalProcs())
		}
	}
}

func TestPoliciesFailOnEmptySnapshot(t *testing.T) {
	snap := &metrics.Snapshot{Taken: t0, Nodes: map[int]metrics.NodeAttrs{}}
	r := rng.New(3)
	for _, pol := range allPolicies() {
		if _, err := pol.Allocate(snap, Request{Procs: 4}, r.Split()); err == nil {
			t.Fatalf("%s allocated from empty snapshot", pol.Name())
		}
	}
}

func TestLoadAwarePicksLightestNodes(t *testing.T) {
	loads := []float64{5, 0.1, 4, 0.2, 3, 0.3, 2, 0.4}
	snap := synthSnapshot(loads)
	a, err := LoadAware{}.Allocate(snap, Request{Procs: 8, PPN: 4}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{1: true, 3: true}
	for _, n := range a.Nodes {
		if !want[n] {
			t.Fatalf("load-aware picked %v, want nodes 1 and 3", a.Nodes)
		}
	}
}

func TestSequentialPicksConsecutive(t *testing.T) {
	snap := synthSnapshot(uniformLoads(10, 0.5))
	a, err := Sequential{}.Allocate(snap, Request{Procs: 12, PPN: 4}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Nodes must be consecutive mod 10 from some start.
	for i := 1; i < len(a.Nodes); i++ {
		if a.Nodes[i] != (a.Nodes[i-1]+1)%10 {
			t.Fatalf("sequential nodes not consecutive: %v", a.Nodes)
		}
	}
}

func TestRandomVariesWithStream(t *testing.T) {
	snap := synthSnapshot(uniformLoads(20, 0.5))
	seen := map[int]bool{}
	for seed := uint64(0); seed < 10; seed++ {
		a, err := Random{}.Allocate(snap, Request{Procs: 4, PPN: 4}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		seen[a.Nodes[0]] = true
	}
	if len(seen) < 3 {
		t.Fatalf("random policy barely varies: %v", seen)
	}
}

func TestNetLoadAwarePrefersConnectedGroup(t *testing.T) {
	// All loads equal: only network distinguishes. The best 2-node group
	// under the line metric is a pair of adjacent nodes.
	snap := synthSnapshot(uniformLoads(8, 1.0))
	a, err := NetLoadAware{}.Allocate(snap, Request{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != 2 {
		t.Fatalf("nodes = %v", a.Nodes)
	}
	d := a.Nodes[0] - a.Nodes[1]
	if d != 1 && d != -1 {
		t.Fatalf("net-load-aware picked non-adjacent pair %v", a.Nodes)
	}
}

func TestNetLoadAwareTradesLoadForConnectivity(t *testing.T) {
	// Nodes 0,1 lightly loaded but far apart from everything; nodes 5,6
	// moderately loaded and adjacent. With β high the adjacent pair wins
	// even though its load is higher; 0 and 1 are adjacent too, so place
	// the light nodes at opposite ends instead.
	loads := []float64{0.1, 3, 3, 3, 3, 0.8, 0.8, 0.1}
	snap := synthSnapshot(loads)
	// With β=0.9 the chosen pair must be adjacent (connectivity dominates);
	// the far-apart light pair {0,7} must lose.
	a, err := NetLoadAware{}.Allocate(snap, Request{Procs: 8, PPN: 4, Alpha: 0.1, Beta: 0.9}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Nodes) != 2 {
		t.Fatalf("nodes = %v", a.Nodes)
	}
	if d := a.Nodes[0] - a.Nodes[1]; d != 1 && d != -1 {
		t.Fatalf("β=0.9 picked non-adjacent pair %v", a.Nodes)
	}
	// With α=0.9 the lightest nodes win regardless of distance.
	a2, err := NetLoadAware{}.Allocate(snap, Request{Procs: 8, PPN: 4, Alpha: 0.9, Beta: 0.1}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	got2 := map[int]bool{}
	for _, n := range a2.Nodes {
		got2[n] = true
	}
	if !got2[0] || !got2[7] {
		t.Fatalf("α=0.9 picked %v, want the lightest nodes {0,7}", a2.Nodes)
	}
}

func TestNetLoadAwareCandidates(t *testing.T) {
	snap := synthSnapshot(uniformLoads(6, 0.5))
	req := Request{Procs: 8, PPN: 4, Alpha: 0.3, Beta: 0.7}
	best, cands, err := NetLoadAware{}.AllocateExplain(snap, req)
	if err != nil {
		t.Fatal(err)
	}
	// Algorithm 1 generates one candidate per live node.
	if len(cands) != 6 {
		t.Fatalf("%d candidates, want 6", len(cands))
	}
	for _, c := range cands {
		// Every candidate includes its start node.
		found := false
		for _, n := range c.Nodes {
			if n == c.Start {
				found = true
			}
		}
		if !found {
			t.Fatalf("candidate of %d does not contain its start: %v", c.Start, c.Nodes)
		}
		// Every candidate satisfies the request.
		total := 0
		for _, p := range c.Procs {
			total += p
		}
		if total != 8 {
			t.Fatalf("candidate procs = %d", total)
		}
		// Best has minimal total load.
		if c.TotalLoad < best.TotalLoad {
			t.Fatalf("candidate %d beats 'best': %g < %g", c.Start, c.TotalLoad, best.TotalLoad)
		}
	}
}

func TestNetLoadAwareDeterministicGivenSnapshot(t *testing.T) {
	snap := synthSnapshot([]float64{1, 0.2, 0.7, 0.1, 2, 0.4, 0.9, 0.3})
	req := Request{Procs: 12, PPN: 4, Alpha: 0.4, Beta: 0.6}
	a1, err := NetLoadAware{}.Allocate(snap, req, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := NetLoadAware{}.Allocate(snap, req, rng.New(999))
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Nodes) != len(a2.Nodes) {
		t.Fatal("NLA depends on random stream")
	}
	for i := range a1.Nodes {
		if a1.Nodes[i] != a2.Nodes[i] {
			t.Fatal("NLA depends on random stream")
		}
	}
}

func TestRescaleMean(t *testing.T) {
	m := map[int]float64{0: 2, 1: 4, 2: 6}
	RescaleMeanNode(m)
	sum := m[0] + m[1] + m[2]
	if math.Abs(sum-3) > 1e-12 {
		t.Fatalf("rescaled sum %g, want n (mean 1)", sum)
	}
	if !(m[0] < m[1] && m[1] < m[2]) {
		t.Fatal("rescaling broke ordering")
	}
	empty := map[int]float64{}
	RescaleMeanNode(empty) // must not panic
	zero := map[metrics.PairKey]float64{metrics.Pair(0, 1): 0}
	RescaleMeanPair(zero) // mean 0: must not divide by zero
	if zero[metrics.Pair(0, 1)] != 0 {
		t.Fatal("zero map mutated")
	}
}

func TestMonitoredLivehosts(t *testing.T) {
	snap := synthSnapshot(uniformLoads(4, 1))
	snap.Livehosts = []int{3, 1, 9} // 9 has no state
	ids := MonitoredLivehosts(snap)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("MonitoredLivehosts = %v", ids)
	}
}

func TestStaleAfter(t *testing.T) {
	snap := synthSnapshot(uniformLoads(2, 1))
	if StaleAfter(snap, time.Minute) {
		t.Fatal("fresh snapshot reported stale")
	}
	snap.Taken = t0.Add(10 * time.Minute)
	if !StaleAfter(snap, time.Minute) {
		t.Fatal("old snapshot reported fresh")
	}
}

// TestPoliciesRobustOnRandomSnapshots fuzzes all policies with arbitrary
// (but structurally valid) snapshots: random loads, random subsets of
// measured pairs, heterogeneous hardware. Every policy must either return
// a valid allocation covering the request or a clean error — never panic,
// never a short or duplicated allocation.
func TestPoliciesRobustOnRandomSnapshots(t *testing.T) {
	r := rng.New(0xFEED)
	policies := append(allPolicies(), GroupedNetLoadAware{GroupOf: func(n int) int { return n / 3 }})
	for trial := 0; trial < 60; trial++ {
		n := r.Intn(12) + 2
		loads := make([]float64, n)
		for i := range loads {
			loads[i] = r.Range(0, 20)
		}
		snap := synthSnapshot(loads)
		// Randomly drop some pair measurements (never all).
		for key := range snap.Bandwidth {
			if r.Bool(0.2) && len(snap.Bandwidth) > 1 {
				delete(snap.Bandwidth, key)
			}
		}
		// Random hardware heterogeneity.
		for id, na := range snap.Nodes {
			if r.Bool(0.3) {
				na.Cores = 8
				na.FreqGHz = 2.8
				snap.Nodes[id] = na
			}
		}
		procs := r.Intn(4*n) + 1
		ppn := r.Intn(5) // 0 = Equation 3 capacity
		req := Request{Procs: procs, PPN: ppn, Alpha: 0.3, Beta: 0.7}
		for _, pol := range policies {
			a, err := pol.Allocate(snap, req, r.Split())
			if err != nil {
				continue // clean refusal is acceptable
			}
			if a.TotalProcs() != procs {
				t.Fatalf("trial %d %s: allocated %d of %d", trial, pol.Name(), a.TotalProcs(), procs)
			}
			seen := map[int]bool{}
			for _, node := range a.Nodes {
				if seen[node] {
					t.Fatalf("trial %d %s: node %d duplicated", trial, pol.Name(), node)
				}
				seen[node] = true
				if node < 0 || node >= n {
					t.Fatalf("trial %d %s: node %d out of range", trial, pol.Name(), node)
				}
				if a.Procs[node] <= 0 {
					t.Fatalf("trial %d %s: node %d with %d procs", trial, pol.Name(), node, a.Procs[node])
				}
			}
		}
	}
}

// TestPoliciesWithEquation3Capacity exercises the ppn=0 path: capacities
// come from Equation 3 and depend on each node's load.
func TestPoliciesWithEquation3Capacity(t *testing.T) {
	// 12-core nodes with load 3.2 -> pc = 12 - ceil(3.2)%12 = 8.
	snap := synthSnapshot(uniformLoads(4, 3.2))
	r := rng.New(9)
	for _, pol := range allPolicies() {
		a, err := pol.Allocate(snap, Request{Procs: 16, Alpha: 0.5, Beta: 0.5}, r.Split())
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if a.TotalProcs() != 16 {
			t.Fatalf("%s allocated %d", pol.Name(), a.TotalProcs())
		}
		// 16 procs at 8 per node = 2 nodes.
		if len(a.Nodes) != 2 {
			t.Fatalf("%s used %d nodes (pc should be 8)", pol.Name(), len(a.Nodes))
		}
	}
}

func TestReservingPolicySpreadsBackToBackAllocations(t *testing.T) {
	// Uniform snapshot: plain load-aware picks the same nodes every time;
	// with reservations, consecutive grants must diverge.
	snap := synthSnapshot(uniformLoads(8, 0.5))
	req := Request{Procs: 8, PPN: 4, Alpha: 0.7, Beta: 0.3}
	r := rng.New(1)

	plain := LoadAware{}
	a1, err := plain.Allocate(snap, req, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	a2, err := plain.Allocate(snap, req, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	if !sameNodeSet(a1.Nodes, a2.Nodes) {
		t.Fatal("plain load-aware should repeat itself on a frozen snapshot")
	}

	res := NewReservingPolicy(LoadAware{}, time.Minute)
	b1, err := res.Allocate(snap, req, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := res.Allocate(snap, req, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range b2.Nodes {
		for _, m := range b1.Nodes {
			if n == m {
				t.Fatalf("reserving policy reused node %d: %v then %v", n, b1.Nodes, b2.Nodes)
			}
		}
	}
	if b1.Policy != "load-aware+reserve" {
		t.Fatalf("policy name %q", b1.Policy)
	}
	if res.Outstanding(snap.Taken) != 2 {
		t.Fatalf("outstanding %d", res.Outstanding(snap.Taken))
	}
}

func TestReservingPolicyExpiry(t *testing.T) {
	snap := synthSnapshot(uniformLoads(4, 0.5))
	res := NewReservingPolicy(LoadAware{}, time.Minute)
	r := rng.New(2)
	if _, err := res.Allocate(snap, Request{Procs: 8, PPN: 4}, r.Split()); err != nil {
		t.Fatal(err)
	}
	// Two minutes later the reservation is gone and the original snapshot
	// decides again.
	later := snap.Clone()
	later.Taken = snap.Taken.Add(2 * time.Minute)
	if _, err := res.Allocate(later, Request{Procs: 8, PPN: 4}, r.Split()); err != nil {
		t.Fatal(err)
	}
	if got := res.Outstanding(later.Taken); got != 1 {
		t.Fatalf("outstanding after expiry %d, want 1 (only the new grant)", got)
	}
	// Charging never mutates the caller's snapshot.
	if snap.Nodes[0].CPULoad.M1 != 0.5 {
		t.Fatal("reserving policy mutated the input snapshot")
	}
}

func TestReservingPolicyRequiresInner(t *testing.T) {
	p := &ReservingPolicy{}
	if _, err := p.Allocate(synthSnapshot(uniformLoads(2, 1)), Request{Procs: 2}, rng.New(1)); err == nil {
		t.Fatal("nil inner accepted")
	}
}

func sameNodeSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	set := map[int]bool{}
	for _, n := range a {
		set[n] = true
	}
	for _, n := range b {
		if !set[n] {
			return false
		}
	}
	return true
}
