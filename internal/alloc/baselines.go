package alloc

import (
	"fmt"
	"sort"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
)

// Random allocation "randomly selects the required number of nodes from
// active nodes" (§5).
type Random struct{}

// Name implements Policy.
func (Random) Name() string { return "random" }

// Allocate implements Policy.
func (Random) Allocate(snap *metrics.Snapshot, req Request, r *rng.Rand) (Allocation, error) {
	req, err := req.Validate()
	if err != nil {
		return Allocation{}, err
	}
	ids := MonitoredLivehosts(snap)
	if len(ids) == 0 {
		return Allocation{}, fmt.Errorf("alloc: random: no live monitored nodes")
	}
	order := append([]int(nil), ids...)
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	nodes, procs := fill(order, capacity(snap, ids, req), req.Procs)
	return Allocation{Policy: "random", Nodes: nodes, Procs: procs}, nil
}

// AllocateModel implements ModelPolicy. Random selection needs only the
// model's index set and capacities — the dense view costs nothing here,
// but sharing it keeps the broker's dispatch uniform.
func (Random) AllocateModel(m *CostModel, req Request, r *rng.Rand) (Allocation, error) {
	req, err := req.Validate()
	if err != nil {
		return Allocation{}, err
	}
	n := m.Len()
	if n == 0 {
		return Allocation{}, fmt.Errorf("alloc: random: no live monitored nodes")
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	used, counts := fillIdx(order, m.caps(req), req.Procs)
	nodes, procs := indicesToAllocation(m, used, counts)
	return Allocation{Policy: "random", Nodes: nodes, Procs: procs}, nil
}

// Sequential allocation "first selects a random node and adds neighboring
// nodes (topologically) as required" (§5) — users picking consecutive
// hostnames. Node IDs order the cluster by physical proximity, so
// consecutive IDs are topological neighbours; the scan wraps around.
type Sequential struct{}

// Name implements Policy.
func (Sequential) Name() string { return "sequential" }

// Allocate implements Policy.
func (Sequential) Allocate(snap *metrics.Snapshot, req Request, r *rng.Rand) (Allocation, error) {
	req, err := req.Validate()
	if err != nil {
		return Allocation{}, err
	}
	ids := MonitoredLivehosts(snap)
	if len(ids) == 0 {
		return Allocation{}, fmt.Errorf("alloc: sequential: no live monitored nodes")
	}
	sort.Ints(ids)
	start := r.Intn(len(ids))
	order := make([]int, 0, len(ids))
	for i := 0; i < len(ids); i++ {
		order = append(order, ids[(start+i)%len(ids)])
	}
	nodes, procs := fill(order, capacity(snap, ids, req), req.Procs)
	return Allocation{Policy: "sequential", Nodes: nodes, Procs: procs}, nil
}

// AllocateModel implements ModelPolicy. The model's index order is the
// ascending node-ID order, so a wrapped index scan from a random start
// is exactly the topological neighbour walk.
func (Sequential) AllocateModel(m *CostModel, req Request, r *rng.Rand) (Allocation, error) {
	req, err := req.Validate()
	if err != nil {
		return Allocation{}, err
	}
	n := m.Len()
	if n == 0 {
		return Allocation{}, fmt.Errorf("alloc: sequential: no live monitored nodes")
	}
	start := r.Intn(n)
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		order = append(order, (start+i)%n)
	}
	used, counts := fillIdx(order, m.caps(req), req.Procs)
	nodes, procs := indicesToAllocation(m, used, counts)
	return Allocation{Policy: "sequential", Nodes: nodes, Procs: procs}, nil
}

// LoadAware allocation "selects the group of nodes with minimal load"
// (§5): nodes sorted by compute load (Equation 1), network state ignored.
type LoadAware struct{}

// Name implements Policy.
func (LoadAware) Name() string { return "load-aware" }

// Allocate implements Policy.
func (LoadAware) Allocate(snap *metrics.Snapshot, req Request, r *rng.Rand) (Allocation, error) {
	req, err := req.Validate()
	if err != nil {
		return Allocation{}, err
	}
	ids := MonitoredLivehosts(snap)
	if len(ids) == 0 {
		return Allocation{}, fmt.Errorf("alloc: load-aware: no live monitored nodes")
	}
	cl, err := ComputeLoadsOpt(snap, ids, req.Weights, req.UseForecast)
	if err != nil {
		return Allocation{}, err
	}
	order := sortByCost(ids, cl)
	nodes, procs := fill(order, capacity(snap, ids, req), req.Procs)
	total := 0.0
	for _, n := range nodes {
		total += cl[n]
	}
	return Allocation{Policy: "load-aware", Nodes: nodes, Procs: procs, TotalLoad: total}, nil
}

// AllocateModel implements ModelPolicy: nodes ordered by the model's raw
// Equation 1 costs, network state ignored.
func (LoadAware) AllocateModel(m *CostModel, req Request, r *rng.Rand) (Allocation, error) {
	req, err := req.Validate()
	if err != nil {
		return Allocation{}, err
	}
	m = modelFor(m, req)
	if m.Len() == 0 {
		return Allocation{}, fmt.Errorf("alloc: load-aware: no live monitored nodes")
	}
	if err := m.CLErr(); err != nil {
		return Allocation{}, err
	}
	order := sortIdxByCost(m.CL)
	used, counts := fillIdx(order, m.caps(req), req.Procs)
	nodes, procs := indicesToAllocation(m, used, counts)
	total := 0.0
	for _, i := range used {
		total += m.CL[i]
	}
	return Allocation{Policy: "load-aware", Nodes: nodes, Procs: procs, TotalLoad: total}, nil
}

// indicesToAllocation maps dense fill results back to node IDs.
func indicesToAllocation(m *CostModel, used, counts []int) ([]int, map[int]int) {
	var nodes []int
	if len(used) > 0 {
		nodes = make([]int, len(used))
	}
	procs := make(map[int]int, len(used))
	for k, i := range used {
		nodes[k] = m.IDs[i]
		procs[m.IDs[i]] = counts[k]
	}
	return nodes, procs
}
