package alloc

import (
	"fmt"
	"sort"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
)

// Random allocation "randomly selects the required number of nodes from
// active nodes" (§5).
type Random struct{}

// Name implements Policy.
func (Random) Name() string { return "random" }

// Allocate implements Policy.
func (Random) Allocate(snap *metrics.Snapshot, req Request, r *rng.Rand) (Allocation, error) {
	req, err := req.Validate()
	if err != nil {
		return Allocation{}, err
	}
	ids := MonitoredLivehosts(snap)
	if len(ids) == 0 {
		return Allocation{}, fmt.Errorf("alloc: random: no live monitored nodes")
	}
	order := append([]int(nil), ids...)
	r.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	nodes, procs := fill(order, capacity(snap, ids, req), req.Procs)
	return Allocation{Policy: "random", Nodes: nodes, Procs: procs}, nil
}

// Sequential allocation "first selects a random node and adds neighboring
// nodes (topologically) as required" (§5) — users picking consecutive
// hostnames. Node IDs order the cluster by physical proximity, so
// consecutive IDs are topological neighbours; the scan wraps around.
type Sequential struct{}

// Name implements Policy.
func (Sequential) Name() string { return "sequential" }

// Allocate implements Policy.
func (Sequential) Allocate(snap *metrics.Snapshot, req Request, r *rng.Rand) (Allocation, error) {
	req, err := req.Validate()
	if err != nil {
		return Allocation{}, err
	}
	ids := MonitoredLivehosts(snap)
	if len(ids) == 0 {
		return Allocation{}, fmt.Errorf("alloc: sequential: no live monitored nodes")
	}
	sort.Ints(ids)
	start := r.Intn(len(ids))
	order := make([]int, 0, len(ids))
	for i := 0; i < len(ids); i++ {
		order = append(order, ids[(start+i)%len(ids)])
	}
	nodes, procs := fill(order, capacity(snap, ids, req), req.Procs)
	return Allocation{Policy: "sequential", Nodes: nodes, Procs: procs}, nil
}

// LoadAware allocation "selects the group of nodes with minimal load"
// (§5): nodes sorted by compute load (Equation 1), network state ignored.
type LoadAware struct{}

// Name implements Policy.
func (LoadAware) Name() string { return "load-aware" }

// Allocate implements Policy.
func (LoadAware) Allocate(snap *metrics.Snapshot, req Request, r *rng.Rand) (Allocation, error) {
	req, err := req.Validate()
	if err != nil {
		return Allocation{}, err
	}
	ids := MonitoredLivehosts(snap)
	if len(ids) == 0 {
		return Allocation{}, fmt.Errorf("alloc: load-aware: no live monitored nodes")
	}
	cl, err := ComputeLoadsOpt(snap, ids, req.Weights, req.UseForecast)
	if err != nil {
		return Allocation{}, err
	}
	order := sortByCost(ids, cl)
	nodes, procs := fill(order, capacity(snap, ids, req), req.Procs)
	total := 0.0
	for _, n := range nodes {
		total += cl[n]
	}
	return Allocation{Policy: "load-aware", Nodes: nodes, Procs: procs, TotalLoad: total}, nil
}
