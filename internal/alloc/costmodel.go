package alloc

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/stats"
)

// CostModel is the dense, index-contiguous view of one snapshot's
// Equation 1/2 costs. Live monitored node IDs are remapped once to
// 0..n-1 (index order == ascending ID order), compute loads live in a
// plain []float64 and network loads in a flat n×n matrix, so the
// allocation hot path (Algorithms 1-2 over every start node) runs on
// cache-friendly slices instead of hashing map keys per lookup.
//
// The model is immutable after construction and safe to share across
// goroutines and across back-to-back allocations against the same
// snapshot (the broker caches it keyed by snapshot fingerprint, weights,
// and forecast flag).
//
// CL/NL construction can fail independently (e.g. a snapshot with no
// pairwise measurements still supports the random and sequential
// policies, which never price the network). Failures are recorded per
// metric and surfaced by the policies that need that metric.
type CostModel struct {
	// Snap is the snapshot the model was derived from.
	Snap *metrics.Snapshot
	// Weights and Forecast record the pricing inputs (cache key parts).
	Weights  Weights
	Forecast bool
	// Taken mirrors Snap.Taken for cache bookkeeping.
	Taken time.Time

	// IDs maps index -> node ID, ascending (MonitoredLivehosts order).
	IDs []int
	idx map[int]int

	// CL holds raw Equation 1 costs by index; CLUnit is the mean-1
	// rescaled copy used by Algorithm 1 (see RescaleMeanNode).
	CL     []float64
	CLUnit []float64
	// NL holds raw Equation 2 costs as a flat n×n symmetric matrix
	// (NL[i*n+j]; diagonal zero); NLUnit is the mean-1 rescaled copy.
	NL     []float64
	NLUnit []float64

	// Cores and LoadM1 are the dense inputs of Equation 3 so capacity
	// evaluation needs no snapshot map lookups.
	Cores  []int
	LoadM1 []float64

	// attrRows retains each node's raw Equation 1 attribute vector (the
	// SAW input matrix, index order) so UpdateNodes can replace k rows
	// and re-normalize without touching the snapshot's other n-k nodes.
	attrRows [][]float64

	// rowArena and sawCol are scratch retained on models that serve as
	// UpdateNodesScratch / ChargeRanks destinations, so repeated
	// incremental updates reuse one row arena and one SAW column buffer
	// instead of allocating per call.
	rowArena []float64
	sawCol   []float64

	// colSums/colMaxs cache the raw per-column sums and maxima of
	// attrRows (numAttrCols wide, nil when stale), refreshed by repriceCL
	// and consumed by ChargeRanksAt: charging k rows then shifts the
	// cached stats by the k deltas instead of re-reducing all n rows.
	colSums []float64
	colMaxs []float64

	// shardOpts and shard carry the optional hierarchical network-load
	// layer (see NewCostModelSharded). A nil shard means the dense n×n
	// matrices above are authoritative; a non-nil shard means NL/NLUnit
	// are nil and network load is priced per shard.
	shardOpts ShardOptions
	shard     *shardModel

	clErr error
	nlErr error
}

// NewCostModel derives the dense cost model from snap: the ID->index
// remap, Equation 1 costs over all live monitored nodes, Equation 2
// costs over all pairs, and their mean-1 rescaled copies. Construction
// itself never fails; metric-specific failures are reported by CLErr and
// NLErr so policies that do not need the failing metric keep working.
func NewCostModel(snap *metrics.Snapshot, w Weights, useForecast bool) *CostModel {
	ids := MonitoredLivehosts(snap)
	n := len(ids)
	m := &CostModel{
		Snap:     snap,
		Weights:  w,
		Forecast: useForecast,
		Taken:    snap.Taken,
		IDs:      ids,
		idx:      make(map[int]int, n),
		Cores:    make([]int, n),
		LoadM1:   make([]float64, n),
	}
	for i, id := range ids {
		m.idx[id] = i
		na := snap.Nodes[id]
		m.Cores[i] = na.Cores
		m.LoadM1[i] = na.CPULoad.M1
	}
	m.attrRows, m.clErr = attrMatrix(snap, ids, useForecast)
	if m.clErr == nil {
		m.CL, m.clErr = sawFromRows(w, m.attrRows)
	}
	if m.clErr == nil && n > 0 {
		m.CLUnit = append([]float64(nil), m.CL...)
		rescaleMeanDense(m.CLUnit)
	}
	m.NL, m.nlErr = networkLoadsDense(snap, ids, w)
	if m.nlErr == nil && n > 0 {
		m.NLUnit = append([]float64(nil), m.NL...)
		rescaleMeanPairDense(m.NLUnit, n)
	}
	return m
}

// Len returns the number of live monitored nodes in the model.
func (m *CostModel) Len() int { return len(m.IDs) }

// IndexOf returns the dense index of node id.
func (m *CostModel) IndexOf(id int) (int, bool) {
	i, ok := m.idx[id]
	return i, ok
}

// CLErr reports whether Equation 1 costs are available.
func (m *CostModel) CLErr() error { return m.clErr }

// NLErr reports whether Equation 2 costs are available.
func (m *CostModel) NLErr() error { return m.nlErr }

// NetLoad returns the raw Equation 2 cost between indices i and j.
func (m *CostModel) NetLoad(i, j int) float64 { return m.NL[i*len(m.IDs)+j] }

// effProcs is Equation 3 on dense inputs; see EffectiveProcs. A node
// publishing a non-positive core count is treated as having one slot
// (the paper's formula would divide by zero).
func effProcs(cores int, loadM1 float64, ppn int) int {
	if ppn > 0 {
		return ppn
	}
	if cores <= 0 {
		return 1
	}
	load := int(math.Ceil(loadM1))
	if load < 0 {
		load = 0
	}
	return cores - load%cores
}

// caps evaluates Equation 3 for every node under the request.
func (m *CostModel) caps(req Request) []int {
	caps := make([]int, len(m.IDs))
	for i := range caps {
		caps[i] = effProcs(m.Cores[i], m.LoadM1[i], req.PPN)
	}
	return caps
}

// matches reports whether the model was priced with the request's
// weights and forecast flag (guard against stale cache handoffs).
func (m *CostModel) matches(req Request) bool {
	return m.Weights == req.Weights && m.Forecast == req.UseForecast
}

// modelFor returns m when it matches the validated request, otherwise
// rebuilds from the model's snapshot with m's sharding options preserved
// (callers hand the broker's cached model straight through; a mismatch
// means the cache key was wrong).
func modelFor(m *CostModel, req Request) *CostModel {
	if m.matches(req) {
		return m
	}
	return m.NewLike(m.Snap, req.Weights, req.UseForecast)
}

// sawAttrs is the fixed Equation 1 attribute schema under weights w.
func sawAttrs(w Weights) []stats.Attribute {
	return []stats.Attribute{
		{Name: "cpu_load", Weight: w.CPULoad, Criterion: stats.Minimize},
		{Name: "cpu_util", Weight: w.CPUUtil, Criterion: stats.Minimize},
		{Name: "flow_rate", Weight: w.FlowRate, Criterion: stats.Minimize},
		{Name: "avail_mem", Weight: w.AvailMem, Criterion: stats.Maximize},
		{Name: "cores", Weight: w.Cores, Criterion: stats.Maximize},
		{Name: "freq", Weight: w.Freq, Criterion: stats.Maximize},
		{Name: "total_mem", Weight: w.TotalMem, Criterion: stats.Maximize},
		{Name: "users", Weight: w.Users, Criterion: stats.Minimize},
	}
}

// Attribute-row geometry of the sawAttrs schema: the column count and
// the two columns reservation charging mutates (see ChargeRanks).
const (
	numAttrCols    = 8
	attrColCPULoad = 0
	attrColCPUUtil = 1
)

// attrRow is one node's raw Equation 1 attribute vector in sawAttrs
// column order.
func attrRow(na metrics.NodeAttrs, useForecast bool) []float64 {
	row := make([]float64, numAttrCols)
	attrRowInto(na, useForecast, row)
	return row
}

// attrRowInto fills a numAttrCols-wide row with na's raw Equation 1
// attribute vector — attrRow without the allocation.
func attrRowInto(na metrics.NodeAttrs, useForecast bool, row []float64) {
	cpuLoad := windowAvg(na.CPULoad)
	flowRate := windowAvg(na.FlowRateBps)
	if useForecast {
		if na.CPULoadForecast != nil {
			cpuLoad = na.CPULoadForecast.Value
		}
		if na.FlowRateForecast != nil {
			flowRate = na.FlowRateForecast.Value
		}
	}
	row[0] = cpuLoad
	row[1] = windowAvg(na.CPUUtilPct)
	row[2] = flowRate
	row[3] = windowAvg(na.AvailMemMB)
	row[4] = float64(na.Cores)
	row[5] = na.FreqGHz
	row[6] = na.TotalMemMB
	row[7] = float64(na.Users)
}

// attrMatrix builds the SAW input matrix for ids (in the given order).
func attrMatrix(snap *metrics.Snapshot, ids []int, useForecast bool) ([][]float64, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	matrix := make([][]float64, 0, len(ids))
	for _, id := range ids {
		na, ok := snap.Nodes[id]
		if !ok {
			return nil, fmt.Errorf("alloc: node %d has no published state", id)
		}
		matrix = append(matrix, attrRow(na, useForecast))
	}
	return matrix, nil
}

// sawFromRows runs the SAW scoring over a prebuilt attribute matrix.
func sawFromRows(w Weights, rows [][]float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	costs, err := stats.SAWCosts(sawAttrs(w), rows)
	if err != nil {
		return nil, fmt.Errorf("alloc: compute loads: %w", err)
	}
	return costs, nil
}

// computeLoadsDense evaluates Equation 1 for ids (in the given order)
// and returns the SAW costs indexed positionally — the dense core behind
// ComputeLoadsOpt.
func computeLoadsDense(snap *metrics.Snapshot, ids []int, w Weights, useForecast bool) ([]float64, error) {
	rows, err := attrMatrix(snap, ids, useForecast)
	if err != nil {
		return nil, err
	}
	return sawFromRows(w, rows)
}

// UpdateNodes derives the cost model for snap from m when snap differs
// from m's snapshot only in the dynamic attributes of the given node
// IDs: the network layer (NL/NLUnit, built from the unchanged matrices)
// is shared, the changed nodes' attribute rows are replaced, and the
// Equation 1 SAW scoring re-runs over the retained rows — an O(n·k +
// n·attrs) update instead of the O(n²) full rebuild, with bit-identical
// results because SAW normalization always re-accumulates every row in
// index order.
//
// ok=false means the precondition does not hold (different monitored
// node set, a changed ID the model does not know, a model built without
// usable CL data, or matrices that are not content-identical is the
// caller's responsibility) and the caller must rebuild from scratch.
func (m *CostModel) UpdateNodes(snap *metrics.Snapshot, changed []int) (*CostModel, bool) {
	if m.clErr != nil || m.attrRows == nil {
		return nil, false
	}
	ids := MonitoredLivehosts(snap)
	if !slices.Equal(ids, m.IDs) {
		return nil, false
	}
	n := len(ids)
	u := &CostModel{
		Snap:     snap,
		Weights:  m.Weights,
		Forecast: m.Forecast,
		Taken:    snap.Taken,
		IDs:      m.IDs,
		idx:      m.idx,
		NL:       m.NL,
		NLUnit:   m.NLUnit,
		nlErr:    m.nlErr,
		Cores:    append([]int(nil), m.Cores...),
		LoadM1:   append([]float64(nil), m.LoadM1...),
		attrRows: append([][]float64(nil), m.attrRows...),
		// The hierarchical NL layer derives only from the (unchanged)
		// pairwise matrices and the node set, so it is shared like NL.
		shardOpts: m.shardOpts,
		shard:     m.shard,
	}
	for _, id := range changed {
		i, ok := m.idx[id]
		if !ok {
			return nil, false
		}
		na, ok := snap.Nodes[id]
		if !ok {
			return nil, false
		}
		u.Cores[i] = na.Cores
		u.LoadM1[i] = na.CPULoad.M1
		u.attrRows[i] = attrRow(na, m.Forecast)
	}
	u.CL, u.clErr = sawFromRows(m.Weights, u.attrRows)
	if u.clErr == nil && n > 0 {
		u.CLUnit = append([]float64(nil), u.CL...)
		rescaleMeanDense(u.CLUnit)
	}
	return u, u.clErr == nil
}

// shareForUpdate points dst at m's immutable parts (IDs, index, the
// network layer) and refills its mutable buffers (Cores, LoadM1,
// attrRows) from m, reusing dst's backing arrays — the common setup of
// the scratch-reusing incremental update paths.
func (m *CostModel) shareForUpdate(snap *metrics.Snapshot, dst *CostModel) {
	dst.Snap = snap
	dst.Weights = m.Weights
	dst.Forecast = m.Forecast
	dst.Taken = snap.Taken
	dst.IDs = m.IDs
	dst.idx = m.idx
	dst.NL = m.NL
	dst.NLUnit = m.NLUnit
	dst.nlErr = m.nlErr
	dst.shardOpts = m.shardOpts
	dst.shard = m.shard
	dst.clErr = nil
	dst.Cores = append(dst.Cores[:0], m.Cores...)
	dst.LoadM1 = append(dst.LoadM1[:0], m.LoadM1...)
	dst.attrRows = append(dst.attrRows[:0], m.attrRows...)
}

// repriceCL re-runs the Equation 1 SAW scoring over dst's attribute rows
// into dst's reused CL/CLUnit buffers. False means the scoring failed
// (clErr is set and dst must not be used for compute-load pricing).
func repriceCL(dst *CostModel) bool {
	n := len(dst.IDs)
	if n == 0 {
		dst.CL, dst.CLUnit = dst.CL[:0], dst.CLUnit[:0]
		return true
	}
	if cap(dst.CL) < n {
		dst.CL = make([]float64, n)
	}
	if cap(dst.sawCol) < n {
		dst.sawCol = make([]float64, n)
	}
	costs, err := stats.SAWCostsInto(dst.CL[:n], dst.sawCol[:n], sawAttrs(dst.Weights), dst.attrRows)
	if err != nil {
		dst.clErr = fmt.Errorf("alloc: compute loads: %w", err)
		return false
	}
	dst.CL = costs
	if cap(dst.CLUnit) < n {
		dst.CLUnit = make([]float64, n)
	}
	dst.CLUnit = dst.CLUnit[:n]
	copy(dst.CLUnit, dst.CL)
	rescaleMeanDense(dst.CLUnit)
	dst.cacheColStats()
	return true
}

// cacheColStats (re)reduces attrRows into the colSums/colMaxs cache.
// The model must have at least one row.
func (m *CostModel) cacheColStats() {
	if cap(m.colSums) < numAttrCols {
		m.colSums = make([]float64, numAttrCols)
		m.colMaxs = make([]float64, numAttrCols)
	}
	m.colSums, m.colMaxs = m.colSums[:numAttrCols], m.colMaxs[:numAttrCols]
	copy(m.colSums, m.attrRows[0])
	copy(m.colMaxs, m.attrRows[0])
	for _, row := range m.attrRows[1:] {
		for c, v := range row {
			m.colSums[c] += v
			if v > m.colMaxs[c] {
				m.colMaxs[c] = v
			}
		}
	}
}

// denseIndex resolves a node ID to its dense index, shortcutting the
// map lookup on the identity layouts simulation models use (IDs[i]==i).
func (m *CostModel) denseIndex(id int) (int, bool) {
	if id >= 0 && id < len(m.IDs) && m.IDs[id] == id {
		return id, true
	}
	i, ok := m.idx[id]
	return i, ok
}

// UpdateNodesScratch is UpdateNodes writing into dst, a destination
// model whose buffers are reused across calls (nil allocates a fresh
// one). Passing dst == m updates the model in place, mutating its
// retained attribute rows — any model previously derived from m via
// ChargeRanks must be re-derived afterwards, not reused. When snap is
// m's own snapshot object (a simulator mutating one snapshot's node
// attributes in place) the monitored-set recheck is skipped: the caller
// asserts node membership did not change. Results are bit-identical to
// UpdateNodes.
func (m *CostModel) UpdateNodesScratch(snap *metrics.Snapshot, changed []int, dst *CostModel) (*CostModel, bool) {
	if m.clErr != nil || m.attrRows == nil {
		return nil, false
	}
	if snap != m.Snap {
		ids := MonitoredLivehosts(snap)
		if !slices.Equal(ids, m.IDs) {
			return nil, false
		}
	}
	if dst == nil {
		dst = &CostModel{}
	}
	inPlace := dst == m
	if inPlace {
		dst.Snap = snap
		dst.Taken = snap.Taken
	} else {
		m.shareForUpdate(snap, dst)
	}
	var arena []float64
	if !inPlace {
		// Pre-size the arena so carving rows never reallocates (a
		// reallocation would invalidate rows carved earlier in this call).
		need := len(changed) * numAttrCols
		if cap(dst.rowArena) < need {
			dst.rowArena = make([]float64, need)
		}
		arena = dst.rowArena[:0]
	}
	for _, id := range changed {
		i, ok := m.idx[id]
		if !ok {
			return nil, false
		}
		na, ok := snap.Nodes[id]
		if !ok {
			return nil, false
		}
		dst.Cores[i] = na.Cores
		dst.LoadM1[i] = na.CPULoad.M1
		row := dst.attrRows[i]
		if !inPlace {
			// m's retained row must stay untouched: carve a dst-owned row.
			arena = arena[:len(arena)+numAttrCols]
			row = arena[len(arena)-numAttrCols:]
			dst.attrRows[i] = row
		}
		attrRowInto(na, m.Forecast, row)
	}
	if !repriceCL(dst) {
		return nil, false
	}
	return dst, true
}

// RefreshAttrs is the deferred-pricing variant of an in-place
// UpdateNodesScratch: it folds the changed nodes' published attributes
// into the model and re-reduces the cached column stats, but skips the
// Equation 1 re-score, so CL/CLUnit keep their previous (now stale)
// values. It exists for callers that price every row they read through
// ChargeRanksAt — which scores from the attribute rows and column stats,
// never from the model's own CL — making the skipped re-score
// unobservable; the policy-fidelity simulator refreshes this way at the
// monitor cadence. snap must describe the same monitored set as the
// model (the in-place contract of UpdateNodesScratch).
func (m *CostModel) RefreshAttrs(snap *metrics.Snapshot, changed []int) bool {
	if m.clErr != nil || m.attrRows == nil {
		return false
	}
	m.Snap = snap
	m.Taken = snap.Taken
	for _, id := range changed {
		i, ok := m.denseIndex(id)
		if !ok {
			return false
		}
		na, ok := snap.Nodes[id]
		if !ok {
			return false
		}
		m.Cores[i] = na.Cores
		m.LoadM1[i] = na.CPULoad.M1
		attrRowInto(na, m.Forecast, m.attrRows[i])
	}
	if len(m.IDs) > 0 {
		// Full re-reduction, not an incremental shift: finished jobs move
		// rows down, so cached maxima cannot be maintained monotonically.
		m.cacheColStats()
	}
	return true
}

// ChargeRanks derives from m a model with busy-waiting MPI ranks charged
// onto the given nodes' published attributes: the reservation arithmetic
// of ReservingPolicy.Charged applied at the attribute-row level (CPU
// load plus the rank count, CPU utilization plus the occupancy share
// capped at 100% of the aggregated window) — no snapshot clone and no
// model rebuild, just k replaced rows and an Equation 1 re-score. ids
// are node IDs in application order (callers pass them sorted so float
// accumulation is deterministic) with ranks[k] charged onto ids[k];
// dst's buffers are reused across calls and dst must not be m. ok=false
// means m cannot be charged incrementally (no usable CL data, an
// unknown id, or a length mismatch) and the caller must fall back to
// Charged + NewLike.
func (m *CostModel) ChargeRanks(ids, ranks []int, dst *CostModel) (*CostModel, bool) {
	return m.ChargeRanksAt(ids, ranks, nil, dst)
}

// ChargeRanksAt is ChargeRanks restricted to a candidate set: with a
// non-nil cand (ascending dense indices), only those rows' CL/CLUnit
// entries are priced and every other row's costs are left stale — the
// contract the policy-fidelity simulator relies on, since Algorithm 1
// under exclusive capacities only ever reads the free nodes' costs. The
// normalization itself still spans all n rows: charging shifts the
// cached per-column sums and maxima by the k row deltas (O(k) instead
// of O(n·attrs)), and the mean-1 CLUnit scale comes from the closed
// form of the SAW column identities, so each priced entry agrees with a
// full re-score to within float rounding (~1 ulp per term, far inside
// the rebuild-equivalence tolerance) rather than bit-for-bit. With a
// nil cand (the ChargeRanks/broker path) the re-score is the exact full
// Equation 1 pass instead, bit-identical to the historical behavior.
func (m *CostModel) ChargeRanksAt(ids, ranks, cand []int, dst *CostModel) (*CostModel, bool) {
	if m.clErr != nil || m.attrRows == nil || dst == m || len(ids) != len(ranks) {
		return nil, false
	}
	if dst == nil {
		dst = &CostModel{}
	}
	if len(m.IDs) == 0 {
		if len(ids) > 0 {
			return nil, false
		}
		m.shareForUpdate(m.Snap, dst)
		dst.CL, dst.CLUnit = dst.CL[:0], dst.CLUnit[:0]
		return dst, true
	}
	if m.colSums == nil {
		m.cacheColStats()
	}
	m.shareForUpdate(m.Snap, dst)
	dst.colSums = append(dst.colSums[:0], m.colSums...)
	dst.colMaxs = append(dst.colMaxs[:0], m.colMaxs...)
	need := len(ids) * numAttrCols
	if cap(dst.rowArena) < need {
		dst.rowArena = make([]float64, need)
	}
	arena := dst.rowArena[:0]
	for k, id := range ids {
		i, ok := m.denseIndex(id)
		if !ok {
			return nil, false
		}
		r := float64(ranks[k])
		if r <= 0 {
			continue
		}
		arena = arena[:len(arena)+numAttrCols]
		row := arena[len(arena)-numAttrCols:]
		// Repeated ids accumulate: the source row may already be a charged
		// row carved earlier in this call.
		copy(row, dst.attrRows[i])
		row[attrColCPULoad] += r
		dst.colSums[attrColCPULoad] += r
		cores := dst.Cores[i]
		if cores <= 0 {
			cores = 1 // guard like effProcs: no published cores
		}
		occ := r / float64(cores) * 100
		if row[attrColCPUUtil]+occ > 100 {
			occ = 100 - row[attrColCPUUtil]
		}
		if occ > 0 {
			row[attrColCPUUtil] += occ
			dst.colSums[attrColCPUUtil] += occ
		}
		// Charges only grow the two mutated columns, so the cached maxima
		// can only move up.
		if row[attrColCPULoad] > dst.colMaxs[attrColCPULoad] {
			dst.colMaxs[attrColCPULoad] = row[attrColCPULoad]
		}
		if row[attrColCPUUtil] > dst.colMaxs[attrColCPUUtil] {
			dst.colMaxs[attrColCPUUtil] = row[attrColCPUUtil]
		}
		dst.attrRows[i] = row
		dst.LoadM1[i] += r
	}
	if cand == nil {
		// Unrestricted path (the broker's ChargeRanks): a full Equation 1
		// re-score, bit-identical to the historical behavior — charged
		// pricing must not perturb broker decisions by even an ulp. The
		// closed-form column-stat pricing below is reserved for the
		// candidate-restricted simulator path, whose equivalence tolerance
		// is explicit (TestChargeRanksAgainstRebuild).
		if !repriceCL(dst) {
			return nil, false
		}
	} else {
		repriceChargedCL(dst, cand)
	}
	return dst, true
}

// repriceChargedCL prices dst's CL/CLUnit from its attribute rows and
// cached column stats — SAW re-scoring with the column reductions
// already in hand, restricted to cand when non-nil (see ChargeRanksAt).
// Equivalent to repriceCL up to float rounding: normalized terms
// multiply by precomputed reciprocals instead of dividing, and the
// mean-1 scale uses ΣCL = Σ_min w + Σ_max w·(n·max_norm − 1), the
// column-sum identity of the SAW matrix.
func repriceChargedCL(dst *CostModel, cand []int) {
	n := len(dst.IDs)
	attrs := sawAttrs(dst.Weights)
	var inv, cmax [numAttrCols]float64
	sumCL := 0.0
	for c, a := range attrs {
		s := dst.colSums[c]
		if s == 0 {
			continue // zero-sum column normalizes to all zeros
		}
		inv[c] = 1 / s
		if a.Criterion == stats.Maximize {
			cmax[c] = dst.colMaxs[c] / s
			sumCL += a.Weight * (float64(n)*cmax[c] - 1)
		} else {
			sumCL += a.Weight
		}
	}
	invMean := 0.0
	if mean := sumCL / float64(n); mean != 0 {
		invMean = 1 / mean
	}
	if cap(dst.CL) < n {
		dst.CL = make([]float64, n)
	}
	if cap(dst.CLUnit) < n {
		dst.CLUnit = make([]float64, n)
	}
	dst.CL, dst.CLUnit = dst.CL[:n], dst.CLUnit[:n]
	price := func(i int) {
		row := dst.attrRows[i]
		cost := 0.0
		for c, a := range attrs {
			x := row[c] * inv[c]
			if a.Criterion == stats.Maximize {
				x = cmax[c] - x
			}
			cost += a.Weight * x
		}
		dst.CL[i] = cost
		if invMean != 0 {
			cost *= invMean
		}
		dst.CLUnit[i] = cost
	}
	if cand == nil {
		for i := range dst.attrRows {
			price(i)
		}
	} else {
		for _, i := range cand {
			price(i)
		}
	}
}

// PairNLUnit prices the mean-1 network load between dense indices i and
// j under whichever representation the model carries: the flat NLUnit
// matrix on dense models, the hierarchical shard layer otherwise. The
// diagonal is zero.
func (m *CostModel) PairNLUnit(i, j int) float64 {
	if m.shard != nil {
		if i == j {
			return 0
		}
		return m.shard.pairNL(i, j)
	}
	return m.NLUnit[i*len(m.IDs)+j]
}

// networkLoadsDense evaluates Equation 2 for every unordered pair of ids
// (in the given order) and returns a flat symmetric n×n matrix indexed
// by position — the dense core behind NetworkLoads. Pair terms are
// accumulated in i<j order, which for sorted ids is exactly the sorted
// (U,V) order of the map-based path, so normalization sums are
// bit-identical.
func networkLoadsDense(snap *metrics.Snapshot, ids []int, w Weights) ([]float64, error) {
	n := len(ids)
	npairs := n * (n - 1) / 2
	out := make([]float64, n*n)
	if npairs == 0 {
		return out, nil
	}
	// Measurement maps are sparse relative to the n(n-1)/2 pair space
	// (racks plus sampled cross-rack probes), so iterate them instead of
	// probing every pair — at 1024 nodes the probing formulation costs
	// ~1.5M map lookups per build. Maxima are order-independent and each
	// pair's value is computed by the same expression, so the result is
	// bit-identical to the probing formulation.
	var posArr []int
	var posMap map[int]int
	maxID := -1
	for _, id := range ids {
		if id < 0 || id > 4*n+1024 {
			maxID = -1
			break
		}
		if id > maxID {
			maxID = id
		}
	}
	if maxID >= 0 {
		posArr = make([]int, maxID+1)
		for i := range posArr {
			posArr[i] = -1
		}
		for i, id := range ids {
			posArr[id] = i
		}
	} else {
		posMap = make(map[int]int, n)
		for i, id := range ids {
			posMap[id] = i
		}
	}
	lookup := func(id int) (int, bool) {
		if posArr != nil {
			if id < 0 || id >= len(posArr) || posArr[id] < 0 {
				return 0, false
			}
			return posArr[id], true
		}
		i, ok := posMap[id]
		return i, ok
	}
	// The "peak bandwidth" the paper complements against is the network's
	// nominal peak — a single constant — so pairs are effectively ranked
	// by available bandwidth. Using each pair's own bottleneck peak would
	// make an idle low-capacity path (e.g. a WAN link between clusters)
	// look as good as an idle local path. Take the best measured peak as
	// the nominal value.
	globalPeak := 0.0
	for pk, pb := range snap.Bandwidth {
		if _, ok := lookup(pk.U); !ok {
			continue
		}
		if _, ok := lookup(pk.V); !ok {
			continue
		}
		if pb.PeakBps > globalPeak {
			globalPeak = pb.PeakBps
		}
	}
	lat := make([]float64, npairs)
	cbw := make([]float64, npairs) // complement of available bandwidth
	known := make([]bool, npairs)
	worstLat, worstCbw := 0.0, 0.0
	anyKnown := false
	for pk, pb := range snap.Bandwidth {
		i, okI := lookup(pk.U)
		j, okJ := lookup(pk.V)
		if !okI || !okJ || i == j {
			continue
		}
		pl, okL := snap.Latency[pk]
		if !okL {
			continue // a pair is known only when both measurements exist
		}
		if i > j {
			i, j = j, i
		}
		k := i*n - i*(i+1)/2 + (j - i - 1)
		l := pl.Mean1
		if l <= 0 {
			l = pl.Last
		}
		lat[k] = l.Seconds()
		c := globalPeak - pb.AvailBps
		if c < 0 {
			c = 0
		}
		cbw[k] = c
		known[k] = true
		anyKnown = true
		if lat[k] > worstLat {
			worstLat = lat[k]
		}
		if cbw[k] > worstCbw {
			worstCbw = cbw[k]
		}
	}
	if !anyKnown {
		return nil, fmt.Errorf("alloc: no pairwise measurements available for %d nodes", n)
	}
	for k := range known {
		if !known[k] {
			lat[k] = worstLat
			cbw[k] = worstCbw
		}
	}
	latN, err := stats.NormalizeSum(lat)
	if err != nil {
		return nil, fmt.Errorf("alloc: network loads: %w", err)
	}
	cbwN, err := stats.NormalizeSum(cbw)
	if err != nil {
		return nil, fmt.Errorf("alloc: network loads: %w", err)
	}
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := w.Latency*latN[k] + w.Bandwidth*cbwN[k]
			out[i*n+j] = v
			out[j*n+i] = v
			k++
		}
	}
	return out, nil
}

// rescaleMeanDense rescales xs to mean 1 in place. Dense iteration order
// is index order (== sorted node ID order), so the float summation is
// deterministic without the sorted-key workaround the map-based
// RescaleMeanNode needs.
func rescaleMeanDense(xs []float64) {
	if len(xs) == 0 {
		return
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return
	}
	for i := range xs {
		xs[i] /= mean
	}
}

// rescaleMeanPairDense rescales the flat n×n pair matrix to mean 1 over
// its distinct (i<j) pairs, accumulating in the same (U,V)-sorted order
// as RescaleMeanPair.
func rescaleMeanPairDense(nl []float64, n int) {
	npairs := n * (n - 1) / 2
	if npairs == 0 {
		return
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += nl[i*n+j]
		}
	}
	mean := sum / float64(npairs)
	if mean == 0 {
		return
	}
	for i := range nl {
		nl[i] /= mean
	}
}

// sortIdxByCost orders the indices 0..len(cost)-1 ascending by cost,
// breaking ties by index (== by node ID, since index order is ID order).
// The comparator is a strict total order, so any sorting algorithm
// yields the same permutation the map-keyed path produced.
func sortIdxByCost(cost []float64) []int {
	out := make([]int, len(cost))
	for i := range out {
		out[i] = i
	}
	slices.SortFunc(out, func(a, b int) int {
		ca, cb := cost[a], cost[b]
		switch {
		case ca < cb:
			return -1
		case ca > cb:
			return 1
		default:
			return a - b
		}
	})
	return out
}

// fillIdx is fill over dense indices: assign procs processes across the
// ordered indices, each taking up to its capacity, spilling round-robin
// over the selected indices — identical arithmetic to fill, no maps.
func fillIdx(order []int, caps []int, procs int) (used []int, counts []int) {
	remaining := procs
	for _, i := range order {
		if remaining <= 0 {
			break
		}
		take := caps[i]
		if take > remaining {
			take = remaining
		}
		if take <= 0 {
			continue
		}
		used = append(used, i)
		counts = append(counts, take)
		remaining -= take
	}
	for remaining > 0 && len(used) > 0 {
		for k := range used {
			if remaining == 0 {
				break
			}
			counts[k]++
			remaining--
		}
	}
	return used, counts
}

// lessIdx is the strict total order shared by sortIdxByCost and the
// partial-selection heap: ascending cost, ties broken by index. Because
// it is a strict total order, popping a min-heap built on it yields
// exactly the permutation sortIdxByCost produces.
func lessIdx(cost []float64, a, b int) bool {
	if cost[a] != cost[b] {
		return cost[a] < cost[b]
	}
	return a < b
}

// heapifyIdx establishes the min-heap property on h under lessIdx.
func heapifyIdx(h []int, cost []float64) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownIdx(h, i, cost)
	}
}

func siftDownIdx(h []int, i int, cost []float64) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && lessIdx(cost, h[r], h[l]) {
			m = r
		}
		if !lessIdx(cost, h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// popIdx removes and returns the heap minimum, shrinking h by one.
func popIdx(h []int, cost []float64) (int, []int) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	siftDownIdx(h, 0, cost)
	return top, h
}

// siftUpMaxIdx and siftDownMaxIdx maintain a MAX-heap under the same
// strict (cost, index) total order as lessIdx — the bounded-selection
// heap of generateConstrained, whose root is the worst kept candidate.
func siftUpMaxIdx(h []int, i int, cost []float64) {
	for i > 0 {
		p := (i - 1) / 2
		if !lessIdx(cost, h[p], h[i]) {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func siftDownMaxIdx(h []int, i int, cost []float64) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && lessIdx(cost, h[l], h[r]) {
			m = r
		}
		if !lessIdx(cost, h[i], h[m]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// minParallelStarts is the candidate count below which the worker pool
// is not worth its goroutine overhead and generation stays sequential.
const minParallelStarts = 16

// parallelWorkers is the worker-pool size parallelFor will use for n
// indices, so callers can pre-allocate per-worker scratch.
func parallelWorkers(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minParallelStarts {
		return 1
	}
	return workers
}

// parallelFor runs f(worker, i) for every i in [0, n) across a bounded
// GOMAXPROCS-sized worker pool of parallelWorkers(n) goroutines. Each
// index runs exactly once, and each worker slot runs its calls
// sequentially (so per-worker scratch buffers need no locking); f must
// only write index-owned state (the callers write into pre-assigned
// slice slots, keeping results bit-identical to a sequential loop).
// Small n runs inline on worker 0.
func parallelFor(n int, f func(worker, i int)) {
	workers := parallelWorkers(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(w, i)
			}
		}(w)
	}
	wg.Wait()
}
