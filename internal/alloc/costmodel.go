package alloc

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/stats"
)

// CostModel is the dense, index-contiguous view of one snapshot's
// Equation 1/2 costs. Live monitored node IDs are remapped once to
// 0..n-1 (index order == ascending ID order), compute loads live in a
// plain []float64 and network loads in a flat n×n matrix, so the
// allocation hot path (Algorithms 1-2 over every start node) runs on
// cache-friendly slices instead of hashing map keys per lookup.
//
// The model is immutable after construction and safe to share across
// goroutines and across back-to-back allocations against the same
// snapshot (the broker caches it keyed by snapshot fingerprint, weights,
// and forecast flag).
//
// CL/NL construction can fail independently (e.g. a snapshot with no
// pairwise measurements still supports the random and sequential
// policies, which never price the network). Failures are recorded per
// metric and surfaced by the policies that need that metric.
type CostModel struct {
	// Snap is the snapshot the model was derived from.
	Snap *metrics.Snapshot
	// Weights and Forecast record the pricing inputs (cache key parts).
	Weights  Weights
	Forecast bool
	// Taken mirrors Snap.Taken for cache bookkeeping.
	Taken time.Time

	// IDs maps index -> node ID, ascending (MonitoredLivehosts order).
	IDs []int
	idx map[int]int

	// CL holds raw Equation 1 costs by index; CLUnit is the mean-1
	// rescaled copy used by Algorithm 1 (see RescaleMeanNode).
	CL     []float64
	CLUnit []float64
	// NL holds raw Equation 2 costs as a flat n×n symmetric matrix
	// (NL[i*n+j]; diagonal zero); NLUnit is the mean-1 rescaled copy.
	NL     []float64
	NLUnit []float64

	// Cores and LoadM1 are the dense inputs of Equation 3 so capacity
	// evaluation needs no snapshot map lookups.
	Cores  []int
	LoadM1 []float64

	// attrRows retains each node's raw Equation 1 attribute vector (the
	// SAW input matrix, index order) so UpdateNodes can replace k rows
	// and re-normalize without touching the snapshot's other n-k nodes.
	attrRows [][]float64

	// shardOpts and shard carry the optional hierarchical network-load
	// layer (see NewCostModelSharded). A nil shard means the dense n×n
	// matrices above are authoritative; a non-nil shard means NL/NLUnit
	// are nil and network load is priced per shard.
	shardOpts ShardOptions
	shard     *shardModel

	clErr error
	nlErr error
}

// NewCostModel derives the dense cost model from snap: the ID->index
// remap, Equation 1 costs over all live monitored nodes, Equation 2
// costs over all pairs, and their mean-1 rescaled copies. Construction
// itself never fails; metric-specific failures are reported by CLErr and
// NLErr so policies that do not need the failing metric keep working.
func NewCostModel(snap *metrics.Snapshot, w Weights, useForecast bool) *CostModel {
	ids := MonitoredLivehosts(snap)
	n := len(ids)
	m := &CostModel{
		Snap:     snap,
		Weights:  w,
		Forecast: useForecast,
		Taken:    snap.Taken,
		IDs:      ids,
		idx:      make(map[int]int, n),
		Cores:    make([]int, n),
		LoadM1:   make([]float64, n),
	}
	for i, id := range ids {
		m.idx[id] = i
		na := snap.Nodes[id]
		m.Cores[i] = na.Cores
		m.LoadM1[i] = na.CPULoad.M1
	}
	m.attrRows, m.clErr = attrMatrix(snap, ids, useForecast)
	if m.clErr == nil {
		m.CL, m.clErr = sawFromRows(w, m.attrRows)
	}
	if m.clErr == nil && n > 0 {
		m.CLUnit = append([]float64(nil), m.CL...)
		rescaleMeanDense(m.CLUnit)
	}
	m.NL, m.nlErr = networkLoadsDense(snap, ids, w)
	if m.nlErr == nil && n > 0 {
		m.NLUnit = append([]float64(nil), m.NL...)
		rescaleMeanPairDense(m.NLUnit, n)
	}
	return m
}

// Len returns the number of live monitored nodes in the model.
func (m *CostModel) Len() int { return len(m.IDs) }

// IndexOf returns the dense index of node id.
func (m *CostModel) IndexOf(id int) (int, bool) {
	i, ok := m.idx[id]
	return i, ok
}

// CLErr reports whether Equation 1 costs are available.
func (m *CostModel) CLErr() error { return m.clErr }

// NLErr reports whether Equation 2 costs are available.
func (m *CostModel) NLErr() error { return m.nlErr }

// NetLoad returns the raw Equation 2 cost between indices i and j.
func (m *CostModel) NetLoad(i, j int) float64 { return m.NL[i*len(m.IDs)+j] }

// effProcs is Equation 3 on dense inputs; see EffectiveProcs. A node
// publishing a non-positive core count is treated as having one slot
// (the paper's formula would divide by zero).
func effProcs(cores int, loadM1 float64, ppn int) int {
	if ppn > 0 {
		return ppn
	}
	if cores <= 0 {
		return 1
	}
	load := int(math.Ceil(loadM1))
	if load < 0 {
		load = 0
	}
	return cores - load%cores
}

// caps evaluates Equation 3 for every node under the request.
func (m *CostModel) caps(req Request) []int {
	caps := make([]int, len(m.IDs))
	for i := range caps {
		caps[i] = effProcs(m.Cores[i], m.LoadM1[i], req.PPN)
	}
	return caps
}

// matches reports whether the model was priced with the request's
// weights and forecast flag (guard against stale cache handoffs).
func (m *CostModel) matches(req Request) bool {
	return m.Weights == req.Weights && m.Forecast == req.UseForecast
}

// modelFor returns m when it matches the validated request, otherwise
// rebuilds from the model's snapshot with m's sharding options preserved
// (callers hand the broker's cached model straight through; a mismatch
// means the cache key was wrong).
func modelFor(m *CostModel, req Request) *CostModel {
	if m.matches(req) {
		return m
	}
	return m.NewLike(m.Snap, req.Weights, req.UseForecast)
}

// sawAttrs is the fixed Equation 1 attribute schema under weights w.
func sawAttrs(w Weights) []stats.Attribute {
	return []stats.Attribute{
		{Name: "cpu_load", Weight: w.CPULoad, Criterion: stats.Minimize},
		{Name: "cpu_util", Weight: w.CPUUtil, Criterion: stats.Minimize},
		{Name: "flow_rate", Weight: w.FlowRate, Criterion: stats.Minimize},
		{Name: "avail_mem", Weight: w.AvailMem, Criterion: stats.Maximize},
		{Name: "cores", Weight: w.Cores, Criterion: stats.Maximize},
		{Name: "freq", Weight: w.Freq, Criterion: stats.Maximize},
		{Name: "total_mem", Weight: w.TotalMem, Criterion: stats.Maximize},
		{Name: "users", Weight: w.Users, Criterion: stats.Minimize},
	}
}

// attrRow is one node's raw Equation 1 attribute vector in sawAttrs
// column order.
func attrRow(na metrics.NodeAttrs, useForecast bool) []float64 {
	cpuLoad := windowAvg(na.CPULoad)
	flowRate := windowAvg(na.FlowRateBps)
	if useForecast {
		if na.CPULoadForecast != nil {
			cpuLoad = na.CPULoadForecast.Value
		}
		if na.FlowRateForecast != nil {
			flowRate = na.FlowRateForecast.Value
		}
	}
	return []float64{
		cpuLoad,
		windowAvg(na.CPUUtilPct),
		flowRate,
		windowAvg(na.AvailMemMB),
		float64(na.Cores),
		na.FreqGHz,
		na.TotalMemMB,
		float64(na.Users),
	}
}

// attrMatrix builds the SAW input matrix for ids (in the given order).
func attrMatrix(snap *metrics.Snapshot, ids []int, useForecast bool) ([][]float64, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	matrix := make([][]float64, 0, len(ids))
	for _, id := range ids {
		na, ok := snap.Nodes[id]
		if !ok {
			return nil, fmt.Errorf("alloc: node %d has no published state", id)
		}
		matrix = append(matrix, attrRow(na, useForecast))
	}
	return matrix, nil
}

// sawFromRows runs the SAW scoring over a prebuilt attribute matrix.
func sawFromRows(w Weights, rows [][]float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	costs, err := stats.SAWCosts(sawAttrs(w), rows)
	if err != nil {
		return nil, fmt.Errorf("alloc: compute loads: %w", err)
	}
	return costs, nil
}

// computeLoadsDense evaluates Equation 1 for ids (in the given order)
// and returns the SAW costs indexed positionally — the dense core behind
// ComputeLoadsOpt.
func computeLoadsDense(snap *metrics.Snapshot, ids []int, w Weights, useForecast bool) ([]float64, error) {
	rows, err := attrMatrix(snap, ids, useForecast)
	if err != nil {
		return nil, err
	}
	return sawFromRows(w, rows)
}

// UpdateNodes derives the cost model for snap from m when snap differs
// from m's snapshot only in the dynamic attributes of the given node
// IDs: the network layer (NL/NLUnit, built from the unchanged matrices)
// is shared, the changed nodes' attribute rows are replaced, and the
// Equation 1 SAW scoring re-runs over the retained rows — an O(n·k +
// n·attrs) update instead of the O(n²) full rebuild, with bit-identical
// results because SAW normalization always re-accumulates every row in
// index order.
//
// ok=false means the precondition does not hold (different monitored
// node set, a changed ID the model does not know, a model built without
// usable CL data, or matrices that are not content-identical is the
// caller's responsibility) and the caller must rebuild from scratch.
func (m *CostModel) UpdateNodes(snap *metrics.Snapshot, changed []int) (*CostModel, bool) {
	if m.clErr != nil || m.attrRows == nil {
		return nil, false
	}
	ids := MonitoredLivehosts(snap)
	if !slices.Equal(ids, m.IDs) {
		return nil, false
	}
	n := len(ids)
	u := &CostModel{
		Snap:     snap,
		Weights:  m.Weights,
		Forecast: m.Forecast,
		Taken:    snap.Taken,
		IDs:      m.IDs,
		idx:      m.idx,
		NL:       m.NL,
		NLUnit:   m.NLUnit,
		nlErr:    m.nlErr,
		Cores:    append([]int(nil), m.Cores...),
		LoadM1:   append([]float64(nil), m.LoadM1...),
		attrRows: append([][]float64(nil), m.attrRows...),
		// The hierarchical NL layer derives only from the (unchanged)
		// pairwise matrices and the node set, so it is shared like NL.
		shardOpts: m.shardOpts,
		shard:     m.shard,
	}
	for _, id := range changed {
		i, ok := m.idx[id]
		if !ok {
			return nil, false
		}
		na, ok := snap.Nodes[id]
		if !ok {
			return nil, false
		}
		u.Cores[i] = na.Cores
		u.LoadM1[i] = na.CPULoad.M1
		u.attrRows[i] = attrRow(na, m.Forecast)
	}
	u.CL, u.clErr = sawFromRows(m.Weights, u.attrRows)
	if u.clErr == nil && n > 0 {
		u.CLUnit = append([]float64(nil), u.CL...)
		rescaleMeanDense(u.CLUnit)
	}
	return u, u.clErr == nil
}

// networkLoadsDense evaluates Equation 2 for every unordered pair of ids
// (in the given order) and returns a flat symmetric n×n matrix indexed
// by position — the dense core behind NetworkLoads. Pair terms are
// accumulated in i<j order, which for sorted ids is exactly the sorted
// (U,V) order of the map-based path, so normalization sums are
// bit-identical.
func networkLoadsDense(snap *metrics.Snapshot, ids []int, w Weights) ([]float64, error) {
	n := len(ids)
	npairs := n * (n - 1) / 2
	out := make([]float64, n*n)
	if npairs == 0 {
		return out, nil
	}
	// The "peak bandwidth" the paper complements against is the network's
	// nominal peak — a single constant — so pairs are effectively ranked
	// by available bandwidth. Using each pair's own bottleneck peak would
	// make an idle low-capacity path (e.g. a WAN link between clusters)
	// look as good as an idle local path. Take the best measured peak as
	// the nominal value.
	globalPeak := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if _, peak, ok := snap.BandwidthOf(ids[i], ids[j]); ok && peak > globalPeak {
				globalPeak = peak
			}
		}
	}
	lat := make([]float64, npairs)
	cbw := make([]float64, npairs) // complement of available bandwidth
	known := make([]bool, npairs)
	worstLat, worstCbw := 0.0, 0.0
	anyKnown := false
	k := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l, okL := snap.LatencyOf(ids[i], ids[j])
			avail, _, okB := snap.BandwidthOf(ids[i], ids[j])
			if okL && okB {
				lat[k] = l.Seconds()
				c := globalPeak - avail
				if c < 0 {
					c = 0
				}
				cbw[k] = c
				known[k] = true
				anyKnown = true
				if lat[k] > worstLat {
					worstLat = lat[k]
				}
				if cbw[k] > worstCbw {
					worstCbw = cbw[k]
				}
			}
			k++
		}
	}
	if !anyKnown {
		return nil, fmt.Errorf("alloc: no pairwise measurements available for %d nodes", n)
	}
	for k := range known {
		if !known[k] {
			lat[k] = worstLat
			cbw[k] = worstCbw
		}
	}
	latN, err := stats.NormalizeSum(lat)
	if err != nil {
		return nil, fmt.Errorf("alloc: network loads: %w", err)
	}
	cbwN, err := stats.NormalizeSum(cbw)
	if err != nil {
		return nil, fmt.Errorf("alloc: network loads: %w", err)
	}
	k = 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := w.Latency*latN[k] + w.Bandwidth*cbwN[k]
			out[i*n+j] = v
			out[j*n+i] = v
			k++
		}
	}
	return out, nil
}

// rescaleMeanDense rescales xs to mean 1 in place. Dense iteration order
// is index order (== sorted node ID order), so the float summation is
// deterministic without the sorted-key workaround the map-based
// RescaleMeanNode needs.
func rescaleMeanDense(xs []float64) {
	if len(xs) == 0 {
		return
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean == 0 {
		return
	}
	for i := range xs {
		xs[i] /= mean
	}
}

// rescaleMeanPairDense rescales the flat n×n pair matrix to mean 1 over
// its distinct (i<j) pairs, accumulating in the same (U,V)-sorted order
// as RescaleMeanPair.
func rescaleMeanPairDense(nl []float64, n int) {
	npairs := n * (n - 1) / 2
	if npairs == 0 {
		return
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sum += nl[i*n+j]
		}
	}
	mean := sum / float64(npairs)
	if mean == 0 {
		return
	}
	for i := range nl {
		nl[i] /= mean
	}
}

// sortIdxByCost orders the indices 0..len(cost)-1 ascending by cost,
// breaking ties by index (== by node ID, since index order is ID order).
// The comparator is a strict total order, so any sorting algorithm
// yields the same permutation the map-keyed path produced.
func sortIdxByCost(cost []float64) []int {
	out := make([]int, len(cost))
	for i := range out {
		out[i] = i
	}
	slices.SortFunc(out, func(a, b int) int {
		ca, cb := cost[a], cost[b]
		switch {
		case ca < cb:
			return -1
		case ca > cb:
			return 1
		default:
			return a - b
		}
	})
	return out
}

// fillIdx is fill over dense indices: assign procs processes across the
// ordered indices, each taking up to its capacity, spilling round-robin
// over the selected indices — identical arithmetic to fill, no maps.
func fillIdx(order []int, caps []int, procs int) (used []int, counts []int) {
	remaining := procs
	for _, i := range order {
		if remaining <= 0 {
			break
		}
		take := caps[i]
		if take > remaining {
			take = remaining
		}
		if take <= 0 {
			continue
		}
		used = append(used, i)
		counts = append(counts, take)
		remaining -= take
	}
	for remaining > 0 && len(used) > 0 {
		for k := range used {
			if remaining == 0 {
				break
			}
			counts[k]++
			remaining--
		}
	}
	return used, counts
}

// lessIdx is the strict total order shared by sortIdxByCost and the
// partial-selection heap: ascending cost, ties broken by index. Because
// it is a strict total order, popping a min-heap built on it yields
// exactly the permutation sortIdxByCost produces.
func lessIdx(cost []float64, a, b int) bool {
	if cost[a] != cost[b] {
		return cost[a] < cost[b]
	}
	return a < b
}

// heapifyIdx establishes the min-heap property on h under lessIdx.
func heapifyIdx(h []int, cost []float64) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDownIdx(h, i, cost)
	}
}

func siftDownIdx(h []int, i int, cost []float64) {
	for {
		l := 2*i + 1
		if l >= len(h) {
			return
		}
		m := l
		if r := l + 1; r < len(h) && lessIdx(cost, h[r], h[l]) {
			m = r
		}
		if !lessIdx(cost, h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// popIdx removes and returns the heap minimum, shrinking h by one.
func popIdx(h []int, cost []float64) (int, []int) {
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	siftDownIdx(h, 0, cost)
	return top, h
}

// minParallelStarts is the candidate count below which the worker pool
// is not worth its goroutine overhead and generation stays sequential.
const minParallelStarts = 16

// parallelWorkers is the worker-pool size parallelFor will use for n
// indices, so callers can pre-allocate per-worker scratch.
func parallelWorkers(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < minParallelStarts {
		return 1
	}
	return workers
}

// parallelFor runs f(worker, i) for every i in [0, n) across a bounded
// GOMAXPROCS-sized worker pool of parallelWorkers(n) goroutines. Each
// index runs exactly once, and each worker slot runs its calls
// sequentially (so per-worker scratch buffers need no locking); f must
// only write index-owned state (the callers write into pre-assigned
// slice slots, keeping results bit-identical to a sequential loop).
// Small n runs inline on worker 0.
func parallelFor(n int, f func(worker, i int)) {
	workers := parallelWorkers(n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			f(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(w, i)
			}
		}(w)
	}
	wg.Wait()
}
