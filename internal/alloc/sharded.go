package alloc

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"sync/atomic"

	"nlarm/internal/metrics"
)

// Defaults for the topology-sharded hierarchical cost model. They are
// deliberately conservative: sharding only replaces the exhaustive dense
// path at sizes where the dense O(n²) matrix is already the dominant
// cost, and the paper-scale clusters (60-256 nodes) keep their
// bit-for-bit behavior.
const (
	// DefaultShardThreshold is the node count at which the sharded model
	// replaces the exhaustive dense path when ShardOptions.Threshold is
	// left zero by a caller that still wants sharding (the broker's flag
	// default).
	DefaultShardThreshold = 512
	// DefaultMaxShardSize caps how many nodes one shard may hold; larger
	// plan groups (and hash buckets) are split into consecutive chunks.
	DefaultMaxShardSize = 64
	// DefaultShardTopK is how many top-ranked shards get dense candidate
	// generation per request.
	DefaultShardTopK = 4
	// maxBoundarySamples bounds how many measured cross-shard pairs feed
	// one shard-pair boundary aggregate (the rest carry no extra
	// information and would only slow construction on dense meshes).
	maxBoundarySamples = 64
)

// ShardPlan is a precomputed node partition — typically one group per
// topology switch (see topology.(*Topology).Shards) — that the sharded
// cost model uses instead of hash-bucketing. Plans are immutable after
// construction and safe to share across models and goroutines.
type ShardPlan struct {
	of     map[int]int
	source string
	sig    uint64
}

// NewShardPlan builds a plan from explicit node groups: group i becomes
// shard label i. source names the plan's origin ("topology", "cluster",
// ...) for diagnostics. Empty groups are skipped; a node listed twice
// keeps its first group.
func NewShardPlan(groups [][]int, source string) *ShardPlan {
	p := &ShardPlan{of: make(map[int]int), source: source}
	for label, g := range groups {
		for _, id := range g {
			if _, ok := p.of[id]; !ok {
				p.of[id] = label
			}
		}
	}
	ids := make([]int, 0, len(p.of))
	for id := range p.of {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	words := make([]uint64, 0, 2*len(ids))
	for _, id := range ids {
		words = append(words, uint64(uint32(id)), uint64(uint32(p.of[id])))
	}
	p.sig = fnvWords(words)
	return p
}

// Source reports where the plan came from.
func (p *ShardPlan) Source() string { return p.source }

// Len returns the number of nodes the plan covers.
func (p *ShardPlan) Len() int { return len(p.of) }

// Signature returns a stable content hash of the node→shard mapping,
// used in broker cache keys.
func (p *ShardPlan) Signature() uint64 { return p.sig }

// ShardOptions configures the topology-sharded hierarchical cost model.
// The zero value disables sharding entirely: NewCostModelSharded with
// zero options is exactly NewCostModel.
type ShardOptions struct {
	// Plan maps nodes to shards (typically derived from the switch tree).
	// Nil falls back to deterministic hash-bucketing over node IDs — the
	// no-topology-attached case.
	Plan *ShardPlan
	// Threshold is the live-node count at or above which the sharded
	// model replaces the exhaustive dense path. Below it (or at 0,
	// meaning disabled) the dense path runs bit-for-bit.
	Threshold int
	// MaxShardSize caps shard size; 0 means DefaultMaxShardSize.
	MaxShardSize int
	// TopK is how many top-ranked shards run dense candidate generation;
	// 0 means DefaultShardTopK.
	TopK int
}

// withDefaults fills the zero knobs of an enabled option set.
func (o ShardOptions) withDefaults() ShardOptions {
	if o.MaxShardSize <= 0 {
		o.MaxShardSize = DefaultMaxShardSize
	}
	if o.TopK <= 0 {
		o.TopK = DefaultShardTopK
	}
	return o
}

// active reports whether these options shard a model of n live nodes.
func (o ShardOptions) active(n int) bool { return o.Threshold > 0 && n >= o.Threshold }

// Signature returns a stable hash of the option set (plan content
// included) so the broker can key cached models on it; 0 when sharding
// is disabled.
func (o ShardOptions) Signature() uint64 {
	if o.Threshold <= 0 {
		return 0
	}
	o = o.withDefaults()
	var planSig uint64
	if o.Plan != nil {
		planSig = o.Plan.Signature()
	}
	return fnvWords([]uint64{uint64(o.Threshold), uint64(o.MaxShardSize), uint64(o.TopK), planSig})
}

// fnvWords hashes a word sequence FNV-style (the metrics fingerprint
// primitive, duplicated here to keep alloc free of new dependencies).
func fnvWords(words []uint64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, w := range words {
		h ^= w
		h *= prime
	}
	return h
}

// shardModel is the hierarchical network-load layer of a sharded
// CostModel: per-shard dense NL sub-matrices plus a small shard×shard
// aggregate, replacing the full n×n NLUnit matrix. It holds no Equation 1
// state, so UpdateNodes (dynamic-attribute deltas) shares it untouched.
type shardModel struct {
	source string
	// shards holds each shard's member dense indices, ascending; shardOf
	// and posOf invert the mapping (dense index → shard, position).
	shards  [][]int
	shardOf []int
	posOf   []int
	// sub[s] is shard s's flat size×size unit-scaled NL matrix (diagonal
	// zero), the exact analogue of CostModel.NLUnit restricted to s.
	sub [][]float64
	// agg is the flat S×S aggregate matrix: agg[s*S+s] is the mean
	// intra-shard NL of s, agg[s*S+t] the mean boundary NL between s and
	// t (sampled from measured cross pairs; unmeasured shard pairs are
	// priced at the worst observed value, like unmeasured node pairs in
	// the dense path).
	agg []float64
	// spills counts generated candidates that crossed shard boundaries
	// since the last TakeShardSpills (the broker drains it into obs).
	spills atomic.Uint64
}

// numShards returns the shard count.
func (sm *shardModel) numShards() int { return len(sm.shards) }

// buildShards partitions the model's dense indices 0..n-1 into shards:
// plan groups (split at maxSize, plan-label order, unplanned nodes in a
// trailing overflow group) when a plan is given, else deterministic
// hash buckets over node IDs. Every returned shard is non-empty and its
// members ascend.
func buildShards(ids []int, plan *ShardPlan, maxSize int) (shards [][]int, source string) {
	n := len(ids)
	var groups [][]int
	if plan != nil {
		source = plan.source
		byLabel := make(map[int][]int)
		var labels []int
		var overflow []int
		for i, id := range ids {
			label, ok := plan.of[id]
			if !ok {
				overflow = append(overflow, i)
				continue
			}
			if _, seen := byLabel[label]; !seen {
				labels = append(labels, label)
			}
			byLabel[label] = append(byLabel[label], i)
		}
		sort.Ints(labels)
		for _, label := range labels {
			groups = append(groups, byLabel[label])
		}
		if len(overflow) > 0 {
			groups = append(groups, overflow)
		}
	} else {
		source = "hash"
		buckets := (n + maxSize - 1) / maxSize
		if buckets < 1 {
			buckets = 1
		}
		byBucket := make([][]int, buckets)
		for i, id := range ids {
			b := int(fnvWords([]uint64{uint64(uint32(id))}) % uint64(buckets))
			byBucket[b] = append(byBucket[b], i)
		}
		for _, g := range byBucket {
			if len(g) > 0 {
				groups = append(groups, g)
			}
		}
	}
	// Split oversized groups into consecutive chunks so per-shard NL
	// matrices stay bounded at maxSize² regardless of the plan's shape.
	for _, g := range groups {
		for len(g) > maxSize {
			shards = append(shards, g[:maxSize:maxSize])
			g = g[maxSize:]
		}
		shards = append(shards, g)
	}
	return shards, source
}

// shardPair is one measured pair: the canonical dense-index key
// (i<<32 | j, i<j) plus the latency seconds and complement-bandwidth
// captured while iterating the measurement maps, so pricing never has
// to resolve the pair through a map lookup again.
type shardPair struct {
	key      uint64
	lat, cbw float64
}

// shardKV is one measurement keyed by packed canonical dense indices
// (i<<32 | j, i<j), the intermediate form for the sort-and-merge join
// of the latency and bandwidth maps.
type shardKV struct {
	key uint64
	val float64
}

// sortKVByKey sorts by key and dedupes, returning the (possibly
// shortened) slice. Both 32-bit key halves are dense node indices below
// n, so two stable counting-sort passes (low half, then high half)
// order the whole slice in O(len + n) — no comparisons. Duplicate keys
// cannot occur when the source map's keys are canonical, but if one
// ever appears the smaller value wins, which is independent of map
// iteration order.
func sortKVByKey(a []shardKV, n int) []shardKV {
	tmp := make([]shardKV, len(a))
	cnt := make([]int, n)
	scatter := func(src, dst []shardKV, shift uint) {
		clear(cnt)
		for _, e := range src {
			cnt[uint32(e.key>>shift)]++
		}
		total := 0
		for v := range cnt {
			cnt[v], total = total, total+cnt[v]
		}
		for _, e := range src {
			h := uint32(e.key >> shift)
			dst[cnt[h]] = e
			cnt[h]++
		}
	}
	scatter(a, tmp, 0)
	scatter(tmp, a, 32)
	out := a[:0]
	for _, e := range a {
		if len(out) > 0 && out[len(out)-1].key == e.key {
			if e.val < out[len(out)-1].val {
				out[len(out)-1] = e
			}
			continue
		}
		out = append(out, e)
	}
	return out
}

// newShardModel builds the hierarchical NL layer for the given shard
// partition: per-shard sub-matrices whose entries equal the dense
// NLUnit values for the same pairs, and the shard×shard aggregate.
// Construction is O(Σ sᵢ² + measured pairs) — never O(n²) — and
// deterministic (measured pairs are sorted before any float
// accumulation). It fails like networkLoadsDense when the snapshot has
// no usable pairwise measurements at all.
func newShardModel(snap *metrics.Snapshot, m *CostModel, shards [][]int, source string) (*shardModel, error) {
	n := len(m.IDs)
	S := len(shards)
	sm := &shardModel{source: source, shards: shards,
		shardOf: make([]int, n), posOf: make([]int, n)}
	for s, members := range shards {
		for pos, i := range members {
			sm.shardOf[i] = s
			sm.posOf[i] = pos
		}
	}

	// Every measured pair among the model's nodes, priced in O(measured)
	// with no per-pair map lookups: each measurement map is iterated
	// exactly once into a flat (packed key, value) array, both arrays are
	// radix-sorted by key (keys are bounded by the node count, so sorting
	// is O(measured + n), not O(m log m)), and a linear merge joins
	// latency with bandwidth. Re-resolving pairs through the 16-byte-key
	// maps — or comparison-sorting them — dominated the whole model build
	// in profiles. Sorting also keeps every later float accumulation
	// independent of map iteration order.
	globalPeak := 0.0
	bw := make([]shardKV, 0, len(snap.Bandwidth))
	for k, pb := range snap.Bandwidth {
		i, ok := m.idx[k.U]
		if !ok {
			continue
		}
		j, ok := m.idx[k.V]
		if !ok {
			continue
		}
		// Nominal peak bandwidth: the best measured peak across the
		// model's pairs (the dense path's rule; max is order-independent).
		if pb.PeakBps > globalPeak {
			globalPeak = pb.PeakBps
		}
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		bw = append(bw, shardKV{uint64(i)<<32 | uint64(j), pb.AvailBps})
	}
	lt := make([]shardKV, 0, len(snap.Latency))
	for k, pl := range snap.Latency {
		i, ok := m.idx[k.U]
		if !ok {
			continue
		}
		j, ok := m.idx[k.V]
		if !ok {
			continue
		}
		if i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		l := pl.Mean1 // LatencyOf's rule: 1-minute mean, else last sample
		if l <= 0 {
			l = pl.Last
		}
		lt = append(lt, shardKV{uint64(i)<<32 | uint64(j), l.Seconds()})
	}
	bw = sortKVByKey(bw, n)
	lt = sortKVByKey(lt, n)
	measured := make([]shardPair, 0, min(len(bw), len(lt)))
	for bi, li := 0, 0; bi < len(bw) && li < len(lt); {
		switch {
		case bw[bi].key < lt[li].key:
			bi++
		case bw[bi].key > lt[li].key:
			li++
		default:
			c := globalPeak - bw[bi].val
			if c < 0 {
				c = 0
			}
			measured = append(measured, shardPair{lt[li].key, lt[li].val, c})
			bi++
			li++
		}
	}
	if len(measured) == 0 {
		return nil, fmt.Errorf("alloc: no pairwise measurements available for %d nodes", n)
	}

	// The dense path sum-normalizes each term over all n(n-1)/2 pairs,
	// pricing unmeasured pairs at the worst measured values. Those sums
	// are reproduced exactly from the measured pairs alone — sum =
	// measured + worst·(#unmeasured) — so every hierarchical NL value
	// below IS the dense NLUnit of the same pair, and the sharded greedy
	// ranks pairs identically to the dense greedy. (An earlier draft
	// normalized over the sampled collection instead, which skewed the
	// latency/bandwidth mix and reordered pairs relative to dense.)
	measLat, measCbw := 0.0, 0.0
	worstLat, worstCbw := 0.0, 0.0
	for _, p := range measured {
		measLat += p.lat
		measCbw += p.cbw
		if p.lat > worstLat {
			worstLat = p.lat
		}
		if p.cbw > worstCbw {
			worstCbw = p.cbw
		}
	}
	npairs := n * (n - 1) / 2
	unmeasured := float64(npairs - len(measured))
	latSum := measLat + worstLat*unmeasured
	cbwSum := measCbw + worstCbw*unmeasured
	// The dense NLUnit is the pair value rescaled to mean 1 over all
	// pairs (rescaleMeanPairDense). Each sum-normalized term totals
	// exactly 1 over the full pair set, so that mean has the closed form
	// (wL·1⟦latSum>0⟧ + wB·1⟦cbwSum>0⟧)/npairs — no O(n²) pass needed.
	meanV := 0.0
	if latSum > 0 {
		meanV += m.Weights.Latency
	}
	if cbwSum > 0 {
		meanV += m.Weights.Bandwidth
	}
	meanV /= float64(npairs)
	denseNL := func(lat, cbw float64) float64 {
		v := 0.0
		if latSum > 0 {
			v += m.Weights.Latency * lat / latSum
		}
		if cbwSum > 0 {
			v += m.Weights.Bandwidth * cbw / cbwSum
		}
		if meanV > 0 {
			v /= meanV
		}
		return v
	}
	worstVal := denseNL(worstLat, worstCbw)

	// Sub-matrices: every intra-shard pair starts at the worst observed
	// value (the dense path's price for a never-measured pair), then one
	// sweep over the sorted measured list overwrites the measured entries
	// and accumulates up to maxBoundarySamples boundary samples per shard
	// pair — no map lookups, no intermediate pair list.
	sm.sub = make([][]float64, S)
	for s, members := range shards {
		size := len(members)
		sub := make([]float64, size*size)
		for a := range sub {
			sub[a] = worstVal
		}
		for p := 0; p < size; p++ {
			sub[p*size+p] = 0
		}
		sm.sub[s] = sub
	}
	crossSum := make([]float64, S*S)
	crossCnt := make([]int, S*S)
	for _, p := range measured {
		i, j := int(p.key>>32), int(p.key&0xffffffff)
		si, sj := sm.shardOf[i], sm.shardOf[j]
		v := denseNL(p.lat, p.cbw)
		if si == sj {
			size := len(shards[si])
			a, b := sm.posOf[i], sm.posOf[j]
			sm.sub[si][a*size+b] = v
			sm.sub[si][b*size+a] = v
			continue
		}
		if si > sj {
			si, sj = sj, si
		}
		if crossCnt[si*S+sj] >= maxBoundarySamples {
			continue
		}
		crossSum[si*S+sj] += v
		crossCnt[si*S+sj]++
	}

	// Aggregates: mean intra NL on the diagonal (over all pairs, the
	// worst-filled unmeasured ones included), mean sampled boundary NL off
	// it; shard pairs with no measured boundary price at the worst
	// observed value (a never-measured link is assumed bad, not free).
	sm.agg = make([]float64, S*S)
	for s, members := range shards {
		size := len(members)
		if np := size * (size - 1) / 2; np > 0 {
			sum := 0.0
			sub := sm.sub[s]
			for a := 0; a < size; a++ {
				for b := a + 1; b < size; b++ {
					sum += sub[a*size+b]
				}
			}
			sm.agg[s*S+s] = sum / float64(np)
		}
		// else: single-node shard, no internal network cost (stays 0)
	}
	for sa := 0; sa < S; sa++ {
		for sb := sa + 1; sb < S; sb++ {
			v := worstVal
			if crossCnt[sa*S+sb] > 0 {
				v = crossSum[sa*S+sb] / float64(crossCnt[sa*S+sb])
			}
			sm.agg[sa*S+sb] = v
			sm.agg[sb*S+sa] = v
		}
	}
	return sm, nil
}

// pairNL prices the network load between dense indices i and j under the
// hierarchy: the exact sub-matrix entry when they share a shard, the
// shard-pair boundary aggregate otherwise.
func (sm *shardModel) pairNL(i, j int) float64 {
	si, sj := sm.shardOf[i], sm.shardOf[j]
	if si == sj {
		size := len(sm.shards[si])
		return sm.sub[si][sm.posOf[i]*size+sm.posOf[j]]
	}
	return sm.agg[si*sm.numShards()+sj]
}

// Sharded reports whether the model prices network load hierarchically
// (per-shard sub-matrices + aggregates) instead of via the full n×n
// matrix.
func (m *CostModel) Sharded() bool { return m.shard != nil }

// ShardInfo describes an active sharding layer: shard count and the
// partition's source ("topology"-style plan label or "hash"). Zero/empty
// on dense models.
func (m *CostModel) ShardInfo() (shards int, source string) {
	if m.shard == nil {
		return 0, ""
	}
	return m.shard.numShards(), m.shard.source
}

// ShardOptions returns the sharding options the model was built with
// (rebuilds on charged snapshots preserve them).
func (m *CostModel) ShardOptions() ShardOptions { return m.shardOpts }

// TakeShardSpills drains and returns the count of candidates that
// crossed shard boundaries since the last call (0 on dense models). The
// broker surfaces it as an obs counter.
func (m *CostModel) TakeShardSpills() uint64 {
	if m.shard == nil {
		return 0
	}
	return m.shard.spills.Swap(0)
}

// NewCostModelSharded derives the cost model for snap like NewCostModel,
// but prices network load hierarchically — per-shard dense sub-matrices
// plus a shard×shard aggregate, O(Σ sᵢ² + measurements) instead of O(n²)
// — once the live-node count reaches opts.Threshold. Below the threshold
// (or with the zero options) it is exactly NewCostModel: the dense
// exhaustive path, bit for bit. The options are retained on the model so
// rebuilds (weight changes, reservation-charged snapshots) stay sharded.
func NewCostModelSharded(snap *metrics.Snapshot, w Weights, useForecast bool, opts ShardOptions) *CostModel {
	ids := MonitoredLivehosts(snap)
	if !opts.active(len(ids)) {
		m := NewCostModel(snap, w, useForecast)
		m.shardOpts = opts
		return m
	}
	eff := opts.withDefaults()
	n := len(ids)
	m := &CostModel{
		Snap:      snap,
		Weights:   w,
		Forecast:  useForecast,
		Taken:     snap.Taken,
		IDs:       ids,
		idx:       make(map[int]int, n),
		Cores:     make([]int, n),
		LoadM1:    make([]float64, n),
		shardOpts: opts,
	}
	for i, id := range ids {
		m.idx[id] = i
		na := snap.Nodes[id]
		m.Cores[i] = na.Cores
		m.LoadM1[i] = na.CPULoad.M1
	}
	m.attrRows, m.clErr = attrMatrix(snap, ids, useForecast)
	if m.clErr == nil {
		m.CL, m.clErr = sawFromRows(w, m.attrRows)
	}
	if m.clErr == nil && n > 0 {
		m.CLUnit = append([]float64(nil), m.CL...)
		rescaleMeanDense(m.CLUnit)
	}
	shards, source := buildShards(ids, eff.Plan, eff.MaxShardSize)
	m.shard, m.nlErr = newShardModel(snap, m, shards, source)
	return m
}

// NewLike builds a cost model for snap priced with the given inputs,
// preserving m's sharding options — the rebuild path modelFor and the
// reserving policy use so a charged or re-priced snapshot keeps the
// hierarchical representation.
func (m *CostModel) NewLike(snap *metrics.Snapshot, w Weights, useForecast bool) *CostModel {
	return NewCostModelSharded(snap, w, useForecast, m.shardOpts)
}

// shardScratch is one worker's reusable buffers for hierarchical
// candidate generation: the dense-path scratch plus per-shard grouping
// state for the grouped network-cost accumulation.
type shardScratch struct {
	genScratch
	perShard  [][]int
	touched   []int
	inTouched []bool
}

// growShards sizes the grouping state for S shards.
func (sc *shardScratch) growShards(s int) {
	if len(sc.perShard) < s {
		sc.perShard = make([][]int, s)
		sc.touched = make([]int, 0, s)
		sc.inTouched = make([]bool, s)
	}
}

// allocateSharded is the two-level Algorithm 1 over a sharded model.
// Level 1 scouts every shard (Algorithm 1 confined to the shard's exact
// sub-matrix), ranks shards by their best local candidate's raw cost,
// and keeps the top-k; level 2
// runs the paper's per-start greedy generation over the union of the
// top-k shards' nodes, pricing pairs hierarchically (exact sub-matrix
// within a shard, boundary aggregate across), and spills into the
// remaining ranked shards only when the union cannot satisfy req.Procs.
// Algorithm 2 then scores the generated candidates exactly as the dense
// path does. The returned candidate list covers only the union's start
// nodes — the point of the hierarchy is not scoring one candidate per
// cluster node.
func (p NetLoadAware) allocateSharded(m *CostModel, req Request) (Candidate, []Candidate, error) {
	sm := m.shard
	S := sm.numShards()
	caps := m.caps(req)

	// Members of every shard ordered by compute load: the spill fill
	// reads it (within one spill shard the boundary NL term is constant,
	// so the addition cost α·CL(u) + β·boundary(s,t) orders by CL).
	byCL := make([][]int, S)
	for s, members := range sm.shards {
		order := append([]int(nil), members...)
		slices.SortFunc(order, func(a, b int) int {
			ca, cb := m.CLUnit[a], m.CLUnit[b]
			switch {
			case ca < cb:
				return -1
			case ca > cb:
				return 1
			default:
				return a - b
			}
		})
		byCL[s] = order
	}

	// Level 1: each shard is scouted by running Algorithm 1 confined to
	// its members over its exact sub-matrix, and ranked by the raw cost
	// of its best local candidate. Statistical aggregates (mean CL, mean
	// intra NL) rank poorly because the groups the paper's greedy builds
	// are small — a shard is exactly as good as the best sub-group it
	// contains, which the scout measures directly. Total scout work is
	// O(Σ sᵢ²), the same order as building the sub-matrices. The scouts
	// also accumulate each start's candidate costs, approximating the
	// normalization sums Algorithm 2 would see over all n dense starts.
	score := make([]float64, S)
	sumCs := make([]float64, S)
	sumNs := make([]float64, S)
	{
		scratch := make([]genScratch, parallelWorkers(S))
		parallelFor(S, func(w, s int) {
			score[s], sumCs[s], sumNs[s] = p.scoutShard(m, s, caps, req, &scratch[w])
		})
	}
	sumC, sumN := 0.0, 0.0
	for s := 0; s < S; s++ { // shard order: deterministic accumulation
		sumC += sumCs[s]
		sumN += sumNs[s]
	}
	rank := sortIdxByCost(score)
	topK := m.shardOpts.withDefaults().TopK
	if topK > S {
		topK = S
	}
	// Level 2: the search universe is the union of the top-k shards'
	// members (rank order, ascending within a shard). A candidate can
	// mix nodes across the searched shards exactly like the dense path
	// mixes across the whole cluster, with pair costs priced through the
	// hierarchy. Shards outside the top-k only receive nodes via spill
	// (rank order, cheapest CL first within each).
	var union []int
	for k := 0; k < topK; k++ {
		union = append(union, sm.shards[rank[k]]...)
	}
	if len(union) == 0 {
		return Candidate{}, nil, fmt.Errorf("alloc: net-load-aware: no candidate produced")
	}
	spillShards := rank[topK:]
	candidates := make([]Candidate, len(union))
	scratch := make([]shardScratch, parallelWorkers(len(union)))
	parallelFor(len(union), func(w, i int) {
		candidates[i] = p.generateSharded(m, union[i], union, caps, req, spillShards, byCL, &scratch[w])
	})

	// Score with the scout-estimated normalization sums: Algorithm 2
	// divides by the candidate set's total compute and network costs, and
	// the union's candidates are a biased (uniformly good) subset — their
	// own sums would skew the α/β mix relative to the dense path's
	// n-candidate set. The scouts' per-start candidates stand in for the
	// dense candidate set instead.
	bestIdx, err := scoreCandidatesNormed(candidates, req, sumC, sumN)
	if err != nil {
		return Candidate{}, nil, err
	}
	return candidates[bestIdx], candidates, nil
}

// scoutShard runs the paper's greedy generation confined to shard s —
// every member as a start, addition costs from the shard's exact
// sub-matrix — and returns the raw Equation-4 group cost of its best
// local candidate (α·Σ CL + β·Σ intra-pair NL) plus the summed compute
// and network costs of every start's local candidate, the shard's
// contribution to the Algorithm 2 normalization estimate. When the
// shard's free capacity cannot cover the request, costs are
// extrapolated linearly to req.Procs so partially-covering shards stay
// comparable; a shard with no usable capacity scores +Inf and sorts
// last.
func (p NetLoadAware) scoutShard(m *CostModel, s int, caps []int, req Request, sc *genScratch) (best, sumC, sumN float64) {
	sm := m.shard
	members := sm.shards[s]
	size := len(members)
	sc.grow(size)
	best = math.Inf(1)
	for pv := range members {
		row := sm.sub[s][pv*size : (pv+1)*size]
		addCost := sc.addCost[:size]
		for k, u := range members {
			if k == pv {
				addCost[k] = 0 // A_v(v) = 0
				continue
			}
			addCost[k] = req.Alpha*m.CLUnit[u] + req.Beta*row[k]
		}
		h := sc.heap[:size]
		for i := range h {
			h[i] = i
		}
		heapifyIdx(h, addCost)
		used := sc.used[:0] // selected shard positions, not dense indices
		remaining := req.Procs
		for len(h) > 0 && remaining > 0 {
			var k int
			k, h = popIdx(h, addCost)
			take := caps[members[k]]
			if take <= 0 {
				continue
			}
			if take > remaining {
				take = remaining
			}
			used = append(used, k)
			remaining -= take
		}
		sc.used = used
		if len(used) == 0 {
			continue
		}
		c, nn := 0.0, 0.0
		for a, ka := range used {
			c += m.CLUnit[members[ka]]
			for _, kb := range used[a+1:] {
				nn += sm.sub[s][ka*size+kb]
			}
		}
		if remaining > 0 {
			covered := req.Procs - remaining
			scale := float64(req.Procs) / float64(covered)
			c *= scale
			nn *= scale
		}
		sumC += c
		sumN += nn
		if cost := req.Alpha*c + req.Beta*nn; cost < best {
			best = cost
		}
	}
	return best, sumC, sumN
}

// generateSharded builds the candidate sub-graph seeded at dense index v:
// the paper's greedy heap selection over the union of the searched
// (top-k) shards' members with pair costs priced through the hierarchy
// (exact sub-matrix within a shard, boundary aggregate across), then
// rank-ordered spill into the unsearched shards when the union's
// capacity cannot cover the request, then the dense path's round-robin
// remainder. The candidate's NetworkCost prices same-shard pairs exactly
// and cross-shard pairs at the boundary aggregate, grouped per shard
// pair so cost accumulation is O(Σ kₛ² + S²) instead of O(k²).
func (p NetLoadAware) generateSharded(m *CostModel, v int, union []int, caps []int, req Request, spillShards []int, byCL [][]int, sc *shardScratch) Candidate {
	sm := m.shard
	size := len(union)
	sc.grow(size)
	addCost := sc.addCost[:size]
	for k, u := range union {
		if u == v {
			addCost[k] = 0 // A_v(v) = 0
			continue
		}
		addCost[k] = req.Alpha*m.CLUnit[u] + req.Beta*sm.pairNL(v, u)
	}
	h := sc.heap[:size]
	for i := range h {
		h[i] = i
	}
	heapifyIdx(h, addCost)
	used, counts := sc.used[:0], sc.counts[:0]
	remaining := req.Procs
	for len(h) > 0 && remaining > 0 {
		var k int
		k, h = popIdx(h, addCost)
		i := union[k]
		take := caps[i]
		if take > remaining {
			take = remaining
		}
		if take <= 0 {
			continue
		}
		used = append(used, i)
		counts = append(counts, take)
		remaining -= take
	}
	spilled := false
	for _, t := range spillShards {
		if remaining <= 0 {
			break
		}
		for _, u := range byCL[t] {
			if remaining <= 0 {
				break
			}
			take := caps[u]
			if take > remaining {
				take = remaining
			}
			if take <= 0 {
				continue
			}
			used = append(used, u)
			counts = append(counts, take)
			remaining -= take
			spilled = true
		}
	}
	for remaining > 0 && len(used) > 0 {
		for k := range used {
			if remaining == 0 {
				break
			}
			counts[k]++
			remaining--
		}
	}
	sc.used, sc.counts = used, counts
	if spilled {
		sm.spills.Add(1)
	}

	var nodes []int
	if len(used) > 0 {
		nodes = make([]int, len(used))
	}
	procs := make(map[int]int, len(used))
	cand := Candidate{Start: m.IDs[v], Spill: spilled}
	for k, i := range used {
		nodes[k] = m.IDs[i]
		procs[m.IDs[i]] = counts[k]
		cand.ComputeCost += m.CLUnit[i]
	}
	cand.Nodes = nodes
	cand.Procs = procs

	// Grouped network cost: selected indices bucketed per shard (buckets
	// keep selection order; touched shards sort ascending so float
	// accumulation is deterministic).
	S := sm.numShards()
	sc.growShards(S)
	touched := sc.touched[:0]
	for _, i := range used {
		t := sm.shardOf[i]
		if !sc.inTouched[t] {
			sc.inTouched[t] = true
			touched = append(touched, t)
		}
		sc.perShard[t] = append(sc.perShard[t], i)
	}
	sort.Ints(touched)
	for a := 0; a < len(touched); a++ {
		ta := touched[a]
		ga := sc.perShard[ta]
		sizeA := len(sm.shards[ta])
		for x := 0; x < len(ga); x++ {
			for y := x + 1; y < len(ga); y++ {
				cand.NetworkCost += sm.sub[ta][sm.posOf[ga[x]]*sizeA+sm.posOf[ga[y]]]
			}
		}
		for b := a + 1; b < len(touched); b++ {
			tb := touched[b]
			cand.NetworkCost += float64(len(ga)*len(sc.perShard[tb])) * sm.agg[ta*S+tb]
		}
	}
	for _, t := range touched {
		sc.perShard[t] = sc.perShard[t][:0]
		sc.inTouched[t] = false
	}
	sc.touched = touched[:0]
	return cand
}
