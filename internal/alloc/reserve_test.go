package alloc

import (
	"math"
	"testing"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
	"nlarm/internal/stats"
)

// TestChargedGuardsZeroCores is the Equation-1 edge-case regression: a
// node publishing Cores == 0 used to price its occupancy share at +Inf
// (or NaN for an empty claim), poisoning every attribute fed into the
// SAW matrix. The guard treats such a node as single-core, like
// Equation 3's effProcs does.
func TestChargedGuardsZeroCores(t *testing.T) {
	snap := synthSnapshot(uniformLoads(3, 0.5))
	broken := snap.Nodes[1]
	broken.Cores = 0
	snap.Nodes[1] = broken

	p := NewReservingPolicy(LoadAware{}, time.Minute)
	cancel := p.Reserve(map[int]int{0: 4, 1: 4, 2: 4}, snap.Taken)
	defer cancel()

	charged := p.Charged(snap)
	if charged == snap {
		t.Fatal("live reservation did not produce a charged copy")
	}
	for id := 0; id < 3; id++ {
		na := charged.Nodes[id]
		if math.IsInf(na.CPUUtilPct.M1, 0) || math.IsNaN(na.CPUUtilPct.M1) {
			t.Fatalf("node %d utilization poisoned: %v", id, na.CPUUtilPct.M1)
		}
		// The mutated attrs must actually land in charged.Nodes: load
		// rises by the reserved ranks on every window.
		if got, want := na.CPULoad.M1, 0.5+4; got != want {
			t.Fatalf("node %d charged load %g, want %g", id, got, want)
		}
		if na.CPULoad.M15 != 0.5+4 {
			t.Fatalf("node %d M15 not written back: %g", id, na.CPULoad.M15)
		}
	}
	// Zero-core node: 4 ranks on 1 assumed core want +400% but clamp at
	// the 100% ceiling.
	if got := charged.Nodes[1].CPUUtilPct.M1; got != 100 {
		t.Fatalf("zero-core node utilization %g, want clamped 100", got)
	}
	// Equation 1 must stay finite over the charged snapshot.
	cl, err := ComputeLoads(charged, []int{0, 1, 2}, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	for id, v := range cl {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("CL[%d] = %v on charged snapshot", id, v)
		}
	}
}

// TestReservationExpiryStaleSnapshot is the clock-skew regression: a
// degraded or stale-read snapshot carries an old (or zero) Taken, and
// `snap.Taken.Sub(res.at) < TTL` then held forever — reservations became
// immortal the moment the store served one stale value. Pruning is now
// bounded by the latest clock ever seen.
func TestReservationExpiryStaleSnapshot(t *testing.T) {
	fresh := synthSnapshot(uniformLoads(4, 0.5))
	p := NewReservingPolicy(LoadAware{}, time.Minute)
	r := rng.New(3)
	if _, err := p.Allocate(fresh, Request{Procs: 8, PPN: 4}, r.Split()); err != nil {
		t.Fatal(err)
	}
	if got := p.Outstanding(fresh.Taken); got != 1 {
		t.Fatalf("outstanding %d", got)
	}

	// The monitor's clock advances past the TTL...
	later := fresh.Clone()
	later.Taken = fresh.Taken.Add(2 * time.Minute)
	if got := p.Charged(later); got != later {
		t.Fatal("expired reservation still charged at the fresh clock")
	}

	// ...and a subsequent stale read hands back the original snapshot
	// (old Taken) — with the old arithmetic this resurrected nothing but
	// kept anything recorded after it alive forever. Re-record and prune
	// through a stale view to prove expiry still works.
	if _, err := p.Allocate(later, Request{Procs: 8, PPN: 4}, r.Split()); err != nil {
		t.Fatal(err)
	}
	stale := fresh.Clone() // Taken == t0 again, 2 minutes in the past
	if got := p.Charged(stale); got == stale {
		t.Fatal("live reservation invisible through a stale snapshot")
	}
	expired := fresh.Clone()
	expired.Taken = later.Taken.Add(2 * time.Minute)
	if got := p.Charged(expired); got != expired {
		t.Fatal("reservation immortal after stale-read rewind")
	}
	if got := p.Outstanding(fresh.Taken); got != 0 {
		t.Fatalf("outstanding through stale clock %d, want 0 (seen clock governs)", got)
	}
}

// TestZeroTakenSnapshotCannotPinReservations covers the degraded path
// where a snapshot arrives with a zero Taken: recording against it must
// stamp the reservation at the latest seen clock, not at the epoch
// (which would make it instantly expired — or immortal under the old
// subtraction, depending on direction).
func TestZeroTakenSnapshotCannotPinReservations(t *testing.T) {
	fresh := synthSnapshot(uniformLoads(4, 0.5))
	p := NewReservingPolicy(LoadAware{}, time.Minute)
	if p.Charged(fresh) != fresh {
		t.Fatal("no reservations yet")
	}
	zero := fresh.Clone()
	zero.Taken = time.Time{}
	p.Reserve(map[int]int{0: 2}, zero.Taken)
	// Stamped at the seen clock (fresh.Taken), so it is alive now...
	if got := p.Outstanding(fresh.Taken); got != 1 {
		t.Fatalf("outstanding %d, want 1", got)
	}
	// ...and dead after TTL.
	if got := p.Outstanding(fresh.Taken.Add(90 * time.Second)); got != 0 {
		t.Fatalf("outstanding after TTL %d, want 0", got)
	}
}

// TestReserveCancelReleasesClaim verifies the external-reservation API
// used for backfill shadow reservations: the claim is charged while
// live and vanishes on cancel.
func TestReserveCancelReleasesClaim(t *testing.T) {
	snap := synthSnapshot(uniformLoads(4, 0.5))
	p := NewReservingPolicy(LoadAware{}, time.Minute)
	cancel := p.Reserve(map[int]int{2: 6}, snap.Taken)
	charged := p.Charged(snap)
	if charged == snap || charged.Nodes[2].CPULoad.M1 != 6.5 {
		t.Fatalf("shadow claim not charged: %+v", charged.Nodes[2].CPULoad)
	}
	cancel()
	if got := p.Charged(snap); got != snap {
		t.Fatal("cancelled claim still charged")
	}
	if got := p.Outstanding(snap.Taken); got != 0 {
		t.Fatalf("outstanding after cancel %d", got)
	}
}

// TestNodeFreeSlots pins the non-wrapping free-capacity reading against
// Equation 3's wrap-around.
func TestNodeFreeSlots(t *testing.T) {
	mk := func(cores int, load float64) metrics.NodeAttrs {
		na := metrics.NodeAttrs{Cores: cores}
		na.CPULoad = stats.Windowed{M1: load}
		return na
	}
	cases := []struct {
		cores int
		load  float64
		want  int
	}{
		{12, 0, 12},
		{12, 3.2, 8},
		{12, 11.5, 0},
		{12, 12, 0},  // saturated: EffectiveProcs would wrap to 12
		{12, 25, 0},  // oversubscribed
		{12, -1, 12}, // negative load clamps to idle
		{0, 3, 0},    // no published cores: one assumed core, busy
		{0, 0, 1},    // no published cores, idle
	}
	for _, c := range cases {
		if got := NodeFreeSlots(mk(c.cores, c.load)); got != c.want {
			t.Fatalf("NodeFreeSlots(cores=%d, load=%g) = %d, want %d", c.cores, c.load, got, c.want)
		}
	}
	// Saturated node under Equation 3 reports full capacity — the wrap
	// the aggregate reading must avoid.
	if got := EffectiveProcs(mk(12, 12), 0); got != 12 {
		t.Fatalf("EffectiveProcs wrap changed: %d", got)
	}
}

// TestFreeSlotsAggregates sums over monitored livehosts only.
func TestFreeSlotsAggregates(t *testing.T) {
	snap := synthSnapshot([]float64{0, 3.2, 12})
	// 12 + 8 + 0 idle slots on 12-core nodes.
	if got := FreeSlots(snap); got != 20 {
		t.Fatalf("FreeSlots = %d, want 20", got)
	}
	snap.Livehosts = []int{0, 2, 99} // 99 unmonitored, 1 dead
	if got := FreeSlots(snap); got != 12 {
		t.Fatalf("FreeSlots after livehost filter = %d, want 12", got)
	}
}

// TestChargedPrunesSaturatedNodes is the Equation-3 wrap regression on
// the reservation path: once charging leaves a node without a single
// free slot, EffectiveProcs' modulo would report it freshly empty and
// the inner policy's fill step would happily pile more ranks onto it.
// Charging must instead drop such nodes from the copy's universe.
func TestChargedPrunesSaturatedNodes(t *testing.T) {
	snap := synthSnapshot([]float64{12.5, 0.5, 0.5, 0.5}) // node 0 saturated
	p := NewReservingPolicy(LoadAware{}, time.Minute)
	cancel := p.Reserve(map[int]int{1: 2}, snap.Taken)
	defer cancel()

	charged := p.Charged(snap)
	if charged == snap {
		t.Fatal("live reservation did not produce a charged copy")
	}
	for _, id := range charged.Livehosts {
		if id == 0 {
			t.Fatalf("saturated node 0 kept in charged livehosts %v", charged.Livehosts)
		}
	}
	if len(charged.Livehosts) != 3 {
		t.Fatalf("charged livehosts %v, want nodes 1-3", charged.Livehosts)
	}
	// The original snapshot is untouched.
	if len(snap.Livehosts) != 4 {
		t.Fatalf("caller snapshot mutated: %v", snap.Livehosts)
	}
	// And an allocation through the policy steers clear of the node.
	r := rng.New(11)
	a, err := p.Allocate(snap, Request{Procs: 24, PPN: 12}, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range a.Nodes {
		if n == 0 {
			t.Fatalf("allocation %v used the saturated node", a.Nodes)
		}
	}
}

// TestChargedKeepsUniverseWhenAllSaturated: when pruning would empty the
// universe entirely, the full node set is kept — an oversubscribed
// allocation still beats failing with "no live monitored nodes".
func TestChargedKeepsUniverseWhenAllSaturated(t *testing.T) {
	snap := synthSnapshot(uniformLoads(3, 0.5))
	p := NewReservingPolicy(LoadAware{}, time.Minute)
	cancel := p.Reserve(map[int]int{0: 12, 1: 12, 2: 12}, snap.Taken)
	defer cancel()

	charged := p.Charged(snap)
	if len(charged.Livehosts) != 3 {
		t.Fatalf("all-saturated universe pruned to %v", charged.Livehosts)
	}
	r := rng.New(12)
	if _, err := p.Allocate(snap, Request{Procs: 6, PPN: 6}, r.Split()); err != nil {
		t.Fatalf("allocation on saturated cluster failed: %v", err)
	}
}
