package alloc

import (
	"fmt"
	"sort"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
)

// GroupedNetLoadAware is the paper's scaling adaptation (§3.3.2: "our
// solution may need to be adapted for larger scale by grouping the nodes
// based on cluster topology and calculating inter-group bandwidth/latency
// so that P2P bandwidth/latency calculation requires less amount of
// communication") and the seed of its multi-cluster future work (§6).
//
// Nodes are partitioned into groups (typically by switch, or by cluster
// in a multi-cluster deployment). Candidate generation runs over groups
// using aggregated group compute loads and inter-group network loads —
// O(G² log G) instead of O(V² log V) — and the selected groups are then
// filled with their least-loaded nodes.
type GroupedNetLoadAware struct {
	// GroupOf maps a node ID to its group ID. Required. Typically
	// topology.SwitchOf or a cluster index.
	GroupOf func(node int) int
}

// Name implements Policy.
func (GroupedNetLoadAware) Name() string { return "grouped-net-load-aware" }

// groupInfo aggregates a group's members and costs.
type groupInfo struct {
	id       int
	members  []int // sorted by compute load ascending
	capacity int
	// meanCL is the group's mean per-node compute load.
	meanCL float64
	// intraNL is the mean network load between the group's own pairs.
	intraNL float64
}

// Allocate implements Policy.
func (p GroupedNetLoadAware) Allocate(snap *metrics.Snapshot, req Request, r *rng.Rand) (Allocation, error) {
	if p.GroupOf == nil {
		return Allocation{}, fmt.Errorf("alloc: grouped: GroupOf is required")
	}
	req, err := req.Validate()
	if err != nil {
		return Allocation{}, err
	}
	ids := MonitoredLivehosts(snap)
	if len(ids) == 0 {
		return Allocation{}, fmt.Errorf("alloc: grouped: no live monitored nodes")
	}
	cl, err := ComputeLoadsOpt(snap, ids, req.Weights, req.UseForecast)
	if err != nil {
		return Allocation{}, err
	}
	nl, err := NetworkLoads(snap, ids, req.Weights)
	if err != nil {
		return Allocation{}, err
	}
	RescaleMeanNode(cl)
	RescaleMeanPair(nl)
	caps := capacity(snap, ids, req)

	// Partition into groups.
	byGroup := make(map[int]*groupInfo)
	var groupIDs []int
	for _, id := range ids {
		g := p.GroupOf(id)
		gi, ok := byGroup[g]
		if !ok {
			gi = &groupInfo{id: g}
			byGroup[g] = gi
			groupIDs = append(groupIDs, g)
		}
		gi.members = append(gi.members, id)
		gi.capacity += caps[id]
	}
	sort.Ints(groupIDs)
	for _, g := range groupIDs {
		gi := byGroup[g]
		sort.Slice(gi.members, func(i, j int) bool {
			ci, cj := cl[gi.members[i]], cl[gi.members[j]]
			if ci != cj {
				return ci < cj
			}
			return gi.members[i] < gi.members[j]
		})
		sum := 0.0
		for _, m := range gi.members {
			sum += cl[m]
		}
		gi.meanCL = sum / float64(len(gi.members))
		gi.intraNL = meanPairNL(nl, gi.members, gi.members, true)
	}

	// Inter-group network loads: the mean NL over cross pairs — the
	// paper's "inter-group bandwidth/latency".
	interNL := make(map[metrics.PairKey]float64)
	for i := 0; i < len(groupIDs); i++ {
		for j := i + 1; j < len(groupIDs); j++ {
			a, b := byGroup[groupIDs[i]], byGroup[groupIDs[j]]
			interNL[metrics.Pair(groupIDs[i], groupIDs[j])] = meanPairNL(nl, a.members, b.members, false)
		}
	}

	// Candidate generation over groups (Algorithm 1 at group granularity).
	type groupCandidate struct {
		start  int
		groups []int
		total  float64
	}
	var best *groupCandidate
	var bestAlloc Allocation
	for _, start := range groupIDs {
		addCost := make(map[int]float64, len(groupIDs))
		for _, g := range groupIDs {
			if g == start {
				addCost[g] = 0
				continue
			}
			addCost[g] = req.Alpha*byGroup[g].meanCL + req.Beta*interNL[metrics.Pair(start, g)]
		}
		order := sortByCost(groupIDs, addCost)
		var chosen []int
		capacitySum := 0
		for _, g := range order {
			chosen = append(chosen, g)
			capacitySum += byGroup[g].capacity
			if capacitySum >= req.Procs {
				break
			}
		}
		// Score the candidate: α·(mean member CL) + β·(mean of intra- and
		// inter-group NL across the chosen groups).
		clSum, nodes := 0.0, 0
		netSum, netTerms := 0.0, 0
		for i, g := range chosen {
			gi := byGroup[g]
			clSum += gi.meanCL * float64(len(gi.members))
			nodes += len(gi.members)
			netSum += gi.intraNL
			netTerms++
			for j := i + 1; j < len(chosen); j++ {
				netSum += interNL[metrics.Pair(g, chosen[j])]
				netTerms++
			}
		}
		total := req.Alpha*clSum/float64(nodes) + req.Beta*netSum/float64(netTerms)
		if best == nil || total < best.total {
			cand := groupCandidate{start: start, groups: chosen, total: total}
			a, ok := p.fillGroups(chosen, byGroup, caps, req.Procs)
			if !ok {
				continue
			}
			best = &cand
			bestAlloc = a
		}
	}
	if best == nil {
		return Allocation{}, fmt.Errorf("alloc: grouped: no feasible candidate")
	}
	bestAlloc.Policy = p.Name()
	bestAlloc.TotalLoad = best.total
	return bestAlloc, nil
}

// fillGroups takes the chosen groups in order and assigns processes to
// their least-loaded nodes first, spilling round-robin if capacity runs
// short.
func (p GroupedNetLoadAware) fillGroups(groups []int, byGroup map[int]*groupInfo, caps map[int]int, procs int) (Allocation, bool) {
	var order []int
	for _, g := range groups {
		order = append(order, byGroup[g].members...)
	}
	nodes, assigned := fill(order, caps, procs)
	if len(nodes) == 0 {
		return Allocation{}, false
	}
	total := 0
	for _, v := range assigned {
		total += v
	}
	if total < procs {
		return Allocation{}, false
	}
	return Allocation{Nodes: nodes, Procs: assigned}, true
}

// meanPairNL averages NL over pairs drawn from a×b; when same is true a
// and b are the same set and only distinct unordered pairs count.
func meanPairNL(nl map[metrics.PairKey]float64, a, b []int, same bool) float64 {
	sum, n := 0.0, 0
	if same {
		for i := 0; i < len(a); i++ {
			for j := i + 1; j < len(a); j++ {
				sum += nl[metrics.Pair(a[i], a[j])]
				n++
			}
		}
	} else {
		for _, x := range a {
			for _, y := range b {
				sum += nl[metrics.Pair(x, y)]
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
