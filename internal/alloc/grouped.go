package alloc

import (
	"fmt"
	"sort"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
)

// GroupedNetLoadAware is the paper's scaling adaptation (§3.3.2: "our
// solution may need to be adapted for larger scale by grouping the nodes
// based on cluster topology and calculating inter-group bandwidth/latency
// so that P2P bandwidth/latency calculation requires less amount of
// communication") and the seed of its multi-cluster future work (§6).
//
// Nodes are partitioned into groups (typically by switch, or by cluster
// in a multi-cluster deployment). Candidate generation runs over groups
// using aggregated group compute loads and inter-group network loads —
// O(G² log G) instead of O(V² log V) — and the selected groups are then
// filled with their least-loaded nodes.
type GroupedNetLoadAware struct {
	// GroupOf maps a node ID to its group ID. Required. Typically
	// topology.SwitchOf or a cluster index.
	GroupOf func(node int) int
}

// Name implements Policy.
func (GroupedNetLoadAware) Name() string { return "grouped-net-load-aware" }

// groupInfo aggregates a group's members (as dense model indices) and
// costs.
type groupInfo struct {
	id       int
	members  []int // dense indices, sorted by compute load ascending
	capacity int
	// meanCL is the group's mean per-node compute load.
	meanCL float64
	// intraNL is the mean network load between the group's own pairs.
	intraNL float64
}

// Allocate implements Policy.
func (p GroupedNetLoadAware) Allocate(snap *metrics.Snapshot, req Request, r *rng.Rand) (Allocation, error) {
	if p.GroupOf == nil {
		return Allocation{}, fmt.Errorf("alloc: grouped: GroupOf is required")
	}
	req, err := req.Validate()
	if err != nil {
		return Allocation{}, err
	}
	return p.AllocateModel(NewCostModel(snap, req.Weights, req.UseForecast), req, r)
}

// AllocateModel implements ModelPolicy: the grouped heuristic over the
// dense indexed view — group aggregation, inter-group network loads, and
// candidate scoring all read the model's flat slices.
func (p GroupedNetLoadAware) AllocateModel(m *CostModel, req Request, r *rng.Rand) (Allocation, error) {
	if p.GroupOf == nil {
		return Allocation{}, fmt.Errorf("alloc: grouped: GroupOf is required")
	}
	req, err := req.Validate()
	if err != nil {
		return Allocation{}, err
	}
	m = modelFor(m, req)
	n := m.Len()
	if n == 0 {
		return Allocation{}, fmt.Errorf("alloc: grouped: no live monitored nodes")
	}
	if err := m.CLErr(); err != nil {
		return Allocation{}, err
	}
	if err := m.NLErr(); err != nil {
		return Allocation{}, err
	}
	if m.Sharded() {
		// The grouped heuristic defines its own aggregation over the dense
		// n×n matrix; a hierarchical model carries no NLUnit, so rebuild
		// densely (this policy is the paper's §3.3.2 sketch, kept for
		// comparison — the sharded allocator is its production successor).
		m = NewCostModel(m.Snap, req.Weights, req.UseForecast)
		if err := m.NLErr(); err != nil {
			return Allocation{}, err
		}
	}
	caps := m.caps(req)

	// Partition into groups (members are dense indices; index order is
	// node-ID order, so first-seen group order matches the map path).
	byGroup := make(map[int]*groupInfo)
	var groupIDs []int
	for i := 0; i < n; i++ {
		g := p.GroupOf(m.IDs[i])
		gi, ok := byGroup[g]
		if !ok {
			gi = &groupInfo{id: g}
			byGroup[g] = gi
			groupIDs = append(groupIDs, g)
		}
		gi.members = append(gi.members, i)
		gi.capacity += caps[i]
	}
	sort.Ints(groupIDs)
	for _, g := range groupIDs {
		gi := byGroup[g]
		sort.Slice(gi.members, func(i, j int) bool {
			ci, cj := m.CLUnit[gi.members[i]], m.CLUnit[gi.members[j]]
			if ci != cj {
				return ci < cj
			}
			return gi.members[i] < gi.members[j]
		})
		sum := 0.0
		for _, i := range gi.members {
			sum += m.CLUnit[i]
		}
		gi.meanCL = sum / float64(len(gi.members))
		gi.intraNL = m.meanPairNL(gi.members, gi.members, true)
	}

	// Inter-group network loads: the mean NL over cross pairs — the
	// paper's "inter-group bandwidth/latency".
	interNL := make(map[metrics.PairKey]float64, len(groupIDs)*(len(groupIDs)-1)/2)
	for i := 0; i < len(groupIDs); i++ {
		for j := i + 1; j < len(groupIDs); j++ {
			a, b := byGroup[groupIDs[i]], byGroup[groupIDs[j]]
			interNL[metrics.Pair(groupIDs[i], groupIDs[j])] = m.meanPairNL(a.members, b.members, false)
		}
	}

	// Candidate generation over groups (Algorithm 1 at group granularity).
	type groupCandidate struct {
		start  int
		groups []int
		total  float64
	}
	var best *groupCandidate
	var bestAlloc Allocation
	for _, start := range groupIDs {
		addCost := make(map[int]float64, len(groupIDs))
		for _, g := range groupIDs {
			if g == start {
				addCost[g] = 0
				continue
			}
			addCost[g] = req.Alpha*byGroup[g].meanCL + req.Beta*interNL[metrics.Pair(start, g)]
		}
		order := sortByCost(groupIDs, addCost)
		var chosen []int
		capacitySum := 0
		for _, g := range order {
			chosen = append(chosen, g)
			capacitySum += byGroup[g].capacity
			if capacitySum >= req.Procs {
				break
			}
		}
		// Score the candidate: α·(mean member CL) + β·(mean of intra- and
		// inter-group NL across the chosen groups).
		clSum, nodes := 0.0, 0
		netSum, netTerms := 0.0, 0
		for i, g := range chosen {
			gi := byGroup[g]
			clSum += gi.meanCL * float64(len(gi.members))
			nodes += len(gi.members)
			netSum += gi.intraNL
			netTerms++
			for j := i + 1; j < len(chosen); j++ {
				netSum += interNL[metrics.Pair(g, chosen[j])]
				netTerms++
			}
		}
		total := req.Alpha*clSum/float64(nodes) + req.Beta*netSum/float64(netTerms)
		if best == nil || total < best.total {
			cand := groupCandidate{start: start, groups: chosen, total: total}
			a, ok := p.fillGroups(m, chosen, byGroup, caps, req.Procs)
			if !ok {
				continue
			}
			best = &cand
			bestAlloc = a
		}
	}
	if best == nil {
		return Allocation{}, fmt.Errorf("alloc: grouped: no feasible candidate")
	}
	bestAlloc.Policy = p.Name()
	bestAlloc.TotalLoad = best.total
	return bestAlloc, nil
}

// fillGroups takes the chosen groups in order and assigns processes to
// their least-loaded nodes first, spilling round-robin if capacity runs
// short.
func (p GroupedNetLoadAware) fillGroups(m *CostModel, groups []int, byGroup map[int]*groupInfo, caps []int, procs int) (Allocation, bool) {
	var order []int
	for _, g := range groups {
		order = append(order, byGroup[g].members...)
	}
	used, counts := fillIdx(order, caps, procs)
	if len(used) == 0 {
		return Allocation{}, false
	}
	total := 0
	for _, v := range counts {
		total += v
	}
	if total < procs {
		return Allocation{}, false
	}
	nodes, assigned := indicesToAllocation(m, used, counts)
	return Allocation{Nodes: nodes, Procs: assigned}, true
}

// meanPairNL averages the model's NLUnit over pairs drawn from a×b (as
// dense indices); when same is true a and b are the same set and only
// distinct unordered pairs count.
func (m *CostModel) meanPairNL(a, b []int, same bool) float64 {
	width := len(m.IDs)
	sum, n := 0.0, 0
	if same {
		for i := 0; i < len(a); i++ {
			for j := i + 1; j < len(a); j++ {
				sum += m.NLUnit[a[i]*width+a[j]]
				n++
			}
		}
	} else {
		for _, x := range a {
			for _, y := range b {
				sum += m.NLUnit[x*width+y]
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
