package alloc

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
	"nlarm/internal/stats"
)

// shardedEquivSnapshot builds a seeded snapshot whose pair measurements
// follow a switch-like structure: nShards groups of perShard nodes with
// fast, fully measured intra-group links and slower, sparsely measured
// cross-group links. It returns the snapshot plus the group membership
// (node IDs per group) for building the matching ShardPlan.
func shardedEquivSnapshot(r *rng.Rand, nShards, perShard int) (*metrics.Snapshot, [][]int) {
	snap := &metrics.Snapshot{
		Taken:     t0,
		Nodes:     make(map[int]metrics.NodeAttrs),
		Latency:   make(map[metrics.PairKey]metrics.PairLatency),
		Bandwidth: make(map[metrics.PairKey]metrics.PairBandwidth),
	}
	groups := make([][]int, nShards)
	shardOf := make(map[int]int)
	var ids []int
	id := 0
	for s := 0; s < nShards; s++ {
		for i := 0; i < perShard; i++ {
			id += 1 + r.Intn(3)
			ids = append(ids, id)
			groups[s] = append(groups[s], id)
			shardOf[id] = s
		}
	}
	for _, k := range r.Perm(len(ids)) {
		nid := ids[k]
		snap.Livehosts = append(snap.Livehosts, nid)
		cores := 4 * (1 + r.Intn(4))
		na := metrics.NodeAttrs{
			NodeID: nid, Hostname: fmt.Sprintf("n%d", nid), Timestamp: t0,
			Cores: cores, FreqGHz: r.Range(2.0, 5.0), TotalMemMB: 8192 * float64(1+r.Intn(3)),
			Users: r.Intn(4),
		}
		load := r.Range(0, float64(cores))
		na.CPULoad = stats.Windowed{M1: load, M5: load, M15: load}
		na.CPUUtilPct = stats.Windowed{M1: r.Range(0, 100), M5: 50, M15: 50}
		na.FlowRateBps = stats.Windowed{M1: r.Range(0, 5e7), M5: 1e7, M15: 1e7}
		na.AvailMemMB = stats.Windowed{M1: r.Range(1000, na.TotalMemMB), M5: 9000, M15: 9000}
		snap.Nodes[nid] = na
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			same := shardOf[ids[i]] == shardOf[ids[j]]
			if !same && !r.Bool(0.4) {
				continue // most cross-shard pairs are unmeasured (sampled boundary)
			}
			key := metrics.Pair(ids[i], ids[j])
			var lat time.Duration
			var avail float64
			peak := 125e6
			if same {
				lat = time.Duration(r.Range(50, 150)) * time.Microsecond
				avail = r.Range(80e6, 120e6)
			} else {
				lat = time.Duration(r.Range(300, 900)) * time.Microsecond
				avail = r.Range(10e6, 60e6)
			}
			snap.Latency[key] = metrics.PairLatency{U: key.U, V: key.V, Timestamp: t0, Last: lat, Mean1: lat}
			snap.Bandwidth[key] = metrics.PairBandwidth{U: key.U, V: key.V, Timestamp: t0, AvailBps: avail, PeakBps: peak}
		}
	}
	return snap, groups
}

// denseGroupCost prices a chosen node set under the exhaustive dense
// model: α·Σ CLUnit + β·Σ NLUnit over all pairs — the exact raw group
// cost the paper's Equation 4 normalizes.
func denseGroupCost(m *CostModel, nodes []int, req Request) float64 {
	n := m.Len()
	cost := 0.0
	for _, id := range nodes {
		i, ok := m.idx[id]
		if !ok {
			panic(fmt.Sprintf("node %d not in model", id))
		}
		cost += req.Alpha * m.CLUnit[i]
	}
	for a := 0; a < len(nodes); a++ {
		for b := a + 1; b < len(nodes); b++ {
			cost += req.Beta * m.NLUnit[m.idx[nodes[a]]*n+m.idx[nodes[b]]]
		}
	}
	return cost
}

// TestShardedFallbackBitForBit proves NewCostModelSharded below the
// threshold is exactly the dense path: same model arrays, same best
// candidate, same candidate list, DeepEqual to AllocateExplain.
func TestShardedFallbackBitForBit(t *testing.T) {
	p := NetLoadAware{}
	for seed := uint64(1); seed <= 8; seed++ {
		r := rng.New(seed * 31337)
		n := 8 + r.Intn(33)
		snap := randomEquivSnapshot(r, n)
		opts := ShardOptions{Threshold: DefaultShardThreshold} // n << 512
		req := Request{Procs: 1 + r.Intn(2*n), Alpha: 0.5, Beta: 0.5}
		vreq, err := req.Validate()
		if err != nil {
			t.Fatal(err)
		}
		sm := NewCostModelSharded(snap, vreq.Weights, false, opts)
		if sm.Sharded() {
			t.Fatalf("seed %d: model sharded below threshold (n=%d)", seed, n)
		}
		if sm.ShardOptions() != opts {
			t.Fatalf("seed %d: options not retained on fallback model", seed)
		}
		wantBest, wantCands, wantErr := p.AllocateExplain(snap, req)
		gotBest, gotCands, gotErr := p.AllocateExplainModel(sm, req)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("seed %d: error mismatch: dense=%v sharded=%v", seed, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(wantBest, gotBest) {
			t.Errorf("seed %d: best mismatch:\ndense:   %+v\nsharded: %+v", seed, wantBest, gotBest)
		}
		if !reflect.DeepEqual(wantCands, gotCands) {
			t.Errorf("seed %d: candidate list mismatch", seed)
		}
	}
}

// TestShardedQualityWithinBound is the randomized quality-equivalence
// suite: 24 seeded topology-structured snapshots at 64-256 nodes, each
// allocated by both the exhaustive dense path and the two-level sharded
// path, with both chosen groups priced under the dense model. The
// sharded group's raw cost must stay within 1.1x of the dense one's.
func TestShardedQualityWithinBound(t *testing.T) {
	p := NetLoadAware{}
	alphas := []float64{0.2, 0.5, 0.8}
	worst := 0.0
	for seed := uint64(1); seed <= 24; seed++ {
		r := rng.New(seed * 13007)
		nShards := 4 + int(seed)%13 // 4..16 shards of 16 → 64..256 nodes
		perShard := 16
		snap, groups := shardedEquivSnapshot(r, nShards, perShard)
		plan := NewShardPlan(groups, "test-topology")
		opts := ShardOptions{Plan: plan, Threshold: 32, MaxShardSize: perShard, TopK: 4}
		alpha := alphas[int(seed)%len(alphas)]
		req := Request{
			Procs: 1 + r.Intn(2*perShard),
			Alpha: alpha,
			Beta:  1 - alpha,
		}
		vreq, err := req.Validate()
		if err != nil {
			t.Fatal(err)
		}
		dm := NewCostModel(snap, vreq.Weights, false)
		denseBest, _, err := p.AllocateExplainModel(dm, req)
		if err != nil {
			t.Fatalf("seed %d: dense: %v", seed, err)
		}
		sm := NewCostModelSharded(snap, vreq.Weights, false, opts)
		if !sm.Sharded() {
			t.Fatalf("seed %d: model not sharded at n=%d", seed, nShards*perShard)
		}
		shardBest, _, err := p.AllocateExplainModel(sm, req)
		if err != nil {
			t.Fatalf("seed %d: sharded: %v", seed, err)
		}
		for tag, best := range map[string]Candidate{"dense": denseBest, "sharded": shardBest} {
			total := 0
			for _, c := range best.Procs {
				total += c
			}
			if total != req.Procs {
				t.Fatalf("seed %d: %s allocation covers %d of %d procs", seed, tag, total, req.Procs)
			}
		}
		costD := denseGroupCost(dm, denseBest.Nodes, vreq)
		costS := denseGroupCost(dm, shardBest.Nodes, vreq)
		ratio := 1.0
		if costD > 0 {
			ratio = costS / costD
		}
		if ratio > worst {
			worst = ratio
		}
		if ratio > 1.1 {
			t.Errorf("seed %d (n=%d procs=%d α=%.1f): sharded cost %.6f vs dense %.6f (%.3fx > 1.1x)",
				seed, nShards*perShard, req.Procs, alpha, costS, costD, ratio)
		}
	}
	t.Logf("worst sharded/dense cost ratio across suite: %.4fx", worst)
}

// TestShardedSpillCrossesShards forces the spill path: one searched
// shard (TopK=1) whose capacity cannot cover the request, so every
// candidate must cross boundaries, be marked Spill, and still cover
// req.Procs exactly; the spill counter drains through TakeShardSpills.
func TestShardedSpillCrossesShards(t *testing.T) {
	r := rng.New(99)
	snap, groups := shardedEquivSnapshot(r, 4, 8)
	plan := NewShardPlan(groups, "test-topology")
	opts := ShardOptions{Plan: plan, Threshold: 16, MaxShardSize: 8, TopK: 1}
	// PPN=2 caps one 8-node shard at 16 ranks; 40 ranks need 20 nodes.
	req := Request{Procs: 40, PPN: 2, Alpha: 0.5, Beta: 0.5}
	vreq, err := req.Validate()
	if err != nil {
		t.Fatal(err)
	}
	m := NewCostModelSharded(snap, vreq.Weights, false, opts)
	if !m.Sharded() {
		t.Fatal("model not sharded")
	}
	best, cands, err := NetLoadAware{}.AllocateExplainModel(m, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 8 {
		t.Fatalf("candidate count = %d, want 8 (one per top-shard start)", len(cands))
	}
	for i, c := range cands {
		if !c.Spill {
			t.Fatalf("candidate %d did not spill despite insufficient shard capacity", i)
		}
	}
	if !best.Spill {
		t.Fatal("best candidate not marked as spilled")
	}
	total := 0
	seen := make(map[int]bool)
	for id, cnt := range best.Procs {
		total += cnt
		if seen[id] {
			t.Fatalf("node %d assigned twice", id)
		}
		seen[id] = true
	}
	if total != req.Procs {
		t.Fatalf("allocation covers %d of %d procs", total, req.Procs)
	}
	if len(best.Nodes) <= 8 {
		t.Fatalf("best used %d nodes; spill should exceed the 8-node shard", len(best.Nodes))
	}
	if got := m.TakeShardSpills(); got == 0 {
		t.Fatal("TakeShardSpills = 0 after spilled candidates")
	}
	if got := m.TakeShardSpills(); got != 0 {
		t.Fatalf("TakeShardSpills not drained: second call = %d", got)
	}
}

// TestShardedHashFallbackDeterministic checks the no-plan path: hash
// bucketing must be stable across model builds, and two identical
// builds must allocate identically.
func TestShardedHashFallbackDeterministic(t *testing.T) {
	r := rng.New(7)
	snap := randomEquivSnapshot(r, 80)
	opts := ShardOptions{Threshold: 64, MaxShardSize: 16, TopK: 3}
	req := Request{Procs: 48, Alpha: 0.5, Beta: 0.5}
	vreq, err := req.Validate()
	if err != nil {
		t.Fatal(err)
	}
	m1 := NewCostModelSharded(snap, vreq.Weights, false, opts)
	m2 := NewCostModelSharded(snap, vreq.Weights, false, opts)
	if !m1.Sharded() || !m2.Sharded() {
		t.Fatal("hash-fallback model not sharded")
	}
	if _, src := m1.ShardInfo(); src != "hash" {
		t.Fatalf("shard source = %q, want hash", src)
	}
	if s1, _ := m1.ShardInfo(); s1 < 80/16 {
		t.Fatalf("shard count %d too small for 80 nodes at max size 16", s1)
	}
	p := NetLoadAware{}
	b1, c1, err := p.AllocateExplainModel(m1, req)
	if err != nil {
		t.Fatal(err)
	}
	b2, c2, err := p.AllocateExplainModel(m2, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b2) || !reflect.DeepEqual(c1, c2) {
		t.Fatal("identical hash-sharded builds allocated differently")
	}
}

// TestShardedUpdateNodesPreservesShard checks the broker's delta path:
// a dynamic-attribute update on a sharded model keeps the hierarchy (no
// O(n²) rebuild), re-runs Equation 1 identically to a fresh build, and
// still allocates identically to that fresh build.
func TestShardedUpdateNodesPreservesShard(t *testing.T) {
	r := rng.New(5)
	snap, groups := shardedEquivSnapshot(r, 6, 12)
	plan := NewShardPlan(groups, "test-topology")
	opts := ShardOptions{Plan: plan, Threshold: 32, MaxShardSize: 12, TopK: 3}
	w := PaperWeights()
	m := NewCostModelSharded(snap, w, false, opts)
	if !m.Sharded() {
		t.Fatal("base model not sharded")
	}

	next := snap.Clone()
	next.Taken = next.Taken.Add(time.Second)
	var changed []int
	for i := 0; i < 3; i++ {
		id := m.IDs[r.Intn(len(m.IDs))]
		mutateDynamicAttrs(r, next, id)
		changed = append(changed, id)
	}
	u, ok := m.UpdateNodes(next, changed)
	if !ok {
		t.Fatal("UpdateNodes refused a pure dynamic-attr change on a sharded model")
	}
	if !u.Sharded() {
		t.Fatal("UpdateNodes dropped the shard layer")
	}
	uShards, uSrc := u.ShardInfo()
	mShards, mSrc := m.ShardInfo()
	if uShards != mShards || uSrc != mSrc {
		t.Fatalf("shard info changed: (%d,%s) -> (%d,%s)", mShards, mSrc, uShards, uSrc)
	}

	fresh := NewCostModelSharded(next, w, false, opts)
	if !reflect.DeepEqual(u.CLUnit, fresh.CLUnit) {
		t.Fatal("incremental CLUnit diverged from fresh sharded build")
	}
	req := Request{Procs: 30, Alpha: 0.5, Beta: 0.5}
	p := NetLoadAware{}
	bu, _, err := p.AllocateExplainModel(u, req)
	if err != nil {
		t.Fatal(err)
	}
	bf, _, err := p.AllocateExplainModel(fresh, req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bu, bf) {
		t.Fatalf("incremental sharded model allocated differently:\nupdate: %+v\nfresh:  %+v", bu, bf)
	}
}

// TestShardedGroupedPolicyRebuildsDense checks that the grouped policy
// (which aggregates over the dense n×n matrix itself) transparently
// falls back to a dense rebuild when handed a sharded model.
func TestShardedGroupedPolicyRebuildsDense(t *testing.T) {
	r := rng.New(11)
	snap, groups := shardedEquivSnapshot(r, 4, 10)
	plan := NewShardPlan(groups, "test-topology")
	m := NewCostModelSharded(snap, PaperWeights(), false,
		ShardOptions{Plan: plan, Threshold: 16, MaxShardSize: 10, TopK: 2})
	if !m.Sharded() {
		t.Fatal("model not sharded")
	}
	groupOf := make(map[int]int)
	for g, members := range groups {
		for _, id := range members {
			groupOf[id] = g
		}
	}
	p := GroupedNetLoadAware{GroupOf: func(id int) int { return groupOf[id] }}
	a, err := p.AllocateModel(m, Request{Procs: 20, Alpha: 0.5, Beta: 0.5}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalProcs() != 20 {
		t.Fatalf("grouped policy on sharded model covered %d of 20 procs", a.TotalProcs())
	}
}

// TestShardOptionsSignature pins the cache-key semantics: disabled
// options hash to zero, knob and plan changes change the hash, and
// identical plans hash identically.
func TestShardOptionsSignature(t *testing.T) {
	if (ShardOptions{}).Signature() != 0 {
		t.Fatal("disabled options must sign as 0")
	}
	if (ShardOptions{Threshold: -1, TopK: 9}).Signature() != 0 {
		t.Fatal("negative threshold must sign as 0 (sharding off)")
	}
	base := ShardOptions{Threshold: 512}
	if base.Signature() == 0 {
		t.Fatal("enabled options must not sign as 0")
	}
	variants := []ShardOptions{
		{Threshold: 256},
		{Threshold: 512, MaxShardSize: 32},
		{Threshold: 512, TopK: 8},
		{Threshold: 512, Plan: NewShardPlan([][]int{{1, 2}, {3}}, "a")},
	}
	for i, v := range variants {
		if v.Signature() == base.Signature() {
			t.Fatalf("variant %d signs identically to base", i)
		}
	}
	p1 := NewShardPlan([][]int{{1, 2}, {3, 4}}, "x")
	p2 := NewShardPlan([][]int{{1, 2}, {3, 4}}, "x")
	if p1.Signature() != p2.Signature() {
		t.Fatal("identical plans must sign identically")
	}
	if p1.Len() != 4 || p1.Source() != "x" {
		t.Fatalf("plan accessors: len=%d source=%q", p1.Len(), p1.Source())
	}
}

// TestShardedReservingPolicyKeepsHierarchy checks the Charged rebuild
// path: a reservation-charged snapshot re-prices through NewLike, so the
// inner policy keeps seeing a sharded model.
func TestShardedReservingPolicyKeepsHierarchy(t *testing.T) {
	r := rng.New(21)
	snap, groups := shardedEquivSnapshot(r, 4, 12)
	plan := NewShardPlan(groups, "test-topology")
	opts := ShardOptions{Plan: plan, Threshold: 16, MaxShardSize: 12, TopK: 2}
	m := NewCostModelSharded(snap, PaperWeights(), false, opts)
	if !m.Sharded() {
		t.Fatal("model not sharded")
	}
	res := NewReservingPolicy(NetLoadAware{}, time.Minute)
	req := Request{Procs: 16, Alpha: 0.5, Beta: 0.5}
	// First call passes the model through; it records a reservation, so
	// the second call must rebuild from the charged snapshot via NewLike
	// and still satisfy the request (the rebuilt model stays sharded by
	// construction — NewLike preserves the options).
	if _, err := res.AllocateModel(m, req, rng.New(2)); err != nil {
		t.Fatal(err)
	}
	a, err := res.AllocateModel(m, req, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalProcs() != 16 {
		t.Fatalf("charged-path allocation covered %d of 16 procs", a.TotalProcs())
	}
	if got := m.NewLike(snap, PaperWeights(), false); !got.Sharded() {
		t.Fatal("NewLike dropped the shard layer")
	}
}
