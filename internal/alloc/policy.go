package alloc

import (
	"fmt"
	"sort"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
)

// Request is a user's resource request: n processes, an optional
// processes-per-node override, the compute/communication balance (α, β of
// Equation 4, α+β=1), and the attribute weights.
type Request struct {
	// Procs is the total number of MPI processes (n).
	Procs int
	// PPN, when > 0, fixes the processes placed on every selected node,
	// overriding the effective-processor-count estimate (Equation 3).
	PPN int
	// Alpha weights compute load; set high for compute-bound jobs.
	Alpha float64
	// Beta weights network load; set high for communication-bound jobs.
	Beta float64
	// Weights are the attribute weights; zero value means PaperWeights.
	Weights Weights
	// UseForecast prices CPU load and data-flow rate at their NWS-style
	// forecast values instead of the windowed means, when the monitor has
	// published forecasts.
	UseForecast bool
}

// Validate checks the request and fills defaulted fields, returning the
// effective request.
func (r Request) Validate() (Request, error) {
	if r.Procs <= 0 {
		return r, fmt.Errorf("alloc: request for %d processes", r.Procs)
	}
	if r.PPN < 0 {
		return r, fmt.Errorf("alloc: negative ppn %d", r.PPN)
	}
	if r.Alpha == 0 && r.Beta == 0 {
		r.Alpha, r.Beta = 0.5, 0.5
	}
	if r.Alpha < 0 || r.Beta < 0 {
		return r, fmt.Errorf("alloc: negative α/β (%g, %g)", r.Alpha, r.Beta)
	}
	if sum := r.Alpha + r.Beta; sum < 0.999 || sum > 1.001 {
		return r, fmt.Errorf("alloc: α+β must be 1, got %g", sum)
	}
	if r.Weights == (Weights{}) {
		r.Weights = PaperWeights()
	}
	return r, nil
}

// Allocation is a policy's answer: the selected nodes and the process
// count assigned to each.
type Allocation struct {
	// Policy is the name of the policy that produced the allocation.
	Policy string
	// Nodes are the selected nodes in assignment order.
	Nodes []int
	// Procs maps node ID to the number of processes placed there.
	Procs map[int]int
	// TotalLoad is the policy's internal cost of the chosen group
	// (comparable only within one policy's candidates; diagnostic).
	TotalLoad float64
}

// TotalProcs returns the number of processes assigned.
func (a Allocation) TotalProcs() int {
	total := 0
	for _, p := range a.Procs {
		total += p
	}
	return total
}

// RankNodes expands the allocation into a per-rank node list (block
// assignment in node order), ready for mpisim.Placement.
func (a Allocation) RankNodes() []int {
	var out []int
	for _, n := range a.Nodes {
		for i := 0; i < a.Procs[n]; i++ {
			out = append(out, n)
		}
	}
	return out
}

// Policy selects a group of nodes for a request using only monitoring
// data. Implementations must not mutate the snapshot. The random stream
// carries all policy randomness so experiments are reproducible.
type Policy interface {
	Name() string
	Allocate(snap *metrics.Snapshot, req Request, r *rng.Rand) (Allocation, error)
}

// ModelPolicy is implemented by policies that can allocate straight from
// a prebuilt dense CostModel, skipping Equation 1/2 recomputation when
// the caller (the broker) has already priced the snapshot. Results must
// be identical to Allocate over the model's snapshot.
type ModelPolicy interface {
	Policy
	AllocateModel(m *CostModel, req Request, r *rng.Rand) (Allocation, error)
}

// capacity returns each node's process capacity under the request.
func capacity(snap *metrics.Snapshot, ids []int, req Request) map[int]int {
	caps := make(map[int]int, len(ids))
	for _, id := range ids {
		caps[id] = EffectiveProcs(snap.Nodes[id], req.PPN)
	}
	return caps
}

// fill assigns req.Procs processes over the ordered node list, each node
// taking up to its capacity; if capacity runs out the remainder is
// distributed round-robin over the selected nodes (lines 12-13 of
// Algorithm 1 generalized to every policy so all policies satisfy every
// request). It returns the allocation's node order and process map.
func fill(order []int, caps map[int]int, procs int) ([]int, map[int]int) {
	assigned := make(map[int]int)
	var used []int
	remaining := procs
	for _, n := range order {
		if remaining <= 0 {
			break
		}
		take := caps[n]
		if take > remaining {
			take = remaining
		}
		if take <= 0 {
			continue
		}
		assigned[n] = take
		used = append(used, n)
		remaining -= take
	}
	for remaining > 0 && len(used) > 0 {
		for _, n := range used {
			if remaining == 0 {
				break
			}
			assigned[n]++
			remaining--
		}
	}
	return used, assigned
}

// sortByCost orders ids ascending by cost, breaking ties by node ID for
// determinism.
func sortByCost(ids []int, cost map[int]float64) []int {
	out := append([]int(nil), ids...)
	sort.Slice(out, func(i, j int) bool {
		ci, cj := cost[out[i]], cost[out[j]]
		if ci != cj {
			return ci < cj
		}
		return out[i] < out[j]
	})
	return out
}

// Compile-time checks that every shipped policy satisfies Policy, and
// that all of them also serve from a prebuilt cost model.
var (
	_ Policy = Random{}
	_ Policy = Sequential{}
	_ Policy = LoadAware{}
	_ Policy = NetLoadAware{}
	_ Policy = GroupedNetLoadAware{}

	_ ModelPolicy = Random{}
	_ ModelPolicy = Sequential{}
	_ ModelPolicy = LoadAware{}
	_ ModelPolicy = NetLoadAware{}
	_ ModelPolicy = GroupedNetLoadAware{}
	_ ModelPolicy = (*ReservingPolicy)(nil)
)
