package alloc

import (
	"math"
	"testing"
	"time"

	"nlarm/internal/rng"
)

// TestAllocateConstrainedMatchesExplainModel proves the scratch-reusing
// constrained seam is the same heuristic: with every node as a start and
// the model's own Equation 3 capacities, the winner matches
// AllocateExplainModel's bit for bit — selection, order, counts, and
// cost floats — across seeded random snapshots and request shapes.
func TestAllocateConstrainedMatchesExplainModel(t *testing.T) {
	p := NetLoadAware{}
	var sc AllocScratch
	for seed := uint64(1); seed <= 16; seed++ {
		r := rng.New(seed * 104729)
		n := 4 + r.Intn(29)
		snap := randomEquivSnapshot(r, n)
		req := Request{
			Procs: 1 + r.Intn(4*n),
			Alpha: 0.5, Beta: 0.5,
		}
		if r.Bool(0.5) {
			req.PPN = 1 + r.Intn(8)
		}
		vreq, err := req.Validate()
		if err != nil {
			t.Fatal(err)
		}
		m := NewCostModel(snap, vreq.Weights, vreq.UseForecast)
		want, _, err := p.AllocateExplainModel(m, req)
		if err != nil {
			t.Fatalf("seed %d: explain: %v", seed, err)
		}
		got, err := p.AllocateConstrained(m, req, m.caps(vreq), nil, &sc)
		if err != nil {
			t.Fatalf("seed %d: constrained: %v", seed, err)
		}
		if m.IDs[got.Start] != want.Start {
			t.Fatalf("seed %d: start %d != %d", seed, m.IDs[got.Start], want.Start)
		}
		if got.ComputeCost != want.ComputeCost || got.NetworkCost != want.NetworkCost || got.TotalLoad != want.TotalLoad {
			t.Fatalf("seed %d: costs (%g,%g,%g) != (%g,%g,%g)", seed,
				got.ComputeCost, got.NetworkCost, got.TotalLoad,
				want.ComputeCost, want.NetworkCost, want.TotalLoad)
		}
		if len(got.Nodes) != len(want.Nodes) {
			t.Fatalf("seed %d: %d nodes != %d", seed, len(got.Nodes), len(want.Nodes))
		}
		for k, i := range got.Nodes {
			id := m.IDs[i]
			if id != want.Nodes[k] {
				t.Fatalf("seed %d: node %d is %d, want %d", seed, k, id, want.Nodes[k])
			}
			if got.Counts[k] != want.Procs[id] {
				t.Fatalf("seed %d: node %d count %d, want %d", seed, k, got.Counts[k], want.Procs[id])
			}
		}
	}
}

// TestAllocateConstrainedBoundedStarts checks the k-seeded mode: the
// winner comes from the given starts, capacity-zero nodes are never
// selected, and the full request is placed.
func TestAllocateConstrainedBoundedStarts(t *testing.T) {
	p := NetLoadAware{}
	r := rng.New(42)
	snap := randomEquivSnapshot(r, 24)
	req := Request{Procs: 16, PPN: 4, Alpha: 0.5, Beta: 0.5}
	vreq, _ := req.Validate()
	m := NewCostModel(snap, vreq.Weights, vreq.UseForecast)
	caps := make([]int, m.Len())
	for i := range caps {
		if i%3 != 0 {
			caps[i] = 4 // every third node excluded (busy)
		}
	}
	starts := []int{1, 5, 7, 10}
	var sc AllocScratch
	got, err := p.AllocateConstrained(m, req, caps, starts, &sc)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range starts {
		if got.Start == s {
			found = true
		}
	}
	if !found {
		t.Fatalf("winner start %d not among seeds %v", got.Start, starts)
	}
	total := 0
	for k, i := range got.Nodes {
		if i%3 == 0 {
			t.Fatalf("capacity-zero node %d selected", i)
		}
		total += got.Counts[k]
	}
	if total != req.Procs {
		t.Fatalf("placed %d procs, want %d", total, req.Procs)
	}
	// Same inputs, same scratch: byte-stable.
	again, err := p.AllocateConstrained(m, req, caps, starts, &sc)
	if err != nil {
		t.Fatal(err)
	}
	if again.Start != got.Start || again.TotalLoad != got.TotalLoad || len(again.Nodes) != len(got.Nodes) {
		t.Fatalf("repeat call diverged: %+v vs %+v", again, got)
	}
}

// TestUpdateNodesScratchMatchesUpdateNodes pins the scratch variant to
// the allocating one: same mutations, bit-identical models — for a
// fresh destination, a reused destination, and the in-place (dst == m)
// mode.
func TestUpdateNodesScratchMatchesUpdateNodes(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		r := rng.New(seed * 31337)
		n := 6 + r.Intn(20)
		snap := randomEquivSnapshot(r, n)
		m := NewCostModel(snap, PaperWeights(), false)
		if m.CLErr() != nil {
			t.Fatal(m.CLErr())
		}
		mutate := func(k int) []int {
			var changed []int
			for i := 0; i < k; i++ {
				id := m.IDs[r.Intn(len(m.IDs))]
				mutateDynamicAttrs(r, snap, id)
				changed = append(changed, id)
			}
			return changed
		}

		ch1 := mutate(3)
		want1, ok := m.UpdateNodes(snap, ch1)
		if !ok {
			t.Fatalf("seed %d: UpdateNodes refused", seed)
		}
		dst := &CostModel{}
		got1, ok := m.UpdateNodesScratch(snap, ch1, dst)
		if !ok {
			t.Fatalf("seed %d: UpdateNodesScratch refused", seed)
		}
		requireModelEqual(t, "fresh dst", got1, want1)

		// Second round reuses dst's buffers, updating from got1 into got1's
		// own scratch destination (a second spare), then in place.
		ch2 := mutate(2)
		want2, ok := want1.UpdateNodes(snap, ch2)
		if !ok {
			t.Fatalf("seed %d: second UpdateNodes refused", seed)
		}
		spare := &CostModel{}
		got2, ok := got1.UpdateNodesScratch(snap, ch2, spare)
		if !ok {
			t.Fatalf("seed %d: reused-dst update refused", seed)
		}
		requireModelEqual(t, "reused dst", got2, want2)

		// In place: got1 absorbs ch2 into itself.
		inPlace, ok := got1.UpdateNodesScratch(snap, ch2, got1)
		if !ok {
			t.Fatalf("seed %d: in-place update refused", seed)
		}
		if inPlace != got1 {
			t.Fatalf("seed %d: in-place update returned a different model", seed)
		}
		requireModelEqual(t, "in place", inPlace, want2)
	}
}

// TestChargeRanksAgainstRebuild compares the row-level reservation
// charge with the reference snapshot-clone + full-rebuild path
// (ReservingPolicy.Charged + NewLike). The two paths coincide only when
// the per-window clamp semantics cannot diverge — uniform load/util
// windows, utilization far from 100, and enough cores that no node
// saturates out of the livehost set — so the test pins the snapshot to
// that regime and then demands agreement to float tolerance (the paths
// associate the same arithmetic differently, so bit-equality is not
// expected).
func TestChargeRanksAgainstRebuild(t *testing.T) {
	r := rng.New(7)
	snap := randomEquivSnapshot(r, 16)
	for id, na := range snap.Nodes {
		na.Cores = 32
		na.CPULoad.M5, na.CPULoad.M15 = na.CPULoad.M1, na.CPULoad.M1
		util := math.Min(na.CPUUtilPct.M1, 50)
		na.CPUUtilPct.M1, na.CPUUtilPct.M5, na.CPUUtilPct.M15 = util, util, util
		snap.Nodes[id] = na
	}
	m := NewCostModel(snap, PaperWeights(), false)
	if m.CLErr() != nil {
		t.Fatal(m.CLErr())
	}
	ids := []int{m.IDs[2], m.IDs[5]}
	ranks := []int{8, 4}

	dst := &CostModel{}
	got, ok := m.ChargeRanks(ids, ranks, dst)
	if !ok {
		t.Fatal("ChargeRanks refused")
	}
	for _, id := range ids {
		i, _ := m.IndexOf(id)
		if got.CL[i] <= m.CL[i] {
			t.Fatalf("charged node %d did not get more expensive: %g <= %g", id, got.CL[i], m.CL[i])
		}
		if got.LoadM1[i] != m.LoadM1[i]+float64(map[int]int{ids[0]: 8, ids[1]: 4}[id]) {
			t.Fatalf("charged node %d LoadM1 %g, base %g", id, got.LoadM1[i], m.LoadM1[i])
		}
	}

	// Reference: the generic snapshot-level path.
	rp := NewReservingPolicy(NetLoadAware{}, time.Minute)
	rp.Reserve(map[int]int{ids[0]: 8, ids[1]: 4}, snap.Taken)
	charged := rp.Charged(snap)
	if charged == snap {
		t.Fatal("reference Charged returned the base snapshot")
	}
	want := m.NewLike(charged, m.Weights, m.Forecast)
	for i := range got.CL {
		if d := math.Abs(got.CL[i] - want.CL[i]); d > 1e-9*(1+math.Abs(want.CL[i])) {
			t.Fatalf("CL[%d]: row-level %g vs rebuild %g (Δ %g)", i, got.CL[i], want.CL[i], d)
		}
	}

	// Determinism: repeat into the same dst.
	again, ok := m.ChargeRanks(ids, ranks, dst)
	if !ok {
		t.Fatal("repeat ChargeRanks refused")
	}
	for i := range got.CL {
		if again.CL[i] != got.CL[i] {
			t.Fatalf("repeat charge diverged at %d", i)
		}
	}
}

// TestChargedModelLifecycle drives ReservingPolicy.ChargedModel through
// the states the simulator exercises: pass-through with nothing live, a
// charged model while a reservation is live, pass-through again after
// cancel and after TTL expiry.
func TestChargedModelLifecycle(t *testing.T) {
	r := rng.New(9)
	snap := randomEquivSnapshot(r, 12)
	m := NewCostModel(snap, PaperWeights(), false)
	rp := NewReservingPolicy(NetLoadAware{}, 30*time.Second)
	dst := &CostModel{}

	now := snap.Taken
	if got, ok := rp.ChargedModel(now, m, dst); !ok || got != m {
		t.Fatalf("empty policy: got %p ok=%v, want base pass-through", got, ok)
	}

	cancel := rp.Reserve(map[int]int{m.IDs[0]: 6}, now)
	got, ok := rp.ChargedModel(now, m, dst)
	if !ok || got == m {
		t.Fatalf("live reservation: ok=%v, charged=%v", ok, got != m)
	}
	if got.CL[0] <= m.CL[0] {
		t.Fatalf("reserved node not charged: %g <= %g", got.CL[0], m.CL[0])
	}

	cancel()
	if got, ok := rp.ChargedModel(now, m, dst); !ok || got != m {
		t.Fatalf("after cancel: got charged=%v ok=%v, want pass-through", got != m, ok)
	}

	rp.Reserve(map[int]int{m.IDs[1]: 2}, now)
	if got, ok := rp.ChargedModel(now.Add(31*time.Second), m, dst); !ok || got != m {
		t.Fatalf("after TTL: got charged=%v ok=%v, want pass-through", got != m, ok)
	}
}
