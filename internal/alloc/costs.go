// Package alloc implements the paper's node-allocation policies: the
// network-and-load-aware heuristic (Algorithms 1 and 2) and the three
// baselines it is evaluated against (random, sequential, load-aware).
//
// All policies consume only the monitoring snapshot (metrics.Snapshot) —
// never simulator ground truth — and are deterministic given a snapshot,
// a request, and a random stream.
package alloc

import (
	"math"
	"sort"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/stats"
)

// Weights are the relative attribute weights of Equation 1 (compute load)
// and Equation 2 (network load). The compute-load weights should sum to 1,
// as should Latency+Bandwidth.
type Weights struct {
	// Equation 1 attribute weights (Table 1).
	CPULoad  float64 // minimize
	CPUUtil  float64 // minimize
	FlowRate float64 // minimize ("node bandwidth" in §5's weight list)
	AvailMem float64 // maximize (the paper weights "used memory"; available
	// memory with a maximize criterion is the same attribute)
	Cores    float64 // maximize
	Freq     float64 // maximize
	TotalMem float64 // maximize
	Users    float64 // minimize

	// Equation 2 weights.
	Latency   float64 // w_lt
	Bandwidth float64 // w_bw
}

// PaperWeights returns the exact weight values of §5: 0.3 CPU load,
// 0.2 CPU utilization, 0.2 node bandwidth (data-flow rate), 0.1 memory,
// 0.1 logical core count, 0.05 CPU clock, 0.05 total memory, and
// w_lt = 0.25, w_bw = 0.75.
func PaperWeights() Weights {
	return Weights{
		CPULoad:   0.3,
		CPUUtil:   0.2,
		FlowRate:  0.2,
		AvailMem:  0.1,
		Cores:     0.1,
		Freq:      0.05,
		TotalMem:  0.05,
		Users:     0,
		Latency:   0.25,
		Bandwidth: 0.75,
	}
}

// windowAvg collapses the 1/5/15-minute running means into the single
// attribute value used in the decision matrix (Table 1 lists the three
// windows as one attribute; we use their mean so both short spikes and
// sustained load register).
func windowAvg(w stats.Windowed) float64 {
	return (w.M1 + w.M5 + w.M15) / 3
}

// ComputeLoads evaluates Equation 1 for every node in ids using the SAW
// method over the snapshot's published attributes. The result maps node ID
// to CL_v; lower is better. Nodes missing from the snapshot are an error —
// callers must pre-filter to monitored livehosts.
func ComputeLoads(snap *metrics.Snapshot, ids []int, w Weights) (map[int]float64, error) {
	return ComputeLoadsOpt(snap, ids, w, false)
}

// ComputeLoadsOpt is ComputeLoads with forecasting: when useForecast is
// true and a node publishes NWS-style forecasts, the CPU-load and
// data-flow-rate attributes are priced at their predicted next values
// instead of the windowed means — ranking nodes by where their load is
// *going* (§2's Network Weather Service idea applied to Equation 1).
//
// This is the map-keyed compatibility view; the allocation hot path
// works on the dense CostModel instead.
func ComputeLoadsOpt(snap *metrics.Snapshot, ids []int, w Weights, useForecast bool) (map[int]float64, error) {
	if len(ids) == 0 {
		return map[int]float64{}, nil
	}
	costs, err := computeLoadsDense(snap, ids, w, useForecast)
	if err != nil {
		return nil, err
	}
	out := make(map[int]float64, len(ids))
	for i, id := range ids {
		out[id] = costs[i]
	}
	return out, nil
}

// NetworkLoads evaluates Equation 2 for every unordered pair of ids:
// NL(u,v) = w_lt·LT_norm + w_bw·(peak−avail)_norm, with each term
// sum-normalized over all pairs, exactly mirroring the compute-load
// normalization. Pairs with no measurement are priced at the worst
// observed latency and complement-bandwidth (a never-measured link is
// assumed bad, not free).
// NetworkLoads is the map-keyed compatibility view over the dense
// Equation 2 evaluation; the allocation hot path reads the CostModel's
// flat matrix directly.
func NetworkLoads(snap *metrics.Snapshot, ids []int, w Weights) (map[metrics.PairKey]float64, error) {
	n := len(ids)
	if n*(n-1)/2 == 0 {
		return map[metrics.PairKey]float64{}, nil
	}
	dense, err := networkLoadsDense(snap, ids, w)
	if err != nil {
		return nil, err
	}
	out := make(map[metrics.PairKey]float64, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out[metrics.Pair(ids[i], ids[j])] = dense[i*n+j]
		}
	}
	return out, nil
}

// RescaleMeanNode rescales node costs to mean 1 in place. The paper
// sum-normalizes compute load over |V| nodes and network load over
// O(|V|²) pairs, which puts the two on incomparable scales (~1/V vs
// ~2/V²) and would silently void the α/β balance of Algorithm 1's
// addition cost. Rescaling both to unit mean is size-invariant and
// preserves each metric's ordering, so the weighted combination behaves
// as Equation 4 intends regardless of cluster size.
func RescaleMeanNode(costs map[int]float64) {
	if len(costs) == 0 {
		return
	}
	// Sum in sorted key order: float addition is order-sensitive, and map
	// iteration order would make equal inputs produce subtly different
	// scales across runs, breaking reproducibility.
	keys := make([]int, 0, len(costs))
	for k := range costs {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	sum := 0.0
	for _, k := range keys {
		sum += costs[k]
	}
	mean := sum / float64(len(costs))
	if mean == 0 {
		return
	}
	for _, k := range keys {
		costs[k] /= mean
	}
}

// RescaleMeanPair rescales pair costs to mean 1 in place (see
// RescaleMeanNode).
func RescaleMeanPair(costs map[metrics.PairKey]float64) {
	if len(costs) == 0 {
		return
	}
	keys := make([]metrics.PairKey, 0, len(costs))
	for k := range costs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].U != keys[j].U {
			return keys[i].U < keys[j].U
		}
		return keys[i].V < keys[j].V
	})
	sum := 0.0
	for _, k := range keys {
		sum += costs[k]
	}
	mean := sum / float64(len(costs))
	if mean == 0 {
		return
	}
	for _, k := range keys {
		costs[k] /= mean
	}
}

// EffectiveProcs evaluates Equation 3 verbatim:
//
//	pc_v = coreCount_v − ⌈Load_v⌉ % coreCount_v
//
// where Load_v is the node's 1-minute average CPU load. The modulo makes
// the formula wrap for loads exceeding the core count — we keep the
// paper's exact arithmetic (it conveniently never yields less than one
// slot). When ppn > 0 the user's processes-per-node override wins. A
// node publishing a non-positive core count is treated as having one
// slot instead of dividing by zero.
func EffectiveProcs(na metrics.NodeAttrs, ppn int) int {
	return effProcs(na.Cores, na.CPULoad.M1, ppn)
}

// NodeFreeSlots returns the node's idle process slots:
//
//	max(0, coreCount_v − ⌈Load_v⌉)
//
// Unlike Equation 3 (EffectiveProcs) it does not wrap at the core count:
// a saturated node contributes zero slots instead of looking freshly
// empty. That makes it the right reading for aggregate free-capacity
// accounting (the job queue's backfill admission and the broker's
// Response.FreeProcs), where Equation 3's wrap would report a fully
// busy cluster as fully idle. A non-positive published core count is
// treated as one core, like effProcs.
func NodeFreeSlots(na metrics.NodeAttrs) int {
	cores := na.Cores
	if cores <= 0 {
		cores = 1
	}
	load := int(math.Ceil(na.CPULoad.M1))
	if load < 0 {
		load = 0
	}
	if load >= cores {
		return 0
	}
	return cores - load
}

// FreeSlots sums NodeFreeSlots over the snapshot's monitored livehosts —
// the cluster's aggregate free capacity estimate.
func FreeSlots(snap *metrics.Snapshot) int {
	total := 0
	for _, id := range MonitoredLivehosts(snap) {
		total += NodeFreeSlots(snap.Nodes[id])
	}
	return total
}

// MonitoredLivehosts returns the snapshot's live nodes that also have
// published node state, sorted by ID — the universe every policy draws
// from.
func MonitoredLivehosts(snap *metrics.Snapshot) []int {
	var ids []int
	for _, id := range snap.Livehosts {
		if _, ok := snap.Nodes[id]; ok {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// StaleAfter reports whether the snapshot's node data is older than
// maxAge relative to the snapshot time (diagnostic guard for callers that
// want to refuse to allocate from a dead monitor).
func StaleAfter(snap *metrics.Snapshot, maxAge time.Duration) bool {
	for _, id := range snap.Livehosts {
		if na, ok := snap.Nodes[id]; ok {
			if snap.Taken.Sub(na.Timestamp) <= maxAge {
				return false
			}
		}
	}
	return true
}
