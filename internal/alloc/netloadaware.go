package alloc

import (
	"fmt"
	"math"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
)

// NetLoadAware is the paper's contribution: the network and load-aware
// allocation heuristic. For every live node v it greedily grows a
// candidate sub-graph seeded at v by repeatedly adding the node u with
// the smallest addition cost A_v(u) = α·CL(u) + β·NL(v,u) until the
// requested process count is covered (Algorithm 1), then selects the
// candidate with the minimum total cost T_G = α·C_G,norm + β·N_G,norm
// (Algorithm 2, Equation 4).
type NetLoadAware struct{}

// Name implements Policy.
func (NetLoadAware) Name() string { return "net-load-aware" }

// Candidate is one generated sub-graph with its raw total costs, exposed
// for analysis and tests.
type Candidate struct {
	// Start is the seed node (v in Algorithm 1).
	Start int
	// Nodes are the selected nodes in addition order.
	Nodes []int
	// Procs maps node ID to assigned process count.
	Procs map[int]int
	// ComputeCost is C_G = Σ CL_u over the sub-graph's nodes.
	ComputeCost float64
	// NetworkCost is N_G = Σ NL(x,y) over all node pairs of the sub-graph.
	NetworkCost float64
	// TotalLoad is T_G after cross-candidate normalization.
	TotalLoad float64
	// Spill marks a hierarchically generated candidate that could not be
	// satisfied inside its seed shard and crossed shard boundaries
	// (always false on the exhaustive dense path).
	Spill bool `json:",omitempty"`
}

// Allocate implements Policy.
func (p NetLoadAware) Allocate(snap *metrics.Snapshot, req Request, r *rng.Rand) (Allocation, error) {
	best, _, err := p.AllocateExplain(snap, req)
	if err != nil {
		return Allocation{}, err
	}
	return Allocation{
		Policy:    p.Name(),
		Nodes:     best.Nodes,
		Procs:     best.Procs,
		TotalLoad: best.TotalLoad,
	}, nil
}

// AllocateModel implements ModelPolicy: the heuristic over a prebuilt
// dense cost model (the broker's cached Equation 1/2 evaluation).
func (p NetLoadAware) AllocateModel(m *CostModel, req Request, r *rng.Rand) (Allocation, error) {
	best, _, err := p.AllocateExplainModel(m, req)
	if err != nil {
		return Allocation{}, err
	}
	return Allocation{
		Policy:    p.Name(),
		Nodes:     best.Nodes,
		Procs:     best.Procs,
		TotalLoad: best.TotalLoad,
	}, nil
}

// AllocateExplain runs the full heuristic and additionally returns every
// candidate sub-graph with its costs (used by the analysis experiment of
// Figure 7 and by tests).
func (p NetLoadAware) AllocateExplain(snap *metrics.Snapshot, req Request) (Candidate, []Candidate, error) {
	req, err := req.Validate()
	if err != nil {
		return Candidate{}, nil, err
	}
	return p.AllocateExplainModel(NewCostModel(snap, req.Weights, req.UseForecast), req)
}

// AllocateExplainModel is AllocateExplain over a prebuilt cost model.
// Candidate generation (Algorithm 1, one independent greedy sub-graph
// per start node) fans out across a bounded worker pool; every worker
// writes its candidate into a pre-assigned slice slot and the scoring
// pass (Algorithm 2) runs sequentially over the slice, so results are
// bit-identical to the sequential path.
func (p NetLoadAware) AllocateExplainModel(m *CostModel, req Request) (Candidate, []Candidate, error) {
	req, err := req.Validate()
	if err != nil {
		return Candidate{}, nil, err
	}
	m = modelFor(m, req)
	n := m.Len()
	if n == 0 {
		return Candidate{}, nil, fmt.Errorf("alloc: net-load-aware: no live monitored nodes")
	}
	if err := m.CLErr(); err != nil {
		return Candidate{}, nil, err
	}
	if err := m.NLErr(); err != nil {
		return Candidate{}, nil, err
	}
	if m.Sharded() {
		return p.allocateSharded(m, req)
	}
	caps := m.caps(req)

	// Algorithm 1, once per start node: |V| candidates. Each worker slot
	// owns one scratch buffer set, reused across all its start nodes.
	candidates := make([]Candidate, n)
	scratch := make([]genScratch, parallelWorkers(n))
	parallelFor(n, func(w, v int) {
		candidates[v] = p.generate(m, v, caps, req, &scratch[w])
	})

	bestIdx, err := scoreCandidates(candidates, req)
	if err != nil {
		return Candidate{}, nil, err
	}
	return candidates[bestIdx], candidates, nil
}

// scoreCandidates is Algorithm 2: normalize C_G and N_G across the
// generated candidates and return the index of the minimum-T_G one.
func scoreCandidates(candidates []Candidate, req Request) (int, error) {
	sumC, sumN := 0.0, 0.0
	for i := range candidates {
		sumC += candidates[i].ComputeCost
		sumN += candidates[i].NetworkCost
	}
	return scoreCandidatesNormed(candidates, req, sumC, sumN)
}

// scoreCandidatesNormed is Algorithm 2 with caller-supplied normalization
// sums: the sharded path passes scout-estimated totals over all n starts
// so its biased (uniformly good) candidate subset is scored on the same
// scale the dense path would use.
func scoreCandidatesNormed(candidates []Candidate, req Request, sumC, sumN float64) (int, error) {
	bestIdx := -1
	minTotal := math.Inf(1)
	for i := range candidates {
		c := &candidates[i]
		cNorm, nNorm := 0.0, 0.0
		if sumC > 0 {
			cNorm = c.ComputeCost / sumC
		}
		if sumN > 0 {
			nNorm = c.NetworkCost / sumN
		}
		c.TotalLoad = req.Alpha*cNorm + req.Beta*nNorm
		if c.TotalLoad < minTotal {
			minTotal = c.TotalLoad
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return 0, fmt.Errorf("alloc: net-load-aware: no candidate produced")
	}
	return bestIdx, nil
}

// genScratch is one worker's reusable buffers for generate: the
// addition-cost vector, the selection heap, and the used/counts fill
// output. Reusing them drops the hot path's per-candidate allocations
// to just the Candidate's own (escaping) Nodes slice and Procs map.
type genScratch struct {
	addCost []float64
	heap    []int
	sel     []int
	used    []int
	counts  []int
}

// grow sizes the scratch for an n-node model.
func (sc *genScratch) grow(n int) {
	if cap(sc.addCost) < n {
		sc.addCost = make([]float64, n)
		sc.heap = make([]int, n)
		sc.sel = make([]int, n)
		sc.used = make([]int, 0, n)
		sc.counts = make([]int, 0, n)
	}
}

// generate builds the candidate sub-graph seeded at dense index v
// (Algorithm 1), reading compute loads and the network-load row for v
// straight out of the model's flat slices. Instead of fully sorting all
// n addition costs it pops a min-heap just far enough to cover the
// requested process count — the heap order is the exact strict total
// order of sortIdxByCost (cost ascending, ties by index), so the
// selected set and its order are bit-identical to the sorted path.
func (p NetLoadAware) generate(m *CostModel, v int, caps []int, req Request, sc *genScratch) Candidate {
	n := m.Len()
	sc.grow(n)
	// A_v(v) = 0; A_v(u) = α·CL(u) + β·NL(v,u) for u ≠ v.
	addCost := sc.addCost[:n]
	nlRow := m.NLUnit[v*n : (v+1)*n]
	for u := 0; u < n; u++ {
		if u == v {
			addCost[u] = 0 // A_v(v) = 0
			continue
		}
		addCost[u] = req.Alpha*m.CLUnit[u] + req.Beta*nlRow[u]
	}
	h := sc.heap[:n]
	for i := range h {
		h[i] = i
	}
	heapifyIdx(h, addCost)
	// fillIdx over the heap's pop order: each popped node takes up to its
	// capacity until the request is covered, then the remainder spills
	// round-robin over the selected nodes.
	used, counts := sc.used[:0], sc.counts[:0]
	remaining := req.Procs
	for len(h) > 0 && remaining > 0 {
		var i int
		i, h = popIdx(h, addCost)
		take := caps[i]
		if take > remaining {
			take = remaining
		}
		if take <= 0 {
			continue
		}
		used = append(used, i)
		counts = append(counts, take)
		remaining -= take
	}
	for remaining > 0 && len(used) > 0 {
		for k := range used {
			if remaining == 0 {
				break
			}
			counts[k]++
			remaining--
		}
	}
	sc.used, sc.counts = used, counts

	var nodes []int
	if len(used) > 0 {
		nodes = make([]int, len(used))
	}
	procs := make(map[int]int, len(used))
	cand := Candidate{Start: m.IDs[v]}
	for k, i := range used {
		nodes[k] = m.IDs[i]
		procs[m.IDs[i]] = counts[k]
		cand.ComputeCost += m.CLUnit[i]
	}
	cand.Nodes = nodes
	cand.Procs = procs
	for i := 0; i < len(used); i++ {
		for j := i + 1; j < len(used); j++ {
			cand.NetworkCost += m.NLUnit[used[i]*n+used[j]]
		}
	}
	return cand
}
