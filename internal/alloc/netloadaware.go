package alloc

import (
	"fmt"
	"math"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
)

// NetLoadAware is the paper's contribution: the network and load-aware
// allocation heuristic. For every live node v it greedily grows a
// candidate sub-graph seeded at v by repeatedly adding the node u with
// the smallest addition cost A_v(u) = α·CL(u) + β·NL(v,u) until the
// requested process count is covered (Algorithm 1), then selects the
// candidate with the minimum total cost T_G = α·C_G,norm + β·N_G,norm
// (Algorithm 2, Equation 4).
type NetLoadAware struct{}

// Name implements Policy.
func (NetLoadAware) Name() string { return "net-load-aware" }

// Candidate is one generated sub-graph with its raw total costs, exposed
// for analysis and tests.
type Candidate struct {
	// Start is the seed node (v in Algorithm 1).
	Start int
	// Nodes are the selected nodes in addition order.
	Nodes []int
	// Procs maps node ID to assigned process count.
	Procs map[int]int
	// ComputeCost is C_G = Σ CL_u over the sub-graph's nodes.
	ComputeCost float64
	// NetworkCost is N_G = Σ NL(x,y) over all node pairs of the sub-graph.
	NetworkCost float64
	// TotalLoad is T_G after cross-candidate normalization.
	TotalLoad float64
}

// Allocate implements Policy.
func (p NetLoadAware) Allocate(snap *metrics.Snapshot, req Request, r *rng.Rand) (Allocation, error) {
	best, _, err := p.AllocateExplain(snap, req)
	if err != nil {
		return Allocation{}, err
	}
	return Allocation{
		Policy:    p.Name(),
		Nodes:     best.Nodes,
		Procs:     best.Procs,
		TotalLoad: best.TotalLoad,
	}, nil
}

// AllocateExplain runs the full heuristic and additionally returns every
// candidate sub-graph with its costs (used by the analysis experiment of
// Figure 7 and by tests).
func (p NetLoadAware) AllocateExplain(snap *metrics.Snapshot, req Request) (Candidate, []Candidate, error) {
	req, err := req.Validate()
	if err != nil {
		return Candidate{}, nil, err
	}
	ids := MonitoredLivehosts(snap)
	if len(ids) == 0 {
		return Candidate{}, nil, fmt.Errorf("alloc: net-load-aware: no live monitored nodes")
	}
	cl, err := ComputeLoadsOpt(snap, ids, req.Weights, req.UseForecast)
	if err != nil {
		return Candidate{}, nil, err
	}
	nl, err := NetworkLoads(snap, ids, req.Weights)
	if err != nil {
		return Candidate{}, nil, err
	}
	// Bring CL and NL onto a common scale so α/β weight them as intended
	// (see RescaleMeanNode).
	RescaleMeanNode(cl)
	RescaleMeanPair(nl)
	caps := capacity(snap, ids, req)

	// Algorithm 1, once per start node: |V| candidates.
	candidates := make([]Candidate, 0, len(ids))
	for _, v := range ids {
		cand := p.generate(v, ids, cl, nl, caps, req)
		candidates = append(candidates, cand)
	}

	// Algorithm 2: normalize C_G and N_G across candidates, pick min T_G.
	sumC, sumN := 0.0, 0.0
	for _, c := range candidates {
		sumC += c.ComputeCost
		sumN += c.NetworkCost
	}
	bestIdx := -1
	minTotal := math.Inf(1)
	for i := range candidates {
		c := &candidates[i]
		cNorm, nNorm := 0.0, 0.0
		if sumC > 0 {
			cNorm = c.ComputeCost / sumC
		}
		if sumN > 0 {
			nNorm = c.NetworkCost / sumN
		}
		c.TotalLoad = req.Alpha*cNorm + req.Beta*nNorm
		if c.TotalLoad < minTotal {
			minTotal = c.TotalLoad
			bestIdx = i
		}
	}
	if bestIdx < 0 {
		return Candidate{}, nil, fmt.Errorf("alloc: net-load-aware: no candidate produced")
	}
	return candidates[bestIdx], candidates, nil
}

// generate builds the candidate sub-graph seeded at v (Algorithm 1).
func (p NetLoadAware) generate(v int, ids []int, cl map[int]float64, nl map[metrics.PairKey]float64, caps map[int]int, req Request) Candidate {
	// A_v(v) = 0; A_v(u) = α·CL(u) + β·NL(v,u) for u ≠ v.
	addCost := make(map[int]float64, len(ids))
	for _, u := range ids {
		if u == v {
			addCost[u] = 0
			continue
		}
		addCost[u] = req.Alpha*cl[u] + req.Beta*nl[metrics.Pair(v, u)]
	}
	order := sortByCost(ids, addCost) // v sorts first with cost 0
	nodes, procs := fill(order, caps, req.Procs)

	cand := Candidate{Start: v, Nodes: nodes, Procs: procs}
	for _, n := range nodes {
		cand.ComputeCost += cl[n]
	}
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			cand.NetworkCost += nl[metrics.Pair(nodes[i], nodes[j])]
		}
	}
	return cand
}
