package alloc

import "sort"

// TopRejected returns up to k of the cheapest candidates Algorithm 2 did
// NOT choose, ordered by ascending (TotalLoad, Start) — the runner-up
// placements a counterfactual analysis prices against the winner. The
// returned slice is freshly allocated but shares the candidates' Nodes
// slices (Algorithm 1 materializes those per candidate, so retaining
// them is safe). k <= 0 or a nil candidate set yields nil.
func TopRejected(cands []Candidate, bestStart, k int) []Candidate {
	if k <= 0 || len(cands) == 0 {
		return nil
	}
	rejected := make([]Candidate, 0, len(cands))
	for i := range cands {
		if cands[i].Start == bestStart {
			continue
		}
		rejected = append(rejected, cands[i])
	}
	sort.Slice(rejected, func(i, j int) bool {
		if rejected[i].TotalLoad != rejected[j].TotalLoad {
			return rejected[i].TotalLoad < rejected[j].TotalLoad
		}
		return rejected[i].Start < rejected[j].Start
	})
	if len(rejected) > k {
		rejected = rejected[:k:k]
	}
	return rejected
}
