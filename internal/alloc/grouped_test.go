package alloc

import (
	"testing"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
)

// groupOf4 partitions the synthetic line snapshot into groups of four
// consecutive nodes (mirroring switch attachment).
func groupOf4(node int) int { return node / 4 }

func TestGroupedRequiresGroupFn(t *testing.T) {
	snap := synthSnapshot(uniformLoads(8, 1))
	if _, err := (GroupedNetLoadAware{}).Allocate(snap, Request{Procs: 4}, rng.New(1)); err == nil {
		t.Fatal("nil GroupOf accepted")
	}
}

func TestGroupedSatisfiesRequest(t *testing.T) {
	snap := synthSnapshot(uniformLoads(16, 0.5))
	pol := GroupedNetLoadAware{GroupOf: groupOf4}
	a, err := pol.Allocate(snap, Request{Procs: 12, PPN: 4, Alpha: 0.3, Beta: 0.7}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalProcs() != 12 {
		t.Fatalf("allocated %d procs", a.TotalProcs())
	}
	if a.Policy != "grouped-net-load-aware" {
		t.Fatalf("policy %q", a.Policy)
	}
}

func TestGroupedPrefersSingleWellConnectedGroup(t *testing.T) {
	// Uniform load: one group of four adjacent nodes should cover a
	// 16-proc/ppn4 request; groups far apart on the line are expensive.
	snap := synthSnapshot(uniformLoads(16, 1))
	pol := GroupedNetLoadAware{GroupOf: groupOf4}
	a, err := pol.Allocate(snap, Request{Procs: 16, PPN: 4, Alpha: 0.3, Beta: 0.7}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	groups := map[int]bool{}
	for _, n := range a.Nodes {
		groups[groupOf4(n)] = true
	}
	if len(groups) != 1 {
		t.Fatalf("16 procs at ppn 4 spread over %d groups: %v", len(groups), a.Nodes)
	}
}

func TestGroupedAvoidsLoadedGroup(t *testing.T) {
	// Group 0 (nodes 0-3) heavily loaded; group 1 (4-7) idle. α-heavy
	// request must land in group 1.
	loads := []float64{6, 6, 6, 6, 0.1, 0.1, 0.1, 0.1}
	snap := synthSnapshot(loads)
	pol := GroupedNetLoadAware{GroupOf: groupOf4}
	a, err := pol.Allocate(snap, Request{Procs: 16, PPN: 4, Alpha: 0.7, Beta: 0.3}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range a.Nodes {
		if n < 4 {
			t.Fatalf("grouped policy picked loaded group: %v", a.Nodes)
		}
	}
}

func TestGroupedPicksLightestNodesWithinGroup(t *testing.T) {
	// One group suffices; inside it, the lightest members must be used.
	loads := []float64{5, 0.1, 0.2, 4, 9, 9, 9, 9}
	snap := synthSnapshot(loads)
	pol := GroupedNetLoadAware{GroupOf: groupOf4}
	a, err := pol.Allocate(snap, Request{Procs: 8, PPN: 4, Alpha: 0.5, Beta: 0.5}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{1: true, 2: true}
	for _, n := range a.Nodes {
		if !want[n] {
			t.Fatalf("grouped fill picked %v, want the light members {1,2}", a.Nodes)
		}
	}
}

func TestGroupedSpansGroupsWhenNeeded(t *testing.T) {
	snap := synthSnapshot(uniformLoads(12, 0.5))
	pol := GroupedNetLoadAware{GroupOf: groupOf4}
	// 32 procs at ppn 4 needs 8 nodes = 2 groups.
	a, err := pol.Allocate(snap, Request{Procs: 32, PPN: 4, Alpha: 0.3, Beta: 0.7}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	groups := map[int]bool{}
	for _, n := range a.Nodes {
		groups[groupOf4(n)] = true
	}
	if len(groups) != 2 {
		t.Fatalf("8 nodes spread over %d groups", len(groups))
	}
	// The two groups must be adjacent on the line (cheapest inter-group NL).
	var ids []int
	for g := range groups {
		ids = append(ids, g)
	}
	if d := ids[0] - ids[1]; d != 1 && d != -1 {
		t.Fatalf("non-adjacent groups chosen: %v", ids)
	}
}

func TestGroupedAgreesWithNLAOnDominantChoice(t *testing.T) {
	// A clearly dominant region (lightest and best-connected): both the
	// exact heuristic and the grouped one should land there.
	loads := uniformLoads(16, 3)
	for i := 8; i < 12; i++ {
		loads[i] = 0.1
	}
	snap := synthSnapshot(loads)
	exact, err := NetLoadAware{}.Allocate(snap, Request{Procs: 16, PPN: 4, Alpha: 0.5, Beta: 0.5}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := GroupedNetLoadAware{GroupOf: groupOf4}.Allocate(snap, Request{Procs: 16, PPN: 4, Alpha: 0.5, Beta: 0.5}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	toSet := func(nodes []int) map[int]bool {
		m := map[int]bool{}
		for _, n := range nodes {
			m[n] = true
		}
		return m
	}
	e, g := toSet(exact.Nodes), toSet(grouped.Nodes)
	for n := range e {
		if !g[n] {
			t.Fatalf("exact %v vs grouped %v disagree on the dominant region", exact.Nodes, grouped.Nodes)
		}
	}
}

func TestGroupedDeterministic(t *testing.T) {
	snap := synthSnapshot([]float64{1, 0.5, 2, 0.1, 3, 0.2, 1.5, 0.8, 2.2, 0.3, 1.1, 0.9})
	pol := GroupedNetLoadAware{GroupOf: groupOf4}
	req := Request{Procs: 16, PPN: 4, Alpha: 0.4, Beta: 0.6}
	a1, err := pol.Allocate(snap, req, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := pol.Allocate(snap, req, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Nodes) != len(a2.Nodes) {
		t.Fatal("grouped policy nondeterministic")
	}
	for i := range a1.Nodes {
		if a1.Nodes[i] != a2.Nodes[i] {
			t.Fatal("grouped policy nondeterministic")
		}
	}
}

// synthSnapshotLarge builds an n-node line snapshot for scalability
// comparisons.
func synthSnapshotLarge(n int) *metrics.Snapshot {
	loads := make([]float64, n)
	for i := range loads {
		loads[i] = 0.2 + float64(i%7)*0.3
	}
	return synthSnapshot(loads)
}

func BenchmarkNLAExact120Nodes(b *testing.B) {
	snap := synthSnapshotLarge(120)
	req := Request{Procs: 64, PPN: 4, Alpha: 0.3, Beta: 0.7}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (NetLoadAware{}).Allocate(snap, req, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNLAGrouped120Nodes(b *testing.B) {
	snap := synthSnapshotLarge(120)
	req := Request{Procs: 64, PPN: 4, Alpha: 0.3, Beta: 0.7}
	pol := GroupedNetLoadAware{GroupOf: func(n int) int { return n / 15 }}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pol.Allocate(snap, req, r); err != nil {
			b.Fatal(err)
		}
	}
}
