package alloc

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
)

// ReservingPolicy wraps another policy with short-lived reservations:
// every allocation it grants is virtually charged onto subsequent
// snapshots (as busy-waiting ranks on the granted nodes) until the
// monitor's own running means catch up. This closes the herding gap the
// co-scheduling experiment exposes in the paper's heuristic — back-to-
// back submissions all greedily pick the same best region because the
// 1-minute load means lag just-launched jobs.
//
// Besides its own grants, external claims can be charged through
// Reserve — the job queue uses this to shadow-reserve capacity for a
// waiting head job while it evaluates backfill candidates.
type ReservingPolicy struct {
	// Inner is the wrapped policy. Required.
	Inner Policy
	// TTL is how long a reservation keeps being charged (it should cover
	// the monitor's sampling lag; default 90s).
	TTL time.Duration

	mu           sync.Mutex
	reservations []*reservation
	// seen is the latest snapshot clock observed by record/Charged.
	// Pruning uses max(snap.Taken, seen) so a degraded or stale-read
	// snapshot carrying an old (or zero) Taken cannot make reservations
	// immortal: time only moves forward for expiry purposes.
	seen time.Time
	// chargeIDs/chargeRanks are ChargedModel's reusable aggregation
	// buffers; chargeDense/chargeMark form the dense per-node-ID
	// accumulator it prefers over a map when IDs are small non-negative
	// ints (always zeroed again before the lock is released). All are
	// guarded by mu.
	chargeIDs   []int
	chargeRanks []int
	chargeDense []int
	chargeMark  []bool
}

// reservation is one live claim, held as parallel id/rank slices sorted
// ascending by node ID — built once at record time so the per-decision
// charge aggregation walks flat ints instead of iterating maps.
type reservation struct {
	ids       []int
	ranks     []int
	at        time.Time
	cancelled bool
}

// newReservation converts a node→ranks map into the sorted slice form.
func newReservation(procs map[int]int) *reservation {
	res := &reservation{
		ids:   make([]int, 0, len(procs)),
		ranks: make([]int, 0, len(procs)),
	}
	for id := range procs {
		res.ids = append(res.ids, id)
	}
	sort.Ints(res.ids)
	for _, id := range res.ids {
		res.ranks = append(res.ranks, procs[id])
	}
	return res
}

// NewReservingPolicy wraps inner with reservation charging.
func NewReservingPolicy(inner Policy, ttl time.Duration) *ReservingPolicy {
	if ttl <= 0 {
		ttl = 90 * time.Second
	}
	return &ReservingPolicy{Inner: inner, TTL: ttl}
}

// Name implements Policy.
func (p *ReservingPolicy) Name() string { return p.Inner.Name() + "+reserve" }

// Allocate implements Policy: expired reservations are pruned against the
// snapshot's own clock (virtual-time safe), live ones are charged onto a
// copy of the snapshot, the inner policy decides, and the new grant is
// recorded.
func (p *ReservingPolicy) Allocate(snap *metrics.Snapshot, req Request, r *rng.Rand) (Allocation, error) {
	if p.Inner == nil {
		return Allocation{}, fmt.Errorf("alloc: reserving policy without inner policy")
	}
	charged := p.Charged(snap)
	a, err := p.Inner.Allocate(charged, req, r)
	if err != nil {
		return Allocation{}, err
	}
	p.record(a.Procs, snap.Taken)
	a.Policy = p.Name()
	return a, nil
}

// AllocateModel implements ModelPolicy. With no live reservations the
// prebuilt model passes straight through to the inner policy; otherwise
// the charged snapshot invalidates it and the inner policy re-prices
// (reservation charging changes Equation 1 inputs by design).
func (p *ReservingPolicy) AllocateModel(m *CostModel, req Request, r *rng.Rand) (Allocation, error) {
	if p.Inner == nil {
		return Allocation{}, fmt.Errorf("alloc: reserving policy without inner policy")
	}
	snap := m.Snap
	charged := p.Charged(snap)
	var a Allocation
	var err error
	inner, ok := p.Inner.(ModelPolicy)
	if !ok {
		a, err = p.Inner.Allocate(charged, req, r)
	} else if charged == snap {
		a, err = inner.AllocateModel(m, req, r)
	} else {
		vreq, verr := req.Validate()
		if verr != nil {
			return Allocation{}, verr
		}
		a, err = inner.AllocateModel(m.NewLike(charged, vreq.Weights, vreq.UseForecast), req, r)
	}
	if err != nil {
		return Allocation{}, err
	}
	p.record(a.Procs, snap.Taken)
	a.Policy = p.Name()
	return a, nil
}

// Charged prunes expired reservations and charges the live ones onto a
// copy of snap (snap itself is returned untouched when there is nothing
// to charge). The job queue calls this directly to price free capacity
// the way the wrapped allocator will see it.
//
// Charging also prunes nodes left without a single free slot from the
// copy's livehosts: Equation 3's wrap (EffectiveProcs) would otherwise
// report a saturated node as freshly empty during the inner policy's
// fill step, piling reserved ranks onto exactly the nodes that have
// nothing to give. When every node is saturated the universe is kept
// as-is — an oversubscribed allocation still beats failing outright.
func (p *ReservingPolicy) Charged(snap *metrics.Snapshot) *metrics.Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.advanceLocked(snap.Taken)
	live := p.reservations[:0]
	for _, res := range p.reservations {
		if !res.cancelled && now.Sub(res.at) < p.TTL {
			live = append(live, res)
		}
	}
	for i := len(live); i < len(p.reservations); i++ {
		p.reservations[i] = nil
	}
	p.reservations = live
	charged := snap
	if len(live) > 0 {
		charged = snap.Clone()
		for _, res := range live {
			for k, node := range res.ids {
				ranks := res.ranks[k]
				na, ok := charged.Nodes[node]
				if !ok {
					continue
				}
				// MPI ranks busy-wait: each reserved rank is a runnable
				// process on every load window.
				na.CPULoad.M1 += float64(ranks)
				na.CPULoad.M5 += float64(ranks)
				na.CPULoad.M15 += float64(ranks)
				cores := na.Cores
				if cores <= 0 {
					// Guard the occupancy share like effProcs guards
					// Equation 3: a node publishing no core count would
					// otherwise price at ±Inf/NaN and poison Equation 1.
					cores = 1
				}
				occ := float64(ranks) / float64(cores) * 100
				if na.CPUUtilPct.M1+occ > 100 {
					occ = 100 - na.CPUUtilPct.M1
				}
				if occ > 0 {
					na.CPUUtilPct.M1 += occ
					na.CPUUtilPct.M5 += occ
					na.CPUUtilPct.M15 += occ
				}
				charged.Nodes[node] = na
			}
		}
		keep := charged.Livehosts[:0]
		for _, id := range charged.Livehosts {
			na, ok := charged.Nodes[id]
			if !ok || NodeFreeSlots(na) > 0 {
				keep = append(keep, id)
			}
		}
		if len(keep) > 0 {
			charged.Livehosts = keep
		}
	}
	return charged
}

// ChargedModel prices base with the live reservations charged directly
// onto the model's retained attribute rows (CostModel.ChargeRanks) — the
// path simulation runs use so reservations flow through the policy
// without the per-decision snapshot clone and full model rebuild that
// AllocateModel's generic path performs. Expired reservations are pruned
// against now (the clock only moves forward, like Charged). With nothing
// live it returns (base, true) untouched; otherwise it returns the
// charged model written into dst's reused buffers. ok=false means base
// cannot be charged incrementally (see ChargeRanks) — callers fall back
// to the Charged + NewLike rebuild.
func (p *ReservingPolicy) ChargedModel(now time.Time, base *CostModel, dst *CostModel) (*CostModel, bool) {
	return p.ChargedModelAt(now, base, nil, dst)
}

// ChargedModelAt is ChargedModel pricing only the cand rows of the
// charged model (nil cand prices every row) — see
// CostModel.ChargeRanksAt for the staleness contract on the rest.
func (p *ReservingPolicy) ChargedModelAt(now time.Time, base *CostModel, cand []int, dst *CostModel) (*CostModel, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.advanceLocked(now)
	live := p.reservations[:0]
	for _, res := range p.reservations {
		if !res.cancelled && t.Sub(res.at) < p.TTL {
			live = append(live, res)
		}
	}
	for i := len(live); i < len(p.reservations); i++ {
		p.reservations[i] = nil
	}
	p.reservations = live
	if len(live) == 0 {
		return base, true
	}
	// Aggregate ranks per node through a dense accumulator indexed by
	// node ID: one int add per reservation entry, no hashing. Node IDs
	// are small ints in practice; a pathological ID range falls back to
	// a transient map so the scratch stays bounded.
	maxID := -1
	dense := true
	for _, res := range live {
		for _, id := range res.ids {
			if id < 0 || id >= 1<<22 {
				dense = false
				break
			}
			if id > maxID {
				maxID = id
			}
		}
		if !dense {
			break
		}
	}
	p.chargeIDs = p.chargeIDs[:0]
	if dense {
		if len(p.chargeDense) <= maxID {
			p.chargeDense = make([]int, maxID+1)
			p.chargeMark = make([]bool, maxID+1)
		}
		for _, res := range live {
			for k, id := range res.ids {
				p.chargeDense[id] += res.ranks[k]
				if !p.chargeMark[id] {
					p.chargeMark[id] = true
					p.chargeIDs = append(p.chargeIDs, id)
				}
			}
		}
		sort.Ints(p.chargeIDs)
		p.chargeRanks = p.chargeRanks[:0]
		for _, id := range p.chargeIDs {
			p.chargeRanks = append(p.chargeRanks, p.chargeDense[id])
			p.chargeDense[id] = 0
			p.chargeMark[id] = false
		}
	} else {
		sum := make(map[int]int)
		for _, res := range live {
			for k, id := range res.ids {
				sum[id] += res.ranks[k]
			}
		}
		for id := range sum {
			p.chargeIDs = append(p.chargeIDs, id)
		}
		sort.Ints(p.chargeIDs)
		p.chargeRanks = p.chargeRanks[:0]
		for _, id := range p.chargeIDs {
			p.chargeRanks = append(p.chargeRanks, sum[id])
		}
	}
	return base.ChargeRanksAt(p.chargeIDs, p.chargeRanks, cand, dst)
}

// advanceLocked folds a snapshot clock reading into the policy's
// monotonic view of time and returns the pruning clock. Callers must
// hold p.mu.
func (p *ReservingPolicy) advanceLocked(taken time.Time) time.Time {
	if taken.After(p.seen) {
		p.seen = taken
	}
	return p.seen
}

// record registers a grant as a new reservation. A zero or stale stamp
// is lifted to the latest clock seen so the reservation still expires
// TTL from "now" rather than living (or dying) on a skewed clock.
func (p *ReservingPolicy) record(procs map[int]int, at time.Time) {
	res := newReservation(procs)
	p.mu.Lock()
	res.at = p.advanceLocked(at)
	p.reservations = append(p.reservations, res)
	p.mu.Unlock()
}

// Reserve charges an externally computed claim (node → reserved ranks)
// like a grant, so every subsequent Charged/Allocate prices it into
// Equation 1. It returns a cancel function that releases the claim
// early; otherwise it expires after TTL like any reservation. The job
// queue uses this for the waiting head job's shadow reservation, which
// it re-computes (and re-charges) every scheduling pass.
func (p *ReservingPolicy) Reserve(procs map[int]int, at time.Time) func() {
	return p.reserve(newReservation(procs), at)
}

// ReserveRanks is Reserve taking the claim as parallel id/rank slices
// (ranks[k] on ids[k], any order, copied) — the allocation-free entry
// the policy-fidelity simulator charges each placement through.
func (p *ReservingPolicy) ReserveRanks(ids, ranks []int, at time.Time) func() {
	res := &reservation{
		ids:   append([]int(nil), ids...),
		ranks: append([]int(nil), ranks...),
	}
	sort.Sort(&idRankPairs{res.ids, res.ranks})
	return p.reserve(res, at)
}

// reserve registers res and returns its cancel closure.
func (p *ReservingPolicy) reserve(res *reservation, at time.Time) func() {
	p.mu.Lock()
	res.at = p.advanceLocked(at)
	p.reservations = append(p.reservations, res)
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		res.cancelled = true
		p.mu.Unlock()
	}
}

// idRankPairs sorts parallel id/rank slices by id (ids are unique per
// claim, so the order is total).
type idRankPairs struct {
	ids   []int
	ranks []int
}

func (s *idRankPairs) Len() int           { return len(s.ids) }
func (s *idRankPairs) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s *idRankPairs) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.ranks[i], s.ranks[j] = s.ranks[j], s.ranks[i]
}

// Outstanding returns the number of live reservations as of t. Like
// pruning, it never lets t rewind below the latest clock already seen.
func (p *ReservingPolicy) Outstanding(t time.Time) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.seen.After(t) {
		t = p.seen
	}
	n := 0
	for _, res := range p.reservations {
		if !res.cancelled && t.Sub(res.at) < p.TTL {
			n++
		}
	}
	return n
}
