package alloc

import (
	"fmt"
	"sync"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
)

// ReservingPolicy wraps another policy with short-lived reservations:
// every allocation it grants is virtually charged onto subsequent
// snapshots (as busy-waiting ranks on the granted nodes) until the
// monitor's own running means catch up. This closes the herding gap the
// co-scheduling experiment exposes in the paper's heuristic — back-to-
// back submissions all greedily pick the same best region because the
// 1-minute load means lag just-launched jobs.
type ReservingPolicy struct {
	// Inner is the wrapped policy. Required.
	Inner Policy
	// TTL is how long a reservation keeps being charged (it should cover
	// the monitor's sampling lag; default 90s).
	TTL time.Duration

	mu           sync.Mutex
	reservations []reservation
}

type reservation struct {
	procs map[int]int
	at    time.Time
}

// NewReservingPolicy wraps inner with reservation charging.
func NewReservingPolicy(inner Policy, ttl time.Duration) *ReservingPolicy {
	if ttl <= 0 {
		ttl = 90 * time.Second
	}
	return &ReservingPolicy{Inner: inner, TTL: ttl}
}

// Name implements Policy.
func (p *ReservingPolicy) Name() string { return p.Inner.Name() + "+reserve" }

// Allocate implements Policy: expired reservations are pruned against the
// snapshot's own clock (virtual-time safe), live ones are charged onto a
// copy of the snapshot, the inner policy decides, and the new grant is
// recorded.
func (p *ReservingPolicy) Allocate(snap *metrics.Snapshot, req Request, r *rng.Rand) (Allocation, error) {
	if p.Inner == nil {
		return Allocation{}, fmt.Errorf("alloc: reserving policy without inner policy")
	}
	p.mu.Lock()
	live := p.reservations[:0]
	for _, res := range p.reservations {
		if snap.Taken.Sub(res.at) < p.TTL {
			live = append(live, res)
		}
	}
	p.reservations = live
	charged := snap
	if len(live) > 0 {
		charged = snap.Clone()
		for _, res := range live {
			for node, ranks := range res.procs {
				na, ok := charged.Nodes[node]
				if !ok {
					continue
				}
				// MPI ranks busy-wait: each reserved rank is a runnable
				// process on every load window.
				na.CPULoad.M1 += float64(ranks)
				na.CPULoad.M5 += float64(ranks)
				na.CPULoad.M15 += float64(ranks)
				occ := float64(ranks) / float64(na.Cores) * 100
				if na.CPUUtilPct.M1+occ > 100 {
					occ = 100 - na.CPUUtilPct.M1
				}
				if occ > 0 {
					na.CPUUtilPct.M1 += occ
					na.CPUUtilPct.M5 += occ
					na.CPUUtilPct.M15 += occ
				}
				charged.Nodes[node] = na
			}
		}
	}
	p.mu.Unlock()

	a, err := p.Inner.Allocate(charged, req, r)
	if err != nil {
		return Allocation{}, err
	}
	procs := make(map[int]int, len(a.Procs))
	for n, c := range a.Procs {
		procs[n] = c
	}
	p.mu.Lock()
	p.reservations = append(p.reservations, reservation{procs: procs, at: snap.Taken})
	p.mu.Unlock()
	a.Policy = p.Name()
	return a, nil
}

// Outstanding returns the number of live reservations as of t.
func (p *ReservingPolicy) Outstanding(t time.Time) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, res := range p.reservations {
		if t.Sub(res.at) < p.TTL {
			n++
		}
	}
	return n
}
