package alloc

import (
	"fmt"
	"sync"
	"time"

	"nlarm/internal/metrics"
	"nlarm/internal/rng"
)

// ReservingPolicy wraps another policy with short-lived reservations:
// every allocation it grants is virtually charged onto subsequent
// snapshots (as busy-waiting ranks on the granted nodes) until the
// monitor's own running means catch up. This closes the herding gap the
// co-scheduling experiment exposes in the paper's heuristic — back-to-
// back submissions all greedily pick the same best region because the
// 1-minute load means lag just-launched jobs.
type ReservingPolicy struct {
	// Inner is the wrapped policy. Required.
	Inner Policy
	// TTL is how long a reservation keeps being charged (it should cover
	// the monitor's sampling lag; default 90s).
	TTL time.Duration

	mu           sync.Mutex
	reservations []reservation
}

type reservation struct {
	procs map[int]int
	at    time.Time
}

// NewReservingPolicy wraps inner with reservation charging.
func NewReservingPolicy(inner Policy, ttl time.Duration) *ReservingPolicy {
	if ttl <= 0 {
		ttl = 90 * time.Second
	}
	return &ReservingPolicy{Inner: inner, TTL: ttl}
}

// Name implements Policy.
func (p *ReservingPolicy) Name() string { return p.Inner.Name() + "+reserve" }

// Allocate implements Policy: expired reservations are pruned against the
// snapshot's own clock (virtual-time safe), live ones are charged onto a
// copy of the snapshot, the inner policy decides, and the new grant is
// recorded.
func (p *ReservingPolicy) Allocate(snap *metrics.Snapshot, req Request, r *rng.Rand) (Allocation, error) {
	if p.Inner == nil {
		return Allocation{}, fmt.Errorf("alloc: reserving policy without inner policy")
	}
	charged := p.chargedSnapshot(snap)
	a, err := p.Inner.Allocate(charged, req, r)
	if err != nil {
		return Allocation{}, err
	}
	p.record(a, snap.Taken)
	a.Policy = p.Name()
	return a, nil
}

// AllocateModel implements ModelPolicy. With no live reservations the
// prebuilt model passes straight through to the inner policy; otherwise
// the charged snapshot invalidates it and the inner policy re-prices
// (reservation charging changes Equation 1 inputs by design).
func (p *ReservingPolicy) AllocateModel(m *CostModel, req Request, r *rng.Rand) (Allocation, error) {
	if p.Inner == nil {
		return Allocation{}, fmt.Errorf("alloc: reserving policy without inner policy")
	}
	snap := m.Snap
	charged := p.chargedSnapshot(snap)
	var a Allocation
	var err error
	inner, ok := p.Inner.(ModelPolicy)
	if !ok {
		a, err = p.Inner.Allocate(charged, req, r)
	} else if charged == snap {
		a, err = inner.AllocateModel(m, req, r)
	} else {
		vreq, verr := req.Validate()
		if verr != nil {
			return Allocation{}, verr
		}
		a, err = inner.AllocateModel(NewCostModel(charged, vreq.Weights, vreq.UseForecast), req, r)
	}
	if err != nil {
		return Allocation{}, err
	}
	p.record(a, snap.Taken)
	a.Policy = p.Name()
	return a, nil
}

// chargedSnapshot prunes expired reservations and charges the live ones
// onto a copy of snap (snap itself is returned untouched when there is
// nothing to charge).
func (p *ReservingPolicy) chargedSnapshot(snap *metrics.Snapshot) *metrics.Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	live := p.reservations[:0]
	for _, res := range p.reservations {
		if snap.Taken.Sub(res.at) < p.TTL {
			live = append(live, res)
		}
	}
	p.reservations = live
	charged := snap
	if len(live) > 0 {
		charged = snap.Clone()
		for _, res := range live {
			for node, ranks := range res.procs {
				na, ok := charged.Nodes[node]
				if !ok {
					continue
				}
				// MPI ranks busy-wait: each reserved rank is a runnable
				// process on every load window.
				na.CPULoad.M1 += float64(ranks)
				na.CPULoad.M5 += float64(ranks)
				na.CPULoad.M15 += float64(ranks)
				occ := float64(ranks) / float64(na.Cores) * 100
				if na.CPUUtilPct.M1+occ > 100 {
					occ = 100 - na.CPUUtilPct.M1
				}
				if occ > 0 {
					na.CPUUtilPct.M1 += occ
					na.CPUUtilPct.M5 += occ
					na.CPUUtilPct.M15 += occ
				}
				charged.Nodes[node] = na
			}
		}
	}
	return charged
}

// record registers a grant as a new reservation stamped at the
// snapshot's clock.
func (p *ReservingPolicy) record(a Allocation, at time.Time) {
	procs := make(map[int]int, len(a.Procs))
	for n, c := range a.Procs {
		procs[n] = c
	}
	p.mu.Lock()
	p.reservations = append(p.reservations, reservation{procs: procs, at: at})
	p.mu.Unlock()
}

// Outstanding returns the number of live reservations as of t.
func (p *ReservingPolicy) Outstanding(t time.Time) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, res := range p.reservations {
		if t.Sub(res.at) < p.TTL {
			n++
		}
	}
	return n
}
